package bolt_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/drivers"
	"repro/internal/harness"
	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/punch/maymust"
	"repro/internal/smt"
	"repro/internal/store"
	"repro/internal/summary"
)

// The benchmarks below regenerate the paper's tables and figures (§5) at
// benchmark-friendly scale; `cmd/boltbench` runs the full versions whose
// outputs are recorded in EXPERIMENTS.md. Reported metrics: virtual ticks
// (the deterministic cost model) per table/figure unit of work.

func benchCheck(b *testing.B, driver, prop string, threads int) {
	b.Helper()
	check := drivers.NamedCheck(driver, prop, false)
	opts := harness.Options{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := harness.RunCheck(check, threads, opts)
		if r.Verdict != core.Safe {
			b.Fatalf("verdict = %v", r.Verdict)
		}
		b.ReportMetric(float64(r.Ticks), "vticks")
	}
}

// BenchmarkTable1Speedups: one fast row of Table 1 (parport /
// MarkPowerDown) at the sequential and 8-thread points.
func BenchmarkTable1Speedups(b *testing.B) {
	b.Run("seq", func(b *testing.B) { benchCheck(b, "parport", "MarkPowerDown", 1) })
	b.Run("threads8", func(b *testing.B) { benchCheck(b, "parport", "MarkPowerDown", 8) })
}

// BenchmarkTable2Cumulative: a small suite slice, sequential vs 64
// threads (the full 45-driver sweep is cmd/boltbench -table 2).
func BenchmarkTable2Cumulative(b *testing.B) {
	checks := []drivers.Check{
		drivers.NamedCheck("parport", "PnpIrpCompletion", false),
		drivers.NamedCheck("drv10", "IoAllocateFree", false),
	}
	for i := 0; i < b.N; i++ {
		var seq, par int64
		for _, c := range checks {
			seq += harness.RunCheck(c, 1, harness.Options{}).Ticks
			par += harness.RunCheck(c, 64, harness.Options{}).Ticks
		}
		if par > 0 {
			b.ReportMetric(float64(seq)/float64(par), "speedup")
		}
	}
}

// BenchmarkTable3Timeouts: the sequential/parallel budget race on one of
// the Table 3 checks.
func BenchmarkTable3Timeouts(b *testing.B) {
	check := drivers.NamedCheck("selsusp", "IrqlExAllocatePool", false)
	for i := 0; i < b.N; i++ {
		seq := harness.RunCheck(check, 1, harness.Options{})
		par := harness.RunCheck(check, 64, harness.Options{})
		if par.Ticks > 0 {
			b.ReportMetric(float64(seq.Ticks)/float64(par.Ticks), "speedup")
		}
	}
}

// BenchmarkTable4QueryCounts: total query count under 2 vs 64 threads
// (the order-effect measurement).
func BenchmarkTable4QueryCounts(b *testing.B) {
	check := drivers.NamedCheck("parport", "PendedCompletedRequest", false)
	for i := 0; i < b.N; i++ {
		q2 := harness.RunCheck(check, 2, harness.Options{}).Queries
		q64 := harness.RunCheck(check, 64, harness.Options{}).Queries
		b.ReportMetric(float64(q2), "queries2t")
		b.ReportMetric(float64(q64), "queries64t")
	}
}

// BenchmarkFig3ReadyQueries: the sequential instrumentation run behind
// Fig. 3 (peak Ready count reported).
func BenchmarkFig3ReadyQueries(b *testing.B) {
	check := drivers.NamedCheck("parport", "PowerUpFail", false)
	for i := 0; i < b.N; i++ {
		r := harness.RunCheck(check, 1, harness.Options{})
		b.ReportMetric(float64(r.Peak), "peakready")
	}
}

// BenchmarkFig7Concurrency: the 8-thread instrumentation run behind
// Fig. 7 (mean batch size reported).
func BenchmarkFig7Concurrency(b *testing.B) {
	check := drivers.NamedCheck("parport", "PowerUpFail", false)
	for i := 0; i < b.N; i++ {
		r := harness.RunCheck(check, 8, harness.Options{})
		var sum, n float64
		for _, s := range r.Trace {
			sum += float64(s.Processed)
			n++
		}
		if n > 0 {
			b.ReportMetric(sum/n, "meanbatch")
		}
	}
}

// runAblation builds an engine with custom options on a fixed check.
func runAblation(b *testing.B, mutate func(*core.Options)) core.Result {
	b.Helper()
	prog := drivers.Generate(drivers.NamedCheck("parport", "MarkPowerDown", false).Config)
	o := core.Options{Punch: maymust.New(), MaxThreads: 8, VirtualCores: 8, MaxIterations: 1 << 19}
	mutate(&o)
	return core.New(prog, o).Run(core.AssertionQuestion(prog))
}

// BenchmarkAblationNoGC: REDUCE-stage garbage collection disabled.
func BenchmarkAblationNoGC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runAblation(b, func(o *core.Options) { o.DisableGC = true })
		b.ReportMetric(float64(r.PeakLive), "peaklive")
	}
}

// BenchmarkAblationSpeculation: the §7 speculative extension enabled.
func BenchmarkAblationSpeculation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runAblation(b, func(o *core.Options) { o.Speculate = true })
		b.ReportMetric(float64(r.VirtualTicks), "vticks")
	}
}

// BenchmarkAblationStepBudget: PUNCH preemption budget sweep.
func BenchmarkAblationStepBudget(b *testing.B) {
	for _, budget := range []int64{300, 900, 2700} {
		b.Run(map[int64]string{300: "small", 900: "default", 2700: "large"}[budget], func(b *testing.B) {
			prog := drivers.Generate(drivers.NamedCheck("parport", "MarkPowerDown", false).Config)
			for i := 0; i < b.N; i++ {
				p := maymust.New()
				p.Budget = budget
				r := core.New(prog, core.Options{Punch: p, MaxThreads: 8, VirtualCores: 8, MaxIterations: 1 << 19}).
					Run(core.AssertionQuestion(prog))
				b.ReportMetric(float64(r.VirtualTicks), "vticks")
			}
		})
	}
}

// BenchmarkAblationNoSumDB: summary reuse disabled on a call-free check
// (with calls the engine cannot finish without SUMDB, by design).
func BenchmarkAblationNoSumDB(b *testing.B) {
	prog := parser.MustParse(`proc main { locals x; havoc x; if (x > 0) { assert(x >= 1); } }`)
	for i := 0; i < b.N; i++ {
		r := core.New(prog, core.Options{Punch: maymust.New(), MaxThreads: 4, DisableSumDB: true, MaxIterations: 1 << 16}).
			Run(core.AssertionQuestion(prog))
		b.ReportMetric(float64(r.VirtualTicks), "vticks")
	}
}

// BenchmarkAsyncVsBarrier: the streaming work-stealing engine against the
// bulk-synchronous baseline at 8 threads. The first check is a regular
// corpus-scale run (async must not be slower in virtual ticks); the
// second is straggler-heavy — long PUNCH invocations of very uneven cost
// — where the barrier idles whole batches and streaming should win.
// Verdict confluence is asserted on every iteration.
func BenchmarkAsyncVsBarrier(b *testing.B) {
	checks := []struct{ name, driver, prop string }{
		{"parport", "parport", "MarkPowerDown"},
		{"straggler", "selsusp", "IrqlExAllocatePool"},
	}
	for _, c := range checks {
		prog := drivers.Generate(drivers.NamedCheck(c.driver, c.prop, false).Config)
		want := core.New(prog, core.Options{Punch: maymust.New(), MaxThreads: 8, VirtualCores: 8, MaxIterations: 1 << 19}).
			Run(core.AssertionQuestion(prog)).Verdict
		for _, mode := range []string{"barrier", "async"} {
			b.Run(c.name+"/"+mode, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r := core.New(prog, core.Options{
						Punch: maymust.New(), MaxThreads: 8, VirtualCores: 8,
						MaxIterations: 1 << 19, Async: mode == "async",
					}).Run(core.AssertionQuestion(prog))
					if r.Verdict != want {
						b.Fatalf("verdict = %v, barrier baseline said %v", r.Verdict, want)
					}
					b.ReportMetric(float64(r.VirtualTicks), "vticks")
					if mode == "async" {
						b.ReportMetric(float64(r.Steals), "steals")
						b.ReportMetric(float64(r.IdleWaits), "idlewaits")
					}
				}
			})
		}
	}
}

// BenchmarkCoalesceDiamond: the cross-query redundancy ablation on a
// diamond-shaped program — four branch arms each calling the same three
// shared helpers, so concurrently-live arms keep asking questions that
// are already in flight. "on" must answer duplicate spawns from the
// in-flight twin (fewer PUNCH completions at an unchanged verdict);
// "off" materializes every duplicate subtree and must not touch the
// coalescing or entailment-cache machinery at all (the
// zero-overhead-when-disabled contract).
func BenchmarkCoalesceDiamond(b *testing.B) {
	var src strings.Builder
	src.WriteString("globals g1, g2;\n")
	for s := 0; s < 3; s++ {
		fmt.Fprintf(&src, "proc shared%d { locals t; havoc t; assume(t >= 0 && t <= 2); g1 = g1 + t; }\n", s)
	}
	for a := 0; a < 4; a++ {
		fmt.Fprintf(&src, "proc arm%d { locals t; shared0(); shared1(); shared2(); g2 = g2 + %d; }\n", a, a)
	}
	src.WriteString(`proc main { locals x; g1 = 0; g2 = 0; havoc x;
  if (x > 3) { arm0(); } else { if (x > 2) { arm1(); } else { if (x > 1) { arm2(); } else { arm3(); } } }
  assert(g1 >= 0); }
`)
	prog := parser.MustParse(src.String())
	want := core.New(prog, core.Options{Punch: maymust.New(), MaxThreads: 8, VirtualCores: 8, MaxIterations: 1 << 18}).
		Run(core.AssertionQuestion(prog)).Verdict
	for _, mode := range []string{"on", "off"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := core.New(prog, core.Options{
					Punch: maymust.New(), MaxThreads: 8, VirtualCores: 8, MaxIterations: 1 << 18,
					DisableCoalesce:        mode == "off",
					DisableEntailmentCache: mode == "off",
				}).Run(core.AssertionQuestion(prog))
				if r.Verdict != want {
					b.Fatalf("verdict = %v, baseline said %v", r.Verdict, want)
				}
				if mode == "off" && (r.CoalesceHits != 0 ||
					r.Solver.EntailCacheHits+r.Solver.EntailCacheMisses+r.Solver.EntailSynHits != 0) {
					b.Fatalf("disabled run engaged the machinery: coalesce=%d cache=%+v",
						r.CoalesceHits, r.Solver)
				}
				b.ReportMetric(float64(r.DoneQueries), "punchdone")
				b.ReportMetric(float64(r.VirtualTicks), "vticks")
				b.ReportMetric(float64(r.CoalesceHits), "coalesced")
			}
		})
	}
}

// BenchmarkEntailmentCache: the striped entailment memo on the solver's
// Implies path, uncached vs cached, over a pool of conjunctive formulas
// large enough to exercise multiple shards but small enough to re-ask.
func BenchmarkEntailmentCache(b *testing.B) {
	x, y := logic.LinVar(lang.Var("x")), logic.LinVar(lang.Var("y"))
	var pool []logic.Formula
	for i := int64(0); i < 16; i++ {
		pool = append(pool,
			logic.Conj(logic.LEq(x, logic.LinConst(i)), logic.LEq(logic.LinConst(-i), y)))
	}
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			s := smt.New()
			if mode == "on" {
				s.EnableEntailmentCache()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Implies(pool[i%len(pool)], pool[(i+7)%len(pool)])
			}
			if mode == "on" {
				st := s.StatsSnapshot()
				if total := st.EntailCacheHits + st.EntailCacheMisses; total > 0 {
					b.ReportMetric(float64(st.EntailCacheHits)/float64(total), "hitrate")
				}
			}
		})
	}
}

// BenchmarkObsOverhead measures the observability layer's hot-path cost
// on the streaming engine at 8 threads: disabled (the nil-tracer /
// nil-registry branch the zero-allocation contract is about), metrics
// only, and metrics plus a full Chrome trace. "disabled" is the
// before/after comparison against BenchmarkAsyncVsBarrier's async runs;
// the acceptance bar is < 2% makespan regression.
func BenchmarkObsOverhead(b *testing.B) {
	prog := drivers.Generate(drivers.NamedCheck("parport", "MarkPowerDown", false).Config)
	modes := []struct {
		name    string
		metrics bool
		trace   bool
		flight  bool
		probe   bool
		prov    bool
	}{
		{name: "disabled"},
		{name: "metrics", metrics: true},
		{name: "metrics+trace", metrics: true, trace: true},
		{name: "flight", flight: true},
		{name: "flight+probe", flight: true, probe: true},
		{name: "prov", prov: true},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.Options{
					Punch: maymust.New(), MaxThreads: 8, VirtualCores: 8,
					MaxIterations: 1 << 19, Async: true,
				}
				if mode.metrics {
					opts.Metrics = obs.NewMetrics()
				}
				if mode.trace {
					opts.Tracer = obs.NewChromeTracer()
				}
				if mode.flight {
					opts.Tracer = obs.NewFlightRecorder(0)
				}
				if mode.probe {
					opts.Probe = &obs.Probe{}
				}
				if mode.prov {
					opts.CollectProvenance = true
				}
				r := core.New(prog, opts).Run(core.AssertionQuestion(prog))
				if r.Verdict != core.Safe {
					b.Fatalf("verdict = %v", r.Verdict)
				}
				b.ReportMetric(float64(r.VirtualTicks), "vticks")
			}
		})
	}
}

// BenchmarkSumDBAnswer: query-answering latency against a prebuilt
// summary database. "repeat" re-asks one question (served by the memo
// after the first scan); "varied" cycles fresh questions (always scans
// the shard's summary slice).
func BenchmarkSumDBAnswer(b *testing.B) {
	g := func(x int64) logic.Formula { return logic.Eq(logic.LinVar(lang.Var("g")), logic.LinConst(x)) }
	build := func() *summary.DB {
		db := summary.New(smt.New())
		for p := 0; p < 8; p++ {
			proc := fmt.Sprintf("proc%d", p)
			for i := int64(0); i < 64; i++ {
				db.Add(summary.Summary{Kind: summary.Must, Proc: proc, Pre: g(i), Post: g(i + 1)})
			}
		}
		return db
	}
	b.Run("repeat", func(b *testing.B) {
		db := build()
		q := summary.Question{Proc: "proc3", Pre: g(63), Post: g(64)}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := db.AnswerYes(q); !ok {
				b.Fatal("no answer")
			}
		}
		b.ReportMetric(float64(db.StatsSnapshot().MemoHits), "memohits")
	})
	b.Run("varied", func(b *testing.B) {
		db := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := summary.Question{Proc: fmt.Sprintf("proc%d", i%8), Pre: g(int64(i % 64)), Post: g(int64(i%64) + 1)}
			if _, ok := db.AnswerYes(q); !ok {
				b.Fatal("no answer")
			}
		}
	})
}

// BenchmarkSolver: the QF_LIA substrate on a representative formula mix.
func BenchmarkSolver(b *testing.B) {
	prog := drivers.Generate(drivers.NamedCheck("parport", "PnpIrpCompletion", false).Config)
	for i := 0; i < b.N; i++ {
		r := core.New(prog, core.Options{Punch: maymust.New(), MaxThreads: 1, MaxIterations: 1 << 19}).
			Run(core.AssertionQuestion(prog))
		b.ReportMetric(float64(r.Solver.SatCalls), "satcalls")
	}
}

// BenchmarkWarmVsCold: the persistent summary store's payoff. "cold"
// verifies into an empty disk store (paying encode+persist); "warm"
// re-verifies from the store the setup run populated. Warm runs start
// from yesterday's proven facts, so their virtual makespan — the
// reported vticks — must come in measurably under cold.
func BenchmarkWarmVsCold(b *testing.B) {
	check := drivers.NamedCheck("parport", "MarkPowerDown", false)
	prog := drivers.Generate(check.Config)
	fp := store.NewFingerprint("bench-warm", check.ID(), prog.String())
	runWith := func(b *testing.B, dir string) core.Result {
		st, err := store.OpenDisk(dir, fp, false)
		if err != nil {
			b.Fatal(err)
		}
		r := core.New(prog, core.Options{
			Punch: maymust.New(), MaxThreads: 8, VirtualCores: 8,
			MaxIterations: 1 << 19, Store: st,
		}).Run(core.AssertionQuestion(prog))
		if r.StoreErr != nil {
			b.Fatal(r.StoreErr)
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		return r
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := b.TempDir()
			b.StartTimer()
			r := runWith(b, dir)
			if r.PersistedSummaries == 0 {
				b.Fatal("cold run persisted nothing")
			}
			b.ReportMetric(float64(r.VirtualTicks), "vticks")
		}
	})
	b.Run("warm", func(b *testing.B) {
		dir := b.TempDir()
		runWith(b, dir) // populate once
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := runWith(b, dir)
			if r.WarmSummaries == 0 {
				b.Fatal("warm run loaded nothing")
			}
			b.ReportMetric(float64(r.VirtualTicks), "vticks")
		}
	})
}

// BenchmarkDistributed: the §7 "Distributed BOLT" simulation — cluster
// sizes 1, 2 and 4 on one check, reporting the busiest shard's peak live
// queries (the per-machine memory story).
func BenchmarkDistributed(b *testing.B) {
	prog := drivers.Generate(drivers.NamedCheck("parport", "PowerDownFail", false).Config)
	for _, nodes := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "nodes1", 2: "nodes2", 4: "nodes4"}[nodes], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := core.NewDistributed(prog, core.DistOptions{
					Punch:          maymust.New(),
					Nodes:          nodes,
					ThreadsPerNode: 4,
					MaxRounds:      1 << 18,
				}).Run(core.AssertionQuestion(prog))
				if r.Verdict != core.Safe {
					b.Fatalf("verdict = %v", r.Verdict)
				}
				peak := 0
				for _, p := range r.PerNodePeakLive {
					if p > peak {
						peak = p
					}
				}
				b.ReportMetric(float64(peak), "shardpeak")
				b.ReportMetric(float64(r.VirtualTicks), "vticks")
			}
		})
	}
}
