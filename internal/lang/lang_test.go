package lang

import (
	"testing"
	"testing/quick"
)

func TestCmpOpNegate(t *testing.T) {
	ops := []CmpOp{Lt, Le, Gt, Ge, Eq, Ne}
	for _, op := range ops {
		if op.Negate().Negate() != op {
			t.Errorf("%v: double negation not identity", op)
		}
	}
	pairs := map[CmpOp]CmpOp{Lt: Ge, Le: Gt, Eq: Ne}
	for a, b := range pairs {
		if a.Negate() != b || b.Negate() != a {
			t.Errorf("Negate(%v) pairing wrong", a)
		}
	}
}

func TestVarsOf(t *testing.T) {
	e := Plus(Times(3, V("x")), Minus(V("y"), C(7)))
	got := VarsOfInt(e, nil)
	if len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("VarsOfInt = %v", got)
	}
	b := AndE(CmpE(V("a"), Lt, V("b")), NotE(CmpE(V("c"), Eq, C(0))))
	gotB := VarsOfBool(b, nil)
	if len(gotB) != 3 {
		t.Fatalf("VarsOfBool = %v", gotB)
	}
	if vs := VarsOfStmt(Assign{Lhs: "t", Rhs: V("u")}, nil); len(vs) != 2 || vs[0] != "t" {
		t.Fatalf("VarsOfStmt(assign) = %v", vs)
	}
	if vs := VarsOfStmt(Call{Proc: "p"}, nil); len(vs) != 0 {
		t.Fatalf("VarsOfStmt(call) = %v", vs)
	}
	if vs := VarsOfStmt(Havoc{V: "h"}, nil); len(vs) != 1 {
		t.Fatalf("VarsOfStmt(havoc) = %v", vs)
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Assign{Lhs: "x", Rhs: Plus(V("x"), C(1))}.String(), "x = (x + 1)"},
		{Assume{Cond: CmpE(V("x"), Le, C(0))}.String(), "assume(x <= 0)"},
		{Havoc{V: "y"}.String(), "havoc y"},
		{Call{Proc: "f"}.String(), "call f"},
		{Skip{}.String(), "skip"},
		{Neg{X: V("z")}.String(), "-z"},
		{Mul{K: 4, X: V("z")}.String(), "4*z"},
		{OrE(BoolConst{true}, NotE(BoolConst{false})).String(), "(true || !(false))"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}

func TestAndEOrEEmpty(t *testing.T) {
	if AndE().String() != "true" {
		t.Error("empty AndE should be true")
	}
	if OrE().String() != "false" {
		t.Error("empty OrE should be false")
	}
}

// Property: FormatVars round-trips count.
func TestFormatVars(t *testing.T) {
	err := quick.Check(func(names []string) bool {
		vs := make([]Var, len(names))
		for i, n := range names {
			vs[i] = Var(n)
		}
		out := FormatVars(vs)
		return len(vs) != 0 || out == ""
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
