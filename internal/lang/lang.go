// Package lang defines the abstract syntax of the small imperative
// language analyzed by BOLT.
//
// The language is exactly the program model of §3.1 of the paper:
// procedures communicate through integer-valued global variables, edges of
// a control-flow graph are labelled with simple statements (assignments and
// assumes over linear integer expressions, plus havoc for nondeterministic
// input) or parameterless call statements.
package lang

import (
	"fmt"
	"strings"
)

// Var is a program variable name. Globals and locals share this type; the
// distinction is recorded by the enclosing cfg.Program.
type Var string

// CmpOp is a comparison operator between integer expressions.
type CmpOp int

// Comparison operators.
const (
	Lt CmpOp = iota // <
	Le              // <=
	Gt              // >
	Ge              // >=
	Eq              // ==
	Ne              // !=
)

// String returns the source syntax of the operator.
func (op CmpOp) String() string {
	switch op {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Eq:
		return "=="
	case Ne:
		return "!="
	}
	return fmt.Sprintf("CmpOp(%d)", int(op))
}

// Negate returns the operator op' such that x op' y ⇔ ¬(x op y).
func (op CmpOp) Negate() CmpOp {
	switch op {
	case Lt:
		return Ge
	case Le:
		return Gt
	case Gt:
		return Le
	case Ge:
		return Lt
	case Eq:
		return Ne
	case Ne:
		return Eq
	}
	panic(fmt.Sprintf("lang: invalid CmpOp %d", int(op)))
}

// IntExpr is an integer-valued expression. Expressions are linear: the
// only multiplication form is by a constant.
type IntExpr interface {
	isIntExpr()
	String() string
}

// Const is an integer literal.
type Const struct{ Val int64 }

// Ref is a variable reference.
type Ref struct{ V Var }

// Add is x + y.
type Add struct{ X, Y IntExpr }

// Sub is x - y.
type Sub struct{ X, Y IntExpr }

// Neg is -x.
type Neg struct{ X IntExpr }

// Mul is k * x, multiplication by a constant (keeps expressions linear).
type Mul struct {
	K int64
	X IntExpr
}

func (Const) isIntExpr() {}
func (Ref) isIntExpr()   {}
func (Add) isIntExpr()   {}
func (Sub) isIntExpr()   {}
func (Neg) isIntExpr()   {}
func (Mul) isIntExpr()   {}

func (c Const) String() string { return fmt.Sprintf("%d", c.Val) }
func (r Ref) String() string   { return string(r.V) }
func (a Add) String() string   { return fmt.Sprintf("(%s + %s)", a.X, a.Y) }
func (s Sub) String() string   { return fmt.Sprintf("(%s - %s)", s.X, s.Y) }
func (n Neg) String() string   { return fmt.Sprintf("-%s", n.X) }
func (m Mul) String() string   { return fmt.Sprintf("%d*%s", m.K, m.X) }

// BoolExpr is a boolean-valued expression (guards of assumes and
// conditionals).
type BoolExpr interface {
	isBoolExpr()
	String() string
}

// BoolConst is a boolean literal.
type BoolConst struct{ Val bool }

// Cmp is a comparison x op y between integer expressions.
type Cmp struct {
	Op   CmpOp
	X, Y IntExpr
}

// And is x && y.
type And struct{ X, Y BoolExpr }

// Or is x || y.
type Or struct{ X, Y BoolExpr }

// Not is !x.
type Not struct{ X BoolExpr }

func (BoolConst) isBoolExpr() {}
func (Cmp) isBoolExpr()       {}
func (And) isBoolExpr()       {}
func (Or) isBoolExpr()        {}
func (Not) isBoolExpr()       {}

func (b BoolConst) String() string {
	if b.Val {
		return "true"
	}
	return "false"
}
func (c Cmp) String() string { return fmt.Sprintf("%s %s %s", c.X, c.Op, c.Y) }
func (a And) String() string { return fmt.Sprintf("(%s && %s)", a.X, a.Y) }
func (o Or) String() string  { return fmt.Sprintf("(%s || %s)", o.X, o.Y) }
func (n Not) String() string { return fmt.Sprintf("!(%s)", n.X) }

// Stmt labels a control-flow edge. Per §3.1, statements are either simple
// (assignment, assume, havoc, skip) or calls.
type Stmt interface {
	isStmt()
	String() string
}

// Assign is `x = e`.
type Assign struct {
	Lhs Var
	Rhs IntExpr
}

// Assume is `assume(b)`: the edge may only be taken from states where b
// holds.
type Assume struct{ Cond BoolExpr }

// Havoc is `havoc x`: x receives an arbitrary integer value
// (nondeterministic input, the language's stand-in for environment data).
type Havoc struct{ V Var }

// Call is `call P`: invoke procedure P. Communication is via globals.
type Call struct{ Proc string }

// Skip is a no-op edge.
type Skip struct{}

func (Assign) isStmt() {}
func (Assume) isStmt() {}
func (Havoc) isStmt()  {}
func (Call) isStmt()   {}
func (Skip) isStmt()   {}

func (a Assign) String() string { return fmt.Sprintf("%s = %s", a.Lhs, a.Rhs) }
func (a Assume) String() string { return fmt.Sprintf("assume(%s)", a.Cond) }
func (h Havoc) String() string  { return fmt.Sprintf("havoc %s", h.V) }
func (c Call) String() string   { return fmt.Sprintf("call %s", c.Proc) }
func (Skip) String() string     { return "skip" }

// VarsOfInt appends the variables occurring in e to dst and returns it.
func VarsOfInt(e IntExpr, dst []Var) []Var {
	switch e := e.(type) {
	case Const:
	case Ref:
		dst = append(dst, e.V)
	case Add:
		dst = VarsOfInt(e.X, dst)
		dst = VarsOfInt(e.Y, dst)
	case Sub:
		dst = VarsOfInt(e.X, dst)
		dst = VarsOfInt(e.Y, dst)
	case Neg:
		dst = VarsOfInt(e.X, dst)
	case Mul:
		dst = VarsOfInt(e.X, dst)
	default:
		panic(fmt.Sprintf("lang: unknown IntExpr %T", e))
	}
	return dst
}

// VarsOfBool appends the variables occurring in b to dst and returns it.
func VarsOfBool(b BoolExpr, dst []Var) []Var {
	switch b := b.(type) {
	case BoolConst:
	case Cmp:
		dst = VarsOfInt(b.X, dst)
		dst = VarsOfInt(b.Y, dst)
	case And:
		dst = VarsOfBool(b.X, dst)
		dst = VarsOfBool(b.Y, dst)
	case Or:
		dst = VarsOfBool(b.X, dst)
		dst = VarsOfBool(b.Y, dst)
	case Not:
		dst = VarsOfBool(b.X, dst)
	default:
		panic(fmt.Sprintf("lang: unknown BoolExpr %T", b))
	}
	return dst
}

// VarsOfStmt appends the variables read or written by s to dst and returns
// it.
func VarsOfStmt(s Stmt, dst []Var) []Var {
	switch s := s.(type) {
	case Assign:
		dst = append(dst, s.Lhs)
		dst = VarsOfInt(s.Rhs, dst)
	case Assume:
		dst = VarsOfBool(s.Cond, dst)
	case Havoc:
		dst = append(dst, s.V)
	case Call, Skip:
	default:
		panic(fmt.Sprintf("lang: unknown Stmt %T", s))
	}
	return dst
}

// Convenience constructors, handy when building programs programmatically.

// C returns the constant expression v.
func C(v int64) IntExpr { return Const{Val: v} }

// V returns a reference to variable name.
func V(name string) IntExpr { return Ref{V: Var(name)} }

// Plus returns x + y.
func Plus(x, y IntExpr) IntExpr { return Add{X: x, Y: y} }

// Minus returns x - y.
func Minus(x, y IntExpr) IntExpr { return Sub{X: x, Y: y} }

// Times returns k * x.
func Times(k int64, x IntExpr) IntExpr { return Mul{K: k, X: x} }

// CmpE builds a comparison.
func CmpE(x IntExpr, op CmpOp, y IntExpr) BoolExpr { return Cmp{Op: op, X: x, Y: y} }

// AndE builds the conjunction of bs (true when empty).
func AndE(bs ...BoolExpr) BoolExpr {
	if len(bs) == 0 {
		return BoolConst{Val: true}
	}
	out := bs[0]
	for _, b := range bs[1:] {
		out = And{X: out, Y: b}
	}
	return out
}

// OrE builds the disjunction of bs (false when empty).
func OrE(bs ...BoolExpr) BoolExpr {
	if len(bs) == 0 {
		return BoolConst{Val: false}
	}
	out := bs[0]
	for _, b := range bs[1:] {
		out = Or{X: out, Y: b}
	}
	return out
}

// NotE builds the negation of b.
func NotE(b BoolExpr) BoolExpr { return Not{X: b} }

// FormatVars renders a variable list for diagnostics.
func FormatVars(vs []Var) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = string(v)
	}
	return strings.Join(parts, ", ")
}
