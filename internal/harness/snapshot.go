// Streaming-engine performance snapshots: a machine-readable record of
// the work-stealing engine's makespan and speedup over the sequential
// baseline, with the metrics registry's summary attached. boltbench
// -snapshot writes one to BENCH_streaming.json so perf regressions show
// up in review as a diff, not an anecdote.

package harness

import (
	"encoding/json"
	"io"

	"repro/internal/drivers"
)

// StreamingBench is one perf snapshot of the streaming engine across a
// check set.
type StreamingBench struct {
	// Threads is the streaming pool size; Cores the virtual-clock core
	// count the makespans are measured against.
	Threads int `json:"threads"`
	Cores   int `json:"cores"`
	Checks  []StreamingCheckBench `json:"checks"`
	// TotalSeqTicks and TotalParTicks are the cumulative 1-thread and
	// streaming makespans; TotalSpeedup their ratio.
	TotalSeqTicks int64   `json:"total_seq_ticks"`
	TotalParTicks int64   `json:"total_par_ticks"`
	TotalSpeedup  float64 `json:"total_speedup"`
}

// StreamingCheckBench is one check's entry in a StreamingBench.
type StreamingCheckBench struct {
	Check   string `json:"check"`
	Verdict string `json:"verdict"`
	// SeqTicks is the 1-thread makespan, ParTicks the streaming-engine
	// makespan at the snapshot's thread count, Speedup their ratio.
	SeqTicks int64   `json:"seq_ticks"`
	ParTicks int64   `json:"par_ticks"`
	Speedup  float64 `json:"speedup"`
	Queries  int64   `json:"queries"`
	WallNs   int64   `json:"wall_ns"`
	// Metrics is the streaming run's flattened metrics summary (counters,
	// sumdb traffic, punch-histogram aggregates, makespan).
	Metrics map[string]int64 `json:"metrics"`
	// WorkerUtilization is each worker's busy-tick share of the makespan,
	// in worker order (the load-balance view).
	WorkerUtilization []float64 `json:"worker_utilization,omitempty"`
}

// CollectStreaming measures the streaming engine at the given thread
// count against the 1-thread baseline on each check, with metrics
// enabled on the streaming runs.
func CollectStreaming(opts Options, threads int, checks []drivers.Check) StreamingBench {
	opts = opts.withDefaults()
	bench := StreamingBench{Threads: threads, Cores: opts.Cores}
	seqOpts := opts
	seqOpts.Async = false
	seqOpts.Metrics = false
	parOpts := opts
	parOpts.Async = true
	parOpts.Metrics = true
	for _, check := range checks {
		seq := RunCheck(check, 1, seqOpts)
		par := RunCheck(check, threads, parOpts)
		entry := StreamingCheckBench{
			Check:    check.ID(),
			Verdict:  par.Verdict.String(),
			SeqTicks: seq.Ticks,
			ParTicks: par.Ticks,
			Queries:  par.Queries,
			WallNs:   int64(par.Wall),
			Metrics:  par.Metrics.Flatten(),
		}
		if par.Ticks > 0 {
			entry.Speedup = float64(seq.Ticks) / float64(par.Ticks)
		}
		if par.Metrics != nil && par.Metrics.MakespanTicks > 0 {
			for _, ws := range par.Metrics.Workers {
				entry.WorkerUtilization = append(entry.WorkerUtilization,
					float64(ws.BusyTicks)/float64(par.Metrics.MakespanTicks))
			}
		}
		bench.Checks = append(bench.Checks, entry)
		bench.TotalSeqTicks += seq.Ticks
		bench.TotalParTicks += par.Ticks
	}
	if bench.TotalParTicks > 0 {
		bench.TotalSpeedup = float64(bench.TotalSeqTicks) / float64(bench.TotalParTicks)
	}
	return bench
}

// WriteStreamingBench serializes the snapshot as indented JSON.
func WriteStreamingBench(w io.Writer, b StreamingBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
