// Streaming-engine performance snapshots: a machine-readable record of
// the work-stealing engine's makespan and speedup over the sequential
// baseline, with the metrics registry's summary and the trace-derived
// work/span profile attached. boltbench -snapshot writes one to
// BENCH_streaming.json so perf regressions show up in review as a diff,
// not an anecdote; boltbench -compare turns the committed snapshot into
// a regression gate (`make bench-gate`).

package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"repro/internal/drivers"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

// provOverheadRuns is the min-of-N sample count for the recorder's
// wall-clock pricing (each side of the matched pair runs this often).
const provOverheadRuns = 3

// provOverheadMinTicks is the smallest parallel makespan a check may
// have and still get a ProvOverheadPct: below it the run is a few
// hundred milliseconds of mostly fixed startup cost and the per-tick
// rate is noise, not a price.
const provOverheadMinTicks = 20000

// StreamingBench is one perf snapshot of the streaming engine across a
// check set.
type StreamingBench struct {
	// Threads is the streaming pool size; Cores the virtual-clock core
	// count the makespans are measured against.
	Threads int                   `json:"threads"`
	Cores   int                   `json:"cores"`
	Checks  []StreamingCheckBench `json:"checks"`
	// TotalSeqTicks and TotalParTicks are the cumulative 1-thread and
	// streaming makespans; TotalSpeedup their ratio.
	TotalSeqTicks int64   `json:"total_seq_ticks"`
	TotalParTicks int64   `json:"total_par_ticks"`
	TotalSpeedup  float64 `json:"total_speedup"`
}

// StreamingCheckBench is one check's entry in a StreamingBench.
type StreamingCheckBench struct {
	Check   string `json:"check"`
	Verdict string `json:"verdict"`
	// StopReason says why the streaming run ended, so a timeout and a
	// real verdict are distinguishable in bench diffs.
	StopReason string `json:"stop_reason"`
	// SeqTicks is the 1-thread makespan, ParTicks the streaming-engine
	// makespan at the snapshot's thread count, Speedup their ratio.
	SeqTicks int64   `json:"seq_ticks"`
	ParTicks int64   `json:"par_ticks"`
	Speedup  float64 `json:"speedup"`
	Queries  int64   `json:"queries"`
	WallNs   int64   `json:"wall_ns"`
	// CriticalPathTicks and SpanTicks are the trace-derived critical
	// path of the streaming run (the two names are the same quantity:
	// the causality DAG's cost-weighted longest chain — see
	// internal/obs/analyze); ParallelEfficiency is the run's work
	// divided by makespan x simulated cores (1.0 = every core busy the
	// whole run).
	CriticalPathTicks  int64   `json:"critical_path_ticks"`
	SpanTicks          int64   `json:"span_ticks"`
	ParallelEfficiency float64 `json:"parallel_efficiency"`
	// CoalesceHits counts spawns answered by an in-flight twin during the
	// streaming run; EntailCacheHits/EntailCacheMisses are the solver's
	// entailment-memo traffic (the cross-query redundancy the run
	// eliminated and the cold lookups that primed it).
	CoalesceHits      int64 `json:"coalesce_hits"`
	EntailCacheHits   int64 `json:"entail_cache_hits"`
	EntailCacheMisses int64 `json:"entail_cache_misses"`
	// Solver hot-path accounting: learning-DPLL conflict/learn/propagate
	// volume, full theory checks, and hash-consing hits — the counters
	// the solver-optimisation work is benchmarked by.
	DPLLConflicts  int64 `json:"dpll_conflicts"`
	LearnedClauses int64 `json:"dpll_learned_clauses"`
	Propagations   int64 `json:"dpll_propagations"`
	TheoryChecks   int64 `json:"theory_checks"`
	HashConsHits   int64 `json:"hashcons_hits"`
	// Provenance-recording overhead, priced on matched run pairs: the
	// streaming run is repeated provOverheadRuns times bare and
	// provOverheadRuns times with Options.Provenance on — identical
	// instrumentation otherwise, interleaved so warm-up drift hits both
	// sides — and ProvOverheadPct compares the two minimum wall-per-tick
	// rates. Normalizing by virtual ticks matters because the
	// work-stealing schedule length varies ~15% run to run; min-of-N on
	// raw walls (let alone the old single-shot comparison against the
	// differently-instrumented main run) reported nonsense like -31%.
	// Checks shorter than provOverheadMinTicks are not priced at all
	// (the field is omitted): a sub-second run is mostly fixed startup
	// cost and any percentage on it is noise.
	// ProvParTicks is the recording run's virtual makespan (close to
	// ParTicks modulo schedule variance — the recorder is
	// schedule-neutral by design); ProvWallNs its minimum wall.
	// ProvConeProcs and ProvSummaryReads size the verdict's recorded
	// dependency cone and are folded into Metrics under the same prov_*
	// keys. None of these are gated by CompareStreamingBench — they are
	// review-diff material.
	ProvParTicks     int64   `json:"prov_par_ticks,omitempty"`
	ProvWallNs       int64   `json:"prov_wall_ns,omitempty"`
	ProvOverheadPct  float64 `json:"prov_overhead_pct,omitempty"`
	ProvConeProcs    int     `json:"prov_cone_procs,omitempty"`
	ProvSummaryReads int64   `json:"prov_summary_reads,omitempty"`
	// Incremental re-analysis columns: a one-edit session on the check
	// (first procedure mutated, seed 42) re-checked incrementally vs
	// from scratch. IncrSpeedup is the cold/recheck tick ratio,
	// IncrSurvivingRatio the fraction of warm summaries surviving
	// invalidation, IncrConfluent the verdict-agreement oracle. Not
	// gated — review-diff material like the prov_* columns.
	IncrColdTicks      int64   `json:"incr_cold_ticks,omitempty"`
	IncrRecheckTicks   int64   `json:"incr_recheck_ticks,omitempty"`
	IncrSpeedup        float64 `json:"incr_speedup,omitempty"`
	IncrSurvivingRatio float64 `json:"incr_surviving_ratio,omitempty"`
	IncrConfluent      bool    `json:"incr_confluent,omitempty"`
	// Metrics is the streaming run's flattened metrics summary (counters,
	// sumdb traffic, punch-histogram aggregates, makespan).
	Metrics map[string]int64 `json:"metrics"`
	// WorkerUtilization is each worker's busy-tick share of the makespan,
	// in worker order (the load-balance view).
	WorkerUtilization []float64 `json:"worker_utilization,omitempty"`
}

// CollectStreaming measures the streaming engine at the given thread
// count against the 1-thread baseline on each check, with metrics and
// an event trace enabled on the streaming runs; the trace is analyzed
// into the entry's critical-path and efficiency fields.
func CollectStreaming(opts Options, threads int, checks []drivers.Check) StreamingBench {
	opts = opts.withDefaults()
	bench := StreamingBench{Threads: threads, Cores: opts.Cores}
	seqOpts := opts
	seqOpts.Async = false
	seqOpts.Metrics = false
	seqOpts.Tracer = nil
	parOpts := opts
	parOpts.Async = true
	parOpts.Metrics = true
	cores := opts.Cores
	if cores > threads {
		cores = threads
	}
	for _, check := range checks {
		seq := RunCheck(check, 1, seqOpts)
		rec := &obs.Recording{}
		// Tee rather than replace: a caller-supplied tracer (e.g. the
		// CLI's flight recorder) keeps seeing events alongside the
		// critical-path recording.
		parOpts.Tracer = obs.Tee(opts.Tracer, rec)
		par := RunCheck(check, threads, parOpts)
		entry := StreamingCheckBench{
			Check:        check.ID(),
			Verdict:      par.Verdict.String(),
			StopReason:   par.StopReason.String(),
			SeqTicks:     seq.Ticks,
			ParTicks:     par.Ticks,
			Queries:      par.Queries,
			WallNs:       int64(par.Wall),
			CoalesceHits: par.CoalesceHits,
			Metrics:      par.Metrics.Flatten(),
		}
		if m := entry.Metrics; m != nil {
			entry.EntailCacheHits = m["entailment_cache_hits"]
			entry.EntailCacheMisses = m["entailment_cache_misses"]
			entry.DPLLConflicts = m["dpll_conflicts"]
			entry.LearnedClauses = m["dpll_learned_clauses"]
			entry.Propagations = m["dpll_propagations"]
			entry.TheoryChecks = m["theory_checks"]
			entry.HashConsHits = m["hashcons_hits"]
		}
		if par.Ticks > 0 {
			entry.Speedup = float64(seq.Ticks) / float64(par.Ticks)
		}
		if rep, err := analyze.Analyze(rec.Events()); err == nil {
			entry.CriticalPathTicks = rep.CriticalPathTicks
			entry.SpanTicks = rep.SpanTicks
			if par.Ticks > 0 && cores > 0 {
				entry.ParallelEfficiency = float64(rep.WorkTicks) /
					(float64(par.Ticks) * float64(cores))
			}
		}
		if par.Metrics != nil && par.Metrics.MakespanTicks > 0 {
			for _, ws := range par.Metrics.Workers {
				entry.WorkerUtilization = append(entry.WorkerUtilization,
					float64(ws.BusyTicks)/float64(par.Metrics.MakespanTicks))
			}
		}
		// Price the provenance recorder on matched pairs: bare vs
		// recording runs that differ ONLY in the Provenance flag (both
		// metrics-on, tracer-off), min-of-N walls on each side. The prov_*
		// counters in the entry's metrics map are folded in from the
		// recording run — the main par run has the recorder off, so its
		// map would report them as zero against a non-zero top-level
		// ProvSummaryReads.
		bareOpts := opts
		bareOpts.Async = true
		bareOpts.Metrics = true
		bareOpts.Tracer = nil
		provOpts := bareOpts
		provOpts.Provenance = true
		// Interleave the pairs (bare, prov, bare, prov, ...) so process
		// warm-up drift hits both sides equally instead of whichever
		// block runs first. Each sample is priced as wall per virtual
		// tick, not raw wall: the work-stealing schedule length varies
		// ~15% run to run, and raw-wall deltas conflate that schedule
		// luck with the recorder's actual per-operation cost.
		var pr CheckResult
		bareRate := math.Inf(1)
		provRate := math.Inf(1)
		provWall := int64(1) << 62
		minTicks := int64(1) << 62
		rate := func(r CheckResult) float64 {
			if r.Ticks < minTicks {
				minTicks = r.Ticks
			}
			if r.Ticks <= 0 {
				return math.Inf(1)
			}
			return float64(r.Wall) / float64(r.Ticks)
		}
		for i := 0; i < provOverheadRuns; i++ {
			if bRate := rate(RunCheck(check, threads, bareOpts)); bRate < bareRate {
				bareRate = bRate
			}
			r := RunCheck(check, threads, provOpts)
			if pRate := rate(r); pRate < provRate {
				provRate = pRate
			}
			if int64(r.Wall) < provWall {
				provWall = int64(r.Wall)
			}
			pr = r
		}
		entry.ProvParTicks = pr.Ticks
		entry.ProvWallNs = provWall
		if bareRate > 0 && !math.IsInf(bareRate, 1) && !math.IsInf(provRate, 1) &&
			minTicks >= provOverheadMinTicks {
			entry.ProvOverheadPct = 100 * (provRate - bareRate) / bareRate
		}
		if pr.Prov != nil {
			entry.ProvConeProcs = len(pr.Prov.Procedures)
			entry.ProvSummaryReads = pr.Prov.SummaryReads
		}
		if entry.Metrics != nil {
			for k, v := range pr.Metrics.Flatten() {
				if strings.HasPrefix(k, "prov_") {
					entry.Metrics[k] = v
				}
			}
		}
		// Incremental re-analysis columns: one edit, incremental re-check
		// vs from scratch.
		if sess, err := RunEditSession(check.ID(), drivers.Source(check.Config), 1, 42, threads, "async", opts); err == nil && len(sess.Steps) == 1 {
			s := sess.Steps[0]
			entry.IncrColdTicks = s.ColdTicks
			entry.IncrRecheckTicks = s.RecheckTicks
			entry.IncrSpeedup = s.Speedup()
			if total := s.Surviving + s.Invalidated; total > 0 {
				entry.IncrSurvivingRatio = float64(s.Surviving) / float64(total)
			}
			entry.IncrConfluent = s.Confluent
		}
		bench.Checks = append(bench.Checks, entry)
		bench.TotalSeqTicks += seq.Ticks
		bench.TotalParTicks += par.Ticks
	}
	if bench.TotalParTicks > 0 {
		bench.TotalSpeedup = float64(bench.TotalSeqTicks) / float64(bench.TotalParTicks)
	}
	return bench
}

// WriteStreamingBench serializes the snapshot as indented JSON.
func WriteStreamingBench(w io.Writer, b StreamingBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadStreamingBench loads a snapshot written by WriteStreamingBench.
// Failures are diagnosed precisely — a missing baseline, an unparsable
// one, and a structurally empty one are different operator mistakes and
// each gets its own message — so the bench gate fails loudly instead of
// comparing against garbage.
func ReadStreamingBench(path string) (StreamingBench, error) {
	var b StreamingBench
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return b, fmt.Errorf(
				"harness: baseline snapshot %s does not exist; regenerate it with `boltbench -snapshot %s` (or `make bench-snapshot`) and commit it",
				path, path)
		}
		return b, fmt.Errorf("harness: reading snapshot %s: %w", path, err)
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf(
			"harness: snapshot %s is not valid JSON (%w); it may be corrupt or hand-edited — regenerate it with `boltbench -snapshot %s`",
			path, err, path)
	}
	if b.Threads <= 0 || len(b.Checks) == 0 {
		return b, fmt.Errorf(
			"harness: snapshot %s parsed but is structurally invalid (threads=%d, %d checks); regenerate it with `boltbench -snapshot %s`",
			path, b.Threads, len(b.Checks), path)
	}
	return b, nil
}

// SpeedupRegressionTolerance is the fraction of total speedup a fresh
// snapshot may lose against the committed one before the bench gate
// fails (absorbs work-stealing scheduling noise).
const SpeedupRegressionTolerance = 0.10

// CompareStreamingBench diffs a fresh snapshot against a committed
// baseline and returns the regressions: a dropped check, a changed
// verdict or stop reason, or a total-speedup drop beyond the
// tolerance. An empty slice means the gate passes.
func CompareStreamingBench(old, fresh StreamingBench) []string {
	var regs []string
	freshBy := map[string]StreamingCheckBench{}
	for _, c := range fresh.Checks {
		freshBy[c.Check] = c
	}
	for _, oc := range old.Checks {
		fc, ok := freshBy[oc.Check]
		if !ok {
			regs = append(regs, fmt.Sprintf("check %s missing from fresh snapshot", oc.Check))
			continue
		}
		if fc.Verdict != oc.Verdict {
			regs = append(regs, fmt.Sprintf(
				"check %s verdict changed: %q (stop %s) -> %q (stop %s)",
				oc.Check, oc.Verdict, oc.StopReason, fc.Verdict, fc.StopReason))
		}
	}
	if old.TotalSpeedup > 0 {
		floor := old.TotalSpeedup * (1 - SpeedupRegressionTolerance)
		if fresh.TotalSpeedup < floor {
			regs = append(regs, fmt.Sprintf(
				"total speedup regressed: %.2fx -> %.2fx (floor %.2fx at %.0f%% tolerance)",
				old.TotalSpeedup, fresh.TotalSpeedup, floor, SpeedupRegressionTolerance*100))
		}
	}
	return regs
}

// WriteStreamingDiff renders the per-check old-vs-fresh comparison as a
// table (informational; the pass/fail decision is CompareStreamingBench's).
func WriteStreamingDiff(w io.Writer, old, fresh StreamingBench) {
	freshBy := map[string]StreamingCheckBench{}
	for _, c := range fresh.Checks {
		freshBy[c.Check] = c
	}
	fmt.Fprintf(w, "%-45s %10s %10s %8s %8s  %s\n",
		"check", "old par", "new par", "old spd", "new spd", "verdict (stop)")
	for _, oc := range old.Checks {
		fc, ok := freshBy[oc.Check]
		if !ok {
			fmt.Fprintf(w, "%-45s %10d %10s %8.2f %8s  MISSING\n",
				oc.Check, oc.ParTicks, "-", oc.Speedup, "-")
			continue
		}
		fmt.Fprintf(w, "%-45s %10d %10d %8.2f %8.2f  %s (%s)\n",
			oc.Check, oc.ParTicks, fc.ParTicks, oc.Speedup, fc.Speedup,
			fc.Verdict, fc.StopReason)
	}
	fmt.Fprintf(w, "%-45s %10d %10d %8.2f %8.2f\n",
		"TOTAL", old.TotalParTicks, fresh.TotalParTicks, old.TotalSpeedup, fresh.TotalSpeedup)
}
