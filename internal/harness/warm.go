// Warm-start experiment: run each check cold with a persistent summary
// store attached, then re-run it warm from the store the cold run just
// populated. The warm run starts from yesterday's proven facts, so its
// makespan bounds the incremental cost of re-checking an unchanged
// program — the payoff of the wire format + store subsystem.

package harness

import (
	"fmt"
	"io"
	"path/filepath"
	"strconv"

	"repro/internal/core"
	"repro/internal/drivers"
	"repro/internal/store"
	"repro/internal/wire"
)

// WarmRow is one check's cold-vs-warm comparison.
type WarmRow struct {
	Check drivers.Check
	// ColdTicks/WarmTicks are the makespans of the store-populating run
	// and the store-consuming re-run; Speedup their ratio.
	ColdTicks int64
	WarmTicks int64
	Speedup   float64
	// Persisted is the summary count the cold run wrote; Loaded the count
	// the warm run started from (equal unless the store failed).
	Persisted int
	Loaded    int
	// WarmRead is how many of the loaded summaries the warm run actually
	// consumed (distinct warm summaries in the verdict's read set, from
	// the provenance recorder) — the live fraction of the store, as
	// opposed to Loaded, which only counts hydration.
	WarmRead int
	// Verdicts of both runs — the store carries sound facts about the
	// fingerprinted program, so these must agree.
	ColdVerdict core.Verdict
	WarmVerdict core.Verdict
	// Err is the first store failure across the two runs, if any.
	Err error
}

// checkFingerprint pins a store directory to one generated driver
// program (and the wire version), mirroring the facade's fingerprint
// discipline: a store is only ever warm-loaded into the exact program
// that produced it.
func checkFingerprint(check drivers.Check) store.Fingerprint {
	prog := drivers.Generate(check.Config)
	return store.NewFingerprint(
		"bolt/harness-warm",
		strconv.Itoa(wire.Version),
		check.ID(),
		prog.String(),
	)
}

// WarmVsCold runs each check twice at the given thread count — cold into
// a fresh per-check store under dir, then warm from it — and reports the
// comparison. Store failures are recorded per row, not fatal.
func WarmVsCold(opts Options, threads int, checks []drivers.Check, dir string) []WarmRow {
	var rows []WarmRow
	for i, check := range checks {
		rows = append(rows, warmVsColdOne(opts, threads, check,
			filepath.Join(dir, fmt.Sprintf("check%d", i))))
	}
	return rows
}

func warmVsColdOne(opts Options, threads int, check drivers.Check, dir string) WarmRow {
	row := WarmRow{Check: check}
	fp := checkFingerprint(check)

	runWith := func(collectProv bool) (CheckResult, error) {
		st, err := store.OpenDisk(dir, fp, false)
		if err != nil {
			return CheckResult{}, err
		}
		o := opts
		o.Store = st
		o.Provenance = o.Provenance || collectProv
		r := RunCheck(check, threads, o)
		if err := st.Close(); err != nil && r.StoreErr == nil {
			r.StoreErr = err
		}
		return r, r.StoreErr
	}

	cold, err := runWith(false)
	row.ColdTicks, row.ColdVerdict, row.Persisted = cold.Ticks, cold.Verdict, cold.PersistedSummaries
	if err != nil {
		row.Err = err
		return row
	}
	// The warm run records provenance so the row can report how many of
	// the loaded summaries were actually read, not just hydrated.
	warm, err := runWith(true)
	row.WarmTicks, row.WarmVerdict, row.Loaded = warm.Ticks, warm.Verdict, warm.WarmSummaries
	if warm.Prov != nil {
		row.WarmRead = warm.Prov.WarmRead
	}
	if err != nil {
		row.Err = err
		return row
	}
	if row.WarmTicks > 0 {
		row.Speedup = float64(row.ColdTicks) / float64(row.WarmTicks)
	}
	return row
}

// WriteWarmTable renders the cold-vs-warm comparison.
func WriteWarmTable(w io.Writer, threads int, rows []WarmRow) {
	fmt.Fprintf(w, "Warm-start: persistent summary store, cold run vs re-run (threads=%d)\n\n", threads)
	fmt.Fprintf(w, "%-45s %10s %10s %8s %8s %8s %8s  %s\n",
		"check", "cold", "warm", "spd", "saved", "loaded", "read", "verdict cold/warm")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(w, "%-45s store error: %v\n", r.Check.ID(), r.Err)
			continue
		}
		fmt.Fprintf(w, "%-45s %10d %10d %8.2f %8d %8d %8d  %s / %s\n",
			r.Check.ID(), r.ColdTicks, r.WarmTicks, r.Speedup,
			r.Persisted, r.Loaded, r.WarmRead,
			verdictShort(r.ColdVerdict), verdictShort(r.WarmVerdict))
	}
}
