package harness

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/drivers"
)

func TestRunCheckSequentialAndParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("driver verification is not short")
	}
	check := drivers.NamedCheck("parport", "MarkPowerDown", false)
	opts := Options{WallBudget: 180 * time.Second}
	seq := RunCheck(check, 1, opts)
	if seq.TimedOut && seq.Verdict == core.Unknown {
		t.Skip("wall budget exhausted (slow or loaded machine)")
	}
	if seq.Verdict != core.Safe {
		t.Fatalf("sequential verdict = %v", seq.Verdict)
	}
	par := RunCheck(check, 8, opts)
	if par.TimedOut && par.Verdict == core.Unknown {
		t.Skip("wall budget exhausted (slow or loaded machine)")
	}
	if par.Verdict != core.Safe {
		t.Fatalf("parallel verdict = %v", par.Verdict)
	}
	if par.Ticks <= 0 || seq.Ticks <= 0 {
		t.Fatal("missing virtual time")
	}
	if par.Ticks > seq.Ticks {
		t.Errorf("parallel slower than sequential: %d > %d", par.Ticks, seq.Ticks)
	}
	if len(seq.Trace) == 0 {
		t.Error("no instrumentation trace")
	}
}

func TestTableRenderers(t *testing.T) {
	rows := []Table1Row{{
		Check:    drivers.NamedCheck("parport", "MarkPowerDown", false),
		Ticks:    map[int]int64{1: 100, 2: 60, 4: 40, 8: 30, 16: 30, 32: 30, 64: 30, 128: 30},
		Speedup:  map[int]float64{1: 1, 2: 1.67, 4: 2.5, 8: 3.33, 16: 3.33, 32: 3.33, 64: 3.33, 128: 3.33},
		Verdicts: map[int]core.Verdict{},
	}}
	var b strings.Builder
	WriteTable1(&b, rows)
	if !strings.Contains(b.String(), "parport/MarkPowerDown") {
		t.Error("table 1 missing check id")
	}

	b.Reset()
	WriteTable2(&b, Table2Result{Checks: 3, SeqTicks: 300, ParTicks: 100, AvgSpeedup: 3, MaxSpeedup: 4, MaxCheck: "x/y"})
	if !strings.Contains(b.String(), "3.00x") || !strings.Contains(b.String(), "4.00x") {
		t.Errorf("table 2 rendering: %s", b.String())
	}

	b.Reset()
	WriteTable3(&b, []Table3Row{{
		Check:      drivers.NamedCheck("selsusp", "IrqlExAllocatePool", false),
		SeqTimeout: true,
		ParVerdict: core.Safe,
		ParTicks:   123,
	}}, 999)
	out := b.String()
	if !strings.Contains(out, "TO") || !strings.Contains(out, "Proof") {
		t.Errorf("table 3 rendering: %s", out)
	}

	b.Reset()
	WriteTable4(&b, []Table4Row{{
		Check:   drivers.NamedCheck("toastmon", "PnpIrpCompletion", false),
		Queries: map[int]int64{2: 10, 4: 11, 8: 12, 16: 12, 32: 12, 64: 12, 128: 12},
	}})
	if !strings.Contains(b.String(), "PnpIrpCompletion") {
		t.Error("table 4 missing property")
	}

	b.Reset()
	WriteSeries(&b, "t", []Series{{Label: "l", Points: [][2]int64{{0, 1}, {5, 2}}}})
	if !strings.Contains(b.String(), "# l") {
		t.Error("series rendering")
	}
}

func TestFig6DerivedFromTable1(t *testing.T) {
	rows := []Table1Row{{
		Check:   drivers.NamedCheck("parport", "MarkPowerDown", false),
		Ticks:   map[int]int64{},
		Speedup: map[int]float64{1: 1, 2: 2, 4: 3, 8: 3.5, 16: 3.5, 32: 3.5, 64: 3.5, 128: 3.5},
	}}
	series := Fig6(rows)
	if len(series) != 1 || len(series[0].Points) != len(ThreadSteps) {
		t.Fatalf("series shape: %+v", series)
	}
	// Points are (threads, speedup*100).
	if series[0].Points[1][0] != 2 || series[0].Points[1][1] != 200 {
		t.Errorf("point = %v", series[0].Points[1])
	}
}

func TestPlotSeries(t *testing.T) {
	var b strings.Builder
	PlotSeries(&b, "test plot", []Series{
		{Label: "ready", Points: [][2]int64{{0, 1}, {50, 8}, {100, 4}}},
		{Label: "batch", Points: [][2]int64{{0, 2}, {100, 2}}},
	}, 40, 8)
	out := b.String()
	if !strings.Contains(out, "test plot") || !strings.Contains(out, "* = ready") || !strings.Contains(out, "o = batch") {
		t.Fatalf("plot rendering:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no data markers plotted")
	}
	// Degenerate inputs must not panic.
	PlotSeries(&b, "empty", nil, 0, 0)
	PlotSeries(&b, "flat", []Series{{Label: "l", Points: [][2]int64{{0, 0}}}}, 10, 4)
}

// TestRunCheckStopReason: the harness must surface the engine's stop
// reason instead of conflating every Unknown verdict with a timeout (the
// old `TimedOut || Verdict == Unknown` logic).
func TestRunCheckStopReason(t *testing.T) {
	check := drivers.NamedCheck("parport", "MarkPowerDown", false)

	// An exhausted tick budget is a timeout...
	r := RunCheck(check, 4, Options{TickBudget: 1})
	if r.StopReason != core.StopTickBudget {
		t.Fatalf("stop reason %v, want tick-budget", r.StopReason)
	}
	if !r.TimedOut || r.Deadlocked {
		t.Fatalf("tick budget: timedOut=%v deadlocked=%v", r.TimedOut, r.Deadlocked)
	}

	// ...but a cancelled run is not.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r = RunCheck(check, 4, Options{Ctx: ctx})
	if r.StopReason != core.StopCancelled {
		t.Fatalf("stop reason %v, want cancelled", r.StopReason)
	}
	if r.TimedOut || r.Deadlocked {
		t.Fatalf("cancelled run misreported: timedOut=%v deadlocked=%v", r.TimedOut, r.Deadlocked)
	}
	if r.Verdict != core.Unknown {
		t.Fatalf("cancelled verdict %v", r.Verdict)
	}
}
