// The `boltbench -incr` experiment: for each check, an edit session
// that mutates every procedure once and re-checks incrementally,
// reporting cold-vs-recheck medians and the surviving-summary ratio.
package harness

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/drivers"
	"repro/internal/parser"
)

// IncrRow is one check's edit-session aggregate.
type IncrRow struct {
	Check drivers.Check
	// Procs is the program size; Steps the mutations applied (one per
	// procedure).
	Procs int
	Steps int
	// MedianColdTicks / MedianRecheckTicks are the per-step medians; a
	// reused verdict re-checks in 0 ticks and drags the median down,
	// which is the honest reading (those edits really cost nothing).
	MedianColdTicks    int64
	MedianRecheckTicks int64
	// MedianSpeedup is the median per-step cold/recheck tick ratio.
	MedianSpeedup float64
	// MedianColdWall / MedianRecheckWall are the wall-clock medians.
	MedianColdWall    time.Duration
	MedianRecheckWall time.Duration
	// SurvivingRatio is the mean fraction of warm summaries that
	// survived invalidation across steps; ReusedSteps counts edits whose
	// verdict was reused without a run.
	SurvivingRatio float64
	ReusedSteps    int
	// Confluent is the per-check soundness verdict: every step's
	// re-check agreed with its from-scratch run.
	Confluent bool
	Err       error
}

// IncrBench runs one edit session per check on the streaming engine:
// every procedure mutated once, re-checked incrementally over a shared
// session store, with a from-scratch run per step as baseline+oracle.
func IncrBench(opts Options, threads int, checks []drivers.Check) []IncrRow {
	var rows []IncrRow
	for _, check := range checks {
		rows = append(rows, incrBenchOne(opts, threads, check))
	}
	return rows
}

func incrBenchOne(opts Options, threads int, check drivers.Check) IncrRow {
	row := IncrRow{Check: check, Confluent: true}
	src := drivers.Source(check.Config)
	prog, err := parser.Parse(src)
	if err != nil {
		row.Err = err
		row.Confluent = false
		return row
	}
	row.Procs = len(prog.ProcNames())
	sess, err := RunEditSession(check.ID(), src, row.Procs, 42, threads, "async", opts)
	if err != nil {
		row.Err = err
		row.Confluent = false
		return row
	}
	row.Steps = len(sess.Steps)
	var colds, rechecks, coldWalls, recheckWalls []int64
	var speedups []float64
	var ratioSum float64
	ratioN := 0
	for _, s := range sess.Steps {
		colds = append(colds, s.ColdTicks)
		rechecks = append(rechecks, s.RecheckTicks)
		coldWalls = append(coldWalls, int64(s.ColdWall))
		recheckWalls = append(recheckWalls, int64(s.RecheckWall))
		speedups = append(speedups, s.Speedup())
		if total := s.Surviving + s.Invalidated; total > 0 {
			ratioSum += float64(s.Surviving) / float64(total)
			ratioN++
		}
		if s.Reused {
			row.ReusedSteps++
		}
		if !s.Confluent {
			row.Confluent = false
		}
	}
	row.MedianColdTicks = medianInt64(colds)
	row.MedianRecheckTicks = medianInt64(rechecks)
	row.MedianSpeedup = medianFloat(speedups)
	row.MedianColdWall = time.Duration(medianInt64(coldWalls))
	row.MedianRecheckWall = time.Duration(medianInt64(recheckWalls))
	if ratioN > 0 {
		row.SurvivingRatio = ratioSum / float64(ratioN)
	}
	return row
}

func medianInt64(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

func medianFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// WriteIncrTable renders the cold-vs-recheck table.
func WriteIncrTable(w io.Writer, threads int, rows []IncrRow) {
	fmt.Fprintf(w, "Incremental re-analysis: cold vs re-check after one-procedure edits\n")
	fmt.Fprintf(w, "(streaming engine, %d threads; one edit session per check, every procedure mutated once;\n", threads)
	fmt.Fprintf(w, "ticks and wall are per-step medians, speedup the median per-step ratio)\n\n")
	fmt.Fprintf(w, "%-45s %5s %10s %10s %8s %10s %10s %9s %7s %6s\n",
		"Check", "procs", "cold tk", "recheck tk", "spd", "cold ms", "recheck ms", "surviving", "reused", "confl")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(w, "%-45s ERROR: %v\n", r.Check.ID(), r.Err)
			continue
		}
		confl := "yes"
		if !r.Confluent {
			confl = "NO"
		}
		fmt.Fprintf(w, "%-45s %5d %10d %10d %7.1fx %10.2f %10.2f %8.0f%% %7d %6s\n",
			r.Check.ID(), r.Procs, r.MedianColdTicks, r.MedianRecheckTicks, r.MedianSpeedup,
			float64(r.MedianColdWall)/1e6, float64(r.MedianRecheckWall)/1e6,
			r.SurvivingRatio*100, r.ReusedSteps, confl)
	}
}
