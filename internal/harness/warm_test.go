package harness

import (
	"strings"
	"testing"

	"repro/internal/drivers"
)

// TestWarmVsCold: the warm run loads exactly what the cold run
// persisted, the verdicts agree, and warm never costs more virtual time
// than cold.
func TestWarmVsCold(t *testing.T) {
	checks := []drivers.Check{Table1Checks()[0]}
	rows := WarmVsCold(Options{}, 8, checks, t.TempDir())
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.Err != nil {
		t.Fatalf("store error: %v", r.Err)
	}
	if r.Persisted == 0 {
		t.Fatal("cold run persisted no summaries")
	}
	if r.Loaded != r.Persisted {
		t.Errorf("warm run loaded %d summaries, cold persisted %d", r.Loaded, r.Persisted)
	}
	if r.ColdVerdict != r.WarmVerdict {
		t.Fatalf("verdict diverged cold vs warm: %v vs %v", r.ColdVerdict, r.WarmVerdict)
	}
	if r.WarmTicks > r.ColdTicks {
		t.Errorf("warm run slower than cold: %d > %d ticks", r.WarmTicks, r.ColdTicks)
	}

	var sb strings.Builder
	WriteWarmTable(&sb, 8, rows)
	out := sb.String()
	if !strings.Contains(out, r.Check.ID()) || !strings.Contains(out, "Warm-start") {
		t.Errorf("warm table missing content:\n%s", out)
	}
}

// TestWarmVsColdSurvivesReopen: the second WarmVsCold over the same
// directory re-reads the store written by the first (the fingerprint
// matches, so it is reused, not rejected).
func TestWarmVsColdSurvivesReopen(t *testing.T) {
	checks := []drivers.Check{Table1Checks()[0]}
	dir := t.TempDir()
	first := WarmVsCold(Options{}, 8, checks, dir)
	if first[0].Err != nil {
		t.Fatal(first[0].Err)
	}
	second := WarmVsCold(Options{}, 8, checks, dir)
	if second[0].Err != nil {
		t.Fatal(second[0].Err)
	}
	if second[0].ColdVerdict != first[0].ColdVerdict {
		t.Errorf("verdict changed across store reuse: %v vs %v",
			first[0].ColdVerdict, second[0].ColdVerdict)
	}
	if second[0].Loaded == 0 {
		t.Error("re-run over an existing store loaded nothing")
	}
}
