// Package harness runs the paper's experiments (§5) on the synthetic
// driver suite and renders every table and figure of the evaluation.
//
// Timing is reported in virtual ticks: each PUNCH invocation's abstract
// work is charged to a simulated worker, and a MAP stage advances the
// clock by the batch's makespan on the configured number of cores. On the
// paper's 8-core workstation wall-clock time plays this role; virtual time
// makes the speedup shapes reproducible on any hardware (including the
// single-core machine this reproduction was developed on).
package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/drivers"
	"repro/internal/obs"
	"repro/internal/prov"
	"repro/internal/punch"
	"repro/internal/punch/maymust"
	"repro/internal/store"
)

// Options configure experiment runs.
type Options struct {
	// Cores is the simulated core count (the paper's machine: 8).
	Cores int
	// TickBudget is the virtual-time limit per check (the paper's 3000 s
	// wall-clock budget scaled to ticks). 0 = no limit.
	TickBudget int64
	// WallBudget bounds real time per check as a safety net.
	WallBudget time.Duration
	// NewPunch builds a fresh intraprocedural analysis per run; nil uses
	// the may-must instantiation, as the paper's evaluation does.
	NewPunch func() punch.Punch
	// Async runs every check with the streaming work-stealing engine
	// instead of the paper's bulk-synchronous MAP/REDUCE loop.
	Async bool
	// Ctx, when set, cancels in-flight runs: a check observing the
	// cancellation returns with StopReason core.StopCancelled. Nil means
	// no external cancellation.
	Ctx context.Context
	// Metrics attaches a fresh obs.Metrics registry to every run and its
	// snapshot to CheckResult.Metrics.
	Metrics bool
	// MetricsInto, when non-nil, is a shared live registry every run
	// accumulates into instead of a fresh private one (implies Metrics):
	// the CLIs hand the same registry to obs.StartDebugServer so
	// /metrics scrapes observe runs in flight.
	MetricsInto *obs.Metrics
	// Probe, when non-nil, receives each run's live-state snapshot
	// function (see core.Options.Probe); runs attach and detach in turn.
	Probe *obs.Probe
	// Tracer, when set, receives every run's query-lifecycle events.
	Tracer obs.Tracer
	// DisableCoalesce and DisableEntailmentCache are the
	// redundancy-elimination ablation switches (both features are on by
	// default); see core.Options.
	DisableCoalesce        bool
	DisableEntailmentCache bool
	// Store, when non-nil, is a persistent summary store the run
	// warm-starts from and persists its new summaries back into (see
	// core.Options.Store). The caller owns opening/closing it and
	// matching it to the check — the harness passes it straight through.
	Store store.Store
	// Provenance records each run's verdict dependency record into
	// CheckResult.Prov (see core.Options.CollectProvenance).
	Provenance bool
	// Incremental turns a Store-backed run into an edit-aware re-check
	// (see core.Options.Incremental): manifest diff, cone invalidation,
	// and verdict reuse, reported in CheckResult's incr fields.
	Incremental bool
}

func (o Options) withDefaults() Options {
	if o.Cores == 0 {
		o.Cores = 8
	}
	if o.WallBudget == 0 {
		o.WallBudget = 60 * time.Second
	}
	if o.NewPunch == nil {
		o.NewPunch = func() punch.Punch { return maymust.New() }
	}
	return o
}

// CheckResult is the outcome of one check under one thread count.
type CheckResult struct {
	Check   drivers.Check
	Threads int
	Verdict core.Verdict
	Ticks   int64
	Wall    time.Duration
	Queries int64
	Peak    int
	Trace   []core.IterSample
	// StopReason says why the run ended. TimedOut and Deadlocked mirror
	// the engine's derived flags: an Unknown verdict is no longer lumped
	// into TimedOut — a deadlocked or cancelled run reports its own
	// reason.
	StopReason core.StopReason
	TimedOut   bool
	Deadlocked bool
	CostByProc map[string]int64
	// CoalesceHits counts spawns answered by an in-flight twin.
	CoalesceHits int64
	// Metrics is the run's metrics snapshot (nil unless Options.Metrics).
	Metrics *obs.Snapshot
	// WarmSummaries/PersistedSummaries/StoreErr are the persistent-store
	// traffic when Options.Store is set (see core.Result).
	WarmSummaries      int
	PersistedSummaries int
	StoreErr           error
	// Prov is the verdict's dependency record (nil unless
	// Options.Provenance).
	Prov *prov.Provenance
	// Incremental re-check accounting (see core.Result; populated only
	// with Options.Incremental + Store).
	EditedProcs          []string
	InvalidatedSummaries int
	SurvivingSummaries   int
	ReusedVerdict        bool
}

// RunCheck verifies one driver-property pair with the given thread count.
func RunCheck(check drivers.Check, threads int, opts Options) CheckResult {
	opts = opts.withDefaults()
	prog := drivers.Generate(check.Config)
	var m *obs.Metrics
	if opts.MetricsInto != nil {
		m = opts.MetricsInto
	} else if opts.Metrics {
		m = obs.NewMetrics()
	}
	eng := core.New(prog, core.Options{
		Punch:           opts.NewPunch(),
		MaxThreads:      threads,
		VirtualCores:    opts.Cores,
		MaxVirtualTicks: opts.TickBudget,
		RealTimeout:     opts.WallBudget,
		MaxIterations:   1 << 19,
		Async:           opts.Async,
		Tracer:          opts.Tracer,
		Metrics:         m,
		Probe:           opts.Probe,
		Store:           opts.Store,

		CollectProvenance:      opts.Provenance,
		Incremental:            opts.Incremental,
		DisableCoalesce:        opts.DisableCoalesce,
		DisableEntailmentCache: opts.DisableEntailmentCache,
	})
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	res := eng.RunContext(ctx, core.AssertionQuestion(prog))
	return CheckResult{
		Check:        check,
		Threads:      threads,
		Verdict:      res.Verdict,
		Ticks:        res.VirtualTicks,
		Wall:         res.WallTime,
		Queries:      res.TotalQueries,
		Peak:         res.PeakReady,
		Trace:        res.Trace,
		StopReason:   res.StopReason,
		TimedOut:     res.TimedOut,
		Deadlocked:   res.Deadlocked,
		CostByProc:   res.CostByProc,
		CoalesceHits: res.CoalesceHits,
		Metrics:      res.Metrics,

		WarmSummaries:      res.WarmSummaries,
		PersistedSummaries: res.PersistedSummaries,
		StoreErr:           res.StoreErr,
		Prov:               res.Provenance,

		EditedProcs:          res.EditedProcs,
		InvalidatedSummaries: res.InvalidatedSummaries,
		SurvivingSummaries:   res.SurvivingSummaries,
		ReusedVerdict:        res.ReusedVerdict,
	}
}

// ThreadSteps is the thread-count ladder of Table 1.
var ThreadSteps = []int{1, 2, 4, 8, 16, 32, 64, 128}

// Table1Checks are the six checks of Table 1.
func Table1Checks() []drivers.Check {
	return []drivers.Check{
		drivers.NamedCheck("toastmon", "PendedCompletedRequest", false),
		drivers.NamedCheck("toastmon", "PnpIrpCompletion", false),
		drivers.NamedCheck("parport", "MarkPowerDown", false),
		drivers.NamedCheck("parport", "PowerDownFail", false),
		drivers.NamedCheck("parport", "PowerUpFail", false),
		drivers.NamedCheck("parport", "RemoveLockMnSurpriseRemove", false),
	}
}

// Table1Row is one check's times and speedups across the thread ladder.
type Table1Row struct {
	Check    drivers.Check
	Ticks    map[int]int64
	Speedup  map[int]float64
	Verdicts map[int]core.Verdict
}

// Table1 runs the six named checks across the thread ladder.
func Table1(opts Options) []Table1Row {
	var rows []Table1Row
	for _, check := range Table1Checks() {
		row := Table1Row{
			Check:    check,
			Ticks:    map[int]int64{},
			Speedup:  map[int]float64{},
			Verdicts: map[int]core.Verdict{},
		}
		for _, th := range ThreadSteps {
			r := RunCheck(check, th, opts)
			row.Ticks[th] = r.Ticks
			row.Verdicts[th] = r.Verdict
		}
		base := row.Ticks[1]
		for _, th := range ThreadSteps {
			if row.Ticks[th] > 0 {
				row.Speedup[th] = float64(base) / float64(row.Ticks[th])
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteTable1 renders Table 1 in the paper's layout.
func WriteTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1: virtual time (ticks) and speedup of parallel BOLT vs sequential\n")
	fmt.Fprintf(w, "(#cores=8; speedup relative to 1 thread)\n\n")
	fmt.Fprintf(w, "%-42s", "Check / Max. Number of Threads")
	fmt.Fprintf(w, "%10s", "1")
	for _, th := range ThreadSteps[1:] {
		fmt.Fprintf(w, "%10d%8s", th, "spd")
	}
	fmt.Fprintln(w)
	for _, row := range rows {
		fmt.Fprintf(w, "%-42s%10d", row.Check.ID(), row.Ticks[1])
		for _, th := range ThreadSteps[1:] {
			fmt.Fprintf(w, "%10d%8.2f", row.Ticks[th], row.Speedup[th])
		}
		fmt.Fprintln(w)
	}
}

// Table2Result is the cumulative summary of Table 2.
type Table2Result struct {
	Checks      int
	SeqTicks    int64
	ParTicks    int64
	AvgSpeedup  float64
	MaxSpeedup  float64
	MaxCheck    string
	ParVerdicts map[string]core.Verdict
}

// Table2 runs the suite's hard checks sequentially and with the given
// thread count (the paper uses 64 threads on 8 cores), reporting
// cumulative times and speedups. hardTicks is the sequential-time
// threshold for a check to count as hard (the paper's "at least 1000
// seconds"); maxChecks bounds the suite subset (0 = all).
func Table2(opts Options, threads int, hardTicks int64, maxChecks int) Table2Result {
	out := Table2Result{ParVerdicts: map[string]core.Verdict{}}
	var speedups []float64
	checks := drivers.SuiteChecks()
	if maxChecks > 0 && len(checks) > maxChecks {
		checks = checks[:maxChecks]
	}
	for _, check := range checks {
		seq := RunCheck(check, 1, opts)
		if seq.Ticks < hardTicks {
			continue
		}
		par := RunCheck(check, threads, opts)
		out.Checks++
		out.SeqTicks += seq.Ticks
		out.ParTicks += par.Ticks
		out.ParVerdicts[check.ID()] = par.Verdict
		if par.Ticks > 0 {
			s := float64(seq.Ticks) / float64(par.Ticks)
			speedups = append(speedups, s)
			if s > out.MaxSpeedup {
				out.MaxSpeedup = s
				out.MaxCheck = check.ID()
			}
		}
	}
	for _, s := range speedups {
		out.AvgSpeedup += s
	}
	if len(speedups) > 0 {
		out.AvgSpeedup /= float64(len(speedups))
	}
	return out
}

// WriteTable2 renders Table 2.
func WriteTable2(w io.Writer, r Table2Result) {
	fmt.Fprintf(w, "Table 2: cumulative results (#threads=64, #cores=8), %d hard checks\n\n", r.Checks)
	fmt.Fprintf(w, "%-40s %12d ticks\n", "Total time taken (sequential)", r.SeqTicks)
	fmt.Fprintf(w, "%-40s %12d ticks\n", "Total time taken (parallel)", r.ParTicks)
	fmt.Fprintf(w, "%-40s %12.2fx\n", "Average observed speedup", r.AvgSpeedup)
	fmt.Fprintf(w, "%-40s %12.2fx  (%s)\n", "Maximum observed speedup", r.MaxSpeedup, r.MaxCheck)
}

// Table3Row is one row of Table 3: a check the sequential analysis cannot
// finish within the budget but parallel BOLT proves.
type Table3Row struct {
	Check      drivers.Check
	SeqTimeout bool
	ParVerdict core.Verdict
	ParTicks   int64
}

// Table3Checks are the five named checks of Table 3.
func Table3Checks() []drivers.Check {
	return []drivers.Check{
		drivers.NamedCheck("daytona", "IoAllocateFree", false),
		drivers.NamedCheck("mouser", "NsRemoveLockMnRemove", false),
		drivers.NamedCheck("featured1", "ForwardedAtBadIrql", false),
		drivers.NamedCheck("incomplete2", "RemoveLockForwardDeviceControl", false),
		drivers.NamedCheck("selsusp", "IrqlExAllocatePool", false),
	}
}

// Table3 reproduces the "sequential times out, parallel proves" rows.
// For each check the tick budget is auto-calibrated to the midpoint
// between the parallel and sequential completion times (the paper fixed a
// 3000 s wall-clock budget that its checks happened to straddle); both
// configurations are then re-run under that budget.
func Table3(opts Options) ([]Table3Row, int64) {
	var rows []Table3Row
	// Calibrate one shared budget (the paper used a global 3000 s limit):
	// above every parallel completion time, below every sequential one,
	// when such a gap exists; otherwise the largest per-check midpoint.
	var maxPar, minSeq, maxMid int64
	minSeq = 1 << 62
	for _, check := range Table3Checks() {
		seqFull := RunCheck(check, 1, opts)
		parFull := RunCheck(check, 64, opts)
		if parFull.Ticks > maxPar {
			maxPar = parFull.Ticks
		}
		if seqFull.Ticks < minSeq {
			minSeq = seqFull.Ticks
		}
		if mid := (seqFull.Ticks + parFull.Ticks) / 2; mid > maxMid {
			maxMid = mid
		}
	}
	budget := maxMid
	if maxPar < minSeq {
		budget = (maxPar + minSeq) / 2
	}
	o := opts
	o.TickBudget = budget
	for _, check := range Table3Checks() {
		seq := RunCheck(check, 1, o)
		par := RunCheck(check, 64, o)
		rows = append(rows, Table3Row{
			Check:      check,
			SeqTimeout: seq.Verdict == core.Unknown,
			ParVerdict: par.Verdict,
			ParTicks:   par.Ticks,
		})
	}
	return rows, budget
}

// WriteTable3 renders Table 3.
func WriteTable3(w io.Writer, rows []Table3Row, budget int64) {
	fmt.Fprintf(w, "Table 3: checks where sequential runs out of time (budget %d ticks)\n", budget)
	fmt.Fprintf(w, "and parallel BOLT (#cores=8, 64 threads) produces a result\n\n")
	fmt.Fprintf(w, "%-45s %-6s %-16s %10s\n", "Check", "Seq", "Parallel", "Time")
	for _, r := range rows {
		seq := "ok"
		if r.SeqTimeout {
			seq = "TO"
		}
		fmt.Fprintf(w, "%-45s %-6s %-16s %10d\n", r.Check.ID(), seq, verdictShort(r.ParVerdict), r.ParTicks)
	}
}

func verdictShort(v core.Verdict) string {
	switch v {
	case core.Safe:
		return "Proof"
	case core.ErrorReachable:
		return "Error"
	}
	return "TO"
}

// Table4Row is one property's total query counts across thread counts.
type Table4Row struct {
	Check   drivers.Check
	Queries map[int]int64
}

// Table4 measures the total number of queries for the two toastmon
// properties across the thread ladder (the query-order effect).
func Table4(opts Options) []Table4Row {
	checks := []drivers.Check{
		drivers.NamedCheck("toastmon", "PendedCompletedRequest", false),
		drivers.NamedCheck("toastmon", "PnpIrpCompletion", false),
	}
	var rows []Table4Row
	for _, check := range checks {
		row := Table4Row{Check: check, Queries: map[int]int64{}}
		for _, th := range ThreadSteps[1:] { // paper's table starts at 2
			r := RunCheck(check, th, opts)
			row.Queries[th] = r.Queries
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteTable4 renders Table 4.
func WriteTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintf(w, "Table 4: total queries performed for varying degrees of parallelism\n")
	fmt.Fprintf(w, "(toastmon, #cores=8)\n\n")
	fmt.Fprintf(w, "%-42s", "Property / Max. Number of Threads")
	for _, th := range ThreadSteps[1:] {
		fmt.Fprintf(w, "%8d", th)
	}
	fmt.Fprintln(w)
	for _, row := range rows {
		fmt.Fprintf(w, "%-42s", row.Check.Property)
		for _, th := range ThreadSteps[1:] {
			fmt.Fprintf(w, "%8d", row.Queries[th])
		}
		fmt.Fprintln(w)
	}
}

// Series is a (virtual time, value) series for the figures.
type Series struct {
	Label  string
	Points [][2]int64 // (vtime, value)
}

// Fig3 instruments a sequential run and reports the number of Ready
// sub-queries over virtual time (the parallelism opportunity plot).
func Fig3(opts Options) Series {
	check := drivers.NamedCheck("toastmon", "PnpIrpCompletion", false)
	r := RunCheck(check, 1, opts)
	s := Series{Label: "ready queries (sequential, " + check.ID() + ")"}
	for _, smp := range r.Trace {
		s.Points = append(s.Points, [2]int64{smp.VTime, int64(smp.Ready)})
	}
	return s
}

// Fig6 derives the speedup-vs-threads series from Table 1 rows.
func Fig6(rows []Table1Row) []Series {
	var out []Series
	for _, row := range rows {
		s := Series{Label: row.Check.ID()}
		for _, th := range ThreadSteps {
			sp := row.Speedup[th]
			s.Points = append(s.Points, [2]int64{int64(th), int64(sp*100 + 0.5)})
		}
		out = append(out, s)
	}
	return out
}

// Fig7 reports the number of queries processed in parallel over virtual
// time for max-threads 2..64 on toastmon/PnpIrpCompletion (sub-figures
// (a)-(f); 128 is identical to 64 by saturation).
func Fig7(opts Options) []Series {
	check := drivers.NamedCheck("toastmon", "PnpIrpCompletion", false)
	var out []Series
	for _, th := range []int{2, 4, 8, 16, 32, 64} {
		r := RunCheck(check, th, opts)
		s := Series{Label: fmt.Sprintf("threads=%d", th)}
		for _, smp := range r.Trace {
			s.Points = append(s.Points, [2]int64{smp.VTime, int64(smp.Processed)})
		}
		out = append(out, s)
	}
	return out
}

// WriteSeries renders series as aligned text columns (and is trivially
// convertible to CSV).
func WriteSeries(w io.Writer, title string, series []Series) {
	fmt.Fprintf(w, "%s\n", title)
	for _, s := range series {
		fmt.Fprintf(w, "# %s\n", s.Label)
		for _, p := range s.Points {
			fmt.Fprintf(w, "%12d %8d\n", p[0], p[1])
		}
		fmt.Fprintln(w)
	}
}
