// Edit-session driver for the incremental re-analysis experiments: K
// successive single-procedure mutations of one program, re-checked
// incrementally over a shared summary store after each edit, with a
// from-scratch run per step as the confluence oracle and the cold
// baseline.
package harness

import (
	"fmt"
	"time"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/parser"
	"repro/internal/store"
)

// EditStep is one mutate-and-recheck round of an edit session.
type EditStep struct {
	// Proc is the mutated procedure; Seed the mutation seed.
	Proc string
	Seed int64
	// Cold* is the from-scratch run on the edited program (no store);
	// Recheck* the incremental re-check over the session store. A reused
	// verdict re-checks in 0 ticks.
	ColdTicks    int64
	RecheckTicks int64
	ColdWall     time.Duration
	RecheckWall  time.Duration
	// Invalidated/Surviving are the re-check's summary accounting;
	// Reused reports a verdict answered without a run.
	Invalidated int
	Surviving   int
	Reused      bool
	// ColdVerdict/RecheckVerdict and their agreement (Confluent) are the
	// soundness oracle: an incremental re-check must never change the
	// answer.
	ColdVerdict    core.Verdict
	RecheckVerdict core.Verdict
	Confluent      bool
	// Err is the step's first failure (mutation, parse, or store).
	Err error
}

// EditSessionResult is a whole session: the initial populate run plus
// one EditStep per mutation.
type EditSessionResult struct {
	Name         string
	Engine       string
	Procs        int
	InitialTicks int64
	Steps        []EditStep
}

// Speedup is the step's cold/recheck tick ratio; a reused verdict
// (0 recheck ticks) reports the cold ticks as the ratio, the natural
// "saved the whole run" reading under the +1 smoothing.
func (s EditStep) Speedup() float64 {
	return float64(s.ColdTicks) / float64(s.RecheckTicks+1)
}

// RunEditSession mutates src's procedures round-robin (procs sorted,
// step i mutates procs[i%n] with seed+i), re-checking incrementally
// after each edit on the named engine ("barrier", "async", or "dist")
// over one shared in-memory store. Each step also runs the edited
// program from scratch for the cold baseline and verdict confluence.
func RunEditSession(name, src string, steps int, seed int64, threads int, engine string, opts Options) (EditSessionResult, error) {
	opts = opts.withDefaults()
	prog, err := parser.Parse(src)
	if err != nil {
		return EditSessionResult{}, fmt.Errorf("edit session %s: %w", name, err)
	}
	procs := prog.ProcNames()
	out := EditSessionResult{Name: name, Engine: engine, Procs: len(procs)}

	st := store.NewMem()
	first, err := runIncrEngine(prog, threads, engine, st, opts)
	if err != nil {
		return out, fmt.Errorf("edit session %s: populate: %w", name, err)
	}
	out.InitialTicks = first.ticks

	cur := src
	for i := 0; i < steps; i++ {
		step := EditStep{Proc: procs[i%len(procs)], Seed: seed + int64(i)}
		mutated, err := incr.MutateSource(cur, step.Proc, step.Seed)
		if err != nil {
			step.Err = err
			out.Steps = append(out.Steps, step)
			return out, fmt.Errorf("edit session %s: step %d: %w", name, i, err)
		}
		cur = mutated
		edited, err := parser.Parse(cur)
		if err != nil {
			step.Err = err
			out.Steps = append(out.Steps, step)
			return out, fmt.Errorf("edit session %s: step %d: %w", name, i, err)
		}

		re, err := runIncrEngine(edited, threads, engine, st, opts)
		if err != nil {
			step.Err = err
			out.Steps = append(out.Steps, step)
			return out, fmt.Errorf("edit session %s: step %d: %w", name, i, err)
		}
		step.RecheckTicks = re.ticks
		step.RecheckWall = re.wall
		step.RecheckVerdict = re.verdict
		step.Invalidated = re.invalidated
		step.Surviving = re.surviving
		step.Reused = re.reused

		cold, err := runIncrEngine(edited, threads, engine, nil, opts)
		if err != nil {
			step.Err = err
			out.Steps = append(out.Steps, step)
			return out, fmt.Errorf("edit session %s: step %d: %w", name, i, err)
		}
		step.ColdTicks = cold.ticks
		step.ColdWall = cold.wall
		step.ColdVerdict = cold.verdict
		step.Confluent = step.RecheckVerdict == step.ColdVerdict
		out.Steps = append(out.Steps, step)
	}
	return out, nil
}

// incrRun is the engine-independent slice of one run an edit session
// cares about.
type incrRun struct {
	verdict     core.Verdict
	ticks       int64
	wall        time.Duration
	invalidated int
	surviving   int
	reused      bool
}

// runIncrEngine runs one check on the named engine. A nil store means a
// from-scratch run (no warm-start, no incremental machinery).
func runIncrEngine(prog *cfg.Program, threads int, engine string, st store.Store, opts Options) (incrRun, error) {
	switch engine {
	case "barrier", "async":
		eng := core.New(prog, core.Options{
			Punch:           opts.NewPunch(),
			MaxThreads:      threads,
			VirtualCores:    opts.Cores,
			MaxVirtualTicks: opts.TickBudget,
			RealTimeout:     opts.WallBudget,
			MaxIterations:   1 << 19,
			Async:           engine == "async",
			Store:           st,
			Incremental:     st != nil,
		})
		r := eng.Run(core.AssertionQuestion(prog))
		if r.StoreErr != nil {
			return incrRun{}, r.StoreErr
		}
		return incrRun{
			verdict:     r.Verdict,
			ticks:       r.VirtualTicks,
			wall:        r.WallTime,
			invalidated: r.InvalidatedSummaries,
			surviving:   r.SurvivingSummaries,
			reused:      r.ReusedVerdict,
		}, nil
	case "dist":
		eng := core.NewDistributed(prog, core.DistOptions{
			Punch:          opts.NewPunch(),
			Nodes:          3,
			ThreadsPerNode: max(1, threads/3),
			RealTimeout:    opts.WallBudget,
			Store:          st,
			Incremental:    st != nil,
		})
		r := eng.Run(core.AssertionQuestion(prog))
		if r.StoreErr != nil {
			return incrRun{}, r.StoreErr
		}
		return incrRun{
			verdict:     r.Verdict,
			ticks:       r.VirtualTicks,
			wall:        r.WallTime,
			invalidated: r.InvalidatedSummaries,
			surviving:   r.SurvivingSummaries,
			reused:      r.ReusedVerdict,
		}, nil
	}
	return incrRun{}, fmt.Errorf("unknown engine %q", engine)
}
