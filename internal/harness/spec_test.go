package harness

import (
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/drivers"
	"repro/internal/punch/maymust"
)

func TestSmokeSpeculation(t *testing.T) {
	if os.Getenv("HARNESS_SMOKE") == "" {
		t.Skip("set HARNESS_SMOKE=1")
	}
	prog := drivers.Generate(drivers.NamedCheck("parport", "MarkPowerDown", false).Config)
	for _, spec := range []bool{false, true} {
		r := core.New(prog, core.Options{
			Punch: maymust.New(), MaxThreads: 16, VirtualCores: 8,
			Speculate: spec, MaxIterations: 1 << 19, RealTimeout: 60 * time.Second,
		}).Run(core.AssertionQuestion(prog))
		t.Logf("speculate=%v verdict=%v ticks=%d queries=%d", spec, r.Verdict, r.VirtualTicks, r.TotalQueries)
	}
}
