package harness

import (
	"os"
	"testing"
	"time"
)

// TestSmokeThreadLadder prints one check's scaling; enable with
// HARNESS_SMOKE=1.
func TestSmokeThreadLadder(t *testing.T) {
	if os.Getenv("HARNESS_SMOKE") == "" {
		t.Skip("set HARNESS_SMOKE=1")
	}
	opts := Options{WallBudget: 60 * time.Second}
	check := Table1Checks()[1] // toastmon/PnpIrpCompletion
	for _, th := range []int{1, 2, 4, 8, 16, 64} {
		start := time.Now()
		r := RunCheck(check, th, opts)
		t.Logf("threads=%3d verdict=%v ticks=%d queries=%d peak=%d wall=%v",
			th, r.Verdict, r.Ticks, r.Queries, r.Peak, time.Since(start).Round(time.Millisecond))
	}
}

// TestSmokeCostProfile prints per-procedure cost for the sequential run;
// enable with HARNESS_SMOKE=1.
func TestSmokeCostProfile(t *testing.T) {
	if os.Getenv("HARNESS_SMOKE") == "" {
		t.Skip("set HARNESS_SMOKE=1")
	}
	opts := Options{WallBudget: 60 * time.Second}
	check := Table1Checks()[1]
	r := RunCheck(check, 1, opts)
	t.Logf("verdict=%v ticks=%d queries=%d", r.Verdict, r.Ticks, r.Queries)
	for proc, c := range r.CostByProc {
		t.Logf("  %-20s %10d", proc, c)
	}
}

// TestSmokeTrace prints the per-iteration schedule at 8 threads; enable
// with HARNESS_SMOKE=1.
func TestSmokeTrace(t *testing.T) {
	if os.Getenv("HARNESS_SMOKE") == "" {
		t.Skip("set HARNESS_SMOKE=1")
	}
	opts := Options{WallBudget: 60 * time.Second}
	check := Table1Checks()[1]
	r := RunCheck(check, 8, opts)
	t.Logf("verdict=%v ticks=%d iters=%d", r.Verdict, r.Ticks, len(r.Trace))
	for i, s := range r.Trace {
		if i%10 == 0 || s.Ready > 6 {
			t.Logf("iter=%4d vt=%8d ready=%3d proc=%2d cost=%6d live=%3d new=%d", s.Iter, s.VTime, s.Ready, s.Processed, s.StageCost, s.Live, s.NewQueries)
		}
	}
}

// TestSmokeTable1Checks measures each Table 1 check sequentially; enable
// with HARNESS_SMOKE=1.
func TestSmokeTable1Checks(t *testing.T) {
	if os.Getenv("HARNESS_SMOKE") == "" {
		t.Skip("set HARNESS_SMOKE=1")
	}
	opts := Options{WallBudget: 45 * time.Second}
	for _, check := range Table1Checks() {
		start := time.Now()
		r := RunCheck(check, 1, opts)
		t.Logf("%-42s verdict=%v ticks=%8d wall=%v", check.ID(), r.Verdict, r.Ticks, time.Since(start).Round(time.Millisecond))
	}
}
