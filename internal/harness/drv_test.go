package harness

import (
	"os"
	"testing"
	"time"

	"repro/internal/drivers"
)

func TestSmokeFillerDrivers(t *testing.T) {
	if os.Getenv("HARNESS_SMOKE") == "" {
		t.Skip("")
	}
	for _, d := range []string{"drv07", "drv12", "drv20"} {
		for _, p := range []string{"IoAllocateFree", "PowerUpFail"} {
			check := drivers.NamedCheck(d, p, false)
			start := time.Now()
			r := RunCheck(check, 1, Options{WallBudget: 100 * time.Second})
			t.Logf("%-28s verdict=%-28v ticks=%9d wall=%v", check.ID(), r.Verdict, r.Ticks, time.Since(start).Round(time.Millisecond))
		}
	}
}
