package harness

import (
	"os"
	"testing"
	"time"

	"repro/internal/drivers"
)

func TestSmokePended(t *testing.T) {
	if os.Getenv("HARNESS_SMOKE") == "" {
		t.Skip("")
	}
	check := drivers.NamedCheck("toastmon", "PendedCompletedRequest", false)
	start := time.Now()
	r := RunCheck(check, 1, Options{WallBudget: 120 * time.Second})
	t.Logf("%s verdict=%v ticks=%d wall=%v queries=%d", check.ID(), r.Verdict, r.Ticks, time.Since(start).Round(time.Second), r.Queries)
}
