package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/drivers"
	"repro/internal/punch"
	"repro/internal/query"
	"repro/internal/summary"
)

// benchPunch scripts a fan-out analysis for fast deterministic
// snapshots: the root spawns width independent children (one expensive
// slice each) and finishes after the last answer. One instance serves
// one run (Options.NewPunch hands out a fresh one per run).
type benchPunch struct {
	mu       sync.Mutex
	calls    map[query.ID]int
	width    int
	doneKids int
}

func (p *benchPunch) Name() string { return "bench-script" }

func (p *benchPunch) Step(ctx *punch.Context, qr *query.Query) punch.Result {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls[qr.ID]++
	if qr.Parent == query.NoParent {
		switch {
		case p.calls[qr.ID] == 1:
			kids := make([]*query.Query, p.width)
			for i := range kids {
				kids[i] = ctx.Alloc.New(qr.ID, summary.Question{Proc: fmt.Sprintf("leaf%d", i)})
			}
			qr.State = query.Blocked
			return punch.Result{Self: qr, Children: kids, Cost: 1}
		case p.doneKids < p.width:
			// Woken by an early child; the root only resolves once every
			// leaf has answered (free re-block, to keep the work total
			// exact).
			qr.State = query.Blocked
			return punch.Result{Self: qr, Cost: 0}
		default:
			qr.State, qr.Outcome = query.Done, query.Unreachable
			return punch.Result{Self: qr, Cost: 1}
		}
	}
	qr.State, qr.Outcome = query.Done, query.Unreachable
	p.doneKids++
	return punch.Result{Self: qr, Cost: 500}
}

func scriptedOptions(width int) Options {
	return Options{
		Cores:    4,
		NewPunch: func() punch.Punch { return &benchPunch{calls: map[query.ID]int{}, width: width} },
	}
}

// TestCollectStreamingScripted: the snapshot's arithmetic and derived
// trace fields hold on a deterministic scripted workload.
func TestCollectStreamingScripted(t *testing.T) {
	checks := []drivers.Check{drivers.NamedCheck("toastmon", "PendedCompletedRequest", false)}
	bench := CollectStreaming(scriptedOptions(8), 4, checks)

	if bench.Threads != 4 {
		t.Errorf("Threads = %d, want 4", bench.Threads)
	}
	if len(bench.Checks) != 1 {
		t.Fatalf("%d check entries, want 1", len(bench.Checks))
	}
	c := bench.Checks[0]
	if c.Check != checks[0].ID() {
		t.Errorf("Check = %q, want %q", c.Check, checks[0].ID())
	}
	if c.StopReason != "root-answered" {
		t.Errorf("StopReason = %q, want root-answered", c.StopReason)
	}
	// Fan-out of 8 x 500 over 4 cores: sequential 4002, parallel 1002.
	if c.SeqTicks != 4002 {
		t.Errorf("SeqTicks = %d, want 4002", c.SeqTicks)
	}
	if c.ParTicks <= 0 || c.ParTicks >= c.SeqTicks {
		t.Errorf("ParTicks = %d, want in (0, %d)", c.ParTicks, c.SeqTicks)
	}
	wantSpeedup := float64(c.SeqTicks) / float64(c.ParTicks)
	if c.Speedup != wantSpeedup {
		t.Errorf("Speedup = %v, want SeqTicks/ParTicks = %v", c.Speedup, wantSpeedup)
	}
	if bench.TotalSeqTicks != c.SeqTicks || bench.TotalParTicks != c.ParTicks {
		t.Errorf("totals (%d, %d) don't match the single entry (%d, %d)",
			bench.TotalSeqTicks, bench.TotalParTicks, c.SeqTicks, c.ParTicks)
	}
	if bench.TotalSpeedup != wantSpeedup {
		t.Errorf("TotalSpeedup = %v, want %v", bench.TotalSpeedup, wantSpeedup)
	}

	// Trace-derived fields: the fan-out's span is 1 + 500 + 1, and the
	// critical path is the span under its other name.
	if c.SpanTicks != 502 {
		t.Errorf("SpanTicks = %d, want 502", c.SpanTicks)
	}
	if c.CriticalPathTicks != c.SpanTicks {
		t.Errorf("CriticalPathTicks = %d != SpanTicks = %d", c.CriticalPathTicks, c.SpanTicks)
	}
	if c.ParallelEfficiency <= 0 || c.ParallelEfficiency > 1.01 {
		t.Errorf("ParallelEfficiency = %v, want in (0, 1]", c.ParallelEfficiency)
	}

	// Metrics flattening: the snapshot keys the gate and the CLIs rely on.
	for _, key := range []string{"punch_invocations", "queries_spawned", "queries_done", "makespan_ticks", "punch_cost_sum"} {
		if _, ok := c.Metrics[key]; !ok {
			t.Errorf("Metrics missing key %q", key)
		}
	}
	if got := c.Metrics["punch_invocations"]; got < 10 {
		t.Errorf("punch_invocations = %d, want >= 10 (root twice + 8 leaves + wake slices)", got)
	}
	if got := c.Metrics["punch_cost_sum"]; got != 4002 {
		t.Errorf("punch_cost_sum = %d, want the total work 4002", got)
	}

	// Worker utilization shares are fractions of the makespan; their sum
	// cannot exceed the thread count (and on this workload not the core
	// count either).
	var sum float64
	for _, u := range c.WorkerUtilization {
		if u < 0 {
			t.Errorf("negative worker utilization %v", u)
		}
		sum += u
	}
	if sum > float64(bench.Threads) {
		t.Errorf("utilization shares sum to %v, above the %d threads", sum, bench.Threads)
	}
}

func fakeBench() StreamingBench {
	return StreamingBench{
		Threads: 4, Cores: 4,
		Checks: []StreamingCheckBench{
			{Check: "a/p1", Verdict: "Safe", StopReason: "root-answered", SeqTicks: 4000, ParTicks: 1000, Speedup: 4},
			{Check: "b/p2", Verdict: "Error Reachable", StopReason: "root-answered", SeqTicks: 6000, ParTicks: 2000, Speedup: 3},
		},
		TotalSeqTicks: 10000, TotalParTicks: 3000, TotalSpeedup: 10000.0 / 3000,
	}
}

func TestCompareStreamingBench(t *testing.T) {
	old := fakeBench()

	if regs := CompareStreamingBench(old, fakeBench()); len(regs) != 0 {
		t.Errorf("identical snapshots flagged: %v", regs)
	}

	// A drop inside the tolerance passes.
	slow := fakeBench()
	slow.TotalSpeedup = old.TotalSpeedup * 0.95
	if regs := CompareStreamingBench(old, slow); len(regs) != 0 {
		t.Errorf("5%% drop flagged within 10%% tolerance: %v", regs)
	}

	// A 2x makespan regression (half the speedup) fails.
	bad := fakeBench()
	bad.TotalParTicks *= 2
	bad.TotalSpeedup = float64(bad.TotalSeqTicks) / float64(bad.TotalParTicks)
	regs := CompareStreamingBench(old, bad)
	if len(regs) != 1 || !strings.Contains(regs[0], "total speedup regressed") {
		t.Errorf("2x makespan regression not flagged correctly: %v", regs)
	}

	// A verdict flip fails even with the speedup intact.
	flip := fakeBench()
	flip.Checks[1].Verdict = "Safe"
	regs = CompareStreamingBench(old, flip)
	if len(regs) != 1 || !strings.Contains(regs[0], "verdict changed") {
		t.Errorf("verdict change not flagged correctly: %v", regs)
	}

	// A dropped check fails.
	missing := fakeBench()
	missing.Checks = missing.Checks[:1]
	missing.TotalSeqTicks, missing.TotalParTicks = 4000, 1000
	missing.TotalSpeedup = 4
	regs = CompareStreamingBench(old, missing)
	if len(regs) != 1 || !strings.Contains(regs[0], "missing") {
		t.Errorf("dropped check not flagged correctly: %v", regs)
	}
}

// TestReadStreamingBenchDiagnostics: the bench gate's failure modes are
// operator mistakes that each need an actionable message — a missing
// baseline says how to regenerate it, an unparsable or structurally
// empty one is distinguished from a clean miss.
func TestReadStreamingBenchDiagnostics(t *testing.T) {
	dir := t.TempDir()

	missing := filepath.Join(dir, "nope.json")
	if _, err := ReadStreamingBench(missing); err == nil {
		t.Error("missing baseline did not error")
	} else {
		if !strings.Contains(err.Error(), "does not exist") ||
			!strings.Contains(err.Error(), "boltbench -snapshot") {
			t.Errorf("missing-baseline error lacks regenerate hint: %v", err)
		}
	}

	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadStreamingBench(corrupt); err == nil {
		t.Error("corrupt baseline did not error")
	} else if !strings.Contains(err.Error(), "not valid JSON") {
		t.Errorf("corrupt-baseline error undiagnostic: %v", err)
	}

	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadStreamingBench(empty); err == nil {
		t.Error("structurally empty baseline did not error")
	} else if !strings.Contains(err.Error(), "structurally invalid") {
		t.Errorf("empty-baseline error undiagnostic: %v", err)
	}

	// A valid snapshot still loads.
	good := filepath.Join(dir, "good.json")
	f, err := os.Create(good)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteStreamingBench(f, fakeBench()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := ReadStreamingBench(good); err != nil {
		t.Errorf("valid snapshot rejected: %v", err)
	}
}

// TestCommittedSnapshotLoads: the baseline the bench gate diffs against
// must stay parseable and structurally sound.
func TestCommittedSnapshotLoads(t *testing.T) {
	b, err := ReadStreamingBench("../../BENCH_streaming.json")
	if err != nil {
		t.Fatalf("committed snapshot unreadable: %v", err)
	}
	if b.Threads <= 0 || len(b.Checks) == 0 || b.TotalSpeedup <= 0 {
		t.Fatalf("committed snapshot implausible: threads=%d checks=%d speedup=%v",
			b.Threads, len(b.Checks), b.TotalSpeedup)
	}
	for _, c := range b.Checks {
		if c.Check == "" || c.Verdict == "" || c.StopReason == "" {
			t.Errorf("entry %+v missing identity fields", c)
		}
		if c.SpanTicks <= 0 || c.CriticalPathTicks != c.SpanTicks {
			t.Errorf("%s: span/critical-path fields unset or inconsistent (span %d, critical %d)",
				c.Check, c.SpanTicks, c.CriticalPathTicks)
		}
	}
	// Comparing the snapshot against itself is always clean.
	if regs := CompareStreamingBench(b, b); len(regs) != 0 {
		t.Errorf("self-comparison flagged: %v", regs)
	}
}

// TestProvAccountingConsistent: the entry's top-level ProvSummaryReads
// and the metrics map's prov_summary_reads key must agree — both now
// come from the same recording run (they used to come from different
// runs: the map read 0 against a non-zero top-level count). The incr_*
// columns ride on the same real-check collection.
func TestProvAccountingConsistent(t *testing.T) {
	checks := []drivers.Check{drivers.NamedCheck("parport", "PowerDownFail", false)}
	bench := CollectStreaming(Options{Cores: 4}, 4, checks)
	if len(bench.Checks) != 1 {
		t.Fatalf("%d check entries, want 1", len(bench.Checks))
	}
	c := bench.Checks[0]
	if c.ProvSummaryReads == 0 {
		t.Fatal("recording run observed no summary reads")
	}
	if got := c.Metrics["prov_summary_reads"]; got != c.ProvSummaryReads {
		t.Fatalf("metrics map prov_summary_reads = %d, top-level ProvSummaryReads = %d; must come from the same run",
			got, c.ProvSummaryReads)
	}
	if c.ProvConeProcs == 0 {
		t.Fatal("recording run produced no dependency cone")
	}
	if c.IncrColdTicks == 0 || c.IncrRecheckTicks >= c.IncrColdTicks || !c.IncrConfluent {
		t.Fatalf("incr columns implausible: cold=%d recheck=%d confluent=%v",
			c.IncrColdTicks, c.IncrRecheckTicks, c.IncrConfluent)
	}
}
