package harness

import (
	"fmt"
	"io"
	"strings"
)

// PlotSeries renders series as an ASCII chart (time on the x-axis, value
// on the y-axis), the textual analogue of the paper's figures. Each
// series gets its own marker; axes are scaled to the data.
func PlotSeries(w io.Writer, title string, series []Series, width, height int) {
	fmt.Fprintf(w, "%s\n", title)
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 16
	}
	var maxX, maxY int64
	for _, s := range series {
		for _, p := range s.Points {
			if p[0] > maxX {
				maxX = p[0]
			}
			if p[1] > maxY {
				maxY = p[1]
			}
		}
	}
	if maxX == 0 {
		maxX = 1
	}
	if maxY == 0 {
		maxY = 1
	}
	markers := []byte("*o+x#@%&")
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for _, p := range s.Points {
			x := int(p[0] * int64(width-1) / maxX)
			y := int(p[1] * int64(height-1) / maxY)
			row := height - 1 - y
			if row >= 0 && row < height && x >= 0 && x < width {
				grid[row][x] = m
			}
		}
	}
	for i, row := range grid {
		label := "      "
		if i == 0 {
			label = fmt.Sprintf("%6d", maxY)
		} else if i == height-1 {
			label = fmt.Sprintf("%6d", 0)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(w, "       +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "        0%s%d\n", strings.Repeat(" ", width-1-len(fmt.Sprint(maxX))), maxX)
	for si, s := range series {
		fmt.Fprintf(w, "  %c = %s\n", markers[si%len(markers)], s.Label)
	}
}
