package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/obs"
)

// PlotSeries renders series as an ASCII chart (time on the x-axis, value
// on the y-axis), the textual analogue of the paper's figures. Each
// series gets its own marker; axes are scaled to the data.
func PlotSeries(w io.Writer, title string, series []Series, width, height int) {
	fmt.Fprintf(w, "%s\n", title)
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 16
	}
	var maxX, maxY int64
	for _, s := range series {
		for _, p := range s.Points {
			if p[0] > maxX {
				maxX = p[0]
			}
			if p[1] > maxY {
				maxY = p[1]
			}
		}
	}
	if maxX == 0 {
		maxX = 1
	}
	if maxY == 0 {
		maxY = 1
	}
	markers := []byte("*o+x#@%&")
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for _, p := range s.Points {
			x := int(p[0] * int64(width-1) / maxX)
			y := int(p[1] * int64(height-1) / maxY)
			row := height - 1 - y
			if row >= 0 && row < height && x >= 0 && x < width {
				grid[row][x] = m
			}
		}
	}
	for i, row := range grid {
		label := "      "
		if i == 0 {
			label = fmt.Sprintf("%6d", maxY)
		} else if i == height-1 {
			label = fmt.Sprintf("%6d", 0)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(w, "       +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "        0%s%d\n", strings.Repeat(" ", width-1-len(fmt.Sprint(maxX))), maxX)
	for si, s := range series {
		fmt.Fprintf(w, "  %c = %s\n", markers[si%len(markers)], s.Label)
	}
}

// WriteMetrics renders a metrics snapshot as text: the per-worker table
// with a utilization column (busy virtual ticks over the run's
// makespan — the work-distribution view the streaming engine's stealing
// exists to flatten), then the counters in sorted order. Values above
// 100% are legitimate: the virtual clock charges costs to the
// least-loaded simulated core regardless of which worker ran the PUNCH,
// so a worker can process more than one core's share of the makespan.
func WriteMetrics(w io.Writer, snap *obs.Snapshot) {
	if snap == nil {
		fmt.Fprintln(w, "metrics: (disabled)")
		return
	}
	fmt.Fprintf(w, "%-8s %10s %12s %10s %8s\n", "worker", "punches", "busy ticks", "steals", "util")
	for _, ws := range snap.Workers {
		util := 0.0
		if snap.MakespanTicks > 0 {
			util = float64(ws.BusyTicks) / float64(snap.MakespanTicks)
		}
		fmt.Fprintf(w, "%-8d %10d %12d %10d %7.1f%%\n",
			ws.Worker, ws.Punches, ws.BusyTicks, ws.Steals, util*100)
	}
	keys := make([]string, 0, len(snap.Counters))
	for k := range snap.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%-28s %12d\n", k, snap.Counters[k])
	}
	fmt.Fprintf(w, "%-28s %12d\n", "makespan_ticks", snap.MakespanTicks)
	fmt.Fprintf(w, "%-28s %12d (sum %d, max %d)\n", "punch_cost_count",
		snap.PunchCost.Count, snap.PunchCost.Sum, snap.PunchCost.Max)
}
