package wire_test

import (
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/summary"
	"repro/internal/wire"
)

func testProvRecord() wire.ProvRecord {
	s := testSummary()
	t := testSummary()
	t.Proc = "other"
	t.Kind = summary.Must
	return wire.ProvRecord{
		Root:    "main",
		Verdict: "Program is Safe",
		Engine:  "async",
		Reads: []wire.ProvRead{
			{Summary: s, Warm: true, Count: 3},
			{Summary: t, Warm: false, Count: 1},
		},
		RootKey: "\x51qkey-bytes",
		Deps: map[string][]string{
			"main":  {"other", "p"},
			"other": {"p"},
		},
	}
}

func TestProvRoundTrip(t *testing.T) {
	p := testProvRecord()
	b, err := wire.AppendProv(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := wire.DecodeProv(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Fatalf("consumed %d of %d bytes", n, len(b))
	}
	if got.Root != p.Root || got.Verdict != p.Verdict || got.Engine != p.Engine {
		t.Fatalf("header changed: %+v", got)
	}
	if len(got.Reads) != 2 {
		t.Fatalf("got %d reads, want 2", len(got.Reads))
	}
	for i, r := range got.Reads {
		want := p.Reads[i]
		if r.Warm != want.Warm || r.Count != want.Count || r.Summary.Proc != want.Summary.Proc {
			t.Fatalf("read %d changed: %+v want %+v", i, r, want)
		}
		if logic.CanonicalKey(r.Summary.Pre) != logic.CanonicalKey(want.Summary.Pre) {
			t.Fatalf("read %d precondition changed across round trip", i)
		}
	}
	if got.RootKey != p.RootKey {
		t.Fatalf("root key changed: %q want %q", got.RootKey, p.RootKey)
	}
	if len(got.Deps) != 2 || strings.Join(got.Deps["main"], ",") != "other,p" ||
		strings.Join(got.Deps["other"], ",") != "p" {
		t.Fatalf("deps changed: %v", got.Deps)
	}
}

func TestProvRefusesVolatileDep(t *testing.T) {
	p := testProvRecord()
	p.Deps["main"] = append(p.Deps["main"], "#17")
	if _, err := wire.AppendProv(nil, p); err == nil {
		t.Fatal("volatile dep name must be rejected")
	}
}

func TestTombstoneRoundTrip(t *testing.T) {
	b, err := wire.AppendTombstone(nil, "deadproc")
	if err != nil {
		t.Fatal(err)
	}
	if !wire.IsTombstone(b) {
		t.Fatal("tombstone bytes not recognized")
	}
	proc, n, err := wire.DecodeTombstone(b)
	if err != nil || n != len(b) || proc != "deadproc" {
		t.Fatalf("decode = %q, %d, %v", proc, n, err)
	}
	if _, err := wire.AppendTombstone(nil, "#9"); err == nil {
		t.Fatal("volatile proc name must be rejected")
	}
	if _, _, err := wire.DecodeTombstone([]byte{0x53, 0x01, 'x'}); err == nil {
		t.Fatal("summary tag accepted as tombstone")
	}
	sb, err := wire.AppendSummary(nil, testSummary())
	if err != nil {
		t.Fatal(err)
	}
	if wire.IsTombstone(sb) {
		t.Fatal("summary record misidentified as tombstone")
	}
}

func TestProvEmptyReadSet(t *testing.T) {
	p := wire.ProvRecord{Root: "main", Verdict: "v", Engine: "barrier"}
	b, err := wire.AppendProv(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := wire.DecodeProv(b)
	if err != nil || n != len(b) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if got.Root != "main" || len(got.Reads) != 0 {
		t.Fatalf("decoded %+v", got)
	}
}

func TestProvRefusesUndurableSummary(t *testing.T) {
	p := testProvRecord()
	p.Reads[0].Summary.Pre = nil // scripted-test summary: not durable
	if _, err := wire.AppendProv(nil, p); err == nil {
		t.Fatal("nil-formula summary must be rejected")
	}
	p = testProvRecord()
	p.Reads[0].Count = -1
	if _, err := wire.AppendProv(nil, p); err == nil {
		t.Fatal("negative read count must be rejected")
	}
	p = testProvRecord()
	p.Root = "#42" // process-local interned key render
	if _, err := wire.AppendProv(nil, p); err == nil {
		t.Fatal("volatile root string must be rejected")
	}
}

func TestDecodeProvRejectsGarbage(t *testing.T) {
	good, err := wire.AppendProv(nil, testProvRecord())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     nil,
		"wrong tag": {0x51, 0x00},
		"truncated": good[:len(good)-3],
		"short hdr": good[:2],
	}
	for name, buf := range cases {
		if _, _, err := wire.DecodeProv(buf); err == nil {
			t.Fatalf("%s: decode accepted corrupt input", name)
		}
	}
	// Flipping the warm flag byte to an out-of-range value must fail,
	// not silently decode.
	mut := append([]byte(nil), good...)
	idx := strings.Index(string(mut), "async") + len("async")
	mut[idx+1] = 7 // first read's warm byte follows the count uvarint
	if _, _, err := wire.DecodeProv(mut); err == nil {
		t.Fatal("bad warm flag accepted")
	}
}
