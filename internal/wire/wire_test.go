package wire_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/summary"
	"repro/internal/wire"
)

func testSummary() summary.Summary {
	x, g := logic.LinVar("x"), logic.LinVar("g")
	return summary.Summary{
		Kind: summary.NotMay,
		Proc: "worker",
		Pre:  logic.Conj(logic.LE(x.AddConst(-3)), logic.EQ(g.AddConst(1))),
		Post: logic.Disj(logic.LE(g.Scale(2).AddConst(-9)), logic.LE(x.Scale(-1))),
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	for _, kind := range []summary.Kind{summary.Must, summary.NotMay} {
		s := testSummary()
		s.Kind = kind
		b, err := wire.AppendSummary(nil, s)
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := wire.DecodeSummary(b)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		if got.Kind != s.Kind || got.Proc != s.Proc {
			t.Fatalf("decoded %+v, want %+v", got, s)
		}
		if logic.CanonicalKey(got.Pre) != logic.CanonicalKey(s.Pre) ||
			logic.CanonicalKey(got.Post) != logic.CanonicalKey(s.Post) {
			t.Fatal("formulas changed across round trip")
		}
	}
}

func TestQuestionRoundTrip(t *testing.T) {
	x := logic.LinVar("x")
	qs := []summary.Question{
		{Proc: "main", Pre: logic.True, Post: logic.LE(x.AddConst(-1))},
		{Proc: "helper"}, // scripted question: nil formulas
		{Proc: "p", Pre: nil, Post: logic.False},
	}
	for i, q := range qs {
		b, err := wire.AppendQuestion(nil, q)
		if err != nil {
			t.Fatalf("#%d: %v", i, err)
		}
		got, n, err := wire.DecodeQuestion(b)
		if err != nil {
			t.Fatalf("#%d: %v", i, err)
		}
		if n != len(b) {
			t.Fatalf("#%d: consumed %d of %d bytes", i, n, len(b))
		}
		if got.Proc != q.Proc || (got.Pre == nil) != (q.Pre == nil) || (got.Post == nil) != (q.Post == nil) {
			t.Fatalf("#%d: decoded %+v, want %+v", i, got, q)
		}
	}
}

// TestSummaryKeyIsProcessOrderFree: the canonical key of a summary does
// not depend on the order its formulas' children were supplied in (the
// property the process-local summaryKey/Question.Key lacks).
func TestSummaryKeyIsProcessOrderFree(t *testing.T) {
	a := logic.LE(logic.LinVar("x").AddConst(-3))
	b := logic.EQ(logic.LinVar("y").AddConst(1))
	s1 := summary.Summary{Kind: summary.Must, Proc: "p", Pre: logic.Conj(a, b), Post: logic.Disj(a, b)}
	s2 := summary.Summary{Kind: summary.Must, Proc: "p", Pre: logic.Conj(b, a), Post: logic.Disj(b, a)}
	k1, err := wire.SummaryKey(s1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := wire.SummaryKey(s2)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("structurally equal summaries have different wire keys:\n %x\n %x", k1, k2)
	}
}

func TestCheckDurable(t *testing.T) {
	volatile := []string{"#0", "#12", "#4294967296", "!x ≤ 3", "!"}
	for _, s := range volatile {
		if err := wire.CheckDurable(s); !errors.Is(err, wire.ErrVolatileKey) {
			t.Errorf("CheckDurable(%q) = %v, want ErrVolatileKey", s, err)
		}
	}
	durable := []string{"", "main", "proc_12", "#", "#12a", "x#12", "12#"}
	for _, s := range durable {
		if err := wire.CheckDurable(s); err != nil {
			t.Errorf("CheckDurable(%q) = %v, want nil", s, err)
		}
	}
}

// TestEncoderRefusesVolatileKeys: the durability guard fires inside the
// encoder, so a process-local logic.Key threaded through a name field
// can never reach a persisted artifact.
func TestEncoderRefusesVolatileKeys(t *testing.T) {
	s := testSummary()
	s.Proc = logic.Key(s.Pre) // "#<intern-id>": the classic leak
	if !strings.HasPrefix(s.Proc, "#") && !strings.HasPrefix(s.Proc, "!") {
		t.Fatalf("fixture assumption broken: logic.Key = %q", s.Proc)
	}
	if _, err := wire.AppendSummary(nil, s); !errors.Is(err, wire.ErrVolatileKey) {
		t.Fatalf("AppendSummary accepted a volatile proc key: %v", err)
	}
	if _, err := wire.SummaryKey(s); !errors.Is(err, wire.ErrVolatileKey) {
		t.Fatalf("SummaryKey accepted a volatile proc key: %v", err)
	}
	q := summary.Question{Proc: "!fallback-render"}
	if _, err := wire.AppendQuestion(nil, q); !errors.Is(err, wire.ErrVolatileKey) {
		t.Fatalf("AppendQuestion accepted a volatile proc key: %v", err)
	}
}

func TestEncoderRefusesNilFormulas(t *testing.T) {
	s := testSummary()
	s.Pre = nil
	if _, err := wire.AppendSummary(nil, s); err == nil {
		t.Fatal("AppendSummary accepted a nil Pre")
	}
	s = testSummary()
	s.Post = nil
	if _, err := wire.AppendSummary(nil, s); err == nil {
		t.Fatal("AppendSummary accepted a nil Post")
	}
}

func TestDecodeSummaryRejectsGarbage(t *testing.T) {
	good, err := wire.AppendSummary(nil, testSummary())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < len(good); k++ {
		if _, _, err := wire.DecodeSummary(good[:k]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", k)
		}
	}
	if _, _, err := wire.DecodeSummary([]byte{0x51}); err == nil {
		t.Fatal("question tag decoded as summary")
	}
	bad := append([]byte(nil), good...)
	bad[1] = 0x7f // unknown summary kind
	if _, _, err := wire.DecodeSummary(bad); err == nil {
		t.Fatal("unknown kind decoded successfully")
	}
}
