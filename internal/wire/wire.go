// Package wire defines the stable cross-process encoding of the
// objects that may legitimately leave a process: summaries and
// questions. It composes the canonical formula encoding of
// internal/logic (logic.WireBytes) with length-prefixed strings and a
// record tag, and it is the single choke point where durability is
// enforced: nothing resembling a process-local logic.Key — the
// "#<intern-id>" render or the "!"-prefixed overflow fallback — may be
// written into a persisted artifact. Only canonical wire bytes cross
// the process boundary.
package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/logic"
	"repro/internal/summary"
)

// Version is the wire-format version. It participates in every store
// fingerprint, so bumping it invalidates (rather than misreads) any
// artifact written under an older encoding.
//
// v2: provenance records carry the root question's durable key and the
// procedure dependency adjacency (incremental invalidation planning);
// segment files may contain tombstone records.
const Version = 2

// Record tags.
const (
	tagSummary  = 0x53 // 'S'
	tagQuestion = 0x51 // 'Q'
	tagTomb     = 0x54 // 'T'
)

const maxStringLen = 1 << 16

// ErrVolatileKey is wrapped by every durability-guard failure.
var ErrVolatileKey = fmt.Errorf("wire: process-local logic.Key leaked into a durable artifact")

// CheckDurable rejects strings that carry a process-local formula
// identity: the "#<id>" render of an interned logic.Key and the
// "!"-prefixed structural fallback. Such strings are only meaningful
// inside the process that produced them; persisting or shipping one is
// always a bug. The encoders below run this check on every string they
// write, so the store encoder cannot emit one even if a caller
// mistakenly threads a Key through a name field.
func CheckDurable(s string) error {
	if looksVolatile(s) {
		return fmt.Errorf("%w: %q", ErrVolatileKey, s)
	}
	return nil
}

func looksVolatile(s string) bool {
	if len(s) == 0 {
		return false
	}
	if s[0] == '!' {
		return true
	}
	if s[0] != '#' || len(s) < 2 {
		return false
	}
	for i := 1; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// AppendSummary appends the canonical encoding of s to dst:
// tag, kind, proc, Pre wire bytes, Post wire bytes.
func AppendSummary(dst []byte, s summary.Summary) ([]byte, error) {
	if err := CheckDurable(s.Proc); err != nil {
		return dst, fmt.Errorf("summary for proc %q: %w", s.Proc, err)
	}
	if s.Pre == nil || s.Post == nil {
		return dst, fmt.Errorf("wire: summary for proc %q has a nil formula", s.Proc)
	}
	dst = append(dst, tagSummary, byte(s.Kind))
	dst = appendString(dst, s.Proc)
	dst = logic.AppendWire(dst, s.Pre)
	dst = logic.AppendWire(dst, s.Post)
	return dst, nil
}

// DecodeSummary decodes one summary and returns the bytes consumed.
func DecodeSummary(buf []byte) (summary.Summary, int, error) {
	var s summary.Summary
	if len(buf) < 2 || buf[0] != tagSummary {
		return s, 0, fmt.Errorf("wire: not a summary record")
	}
	kind := summary.Kind(buf[1])
	if kind != summary.Must && kind != summary.NotMay {
		return s, 0, fmt.Errorf("wire: unknown summary kind %d", buf[1])
	}
	pos := 2
	proc, n, err := decodeString(buf[pos:])
	if err != nil {
		return s, 0, err
	}
	pos += n
	pre, n, err := logic.DecodeWire(buf[pos:])
	if err != nil {
		return s, 0, err
	}
	pos += n
	post, n, err := logic.DecodeWire(buf[pos:])
	if err != nil {
		return s, 0, err
	}
	pos += n
	return summary.Summary{Kind: kind, Proc: proc, Pre: pre, Post: post}, pos, nil
}

// SummaryKey is the canonical cross-process identity of a summary: its
// wire encoding as a string. Two summaries with equal keys are the same
// fact in every process.
func SummaryKey(s summary.Summary) (string, error) {
	b, err := AppendSummary(nil, s)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// AppendQuestion appends the canonical encoding of q to dst. Nil
// formulas (scripted test questions) encode as the reserved nil tag.
func AppendQuestion(dst []byte, q summary.Question) ([]byte, error) {
	if err := CheckDurable(q.Proc); err != nil {
		return dst, fmt.Errorf("question for proc %q: %w", q.Proc, err)
	}
	dst = append(dst, tagQuestion)
	dst = appendString(dst, q.Proc)
	dst = appendOptFormula(dst, q.Pre)
	dst = appendOptFormula(dst, q.Post)
	return dst, nil
}

// DecodeQuestion decodes one question and returns the bytes consumed.
func DecodeQuestion(buf []byte) (summary.Question, int, error) {
	var q summary.Question
	if len(buf) < 1 || buf[0] != tagQuestion {
		return q, 0, fmt.Errorf("wire: not a question record")
	}
	pos := 1
	proc, n, err := decodeString(buf[pos:])
	if err != nil {
		return q, 0, err
	}
	pos += n
	pre, n, err := decodeOptFormula(buf[pos:])
	if err != nil {
		return q, 0, err
	}
	pos += n
	post, n, err := decodeOptFormula(buf[pos:])
	if err != nil {
		return q, 0, err
	}
	pos += n
	return summary.Question{Proc: proc, Pre: pre, Post: post}, pos, nil
}

// AppendTombstone appends a tombstone record for proc to dst: tag,
// proc. A tombstone marks every previously appended summary of proc as
// deleted; segment readers drop the proc's live records when they scan
// past one, and compaction on reopen rewrites the segment without
// either side of the pair.
func AppendTombstone(dst []byte, proc string) ([]byte, error) {
	if err := CheckDurable(proc); err != nil {
		return dst, fmt.Errorf("tombstone for proc %q: %w", proc, err)
	}
	dst = append(dst, tagTomb)
	dst = appendString(dst, proc)
	return dst, nil
}

// DecodeTombstone decodes one tombstone record and returns the
// procedure it deletes plus the bytes consumed.
func DecodeTombstone(buf []byte) (string, int, error) {
	if len(buf) < 1 || buf[0] != tagTomb {
		return "", 0, fmt.Errorf("wire: not a tombstone record")
	}
	proc, n, err := decodeString(buf[1:])
	if err != nil {
		return "", 0, err
	}
	return proc, 1 + n, nil
}

// IsTombstone reports whether buf starts with a tombstone record.
func IsTombstone(buf []byte) bool {
	return len(buf) > 0 && buf[0] == tagTomb
}

// QuestionKey is the canonical cross-process identity of a question —
// the durable analogue of Question.Key (which is built from
// process-local intern ids and must never leave the process).
func QuestionKey(q summary.Question) (string, error) {
	b, err := AppendQuestion(nil, q)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func decodeString(buf []byte) (string, int, error) {
	l, n := binary.Uvarint(buf)
	if n <= 0 {
		return "", 0, fmt.Errorf("wire: bad string length")
	}
	if l > maxStringLen || uint64(len(buf)-n) < l {
		return "", 0, fmt.Errorf("wire: string length %d out of range", l)
	}
	return string(buf[n : n+int(l)]), n + int(l), nil
}

func appendOptFormula(dst []byte, f logic.Formula) []byte {
	if f == nil {
		return append(dst, logic.WireNil)
	}
	return logic.AppendWire(dst, f)
}

func decodeOptFormula(buf []byte) (logic.Formula, int, error) {
	if len(buf) > 0 && buf[0] == logic.WireNil {
		return nil, 1, nil
	}
	return logic.DecodeWire(buf)
}
