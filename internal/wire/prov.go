// Provenance records: the durable encoding of a verdict's read set,
// persisted beside the summaries it refers to so a warm start can
// report which stored summaries the previous run actually consumed.
// Summaries inside a provenance record are identified by their full
// canonical wire encoding (SummaryKey bytes), never by process-local
// logic.Key strings — the same durability discipline as every other
// record in this package.

package wire

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/summary"
)

// tagProv marks a provenance record.
const tagProv = 0x50 // 'P'

// ProvRead is one consumed summary in a provenance record.
type ProvRead struct {
	// Summary is the consumed fact (round-trips through the canonical
	// summary encoding).
	Summary summary.Summary
	// Warm marks a summary that was hydrated from the store rather than
	// derived fresh by the recording run.
	Warm bool
	// Count is the number of read-set hits the run recorded on it.
	Count int64
}

// ProvRecord is a verdict's persisted read set.
type ProvRecord struct {
	// Root is the root procedure the verdict answers for; Verdict the
	// answer; Engine the engine that produced it.
	Root    string
	Verdict string
	Engine  string
	Reads   []ProvRead
	// RootKey is the durable identity of the root question (QuestionKey
	// bytes). It lets an incremental re-check match a persisted verdict
	// to the question it is about to re-ask; empty on records persisted
	// before the run knew its durable question key.
	RootKey string
	// Deps is the procedure-granularity dependency adjacency the run
	// observed: proc -> procedures whose summaries or spawned answers it
	// consumed. Incremental invalidation unions this with the edited
	// program's static call graph when computing the stale cone.
	Deps map[string][]string
}

// AppendProv appends the canonical encoding of p to dst: tag, root,
// verdict, engine, then a uvarint count of reads, each as warm byte,
// count uvarint, and the summary's own wire record. Summaries whose
// formulas cannot be durably encoded (nil formulas from scripted test
// punches) are rejected — callers filter those out before persisting.
func AppendProv(dst []byte, p ProvRecord) ([]byte, error) {
	for _, s := range []string{p.Root, p.Verdict, p.Engine} {
		if err := CheckDurable(s); err != nil {
			return dst, fmt.Errorf("provenance record: %w", err)
		}
	}
	dst = append(dst, tagProv)
	dst = appendString(dst, p.Root)
	dst = appendString(dst, p.Verdict)
	dst = appendString(dst, p.Engine)
	dst = binary.AppendUvarint(dst, uint64(len(p.Reads)))
	for _, r := range p.Reads {
		warm := byte(0)
		if r.Warm {
			warm = 1
		}
		dst = append(dst, warm)
		if r.Count < 0 {
			return dst, fmt.Errorf("wire: negative provenance read count %d", r.Count)
		}
		dst = binary.AppendUvarint(dst, uint64(r.Count))
		var err error
		dst, err = AppendSummary(dst, r.Summary)
		if err != nil {
			return dst, fmt.Errorf("provenance read: %w", err)
		}
	}
	// RootKey is wire bytes (a QuestionKey), not a name — it is durable
	// by construction and skips the volatility check.
	dst = appendString(dst, p.RootKey)
	procs := make([]string, 0, len(p.Deps))
	for proc := range p.Deps {
		procs = append(procs, proc)
	}
	sort.Strings(procs)
	dst = binary.AppendUvarint(dst, uint64(len(procs)))
	for _, proc := range procs {
		if err := CheckDurable(proc); err != nil {
			return dst, fmt.Errorf("provenance dep: %w", err)
		}
		dst = appendString(dst, proc)
		callees := append([]string(nil), p.Deps[proc]...)
		sort.Strings(callees)
		dst = binary.AppendUvarint(dst, uint64(len(callees)))
		for _, c := range callees {
			if err := CheckDurable(c); err != nil {
				return dst, fmt.Errorf("provenance dep: %w", err)
			}
			dst = appendString(dst, c)
		}
	}
	return dst, nil
}

// DecodeProv decodes one provenance record and returns the bytes
// consumed.
func DecodeProv(buf []byte) (ProvRecord, int, error) {
	var p ProvRecord
	if len(buf) < 1 || buf[0] != tagProv {
		return p, 0, fmt.Errorf("wire: not a provenance record")
	}
	pos := 1
	for _, field := range []*string{&p.Root, &p.Verdict, &p.Engine} {
		s, n, err := decodeString(buf[pos:])
		if err != nil {
			return p, 0, err
		}
		*field = s
		pos += n
	}
	count, n := binary.Uvarint(buf[pos:])
	if n <= 0 || count > uint64(len(buf)) {
		return p, 0, fmt.Errorf("wire: bad provenance read count")
	}
	pos += n
	for i := uint64(0); i < count; i++ {
		if pos >= len(buf) {
			return p, 0, fmt.Errorf("wire: truncated provenance read")
		}
		r := ProvRead{Warm: buf[pos] == 1}
		if buf[pos] > 1 {
			return p, 0, fmt.Errorf("wire: bad provenance warm flag %d", buf[pos])
		}
		pos++
		hits, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return p, 0, fmt.Errorf("wire: bad provenance read count")
		}
		r.Count = int64(hits)
		pos += n
		s, n, err := DecodeSummary(buf[pos:])
		if err != nil {
			return p, 0, err
		}
		r.Summary = s
		pos += n
		p.Reads = append(p.Reads, r)
	}
	rootKey, n, err := decodeString(buf[pos:])
	if err != nil {
		return p, 0, err
	}
	p.RootKey = rootKey
	pos += n
	nprocs, n := binary.Uvarint(buf[pos:])
	if n <= 0 || nprocs > uint64(len(buf)) {
		return p, 0, fmt.Errorf("wire: bad provenance dep count")
	}
	pos += n
	for i := uint64(0); i < nprocs; i++ {
		proc, n, err := decodeString(buf[pos:])
		if err != nil {
			return p, 0, err
		}
		pos += n
		ncallees, n := binary.Uvarint(buf[pos:])
		if n <= 0 || ncallees > uint64(len(buf)) {
			return p, 0, fmt.Errorf("wire: bad provenance dep callee count")
		}
		pos += n
		callees := make([]string, 0, ncallees)
		for j := uint64(0); j < ncallees; j++ {
			c, n, err := decodeString(buf[pos:])
			if err != nil {
				return p, 0, err
			}
			callees = append(callees, c)
			pos += n
		}
		if p.Deps == nil {
			p.Deps = map[string][]string{}
		}
		p.Deps[proc] = callees
	}
	return p, pos, nil
}
