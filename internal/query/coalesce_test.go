package query

import (
	"testing"
)

// TestInflightFirstWins: the first query added for a key owns the
// in-flight slot; a later twin must not displace it, and removing the
// owner frees the key.
func TestInflightFirstWins(t *testing.T) {
	a := &Allocator{}
	tr := NewTree()
	tr.TrackInflight()

	first := a.New(NoParent, q("f"))
	tr.Add(first)
	id, ok := tr.Inflight(first.Q.Key())
	if !ok || id != first.ID {
		t.Fatalf("Inflight = (%d, %v), want (%d, true)", id, ok, first.ID)
	}

	twin := a.New(first.ID, q("f"))
	tr.Add(twin)
	if id, _ := tr.Inflight(first.Q.Key()); id != first.ID {
		t.Fatalf("twin displaced inflight owner: got %d, want %d", id, first.ID)
	}

	tr.Remove(twin.ID)
	if id, _ := tr.Inflight(first.Q.Key()); id != first.ID {
		t.Fatalf("removing non-owner freed the key: got %d, want %d", id, first.ID)
	}
	tr.Remove(first.ID)
	if _, ok := tr.Inflight(first.Q.Key()); ok {
		t.Fatalf("inflight key survived owner removal")
	}
}

// TestAddWaiterAndClear: AddWaiter records both edge directions and
// dedups; ClearWaiters severs the reverse edges too.
func TestAddWaiterAndClear(t *testing.T) {
	a := &Allocator{}
	tr := NewTree()
	tr.TrackInflight()
	twin := a.New(NoParent, q("f"))
	w1 := a.New(NoParent, q("g"))
	w2 := a.New(NoParent, q("h"))
	for _, qr := range []*Query{twin, w1, w2} {
		tr.Add(qr)
	}

	tr.AddWaiter(twin.ID, w1.ID)
	tr.AddWaiter(twin.ID, w1.ID) // duplicate registration must be a no-op
	tr.AddWaiter(twin.ID, w2.ID)
	if ws := tr.Waiters(twin.ID); len(ws) != 2 {
		t.Fatalf("Waiters = %v, want exactly {w1, w2}", ws)
	}
	if wo := tr.WaitingOn(w1.ID); len(wo) != 1 || wo[0] != twin.ID {
		t.Fatalf("WaitingOn(w1) = %v, want [twin]", wo)
	}

	tr.ClearWaiters(twin.ID)
	if ws := tr.Waiters(twin.ID); len(ws) != 0 {
		t.Fatalf("Waiters after ClearWaiters = %v", ws)
	}
	if wo := tr.WaitingOn(w1.ID); len(wo) != 0 {
		t.Fatalf("reverse edge survived ClearWaiters: %v", wo)
	}
}

// TestRemoveUnlinksWaiterEdges: removing a waiter (or a waited-on
// query) must drop both directions of every coalesce edge touching it.
func TestRemoveUnlinksWaiterEdges(t *testing.T) {
	a := &Allocator{}
	tr := NewTree()
	tr.TrackInflight()
	twin := a.New(NoParent, q("f"))
	w := a.New(NoParent, q("g"))
	tr.Add(twin)
	tr.Add(w)
	tr.AddWaiter(twin.ID, w.ID)

	tr.Remove(w.ID)
	if ws := tr.Waiters(twin.ID); len(ws) != 0 {
		t.Fatalf("removed waiter still registered: %v", ws)
	}

	tr.AddWaiter(twin.ID, twin.ID) // self edge just to exercise unlink on the twin side
	tr.Remove(twin.ID)
	if wo := tr.WaitingOn(twin.ID); len(wo) != 0 {
		t.Fatalf("removed twin still waiting on %v", wo)
	}
}

// TestRemoveSubtreeRetainsWaitedBranch: collecting a Done root must not
// collect a descendant some external query still waits on — that
// descendant (and hence its answer) has to survive until its own Done
// fan-out runs.
func TestRemoveSubtreeRetainsWaitedBranch(t *testing.T) {
	a := &Allocator{}
	tr := NewTree()
	tr.TrackInflight()
	root := a.New(NoParent, q("a"))
	child := a.New(root.ID, q("b"))
	ext := a.New(NoParent, q("c"))
	tr.Add(root)
	tr.Add(child)
	tr.Add(ext)
	tr.AddWaiter(child.ID, ext.ID)

	removed := tr.RemoveSubtree(root.ID)
	if removed != 1 {
		t.Fatalf("removed %d, want 1 (root only)", removed)
	}
	if tr.Get(child.ID) == nil {
		t.Fatalf("waited-on child was collected with its parent")
	}
	if tr.Get(root.ID) != nil {
		t.Fatalf("root survived its own collection")
	}
}

// TestRemoveSubtreeRetentionFixpoint: retention is transitive — if a
// retained query itself waits on another dying query, that one must be
// retained too, found by fixpoint rather than a single pass.
func TestRemoveSubtreeRetentionFixpoint(t *testing.T) {
	a := &Allocator{}
	tr := NewTree()
	tr.TrackInflight()
	root := a.New(NoParent, q("r"))
	qa := a.New(root.ID, q("a"))
	qb := a.New(root.ID, q("b"))
	qc := a.New(qa.ID, q("c"))
	ext := a.New(NoParent, q("e"))
	for _, qr := range []*Query{root, qa, qb, qc, ext} {
		tr.Add(qr)
	}
	tr.AddWaiter(qc.ID, ext.ID) // external waiter pins c
	tr.AddWaiter(qb.ID, qc.ID)  // c waits on its dying sibling branch b

	removed := tr.RemoveSubtree(root.ID)
	// c survives via the external waiter; b survives because retained c
	// waits on it. Only root and a die.
	if removed != 2 {
		t.Fatalf("removed %d, want 2 (root and a)", removed)
	}
	for _, keep := range []ID{qb.ID, qc.ID, ext.ID} {
		if tr.Get(keep) == nil {
			t.Fatalf("query %d collected despite live waiter chain", keep)
		}
	}
	for _, gone := range []ID{root.ID, qa.ID} {
		if tr.Get(gone) != nil {
			t.Fatalf("query %d retained without a waiter", gone)
		}
	}
}

// TestMoveToCarriesCoalesceState: failover migration must carry the
// in-flight registration and both directions of waiter edges into the
// destination tree, so orphaned waiters can still be woken there.
func TestMoveToCarriesCoalesceState(t *testing.T) {
	a := &Allocator{}
	src := NewTree()
	dst := NewTree()
	src.TrackInflight()
	dst.TrackInflight()

	twin := a.New(NoParent, q("f"))
	w := a.New(NoParent, q("g"))
	on := a.New(NoParent, q("h"))
	src.Add(twin)
	src.Add(w)
	src.Add(on)
	src.AddWaiter(twin.ID, w.ID)  // w waits on twin
	src.AddWaiter(on.ID, twin.ID) // twin waits on "on"

	if !src.MoveTo(dst, twin.ID) {
		t.Fatalf("MoveTo failed")
	}
	if id, ok := dst.Inflight(twin.Q.Key()); !ok || id != twin.ID {
		t.Fatalf("inflight registration not migrated: (%d, %v)", id, ok)
	}
	if ws := dst.Waiters(twin.ID); len(ws) != 1 || ws[0] != w.ID {
		t.Fatalf("waiters not migrated: %v", ws)
	}
	if wo := dst.WaitingOn(twin.ID); len(wo) != 1 || wo[0] != on.ID {
		t.Fatalf("waitingOn not migrated: %v", wo)
	}
	if _, ok := src.Inflight(twin.Q.Key()); ok {
		t.Fatalf("source tree kept the inflight key after migration")
	}
}

// TestWouldCycle: coalescing a spawn onto a twin that (transitively)
// depends on the spawner would deadlock; WouldCycle must see both child
// edges and waiter edges, across trees.
func TestWouldCycle(t *testing.T) {
	a := &Allocator{}
	tr := NewTree()
	tr.TrackInflight()
	root := a.New(NoParent, q("r"))
	qa := a.New(root.ID, q("a"))
	qb := a.New(qa.ID, q("b"))
	for _, qr := range []*Query{root, qa, qb} {
		tr.Add(qr)
	}
	forest := []*Tree{tr}

	// root -> a -> b by child edges: b's answer flows up to root, so
	// root coalescing onto b is fine, but b coalescing onto root cycles.
	if WouldCycle(forest, qb.ID, root.ID) {
		t.Fatalf("no cycle expected: b does not depend on root")
	}
	if !WouldCycle(forest, root.ID, qb.ID) {
		t.Fatalf("cycle expected: root reaches b via child edges")
	}

	// Cross-tree: twin in t1 waits (coalesce edge) on x in t1, whose
	// child lives in t2 and is the would-be spawner.
	t1 := NewTree()
	t2 := NewTree()
	t1.TrackInflight()
	t2.TrackInflight()
	twin := a.New(NoParent, q("t"))
	x := a.New(NoParent, q("x"))
	t1.Add(twin)
	t1.Add(x)
	t1.AddWaiter(x.ID, twin.ID) // twin waits on x
	y := a.New(x.ID, q("y"))
	t2.Add(y)
	if !WouldCycle([]*Tree{t1, t2}, twin.ID, y.ID) {
		t.Fatalf("cycle expected: twin -> x (waiter edge) -> y (child edge in other tree)")
	}
	if WouldCycle([]*Tree{t1, t2}, y.ID, twin.ID) {
		t.Fatalf("no cycle expected in the reverse direction")
	}
}
