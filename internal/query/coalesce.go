// In-flight query coalescing support: the multi-waiter edge set and the
// canonical-question index the engines use to answer a freshly spawned
// question with an already-live twin query instead of growing a duplicate
// subtree. One summary answers every waiter because a Done query's only
// observable effect is the SUMDB entry answering its question (§3.2), and
// woken waiters always re-examine SUMDB rather than the twin itself.
package query

// TrackInflight enables the in-flight index keyed by canonical question
// key. Engines call it once, before the root is added, when coalescing is
// on; while disabled, Add does no key computation at all.
func (t *Tree) TrackInflight() {
	if t.inflight == nil {
		t.inflight = map[string]ID{}
		t.inflightKey = map[ID]string{}
	}
}

// Inflight returns the live query registered for the canonical question
// key, if any. Registration is first-wins: later twins (e.g. spawns that
// skipped coalescing because of a cycle) never displace the entry.
func (t *Tree) Inflight(key string) (ID, bool) {
	id, ok := t.inflight[key]
	return id, ok
}

// InflightSize returns the number of canonical-question keys currently
// registered in the in-flight index (0 when coalescing is disabled).
// Callers must hold whatever lock guards the tree.
func (t *Tree) InflightSize() int { return len(t.inflight) }

// WaiterEdgeCount returns the number of live coalesced waiter
// registrations (the sum over all twins of their waiter counts).
// Callers must hold whatever lock guards the tree.
func (t *Tree) WaiterEdgeCount() int {
	n := 0
	for _, ws := range t.waiters {
		n += len(ws)
	}
	return n
}

// AddWaiter registers w as an additional parent waiting on id's summary.
// Duplicate registrations are ignored. The edge persists across id's
// Ready/Blocked transitions; engines fan the wake out (and then
// ClearWaiters) only when id goes Done.
func (t *Tree) AddWaiter(id, w ID) {
	if containsID(t.waiters[id], w) {
		return
	}
	t.waiters[id] = append(t.waiters[id], w)
	t.waitingOn[w] = append(t.waitingOn[w], id)
}

// Waiters returns the waiters registered on id (nil when none). The
// returned slice is the tree's own bookkeeping; callers must not mutate
// it.
func (t *Tree) Waiters(id ID) []ID { return t.waiters[id] }

// WaitingOn returns the queries w is registered as waiting on.
func (t *Tree) WaitingOn(w ID) []ID { return t.waitingOn[w] }

// ClearWaiters drops every waiter edge of id. Engines call it after the
// Done fan-out wake, restoring the "no waiters remain" GC condition
// before RemoveSubtree.
func (t *Tree) ClearWaiters(id ID) {
	for _, w := range t.waiters[id] {
		t.waitingOn[w] = dropID(t.waitingOn[w], id)
		if len(t.waitingOn[w]) == 0 {
			delete(t.waitingOn, w)
		}
	}
	delete(t.waiters, id)
}

// unlink severs all waiter edges touching id and its in-flight index
// entry; called by Remove so dead waiters cannot pin their twins and a
// dead twin's key becomes available again.
func (t *Tree) unlink(id ID) {
	if wo := t.waitingOn[id]; len(wo) > 0 {
		for _, tw := range wo {
			t.waiters[tw] = dropID(t.waiters[tw], id)
			if len(t.waiters[tw]) == 0 {
				delete(t.waiters, tw)
			}
		}
		delete(t.waitingOn, id)
	}
	if ws := t.waiters[id]; len(ws) > 0 {
		for _, w := range ws {
			t.waitingOn[w] = dropID(t.waitingOn[w], id)
			if len(t.waitingOn[w]) == 0 {
				delete(t.waitingOn, w)
			}
		}
		delete(t.waiters, id)
	}
	if t.inflightKey != nil {
		if k, ok := t.inflightKey[id]; ok {
			delete(t.inflightKey, id)
			if t.inflight[k] == id {
				delete(t.inflight, k)
			}
		}
	}
}

// hasWaiterOutside reports whether id has a waiter not in the dying set.
func (t *Tree) hasWaiterOutside(id ID, dying map[ID]bool) bool {
	for _, w := range t.waiters[id] {
		if !dying[w] {
			return true
		}
	}
	return false
}

func dropID(ids []ID, id ID) []ID {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// WouldCycle reports whether registering spawner as a waiter on twin
// would close a waits-for cycle: true when twin's completion already
// (transitively) depends on spawner through child edges or existing
// waiter registrations. Coalescing must skip such spawns — a recursive
// program's infinite regress (bounded by budgets) would otherwise become
// a genuine deadlock and change the verdict. trees is the forest the
// edges are scattered across: a single element for the single-machine
// engines, one tree per node for the distributed engine (a child edge is
// recorded in the child's owning tree, so the walk consults all of them).
// Conservative in the right direction — a spurious cycle only costs one
// missed coalescing opportunity.
func WouldCycle(trees []*Tree, twin, spawner ID) bool {
	if twin == spawner {
		return true
	}
	visited := map[ID]bool{twin: true}
	stack := []ID{twin}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range trees {
			for _, next := range t.children[cur] {
				if next == spawner {
					return true
				}
				if !visited[next] {
					visited[next] = true
					stack = append(stack, next)
				}
			}
			for _, next := range t.waitingOn[cur] {
				if next == spawner {
					return true
				}
				if !visited[next] {
					visited[next] = true
					stack = append(stack, next)
				}
			}
		}
	}
	return false
}
