// Package query implements reachability queries and their lifecycle — the
// Ready/Blocked/Done state machine of Fig. 2(b) — plus the query-tree
// bookkeeping the REDUCE stage needs (parents, descendants).
package query

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/summary"
)

// State is a query's lifecycle state.
type State int

// Query states (Fig. 2(b)).
const (
	Ready State = iota
	Blocked
	Done
)

func (s State) String() string {
	switch s {
	case Ready:
		return "Ready"
	case Blocked:
		return "Blocked"
	case Done:
		return "Done"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// ID identifies a query. The root query has parent NoParent.
type ID int64

// NoParent marks the root query.
const NoParent ID = -1

// Outcome records how a Done query was answered.
type Outcome int

// Outcomes of a Done query.
const (
	// Pending: the query is not Done.
	Pending Outcome = iota
	// Reachable: answered by a must summary — an execution reaches Post.
	Reachable
	// Unreachable: answered by a not-may summary — no execution reaches
	// Post.
	Unreachable
)

func (o Outcome) String() string {
	switch o {
	case Pending:
		return "pending"
	case Reachable:
		return "reachable"
	case Unreachable:
		return "unreachable"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Query is the 4-tuple (q_i, s_i, p_i, O_i) of §3.1: a reachability
// question, a state, a parent index, and the analysis-specific
// verification object.
type Query struct {
	ID     ID
	Parent ID
	// Q is the reachability question (φ1 ⇒?_P φ2).
	Q summary.Question
	// State is the lifecycle state; owned by the engine between PUNCH
	// calls and by PUNCH during one.
	State State
	// Outcome is set when State becomes Done.
	Outcome Outcome
	// Obj is the verification object O_i: the saved intraprocedural
	// analysis state (must-map, may-map, eliminated edges, …) so PUNCH can
	// resume where it stopped. Its concrete type belongs to the PUNCH
	// instantiation.
	Obj any
}

func (q *Query) String() string {
	return fmt.Sprintf("Q%d[%s parent=%d] %s", q.ID, q.State, q.Parent, q.Q)
}

// Allocator hands out fresh query IDs; safe for concurrent use by parallel
// PUNCH instances.
type Allocator struct {
	next int64
}

// New returns a fresh query in the Ready state.
func (a *Allocator) New(parent ID, q summary.Question) *Query {
	id := ID(atomic.AddInt64(&a.next, 1) - 1)
	return &Query{ID: id, Parent: parent, Q: q, State: Ready}
}

// Count returns how many IDs have been allocated.
func (a *Allocator) Count() int64 { return atomic.LoadInt64(&a.next) }

// Tree tracks the live query set and the parent/child relation. It is
// used by the engine between MAP stages (single-goroutine at that point,
// so it needs no locking; the async engine serializes access externally).
//
// The tree maintains an incremental index of Ready queries so schedulers
// do not rescan every live query per iteration. The index is a superset
// approximation — entries are validated against the query's current state
// on read and pruned lazily — which keeps it correct even when PUNCH
// mutates a query's state in place before the engine calls Replace.
type Tree struct {
	queries  map[ID]*Query
	children map[ID][]ID
	ready    map[ID]*Query // queries Ready at last accounting (lazy superset)
	// waiters maps a query to the additional parents coalesced onto it:
	// queries whose own duplicate child was never allocated and that must
	// be woken when this query's summary lands. waitingOn is the reverse
	// relation, kept in the same tree as the forward edge so Remove can
	// sever both sides. See coalesce.go.
	waiters   map[ID][]ID
	waitingOn map[ID][]ID
	// inflight indexes live queries by canonical question key; nil until
	// TrackInflight so the non-coalescing path pays no key computation.
	inflight    map[string]ID
	inflightKey map[ID]string
}

// NewTree returns an empty tree.
func NewTree() *Tree {
	return &Tree{
		queries:   map[ID]*Query{},
		children:  map[ID][]ID{},
		ready:     map[ID]*Query{},
		waiters:   map[ID][]ID{},
		waitingOn: map[ID][]ID{},
	}
}

// Add inserts a query.
func (t *Tree) Add(q *Query) {
	t.queries[q.ID] = q
	if q.Parent != NoParent {
		t.children[q.Parent] = append(t.children[q.Parent], q.ID)
	}
	if t.inflight != nil {
		k := q.Q.Key()
		if _, taken := t.inflight[k]; !taken {
			t.inflight[k] = q.ID
			t.inflightKey[q.ID] = k
		}
	}
	t.index(q)
}

// index refreshes q's membership in the Ready index.
func (t *Tree) index(q *Query) {
	if q.State == Ready {
		t.ready[q.ID] = q
	} else {
		delete(t.ready, q.ID)
	}
}

// Get returns the query with the given ID, or nil.
func (t *Tree) Get(id ID) *Query { return t.queries[id] }

// Replace swaps in an updated copy of a query returned by PUNCH (same ID).
func (t *Tree) Replace(q *Query) {
	if _, ok := t.queries[q.ID]; !ok {
		panic(fmt.Sprintf("query: Replace of unknown query %d", q.ID))
	}
	t.queries[q.ID] = q
	t.index(q)
}

// SetState transitions a live query to the given state, keeping the Ready
// index current. Engines use this instead of writing State directly.
func (t *Tree) SetState(id ID, s State) {
	q, ok := t.queries[id]
	if !ok {
		return
	}
	q.State = s
	t.index(q)
}

// Deschedule removes a query from the Ready index without changing its
// state. The streaming engine calls it when handing a query to PUNCH:
// while the invocation runs (and may mutate the query in place, outside
// the scheduler lock), index scans must not read the query. Replace or
// SetState re-index it afterwards.
func (t *Tree) Deschedule(id ID) {
	delete(t.ready, id)
}

// Len returns the number of live queries.
func (t *Tree) Len() int { return len(t.queries) }

// Descendants returns the IDs of q and all its transitive children that
// are still live (the image of the transitive closure of the parent-child
// relation, §3.3).
func (t *Tree) Descendants(id ID) []ID {
	var out []ID
	stack := []ID{id}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, ok := t.queries[cur]; !ok {
			continue
		}
		out = append(out, cur)
		stack = append(stack, t.children[cur]...)
	}
	return out
}

// Remove deletes a query (its children entries are cleaned lazily by
// Descendants' liveness check). Waiter edges and the in-flight index
// entry of the removed query are severed eagerly.
func (t *Tree) Remove(id ID) {
	t.unlink(id)
	delete(t.queries, id)
	delete(t.children, id)
	delete(t.ready, id)
}

// MoveTo transfers a live query — with its child-edge, waiter-edge and
// in-flight-index bookkeeping — from t to dst, preserving ID, parent and
// state. The distributed engine's failover uses it to re-route a dead
// node's queries to their new owning shard; carrying the waiter edges is
// what re-registers waiters orphaned by the failure. Reports whether the
// query was present in t.
func (t *Tree) MoveTo(dst *Tree, id ID) bool {
	q, ok := t.queries[id]
	if !ok {
		return false
	}
	kids := t.children[id]
	ws := append([]ID(nil), t.waiters[id]...)
	wo := append([]ID(nil), t.waitingOn[id]...)
	_, hadInflight := t.inflightKey[id]
	t.Remove(id)
	dst.queries[q.ID] = q
	// When a parent and its child move to the same destination, the edge
	// between them would be recorded twice (once carried with the parent's
	// kids, once by the child's own move); dedup keeps Descendants exact.
	if q.Parent != NoParent && !containsID(dst.children[q.Parent], q.ID) {
		dst.children[q.Parent] = append(dst.children[q.Parent], q.ID)
	}
	for _, k := range kids {
		if !containsID(dst.children[id], k) {
			dst.children[id] = append(dst.children[id], k)
		}
	}
	for _, w := range ws {
		dst.AddWaiter(id, w)
	}
	for _, tw := range wo {
		dst.AddWaiter(tw, id)
	}
	if hadInflight && dst.inflight != nil {
		k := q.Q.Key()
		if _, taken := dst.inflight[k]; !taken {
			dst.inflight[k] = id
			dst.inflightKey[id] = k
		}
	}
	dst.index(q)
	return true
}

func containsID(ids []ID, id ID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// RemoveSubtree removes q and all its live descendants, returning how many
// queries were removed. A descendant with a waiter outside the dying set
// is retained together with its whole subtree: the external waiter still
// needs the summary that branch will produce, so collecting it would
// strand the waiter Blocked forever (the coalescing GC condition).
func (t *Tree) RemoveSubtree(id ID) int {
	ids := t.Descendants(id)
	if len(t.waiters) == 0 {
		for _, d := range ids {
			t.Remove(d)
		}
		return len(ids)
	}
	dying := make(map[ID]bool, len(ids))
	for _, d := range ids {
		dying[d] = true
	}
	// Fixpoint: a retained node's own coalesce targets must survive too
	// (it stays Blocked on them), so retention propagates until stable.
	for changed := true; changed; {
		changed = false
		for d := range dying {
			if !t.hasWaiterOutside(d, dying) {
				continue
			}
			for _, k := range t.Descendants(d) {
				if dying[k] {
					delete(dying, k)
					changed = true
				}
			}
		}
	}
	removed := 0
	for _, d := range ids {
		if dying[d] {
			t.Remove(d)
			removed++
		}
	}
	return removed
}

// InState returns the live queries in the given state, sorted by ID for
// deterministic scheduling. The Ready case is served from the incremental
// index (O(ready) instead of O(live)); stale entries are pruned in
// passing.
func (t *Tree) InState(s State) []*Query {
	var out []*Query
	if s == Ready {
		for id, q := range t.ready {
			if q.State != Ready {
				delete(t.ready, id)
				continue
			}
			out = append(out, q)
		}
	} else {
		for _, q := range t.queries {
			if q.State == s {
				out = append(out, q)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ReadyCount returns the number of Ready queries, pruning stale index
// entries in passing.
func (t *Tree) ReadyCount() int {
	n := 0
	for id, q := range t.ready {
		if q.State != Ready {
			delete(t.ready, id)
			continue
		}
		n++
	}
	return n
}

// All returns the live queries sorted by ID.
func (t *Tree) All() []*Query {
	out := make([]*Query, 0, len(t.queries))
	for _, q := range t.queries {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
