package query

import (
	"sync"
	"testing"

	"repro/internal/logic"
	"repro/internal/summary"
)

func q(proc string) summary.Question {
	return summary.Question{Proc: proc, Pre: logic.True, Post: logic.True}
}

func TestAllocatorConcurrent(t *testing.T) {
	a := &Allocator{}
	var wg sync.WaitGroup
	ids := make([][]ID, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				ids[i] = append(ids[i], a.New(NoParent, q("p")).ID)
			}
		}(i)
	}
	wg.Wait()
	seen := map[ID]bool{}
	for _, list := range ids {
		for _, id := range list {
			if seen[id] {
				t.Fatalf("duplicate ID %d", id)
			}
			seen[id] = true
		}
	}
	if a.Count() != 800 {
		t.Fatalf("Count = %d", a.Count())
	}
}

func TestTreeDescendantsAndRemove(t *testing.T) {
	a := &Allocator{}
	tr := NewTree()
	root := a.New(NoParent, q("main"))
	tr.Add(root)
	c1 := a.New(root.ID, q("f"))
	c2 := a.New(root.ID, q("g"))
	gc := a.New(c1.ID, q("h"))
	tr.Add(c1)
	tr.Add(c2)
	tr.Add(gc)

	desc := tr.Descendants(c1.ID)
	if len(desc) != 2 {
		t.Fatalf("Descendants(c1) = %v", desc)
	}
	if n := tr.RemoveSubtree(c1.ID); n != 2 {
		t.Fatalf("removed %d, want 2", n)
	}
	if tr.Get(gc.ID) != nil || tr.Get(c1.ID) != nil {
		t.Fatal("subtree not removed")
	}
	if tr.Get(c2.ID) == nil || tr.Get(root.ID) == nil {
		t.Fatal("unrelated queries removed")
	}
	// Removing the root removes everything live.
	if n := tr.RemoveSubtree(root.ID); n != 2 {
		t.Fatalf("removed %d, want 2", n)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestInStateSortedByID(t *testing.T) {
	a := &Allocator{}
	tr := NewTree()
	root := a.New(NoParent, q("main"))
	tr.Add(root)
	var made []*Query
	for i := 0; i < 5; i++ {
		c := a.New(root.ID, q("f"))
		tr.Add(c)
		made = append(made, c)
	}
	made[1].State = Blocked
	made[3].State = Done
	ready := tr.InState(Ready)
	if len(ready) != 4 { // root + 3 children
		t.Fatalf("ready = %d", len(ready))
	}
	for i := 1; i < len(ready); i++ {
		if ready[i-1].ID >= ready[i].ID {
			t.Fatal("not sorted by ID")
		}
	}
	if len(tr.InState(Blocked)) != 1 || len(tr.InState(Done)) != 1 {
		t.Fatal("state filtering wrong")
	}
}

func TestReplacePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr := NewTree()
	tr.Replace(&Query{ID: 42})
}

func TestStateAndOutcomeStrings(t *testing.T) {
	if Ready.String() != "Ready" || Blocked.String() != "Blocked" || Done.String() != "Done" {
		t.Fatal("state strings")
	}
	if Pending.String() != "pending" || Reachable.String() != "reachable" || Unreachable.String() != "unreachable" {
		t.Fatal("outcome strings")
	}
}

func TestTreeMoveTo(t *testing.T) {
	a := &Allocator{}
	src, dst := NewTree(), NewTree()
	root := a.New(NoParent, q("main"))
	child := a.New(root.ID, q("callee"))
	grand := a.New(child.ID, q("leaf"))
	src.Add(root)
	src.Add(child)
	src.Add(grand)

	if src.MoveTo(dst, ID(999)) {
		t.Fatal("moving an unknown ID must report false")
	}

	// Move parent and child in both orders relative to each other; the
	// failover path moves a dead node's whole tree, so parent-child pairs
	// land in the same destination and edges must not duplicate.
	if !src.MoveTo(dst, child.ID) {
		t.Fatal("MoveTo(child) failed")
	}
	if !src.MoveTo(dst, grand.ID) {
		t.Fatal("MoveTo(grand) failed")
	}
	if src.Get(child.ID) != nil || src.Get(grand.ID) != nil {
		t.Fatal("moved queries still present in source")
	}
	if dst.Get(child.ID) == nil || dst.Get(grand.ID) == nil {
		t.Fatal("moved queries missing from destination")
	}
	if src.Len() != 1 || dst.Len() != 2 {
		t.Fatalf("sizes: src=%d dst=%d", src.Len(), dst.Len())
	}
	// Descendants includes the starting node itself.
	if ds := dst.Descendants(child.ID); len(ds) != 2 {
		t.Fatalf("descendants of child = %v, want self+grandchild (no duplicate edges)", ds)
	}
	if !src.MoveTo(dst, root.ID) {
		t.Fatal("MoveTo(root) failed")
	}
	if ds := dst.Descendants(root.ID); len(ds) != 3 {
		t.Fatalf("descendants of root = %v, want self+child+grand", ds)
	}
	if n := dst.RemoveSubtree(root.ID); n != 3 {
		t.Fatalf("RemoveSubtree removed %d, want 3", n)
	}
	if dst.Len() != 0 {
		t.Fatalf("destination not empty after subtree removal: %d", dst.Len())
	}
}
