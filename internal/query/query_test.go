package query

import (
	"sync"
	"testing"

	"repro/internal/logic"
	"repro/internal/summary"
)

func q(proc string) summary.Question {
	return summary.Question{Proc: proc, Pre: logic.True, Post: logic.True}
}

func TestAllocatorConcurrent(t *testing.T) {
	a := &Allocator{}
	var wg sync.WaitGroup
	ids := make([][]ID, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				ids[i] = append(ids[i], a.New(NoParent, q("p")).ID)
			}
		}(i)
	}
	wg.Wait()
	seen := map[ID]bool{}
	for _, list := range ids {
		for _, id := range list {
			if seen[id] {
				t.Fatalf("duplicate ID %d", id)
			}
			seen[id] = true
		}
	}
	if a.Count() != 800 {
		t.Fatalf("Count = %d", a.Count())
	}
}

func TestTreeDescendantsAndRemove(t *testing.T) {
	a := &Allocator{}
	tr := NewTree()
	root := a.New(NoParent, q("main"))
	tr.Add(root)
	c1 := a.New(root.ID, q("f"))
	c2 := a.New(root.ID, q("g"))
	gc := a.New(c1.ID, q("h"))
	tr.Add(c1)
	tr.Add(c2)
	tr.Add(gc)

	desc := tr.Descendants(c1.ID)
	if len(desc) != 2 {
		t.Fatalf("Descendants(c1) = %v", desc)
	}
	if n := tr.RemoveSubtree(c1.ID); n != 2 {
		t.Fatalf("removed %d, want 2", n)
	}
	if tr.Get(gc.ID) != nil || tr.Get(c1.ID) != nil {
		t.Fatal("subtree not removed")
	}
	if tr.Get(c2.ID) == nil || tr.Get(root.ID) == nil {
		t.Fatal("unrelated queries removed")
	}
	// Removing the root removes everything live.
	if n := tr.RemoveSubtree(root.ID); n != 2 {
		t.Fatalf("removed %d, want 2", n)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestInStateSortedByID(t *testing.T) {
	a := &Allocator{}
	tr := NewTree()
	root := a.New(NoParent, q("main"))
	tr.Add(root)
	var made []*Query
	for i := 0; i < 5; i++ {
		c := a.New(root.ID, q("f"))
		tr.Add(c)
		made = append(made, c)
	}
	made[1].State = Blocked
	made[3].State = Done
	ready := tr.InState(Ready)
	if len(ready) != 4 { // root + 3 children
		t.Fatalf("ready = %d", len(ready))
	}
	for i := 1; i < len(ready); i++ {
		if ready[i-1].ID >= ready[i].ID {
			t.Fatal("not sorted by ID")
		}
	}
	if len(tr.InState(Blocked)) != 1 || len(tr.InState(Done)) != 1 {
		t.Fatal("state filtering wrong")
	}
}

func TestReplacePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr := NewTree()
	tr.Replace(&Query{ID: 42})
}

func TestStateAndOutcomeStrings(t *testing.T) {
	if Ready.String() != "Ready" || Blocked.String() != "Blocked" || Done.String() != "Done" {
		t.Fatal("state strings")
	}
	if Pending.String() != "pending" || Reachable.String() != "reachable" || Unreachable.String() != "unreachable" {
		t.Fatal("outcome strings")
	}
}
