// The assembled provenance artifact: Finish freezes a Recorder into a
// Provenance — the verdict→summary→procedure dependency DAG plus the
// derived views (the verdict's procedure cone, per-procedure
// invalidation cones, warm-vs-fresh attribution, and the explain
// report the CLIs print).

package prov

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/summary"
)

// SummaryNode is one distinct summary in the provenance DAG with its
// accumulated traffic.
type SummaryNode struct {
	Proc string `json:"proc"`
	Kind string `json:"kind"`
	// Pre/Post are display renders (process-local; durable identity is
	// the wire record, not these strings).
	Pre  string `json:"pre,omitempty"`
	Post string `json:"post,omitempty"`
	// Warm marks a summary hydrated from the persistent store; Written
	// one produced (or re-produced) by this run.
	Warm    bool `json:"warm,omitempty"`
	Written bool `json:"written,omitempty"`
	// Reads counts read-set hits on this summary; Readers the distinct
	// procedures that consumed it (its fan-in).
	Reads   int64 `json:"reads"`
	Readers int   `json:"readers"`
}

// Read pairs a consumed summary with its warm flag and hit count — the
// unit the engines persist beside the summaries themselves.
type Read struct {
	Summary summary.Summary
	Warm    bool
	Count   int64
}

// Provenance is a frozen verdict-provenance record.
type Provenance struct {
	// Root is the root query's procedure; Verdict the run's answer.
	Root    string `json:"root"`
	Verdict string `json:"verdict"`
	// Queries counts the query records the run produced.
	Queries int `json:"queries"`
	// Procedures is the verdict's dependency cone: every procedure the
	// answer transitively depends on, sorted. Schedule-invariant across
	// engines (see the package comment).
	Procedures []string `json:"procedures"`
	// Depth is the longest shortest-path (BFS level) from Root inside
	// the cone — how deep the dependency chain behind the verdict runs.
	Depth int `json:"depth"`
	// Deps is the procedure dependency adjacency (proc -> sorted procs
	// it depends on), over every procedure the run touched.
	Deps map[string][]string `json:"deps"`
	// Spawns is the subset of Deps induced by spawn and coalesce edges.
	Spawns map[string][]string `json:"spawns,omitempty"`
	// Summaries lists the distinct summaries read or written, sorted by
	// (proc, kind, pre, post).
	Summaries []SummaryNode `json:"summaries,omitempty"`
	// Aggregate traffic counters (the bolt_prov_* values for this run).
	SummaryReads  int64 `json:"summary_reads"`
	SummaryWrites int64 `json:"summary_writes"`
	ProcReads     int64 `json:"proc_reads"`
	CoalesceReuse int64 `json:"coalesce_reuse"`
	// WarmLoaded counts summaries hydrated from the store; WarmRead the
	// distinct warm summaries the run actually consumed.
	WarmLoaded int `json:"warm_loaded"`
	WarmRead   int `json:"warm_read"`

	reads []Read // full summaries for persistence; not serialized
}

// Finish freezes the recorder into a Provenance. Nil on a nil recorder
// (so Result.Provenance is nil exactly when collection was off).
func (r *Recorder) Finish(verdict string) *Provenance {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p := &Provenance{
		Root:          r.rootProc,
		Verdict:       verdict,
		Queries:       len(r.queries),
		Deps:          map[string][]string{},
		Spawns:        map[string][]string{},
		SummaryReads:  r.summaryReads,
		SummaryWrites: r.summaryWrites,
		ProcReads:     r.procReads,
		CoalesceReuse: r.coalesceReuse,
		WarmLoaded:    len(r.warm),
	}
	for proc, deps := range r.deps {
		p.Deps[proc] = sortedKeys(deps)
	}
	for proc, kids := range r.spawns {
		p.Spawns[proc] = sortedKeys(kids)
	}
	keys := make([]string, 0, len(r.sums))
	for k := range r.sums {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sr := r.sums[k]
		n := SummaryNode{
			Proc:    sr.s.Proc,
			Kind:    sr.s.Kind.String(),
			Warm:    sr.warm,
			Written: sr.written,
			Reads:   sr.reads,
			Readers: len(sr.readers),
		}
		if sr.s.Pre != nil {
			n.Pre = sr.s.Pre.String()
		}
		if sr.s.Post != nil {
			n.Post = sr.s.Post.String()
		}
		p.Summaries = append(p.Summaries, n)
		if sr.reads > 0 {
			p.reads = append(p.reads, Read{Summary: sr.s, Warm: sr.warm, Count: sr.reads})
			if sr.warm {
				p.WarmRead++
			}
		}
	}
	sort.Slice(p.Summaries, func(i, j int) bool { return summaryNodeLess(p.Summaries[i], p.Summaries[j]) })
	p.Procedures, p.Depth = closure(p.Root, p.Deps)
	return p
}

func summaryNodeLess(a, b SummaryNode) bool {
	if a.Proc != b.Proc {
		return a.Proc < b.Proc
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Pre != b.Pre {
		return a.Pre < b.Pre
	}
	return a.Post < b.Post
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// closure BFSes deps from root, returning the sorted reachable set and
// the maximum BFS level (0 when root has no dependencies). Cycles —
// recursion in the analyzed program — are handled by the visited set.
func closure(root string, deps map[string][]string) ([]string, int) {
	if root == "" {
		return nil, 0
	}
	seen := map[string]bool{root: true}
	frontier := []string{root}
	depth := 0
	for len(frontier) > 0 {
		var next []string
		for _, p := range frontier {
			for _, d := range deps[p] {
				if !seen[d] {
					seen[d] = true
					next = append(next, d)
				}
			}
		}
		if len(next) > 0 {
			depth++
		}
		frontier = next
	}
	return sortedKeysFrom(seen), depth
}

func sortedKeysFrom(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Reads returns the distinct summaries the verdict consumed, with warm
// flags and hit counts — what the engines persist beside the summaries.
// Empty after a JSON round trip (the full formulas are not serialized).
func (p *Provenance) Reads() []Read {
	if p == nil {
		return nil
	}
	return p.reads
}

// Cone is the invalidation cone of one (edited) procedure: everything
// whose recorded derivation transitively consumed facts about it.
type Cone struct {
	// Proc is the edited procedure the cone is computed for.
	Proc string `json:"proc"`
	// Procedures is the affected set, sorted: Proc itself plus every
	// procedure that transitively depends on it. Summaries for these
	// procedures are the ones an incremental re-check must invalidate.
	Procedures []string `json:"procedures"`
	// Summaries counts recorded summaries whose procedure is affected.
	Summaries int `json:"summaries"`
	// RootAffected reports whether the verdict itself is in the cone —
	// whether an edit to Proc can change the answer at all.
	RootAffected bool `json:"root_affected"`
}

// Cone computes the invalidation cone for an edited procedure: the
// reverse dependency closure of proc over the recorded DAG. A procedure
// the run never touched yields a cone of just itself with no summaries
// (editing it cannot affect the recorded verdict).
func (p *Provenance) Cone(proc string) Cone {
	c := Cone{Proc: proc}
	if p == nil {
		c.Procedures = []string{proc}
		return c
	}
	// Reverse adjacency: dep -> dependents.
	rev := map[string][]string{}
	for from, tos := range p.Deps {
		for _, to := range tos {
			rev[to] = append(rev[to], from)
		}
	}
	seen := map[string]bool{proc: true}
	frontier := []string{proc}
	for len(frontier) > 0 {
		var next []string
		for _, q := range frontier {
			for _, dep := range rev[q] {
				if !seen[dep] {
					seen[dep] = true
					next = append(next, dep)
				}
			}
		}
		frontier = next
	}
	c.Procedures = sortedKeysFrom(seen)
	c.RootAffected = seen[p.Root]
	for _, s := range p.Summaries {
		if seen[s.Proc] {
			c.Summaries++
		}
	}
	return c
}

// ConeSize is one procedure's invalidation-cone size.
type ConeSize struct {
	Proc string `json:"proc"`
	Size int    `json:"size"`
}

// ConeSizes computes the invalidation-cone size (procedure count) of
// every procedure in the verdict cone, sorted by procedure — the
// distribution behind bolt_prov_cone_size and boltprof -prov.
func (p *Provenance) ConeSizes() []ConeSize {
	if p == nil {
		return nil
	}
	out := make([]ConeSize, 0, len(p.Procedures))
	for _, proc := range p.Procedures {
		out = append(out, ConeSize{Proc: proc, Size: len(p.Cone(proc).Procedures)})
	}
	return out
}

// StableBytes renders the schedule-invariant part of the provenance —
// root, verdict, the procedure cone, and its dependency adjacency — as
// canonical JSON. Two engines analyzing the same program must produce
// identical StableBytes regardless of scheduling; prov-smoke enforces
// this across barrier/async/dist.
func (p *Provenance) StableBytes() []byte {
	if p == nil {
		return nil
	}
	cone := map[string]bool{}
	for _, proc := range p.Procedures {
		cone[proc] = true
	}
	deps := map[string][]string{}
	for _, proc := range p.Procedures {
		deps[proc] = append([]string{}, p.Deps[proc]...)
	}
	doc := struct {
		Root       string              `json:"root"`
		Verdict    string              `json:"verdict"`
		Procedures []string            `json:"procedures"`
		Deps       map[string][]string `json:"deps"`
	}{p.Root, p.Verdict, p.Procedures, deps}
	b, err := json.Marshal(doc) // map keys marshal sorted: canonical
	if err != nil {
		return nil
	}
	return b
}

// Verify checks the structural invariants prov-smoke asserts: a
// non-empty cone containing the root, a cone closed under spawn and
// dependency edges, and consistent warm accounting.
func (p *Provenance) Verify() error {
	if p == nil {
		return fmt.Errorf("prov: nil provenance")
	}
	if len(p.Procedures) == 0 {
		return fmt.Errorf("prov: empty verdict cone")
	}
	in := map[string]bool{}
	for _, proc := range p.Procedures {
		in[proc] = true
	}
	if !in[p.Root] {
		return fmt.Errorf("prov: root %q not in its own cone", p.Root)
	}
	for proc, kids := range p.Spawns {
		if !in[proc] {
			continue
		}
		for _, k := range kids {
			if !in[k] {
				return fmt.Errorf("prov: cone not closed under spawn edges: %s -> %s", proc, k)
			}
		}
	}
	for proc, deps := range p.Deps {
		if !in[proc] {
			continue
		}
		for _, d := range deps {
			if !in[d] {
				return fmt.Errorf("prov: cone not closed under dependency edges: %s -> %s", proc, d)
			}
		}
	}
	if p.WarmRead > p.WarmLoaded {
		return fmt.Errorf("prov: warm_read %d > warm_loaded %d", p.WarmRead, p.WarmLoaded)
	}
	return nil
}

// Explain renders the human-readable dependency-cone report behind
// boltcheck -explain.
func (p *Provenance) Explain() string {
	if p == nil {
		return "provenance: not collected (enable with CollectProvenance / -explain)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "verdict %s for root %s\n", p.Verdict, p.Root)
	fmt.Fprintf(&b, "dependency cone: %d procedure(s), depth %d, %d query record(s)\n",
		len(p.Procedures), p.Depth, p.Queries)
	for _, proc := range p.Procedures {
		deps := p.Deps[proc]
		if len(deps) == 0 {
			fmt.Fprintf(&b, "  %s\n", proc)
			continue
		}
		fmt.Fprintf(&b, "  %s -> %s\n", proc, strings.Join(deps, " "))
	}
	fresh := 0
	warm := 0
	written := 0
	for _, s := range p.Summaries {
		if s.Written {
			written++
		}
		if s.Reads == 0 {
			continue
		}
		if s.Warm {
			warm++
		} else {
			fresh++
		}
	}
	fmt.Fprintf(&b, "summaries: %d distinct read (%d warm, %d fresh), %d written; %d read(s), %d proc scan(s), %d coalesce reuse\n",
		fresh+warm, warm, fresh, written, p.SummaryReads, p.ProcReads, p.CoalesceReuse)
	fmt.Fprintf(&b, "warm attribution: %d of %d loaded warm summaries read\n", p.WarmRead, p.WarmLoaded)
	hot := hotSummaries(p.Summaries, 5)
	if len(hot) > 0 {
		fmt.Fprintf(&b, "hot summaries by fan-in:\n")
		for _, s := range hot {
			src := "fresh"
			if s.Warm {
				src = "warm"
			}
			fmt.Fprintf(&b, "  %3dx (%d readers, %s) %s %s: %s => %s\n",
				s.Reads, s.Readers, src, s.Kind, s.Proc, s.Pre, s.Post)
		}
	}
	return b.String()
}

// hotSummaries returns the top-n read summaries by hit count (ties
// broken by the canonical node order, so the report is deterministic).
func hotSummaries(nodes []SummaryNode, n int) []SummaryNode {
	read := make([]SummaryNode, 0, len(nodes))
	for _, s := range nodes {
		if s.Reads > 0 {
			read = append(read, s)
		}
	}
	sort.SliceStable(read, func(i, j int) bool {
		if read[i].Reads != read[j].Reads {
			return read[i].Reads > read[j].Reads
		}
		return summaryNodeLess(read[i], read[j])
	})
	if len(read) > n {
		read = read[:n]
	}
	return read
}

// WriteJSON serializes the provenance as indented JSON — the artifact
// boltcheck -prov-out writes and boltprof -prov analyzes.
func (p *Provenance) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadJSON loads a provenance artifact written by WriteJSON.
func ReadJSON(r io.Reader) (*Provenance, error) {
	var p Provenance
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("prov: parsing provenance JSON: %w", err)
	}
	return &p, nil
}
