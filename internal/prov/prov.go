// Package prov records verdict provenance: which SUMDB summaries and
// procedures an engine's answer actually depends on. A Recorder is
// threaded through an engine run (all three engines share the same hook
// points); per PUNCH invocation it interposes a recording frame behind
// the punch.DB interface that captures the invocation's read set
// (summaries consumed via AnswerYes/AnswerNo/Answer, procedure scans
// via ForProc) and write set (summaries produced via Add), while the
// engine itself reports the structural edges PUNCH cannot see — spawned
// children, coalesce-twin reuse, and warm-start loads. Finish assembles
// everything into a Provenance value: the verdict→summary→procedure
// dependency DAG, the verdict's procedure cone, and the per-procedure
// invalidation cones that seed incremental re-analysis.
//
// The cone is defined at procedure granularity on purpose: a callee
// appears in a verdict's cone whether its dependency was satisfied by a
// stored summary, a fresh spawned child, or an in-flight twin, so the
// procedure set is schedule-invariant — identical across the barrier,
// async, and distributed engines even though their query DAGs differ.
//
// A nil *Recorder is fully disabled: every method is nil-receiver safe
// and Frame returns its input database untouched, so engines pay one
// pointer comparison per invocation when provenance is off.
package prov

import (
	"sync"

	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/punch"
	"repro/internal/query"
	"repro/internal/smt"
	"repro/internal/summary"
)

// localKey is the process-local canonical identity of a summary — the
// same identity SUMDB dedups on, extended with the procedure. It may
// embed interned "#id" renders and must never be persisted; durable
// artifacts go through wire.SummaryKey instead.
func localKey(s summary.Summary) string {
	return s.Kind.String() + "|" + s.Proc + "|" + fkey(s.Pre) + "|" + fkey(s.Post)
}

// fkey is logic.Key made safe for the nil formulas scripted test
// punches leave in their summaries.
func fkey(f logic.Formula) string {
	if f == nil {
		return "<nil>"
	}
	return logic.Key(f)
}

// sumRec accumulates one distinct summary's traffic across the run.
type sumRec struct {
	s       summary.Summary
	warm    bool
	written bool
	reads   int64
	readers map[string]bool // distinct reader procedures
}

// queryRec is one query's provenance record: its read and write sets at
// summary granularity plus the structural edges the engine reported.
type queryRec struct {
	proc      string
	reads     int
	procReads int
	writes    int
}

// Recorder collects provenance for one engine run. Safe for concurrent
// use by any number of PUNCH workers; the critical sections are short
// map updates, acceptable for an opt-in observability feature.
type Recorder struct {
	mu sync.Mutex
	m  *obs.Metrics // optional: live bolt_prov_* counters

	rootProc string
	queries  map[query.ID]*queryRec
	sums     map[string]*sumRec
	deps     map[string]map[string]bool // proc -> procs it depends on (all edge kinds)
	spawns   map[string]map[string]bool // proc -> child procs (spawn + coalesce edges)
	warm     map[string]bool            // localKey -> loaded from the store

	summaryReads  int64
	summaryWrites int64
	procReads     int64
	coalesceReuse int64
}

// NewRecorder returns an empty recorder. m is optional; when non-nil
// the recorder feeds the live prov_* counters as it records.
func NewRecorder(m *obs.Metrics) *Recorder {
	return &Recorder{
		m:       m,
		queries: map[query.ID]*queryRec{},
		sums:    map[string]*sumRec{},
		deps:    map[string]map[string]bool{},
		spawns:  map[string]map[string]bool{},
		warm:    map[string]bool{},
	}
}

// Root registers the run's root query. The verdict cone is the
// dependency closure from its procedure.
func (r *Recorder) Root(id query.ID, proc string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.rootProc = proc
	r.query(id, proc)
	r.touch(proc)
	r.mu.Unlock()
}

// Spawn records a parent→child edge for a freshly spawned sub-query.
func (r *Recorder) Spawn(parent query.ID, parentProc string, child query.ID, childProc string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.query(parent, parentProc)
	r.query(child, childProc)
	r.edge(parentProc, childProc)
	r.spawnEdge(parentProc, childProc)
	r.mu.Unlock()
}

// Coalesce records a parent's dependency satisfied by an in-flight twin
// instead of a fresh subtree: the same procedure-level edge a spawn
// would have produced, so cones stay schedule-invariant, plus the reuse
// counter.
func (r *Recorder) Coalesce(parent query.ID, parentProc, childProc string) {
	if r == nil {
		return
	}
	r.m.Inc(obs.ProvCoalesceReuse)
	r.mu.Lock()
	r.query(parent, parentProc)
	r.edge(parentProc, childProc)
	r.spawnEdge(parentProc, childProc)
	r.coalesceReuse++
	r.mu.Unlock()
}

// MarkWarm registers a summary hydrated from the persistent store, so
// reads of it are attributed to the warm set.
func (r *Recorder) MarkWarm(s summary.Summary) {
	if r == nil {
		return
	}
	r.mu.Lock()
	k := localKey(s)
	r.warm[k] = true
	sr := r.sum(k, s)
	sr.warm = true
	r.mu.Unlock()
}

// Frame wraps db in a recording frame attributed to query id running
// proc. On a nil recorder it returns db unchanged — the whole cost of
// disabled provenance.
func (r *Recorder) Frame(db punch.DB, id query.ID, proc string) punch.DB {
	if r == nil {
		return db
	}
	return &frame{db: db, r: r, id: id, proc: proc}
}

// query returns (creating if needed) the record for id. Caller holds mu.
func (r *Recorder) query(id query.ID, proc string) *queryRec {
	q := r.queries[id]
	if q == nil {
		q = &queryRec{proc: proc}
		r.queries[id] = q
	}
	return q
}

// touch ensures proc has a node in the dependency graph. Caller holds mu.
func (r *Recorder) touch(proc string) {
	if r.deps[proc] == nil {
		r.deps[proc] = map[string]bool{}
	}
}

// edge records proc -> dep in the dependency graph. Caller holds mu.
func (r *Recorder) edge(proc, dep string) {
	r.touch(proc)
	r.touch(dep)
	// Self-edges are dropped: whether a procedure consults its own
	// summary is schedule-dependent (a coalesce hit on one schedule is a
	// fresh read on another), and a p->p edge adds nothing to any
	// invalidation cone — p is always in its own cone. Dropping them
	// keeps StableBytes identical across engine schedules.
	if proc != dep {
		r.deps[proc][dep] = true
	}
}

func (r *Recorder) spawnEdge(proc, child string) {
	if proc == child {
		return // see edge: self-edges are schedule noise
	}
	if r.spawns[proc] == nil {
		r.spawns[proc] = map[string]bool{}
	}
	r.spawns[proc][child] = true
}

// sum returns (creating if needed) the record for a summary. Caller
// holds mu.
func (r *Recorder) sum(k string, s summary.Summary) *sumRec {
	sr := r.sums[k]
	if sr == nil {
		sr = &sumRec{s: s, warm: r.warm[k], readers: map[string]bool{}}
		r.sums[k] = sr
	}
	return sr
}

// read records query id (running proc) consuming summary s.
func (r *Recorder) read(id query.ID, proc string, s summary.Summary) {
	r.m.Inc(obs.ProvSummaryReads)
	r.mu.Lock()
	r.query(id, proc).reads++
	sr := r.sum(localKey(s), s)
	sr.reads++
	sr.readers[proc] = true
	r.edge(proc, s.Proc)
	r.summaryReads++
	r.mu.Unlock()
}

// readProc records query id (running proc) scanning callee's summaries.
func (r *Recorder) readProc(id query.ID, proc, callee string) {
	r.m.Inc(obs.ProvProcReads)
	r.mu.Lock()
	r.query(id, proc).procReads++
	r.edge(proc, callee)
	r.procReads++
	r.mu.Unlock()
}

// write records query id (running proc) producing summary s.
func (r *Recorder) write(id query.ID, proc string, s summary.Summary) {
	r.m.Inc(obs.ProvSummaryWrites)
	r.mu.Lock()
	r.query(id, proc).writes++
	sr := r.sum(localKey(s), s)
	sr.written = true
	r.touch(s.Proc)
	r.summaryWrites++
	r.mu.Unlock()
}

// frame is the per-invocation recording view of the summary database.
// It implements punch.DB by delegating every call and recording the
// hits. Because the entailment cache and the per-shard memo sit behind
// AnswerYes/AnswerNo (a memo hit still returns the answering summary),
// cache-served answers carry summary-granularity provenance for free.
type frame struct {
	db   punch.DB
	r    *Recorder
	id   query.ID
	proc string
}

func (f *frame) Solver() *smt.Solver { return f.db.Solver() }

func (f *frame) Add(s summary.Summary) {
	f.db.Add(s)
	f.r.write(f.id, f.proc, s)
}

func (f *frame) AnswerYes(q summary.Question) (summary.Summary, bool) {
	s, ok := f.db.AnswerYes(q)
	if ok {
		f.r.read(f.id, f.proc, s)
	}
	return s, ok
}

func (f *frame) AnswerNo(q summary.Question) (summary.Summary, bool) {
	s, ok := f.db.AnswerNo(q)
	if ok {
		f.r.read(f.id, f.proc, s)
	}
	return s, ok
}

func (f *frame) Answer(q summary.Question) (summary.Summary, int) {
	s, v := f.db.Answer(q)
	if v != 0 {
		f.r.read(f.id, f.proc, s)
	}
	return s, v
}

func (f *frame) ForProc(proc string) []summary.Summary {
	f.r.readProc(f.id, f.proc, proc)
	return f.db.ForProc(proc)
}
