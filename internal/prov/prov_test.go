package prov

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/punch"
	"repro/internal/smt"
	"repro/internal/summary"
)

func g(x int64) logic.Formula {
	return logic.Eq(logic.LinVar(lang.Var("g")), logic.LinConst(x))
}

func mkSum(proc string, a, b int64) summary.Summary {
	return summary.Summary{Kind: summary.Must, Proc: proc, Pre: g(a), Post: g(b)}
}

// stubDB is a canned punch.DB so frame recording is tested without
// solver entailment semantics in the way.
type stubDB struct{ s summary.Summary }

func (d *stubDB) Solver() *smt.Solver                                { return nil }
func (d *stubDB) Add(summary.Summary)                                {}
func (d *stubDB) Answer(summary.Question) (summary.Summary, int)     { return d.s, -1 }
func (d *stubDB) AnswerYes(summary.Question) (summary.Summary, bool) { return d.s, true }
func (d *stubDB) AnswerNo(summary.Question) (summary.Summary, bool) {
	return summary.Summary{}, false
}
func (d *stubDB) ForProc(string) []summary.Summary { return []summary.Summary{d.s} }

// TestNilRecorderIsFree locks the zero-cost-when-disabled contract: a
// nil recorder's methods are no-ops and Frame returns the database
// untouched, so engines pay one pointer comparison per invocation.
func TestNilRecorderIsFree(t *testing.T) {
	var r *Recorder
	db := &stubDB{s: mkSum("f", 0, 1)}
	if got := r.Frame(db, 1, "main"); got != punch.DB(db) {
		t.Fatalf("nil recorder must return the db unchanged, got %T", got)
	}
	r.Root(1, "main")
	r.Spawn(1, "main", 2, "f")
	r.Coalesce(1, "main", "f")
	r.MarkWarm(mkSum("f", 0, 1))
	if p := r.Finish("x"); p != nil {
		t.Fatalf("nil recorder Finish must be nil, got %+v", p)
	}
	if p := (*Provenance)(nil); p.Verify() == nil {
		t.Fatal("nil provenance must not verify")
	}
}

// TestRecorderScenario runs a three-procedure scenario through the
// recorder and checks every derived view of the Finish artifact.
func TestRecorderScenario(t *testing.T) {
	r := NewRecorder(nil)
	warm := mkSum("leaf", 0, 1)
	r.MarkWarm(warm)

	r.Root(1, "main")
	r.Spawn(1, "main", 2, "mid")
	r.Spawn(2, "mid", 3, "leaf")

	// mid's PUNCH invocation consumes leaf's warm summary and produces
	// its own; main scans mid's summaries.
	f := r.Frame(&stubDB{s: warm}, 2, "mid")
	if _, ok := f.AnswerYes(summary.Question{Proc: "leaf", Pre: g(0), Post: g(1)}); !ok {
		t.Fatal("stub must answer")
	}
	f.Add(mkSum("mid", 0, 1))
	rootFrame := r.Frame(&stubDB{s: mkSum("mid", 0, 1)}, 1, "main")
	if got := rootFrame.ForProc("mid"); len(got) != 1 {
		t.Fatalf("ForProc passthrough broken: %d summaries", len(got))
	}

	p := r.Finish("Program is Safe")
	if p.Root != "main" || p.Verdict != "Program is Safe" {
		t.Fatalf("header wrong: %+v", p)
	}
	if want := []string{"leaf", "main", "mid"}; !reflect.DeepEqual(p.Procedures, want) {
		t.Fatalf("cone %v, want %v", p.Procedures, want)
	}
	if p.Depth != 2 {
		t.Fatalf("depth %d, want 2 (main -> mid -> leaf)", p.Depth)
	}
	if p.SummaryReads != 1 || p.SummaryWrites != 1 || p.ProcReads != 1 {
		t.Fatalf("traffic reads=%d writes=%d procReads=%d, want 1/1/1",
			p.SummaryReads, p.SummaryWrites, p.ProcReads)
	}
	if p.WarmLoaded != 1 || p.WarmRead != 1 {
		t.Fatalf("warm attribution %d/%d, want 1/1", p.WarmRead, p.WarmLoaded)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if len(p.Reads()) != 1 || !p.Reads()[0].Warm || p.Reads()[0].Count != 1 {
		t.Fatalf("read set wrong: %+v", p.Reads())
	}

	// Invalidation cones: editing leaf invalidates everything upstream;
	// editing main only itself; an untouched procedure has a trivial
	// cone that cannot affect the verdict.
	leafCone := p.Cone("leaf")
	if want := []string{"leaf", "main", "mid"}; !reflect.DeepEqual(leafCone.Procedures, want) {
		t.Fatalf("leaf cone %v, want %v", leafCone.Procedures, want)
	}
	if !leafCone.RootAffected || leafCone.Summaries == 0 {
		t.Fatalf("leaf cone must affect the root with summaries: %+v", leafCone)
	}
	mainCone := p.Cone("main")
	if !reflect.DeepEqual(mainCone.Procedures, []string{"main"}) || !mainCone.RootAffected {
		t.Fatalf("main cone wrong: %+v", mainCone)
	}
	other := p.Cone("untouched")
	if !reflect.DeepEqual(other.Procedures, []string{"untouched"}) || other.RootAffected || other.Summaries != 0 {
		t.Fatalf("untouched cone wrong: %+v", other)
	}
}

// TestCoalesceEdgeMatchesSpawnEdge: a dependency satisfied by a
// coalesced twin must produce the same procedure-level cone as a fresh
// spawn — the schedule-invariance property prov-smoke asserts end to
// end.
func TestCoalesceEdgeMatchesSpawnEdge(t *testing.T) {
	spawned := NewRecorder(nil)
	spawned.Root(1, "main")
	spawned.Spawn(1, "main", 2, "f")

	coalesced := NewRecorder(nil)
	coalesced.Root(1, "main")
	coalesced.Coalesce(1, "main", "f")

	a := spawned.Finish("v")
	b := coalesced.Finish("v")
	if !bytes.Equal(a.StableBytes(), b.StableBytes()) {
		t.Fatalf("spawn vs coalesce cones differ:\n%s\n%s", a.StableBytes(), b.StableBytes())
	}
	if b.CoalesceReuse != 1 {
		t.Fatalf("coalesce reuse %d, want 1", b.CoalesceReuse)
	}
}

// TestStableBytesOrderInvariant: recording the same edges in a
// different order yields identical canonical bytes.
func TestStableBytesOrderInvariant(t *testing.T) {
	a := NewRecorder(nil)
	a.Root(1, "main")
	a.Spawn(1, "main", 2, "f")
	a.Spawn(1, "main", 3, "g")
	a.Spawn(2, "f", 4, "h")

	b := NewRecorder(nil)
	b.Root(1, "main")
	b.Spawn(1, "main", 3, "g")
	b.Spawn(2, "f", 4, "h")
	b.Spawn(1, "main", 2, "f")

	if !bytes.Equal(a.Finish("v").StableBytes(), b.Finish("v").StableBytes()) {
		t.Fatal("StableBytes must be insensitive to recording order")
	}
}

// TestVerifyViolations: each structural invariant fails loudly.
func TestVerifyViolations(t *testing.T) {
	if err := (&Provenance{Root: "a"}).Verify(); err == nil {
		t.Fatal("empty cone must not verify")
	}
	p := &Provenance{Root: "a", Procedures: []string{"b"}}
	if err := p.Verify(); err == nil {
		t.Fatal("cone missing its root must not verify")
	}
	p = &Provenance{
		Root:       "a",
		Procedures: []string{"a"},
		Spawns:     map[string][]string{"a": {"b"}},
	}
	if err := p.Verify(); err == nil {
		t.Fatal("cone not closed under spawn edges must not verify")
	}
	p = &Provenance{
		Root:       "a",
		Procedures: []string{"a"},
		Deps:       map[string][]string{"a": {"c"}},
	}
	if err := p.Verify(); err == nil {
		t.Fatal("cone not closed under dep edges must not verify")
	}
	p = &Provenance{Root: "a", Procedures: []string{"a"}, WarmRead: 2, WarmLoaded: 1}
	if err := p.Verify(); err == nil {
		t.Fatal("warm_read > warm_loaded must not verify")
	}
}

// TestJSONRoundTrip: the serialized artifact reloads with the
// schedule-invariant part intact.
func TestJSONRoundTrip(t *testing.T) {
	r := NewRecorder(nil)
	r.Root(1, "main")
	r.Spawn(1, "main", 2, "f")
	f := r.Frame(&stubDB{s: mkSum("f", 0, 1)}, 1, "main")
	f.Answer(summary.Question{Proc: "f", Pre: g(0), Post: g(1)})
	p := r.Finish("Error Reachable")

	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.StableBytes(), q.StableBytes()) {
		t.Fatalf("round trip changed stable bytes:\n%s\n%s", p.StableBytes(), q.StableBytes())
	}
	if q.SummaryReads != p.SummaryReads || len(q.Summaries) != len(p.Summaries) {
		t.Fatalf("round trip lost traffic: %+v vs %+v", q, p)
	}
	if err := q.Verify(); err != nil {
		t.Fatalf("reloaded record must verify: %v", err)
	}
}

// TestExplainMentionsCone: the human report names the verdict, the cone
// size, and the hot summaries.
func TestExplainMentionsCone(t *testing.T) {
	r := NewRecorder(nil)
	r.Root(1, "main")
	r.Spawn(1, "main", 2, "f")
	fr := r.Frame(&stubDB{s: mkSum("f", 0, 1)}, 1, "main")
	fr.AnswerYes(summary.Question{Proc: "f", Pre: g(0), Post: g(1)})
	p := r.Finish("Program is Safe")
	out := p.Explain()
	for _, want := range []string{"Program is Safe", "main", "2 procedure(s)", "hot summaries"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("explain output missing %q:\n%s", want, out)
		}
	}
	var nilP *Provenance
	if out := nilP.Explain(); out == "" {
		t.Fatal("nil provenance must still explain itself")
	}
}
