package punch

import (
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/query"
	"repro/internal/summary"
)

func mkQuery(id, parent query.ID, state query.State, outcome query.Outcome) *query.Query {
	return &query.Query{
		ID: id, Parent: parent, State: state, Outcome: outcome,
		Q: summary.Question{Proc: "p", Pre: logic.True, Post: logic.True},
	}
}

func TestContractAccepts(t *testing.T) {
	in := mkQuery(1, 0, query.Ready, query.Pending)
	cases := []Result{
		{Self: mkQuery(1, 0, query.Done, query.Reachable)},
		{Self: mkQuery(1, 0, query.Done, query.Unreachable)},
		{Self: mkQuery(1, 0, query.Blocked, query.Pending),
			Children: []*query.Query{mkQuery(7, 1, query.Ready, query.Pending)}},
		{Self: mkQuery(1, 0, query.Ready, query.Pending)},
	}
	for i, r := range cases {
		if err := CheckContract(in, r); err != nil {
			t.Errorf("case %d rejected: %v", i, err)
		}
	}
}

func TestContractRejects(t *testing.T) {
	in := mkQuery(1, 0, query.Ready, query.Pending)
	cases := []struct {
		r    Result
		want string
	}{
		{Result{Self: nil}, "nil Self"},
		{Result{Self: mkQuery(2, 0, query.Done, query.Reachable)}, "ID changed"},
		{Result{Self: mkQuery(1, 0, query.Done, query.Reachable),
			Children: []*query.Query{mkQuery(7, 1, query.Ready, query.Pending)}}, "children"},
		{Result{Self: mkQuery(1, 0, query.Done, query.Pending)}, "no outcome"},
		{Result{Self: mkQuery(1, 0, query.Blocked, query.Pending),
			Children: []*query.Query{mkQuery(7, 1, query.Blocked, query.Pending)}}, "want Ready"},
		{Result{Self: mkQuery(1, 0, query.Blocked, query.Pending),
			Children: []*query.Query{mkQuery(7, 9, query.Ready, query.Pending)}}, "parent"},
	}
	for i, c := range cases {
		err := CheckContract(in, c.r)
		if err == nil {
			t.Errorf("case %d accepted", i)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d error = %v, want substring %q", i, err, c.want)
		}
	}
}

func TestModRefOfLazy(t *testing.T) {
	// ModRefOf must compute the table on demand when the engine did not
	// prefill it. Use a tiny program via the cfg test helpers.
	ctx := &Context{Prog: testProgram(t)}
	mr := ctx.ModRefOf("main")
	if mr == nil {
		t.Fatal("nil mod/ref")
	}
	if ctx.ModRef == nil {
		t.Fatal("table not cached")
	}
}

func testProgram(t *testing.T) *cfg.Program {
	t.Helper()
	b := cfg.NewProc("main")
	exit := b.NewNode()
	b.AddEdge(b.Entry(), exit, lang.Skip{})
	prog, err := cfg.NewProgram("t", nil, "main", b.Finish(exit))
	if err != nil {
		t.Fatal(err)
	}
	return prog
}
