// Package punch defines the contract of BOLT's intraprocedural parameter
// PUNCH (§3.2): an analysis that takes a Ready query and either finishes
// it (adding an answering summary to SUMDB as its only side effect) or
// returns it Ready/Blocked together with fresh Ready child sub-queries.
package punch

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/query"
	"repro/internal/smt"
	"repro/internal/summary"
)

// DB is the summary-database surface a PUNCH invocation sees: the lookup
// and insertion methods of *summary.DB, and nothing else. Engines hand
// PUNCH the real database directly, or — when provenance collection is
// on — a per-invocation recording frame that delegates to it while
// capturing the invocation's read and write sets. Keeping the interface
// to exactly the methods PUNCH uses is what makes that interposition a
// one-field swap instead of an engine rewrite.
type DB interface {
	// Solver returns the database's shared solver (entailment cache and
	// all); PUNCH charges its cost model off this solver's stats.
	Solver() *smt.Solver
	// Add inserts a summary (the §3.2 side effect of finishing a query).
	Add(s summary.Summary)
	// Answer reports +1/-1/0 for q against the stored summaries.
	Answer(q summary.Question) (summary.Summary, int)
	// AnswerYes reports whether a stored must-summary proves q.
	AnswerYes(q summary.Question) (summary.Summary, bool)
	// AnswerNo reports whether a stored not-may-summary refutes q.
	AnswerNo(q summary.Question) (summary.Summary, bool)
	// ForProc returns a stable view of proc's summaries.
	ForProc(proc string) []summary.Summary
}

// Context carries the shared resources a PUNCH invocation may use. Per the
// paper, SUMDB is the only shared mutable state; the allocator hands out
// globally unique query IDs. ModRef is whole-program side information
// computed once per run (the paper stores the analogous alias information
// alongside the database).
type Context struct {
	Prog   *cfg.Program
	DB     DB
	Alloc  *query.Allocator
	ModRef map[string]*cfg.ModRef
}

// ModRefOf returns the mod/ref record for proc, computing the table on
// first use when the engine did not prefill it.
func (c *Context) ModRefOf(proc string) *cfg.ModRef {
	if c.ModRef == nil {
		c.ModRef = c.Prog.ModRef()
	}
	return c.ModRef[proc]
}

// Result is the return value of one PUNCH invocation.
type Result struct {
	// Self is the updated copy Q'_i of the input query.
	Self *query.Query
	// Children are the new sub-queries C; per the §3.2 postcondition they
	// are all Ready and have Self as parent, and C is empty when Self is
	// Done.
	Children []*query.Query
	// Cost is the abstract work (solver-call-weighted steps) this
	// invocation consumed; the virtual-time scheduler charges it to the
	// worker that ran the invocation.
	Cost int64
}

// Punch is the intraprocedural analysis parameter.
//
// Precondition: q.State == Ready.
// Postcondition (§3.2): in the result r,
//   - r.Self.State == Done implies len(r.Children) == 0 and SUMDB now
//     contains a summary answering q.Q;
//   - otherwise r.Self.State ∈ {Ready, Blocked} and every child is Ready
//     with parent index r.Self.ID.
type Punch interface {
	Name() string
	Step(ctx *Context, q *query.Query) Result
}

// CheckContract validates the §3.2 postcondition of a PUNCH result. The
// engine runs it in testing builds; instantiations are also unit-tested
// against it directly.
func CheckContract(in *query.Query, r Result) error {
	if r.Self == nil {
		return fmt.Errorf("punch: nil Self for query %d", in.ID)
	}
	if r.Self.ID != in.ID {
		return fmt.Errorf("punch: Self ID changed from %d to %d", in.ID, r.Self.ID)
	}
	switch r.Self.State {
	case query.Done:
		if len(r.Children) != 0 {
			return fmt.Errorf("punch: Done query %d returned %d children", in.ID, len(r.Children))
		}
		if r.Self.Outcome == query.Pending {
			return fmt.Errorf("punch: Done query %d has no outcome", in.ID)
		}
	case query.Ready, query.Blocked:
		for _, c := range r.Children {
			if c.State != query.Ready {
				return fmt.Errorf("punch: child %d of query %d is %v, want Ready", c.ID, in.ID, c.State)
			}
			if c.Parent != in.ID {
				return fmt.Errorf("punch: child %d has parent %d, want %d", c.ID, c.Parent, in.ID)
			}
		}
	default:
		return fmt.Errorf("punch: query %d returned in invalid state %v", in.ID, r.Self.State)
	}
	return nil
}
