// Package maymust instantiates PUNCH with a may-must analysis in the
// style of SYNERGY/DASH (§4 of the paper): an over-approximating region
// graph (may-map Σ plus eliminated abstract edges Ē) is refined by
// preimage splitting, while an under-approximating must-map O of symbolic
// execution states grows toward the error region. Frontiers — abstract
// edges reached but not yet taken by the must side — drive both
// refinement and the creation of child sub-queries at call edges.
package maymust

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/query"
	"repro/internal/summary"
)

// region is one member of a node's partition Σ_n. Region identities are
// retired on split: the two halves get fresh IDs, which keeps all
// ID-keyed caches naturally invalidated.
type region struct {
	id   int
	node cfg.NodeID
	f    logic.Formula
	// target marks regions descending from the initial φ2-region at exit.
	target bool
}

// edgeKey identifies an abstract edge: a CFG edge index together with the
// source and destination region IDs.
type edgeKey struct {
	edge     int
	from, to int
}

// mustElem is one element of the must-map O: a symbolic execution state
// (path condition over symbols, store mapping program variables to linear
// terms over symbols). The set of concrete states it denotes at its node
// is { σ(v) : v ⊨ path }, an under-approximation of the reachable states.
type mustElem struct {
	path  logic.Formula
	store map[lang.Var]logic.Lin
	// reach caches region-membership checks: region ID → +1 / -1.
	reach map[int]int8
	// exitChecked marks exit elements already tested against φ2.
	exitChecked bool
}

// pendingChild records an outstanding sub-query for a call-edge frontier.
type pendingChild struct {
	id int64 // query ID (for bookkeeping/debugging)
	q  summary.Question
}

// obj is the verification object O_i stored in the query between PUNCH
// invocations: the complete saved state of the intraprocedural analysis.
type obj struct {
	proc    *cfg.Proc
	globals []lang.Var
	locals  []lang.Var

	// May side.
	regCount int
	regAt    map[cfg.NodeID][]*region
	elim     map[edgeKey]bool
	open     map[edgeKey]int8 // one-step feasibility cache: +1 open, -1 shut

	// Must side.
	musts    map[cfg.NodeID][]*mustElem
	mustKeys map[cfg.NodeID]map[string]bool
	symCount int
	initSyms map[lang.Var]lang.Var // initial symbol of each variable

	// Call-frontier bookkeeping.
	pending  map[edgeKey]pendingChild
	attempts map[edgeKey]int
	stuck    map[edgeKey]bool

	// pointPre caches whether a must summary's precondition denotes a
	// single state (keyed by summary string).
	pointPre map[string]int8

	initialized bool
}

func newObj(proc *cfg.Proc, globals []lang.Var) *obj {
	return &obj{
		proc:     proc,
		globals:  globals,
		locals:   proc.Locals,
		regAt:    map[cfg.NodeID][]*region{},
		elim:     map[edgeKey]bool{},
		open:     map[edgeKey]int8{},
		musts:    map[cfg.NodeID][]*mustElem{},
		mustKeys: map[cfg.NodeID]map[string]bool{},
		initSyms: map[lang.Var]lang.Var{},
		pending:  map[edgeKey]pendingChild{},
		attempts: map[edgeKey]int{},
		stuck:    map[edgeKey]bool{},
		pointPre: map[string]int8{},
	}
}

// newRegion mints a region without attaching it to the node partition;
// attach it explicitly or via replaceRegion.
func (o *obj) newRegion(node cfg.NodeID, f logic.Formula, target bool) *region {
	r := &region{id: o.regCount, node: node, f: f, target: target}
	o.regCount++
	return r
}

// attach adds a minted region to its node's partition.
func (o *obj) attach(r *region) { o.regAt[r.node] = append(o.regAt[r.node], r) }

// freshSym mints a fresh symbolic variable for program variable v of query
// qid. The "$" prefix cannot appear in parsed programs, so symbols never
// collide with program variables.
func (o *obj) freshSym(qid query.ID, v lang.Var) lang.Var {
	s := lang.Var(fmt.Sprintf("$%d_%d_%s", qid, o.symCount, v))
	o.symCount++
	return s
}

// replaceRegion swaps r for the given parts in the node partition and
// migrates ID-keyed bookkeeping (eliminations, pending children, stuck
// marks, attempt counts) to every part, which is sound because each part
// denotes a subset of r.
func (o *obj) replaceRegion(r *region, parts ...*region) {
	regs := o.regAt[r.node]
	out := regs[:0]
	for _, x := range regs {
		if x.id != r.id {
			out = append(out, x)
		}
	}
	o.regAt[r.node] = append(out, parts...)

	partIDs := make([]int, len(parts))
	for i, p := range parts {
		partIDs[i] = p.id
	}
	migrate := func(old edgeKey) []edgeKey {
		if old.from != r.id && old.to != r.id {
			return nil
		}
		froms := []int{old.from}
		if old.from == r.id {
			froms = partIDs
		}
		tos := []int{old.to}
		if old.to == r.id {
			tos = partIDs
		}
		var ks []edgeKey
		for _, f := range froms {
			for _, t := range tos {
				ks = append(ks, edgeKey{old.edge, f, t})
			}
		}
		return ks
	}
	for _, m := range []map[edgeKey]bool{o.elim, o.stuck} {
		var add []edgeKey
		for k, v := range m {
			if !v {
				continue
			}
			add = append(add, migrate(k)...)
		}
		for _, k := range add {
			m[k] = true
		}
	}
	{
		type kv struct {
			k edgeKey
			v pendingChild
		}
		var add []kv
		for k, v := range o.pending {
			for _, nk := range migrate(k) {
				add = append(add, kv{nk, v})
			}
		}
		for _, e := range add {
			o.pending[e.k] = e.v
		}
	}
	{
		type kv struct {
			k edgeKey
			v int
		}
		var add []kv
		for k, v := range o.attempts {
			for _, nk := range migrate(k) {
				add = append(add, kv{nk, v})
			}
		}
		for _, e := range add {
			o.attempts[e.k] = e.v
		}
	}
}

// addMust appends a must element at node, respecting the per-node cap and
// skipping structural duplicates.
func (o *obj) addMust(node cfg.NodeID, e *mustElem, cap int) bool {
	if len(o.musts[node]) >= cap {
		return false
	}
	key := e.key(o)
	if o.mustKeys[node] == nil {
		o.mustKeys[node] = map[string]bool{}
	}
	if o.mustKeys[node][key] {
		return false
	}
	o.mustKeys[node][key] = true
	e.reach = map[int]int8{}
	o.musts[node] = append(o.musts[node], e)
	return true
}

// key renders the element structurally for deduplication.
func (e *mustElem) key(o *obj) string {
	s := e.path.String()
	for _, v := range o.globals {
		s += "|" + string(v) + "=" + e.store[v].String()
	}
	for _, v := range o.locals {
		s += "|" + string(v) + "=" + e.store[v].String()
	}
	return s
}

func cloneStore(s map[lang.Var]logic.Lin) map[lang.Var]logic.Lin {
	out := make(map[lang.Var]logic.Lin, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}
