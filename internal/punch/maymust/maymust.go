package maymust

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/cfg"
	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/punch"
	"repro/internal/query"
	"repro/internal/smt"
	"repro/internal/summary"
)

// Analysis is the may-must PUNCH instantiation. The zero value is not
// usable; call New.
type Analysis struct {
	// Budget is the abstract work budget per Step invocation; when
	// exhausted the query is preempted and returned Ready (§3.2 fairness).
	Budget int64
	// MaxMustElems caps the must-map size per control location.
	MaxMustElems int
	// MaxChildAttempts bounds re-issued children per call-edge frontier
	// before the edge is declared stuck.
	MaxChildAttempts int
	// Debug, when non-nil, receives a trace of analysis decisions.
	Debug io.Writer
}

// New returns a may-must analysis with default limits.
func New() *Analysis {
	return &Analysis{Budget: 900, MaxMustElems: 24, MaxChildAttempts: 6}
}

// maxChildPreSize bounds the formula size of an over-projected child
// precondition before falling back to a concrete entry point.
const maxChildPreSize = 160

// Name implements punch.Punch.
func (a *Analysis) Name() string { return "may-must" }

// Step implements punch.Punch: one budgeted slice of DASH-style analysis
// on query q.
func (a *Analysis) Step(ctx *punch.Context, q *query.Query) punch.Result {
	st := &stepper{
		a:      a,
		ctx:    ctx,
		q:      q,
		solver: ctx.DB.Solver(),
	}
	return st.run()
}

type stepper struct {
	a        *Analysis
	ctx      *punch.Context
	q        *query.Query
	o        *obj
	solver   *smt.Solver
	cost     int64
	children []*query.Query
}

// charge accounts abstract work.
func (st *stepper) charge(n int64) { st.cost += n }

// debugf emits a trace line when debugging is enabled.
func (st *stepper) debugf(format string, args ...any) {
	if st.a.Debug == nil {
		return
	}
	fmt.Fprintf(st.a.Debug, "[Q%d %s] ", st.q.ID, st.q.Q.Proc)
	fmt.Fprintf(st.a.Debug, format, args...)
	fmt.Fprintln(st.a.Debug)
}

func (st *stepper) sat(f logic.Formula) smt.Result {
	st.charge(4)
	return st.solver.Sat(f)
}

func (st *stepper) implies(a, b logic.Formula) bool {
	st.charge(4)
	return st.solver.Implies(a, b)
}

// finish assembles the result in the given state.
func (st *stepper) finish(state query.State, outcome query.Outcome) punch.Result {
	st.q.State = state
	st.q.Outcome = outcome
	st.q.Obj = st.o
	children := st.children
	if state == query.Done {
		children = nil
	}
	return punch.Result{Self: st.q, Children: children, Cost: st.cost}
}

func (st *stepper) run() punch.Result {
	// Summary reuse: if SUMDB can already answer this question, the query
	// is Done without any analysis (the paper's first step of PUNCH).
	if _, verdict := st.ctx.DB.Answer(st.q.Q); verdict != 0 {
		st.charge(4)
		if st.o == nil {
			if o, ok := st.q.Obj.(*obj); ok {
				st.o = o
			} else {
				st.o = newObj(st.ctx.Prog.Proc(st.q.Q.Proc), st.ctx.Prog.Globals)
			}
		}
		if verdict > 0 {
			return st.finish(query.Done, query.Reachable)
		}
		return st.finish(query.Done, query.Unreachable)
	}

	if o, ok := st.q.Obj.(*obj); ok && o != nil {
		st.o = o
	} else {
		st.o = newObj(st.ctx.Prog.Proc(st.q.Q.Proc), st.ctx.Prog.Globals)
	}
	if !st.o.initialized {
		if done, res := st.initialize(); done {
			return res
		}
	}

	st.sweepPending()

	for {
		if st.cost >= st.a.Budget {
			return st.finish(query.Ready, query.Pending)
		}
		if res, done := st.checkMustSuccess(); done {
			return res
		}
		path := st.findPath(true)
		if path == nil {
			full := st.findPath(false)
			if full == nil {
				st.debugf("DONE unreachable (no abstract path)")
				// No abstract error path at all: proof.
				st.ctx.DB.Add(summary.Summary{
					Kind: summary.NotMay,
					Proc: st.q.Q.Proc,
					Pre:  st.q.Q.Pre,
					Post: st.q.Q.Post,
				})
				return st.finish(query.Done, query.Unreachable)
			}
			// Paths remain but all go through pending or stuck edges.
			// Before blocking, fan out: issue sub-queries for every
			// unresolved call edge on any abstract error path, so sibling
			// callees are analyzed in parallel instead of one at a time
			// (PUNCH "explores other paths in main", §1 — this is what
			// fills the MAP stage of Fig. 3 with ~fanout Ready queries).
			st.fanOut()
			st.debugf("BLOCKED (pending=%d stuck=%d, %d children)", len(st.o.pending), len(st.o.stuck), len(st.children))
			return st.finish(query.Blocked, query.Pending)
		}
		st.handleFrontier(path)
	}
}

// initialize builds the initial may and must maps. Returns done=true when
// the query can be decided immediately (empty precondition).
func (st *stepper) initialize() (bool, punch.Result) {
	o, q := st.o, st.q
	pre := st.sat(q.Q.Pre)
	if pre.Known && !pre.Sat {
		st.ctx.DB.Add(summary.Summary{Kind: summary.NotMay, Proc: q.Q.Proc, Pre: q.Q.Pre, Post: q.Q.Post})
		o.initialized = true
		return true, st.finish(query.Done, query.Unreachable)
	}
	// May-map Σ: exit is partitioned into {φ2, ¬φ2}; every other node
	// starts with the single partition ⊤ (§4).
	for n := 0; n < o.proc.NNodes; n++ {
		node := cfg.NodeID(n)
		if node == o.proc.Exit {
			o.attach(o.newRegion(node, q.Q.Post, true))
			o.attach(o.newRegion(node, logic.Not(q.Q.Post), false))
		} else {
			o.attach(o.newRegion(node, logic.True, false))
		}
	}
	// Must-map O: one symbolic element at entry — globals constrained by
	// φ1, locals unconstrained (fresh symbols).
	store := map[lang.Var]logic.Lin{}
	ren := map[lang.Var]lang.Var{}
	for _, v := range append(append([]lang.Var{}, o.globals...), o.locals...) {
		s := o.freshSym(q.ID, v)
		o.initSyms[v] = s
		store[v] = logic.LinVar(s)
		ren[v] = s
	}
	path := logic.Rename(q.Q.Pre, ren)
	st.o.addMust(o.proc.Entry, &mustElem{path: path, store: store}, st.a.MaxMustElems)
	o.initialized = true
	return false, punch.Result{}
}

// sweepPending drops pending-child markers whose question SUMDB can now
// answer, reopening those call edges for the frontier machinery.
func (st *stepper) sweepPending() {
	keys := make([]edgeKey, 0, len(st.o.pending))
	for k := range st.o.pending {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.edge != b.edge {
			return a.edge < b.edge
		}
		if a.from != b.from {
			return a.from < b.from
		}
		return a.to < b.to
	})
	for _, k := range keys {
		pc := st.o.pending[k]
		if _, verdict := st.ctx.DB.Answer(pc.q); verdict != 0 {
			delete(st.o.pending, k)
		}
	}
}

// checkMustSuccess tests unexamined exit elements against φ2 and, on a
// witness, emits a must summary and finishes the query.
func (st *stepper) checkMustSuccess() (punch.Result, bool) {
	o, q := st.o, st.q
	for _, e := range o.musts[o.proc.Exit] {
		if e.exitChecked {
			continue
		}
		e.exitChecked = true
		hit := logic.Conj(e.path, logic.SubstMap(q.Q.Post, asSubst(e.store)))
		r := st.sat(hit)
		if r.Model == nil {
			continue
		}
		st.emitMustSummary(e, r.Model)
		st.debugf("DONE reachable")
		return st.finish(query.Done, query.Reachable), true
	}
	return punch.Result{}, false
}

// emitMustSummary builds a frame-aware must summary from a witnessing exit
// element. The precondition pins the witness's entry point, but only on
// globals the procedure touches or that the witness path actually
// constrains — globals outside that set pass through the call freely, so
// omitting them keeps the summary applicable without pinning the caller's
// unrelated state. The postcondition is the under-projected image over the
// modified globals, with entry pins of constrained-but-unmodified globals
// carried over (their exit value equals their entry value).
func (st *stepper) emitMustSummary(e *mustElem, m map[lang.Var]int64) {
	o, q := st.o, st.q
	mr := st.ctx.ModRefOf(q.Q.Proc)
	fullConj := logic.Conj(e.path, logic.SubstMap(q.Q.Post, asSubst(e.store)))
	constrained := map[lang.Var]bool{}
	for _, v := range logic.FreeVars(fullConj) {
		constrained[v] = true
	}
	// Exit values of modified globals that still reference an entry symbol
	// tie the postcondition to the entry state; those entries must be
	// pinned too.
	for _, g := range o.globals {
		if mr.Mod[g] {
			for _, v := range e.store[g].Vars {
				constrained[v] = true
			}
		}
	}

	var prefs, framePosts, entryConstr []logic.Formula
	for _, g := range o.globals {
		if !constrained[o.initSyms[g]] {
			// This witness neither tests nor propagates the entry value of
			// g: any entry value admits the same path and image.
			continue
		}
		v := m[o.initSyms[g]]
		prefs = append(prefs, logic.Eq(logic.LinVar(g), logic.LinConst(v)))
		entryConstr = append(entryConstr, logic.Eq(logic.LinVar(o.initSyms[g]), logic.LinConst(v)))
		if !mr.Mod[g] {
			// Unmodified: exit value equals the pinned entry value.
			framePosts = append(framePosts, logic.Eq(logic.LinVar(g), logic.LinConst(v)))
		}
	}
	preF := logic.Conj(prefs...)

	// Exit image over the modified globals: ∃symbols. path ∧ φ2(σ) ∧
	// entry-point ∧ out_g = σ(g), under-projected onto the out variables.
	// Any under-approximation of the image is a sound must postcondition.
	conj := []logic.Formula{fullConj}
	conj = append(conj, entryConstr...)
	outRen := map[lang.Var]lang.Var{}
	for _, g := range o.globals {
		if !mr.Mod[g] {
			continue
		}
		out := lang.Var("$out_" + string(g))
		outRen[out] = g
		conj = append(conj, logic.Eq(logic.LinVar(out), e.store[g]))
	}
	full := logic.Conj(conj...)
	var elim []lang.Var
	for _, v := range logic.FreeVars(full) {
		if _, isOut := outRen[v]; !isOut {
			elim = append(elim, v)
		}
	}
	st.charge(16)
	proj, _ := logic.Exists(full, elim, logic.Under)
	modPost := logic.Rename(st.solver.Simplify(proj), outRen)
	if r := st.sat(modPost); r.Model == nil {
		// Projection collapsed; fall back to the concrete exit point.
		var posts []logic.Formula
		for _, g := range o.globals {
			if mr.Mod[g] {
				posts = append(posts, logic.Eq(logic.LinVar(g), logic.LinConst(e.store[g].Eval(m))))
			}
		}
		modPost = logic.Conj(posts...)
	}
	postF := logic.Conj(append([]logic.Formula{modPost}, framePosts...)...)
	st.ctx.DB.Add(summary.Summary{Kind: summary.Must, Proc: q.Q.Proc, Pre: preF, Post: postF})
}

// pathStep is one abstract edge on an abstract error path.
type pathStep struct {
	edge int // index into proc.Edges
	from *region
	to   *region
}

// findPath searches for an abstract error path from an entry region
// intersecting φ1 to a target region at exit, over non-eliminated abstract
// edges. With avoid set, edges that are pending a child answer or stuck
// are excluded (such a path is actionable); without it the search decides
// whether any abstract path remains at all (no path = proof).
func (st *stepper) findPath(avoid bool) []pathStep {
	o, q := st.o, st.q
	type nodeReg struct {
		node cfg.NodeID
		reg  *region
	}
	parent := map[int]pathStep{}
	seen := map[int]bool{}
	var queue []nodeReg
	for _, r := range o.regAt[o.proc.Entry] {
		st.charge(1)
		s := st.sat(logic.Conj(r.f, q.Q.Pre))
		if s.Known && !s.Sat {
			continue
		}
		seen[r.id] = true
		queue = append(queue, nodeReg{o.proc.Entry, r})
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.reg.target && cur.node == o.proc.Exit {
			// Reconstruct.
			var rev []pathStep
			at := cur.reg.id
			for {
				stp, ok := parent[at]
				if !ok {
					break
				}
				rev = append(rev, stp)
				at = stp.from.id
			}
			out := make([]pathStep, len(rev))
			for i := range rev {
				out[i] = rev[len(rev)-1-i]
			}
			return out
		}
		for _, ei := range o.proc.Out[cur.node] {
			e := o.proc.Edges[ei]
			for _, r2 := range o.regAt[e.To] {
				if seen[r2.id] {
					continue
				}
				k := edgeKey{ei, cur.reg.id, r2.id}
				if o.elim[k] {
					continue
				}
				if avoid && (o.stuck[k] || hasPending(o, k)) {
					continue
				}
				if !st.edgeOpen(k, e, cur.reg, r2) {
					continue
				}
				seen[r2.id] = true
				parent[r2.id] = pathStep{ei, cur.reg, r2}
				queue = append(queue, nodeReg{e.To, r2})
			}
		}
	}
	return nil
}

func hasPending(o *obj, k edgeKey) bool {
	_, ok := o.pending[k]
	return ok
}

// edgeOpen performs (and caches) the one-step semantic feasibility check
// for simple edges: the abstract edge ρ→ρ' is shut when ρ ∧ pre(stmt, ρ')
// is unsatisfiable — a sound elimination without an explicit split. Call
// edges are open until eliminated by a summary.
func (st *stepper) edgeOpen(k edgeKey, e cfg.Edge, from, to *region) bool {
	o := st.o
	if v, ok := o.open[k]; ok {
		return v > 0
	}
	if _, isCall := e.Stmt.(lang.Call); isCall {
		o.open[k] = 1
		return true
	}
	st.charge(2)
	wp := logic.Pre(e.Stmt, to.f, logic.Over)
	r := st.sat(logic.Conj(from.f, wp))
	if r.Known && !r.Sat {
		o.open[k] = -1
		return false
	}
	o.open[k] = 1
	return true
}

// asSubst views a store as a substitution map.
func asSubst(store map[lang.Var]logic.Lin) map[lang.Var]logic.Lin { return store }

// elemIn reports (with caching) whether elem's states intersect region r.
func (st *stepper) elemIn(e *mustElem, r *region) bool {
	if v, ok := e.reach[r.id]; ok {
		return v > 0
	}
	s := st.sat(logic.Conj(e.path, logic.SubstMap(r.f, asSubst(e.store))))
	if s.Known && !s.Sat {
		e.reach[r.id] = -1
		return false
	}
	e.reach[r.id] = 1
	return true
}

// mustReached reports whether any must element at r's node intersects r.
func (st *stepper) mustReached(r *region) bool {
	for _, e := range st.o.musts[r.node] {
		if st.elemIn(e, r) {
			return true
		}
	}
	return false
}

// fanOut issues a sub-query for every call edge that lies on some
// abstract error path (source region forward-reachable from the entry,
// destination region co-reachable with the target) and has neither an
// applicable summary nor an outstanding child. Preconditions are the
// source region's global projection — weaker than the frontier's O-based
// ones, but exactly the context-insensitive questions (the Q_foo, Q_bar,
// Q_baz of Fig. 2) that let sibling callees be analyzed in parallel while
// the must frontier is still working its way forward.
func (st *stepper) fanOut() {
	o := st.o
	fwd := st.reachableRegions(false)
	bwd := st.reachableRegions(true)
	for ei, e := range o.proc.Edges {
		c, isCall := e.Stmt.(lang.Call)
		if !isCall {
			continue
		}
		for _, from := range o.regAt[e.From] {
			if !fwd[from.id] {
				continue
			}
			for _, to := range o.regAt[e.To] {
				if !bwd[to.id] {
					continue
				}
				k := edgeKey{ei, from.id, to.id}
				if o.elim[k] || o.stuck[k] || hasPending(o, k) {
					continue
				}
				postG := st.projectGlobals(to.f)
				question := summary.Question{Proc: c.Proc, Pre: st.projectGlobals(from.f), Post: postG}
				if _, verdict := st.ctx.DB.Answer(question); verdict != 0 {
					continue
				}
				child := st.ctx.Alloc.New(st.q.ID, question)
				st.children = append(st.children, child)
				o.pending[k] = pendingChild{id: int64(child.ID), q: question}
				st.debugf("fan-out child Q%d for %s: %v", child.ID, c.Proc, question)
			}
		}
	}
}

// reachableRegions computes the region IDs forward-reachable from the
// entry regions intersecting φ1 (reverse=false), or backward-co-reachable
// from the target regions (reverse=true), over non-eliminated open edges
// (pending edges included — this is a may-reachability sweep).
func (st *stepper) reachableRegions(reverse bool) map[int]bool {
	o, q := st.o, st.q
	seen := map[int]bool{}
	type nodeReg struct {
		node cfg.NodeID
		reg  *region
	}
	var queue []nodeReg
	if reverse {
		for _, r := range o.regAt[o.proc.Exit] {
			if r.target {
				seen[r.id] = true
				queue = append(queue, nodeReg{o.proc.Exit, r})
			}
		}
	} else {
		for _, r := range o.regAt[o.proc.Entry] {
			s := st.sat(logic.Conj(r.f, q.Q.Pre))
			if s.Known && !s.Sat {
				continue
			}
			seen[r.id] = true
			queue = append(queue, nodeReg{o.proc.Entry, r})
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if reverse {
			for _, ei := range o.proc.In[cur.node] {
				e := o.proc.Edges[ei]
				for _, r2 := range o.regAt[e.From] {
					if seen[r2.id] || o.elim[edgeKey{ei, r2.id, cur.reg.id}] {
						continue
					}
					if !st.edgeOpen(edgeKey{ei, r2.id, cur.reg.id}, e, r2, cur.reg) {
						continue
					}
					seen[r2.id] = true
					queue = append(queue, nodeReg{e.From, r2})
				}
			}
		} else {
			for _, ei := range o.proc.Out[cur.node] {
				e := o.proc.Edges[ei]
				for _, r2 := range o.regAt[e.To] {
					if seen[r2.id] || o.elim[edgeKey{ei, cur.reg.id, r2.id}] {
						continue
					}
					if !st.edgeOpen(edgeKey{ei, cur.reg.id, r2.id}, e, cur.reg, r2) {
						continue
					}
					seen[r2.id] = true
					queue = append(queue, nodeReg{e.To, r2})
				}
			}
		}
	}
	return seen
}

// handleFrontier locates the frontier on the path — the last abstract edge
// whose source region is must-reached — and advances the analysis across
// it: test extension or region refinement for simple edges, the three
// summary cases of §4 for call edges.
func (st *stepper) handleFrontier(path []pathStep) {
	// The entry region of the path is must-reached by the initial element,
	// so a frontier always exists.
	fi := 0
	for i := len(path) - 1; i >= 0; i-- {
		if st.mustReached(path[i].from) {
			fi = i
			break
		}
	}
	stp := path[fi]
	e := st.o.proc.Edges[stp.edge]
	st.debugf("frontier at path[%d/%d]: edge n%d->n%d (%v), from R%d{%v} to R%d{%v}", fi, len(path)-1, e.From, e.To, e.Stmt, stp.from.id, stp.from.f, stp.to.id, stp.to.f)
	if c, isCall := e.Stmt.(lang.Call); isCall {
		st.handleCallFrontier(stp, c.Proc)
		return
	}
	st.handleSimpleFrontier(stp, e.Stmt)
}

// handleSimpleFrontier tries to extend a must element across the frontier
// edge; if no element can cross, the source region is split on the
// preimage of the destination region, eliminating the abstract edge from
// the half that provably cannot cross (§4, may-analysis refinement).
func (st *stepper) handleSimpleFrontier(stp pathStep, s lang.Stmt) {
	o := st.o
	node := stp.from.node
	for _, el := range o.musts[node] {
		if !st.elemIn(el, stp.from) {
			continue
		}
		if ne := st.extendElem(el, stp, s); ne != nil {
			o.addMust(o.proc.Edges[stp.edge].To, ne, st.a.MaxMustElems)
			return
		}
	}
	// Refine: split ρ on wp = pre(s, ρ').
	st.charge(2)
	wp := logic.Pre(s, stp.to.f, logic.Over)
	st.charge(8)
	f1 := st.solver.Simplify(logic.Conj(stp.from.f, wp))
	f2 := st.solver.Simplify(logic.Conj(stp.from.f, logic.Not(wp)))
	k := edgeKey{stp.edge, stp.from.id, stp.to.id}
	sat1 := st.sat(f1)
	if sat1.Known && !sat1.Sat {
		// ρ ∩ pre(s, ρ') = ∅: the whole edge is infeasible.
		o.elim[k] = true
		return
	}
	sat2 := st.sat(f2)
	if sat2.Known && !sat2.Sat {
		// ρ ⊆ wp yet no element crossed: the preimage was inexact (havoc
		// over non-unit coefficients). No sound elimination is available.
		o.attempts[k]++
		if o.attempts[k] >= st.a.MaxChildAttempts {
			o.stuck[k] = true
		}
		return
	}
	// The parts outside wp provably cannot cross this edge into ρ'.
	_, outs := st.partitionOn(stp.from, wp)
	for _, rb := range outs {
		o.elim[edgeKey{stp.edge, rb.id, stp.to.id}] = true
	}
	st.debugf("split R%d on wp=%v (%d outside parts)", stp.from.id, wp, len(outs))
}

// partitionOn replaces region r by conjunctive cube regions partitioning
// it along wp, returning the parts inside wp and outside it. Keeping every
// region a small conjunction is what stops refinement formulas from
// snowballing across splits; when DNF expansion is infeasible the fallback
// is a plain binary split.
func (st *stepper) partitionOn(r *region, wp logic.Formula) (ins, outs []*region) {
	o := st.o
	mk := func(f logic.Formula) []*region {
		var parts []*region
		cubes, ok := logic.Cubes(f, 32)
		if !ok {
			st.charge(8)
			g := st.solver.Simplify(f)
			if sr := st.sat(g); sr.Known && !sr.Sat {
				return nil
			}
			return []*region{o.newRegion(r.node, g, r.target)}
		}
		for _, c := range cubes {
			st.charge(4)
			cf := st.solver.Simplify(c.Formula())
			if sr := st.sat(cf); sr.Known && !sr.Sat {
				continue
			}
			parts = append(parts, o.newRegion(r.node, cf, r.target))
		}
		return parts
	}
	ins = mk(logic.Conj(r.f, wp))
	outs = mk(logic.Conj(r.f, logic.Not(wp)))
	all := append(append([]*region{}, ins...), outs...)
	o.replaceRegion(r, all...)
	return ins, outs
}

// extendElem symbolically executes s from el constrained to the frontier's
// source region, landing in its destination region; nil when infeasible.
func (st *stepper) extendElem(el *mustElem, stp pathStep, s lang.Stmt) *mustElem {
	base := logic.Conj(el.path, logic.SubstMap(stp.from.f, asSubst(el.store)))
	store := el.store
	switch s := s.(type) {
	case lang.Assign:
		store = cloneStore(store)
		rhs := logic.FromInt(s.Rhs)
		val := logic.LinConst(rhs.K)
		for i, v := range rhs.Vars {
			val = val.Add(el.store[v].Scale(rhs.Coefs[i]))
		}
		store[s.Lhs] = val
	case lang.Assume:
		base = logic.Conj(base, logic.SubstMap(logic.FromBool(s.Cond), asSubst(el.store)))
	case lang.Havoc:
		store = cloneStore(store)
		store[s.V] = logic.LinVar(st.o.freshSym(st.q.ID, s.V))
	case lang.Skip:
	default:
		panic("maymust: unexpected statement kind at simple frontier")
	}
	landed := logic.Conj(base, logic.SubstMap(stp.to.f, asSubst(store)))
	r := st.sat(landed)
	if !(r.Known && r.Sat) {
		return nil
	}
	return &mustElem{path: landed, store: store}
}

// handleCallFrontier implements the three cases of §4 for an abstract
// call edge ρ → ρ' labelled `call P`:
//  1. an applicable must summary of P extends the must-map across the
//     call;
//  2. an applicable not-may summary of P splits ρ and eliminates the edge
//     from the covered half;
//  3. otherwise a child sub-query ((O ∧ ρ)^G ⇒?_P ρ'^G) is issued and the
//     edge waits for its answer.
func (st *stepper) handleCallFrontier(stp pathStep, callee string) {
	o, q := st.o, st.q
	k := edgeKey{stp.edge, stp.from.id, stp.to.id}
	node := stp.from.node
	var elems []*mustElem
	for _, el := range o.musts[node] {
		if st.elemIn(el, stp.from) {
			elems = append(elems, el)
		}
	}
	postG := st.projectGlobals(stp.to.f)

	// Case 0 (frame refinement, no child needed): a call can only change
	// the globals in Mod(callee), so any caller state landing in ρ' must
	// already satisfy ρ' with those globals abstracted away. Splitting ρ
	// on that weakest frame precondition propagates caller-local and
	// untouched-global constraints backwards across the call for free.
	calleeMR := st.ctx.ModRefOf(callee)
	var modG []lang.Var
	for _, g := range o.globals {
		if calleeMR.Mod[g] {
			modG = append(modG, g)
		}
	}
	st.charge(6)
	wpFrame, _ := logic.Exists(stp.to.f, modG, logic.Over)
	f1 := st.solver.Simplify(logic.Conj(stp.from.f, wpFrame))
	f2 := st.solver.Simplify(logic.Conj(stp.from.f, logic.Not(wpFrame)))
	if r1 := st.sat(f1); r1.Known && !r1.Sat {
		st.debugf("frame: eliminated call edge %v (no state can land in R%d)", k, stp.to.id)
		o.elim[k] = true
		return
	}
	if r2 := st.sat(f2); r2.Known && r2.Sat {
		_, outs := st.partitionOn(stp.from, wpFrame)
		for _, rb := range outs {
			o.elim[edgeKey{stp.edge, rb.id, stp.to.id}] = true
		}
		st.debugf("frame: split R%d on %v (%d outside parts)", stp.from.id, wpFrame, len(outs))
		return
	}

	// Case 1: must summaries with a single-point precondition extend O.
	for _, s := range st.ctx.DB.ForProc(callee) {
		if s.Kind != summary.Must || !st.isPointPre(s) {
			continue
		}
		for _, el := range elems {
			cond := logic.Conj(
				el.path,
				logic.SubstMap(stp.from.f, asSubst(el.store)),
				logic.SubstMap(s.Pre, asSubst(el.store)),
			)
			r := st.sat(cond)
			if !(r.Known && r.Sat) {
				continue
			}
			// Cross the call: globals the callee may modify become fresh
			// symbols constrained by the summary postcondition; all other
			// variables pass through the frame untouched.
			calleeMR := st.ctx.ModRefOf(callee)
			store := cloneStore(el.store)
			ren := map[lang.Var]lang.Var{}
			for _, g := range o.globals {
				if !calleeMR.Mod[g] {
					continue
				}
				sym := o.freshSym(q.ID, g)
				store[g] = logic.LinVar(sym)
				ren[g] = sym
			}
			postC := logic.SubstMap(logic.Rename(s.Post, ren), asSubst(el.store))
			after := logic.Conj(cond, postC,
				logic.SubstMap(stp.to.f, asSubst(store)))
			ra := st.sat(after)
			if ra.Known && ra.Sat {
				st.debugf("case1: extended across call via %v", s)
				o.addMust(o.proc.Edges[stp.edge].To, &mustElem{path: after, store: store}, st.a.MaxMustElems)
				return
			}
		}
	}

	// Case 2: a not-may summary covering ρ'^G eliminates the edge from the
	// part of ρ whose globals lie in the summary precondition.
	for _, s := range st.ctx.DB.ForProc(callee) {
		if s.Kind != summary.NotMay {
			continue
		}
		if !st.implies(postG, s.Post) {
			continue
		}
		st.charge(8)
		f1 := st.solver.Simplify(logic.Conj(stp.from.f, s.Pre))
		r1 := st.sat(f1)
		if r1.Known && !r1.Sat {
			continue // summary covers none of ρ
		}
		f2 := st.solver.Simplify(logic.Conj(stp.from.f, logic.Not(s.Pre)))
		r2 := st.sat(f2)
		if r2.Known && !r2.Sat {
			// All of ρ is covered: eliminate the edge outright.
			st.debugf("case2: eliminated call edge %v outright via %v", k, s)
			o.elim[k] = true
			return
		}
		ins, _ := st.partitionOn(stp.from, s.Pre)
		for _, ra := range ins {
			o.elim[edgeKey{stp.edge, ra.id, stp.to.id}] = true
		}
		st.debugf("case2: split R%d on %v and eliminated call edge from %d covered parts", stp.from.id, s.Pre, len(ins))
		return
	}

	// Case 3: issue a child sub-query.
	o.attempts[k]++
	if o.attempts[k] > st.a.MaxChildAttempts {
		st.debugf("call edge %v STUCK after %d attempts", k, o.attempts[k])
		o.stuck[k] = true
		return
	}
	pre, ok := st.childPre(elems, stp.from, callee, postG)
	if !ok {
		st.debugf("call edge %v: no usable child precondition", k)
		o.stuck[k] = true
		return
	}
	if _, yes := st.ctx.DB.AnswerYes(summary.Question{Proc: callee, Pre: pre, Post: postG}); yes {
		// The over-approximate question is already answered "yes", yet
		// case 1 could not use the witness (its entry point is not
		// realizable by the must side). Ask about a concrete realizable
		// entry point instead.
		if p, ok := st.pointEntry(elems, stp.from); ok {
			pre = p
		}
	}
	child := st.ctx.Alloc.New(q.ID, summary.Question{Proc: callee, Pre: pre, Post: postG})
	st.debugf("child Q%d for %s: pre=%v post=%v (attempt %d)", child.ID, callee, pre, postG, o.attempts[k])
	st.children = append(st.children, child)
	o.pending[k] = pendingChild{id: int64(child.ID), q: child.Q}
}

// childPre computes the child query precondition (O ∧ ρ)^G as a small
// conjunctive over-approximation: each reaching element is over-projected
// onto the globals and the results are merged into their conjunctive hull
// (the atoms common to every disjunct). A hull keeps downstream summary
// checks tractable and never degenerates into an uninformative ⊤ the way a
// blown-up exact DNF projection would. The bool result is false when no
// usable precondition could be built.
func (st *stepper) childPre(elems []*mustElem, from *region, callee string, postG logic.Formula) (logic.Formula, bool) {
	o := st.o
	var projs []logic.Formula
	for _, el := range elems {
		conj := []logic.Formula{el.path, logic.SubstMap(from.f, asSubst(el.store))}
		for _, g := range o.globals {
			conj = append(conj, logic.Eq(logic.LinVar(g), el.store[g]))
		}
		full := logic.Conj(conj...)
		var elim []lang.Var
		for _, v := range logic.FreeVars(full) {
			if !isGlobal(o.globals, v) {
				elim = append(elim, v)
			}
		}
		st.charge(6)
		proj, _ := logic.Exists(full, elim, logic.Over)
		projs = append(projs, proj)
	}
	out := st.filterRelevant(conjunctiveHull(projs), callee, postG)
	if logic.Size(out) > maxChildPreSize {
		st.charge(8)
		out = st.solver.Simplify(out)
	}
	return out, true
}

// filterRelevant drops hull conjuncts over globals that neither the callee
// touches nor the question postcondition mentions. Dropping conjuncts only
// weakens a child question (sound), and it stops the caller's unrelated
// state from being baked into the callee's summaries.
func (st *stepper) filterRelevant(f logic.Formula, callee string, postG logic.Formula) logic.Formula {
	mr := st.ctx.ModRefOf(callee)
	relevant := map[lang.Var]bool{}
	for _, v := range logic.FreeVars(postG) {
		relevant[v] = true
	}
	var kept []logic.Formula
	for _, c := range conjunctsOf(f) {
		ok := true
		for _, v := range logic.FreeVars(c) {
			if !mr.Touched(v) && !relevant[v] {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, c)
		}
	}
	return logic.Conj(kept...)
}

// conjunctiveHull over-approximates the union of the given formulas by the
// conjunction of the atoms they all share (disjuncts contribute their own
// conjunct sets). An empty input yields ⊤.
func conjunctiveHull(fs []logic.Formula) logic.Formula {
	var sets [][]logic.Formula
	for _, f := range fs {
		switch f := f.(type) {
		case logic.Or:
			for _, d := range f.Fs {
				sets = append(sets, conjunctsOf(d))
			}
		default:
			sets = append(sets, conjunctsOf(f))
		}
	}
	if len(sets) == 0 {
		return logic.True
	}
	common := map[string]logic.Formula{}
	for _, g := range sets[0] {
		common[logic.Key(g)] = g
	}
	for _, set := range sets[1:] {
		have := map[string]bool{}
		for _, g := range set {
			have[logic.Key(g)] = true
		}
		for k := range common {
			if !have[k] {
				delete(common, k)
			}
		}
	}
	// Preserve the first set's order for determinism.
	var out []logic.Formula
	for _, g := range sets[0] {
		if _, ok := common[logic.Key(g)]; ok {
			out = append(out, g)
			delete(common, logic.Key(g))
		}
	}
	return logic.Conj(out...)
}

func conjunctsOf(f logic.Formula) []logic.Formula {
	if a, ok := f.(logic.And); ok {
		return a.Fs
	}
	if _, ok := f.(logic.Bool); ok {
		return nil
	}
	return []logic.Formula{f}
}

// pointEntry samples a concrete global state realizable by some element
// within the region.
func (st *stepper) pointEntry(elems []*mustElem, from *region) (logic.Formula, bool) {
	for _, el := range elems {
		r := st.sat(logic.Conj(el.path, logic.SubstMap(from.f, asSubst(el.store))))
		if r.Model == nil {
			continue
		}
		var fs []logic.Formula
		for _, g := range st.o.globals {
			fs = append(fs, logic.Eq(logic.LinVar(g), logic.LinConst(el.store[g].Eval(r.Model))))
		}
		return logic.Conj(fs...), true
	}
	return nil, false
}

// projectGlobals over-projects a region formula onto the globals.
// Oversized results are weakened to their conjunctive hull — sound, since
// a weaker question postcondition makes any "no" answer strictly stronger
// and "yes" answers are re-validated against the landing region anyway.
func (st *stepper) projectGlobals(f logic.Formula) logic.Formula {
	var elim []lang.Var
	for _, v := range logic.FreeVars(f) {
		if !isGlobal(st.o.globals, v) {
			elim = append(elim, v)
		}
	}
	if len(elim) > 0 {
		st.charge(6)
		f, _ = logic.Exists(f, elim, logic.Over)
	}
	if logic.Size(f) > maxChildPreSize {
		st.charge(8)
		f = st.solver.Simplify(f)
		if logic.Size(f) > maxChildPreSize {
			f = conjunctiveHull([]logic.Formula{f})
		}
	}
	return f
}

// isPointPre reports (with caching) whether a must summary's precondition
// denotes exactly one state of the globals it mentions (the frame globals
// it omits pass through freely). This is the condition under which
// satisfiability-based application at call sites is sound.
func (st *stepper) isPointPre(s summary.Summary) bool {
	// The verdict depends only on the precondition, so the memo keys on
	// its interned identity — summaries sharing a Pre share the check,
	// and the key is an id render, not a full structural print.
	key := logic.Key(s.Pre)
	if v, ok := st.o.pointPre[key]; ok {
		return v > 0
	}
	ok := false
	vars := logic.FreeVars(s.Pre)
	if len(vars) == 0 {
		// ⊤ denotes every state; not a point (unless there are no
		// mentioned variables at all, in which case it is trivially one).
		ok = true
	} else if m := st.solver.Model(s.Pre); m != nil {
		st.charge(4)
		var fs []logic.Formula
		for _, g := range vars {
			fs = append(fs, logic.Eq(logic.LinVar(g), logic.LinConst(m[g])))
		}
		ok = st.implies(s.Pre, logic.Conj(fs...))
	}
	if ok {
		st.o.pointPre[key] = 1
	} else {
		st.o.pointPre[key] = -1
	}
	return ok
}

func isGlobal(globals []lang.Var, v lang.Var) bool {
	for _, g := range globals {
		if g == v {
			return true
		}
	}
	return false
}
