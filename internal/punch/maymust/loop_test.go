package maymust

import (
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/parser"
)

func TestLoopEndToEnd(t *testing.T) {
	prog := parser.MustParse(`
proc main {
  locals i;
  i = 0;
  while (i < 5) { i = i + 1; }
  assert(i >= 5);
}`)
	a := New()
	if os.Getenv("MAYMUST_DEBUG") != "" {
		a.Debug = os.Stderr
	}
	eng := core.New(prog, core.Options{Punch: a, MaxThreads: 1, MaxIterations: 60, CheckContract: true})
	res := eng.Run(core.AssertionQuestion(prog))
	if res.Verdict != core.Safe {
		t.Fatalf("verdict: %v iters=%d", res.Verdict, res.Iterations)
	}
}
