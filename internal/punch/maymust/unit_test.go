package maymust

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/punch"
	"repro/internal/query"
	"repro/internal/smt"
	"repro/internal/summary"
)

func leIC(name string, k int64) logic.Formula {
	return logic.LEq(logic.LinVar(lang.Var(name)), logic.LinConst(k))
}

func TestConjunctiveHull(t *testing.T) {
	a := logic.Conj(leIC("x", 3), leIC("y", 5))
	b := logic.Conj(leIC("x", 3), leIC("z", 9))
	hull := conjunctiveHull([]logic.Formula{a, b})
	if logic.Key(hull) != logic.Key(leIC("x", 3)) {
		t.Fatalf("hull = %v, want x ≤ 3", hull)
	}
	// Disjunctions contribute their own cube sets.
	c := logic.Disj(a, b)
	hull2 := conjunctiveHull([]logic.Formula{c})
	if logic.Key(hull2) != logic.Key(leIC("x", 3)) {
		t.Fatalf("hull of disjunction = %v", hull2)
	}
	// Empty input is ⊤.
	if conjunctiveHull(nil) != logic.Formula(logic.True) {
		t.Fatal("empty hull should be true")
	}
	// Hull over-approximates each input.
	s := smt.New()
	for _, f := range []logic.Formula{a, b, c} {
		if !s.Implies(f, hull) {
			t.Fatalf("hull does not cover %v", f)
		}
	}
}

// engineFor builds a minimal stepper for white-box helper tests.
func stepperFor(t *testing.T, src string) *stepper {
	t.Helper()
	prog := parserMust(t, src)
	solver := smt.New()
	db := summary.New(solver)
	ctx := &punch.Context{Prog: prog, DB: db, Alloc: &query.Allocator{}, ModRef: prog.ModRef()}
	q := ctx.Alloc.New(query.NoParent, summary.Question{Proc: prog.Main, Pre: logic.True, Post: logic.True})
	return &stepper{
		a:      New(),
		ctx:    ctx,
		q:      q,
		o:      newObj(prog.MainProc(), prog.Globals),
		solver: solver,
	}
}

func TestFilterRelevant(t *testing.T) {
	st := stepperFor(t, `
globals a, b, c;
proc main { touch(); }
proc touch { a = a + 1; }
`)
	// touch touches only a; postG mentions c; the b conjunct must drop.
	f := logic.Conj(leIC("a", 1), leIC("b", 2), leIC("c", 3))
	got := st.filterRelevant(f, "touch", leIC("c", 0))
	if logic.Key(got) != logic.Key(logic.Conj(leIC("a", 1), leIC("c", 3))) {
		t.Fatalf("filtered = %v", got)
	}
}

func TestPartitionOnKeepsRegionsConjunctive(t *testing.T) {
	st := stepperFor(t, `globals a; proc main { a = 1; }`)
	node := st.o.proc.Entry
	r := st.o.newRegion(node, logic.True, false)
	st.o.attach(r)
	// Split ⊤ on (a ≤ 3 ∧ a ≥ 0): outside = ¬(…) = two cubes.
	wp := logic.Conj(leIC("a", 3), logic.LEq(logic.LinConst(0), logic.LinVar("a")))
	ins, outs := st.partitionOn(r, wp)
	if len(ins) != 1 {
		t.Fatalf("ins = %d", len(ins))
	}
	if len(outs) != 2 {
		t.Fatalf("outs = %d", len(outs))
	}
	for _, part := range append(ins, outs...) {
		if _, isOr := part.f.(logic.Or); isOr {
			t.Fatalf("non-conjunctive region %v", part.f)
		}
	}
	// The retired region must be gone from the partition.
	for _, x := range st.o.regAt[node] {
		if x.id == r.id {
			t.Fatal("retired region still attached")
		}
	}
}

func TestReplaceRegionMigratesBookkeeping(t *testing.T) {
	st := stepperFor(t, `globals a; proc main { a = 1; }`)
	o := st.o
	n := o.proc.Entry
	r := o.newRegion(n, logic.True, true)
	o.attach(r)
	other := o.newRegion(o.proc.Exit, logic.True, false)
	o.attach(other)
	k := edgeKey{0, r.id, other.id}
	o.elim[k] = true
	o.stuck[edgeKey{1, other.id, r.id}] = true
	o.attempts[k] = 3
	o.pending[k] = pendingChild{id: 9, q: summary.Question{Proc: "p", Pre: logic.True, Post: logic.True}}

	a := o.newRegion(n, leIC("a", 0), true)
	b := o.newRegion(n, logic.Not(leIC("a", 0)), true)
	o.replaceRegion(r, a, b)

	for _, part := range []*region{a, b} {
		if !o.elim[edgeKey{0, part.id, other.id}] {
			t.Errorf("elim not migrated to %d", part.id)
		}
		if !o.stuck[edgeKey{1, other.id, part.id}] {
			t.Errorf("stuck not migrated to %d", part.id)
		}
		if o.attempts[edgeKey{0, part.id, other.id}] != 3 {
			t.Errorf("attempts not migrated to %d", part.id)
		}
		if _, ok := o.pending[edgeKey{0, part.id, other.id}]; !ok {
			t.Errorf("pending not migrated to %d", part.id)
		}
		if !part.target {
			t.Errorf("target flag lost on %d", part.id)
		}
	}
}

func TestMustElemDedup(t *testing.T) {
	st := stepperFor(t, `globals a; proc main { a = 1; }`)
	o := st.o
	store := map[lang.Var]logic.Lin{"a": logic.LinVar("$s")}
	e1 := &mustElem{path: logic.True, store: store}
	e2 := &mustElem{path: logic.True, store: store}
	if !o.addMust(0, e1, 10) {
		t.Fatal("first add refused")
	}
	if o.addMust(0, e2, 10) {
		t.Fatal("duplicate accepted")
	}
	if len(o.musts[0]) != 1 {
		t.Fatalf("musts = %d", len(o.musts[0]))
	}
	// Cap respected.
	if o.addMust(0, &mustElem{path: leIC("a", 1), store: store}, 1) {
		t.Fatal("cap exceeded")
	}
}

func parserMust(t *testing.T, src string) *cfg.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestPartitionPreservesUnion: splitting a region must cover exactly the
// same state set (the may-map stays an over-approximation, no states are
// lost or invented).
func TestPartitionPreservesUnion(t *testing.T) {
	st := stepperFor(t, `globals a, b; proc main { a = 1; }`)
	node := st.o.proc.Entry
	base := logic.Conj(leIC("a", 10), logic.LEq(logic.LinConst(-10), logic.LinVar("a")))
	r := st.o.newRegion(node, base, false)
	st.o.attach(r)
	wp := logic.Disj(leIC("a", -2), logic.Conj(leIC("b", 0), leIC("a", 5)))
	ins, outs := st.partitionOn(r, wp)
	var parts []logic.Formula
	for _, p := range append(append([]*region{}, ins...), outs...) {
		parts = append(parts, p.f)
	}
	union := logic.Disj(parts...)
	if !st.solver.Equivalent(union, base) {
		t.Fatalf("partition changed the region:\n base=%v\n union=%v", base, union)
	}
	// ins must lie inside wp, outs outside it.
	for _, p := range ins {
		if !st.solver.Implies(p.f, wp) {
			t.Errorf("in-part %v not within wp", p.f)
		}
	}
	for _, p := range outs {
		if !st.solver.Implies(p.f, logic.Not(wp)) {
			t.Errorf("out-part %v intersects wp", p.f)
		}
	}
}
