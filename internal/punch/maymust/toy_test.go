package maymust

import (
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/parser"
)

// TestToyEndToEnd drives the analysis on the paper's toy program (§2.1,
// modular rendering); set MAYMUST_DEBUG=1 for a decision trace.
func TestToyEndToEnd(t *testing.T) {
	src := `
program toy;
globals rfoo, rbar, rbaz, p;

proc main {
  foo();
  bar();
  p = 0 - 12;
  baz();
  assert(rfoo > -5);
  assert(rbar > -5);
  assert(rbaz > -6);
}

proc foo {
  havoc rfoo;
  assume(rfoo >= -4);
}

proc bar {
  havoc rbar;
  assume(rbar >= -4);
}

proc baz {
  havoc rbaz;
  assume(rbaz >= p + 7);
}
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a := New()
	if os.Getenv("MAYMUST_DEBUG") != "" {
		a.Debug = os.Stderr
	}
	eng := core.New(prog, core.Options{Punch: a, MaxThreads: 1, MaxIterations: 100, CheckContract: true})
	res := eng.Run(core.AssertionQuestion(prog))
	if res.Verdict != core.Safe {
		t.Fatalf("verdict: %v, queries: %d", res.Verdict, res.TotalQueries)
	}
}

// TestBugEndToEnd exercises the Reachable path in-package.
func TestBugEndToEnd(t *testing.T) {
	prog := parser.MustParse(`
globals g;
proc main {
  g = 0;
  kick();
  assert(g <= 0);
}
proc kick { g = g + 1; }`)
	eng := core.New(prog, core.Options{Punch: New(), MaxThreads: 2, MaxIterations: 2000, CheckContract: true})
	res := eng.Run(core.AssertionQuestion(prog))
	if res.Verdict != core.ErrorReachable {
		t.Fatalf("verdict: %v", res.Verdict)
	}
}

// TestPreemptionBudget: a tiny budget forces Ready preemption (the §3.2
// fairness path) without breaking the verdict.
func TestPreemptionBudget(t *testing.T) {
	prog := parser.MustParse(`
proc main {
  locals i;
  i = 0;
  while (i < 4) { i = i + 1; }
  assert(i == 4);
}`)
	a := New()
	a.Budget = 40 // far below one full analysis
	eng := core.New(prog, core.Options{Punch: a, MaxThreads: 1, MaxIterations: 8000, CheckContract: true})
	res := eng.Run(core.AssertionQuestion(prog))
	if res.Verdict != core.Safe {
		t.Fatalf("verdict: %v after %d iterations", res.Verdict, res.Iterations)
	}
	if res.Iterations < 5 {
		t.Errorf("expected many preempted steps, got %d iterations", res.Iterations)
	}
}
