package may

import (
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/parser"
)

func TestMayProtocolSoundness(t *testing.T) {
	prog := parser.MustParse(`
globals reqs, grants;
proc main {
  reqs = 0; grants = 0;
  client();
  client();
  server();
  assert(grants <= reqs);
}
proc client {
  locals want;
  havoc want;
  if (want > 0) { reqs = reqs + 1; }
}
proc server {
  if (grants < reqs) { grants = grants + 1; }
}`)
	a := New()
	if os.Getenv("MAY_DEBUG") != "" {
		a.Debug = os.Stderr
	}
	eng := core.New(prog, core.Options{Punch: a, MaxThreads: 4, MaxIterations: 150, CheckContract: true})
	res := eng.Run(core.AssertionQuestion(prog))
	// Without interpolant-guided predicate discovery the pure may analysis
	// may enumerate value-level regions on this protocol instead of
	// converging (the may-must instantiation proves it immediately); the
	// requirement here is soundness within the budget.
	if res.Verdict == core.ErrorReachable {
		t.Fatalf("unsound verdict = %v (queries=%d iters=%d)", res.Verdict, res.TotalQueries, res.Iterations)
	}
}
