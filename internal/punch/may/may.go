// Package may instantiates PUNCH with a may-analysis in the style of
// SLAM/BLAST (§4 of the paper): the state space of each procedure is
// partitioned into regions (the may-map Σ); abstract error paths are
// refuted by splitting regions on preimages along the path and eliminating
// abstract edges (the set Ē), and proofs are not-may summaries. An
// abstract path that survives refinement is confirmed by exact forward
// symbolic execution, which yields a must summary — the
// counterexample-guided loop of a software model checker.
//
// Call edges consult not-may summaries to eliminate, spawn child
// sub-queries when no summary applies, and use frame (mod/ref) reasoning
// to propagate caller-state constraints across calls without a child.
package may

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/cfg"
	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/punch"
	"repro/internal/query"
	"repro/internal/smt"
	"repro/internal/summary"
)

// Analysis is the may-analysis PUNCH instantiation.
type Analysis struct {
	// Budget is the abstract work budget per Step invocation.
	Budget int64
	// MaxAttempts bounds child re-issues per call edge before it is
	// declared stuck.
	MaxAttempts int
	// LoopBound caps edge repetitions during forward confirmation.
	LoopBound int
	// Debug, when non-nil, receives a trace of analysis decisions.
	Debug io.Writer
}

// New returns a may analysis with default limits.
func New() *Analysis {
	return &Analysis{Budget: 900, MaxAttempts: 8, LoopBound: 6}
}

// Name implements punch.Punch.
func (a *Analysis) Name() string { return "may (CEGAR-style)" }

type region struct {
	id     int
	node   cfg.NodeID
	f      logic.Formula
	target bool
}

type edgeKey struct {
	edge     int
	from, to int
}

type pendingChild struct {
	q summary.Question
}

type obj struct {
	proc        *cfg.Proc
	globals     []lang.Var
	regCount    int
	regAt       map[cfg.NodeID][]*region
	elim        map[edgeKey]bool
	open        map[edgeKey]int8
	pending     map[edgeKey]pendingChild
	attempts    map[edgeKey]int
	stuck       map[edgeKey]bool
	symCount    int
	initialized bool
}

// Step implements punch.Punch.
func (a *Analysis) Step(ctx *punch.Context, q *query.Query) punch.Result {
	st := &stepper{a: a, ctx: ctx, q: q, solver: ctx.DB.Solver()}
	return st.run()
}

type stepper struct {
	a        *Analysis
	ctx      *punch.Context
	q        *query.Query
	o        *obj
	solver   *smt.Solver
	cost     int64
	children []*query.Query
}

func (st *stepper) charge(n int64) { st.cost += n }

func (st *stepper) debugf(format string, args ...any) {
	if st.a.Debug == nil {
		return
	}
	fmt.Fprintf(st.a.Debug, "[may Q%d %s] ", st.q.ID, st.q.Q.Proc)
	fmt.Fprintf(st.a.Debug, format, args...)
	fmt.Fprintln(st.a.Debug)
}

func (st *stepper) sat(f logic.Formula) smt.Result {
	st.charge(4)
	return st.solver.Sat(f)
}

func (st *stepper) implies(a, b logic.Formula) bool {
	st.charge(4)
	return st.solver.Implies(a, b)
}

func (st *stepper) finish(state query.State, outcome query.Outcome) punch.Result {
	st.q.State = state
	st.q.Outcome = outcome
	st.q.Obj = st.o
	children := st.children
	if state == query.Done {
		children = nil
	}
	return punch.Result{Self: st.q, Children: children, Cost: st.cost}
}

func (st *stepper) run() punch.Result {
	if _, verdict := st.ctx.DB.Answer(st.q.Q); verdict != 0 {
		st.charge(4)
		st.ensureObj()
		if verdict > 0 {
			return st.finish(query.Done, query.Reachable)
		}
		return st.finish(query.Done, query.Unreachable)
	}
	st.ensureObj()
	if !st.o.initialized {
		if done, res := st.initialize(); done {
			return res
		}
	}
	st.sweepPending()

	for {
		if st.cost >= st.a.Budget {
			return st.finish(query.Ready, query.Pending)
		}
		path := st.findPath(true)
		if path == nil {
			if st.findPath(false) == nil {
				st.ctx.DB.Add(summary.Summary{Kind: summary.NotMay, Proc: st.q.Q.Proc, Pre: st.q.Q.Pre, Post: st.q.Q.Post})
				st.debugf("DONE unreachable (no abstract path)")
				return st.finish(query.Done, query.Unreachable)
			}
			st.debugf("BLOCKED (pending=%d stuck=%d)", len(st.o.pending), len(st.o.stuck))
			return st.finish(query.Blocked, query.Pending)
		}
		if res, done := st.refuteOrConfirm(path); done {
			return res
		}
	}
}

func (st *stepper) ensureObj() {
	if st.o != nil {
		return
	}
	if o, ok := st.q.Obj.(*obj); ok && o != nil {
		st.o = o
		return
	}
	st.o = &obj{
		proc:     st.ctx.Prog.Proc(st.q.Q.Proc),
		globals:  st.ctx.Prog.Globals,
		regAt:    map[cfg.NodeID][]*region{},
		elim:     map[edgeKey]bool{},
		open:     map[edgeKey]int8{},
		pending:  map[edgeKey]pendingChild{},
		attempts: map[edgeKey]int{},
		stuck:    map[edgeKey]bool{},
	}
}

// newRegion mints a region without attaching it; attach explicitly or via
// replaceRegion.
func (st *stepper) newRegion(node cfg.NodeID, f logic.Formula, target bool) *region {
	r := &region{id: st.o.regCount, node: node, f: f, target: target}
	st.o.regCount++
	return r
}

func (st *stepper) attach(r *region) {
	st.o.regAt[r.node] = append(st.o.regAt[r.node], r)
}

// partitionOn replaces region r by conjunctive cube regions partitioning
// it along wp (see the maymust package for the rationale).
func (st *stepper) partitionOn(r *region, wp logic.Formula) (ins, outs []*region) {
	mk := func(f logic.Formula) []*region {
		var parts []*region
		cubes, ok := logic.Cubes(f, 32)
		if !ok {
			st.charge(8)
			g := st.solver.Simplify(f)
			if sr := st.sat(g); sr.Known && !sr.Sat {
				return nil
			}
			return []*region{st.newRegion(r.node, g, r.target)}
		}
		for _, c := range cubes {
			st.charge(4)
			cf := st.solver.Simplify(c.Formula())
			if sr := st.sat(cf); sr.Known && !sr.Sat {
				continue
			}
			parts = append(parts, st.newRegion(r.node, cf, r.target))
		}
		return parts
	}
	ins = mk(logic.Conj(r.f, wp))
	outs = mk(logic.Conj(r.f, logic.Not(wp)))
	all := append(append([]*region{}, ins...), outs...)
	st.replaceRegion(r, all...)
	return ins, outs
}

func (st *stepper) initialize() (bool, punch.Result) {
	o, q := st.o, st.q
	pre := st.sat(q.Q.Pre)
	if pre.Known && !pre.Sat {
		st.ctx.DB.Add(summary.Summary{Kind: summary.NotMay, Proc: q.Q.Proc, Pre: q.Q.Pre, Post: q.Q.Post})
		o.initialized = true
		return true, st.finish(query.Done, query.Unreachable)
	}
	for n := 0; n < o.proc.NNodes; n++ {
		node := cfg.NodeID(n)
		if node == o.proc.Exit {
			st.attach(st.newRegion(node, q.Q.Post, true))
			st.attach(st.newRegion(node, logic.Not(q.Q.Post), false))
		} else {
			st.attach(st.newRegion(node, logic.True, false))
		}
	}
	o.initialized = true
	return false, punch.Result{}
}

func (st *stepper) sweepPending() {
	keys := make([]edgeKey, 0, len(st.o.pending))
	for k := range st.o.pending {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.edge != b.edge {
			return a.edge < b.edge
		}
		if a.from != b.from {
			return a.from < b.from
		}
		return a.to < b.to
	})
	for _, k := range keys {
		if _, verdict := st.ctx.DB.Answer(st.o.pending[k].q); verdict != 0 {
			delete(st.o.pending, k)
		}
	}
}

type pathStep struct {
	edge int
	from *region
	to   *region
}

func (st *stepper) findPath(avoid bool) []pathStep {
	o, q := st.o, st.q
	type nodeReg struct {
		node cfg.NodeID
		reg  *region
	}
	parent := map[int]pathStep{}
	seen := map[int]bool{}
	var queue []nodeReg
	for _, r := range o.regAt[o.proc.Entry] {
		s := st.sat(logic.Conj(r.f, q.Q.Pre))
		if s.Known && !s.Sat {
			continue
		}
		seen[r.id] = true
		queue = append(queue, nodeReg{o.proc.Entry, r})
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.reg.target && cur.node == o.proc.Exit {
			var rev []pathStep
			at := cur.reg.id
			for {
				stp, ok := parent[at]
				if !ok {
					break
				}
				rev = append(rev, stp)
				at = stp.from.id
			}
			out := make([]pathStep, len(rev))
			for i := range rev {
				out[i] = rev[len(rev)-1-i]
			}
			return out
		}
		for _, ei := range o.proc.Out[cur.node] {
			e := o.proc.Edges[ei]
			for _, r2 := range o.regAt[e.To] {
				if seen[r2.id] {
					continue
				}
				k := edgeKey{ei, cur.reg.id, r2.id}
				if o.elim[k] {
					continue
				}
				if avoid && (o.stuck[k] || hasPending(o, k)) {
					continue
				}
				if !st.edgeOpen(k, e, cur.reg, r2) {
					continue
				}
				seen[r2.id] = true
				parent[r2.id] = pathStep{ei, cur.reg, r2}
				queue = append(queue, nodeReg{e.To, r2})
			}
		}
	}
	return nil
}

func hasPending(o *obj, k edgeKey) bool {
	_, ok := o.pending[k]
	return ok
}

func (st *stepper) edgeOpen(k edgeKey, e cfg.Edge, from, to *region) bool {
	o := st.o
	if v, ok := o.open[k]; ok {
		return v > 0
	}
	if _, isCall := e.Stmt.(lang.Call); isCall {
		o.open[k] = 1
		return true
	}
	st.charge(2)
	wp := logic.Pre(e.Stmt, to.f, logic.Over)
	r := st.sat(logic.Conj(from.f, wp))
	if r.Known && !r.Sat {
		o.open[k] = -1
		return false
	}
	o.open[k] = 1
	return true
}

// replaceRegion swaps r for the given parts (see maymust for the
// migration rationale).
func (st *stepper) replaceRegion(r *region, parts ...*region) {
	o := st.o
	regs := o.regAt[r.node]
	out := regs[:0]
	for _, x := range regs {
		if x.id != r.id {
			out = append(out, x)
		}
	}
	o.regAt[r.node] = append(out, parts...)

	partIDs := make([]int, len(parts))
	for i, p := range parts {
		partIDs[i] = p.id
	}
	migrate := func(old edgeKey) []edgeKey {
		if old.from != r.id && old.to != r.id {
			return nil
		}
		froms := []int{old.from}
		if old.from == r.id {
			froms = partIDs
		}
		tos := []int{old.to}
		if old.to == r.id {
			tos = partIDs
		}
		var ks []edgeKey
		for _, f := range froms {
			for _, t := range tos {
				ks = append(ks, edgeKey{old.edge, f, t})
			}
		}
		return ks
	}
	for _, m := range []map[edgeKey]bool{o.elim, o.stuck} {
		var add []edgeKey
		for k, v := range m {
			if v {
				add = append(add, migrate(k)...)
			}
		}
		for _, k := range add {
			m[k] = true
		}
	}
	type kv struct {
		k edgeKey
		v pendingChild
	}
	var addP []kv
	for k, v := range o.pending {
		for _, nk := range migrate(k) {
			addP = append(addP, kv{nk, v})
		}
	}
	for _, e := range addP {
		o.pending[e.k] = e.v
	}
	type ka struct {
		k edgeKey
		v int
	}
	var addA []ka
	for k, v := range o.attempts {
		for _, nk := range migrate(k) {
			addA = append(addA, ka{nk, v})
		}
	}
	for _, e := range addA {
		o.attempts[e.k] = e.v
	}
}

// refuteOrConfirm walks the abstract path backwards splitting regions on
// suffix preimages; if the path survives to the entry it is confirmed by
// exact forward symbolic execution. done=true ends the query.
func (st *stepper) refuteOrConfirm(path []pathStep) (punch.Result, bool) {
	o, q := st.o, st.q
	// cur is the refined suffix-reaching set at the current position,
	// represented by a live region.
	cur := path[len(path)-1].to
	for i := len(path) - 1; i >= 0; i-- {
		stp := path[i]
		// The path may reference regions retired by earlier splits in this
		// very walk; restart the search in that case.
		if !st.regionLive(stp.from) || !st.regionLive(cur) {
			return punch.Result{}, false
		}
		e := o.proc.Edges[stp.edge]
		if c, isCall := e.Stmt.(lang.Call); isCall {
			next, progressed := st.backwardCall(path[:i], stp, cur, c.Proc)
			if progressed {
				return punch.Result{}, false
			}
			if next == nil {
				return punch.Result{}, false
			}
			cur = next
			continue
		}
		st.charge(2)
		wp := logic.Pre(e.Stmt, cur.f, logic.Over)
		f1 := st.solver.Simplify(logic.Conj(stp.from.f, wp))
		r1 := st.sat(f1)
		if r1.Known && !r1.Sat {
			// No state in the source region can enter the suffix.
			o.elim[edgeKey{stp.edge, stp.from.id, cur.id}] = true
			st.debugf("refuted path at step %d (edge n%d->n%d)", i, e.From, e.To)
			return punch.Result{}, false
		}
		f2 := st.solver.Simplify(logic.Conj(stp.from.f, logic.Not(wp)))
		r2 := st.sat(f2)
		if r2.Known && !r2.Sat {
			// The whole region can enter: no refinement here, keep walking.
			cur = stp.from
			continue
		}
		_, outs := st.partitionOn(stp.from, wp)
		for _, rb := range outs {
			o.elim[edgeKey{stp.edge, rb.id, cur.id}] = true
		}
		// Regions were retired by the split; restart the path search.
		return punch.Result{}, false
	}
	// Backward pass survived: the path is abstractly feasible from entry.
	entrySat := st.sat(logic.Conj(cur.f, q.Q.Pre))
	if entrySat.Known && !entrySat.Sat {
		return punch.Result{}, false
	}
	return st.confirmForward(path)
}

func (st *stepper) regionLive(r *region) bool {
	for _, x := range st.o.regAt[r.node] {
		if x.id == r.id {
			return true
		}
	}
	return false
}

// backwardCall handles a call edge during the backward pass. progressed
// reports that a refinement was applied (restart path search); otherwise
// the returned region is the refined position before the call (nil to
// abort the walk).
func (st *stepper) backwardCall(prefix []pathStep, stp pathStep, cur *region, callee string) (*region, bool) {
	o := st.o
	k := edgeKey{stp.edge, stp.from.id, cur.id}
	mr := st.ctx.ModRefOf(callee)
	var modG []lang.Var
	for _, g := range o.globals {
		if mr.Mod[g] {
			modG = append(modG, g)
		}
	}
	st.charge(6)
	wf, _ := logic.Exists(cur.f, modG, logic.Over)
	f1 := st.solver.Simplify(logic.Conj(stp.from.f, wf))
	r1 := st.sat(f1)
	if r1.Known && !r1.Sat {
		o.elim[k] = true
		st.debugf("frame-refuted call edge %v", k)
		return nil, true
	}
	f2 := st.solver.Simplify(logic.Conj(stp.from.f, logic.Not(wf)))
	if r2 := st.sat(f2); r2.Known && r2.Sat {
		_, outs := st.partitionOn(stp.from, wf)
		for _, rb := range outs {
			o.elim[edgeKey{stp.edge, rb.id, cur.id}] = true
		}
		st.debugf("frame-split call edge %v", k)
		return nil, true
	}

	postG := st.projectGlobals(cur.f)

	// Precise calling context: forward symbolic execution along the path
	// prefix (falling back to the region projection while earlier calls
	// on the prefix still lack summaries).
	pre := st.projectGlobals(stp.from.f)
	if cond, store, ok := st.followPath(prefix); ok {
		conj := []logic.Formula{cond, logic.SubstMap(stp.from.f, store)}
		for _, g := range o.globals {
			conj = append(conj, logic.Eq(logic.LinVar(g), store[g]))
		}
		full := logic.Conj(conj...)
		var elimVars []lang.Var
		for _, v := range logic.FreeVars(full) {
			if !isGlobal(o.globals, v) {
				elimVars = append(elimVars, v)
			}
		}
		st.charge(6)
		proj, _ := logic.Exists(full, elimVars, logic.Over)
		st.charge(8)
		proj = st.solver.Simplify(proj)
		if r := st.sat(proj); !(r.Known && !r.Sat) && logic.Size(proj) < 160 {
			pre = proj
		}
	}

	for _, s := range st.ctx.DB.ForProc(callee) {
		if s.Kind != summary.NotMay {
			continue
		}
		if !st.implies(postG, s.Post) {
			continue
		}
		g1 := st.solver.Simplify(logic.Conj(stp.from.f, s.Pre))
		rg1 := st.sat(g1)
		if rg1.Known && !rg1.Sat {
			continue
		}
		g2 := st.solver.Simplify(logic.Conj(stp.from.f, logic.Not(s.Pre)))
		rg2 := st.sat(g2)
		if rg2.Known && !rg2.Sat {
			o.elim[k] = true
			st.debugf("summary-refuted call edge %v via %v", k, s)
			return nil, true
		}
		ins, _ := st.partitionOn(stp.from, s.Pre)
		for _, ra := range ins {
			o.elim[edgeKey{stp.edge, ra.id, cur.id}] = true
		}
		st.debugf("summary-split call edge %v via %v", k, s)
		return nil, true
	}

	// A must summary answering the precise-context question confirms the
	// call edge can be crossed from this path; continue the backward walk
	// from the source region (a sound over-approximation).
	if _, yes := st.ctx.DB.AnswerYes(summary.Question{Proc: callee, Pre: pre, Post: postG}); yes {
		return stp.from, false
	}

	// No summary helps: issue a child sub-query. The precondition is the
	// exact calling context computed by forward symbolic execution along
	// the path prefix (the counterexample-guided context of a software
	// model checker); the region projection is the fallback when the
	// prefix itself cannot be followed yet.
	o.attempts[k]++
	if o.attempts[k] > st.a.MaxAttempts {
		o.stuck[k] = true
		st.debugf("call edge %v STUCK", k)
		return nil, true
	}
	question := summary.Question{Proc: callee, Pre: pre, Post: postG}
	child := st.ctx.Alloc.New(st.q.ID, question)
	st.children = append(st.children, child)
	o.pending[k] = pendingChild{q: question}
	st.debugf("child Q%d for %s: %v", child.ID, callee, question)
	return nil, true
}

func (st *stepper) projectGlobals(f logic.Formula) logic.Formula {
	var elim []lang.Var
	for _, v := range logic.FreeVars(f) {
		if !isGlobal(st.o.globals, v) {
			elim = append(elim, v)
		}
	}
	if len(elim) > 0 {
		st.charge(6)
		f, _ = logic.Exists(f, elim, logic.Over)
	}
	st.charge(8)
	return st.solver.Simplify(f)
}

// followPath forward-executes the abstract path symbolically, crossing
// calls with point-applicable must summaries. ok=false when a call could
// not be crossed or the path condition became unsatisfiable.
func (st *stepper) followPath(path []pathStep) (logic.Formula, map[lang.Var]logic.Lin, bool) {
	cond, store, _, ok := st.followPathFull(path, false)
	return cond, store, ok
}

func (st *stepper) followPathFull(path []pathStep, penalize bool) (logic.Formula, map[lang.Var]logic.Lin, map[lang.Var]lang.Var, bool) {
	o, q := st.o, st.q
	store := map[lang.Var]logic.Lin{}
	initSyms := map[lang.Var]lang.Var{}
	ren := map[lang.Var]lang.Var{}
	vars := append(append([]lang.Var{}, o.globals...), o.proc.Locals...)
	for _, v := range vars {
		s := st.freshSym(v)
		initSyms[v] = s
		store[v] = logic.LinVar(s)
		ren[v] = s
	}
	cond := logic.Rename(q.Q.Pre, ren)
	for _, stp := range path {
		e := o.proc.Edges[stp.edge]
		switch stmt := e.Stmt.(type) {
		case lang.Assign:
			rhs := logic.FromInt(stmt.Rhs)
			val := logic.LinConst(rhs.K)
			for i, v := range rhs.Vars {
				val = val.Add(store[v].Scale(rhs.Coefs[i]))
			}
			store = cloneStore(store)
			store[stmt.Lhs] = val
		case lang.Assume:
			cond = logic.Conj(cond, logic.SubstMap(logic.FromBool(stmt.Cond), store))
		case lang.Havoc:
			store = cloneStore(store)
			store[stmt.V] = logic.LinVar(st.freshSym(stmt.V))
		case lang.Skip:
		case lang.Call:
			ok := false
			calleeMR := st.ctx.ModRefOf(stmt.Proc)
			for _, s := range st.ctx.DB.ForProc(stmt.Proc) {
				if s.Kind != summary.Must || !st.pointApplicable(s) {
					continue
				}
				c2 := logic.Conj(cond, logic.SubstMap(s.Pre, store))
				r := st.sat(c2)
				if !(r.Known && r.Sat) {
					continue
				}
				ns := cloneStore(store)
				rren := map[lang.Var]lang.Var{}
				for _, g := range o.globals {
					if !calleeMR.Mod[g] {
						continue
					}
					sym := st.freshSym(g)
					ns[g] = logic.LinVar(sym)
					rren[g] = sym
				}
				cond = logic.Conj(c2, logic.SubstMap(logic.Rename(s.Post, rren), store))
				store = ns
				ok = true
				break
			}
			if !ok {
				if penalize {
					// The abstraction believes the path feasible but no
					// exact crossing is available; penalize this call edge
					// so the search tries elsewhere.
					k := edgeKey{stp.edge, stp.from.id, stp.to.id}
					st.o.attempts[k]++
					if st.o.attempts[k] > st.a.MaxAttempts {
						st.o.stuck[k] = true
					}
				}
				return nil, nil, nil, false
			}
		}
		// Land in the step's destination region.
		cond = logic.Conj(cond, logic.SubstMap(stp.to.f, store))
		r := st.sat(cond)
		if r.Known && !r.Sat {
			return nil, nil, nil, false
		}
	}
	return cond, store, initSyms, true
}

// confirmForward re-executes the abstract path exactly (symbolically) and
// finishes the query with a must summary on success.
func (st *stepper) confirmForward(path []pathStep) (punch.Result, bool) {
	cond, store, initSyms, ok := st.followPathFull(path, true)
	if !ok {
		return punch.Result{}, false
	}
	hit := logic.Conj(cond, logic.SubstMap(st.q.Q.Post, store))
	r := st.sat(hit)
	if r.Model == nil {
		return punch.Result{}, false
	}
	st.emitMustSummary(initSyms, store, hit, r.Model)
	st.debugf("DONE reachable (confirmed path)")
	return st.finish(query.Done, query.Reachable), true
}

func (st *stepper) freshSym(v lang.Var) lang.Var {
	s := lang.Var(fmt.Sprintf("$y%d_%d_%s", st.q.ID, st.o.symCount, v))
	st.o.symCount++
	return s
}

func (st *stepper) pointApplicable(s summary.Summary) bool {
	vars := logic.FreeVars(s.Pre)
	if len(vars) == 0 {
		return true
	}
	m := st.solver.Model(s.Pre)
	if m == nil {
		return false
	}
	st.charge(4)
	var fs []logic.Formula
	for _, g := range vars {
		fs = append(fs, logic.Eq(logic.LinVar(g), logic.LinConst(m[g])))
	}
	return st.solver.Implies(s.Pre, logic.Conj(fs...))
}

// emitMustSummary mirrors the frame-aware generation of the other
// instantiations.
func (st *stepper) emitMustSummary(initSyms map[lang.Var]lang.Var, store map[lang.Var]logic.Lin, fullConj logic.Formula, m map[lang.Var]int64) {
	o, q := st.o, st.q
	mr := st.ctx.ModRefOf(q.Q.Proc)
	constrained := map[lang.Var]bool{}
	for _, v := range logic.FreeVars(fullConj) {
		constrained[v] = true
	}
	for _, g := range o.globals {
		if mr.Mod[g] {
			for _, v := range store[g].Vars {
				constrained[v] = true
			}
		}
	}
	var prefs, framePosts []logic.Formula
	for _, g := range o.globals {
		if !constrained[initSyms[g]] {
			continue
		}
		v := m[initSyms[g]]
		prefs = append(prefs, logic.Eq(logic.LinVar(g), logic.LinConst(v)))
		if !mr.Mod[g] {
			framePosts = append(framePosts, logic.Eq(logic.LinVar(g), logic.LinConst(v)))
		}
	}
	var posts []logic.Formula
	for _, g := range o.globals {
		if mr.Mod[g] {
			posts = append(posts, logic.Eq(logic.LinVar(g), logic.LinConst(store[g].Eval(m))))
		}
	}
	posts = append(posts, framePosts...)
	st.ctx.DB.Add(summary.Summary{Kind: summary.Must, Proc: q.Q.Proc, Pre: logic.Conj(prefs...), Post: logic.Conj(posts...)})
}

func isGlobal(globals []lang.Var, v lang.Var) bool {
	for _, g := range globals {
		if g == v {
			return true
		}
	}
	return false
}

func cloneStore(s map[lang.Var]logic.Lin) map[lang.Var]logic.Lin {
	out := make(map[lang.Var]logic.Lin, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}
