package may

import (
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/parser"
)

func runMay(t *testing.T, src string, iters int) core.Result {
	t.Helper()
	prog := parser.MustParse(src)
	a := New()
	if os.Getenv("MAY_DEBUG") != "" {
		a.Debug = os.Stderr
	}
	eng := core.New(prog, core.Options{Punch: a, MaxThreads: 2, MaxIterations: iters, CheckContract: true})
	return eng.Run(core.AssertionQuestion(prog))
}

func TestMaySafeStraightLine(t *testing.T) {
	res := runMay(t, `proc main { locals x; x = 1; assert(x > 0); }`, 400)
	if res.Verdict != core.Safe {
		t.Fatalf("verdict = %v", res.Verdict)
	}
}

func TestMayBuggyStraightLine(t *testing.T) {
	res := runMay(t, `proc main { locals x; x = 1; assert(x > 5); }`, 400)
	if res.Verdict != core.ErrorReachable {
		t.Fatalf("verdict = %v", res.Verdict)
	}
}

func TestMayBranchSafe(t *testing.T) {
	res := runMay(t, `
proc main {
  locals x, y;
  havoc x;
  if (x > 0) { y = x; } else { y = 0 - x; }
  assert(y >= 0);
}`, 400)
	if res.Verdict != core.Safe {
		t.Fatalf("verdict = %v", res.Verdict)
	}
}

func TestMayCallSafe(t *testing.T) {
	res := runMay(t, `
globals g;
proc main {
  g = 5;
  bump();
  assert(g >= 6);
}
proc bump { g = g + 1; }`, 800)
	if res.Verdict != core.Safe {
		t.Fatalf("verdict = %v (%+v)", res.Verdict, res)
	}
}

func TestMayCallBuggy(t *testing.T) {
	res := runMay(t, `
globals g;
proc main {
  g = 5;
  bump();
  assert(g >= 7);
}
proc bump { g = g + 1; }`, 800)
	if res.Verdict != core.ErrorReachable {
		t.Fatalf("verdict = %v (%+v)", res.Verdict, res)
	}
}

// TestMayLoopSoundness: without interpolant-guided predicate selection a
// pure may-analysis is not guaranteed to converge on loops (the paper's
// §4 notes may-analyses may be preempted indefinitely); the requirement
// is that it never returns a wrong verdict within its budget.
func TestMayLoopSoundness(t *testing.T) {
	res := runMay(t, `
proc main {
  locals i;
  i = 0;
  while (i < 5) { i = i + 1; }
  assert(i >= 5);
}`, 40)
	if res.Verdict == core.ErrorReachable {
		t.Fatalf("unsound verdict on a safe loop: %v", res.Verdict)
	}
}

func TestMayLoopBuggy(t *testing.T) {
	// Bug finding in loops works: the confirmed-path machinery unrolls.
	res := runMay(t, `
proc main {
  locals i;
  i = 0;
  while (i < 3) { i = i + 1; }
  assert(i >= 4);
}`, 400)
	if res.Verdict != core.ErrorReachable {
		t.Fatalf("verdict = %v", res.Verdict)
	}
}
