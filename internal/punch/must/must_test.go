package must

import (
	"testing"

	"repro/internal/core"
	"repro/internal/parser"
)

func runMust(t *testing.T, src string, iters int) core.Result {
	t.Helper()
	prog := parser.MustParse(src)
	eng := core.New(prog, core.Options{Punch: New(), MaxThreads: 2, MaxIterations: iters, CheckContract: true})
	return eng.Run(core.AssertionQuestion(prog))
}

func TestMustFindsBug(t *testing.T) {
	res := runMust(t, `proc main { locals x; x = 1; assert(x > 5); }`, 200)
	if res.Verdict != core.ErrorReachable {
		t.Fatalf("verdict = %v", res.Verdict)
	}
}

func TestMustProvesAcyclicSafe(t *testing.T) {
	// Exhaustive exploration of an acyclic, call-free program is a proof.
	res := runMust(t, `
proc main {
  locals x, y;
  havoc x;
  if (x > 0) { y = x; } else { y = 0 - x; }
  assert(y >= 0);
}`, 200)
	if res.Verdict != core.Safe {
		t.Fatalf("verdict = %v", res.Verdict)
	}
}

func TestMustFindsBugThroughCall(t *testing.T) {
	res := runMust(t, `
globals g;
proc main {
  g = 5;
  bump();
  assert(g >= 7);
}
proc bump { g = g + 1; }`, 400)
	if res.Verdict != core.ErrorReachable {
		t.Fatalf("verdict = %v (%+v)", res.Verdict, res)
	}
}

func TestMustFindsBugInLoop(t *testing.T) {
	res := runMust(t, `
proc main {
  locals i;
  i = 0;
  while (i < 3) { i = i + 1; }
  assert(i >= 4);
}`, 400)
	if res.Verdict != core.ErrorReachable {
		t.Fatalf("verdict = %v", res.Verdict)
	}
}

func TestMustCannotProveSafetyWithCalls(t *testing.T) {
	// Summary crossings under-approximate, so the must analysis must not
	// claim safety — and must not claim a bug either.
	res := runMust(t, `
globals g;
proc main {
  g = 5;
  bump();
  assert(g >= 6);
}
proc bump { g = g + 1; }`, 60)
	if res.Verdict != core.Unknown {
		t.Fatalf("verdict = %v, want Unknown", res.Verdict)
	}
}

func TestMustHonorsLoopBound(t *testing.T) {
	// The bug needs 10 iterations; with the default bound of 8 the
	// analysis must stay inconclusive rather than claim safety.
	res := runMust(t, `
proc main {
  locals i;
  i = 0;
  while (i < 10) { i = i + 1; }
  assert(i <= 9);
}`, 200)
	if res.Verdict == core.Safe {
		t.Fatalf("claimed safety beyond the loop bound")
	}
}

func TestMustDeepBugViaRaisedBound(t *testing.T) {
	prog := parser.MustParse(`
proc main {
  locals i;
  i = 0;
  while (i < 10) { i = i + 1; }
  assert(i <= 9);
}`)
	a := New()
	a.LoopBound = 16
	eng := core.New(prog, core.Options{Punch: a, MaxThreads: 1, MaxIterations: 500, CheckContract: true})
	res := eng.Run(core.AssertionQuestion(prog))
	if res.Verdict != core.ErrorReachable {
		t.Fatalf("verdict = %v", res.Verdict)
	}
}
