// Package must instantiates PUNCH with a pure must-analysis in the style
// of DART/CUTE (§4 of the paper): forward symbolic execution enumerates
// program paths under a loop bound, proving the presence of errors via
// must summaries. Call statements are crossed using must summaries from
// SUMDB; when none applies, a child sub-query is issued and the blocked
// path waits for its answer.
//
// A must-analysis under-approximates: it can prove reachability (bugs) but
// can prove unreachability only when its exploration was exhaustive — no
// loop-bound truncation and no under-approximate call crossings. This
// matches the paper's framing of must-analyses as bug finders.
package must

import (
	"fmt"
	"io"
	"strconv"

	"repro/internal/cfg"
	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/punch"
	"repro/internal/query"
	"repro/internal/smt"
	"repro/internal/summary"
)

// Analysis is the must-analysis PUNCH instantiation.
type Analysis struct {
	// Budget is the abstract work budget per Step invocation.
	Budget int64
	// LoopBound caps how often a single CFG edge may repeat on one path.
	LoopBound int
	// MaxStates caps the total symbolic states explored per query.
	MaxStates int
	// Debug, when non-nil, receives a trace of analysis decisions.
	Debug io.Writer
}

// New returns a must analysis with default limits.
func New() *Analysis {
	return &Analysis{Budget: 1200, LoopBound: 8, MaxStates: 4096}
}

// Name implements punch.Punch.
func (a *Analysis) Name() string { return "must (DART-style)" }

// symState is one frontier of the symbolic execution.
type symState struct {
	node   cfg.NodeID
	path   logic.Formula
	store  map[lang.Var]logic.Lin
	visits map[int]int // edge index → times taken on this path
}

// obj is the verification object: the saved exploration state.
type obj struct {
	stack    []*symState
	blocked  map[string][]*symState // pending child key → waiting states
	pending  map[string]summary.Question
	initSyms map[lang.Var]lang.Var
	symCount int
	explored int
	// complete stays true while the exploration is exhaustive: no loop
	// truncation, no state-cap hit, and no call crossed via an
	// under-approximate summary.
	complete    bool
	initialized bool
}

// Step implements punch.Punch.
func (a *Analysis) Step(ctx *punch.Context, q *query.Query) punch.Result {
	st := &stepper{a: a, ctx: ctx, q: q, solver: ctx.DB.Solver()}
	return st.run()
}

type stepper struct {
	a        *Analysis
	ctx      *punch.Context
	q        *query.Query
	o        *obj
	solver   *smt.Solver
	cost     int64
	children []*query.Query
}

func (st *stepper) charge(n int64) { st.cost += n }

func (st *stepper) debugf(format string, args ...any) {
	if st.a.Debug == nil {
		return
	}
	fmt.Fprintf(st.a.Debug, "[must Q%d %s] ", st.q.ID, st.q.Q.Proc)
	fmt.Fprintf(st.a.Debug, format, args...)
	fmt.Fprintln(st.a.Debug)
}

func (st *stepper) sat(f logic.Formula) smt.Result {
	st.charge(4)
	return st.solver.Sat(f)
}

func (st *stepper) finish(state query.State, outcome query.Outcome) punch.Result {
	st.q.State = state
	st.q.Outcome = outcome
	st.q.Obj = st.o
	children := st.children
	if state == query.Done {
		children = nil
	}
	return punch.Result{Self: st.q, Children: children, Cost: st.cost}
}

func (st *stepper) proc() *cfg.Proc { return st.ctx.Prog.Proc(st.q.Q.Proc) }

func (st *stepper) run() punch.Result {
	if _, verdict := st.ctx.DB.Answer(st.q.Q); verdict != 0 {
		st.charge(4)
		st.ensureObj()
		if verdict > 0 {
			return st.finish(query.Done, query.Reachable)
		}
		return st.finish(query.Done, query.Unreachable)
	}
	st.ensureObj()
	if !st.o.initialized {
		if done, res := st.initialize(); done {
			return res
		}
	}
	st.sweepBlocked()

	for {
		if st.cost >= st.a.Budget {
			return st.finish(query.Ready, query.Pending)
		}
		if len(st.o.stack) == 0 {
			break
		}
		s := st.o.stack[len(st.o.stack)-1]
		st.o.stack = st.o.stack[:len(st.o.stack)-1]
		if res, done := st.expand(s); done {
			return res
		}
	}

	if len(st.o.pending) > 0 {
		return st.finish(query.Blocked, query.Pending)
	}
	if st.o.complete {
		// Exhaustive exploration found no witness: a sound proof.
		st.ctx.DB.Add(summary.Summary{Kind: summary.NotMay, Proc: st.q.Q.Proc, Pre: st.q.Q.Pre, Post: st.q.Q.Post})
		st.debugf("DONE unreachable (exhaustive exploration)")
		return st.finish(query.Done, query.Unreachable)
	}
	// Truncated exploration with no witness: a must-analysis cannot
	// conclude anything; the query stays Blocked (resource exhaustion at
	// the engine decides the final verdict).
	st.debugf("BLOCKED (truncated exploration, no witness)")
	return st.finish(query.Blocked, query.Pending)
}

func (st *stepper) ensureObj() {
	if st.o != nil {
		return
	}
	if o, ok := st.q.Obj.(*obj); ok && o != nil {
		st.o = o
		return
	}
	st.o = &obj{
		blocked:  map[string][]*symState{},
		pending:  map[string]summary.Question{},
		initSyms: map[lang.Var]lang.Var{},
		complete: true,
	}
}

func (st *stepper) freshSym(v lang.Var) lang.Var {
	s := lang.Var(fmt.Sprintf("$m%d_%d_%s", st.q.ID, st.o.symCount, v))
	st.o.symCount++
	return s
}

func (st *stepper) initialize() (bool, punch.Result) {
	o, q := st.o, st.q
	pre := st.sat(q.Q.Pre)
	if pre.Known && !pre.Sat {
		st.ctx.DB.Add(summary.Summary{Kind: summary.NotMay, Proc: q.Q.Proc, Pre: q.Q.Pre, Post: q.Q.Post})
		o.initialized = true
		return true, st.finish(query.Done, query.Unreachable)
	}
	store := map[lang.Var]logic.Lin{}
	ren := map[lang.Var]lang.Var{}
	vars := append(append([]lang.Var{}, st.ctx.Prog.Globals...), st.proc().Locals...)
	for _, v := range vars {
		s := st.freshSym(v)
		o.initSyms[v] = s
		store[v] = logic.LinVar(s)
		ren[v] = s
	}
	o.stack = append(o.stack, &symState{
		node:   st.proc().Entry,
		path:   logic.Rename(q.Q.Pre, ren),
		store:  store,
		visits: map[int]int{},
	})
	o.initialized = true
	return false, punch.Result{}
}

// sweepBlocked re-activates states whose pending child question SUMDB can
// now answer.
func (st *stepper) sweepBlocked() {
	for key, states := range st.o.blocked {
		pq, ok := st.o.pending[key]
		if !ok {
			continue
		}
		if _, verdict := st.ctx.DB.Answer(pq); verdict == 0 {
			continue
		}
		delete(st.o.pending, key)
		delete(st.o.blocked, key)
		st.o.stack = append(st.o.stack, states...)
	}
}

// expand processes one symbolic state. done=true means the query finished
// (a witness was found).
func (st *stepper) expand(s *symState) (punch.Result, bool) {
	o, q := st.o, st.q
	proc := st.proc()
	o.explored++
	if o.explored > st.a.MaxStates {
		o.complete = false
		return punch.Result{}, false
	}
	if s.node == proc.Exit {
		hit := logic.Conj(s.path, logic.SubstMap(q.Q.Post, s.store))
		r := st.sat(hit)
		if r.Model != nil {
			st.emitMustSummary(s, r.Model)
			st.debugf("DONE reachable after %d states", o.explored)
			return st.finish(query.Done, query.Reachable), true
		}
		return punch.Result{}, false
	}
	for _, ei := range proc.Out[s.node] {
		e := proc.Edges[ei]
		if s.visits[ei] >= st.a.LoopBound {
			o.complete = false
			continue
		}
		if c, isCall := e.Stmt.(lang.Call); isCall {
			st.crossCall(s, ei, e, c.Proc)
			continue
		}
		ns := st.execSimple(s, ei, e)
		if ns != nil {
			o.stack = append(o.stack, ns)
		}
	}
	return punch.Result{}, false
}

// execSimple symbolically executes a non-call edge, returning nil when the
// resulting path condition is unsatisfiable.
func (st *stepper) execSimple(s *symState, ei int, e cfg.Edge) *symState {
	path := s.path
	store := s.store
	switch stmt := e.Stmt.(type) {
	case lang.Assign:
		store = cloneStore(store)
		rhs := logic.FromInt(stmt.Rhs)
		val := logic.LinConst(rhs.K)
		for i, v := range rhs.Vars {
			val = val.Add(s.store[v].Scale(rhs.Coefs[i]))
		}
		store[stmt.Lhs] = val
	case lang.Assume:
		path = logic.Conj(path, logic.SubstMap(logic.FromBool(stmt.Cond), s.store))
		r := st.sat(path)
		if r.Known && !r.Sat {
			return nil
		}
	case lang.Havoc:
		store = cloneStore(store)
		store[stmt.V] = logic.LinVar(st.freshSym(stmt.V))
	case lang.Skip:
	default:
		panic(fmt.Sprintf("must: unexpected statement %T", e.Stmt))
	}
	return &symState{node: e.To, path: path, store: store, visits: bumpVisit(s.visits, ei)}
}

// crossCall crosses a call edge using applicable must summaries; when none
// applies, it issues a child sub-query and parks the state.
func (st *stepper) crossCall(s *symState, ei int, e cfg.Edge, callee string) {
	o := st.o
	calleeMR := st.ctx.ModRefOf(callee)
	crossed := false
	for _, sum := range st.ctx.DB.ForProc(callee) {
		if sum.Kind != summary.Must {
			continue
		}
		if !st.pointApplicable(sum, s) {
			continue
		}
		cond := logic.Conj(s.path, logic.SubstMap(sum.Pre, s.store))
		r := st.sat(cond)
		if !(r.Known && r.Sat) {
			continue
		}
		store := cloneStore(s.store)
		ren := map[lang.Var]lang.Var{}
		for _, g := range st.ctx.Prog.Globals {
			if !calleeMR.Mod[g] {
				continue
			}
			sym := st.freshSym(g)
			store[g] = logic.LinVar(sym)
			ren[g] = sym
		}
		postC := logic.SubstMap(logic.Rename(sum.Post, ren), s.store)
		after := logic.Conj(cond, postC)
		ra := st.sat(after)
		if ra.Known && ra.Sat {
			o.stack = append(o.stack, &symState{node: e.To, path: after, store: store, visits: bumpVisit(s.visits, ei)})
			crossed = true
		}
	}
	if crossed {
		// Summary crossings under-approximate the callee's behaviour;
		// exploration is no longer exhaustive.
		o.complete = false
		return
	}
	// No applicable summary: issue a child for a concrete entry point.
	r := st.sat(s.path)
	if r.Model == nil {
		return
	}
	var prefs []logic.Formula
	for _, g := range st.ctx.Prog.Globals {
		prefs = append(prefs, logic.Eq(logic.LinVar(g), logic.LinConst(s.store[g].Eval(r.Model))))
	}
	question := summary.Question{Proc: callee, Pre: logic.Conj(prefs...), Post: logic.True}
	key := question.Key() + "|edge" + strconv.Itoa(ei)
	if _, dup := st.o.pending[key]; !dup {
		child := st.ctx.Alloc.New(st.q.ID, question)
		st.children = append(st.children, child)
		st.o.pending[key] = question
		st.debugf("child Q%d for %s at edge %d", child.ID, callee, ei)
	}
	// Park a copy that retries the call once the child has answered.
	parked := &symState{node: s.node, path: s.path, store: s.store, visits: s.visits}
	st.o.blocked[key] = append(st.o.blocked[key], parked)
	o.complete = false
}

// pointApplicable reports whether the summary precondition denotes a
// single state over its mentioned globals (cached per solver in the
// summary key space is unnecessary here: preconditions are small).
func (st *stepper) pointApplicable(sum summary.Summary, s *symState) bool {
	vars := logic.FreeVars(sum.Pre)
	if len(vars) == 0 {
		return true
	}
	m := st.solver.Model(sum.Pre)
	if m == nil {
		return false
	}
	st.charge(4)
	var fs []logic.Formula
	for _, g := range vars {
		fs = append(fs, logic.Eq(logic.LinVar(g), logic.LinConst(m[g])))
	}
	return st.solver.Implies(sum.Pre, logic.Conj(fs...))
}

// emitMustSummary mirrors the frame-aware generation of the may-must
// instantiation.
func (st *stepper) emitMustSummary(s *symState, m map[lang.Var]int64) {
	o, q := st.o, st.q
	mr := st.ctx.ModRefOf(q.Q.Proc)
	fullConj := logic.Conj(s.path, logic.SubstMap(q.Q.Post, s.store))
	constrained := map[lang.Var]bool{}
	for _, v := range logic.FreeVars(fullConj) {
		constrained[v] = true
	}
	for _, g := range st.ctx.Prog.Globals {
		if mr.Mod[g] {
			for _, v := range s.store[g].Vars {
				constrained[v] = true
			}
		}
	}
	var prefs, framePosts []logic.Formula
	for _, g := range st.ctx.Prog.Globals {
		if !constrained[o.initSyms[g]] {
			continue
		}
		v := m[o.initSyms[g]]
		prefs = append(prefs, logic.Eq(logic.LinVar(g), logic.LinConst(v)))
		if !mr.Mod[g] {
			framePosts = append(framePosts, logic.Eq(logic.LinVar(g), logic.LinConst(v)))
		}
	}
	var posts []logic.Formula
	for _, g := range st.ctx.Prog.Globals {
		if mr.Mod[g] {
			posts = append(posts, logic.Eq(logic.LinVar(g), logic.LinConst(s.store[g].Eval(m))))
		}
	}
	posts = append(posts, framePosts...)
	st.ctx.DB.Add(summary.Summary{
		Kind: summary.Must,
		Proc: q.Q.Proc,
		Pre:  logic.Conj(prefs...),
		Post: logic.Conj(posts...),
	})
}

func bumpVisit(visits map[int]int, ei int) map[int]int {
	out := make(map[int]int, len(visits)+1)
	for k, v := range visits {
		out[k] = v
	}
	out[ei]++
	return out
}

func cloneStore(s map[lang.Var]logic.Lin) map[lang.Var]logic.Lin {
	out := make(map[lang.Var]logic.Lin, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}
