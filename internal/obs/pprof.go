package obs

import (
	"context"
	"runtime/pprof"
	"strconv"
)

// DoPunch runs f under runtime/pprof labels identifying the PUNCH
// invocation: engine ("barrier", "async", "dist"), proc (the procedure
// under analysis) and query-depth (root = 0). CPU samples taken while f
// runs are attributed to these labels, so `go tool pprof -tags` breaks
// analysis time down by engine, procedure, and tree depth.
func DoPunch(ctx context.Context, engine, proc string, depth int, f func()) {
	pprof.Do(ctx, pprof.Labels(
		"engine", engine,
		"proc", proc,
		"query-depth", strconv.Itoa(depth),
	), func(context.Context) { f() })
}

// StartPprofServer serves the standard /debug/pprof endpoints — plus a
// Prometheus text-format /metrics exposition of the given registry — on
// addr in a background goroutine and returns the bound address (useful
// with ":0"). A nil registry serves an empty /metrics. It is the
// metrics-only special case of StartDebugServer, kept for callers that
// have no live-introspection handles to expose.
func StartPprofServer(addr string, m *Metrics) (string, error) {
	return StartDebugServer(addr, DebugState{Metrics: m})
}
