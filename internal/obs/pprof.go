package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"runtime/pprof"
	"strconv"
)

// DoPunch runs f under runtime/pprof labels identifying the PUNCH
// invocation: engine ("barrier", "async", "dist"), proc (the procedure
// under analysis) and query-depth (root = 0). CPU samples taken while f
// runs are attributed to these labels, so `go tool pprof -tags` breaks
// analysis time down by engine, procedure, and tree depth.
func DoPunch(ctx context.Context, engine, proc string, depth int, f func()) {
	pprof.Do(ctx, pprof.Labels(
		"engine", engine,
		"proc", proc,
		"query-depth", strconv.Itoa(depth),
	), func(context.Context) { f() })
}

// StartPprofServer serves the standard /debug/pprof endpoints — plus a
// Prometheus text-format /metrics exposition of the given registry — on
// addr in a background goroutine and returns the bound address (useful
// with ":0"). A nil registry serves an empty /metrics. The listener
// lives for the remainder of the process — the CLIs use it for the
// duration of a run.
func StartPprofServer(addr string, m *Metrics) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: pprof listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(m))
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
