package obs_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/punch/maymust"
)

// TestTraceRoundTrip drives a corpus program through all three engines
// with a ChromeTracer attached and validates the serialized document:
// parseable Chrome trace-event JSON, well-nested spans per track, and at
// least one PUNCH span per completed query. This is the `make
// trace-smoke` CI gate.
func TestTraceRoundTrip(t *testing.T) {
	files, err := filepath.Glob("../../testdata/corpus/*.bolt")
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus missing: %v (%d files)", err, len(files))
	}
	src, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}

	engines := []struct {
		name  string
		async bool
	}{{"barrier", false}, {"async", true}}
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			tr := obs.NewChromeTracer()
			m := obs.NewMetrics()
			res := core.New(prog, core.Options{
				Punch:         maymust.New(),
				MaxThreads:    8,
				MaxIterations: 60000,
				Async:         eng.async,
				Tracer:        tr,
				Metrics:       m,
			}).Run(core.AssertionQuestion(prog))
			if res.Verdict == core.Unknown {
				t.Fatalf("verdict Unknown (stop %v)", res.StopReason)
			}
			var buf bytes.Buffer
			if err := tr.Export(&buf); err != nil {
				t.Fatal(err)
			}
			spans, err := obs.ValidateChromeTrace(buf.Bytes())
			if err != nil {
				t.Fatalf("validate: %v", err)
			}
			if res.DoneQueries < 1 {
				t.Fatalf("no completed queries")
			}
			if int64(spans) < res.DoneQueries {
				t.Errorf("spans = %d < completed queries = %d", spans, res.DoneQueries)
			}
			if res.Metrics == nil {
				t.Fatal("Result.Metrics is nil with a registry attached")
			}
			if got := res.Metrics.Counters["punch_invocations"]; int64(spans) != got {
				t.Errorf("spans = %d, punch_invocations = %d", spans, got)
			}
			if res.Metrics.Counters["queries_done"] != res.DoneQueries {
				t.Errorf("queries_done = %d, want %d",
					res.Metrics.Counters["queries_done"], res.DoneQueries)
			}
		})
	}

	t.Run("dist", func(t *testing.T) {
		tr := obs.NewChromeTracer()
		m := obs.NewMetrics()
		res := core.NewDistributed(prog, core.DistOptions{
			Punch:          maymust.New(),
			Nodes:          3,
			ThreadsPerNode: 4,
			Tracer:         tr,
			Metrics:        m,
		}).Run(core.AssertionQuestion(prog))
		if res.Verdict == core.Unknown {
			t.Fatalf("verdict Unknown (stop %v)", res.StopReason)
		}
		var buf bytes.Buffer
		if err := tr.Export(&buf); err != nil {
			t.Fatal(err)
		}
		spans, err := obs.ValidateChromeTrace(buf.Bytes())
		if err != nil {
			t.Fatalf("validate: %v", err)
		}
		if spans < 1 {
			t.Error("no punch spans recorded")
		}
		if res.Metrics == nil {
			t.Fatal("DistResult.Metrics is nil with a registry attached")
		}
		if res.Metrics.Counters["queries_spawned"] < 1 {
			t.Error("no spawns counted")
		}
	})
}
