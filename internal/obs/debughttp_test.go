package obs

import (
	"bufio"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func debugGet(t *testing.T, st DebugState, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	st.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if rec.Code != 200 {
		t.Fatalf("GET %s = %d", path, rec.Code)
	}
	return rec
}

func TestDebugMetricsCarriesRuntimeInfo(t *testing.T) {
	m := NewMetrics()
	m.Add(QueriesDone, 3)
	st := DebugState{
		Metrics: m,
		Build:   BuildInfo{GoVersion: "go1.99", WireVersion: 2, Engines: "barrier,async,dist"},
		Start:   time.Now().Add(-2 * time.Second),
	}
	body := debugGet(t, st, "/metrics").Body.String()
	for _, want := range []string{
		`bolt_build_info{go_version="go1.99",wire_version="2",engines="barrier,async,dist"} 1`,
		"bolt_uptime_seconds",
		"bolt_run_state 0", // no probe: idle
		"bolt_queries_done_total 3",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestDebugStateEndpoint(t *testing.T) {
	var p Probe
	st := DebugState{Probe: &p}

	// Idle: explicit idle document, still valid JSON.
	var doc map[string]any
	if err := json.Unmarshal(debugGet(t, st, "/debug/bolt/state").Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["phase"] != "idle" {
		t.Fatalf("idle phase = %v", doc["phase"])
	}

	// Mid-run: the live snapshot.
	ls := NewLiveState("async", 2, 0, time.Now())
	ls.Tick(41, 5)
	ls.SetForest(3, 1, 1, 1)
	p.Attach(func() *StateSnapshot { return ls.Snapshot() })
	defer p.Detach()
	if err := json.Unmarshal(debugGet(t, st, "/debug/bolt/state").Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["phase"] != "running" || doc["engine"] != "async" || doc["vtime"] != float64(41) {
		t.Fatalf("running state = %v", doc)
	}
	forest, ok := doc["forest"].(map[string]any)
	if !ok || forest["live"] != float64(3) {
		t.Fatalf("forest = %v", doc["forest"])
	}
}

func TestDebugFlightEndpoint(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 6; i++ {
		f.Event(Event{Type: EvSpawn, VTime: int64(i)})
	}
	rec := debugGet(t, DebugState{Flight: f}, "/debug/bolt/flight")
	if got := rec.Header().Get("X-Bolt-Flight-Total"); got != "6" {
		t.Fatalf("total header = %q", got)
	}
	if got := rec.Header().Get("X-Bolt-Flight-Dropped"); got != "2" {
		t.Fatalf("dropped header = %q", got)
	}
	if got := rec.Header().Get("X-Bolt-Flight-Capacity"); got != "4" {
		t.Fatalf("capacity header = %q", got)
	}
	lines := 0
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		if _, err := UnmarshalEventJSON(sc.Bytes()); err != nil {
			t.Fatalf("flight line does not parse: %v", err)
		}
		lines++
	}
	if lines != 4 {
		t.Fatalf("flight served %d lines; want 4", lines)
	}
}

func TestDebugHealthEndpoint(t *testing.T) {
	f := NewFlightRecorder(4)
	f.Event(Event{Type: EvSpawn})
	st := DebugState{
		Flight: f,
		Build:  BuildInfo{GoVersion: "go1.99", WireVersion: 2, Engines: "barrier"},
	}
	var doc struct {
		Status      string         `json:"status"`
		Phase       string         `json:"phase"`
		Build       BuildInfo      `json:"build"`
		FlightTotal int64          `json:"flight_total"`
		Watchdog    WatchdogStatus `json:"watchdog"`
	}
	if err := json.Unmarshal(debugGet(t, st, "/debug/bolt/health").Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Status != "ok" || doc.Phase != "idle" || doc.FlightTotal != 1 {
		t.Fatalf("health = %+v", doc)
	}
	if doc.Build.WireVersion != 2 || doc.Watchdog.Enabled {
		t.Fatalf("health = %+v; want build stamped, watchdog disabled", doc)
	}
}

// TestDebugEndpointsAllNil locks in the contract that every handle in
// DebugState is optional: an empty state still serves well-formed
// responses on every route.
func TestDebugEndpointsAllNil(t *testing.T) {
	st := DebugState{}
	var doc map[string]any
	if err := json.Unmarshal(debugGet(t, st, "/debug/bolt/state").Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(debugGet(t, st, "/debug/bolt/health").Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if body := debugGet(t, st, "/debug/bolt/flight").Body.String(); body != "" {
		t.Fatalf("nil flight body = %q; want empty", body)
	}
	if body := debugGet(t, st, "/metrics").Body.String(); !strings.Contains(body, "bolt_build_info") {
		t.Fatalf("/metrics = %q", body)
	}
}

// TestDebugProvEndpoint: the provenance route serves whatever document
// the attached source returns, and a well-formed placeholder when no
// provenance has been recorded (source absent or returning nil).
func TestDebugProvEndpoint(t *testing.T) {
	var doc map[string]any
	if err := json.Unmarshal(debugGet(t, DebugState{}, "/debug/bolt/prov").Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["status"] != "no provenance recorded" {
		t.Fatalf("nil source doc = %v", doc)
	}
	st := DebugState{Prov: func() any { return nil }}
	if err := json.Unmarshal(debugGet(t, st, "/debug/bolt/prov").Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["status"] != "no provenance recorded" {
		t.Fatalf("nil-returning source doc = %v", doc)
	}
	st.Prov = func() any { return map[string]any{"root": "main", "verdict": "Program is Safe"} }
	if err := json.Unmarshal(debugGet(t, st, "/debug/bolt/prov").Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["root"] != "main" {
		t.Fatalf("prov doc = %v", doc)
	}
}

// TestDebugHealthStallRecovery drives the full stall lifecycle through
// /debug/bolt/health: a flatlined run flips the status to "stalled" and
// fires one stall report; resumed progress re-arms the watchdog and
// returns the status to "ok"; a second flatline is a fresh episode that
// fires again.
func TestDebugHealthStallRecovery(t *testing.T) {
	var p Probe
	ls := NewLiveState("async", 2, 0, time.Now())
	ls.Tick(1, 1)
	ls.SetForest(1, 0, 1, 0)
	p.Attach(func() *StateSnapshot { return ls.Snapshot() })
	defer p.Detach()

	var reports atomic.Int64
	wd := NewWatchdog(WatchdogConfig{
		Probe:      &p,
		Tick:       time.Millisecond,
		StallAfter: 5 * time.Millisecond,
		OnStall:    func(StallReport) { reports.Add(1) },
	})
	wd.Start()
	defer wd.Stop()
	st := DebugState{Probe: &p, Watchdog: wd}

	health := func() (string, WatchdogStatus) {
		var doc struct {
			Status   string         `json:"status"`
			Watchdog WatchdogStatus `json:"watchdog"`
		}
		if err := json.Unmarshal(debugGet(t, st, "/debug/bolt/health").Body.Bytes(), &doc); err != nil {
			t.Fatal(err)
		}
		return doc.Status, doc.Watchdog
	}
	waitStalled := func(minReports int64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if status, _ := health(); status == "stalled" && reports.Load() >= minReports {
				return
			}
			time.Sleep(time.Millisecond)
		}
		status, wst := health()
		t.Fatalf("health never reached stalled with %d report(s): status=%q watchdog=%+v reports=%d",
			minReports, status, wst, reports.Load())
	}

	// Phase 1: the signature is flat, so the watchdog marks the run
	// stalled and fires exactly one report for the episode.
	waitStalled(1)
	if _, wst := health(); !wst.Enabled || wst.StuckFor == 0 || wst.Stalls < 1 {
		t.Fatalf("stalled watchdog status = %+v", wst)
	}

	// Phase 2: progress resumes; the watchdog re-arms and health recovers.
	// Keep the signature moving until the sampler has seen it.
	recovered := false
	vtime := int64(2)
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		ls.Tick(vtime, vtime)
		vtime++
		if status, wst := health(); status == "ok" && wst.StuckFor == 0 {
			recovered = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !recovered {
		status, wst := health()
		t.Fatalf("health never recovered: status=%q watchdog=%+v", status, wst)
	}
	if reports.Load() != 1 {
		t.Fatalf("recovery must not fire new reports; got %d", reports.Load())
	}

	// Phase 3: a second flatline is a new episode — the re-armed watchdog
	// fires a second report.
	waitStalled(2)
}
