package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestEventJSONRoundTrip: every event type survives the JSONL wire form
// with all fields intact.
func TestEventJSONRoundTrip(t *testing.T) {
	for typ := EvSpawn; int(typ) < len(eventNames); typ++ {
		in := Event{
			Type:   typ,
			Query:  42,
			Parent: 7,
			Proc:   "dispatch",
			Worker: 3,
			Node:   2,
			VTime:  12345,
			Wall:   1500 * time.Nanosecond,
			Cost:   77,
			N:      9,
		}
		data, err := MarshalEventJSON(in)
		if err != nil {
			t.Fatalf("%v: marshal: %v", typ, err)
		}
		out, err := UnmarshalEventJSON(data)
		if err != nil {
			t.Fatalf("%v: unmarshal: %v", typ, err)
		}
		if out != in {
			t.Errorf("%v: round trip changed event:\n in  %+v\n out %+v", typ, in, out)
		}
	}
}

// TestEventJSONZeroFields: omitempty must not lose the zero-but-meaningful
// fields (query 0, worker 0, vtime 0 are all real values).
func TestEventJSONZeroFields(t *testing.T) {
	in := Event{Type: EvPunchEnd, Query: 0, Worker: 0, VTime: 0, Cost: 5}
	data, err := MarshalEventJSON(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalEventJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip changed event: in %+v out %+v", in, out)
	}
}

func TestParseEventTypeUnknown(t *testing.T) {
	if _, ok := ParseEventType("no-such-event"); ok {
		t.Error("ParseEventType accepted an unknown name")
	}
	if _, err := UnmarshalEventJSON([]byte(`{"type":"no-such-event"}`)); err == nil {
		t.Error("UnmarshalEventJSON accepted an unknown type")
	}
	if _, err := UnmarshalEventJSON([]byte(`{not json`)); err == nil {
		t.Error("UnmarshalEventJSON accepted malformed JSON")
	}
}

// TestJSONLTracer: events stream out one per line and parse back in
// order.
func TestJSONLTracer(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	want := []Event{
		{Type: EvSpawn, Query: 1, Parent: -1, Proc: "main", VTime: 0},
		{Type: EvPunchStart, Query: 1, Proc: "main", Worker: 0, VTime: 0},
		{Type: EvPunchEnd, Query: 1, Proc: "main", Worker: 0, VTime: 10, Cost: 10},
		{Type: EvDone, Query: 1, Proc: "main", VTime: 10},
	}
	for _, ev := range want {
		tr.Event(ev)
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if tr.Events() != int64(len(want)) {
		t.Fatalf("Events() = %d, want %d", tr.Events(), len(want))
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(want) {
		t.Fatalf("%d lines, want %d", len(lines), len(want))
	}
	for i, line := range lines {
		got, err := UnmarshalEventJSON([]byte(line))
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if got != want[i] {
			t.Errorf("line %d: got %+v, want %+v", i, got, want[i])
		}
	}
}

// failWriter fails every write after the first n bytes.
type failWriter struct{ left int }

func (w *failWriter) Write(p []byte) (int, error) {
	if len(p) > w.left {
		n := w.left
		w.left = 0
		return n, errShortWrite
	}
	w.left -= len(p)
	return len(p), nil
}

var errShortWrite = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "injected write failure" }

// TestJSONLTracerRetainsFirstError: a failing sink surfaces via Flush
// and later events are dropped without panicking.
func TestJSONLTracerRetainsFirstError(t *testing.T) {
	tr := NewJSONLTracer(&failWriter{left: 8})
	for i := 0; i < 10000; i++ {
		tr.Event(Event{Type: EvPunchEnd, Query: 1, VTime: int64(i)})
	}
	if err := tr.Flush(); err == nil {
		t.Fatal("Flush reported no error from a failing writer")
	}
}

func TestTee(t *testing.T) {
	if Tee() != nil {
		t.Error("Tee() of nothing should be the nil interface")
	}
	if Tee(nil, nil) != nil {
		t.Error("Tee(nil, nil) should be the nil interface")
	}
	a := &Recording{}
	if got := Tee(nil, a); got != Tracer(a) {
		t.Error("Tee of a single live tracer should return it unwrapped")
	}
	b := &Recording{}
	tee := Tee(a, nil, b)
	tee.Event(Event{Type: EvSpawn, Query: 5})
	if a.Len() != 1 || b.Len() != 1 {
		t.Errorf("tee fan-out: a=%d b=%d events, want 1 each", a.Len(), b.Len())
	}
}
