package obs

import (
	"io"
	"sync"
)

// DefaultFlightCapacity is the ring size NewFlightRecorder(0) uses —
// large enough to hold the last few scheduling generations of a busy
// 32-thread run, small enough that a dump stays skimmable.
const DefaultFlightCapacity = 4096

// FlightRecorder is a bounded ring of the most recent lifecycle events:
// the always-on "black box" a live engine can afford to keep. It
// implements Tracer, so it attaches anywhere a tracer does (typically
// teed next to the other sinks). Writes are one short critical section —
// copy the event into the ring, bump two counters — with no allocation,
// so the recorder is cheap enough to leave on for whole runs; when it is
// not attached the engines pay their usual single nil-tracer branch.
//
// When the ring wraps, the oldest events are overwritten and counted as
// dropped; Snapshot and WriteJSONL always return the surviving events
// oldest-first together with the drop count, so a dump states exactly
// how much history it is missing.
type FlightRecorder struct {
	mu    sync.Mutex
	ring  []Event
	next  int   // ring index of the next write
	total int64 // events ever recorded
}

// NewFlightRecorder returns a recorder keeping the last capacity events
// (DefaultFlightCapacity when capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{ring: make([]Event, capacity)}
}

// Event implements Tracer: record ev, overwriting the oldest event when
// the ring is full. Safe for concurrent use.
func (f *FlightRecorder) Event(ev Event) {
	f.mu.Lock()
	f.ring[f.next] = ev
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
	}
	f.total++
	f.mu.Unlock()
}

// FlightSnapshot is a point-in-time copy of the recorder: the surviving
// events oldest-first, plus the totals that say how much history the
// ring has shed.
type FlightSnapshot struct {
	// Events holds the retained events, oldest first.
	Events []Event
	// Total is the number of events ever recorded; Dropped how many of
	// them were overwritten before this snapshot (Total - len(Events)).
	Total   int64
	Dropped int64
}

// Snapshot copies the ring out oldest-first. Nil-receiver safe (an
// empty snapshot), so callers can hold an optional recorder.
func (f *FlightRecorder) Snapshot() FlightSnapshot {
	if f == nil {
		return FlightSnapshot{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s := FlightSnapshot{Total: f.total}
	n := f.total
	if n > int64(len(f.ring)) {
		n = int64(len(f.ring))
		s.Dropped = f.total - n
	}
	s.Events = make([]Event, 0, n)
	// The oldest retained event sits at next when the ring has wrapped,
	// at 0 otherwise.
	start := 0
	if s.Dropped > 0 {
		start = f.next
	}
	for i := int64(0); i < n; i++ {
		s.Events = append(s.Events, f.ring[(start+int(i))%len(f.ring)])
	}
	return s
}

// Total returns the number of events ever recorded (0 on nil).
func (f *FlightRecorder) Total() int64 { return f.Snapshot().Total }

// Dropped returns how many events the ring has overwritten (0 on nil).
func (f *FlightRecorder) Dropped() int64 { return f.Snapshot().Dropped }

// Capacity returns the ring size (0 on nil).
func (f *FlightRecorder) Capacity() int {
	if f == nil {
		return 0
	}
	return len(f.ring)
}

// WriteJSONL dumps the current snapshot to w in the JSONL wire form —
// the format boltprof and internal/obs/analyze load — and returns how
// many events were written. The snapshot is taken up front, so the dump
// is internally consistent even while the run keeps recording.
func (f *FlightRecorder) WriteJSONL(w io.Writer) (int, error) {
	s := f.Snapshot()
	for i, ev := range s.Events {
		line, err := MarshalEventJSON(ev)
		if err != nil {
			return i, err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return i, err
		}
	}
	return len(s.Events), nil
}
