package obs

import (
	"bufio"
	"bytes"
	"sync"
	"testing"
)

func TestFlightRecorderBelowCapacity(t *testing.T) {
	f := NewFlightRecorder(8)
	for i := 0; i < 5; i++ {
		f.Event(Event{Type: EvSpawn, VTime: int64(i)})
	}
	s := f.Snapshot()
	if s.Total != 5 || s.Dropped != 0 || len(s.Events) != 5 {
		t.Fatalf("snapshot = %d events, total %d, dropped %d; want 5/5/0", len(s.Events), s.Total, s.Dropped)
	}
	for i, ev := range s.Events {
		if ev.VTime != int64(i) {
			t.Fatalf("event %d has vtime %d; want oldest-first order", i, ev.VTime)
		}
	}
}

func TestFlightRecorderOverflowKeepsNewest(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 11; i++ {
		f.Event(Event{Type: EvSpawn, VTime: int64(i)})
	}
	s := f.Snapshot()
	if s.Total != 11 {
		t.Fatalf("total = %d; want 11", s.Total)
	}
	if s.Dropped != 7 {
		t.Fatalf("dropped = %d; want 7", s.Dropped)
	}
	if len(s.Events) != 4 {
		t.Fatalf("retained %d events; want 4", len(s.Events))
	}
	for i, ev := range s.Events {
		if want := int64(7 + i); ev.VTime != want {
			t.Fatalf("event %d has vtime %d; want %d (newest 4, oldest first)", i, ev.VTime, want)
		}
	}
	if f.Total() != 11 || f.Dropped() != 7 || f.Capacity() != 4 {
		t.Fatalf("accessors = total %d dropped %d cap %d; want 11/7/4", f.Total(), f.Dropped(), f.Capacity())
	}
}

func TestFlightRecorderDefaultCapacity(t *testing.T) {
	if got := NewFlightRecorder(0).Capacity(); got != DefaultFlightCapacity {
		t.Fatalf("default capacity = %d; want %d", got, DefaultFlightCapacity)
	}
	if got := NewFlightRecorder(-3).Capacity(); got != DefaultFlightCapacity {
		t.Fatalf("negative capacity = %d; want %d", got, DefaultFlightCapacity)
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	if s := f.Snapshot(); s.Total != 0 || len(s.Events) != 0 {
		t.Fatalf("nil snapshot = %+v; want empty", s)
	}
	if f.Total() != 0 || f.Dropped() != 0 || f.Capacity() != 0 {
		t.Fatal("nil accessors must return zero")
	}
}

// TestFlightRecorderConcurrent exercises the ring from many writers at
// once (the barrier engine emits from all MAP goroutines); run under
// -race it is the recorder's thread-safety proof.
func TestFlightRecorderConcurrent(t *testing.T) {
	const (
		writers = 8
		each    = 500
	)
	f := NewFlightRecorder(64)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				f.Event(Event{Type: EvPunchStart, Worker: w, VTime: int64(i)})
				if i%17 == 0 {
					// Interleave reads with the writes.
					_ = f.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := f.Snapshot()
	if s.Total != writers*each {
		t.Fatalf("total = %d; want %d", s.Total, writers*each)
	}
	if len(s.Events) != 64 || s.Dropped != writers*each-64 {
		t.Fatalf("retained %d dropped %d; want 64 / %d", len(s.Events), s.Dropped, writers*each-64)
	}
}

func TestFlightRecorderWriteJSONL(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 6; i++ {
		f.Event(Event{Type: EvPunchEnd, Query: 7, Proc: "p", VTime: int64(i), Cost: 3})
	}
	var buf bytes.Buffer
	n, err := f.WriteJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("wrote %d events; want 4", n)
	}
	sc := bufio.NewScanner(&buf)
	var vt int64 = 2 // events 0 and 1 were overwritten
	for sc.Scan() {
		ev, err := UnmarshalEventJSON(sc.Bytes())
		if err != nil {
			t.Fatalf("line does not round-trip: %v", err)
		}
		if ev.Type != EvPunchEnd || ev.Query != 7 || ev.Proc != "p" || ev.Cost != 3 || ev.VTime != vt {
			t.Fatalf("decoded %+v; want punch-end q7 p cost=3 vtime=%d", ev, vt)
		}
		vt++
	}
	if vt != 6 {
		t.Fatalf("decoded up to vtime %d; want 6", vt)
	}
}
