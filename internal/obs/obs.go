// Package obs is the observability layer shared by the three BOLT
// engines (barrier, streaming, distributed): typed query-lifecycle
// events delivered to a Tracer, an atomic Metrics registry snapshotted
// into results, and runtime/pprof integration (labels around PUNCH
// execution plus an optional HTTP profiling endpoint).
//
// The hot-path contract is zero allocation when disabled: a nil Tracer
// and a nil *Metrics each cost exactly one branch per would-be
// observation. Engines guard every emission with `if tracer != nil`
// and every counter update goes through nil-receiver-safe methods, so
// runs without instrumentation behave as before this layer existed
// (BenchmarkObsOverhead in the repository root measures the difference).
package obs

import (
	"fmt"
	"time"

	"repro/internal/query"
)

// EventType labels a query-lifecycle event.
type EventType uint8

// Event types, covering the full life of a query plus the scheduler
// and cluster events around it.
const (
	// EvSpawn: a query was created (root or child) and entered Ready.
	EvSpawn EventType = iota
	// EvReady: a live query was re-enqueued Ready after a PUNCH slice
	// exhausted its step budget without finishing.
	EvReady
	// EvPunchStart and EvPunchEnd bracket one PUNCH invocation; the
	// pair becomes one span on the worker's track in the Chrome trace.
	EvPunchStart
	EvPunchEnd
	// EvBlock: a PUNCH invocation returned its query Blocked on
	// unanswered children.
	EvBlock
	// EvWake: a Blocked query was made Ready again — its child
	// completed, a gossip delivery arrived, a mid-flight rewake fired,
	// or failover re-routed it.
	EvWake
	// EvSteal: a streaming-engine worker stole a query from another
	// worker's deque; N is the victim worker.
	EvSteal
	// EvDone: a query was answered.
	EvDone
	// EvGC: REDUCE removed a Done query's subtree; N is the number of
	// queries collected.
	EvGC
	// EvGossipSend and EvGossipRecv: one summary delivery between nodes
	// of the distributed simulation; N is the payload size in bytes.
	EvGossipSend
	EvGossipRecv
	// EvNodeKill: fault injection removed a node from the cluster.
	EvNodeKill
	// EvCoalesce: a freshly spawned child matched a live in-flight query
	// and was coalesced onto it instead of growing a duplicate subtree;
	// Query is the duplicate child that was dropped, Parent the spawning
	// parent registered as a waiter, N the twin query answering for both.
	EvCoalesce

	numEventTypes
)

var eventNames = [numEventTypes]string{
	"spawn", "ready", "punch-start", "punch-end", "block", "wake",
	"steal", "done", "gc", "gossip-send", "gossip-recv", "node-kill",
	"coalesce",
}

func (t EventType) String() string {
	if int(t) < len(eventNames) {
		return eventNames[t]
	}
	return fmt.Sprintf("EventType(%d)", int(t))
}

// Event is one timestamped query-lifecycle observation. Fields beyond
// Type are populated where they make sense for the event (zero
// otherwise); both clocks are always stamped.
type Event struct {
	Type   EventType
	Query  query.ID
	Parent query.ID
	Proc   string
	// Worker is the worker slot the event belongs to: the MAP batch
	// slot in the barrier engine, the pool member in the streaming
	// engine, the per-node thread slot in the distributed simulation.
	Worker int
	// Node is the owning node in the distributed simulation (always 0
	// for the single-machine engines).
	Node int
	// VTime is the engine's virtual clock when the event fired; Wall is
	// elapsed wall-clock time since the run started.
	VTime int64
	Wall  time.Duration
	// Cost is the PUNCH invocation's abstract cost (EvPunchEnd only).
	Cost int64
	// N is the event's payload count: victim worker for EvSteal,
	// queries collected for EvGC, payload bytes for the gossip events.
	N int64
}

// Tracer receives the event stream of a run. Implementations must be
// safe for concurrent use: the barrier engine emits from its MAP
// goroutines, and the distributed simulation from every node's workers
// at once. A nil Tracer disables tracing — engines guard each emission
// with a single nil check and build no Event behind it.
type Tracer interface {
	Event(Event)
}
