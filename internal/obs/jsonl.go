package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/query"
)

// wireEvent is the JSONL wire form of an Event: one JSON object per
// line, with the event type spelled out as its String name so the
// stream is greppable and stable across EventType renumbering.
type wireEvent struct {
	Type   string `json:"type"`
	Query  int64  `json:"query"`
	Parent int64  `json:"parent,omitempty"`
	Proc   string `json:"proc,omitempty"`
	Worker int    `json:"worker,omitempty"`
	Node   int    `json:"node,omitempty"`
	VTime  int64  `json:"vtime"`
	WallNs int64  `json:"wall_ns,omitempty"`
	Cost   int64  `json:"cost,omitempty"`
	N      int64  `json:"n,omitempty"`
}

// ParseEventType resolves an event-type name produced by
// EventType.String back to its value.
func ParseEventType(name string) (EventType, bool) {
	for t, n := range eventNames {
		if n == name {
			return EventType(t), true
		}
	}
	return 0, false
}

// MarshalEventJSON renders one event in the JSONL wire form (no
// trailing newline).
func MarshalEventJSON(ev Event) ([]byte, error) {
	return json.Marshal(wireEvent{
		Type:   ev.Type.String(),
		Query:  int64(ev.Query),
		Parent: int64(ev.Parent),
		Proc:   ev.Proc,
		Worker: ev.Worker,
		Node:   ev.Node,
		VTime:  ev.VTime,
		WallNs: int64(ev.Wall),
		Cost:   ev.Cost,
		N:      ev.N,
	})
}

// UnmarshalEventJSON parses one JSONL line back into an Event.
func UnmarshalEventJSON(line []byte) (Event, error) {
	var w wireEvent
	if err := json.Unmarshal(line, &w); err != nil {
		return Event{}, fmt.Errorf("obs: bad JSONL event: %w", err)
	}
	t, ok := ParseEventType(w.Type)
	if !ok {
		return Event{}, fmt.Errorf("obs: unknown event type %q", w.Type)
	}
	return Event{
		Type:   t,
		Query:  query.ID(w.Query),
		Parent: query.ID(w.Parent),
		Proc:   w.Proc,
		Worker: w.Worker,
		Node:   w.Node,
		VTime:  w.VTime,
		Wall:   time.Duration(w.WallNs),
		Cost:   w.Cost,
		N:      w.N,
	}, nil
}

// JSONLTracer is a Tracer that streams events to a writer as JSON
// Lines: one event object per line, buffered, mutex-guarded. Unlike
// ChromeTracer it holds no per-run state, so arbitrarily long runs
// stream in constant memory; internal/obs/analyze loads the format
// back. The zero-alloc-when-disabled contract is unchanged: engines
// never construct an Event unless a tracer is attached.
type JSONLTracer struct {
	mu  sync.Mutex
	w   *bufio.Writer
	n   int64
	err error
}

// NewJSONLTracer returns a tracer streaming to w.
func NewJSONLTracer(w io.Writer) *JSONLTracer {
	return &JSONLTracer{w: bufio.NewWriterSize(w, 1<<16)}
}

// Event implements Tracer. The first write error is retained and
// reported by Flush; later events are dropped.
func (t *JSONLTracer) Event(ev Event) {
	data, err := MarshalEventJSON(ev)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(data); err != nil {
		t.err = err
		return
	}
	if err := t.w.WriteByte('\n'); err != nil {
		t.err = err
		return
	}
	t.n++
}

// Flush drains the buffer and returns the first error encountered by
// any write (or the flush itself).
func (t *JSONLTracer) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// Events returns the number of events written so far.
func (t *JSONLTracer) Events() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Tee fans events out to every non-nil tracer. It returns a nil
// interface when no tracer remains, so engine-side `!= nil` guards
// keep their disabled-cost contract.
func Tee(tracers ...Tracer) Tracer {
	var live []Tracer
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return teeTracer(live)
}

type teeTracer []Tracer

func (t teeTracer) Event(ev Event) {
	for _, tr := range t {
		tr.Event(ev)
	}
}
