package obs

import (
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestLiveStateSnapshot(t *testing.T) {
	ls := NewLiveState("async", 4, 0, time.Now())
	ls.Tick(123, 7)
	ls.SetForest(10, 3, 5, 2)
	ls.SetProgress(20, 9)
	ls.ObserveDepth(3)
	ls.ObserveDepth(6)
	ls.ObserveDepth(4) // must not lower the max
	ls.SetCoalescer(2, 5, 11)
	ls.WorkerRunning(1, "reach", 42)
	ls.WorkerFinished(1)
	ls.WorkerRunning(1, "reach", 43)
	ls.WorkerStealing(2)
	ls.WorkerParked(3)

	s := ls.Snapshot()
	if s.Engine != "async" || s.VTime != 123 || s.Iterations != 7 {
		t.Fatalf("header = %s/%d/%d; want async/123/7", s.Engine, s.VTime, s.Iterations)
	}
	f := s.Forest
	if f.Live != 10 || f.Ready != 3 || f.Blocked != 5 || f.Running != 2 || f.Spawned != 20 || f.Done != 9 || f.MaxDepth != 6 {
		t.Fatalf("forest = %+v", f)
	}
	c := s.Coalescer
	if c.InflightKeys != 2 || c.WaiterEdges != 5 || c.Hits != 11 {
		t.Fatalf("coalescer = %+v", c)
	}
	if len(s.Workers) != 4 {
		t.Fatalf("workers = %d; want 4", len(s.Workers))
	}
	w1 := s.Workers[1]
	if w1.Phase != "running" || w1.Proc != "reach" || w1.Query != 43 || w1.Punches != 1 {
		t.Fatalf("worker 1 = %+v", w1)
	}
	if s.Workers[0].Phase != "idle" || s.Workers[2].Phase != "stealing" || s.Workers[3].Phase != "parked" {
		t.Fatalf("worker phases = %s/%s/%s", s.Workers[0].Phase, s.Workers[2].Phase, s.Workers[3].Phase)
	}
	if got := s.TotalPunches(); got != 1 {
		t.Fatalf("TotalPunches = %d; want 1", got)
	}
}

func TestLiveStateClampsNegativeGauges(t *testing.T) {
	ls := NewLiveState("async", 0, 0, time.Now())
	// Derived blocked = live - ready - running can go transiently
	// negative on skewed reads; the gauge must clamp, not publish junk.
	ls.SetForest(1, 2, -3, -1)
	f := ls.Snapshot().Forest
	if f.Blocked != 0 || f.Running != 0 {
		t.Fatalf("blocked/running = %d/%d; want clamped to 0", f.Blocked, f.Running)
	}
}

func TestLiveStateNodes(t *testing.T) {
	ls := NewLiveState("dist", 6, 3, time.Now())
	ls.NodeSet(0, 4, 1, 3, 10)
	ls.NodeAddBusy(0, 100)
	ls.NodeAddBusy(1, 50)
	ls.NodeAddBusy(2, 30)
	ls.NodeSetBacklog(1, 2)
	ls.NodeDead(2)

	s := ls.Snapshot()
	if len(s.Nodes) != 3 {
		t.Fatalf("nodes = %d; want 3", len(s.Nodes))
	}
	n0 := s.Nodes[0]
	if n0.Live != 4 || n0.Ready != 1 || n0.Blocked != 3 || n0.Summaries != 10 || n0.BusyTicks != 100 {
		t.Fatalf("node 0 = %+v", n0)
	}
	if s.Nodes[1].GossipBacklog != 2 {
		t.Fatalf("node 1 backlog = %d; want 2", s.Nodes[1].GossipBacklog)
	}
	if !s.Nodes[2].Dead {
		t.Fatal("node 2 should be dead")
	}
	// Skew over the two live nodes: max 100 / avg 75.
	if want := 100.0 / 75.0; s.NodeSkew < want-1e-9 || s.NodeSkew > want+1e-9 {
		t.Fatalf("skew = %v; want %v (dead node excluded)", s.NodeSkew, want)
	}
	// Workers map onto nodes by slot: 6 workers / 3 nodes = 2 per node.
	if s.Workers[5].Node != 2 || s.Workers[0].Node != 0 {
		t.Fatalf("worker->node mapping = %d,%d; want 2,0", s.Workers[5].Node, s.Workers[0].Node)
	}
}

func TestLiveStateNilAndOutOfRange(t *testing.T) {
	var ls *LiveState
	ls.Tick(1, 1)
	ls.SetForest(1, 1, 1, 1)
	ls.SetProgress(1, 1)
	ls.ObserveDepth(1)
	ls.SetCoalescer(1, 1, 1)
	ls.WorkerRunning(0, "p", 1)
	ls.WorkerFinished(0)
	ls.WorkerStealing(0)
	ls.WorkerParked(0)
	ls.NodeSet(0, 1, 1, 1, 1)
	ls.NodeAddBusy(0, 1)
	ls.NodeSetBacklog(0, 1)
	ls.NodeDead(0)
	if ls.Snapshot() != nil {
		t.Fatal("nil LiveState must snapshot to nil")
	}

	real := NewLiveState("async", 1, 0, time.Now())
	real.WorkerRunning(5, "p", 1) // out of range: ignored, not a panic
	real.WorkerRunning(-1, "p", 1)
	real.NodeSet(9, 1, 1, 1, 1) // no nodes allocated
	if got := len(real.Snapshot().Workers); got != 1 {
		t.Fatalf("workers = %d; want 1", got)
	}
}

func TestProbeLifecycle(t *testing.T) {
	var p Probe
	if p.State() != nil || p.Phase() != RunIdle || p.Runs() != 0 {
		t.Fatal("fresh probe must be idle with no state")
	}

	ls := NewLiveState("barrier", 2, 0, time.Now())
	ls.Tick(55, 1)
	p.Attach(func() *StateSnapshot { return ls.Snapshot() })
	if p.Phase() != RunActive {
		t.Fatalf("phase = %v; want active", p.Phase())
	}
	s := p.State()
	if s == nil || s.Phase != "running" || s.VTime != 55 {
		t.Fatalf("live state = %+v; want running at vtime 55", s)
	}

	ls.Tick(99, 2)
	p.Detach()
	if p.Phase() != RunFinished || p.Runs() != 1 {
		t.Fatalf("after detach: phase %v runs %d; want finished/1", p.Phase(), p.Runs())
	}
	final := p.State()
	if final == nil || final.Phase != "finished" || final.VTime != 99 {
		t.Fatalf("final state = %+v; want frozen finished snapshot at vtime 99", final)
	}
	// The frozen snapshot must be a copy per call, not shared storage.
	final.VTime = -1
	if again := p.State(); again.VTime != 99 {
		t.Fatalf("frozen snapshot mutated through a reader: vtime %d", again.VTime)
	}

	// A second run reuses the probe.
	ls2 := NewLiveState("async", 2, 0, time.Now())
	p.Attach(func() *StateSnapshot { return ls2.Snapshot() })
	if s := p.State(); s.Engine != "async" || s.Runs != 1 {
		t.Fatalf("second run state = %+v", s)
	}
	p.Detach()
	if p.Runs() != 2 {
		t.Fatalf("runs = %d; want 2", p.Runs())
	}
}

func TestProbeNil(t *testing.T) {
	var p *Probe
	p.Attach(func() *StateSnapshot { return nil })
	p.Detach()
	if p.State() != nil || p.Phase() != RunIdle || p.Runs() != 0 {
		t.Fatal("nil probe must be inert")
	}
}

func TestStateSnapshotJSONShape(t *testing.T) {
	ls := NewLiveState("async", 1, 0, time.Now())
	ls.WorkerRunning(0, "main", 1)
	s := ls.Snapshot()
	s.Phase = RunActive.String()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"engine", "phase", "vtime", "iterations", "forest", "coalescer", "workers"} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("snapshot JSON missing %q: %s", key, b)
		}
	}
}

func TestDiagnoseAllBlocked(t *testing.T) {
	cur := &StateSnapshot{
		Forest:  ForestState{Live: 5, Blocked: 5},
		Workers: []WorkerState{{Phase: "parked"}, {Phase: "parked"}},
	}
	r := Diagnose(nil, cur, 6*time.Second)
	if r.Reason != "all-blocked" {
		t.Fatalf("reason = %q; want all-blocked (%s)", r.Reason, r.Detail)
	}
	if r.Stalled != 6*time.Second || r.State != cur {
		t.Fatalf("report = %+v", r)
	}
}

func TestDiagnoseStraggler(t *testing.T) {
	ws := make([]WorkerState, 8)
	for i := range ws {
		ws[i] = WorkerState{Worker: i, Phase: "idle"}
	}
	ws[6] = WorkerState{Worker: 6, Phase: "running", Proc: "slow", Query: 3}
	ws[1] = WorkerState{Worker: 1, Phase: "running", Proc: "slow2", Query: 4}
	cur := &StateSnapshot{Forest: ForestState{Live: 2, Running: 2}, Workers: ws}
	r := Diagnose(nil, cur, time.Second)
	if r.Reason != "straggler" {
		t.Fatalf("reason = %q; want straggler (%s)", r.Reason, r.Detail)
	}
	if len(r.Stragglers) != 2 || r.Stragglers[0].Worker != 1 || r.Stragglers[1].Worker != 6 {
		t.Fatalf("stragglers = %+v; want workers 1,6 sorted", r.Stragglers)
	}
}

func TestDiagnoseNoProgress(t *testing.T) {
	cur := &StateSnapshot{
		Forest:  ForestState{Live: 4, Ready: 4},
		Workers: []WorkerState{{Phase: "running"}, {Phase: "running"}},
	}
	if r := Diagnose(nil, cur, time.Second); r.Reason != "no-progress" {
		t.Fatalf("reason = %q; want no-progress", r.Reason)
	}
	if r := Diagnose(nil, nil, time.Second); r.Reason != "no-progress" || r.State != nil {
		t.Fatalf("nil snapshot should yield bare no-progress, got %+v", r)
	}
}

func TestStallReportString(t *testing.T) {
	r := StallReport{
		Reason:  "straggler",
		Detail:  "1 of 8 workers still running",
		Stalled: 2 * time.Second,
		State: &StateSnapshot{
			Forest:    ForestState{Live: 3, Blocked: 2, Running: 1, Done: 4, Spawned: 9},
			Coalescer: CoalescerState{InflightKeys: 1, WaiterEdges: 2},
		},
		Stragglers: []WorkerState{{Worker: 6, Proc: "slow", Query: 3, Punches: 7}},
		Flight:     &FlightSnapshot{Events: make([]Event, 3), Total: 10, Dropped: 7},
	}
	out := r.String()
	for _, want := range []string{"stall detected (straggler)", "forest:", "coalescer:", "worker 6", "3 events retained, 7 dropped"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// fakeRun drives a Probe the way an engine does, with progress under
// test control.
type fakeRun struct {
	vtime atomic.Int64
	ls    *LiveState
}

func newFakeRun(p *Probe) *fakeRun {
	fr := &fakeRun{ls: NewLiveState("async", 2, 0, time.Now())}
	p.Attach(func() *StateSnapshot {
		fr.ls.Tick(fr.vtime.Load(), 0)
		return fr.ls.Snapshot()
	})
	return fr
}

func TestWatchdogFiresOncePerEpisode(t *testing.T) {
	var p Probe
	fr := newFakeRun(&p)
	fr.vtime.Store(1)

	reports := make(chan StallReport, 16)
	flight := NewFlightRecorder(8)
	flight.Event(Event{Type: EvSpawn})
	wd := NewWatchdog(WatchdogConfig{
		Probe:      &p,
		Flight:     flight,
		Tick:       2 * time.Millisecond,
		StallAfter: 10 * time.Millisecond,
		OnStall:    func(r StallReport) { reports <- r },
	})
	wd.Start()
	defer wd.Stop()

	var rep StallReport
	select {
	case rep = <-reports:
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never fired on a flatlined run")
	}
	if rep.Reason == "" || rep.State == nil {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Flight == nil || rep.Flight.Total != 1 {
		t.Fatalf("flight dump not attached: %+v", rep.Flight)
	}
	if rep.Stalled < 10*time.Millisecond {
		t.Fatalf("stalled = %v; want >= stall window", rep.Stalled)
	}

	// Still wedged: the same episode must not fire again.
	select {
	case r := <-reports:
		t.Fatalf("watchdog re-fired within one episode: %+v", r)
	case <-time.After(50 * time.Millisecond):
	}

	// Progress resumes, then flatlines again: a second episode fires.
	fr.vtime.Store(2)
	select {
	case <-reports:
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog did not re-arm after progress")
	}

	st := wd.Status()
	if !st.Enabled || st.Stalls != 2 || st.Samples == 0 || st.LastReason == "" {
		t.Fatalf("status = %+v; want enabled with 2 stalls", st)
	}
}

func TestWatchdogIgnoresIdleProbe(t *testing.T) {
	var p Probe // nothing ever attaches
	fired := make(chan StallReport, 1)
	wd := NewWatchdog(WatchdogConfig{
		Probe:      &p,
		Tick:       time.Millisecond,
		StallAfter: 3 * time.Millisecond,
		OnStall:    func(r StallReport) { fired <- r },
	})
	wd.Start()
	defer wd.Stop()
	select {
	case r := <-fired:
		t.Fatalf("watchdog fired with no run attached: %+v", r)
	case <-time.After(50 * time.Millisecond):
	}
	if st := wd.Status(); st.Stalls != 0 || st.StuckFor != 0 {
		t.Fatalf("status = %+v; want no stalls", st)
	}
}

func TestWatchdogStopIdempotent(t *testing.T) {
	var wd *Watchdog
	wd.Start() // nil-safe
	wd.Stop()
	wd = NewWatchdog(WatchdogConfig{Probe: &Probe{}})
	wd.Stop() // never started
	wd.Start()
	wd.Start() // double start is a no-op
	wd.Stop()
	wd.Stop()
}
