package obs

import "sync"

// Recording is a Tracer that appends every event to an in-memory log,
// for tests asserting ordering invariants. Safe for concurrent use.
type Recording struct {
	mu     sync.Mutex
	events []Event
}

// Event implements Tracer.
func (r *Recording) Event(ev Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Events returns a copy of the log in arrival order.
func (r *Recording) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len returns the number of recorded events.
func (r *Recording) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}
