package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter indexes one engine counter in the Metrics registry.
type Counter int

// Registry counters. Every engine updates the subset that applies to
// it; the rest stay zero.
const (
	// QueriesSpawned counts queries ever created (root + children).
	QueriesSpawned Counter = iota
	// QueriesDone counts queries answered.
	QueriesDone
	// QueriesGCd counts queries removed by REDUCE's subtree collection.
	QueriesGCd
	// QueriesBlocked counts PUNCH returns in the Blocked state.
	QueriesBlocked
	// Wakes counts Blocked→Ready transitions (child done, gossip
	// arrival, failover).
	Wakes
	// Rewakes counts mid-flight rewakes in the streaming engine: a
	// child completed while its parent was inside PUNCH, so the parent
	// was re-enqueued immediately on returning Blocked.
	Rewakes
	// StealsAttempted counts streaming-engine victim scans (the owner's
	// deque was empty); StealsSucceeded counts scans that found work.
	StealsAttempted
	StealsSucceeded
	// IdleParks counts times a streaming worker found no runnable work
	// anywhere and parked on the condition variable.
	IdleParks
	// PunchInvocations counts PUNCH calls across all workers.
	PunchInvocations
	// GossipRounds counts gossip exchanges in the distributed
	// simulation; GossipDeliveries individual summary deliveries;
	// GossipBytes their cumulative payload.
	GossipRounds
	GossipDeliveries
	GossipBytes
	// NodeKills counts nodes removed by fault injection.
	NodeKills
	// CoalesceHits counts spawned children coalesced onto a live
	// in-flight twin instead of growing a duplicate subtree.
	CoalesceHits
	// ProvSummaryReads counts SUMDB summaries recorded into a query's
	// provenance read set (AnswerYes/AnswerNo/Answer hits under a
	// recording frame); ProvSummaryWrites counts summaries recorded
	// into a write set; ProvProcReads counts procedure-granularity
	// ForProc scans; ProvCoalesceReuse counts coalesce edges recorded
	// (a parent's dependency satisfied by an in-flight twin's subtree).
	// All four stay zero unless provenance collection is on.
	ProvSummaryReads
	ProvSummaryWrites
	ProvProcReads
	ProvCoalesceReuse

	numCounters
)

var counterNames = [numCounters]string{
	"queries_spawned", "queries_done", "queries_gcd", "queries_blocked",
	"wakes", "rewakes", "steals_attempted", "steals_succeeded",
	"idle_parks", "punch_invocations", "gossip_rounds",
	"gossip_deliveries", "gossip_bytes", "node_kills",
	"coalesce_hits", "prov_summary_reads", "prov_summary_writes",
	"prov_proc_reads", "prov_coalesce_reuse",
}

func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return "counter_unknown"
}

// histBuckets is the number of power-of-two histogram buckets: bucket b
// counts observations v with bits.Len64(v) == b, i.e. v in
// [2^(b-1), 2^b). Bucket 0 holds zeros; the last bucket is a catch-all.
const histBuckets = 40

// Histogram is a lock-free power-of-two histogram.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// Observe records one value (negatives are clamped to zero).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// HistBucket is one non-empty histogram bucket: Count observations with
// value <= Le (and greater than the previous bucket's bound).
type HistBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistSnapshot is a point-in-time copy of a Histogram.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Max     int64        `json:"max"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot returns a point-in-time copy of the histogram.
func (h *Histogram) Snapshot() HistSnapshot { return h.snapshot() }

func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
	for b := 0; b < histBuckets; b++ {
		if n := h.buckets[b].Load(); n > 0 {
			le := int64(0)
			if b > 0 {
				le = 1<<uint(b) - 1
			}
			s.Buckets = append(s.Buckets, HistBucket{Le: le, Count: n})
		}
	}
	return s
}

// workerCell is one worker's private counters. Cells are allocated once
// by EnsureWorkers before the pool starts, so the hot path is pure
// atomic adds.
type workerCell struct {
	punches  atomic.Int64
	busyCost atomic.Int64
	busyWall atomic.Int64 // nanoseconds
	steals   atomic.Int64
}

// Metrics is the engine metrics registry: atomic counters, punch
// histograms, and per-worker accounting. A nil *Metrics is fully
// disabled — every method is nil-receiver safe and costs one branch.
// All methods are safe for concurrent use.
type Metrics struct {
	counters  [numCounters]atomic.Int64
	punchCost Histogram
	punchWall Histogram
	coneSize  Histogram

	mu      sync.RWMutex
	workers []*workerCell
}

// NewMetrics returns an enabled, empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// Inc adds one to a counter.
func (m *Metrics) Inc(c Counter) {
	if m == nil {
		return
	}
	m.counters[c].Add(1)
}

// Add adds d to a counter.
func (m *Metrics) Add(c Counter, d int64) {
	if m == nil {
		return
	}
	m.counters[c].Add(d)
}

// Get reads a counter (0 on a nil registry).
func (m *Metrics) Get(c Counter) int64 {
	if m == nil {
		return 0
	}
	return m.counters[c].Load()
}

// EnsureWorkers grows the per-worker table to at least n cells. Engines
// call it once before their pool starts so ObservePunch never allocates.
func (m *Metrics) EnsureWorkers(n int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	for len(m.workers) < n {
		m.workers = append(m.workers, &workerCell{})
	}
	m.mu.Unlock()
}

func (m *Metrics) worker(i int) *workerCell {
	m.mu.RLock()
	var w *workerCell
	if i >= 0 && i < len(m.workers) {
		w = m.workers[i]
	}
	m.mu.RUnlock()
	return w
}

// ObservePunch records one completed PUNCH invocation: the global
// counters and histograms, and the worker's busy accounting.
func (m *Metrics) ObservePunch(worker int, cost int64, wall time.Duration) {
	if m == nil {
		return
	}
	m.counters[PunchInvocations].Add(1)
	m.punchCost.Observe(cost)
	m.punchWall.Observe(int64(wall))
	if w := m.worker(worker); w != nil {
		w.punches.Add(1)
		w.busyCost.Add(cost)
		w.busyWall.Add(int64(wall))
	}
}

// ObserveConeSize records one procedure's invalidation-cone size
// (procedure count) at provenance-assembly time; the distribution backs
// the bolt_prov_cone_size Prometheus histogram.
func (m *Metrics) ObserveConeSize(v int64) {
	if m == nil {
		return
	}
	m.coneSize.Observe(v)
}

// ObserveSteal records one successful steal for the thief's ledger (the
// global counters are updated separately via Inc).
func (m *Metrics) ObserveSteal(worker int) {
	if m == nil {
		return
	}
	if w := m.worker(worker); w != nil {
		w.steals.Add(1)
	}
}

// WorkerSnapshot is one worker's accounting at snapshot time.
type WorkerSnapshot struct {
	Worker     int   `json:"worker"`
	Punches    int64 `json:"punches"`
	BusyTicks  int64 `json:"busy_ticks"`
	BusyWallNs int64 `json:"busy_wall_ns"`
	Steals     int64 `json:"steals"`
}

// Snapshot is a point-in-time copy of a Metrics registry, attached to
// engine results and serialized by the CLIs.
type Snapshot struct {
	// Counters maps every registry counter name to its value; engines
	// additionally fold in summary-database traffic under sumdb_* keys.
	Counters map[string]int64 `json:"counters"`
	// PunchCost is the distribution of per-invocation abstract cost
	// (virtual ticks); PunchWallNs of wall-clock nanoseconds.
	PunchCost   HistSnapshot `json:"punch_cost_ticks"`
	PunchWallNs HistSnapshot `json:"punch_wall_ns"`
	// ProvConeSize is the distribution of per-procedure invalidation
	// cone sizes (empty unless provenance collection was on).
	ProvConeSize HistSnapshot `json:"prov_cone_size,omitempty"`
	// Workers is the per-worker accounting (utilization = BusyTicks /
	// MakespanTicks).
	Workers []WorkerSnapshot `json:"workers,omitempty"`
	// MakespanTicks is the run's final virtual time, filled by the
	// engine so per-worker utilization is computable from the snapshot
	// alone.
	MakespanTicks int64 `json:"makespan_ticks"`
}

// Snapshot returns a consistent copy of the registry, or nil on a nil
// registry (so Result.Metrics is nil exactly when metrics were off).
func (m *Metrics) Snapshot() *Snapshot {
	if m == nil {
		return nil
	}
	s := &Snapshot{
		Counters:     make(map[string]int64, int(numCounters)),
		PunchCost:    m.punchCost.snapshot(),
		PunchWallNs:  m.punchWall.snapshot(),
		ProvConeSize: m.coneSize.snapshot(),
	}
	for c := Counter(0); c < numCounters; c++ {
		s.Counters[c.String()] = m.counters[c].Load()
	}
	m.mu.RLock()
	for i, w := range m.workers {
		s.Workers = append(s.Workers, WorkerSnapshot{
			Worker:     i,
			Punches:    w.punches.Load(),
			BusyTicks:  w.busyCost.Load(),
			BusyWallNs: w.busyWall.Load(),
			Steals:     w.steals.Load(),
		})
	}
	m.mu.RUnlock()
	return s
}

// Flatten renders the snapshot as a single sorted-key-friendly map —
// the public API's metric form (counters plus histogram aggregates and
// worker count; per-bucket and per-worker detail stay on the Snapshot).
func (s *Snapshot) Flatten() map[string]int64 {
	if s == nil {
		return nil
	}
	out := make(map[string]int64, len(s.Counters)+8)
	for k, v := range s.Counters {
		out[k] = v
	}
	out["punch_cost_count"] = s.PunchCost.Count
	out["punch_cost_sum"] = s.PunchCost.Sum
	out["punch_cost_max"] = s.PunchCost.Max
	out["punch_wall_ns_sum"] = s.PunchWallNs.Sum
	out["punch_wall_ns_max"] = s.PunchWallNs.Max
	if s.ProvConeSize.Count > 0 {
		out["prov_cone_count"] = s.ProvConeSize.Count
		out["prov_cone_sum"] = s.ProvConeSize.Sum
		out["prov_cone_max"] = s.ProvConeSize.Max
	}
	out["makespan_ticks"] = s.MakespanTicks
	out["workers"] = int64(len(s.Workers))
	return out
}
