package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4): every registry counter as
// bolt_<name>_total, the per-worker ledger as labeled gauges, and the
// punch-cost/punch-wall histograms with cumulative le buckets. A nil
// snapshot renders nothing — an empty exposition is valid.
func WritePrometheus(w io.Writer, s *Snapshot) error {
	if s == nil {
		return nil
	}
	keys := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		name := "bolt_" + sanitizeMetricName(k) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[k]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE bolt_makespan_ticks gauge\nbolt_makespan_ticks %d\n", s.MakespanTicks); err != nil {
		return err
	}
	for _, ws := range s.Workers {
		if _, err := fmt.Fprintf(w,
			"bolt_worker_punches{worker=\"%d\"} %d\nbolt_worker_busy_ticks{worker=\"%d\"} %d\nbolt_worker_busy_wall_ns{worker=\"%d\"} %d\nbolt_worker_steals{worker=\"%d\"} %d\n",
			ws.Worker, ws.Punches, ws.Worker, ws.BusyTicks, ws.Worker, ws.BusyWallNs, ws.Worker, ws.Steals); err != nil {
			return err
		}
	}
	if err := writePromHist(w, "bolt_punch_cost_ticks", s.PunchCost); err != nil {
		return err
	}
	if err := writePromHist(w, "bolt_punch_wall_ns", s.PunchWallNs); err != nil {
		return err
	}
	if s.ProvConeSize.Count > 0 {
		return writePromHist(w, "bolt_prov_cone_size", s.ProvConeSize)
	}
	return nil
}

// writePromHist renders one histogram with Prometheus' cumulative
// bucket convention (each le bucket counts all observations <= le,
// ending in the mandatory +Inf bucket).
func writePromHist(w io.Writer, name string, h HistSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum int64
	for _, b := range h.Buckets {
		cum += b.Count
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b.Le, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
		name, h.Count, name, h.Sum, name, h.Count)
	return err
}

// sanitizeMetricName maps a registry key to a valid Prometheus metric
// name component.
func sanitizeMetricName(k string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		}
		return '_'
	}, k)
}

// MetricsHandler serves the registry in Prometheus text format; each
// request takes a fresh snapshot, so scraping a live run sees its
// counters move. A nil registry serves an empty (valid) exposition.
func MetricsHandler(m *Metrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, m.Snapshot())
	})
}
