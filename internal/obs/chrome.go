package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// chromeEvent is one record of the Chrome trace-event JSON format
// (loadable in Perfetto / chrome://tracing). Timestamps and durations
// are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTracer is a Tracer that renders the event stream as Chrome
// trace-event JSON: one process per node, one track (thread) per
// worker, one complete span per PUNCH invocation, and instant events
// for the rest of the query lifecycle. Safe for concurrent use.
type ChromeTracer struct {
	mu     sync.Mutex
	events []chromeEvent
	// open holds the pending punch-start per (node, worker) track until
	// its punch-end closes the span.
	open  map[[2]int]Event
	named map[[2]int]bool // thread metadata emitted
	procs map[int]bool    // process metadata emitted
	spans int
}

// NewChromeTracer returns an empty tracer.
func NewChromeTracer() *ChromeTracer {
	return &ChromeTracer{
		open:  map[[2]int]Event{},
		named: map[[2]int]bool{},
		procs: map[int]bool{},
	}
}

func us(d int64) float64 { return float64(d) / 1e3 } // ns → µs

// Event implements Tracer.
func (c *ChromeTracer) Event(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureTrack(ev.Node, ev.Worker)
	key := [2]int{ev.Node, ev.Worker}
	switch ev.Type {
	case EvPunchStart:
		c.open[key] = ev
		return
	case EvPunchEnd:
		start, ok := c.open[key]
		if !ok {
			start = ev // lone end: synthesize a zero-length span
		}
		delete(c.open, key)
		c.spans++
		c.events = append(c.events, chromeEvent{
			Name: ev.Proc,
			Cat:  "punch",
			Ph:   "X",
			Ts:   us(int64(start.Wall)),
			Dur:  us(int64(ev.Wall - start.Wall)),
			Pid:  ev.Node,
			Tid:  ev.Worker,
			Args: map[string]any{
				"query":       int64(ev.Query),
				"cost":        ev.Cost,
				"vtime_start": start.VTime,
				"vtime_end":   ev.VTime,
			},
		})
		return
	}
	args := map[string]any{"query": int64(ev.Query), "vtime": ev.VTime}
	if ev.Proc != "" {
		args["proc"] = ev.Proc
	}
	if ev.N != 0 {
		args["n"] = ev.N
	}
	c.events = append(c.events, chromeEvent{
		Name: ev.Type.String(),
		Cat:  "lifecycle",
		Ph:   "i",
		S:    "t",
		Ts:   us(int64(ev.Wall)),
		Pid:  ev.Node,
		Tid:  ev.Worker,
		Args: args,
	})
}

// ensureTrack emits the process/thread naming metadata the first time a
// (node, worker) pair appears. Called with mu held.
func (c *ChromeTracer) ensureTrack(node, worker int) {
	if !c.procs[node] {
		c.procs[node] = true
		c.events = append(c.events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: node,
			Args: map[string]any{"name": fmt.Sprintf("node %d", node)},
		})
	}
	key := [2]int{node, worker}
	if !c.named[key] {
		c.named[key] = true
		c.events = append(c.events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: node, Tid: worker,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", worker)},
		})
	}
}

// Spans returns the number of completed PUNCH spans recorded so far.
func (c *ChromeTracer) Spans() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.spans
}

// Export serializes the trace as a JSON array ordered by timestamp.
// The document loads directly in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
func (c *ChromeTracer) Export(w io.Writer) error {
	c.mu.Lock()
	evs := make([]chromeEvent, len(c.events))
	copy(evs, c.events)
	c.mu.Unlock()
	sort.SliceStable(evs, func(i, j int) bool {
		// Metadata first, then by time.
		if (evs[i].Ph == "M") != (evs[j].Ph == "M") {
			return evs[i].Ph == "M"
		}
		return evs[i].Ts < evs[j].Ts
	})
	data, err := json.Marshal(evs)
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// ValidateChromeTrace checks that data is a parseable Chrome trace-event
// JSON array whose complete ("X") spans are well-nested per track: on
// any one (pid, tid) track, two spans either do not overlap or one
// contains the other. It returns the number of spans checked.
func ValidateChromeTrace(data []byte) (int, error) {
	var evs []chromeEvent
	if err := json.Unmarshal(data, &evs); err != nil {
		return 0, fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	type span struct{ start, end float64 }
	tracks := map[[2]int][]span{}
	spans := 0
	for i, ev := range evs {
		switch ev.Ph {
		case "X":
			if ev.Ts < 0 || ev.Dur < 0 {
				return spans, fmt.Errorf("obs: event %d has negative ts/dur", i)
			}
			key := [2]int{ev.Pid, ev.Tid}
			tracks[key] = append(tracks[key], span{ev.Ts, ev.Ts + ev.Dur})
			spans++
		case "i", "M", "I":
			// Instants and metadata need no nesting check.
		case "":
			return spans, fmt.Errorf("obs: event %d has no phase", i)
		}
	}
	const eps = 1e-9
	for key, ss := range tracks {
		sort.Slice(ss, func(i, j int) bool {
			if ss[i].start != ss[j].start {
				return ss[i].start < ss[j].start
			}
			return ss[i].end > ss[j].end // enclosing span first
		})
		var stack []span
		for _, s := range ss {
			for len(stack) > 0 && stack[len(stack)-1].end <= s.start+eps {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && s.end > stack[len(stack)-1].end+eps {
				return spans, fmt.Errorf(
					"obs: track pid=%d tid=%d: span [%g,%g] partially overlaps [%g,%g]",
					key[0], key[1], s.start, s.end,
					stack[len(stack)-1].start, stack[len(stack)-1].end)
			}
			stack = append(stack, s)
		}
	}
	return spans, nil
}
