// Live engine introspection: the state a running engine publishes so a
// human (or the stall watchdog) can ask "what is the analysis doing
// right now?" without waiting for the run to end.
//
// The design splits responsibilities three ways:
//
//   - LiveState is the engine-side write surface: a fixed set of atomics
//     the engines update at their existing safe points (the streaming
//     engine under its scheduler mutex, the barrier and distributed
//     engines at stage/round boundaries). A nil *LiveState is fully
//     disabled — every method is nil-receiver safe and costs one branch,
//     preserving the package's zero-cost-when-disabled contract.
//
//   - StateSnapshot is the read surface: a plain JSON-serializable
//     struct assembled on demand from the atomics plus whatever
//     concurrent-safe stats providers the engine captured (SUMDB shard
//     stats, solver counters).
//
//   - Probe is the stable handle between them: callers keep one Probe
//     across runs, engines Attach a snapshot function at run start and
//     Detach (freezing a final snapshot) at run end.
package obs

import (
	"sync/atomic"
	"time"
)

// RunPhase describes what a Probe's engine is doing.
type RunPhase int32

// Run phases, in lifecycle order.
const (
	// RunIdle: no run has been attached yet.
	RunIdle RunPhase = iota
	// RunActive: a run is attached and in flight.
	RunActive
	// RunFinished: at least one run completed and none is in flight.
	RunFinished
)

func (p RunPhase) String() string {
	switch p {
	case RunIdle:
		return "idle"
	case RunActive:
		return "running"
	case RunFinished:
		return "finished"
	}
	return "unknown"
}

// WorkerPhase is one worker's instantaneous scheduling state.
type WorkerPhase int32

// Worker phases.
const (
	// WorkerIdle: between PUNCH invocations.
	WorkerIdle WorkerPhase = iota
	// WorkerRunning: inside a PUNCH invocation.
	WorkerRunning
	// WorkerStealing: scanning other workers' deques for work.
	WorkerStealing
	// WorkerParked: found no runnable work and parked.
	WorkerParked
)

func (p WorkerPhase) String() string {
	switch p {
	case WorkerIdle:
		return "idle"
	case WorkerRunning:
		return "running"
	case WorkerStealing:
		return "stealing"
	case WorkerParked:
		return "parked"
	}
	return "unknown"
}

// workerLive is one worker's live cell. proc holds the procedure name of
// the current (or last) PUNCH as an atomic.Value of string.
type workerLive struct {
	phase   atomic.Int32
	query   atomic.Int64
	punches atomic.Int64
	proc    atomic.Value
}

// nodeLive is one distributed-simulation node's live cell.
type nodeLive struct {
	dead      atomic.Bool
	live      atomic.Int64
	ready     atomic.Int64
	blocked   atomic.Int64
	summaries atomic.Int64
	backlog   atomic.Int64
	busyTicks atomic.Int64
}

// LiveState is the write surface the engines publish live run state
// through. All methods are nil-receiver safe and lock-free.
type LiveState struct {
	engine         string
	epoch          time.Time
	workersPerNode int

	vtime      atomic.Int64
	iterations atomic.Int64

	live     atomic.Int64
	ready    atomic.Int64
	blocked  atomic.Int64
	running  atomic.Int64
	spawned  atomic.Int64
	done     atomic.Int64
	maxDepth atomic.Int64

	inflightKeys atomic.Int64
	waiterEdges  atomic.Int64
	coalesced    atomic.Int64

	workers []workerLive
	nodes   []nodeLive
}

// NewLiveState returns the live cell set for a run: engine is the
// engine name ("barrier", "async", "dist"), workers the worker-slot
// count, nodes the cluster size (0 for the single-machine engines), and
// epoch the run's wall-clock start.
func NewLiveState(engine string, workers, nodes int, epoch time.Time) *LiveState {
	if workers < 0 {
		workers = 0
	}
	ls := &LiveState{
		engine:  engine,
		epoch:   epoch,
		workers: make([]workerLive, workers),
	}
	if nodes > 0 {
		ls.nodes = make([]nodeLive, nodes)
		ls.workersPerNode = workers / nodes
	}
	return ls
}

// Tick publishes the virtual clock and the iteration/event/round count.
func (ls *LiveState) Tick(vtime, iterations int64) {
	if ls == nil {
		return
	}
	ls.vtime.Store(vtime)
	ls.iterations.Store(iterations)
}

// SetForest publishes the query-forest occupancy gauges. Negative
// values (possible when a caller derives blocked = live - ready -
// running from slightly skewed reads) are clamped to zero.
func (ls *LiveState) SetForest(live, ready, blocked, running int64) {
	if ls == nil {
		return
	}
	ls.live.Store(clampNonNeg(live))
	ls.ready.Store(clampNonNeg(ready))
	ls.blocked.Store(clampNonNeg(blocked))
	ls.running.Store(clampNonNeg(running))
}

// SetProgress publishes the monotone progress counters: queries ever
// spawned and queries answered.
func (ls *LiveState) SetProgress(spawned, done int64) {
	if ls == nil {
		return
	}
	ls.spawned.Store(spawned)
	ls.done.Store(done)
}

// ObserveDepth folds one query's tree depth into the max-depth gauge.
func (ls *LiveState) ObserveDepth(d int) {
	if ls == nil {
		return
	}
	v := int64(d)
	for {
		old := ls.maxDepth.Load()
		if v <= old || ls.maxDepth.CompareAndSwap(old, v) {
			return
		}
	}
}

// SetCoalescer publishes the in-flight index size, the registered
// waiter-edge count, and the cumulative coalesce hits.
func (ls *LiveState) SetCoalescer(inflightKeys, waiterEdges, hits int64) {
	if ls == nil {
		return
	}
	ls.inflightKeys.Store(inflightKeys)
	ls.waiterEdges.Store(waiterEdges)
	ls.coalesced.Store(hits)
}

func (ls *LiveState) worker(w int) *workerLive {
	if ls == nil || w < 0 || w >= len(ls.workers) {
		return nil
	}
	return &ls.workers[w]
}

// WorkerRunning marks worker w inside a PUNCH invocation on the given
// procedure and query.
func (ls *LiveState) WorkerRunning(w int, proc string, query int64) {
	c := ls.worker(w)
	if c == nil {
		return
	}
	c.proc.Store(proc)
	c.query.Store(query)
	c.phase.Store(int32(WorkerRunning))
}

// WorkerFinished marks worker w done with its PUNCH invocation: the
// punch counter advances and the phase returns to idle. The proc/query
// cells keep their last value so a snapshot still says what the worker
// worked on most recently.
func (ls *LiveState) WorkerFinished(w int) {
	c := ls.worker(w)
	if c == nil {
		return
	}
	c.punches.Add(1)
	c.phase.Store(int32(WorkerIdle))
}

// WorkerStealing marks worker w scanning for work to steal.
func (ls *LiveState) WorkerStealing(w int) {
	if c := ls.worker(w); c != nil {
		c.phase.Store(int32(WorkerStealing))
	}
}

// WorkerParked marks worker w parked with no runnable work.
func (ls *LiveState) WorkerParked(w int) {
	if c := ls.worker(w); c != nil {
		c.phase.Store(int32(WorkerParked))
	}
}

func (ls *LiveState) node(n int) *nodeLive {
	if ls == nil || n < 0 || n >= len(ls.nodes) {
		return nil
	}
	return &ls.nodes[n]
}

// NodeSet publishes one node's occupancy gauges (distributed engine,
// round boundaries).
func (ls *LiveState) NodeSet(n int, live, ready, blocked, summaries int64) {
	c := ls.node(n)
	if c == nil {
		return
	}
	c.live.Store(clampNonNeg(live))
	c.ready.Store(clampNonNeg(ready))
	c.blocked.Store(clampNonNeg(blocked))
	c.summaries.Store(summaries)
}

// NodeAddBusy charges cost virtual ticks of MAP work to node n's busy
// ledger (the per-node skew input).
func (ls *LiveState) NodeAddBusy(n int, cost int64) {
	if c := ls.node(n); c != nil {
		c.busyTicks.Add(cost)
	}
}

// NodeSetBacklog publishes node n's gossip backlog: summary deliveries
// deferred (by injected loss) at the most recent exchange.
func (ls *LiveState) NodeSetBacklog(n int, backlog int64) {
	if c := ls.node(n); c != nil {
		c.backlog.Store(backlog)
	}
}

// NodeDead marks node n killed by fault injection.
func (ls *LiveState) NodeDead(n int) {
	if c := ls.node(n); c != nil {
		c.dead.Store(true)
	}
}

func clampNonNeg(v int64) int64 {
	if v < 0 {
		return 0
	}
	return v
}

// ForestState is the query-forest occupancy part of a snapshot.
type ForestState struct {
	// Live is the number of queries currently in the forest; Ready,
	// Blocked and Running split them by scheduling state.
	Live    int64 `json:"live"`
	Ready   int64 `json:"ready"`
	Blocked int64 `json:"blocked"`
	Running int64 `json:"running"`
	// Spawned and Done are the monotone progress counters; MaxDepth the
	// deepest tree depth observed so far.
	Spawned  int64 `json:"spawned"`
	Done     int64 `json:"done"`
	MaxDepth int64 `json:"max_depth"`
}

// CoalescerState is the in-flight coalescer part of a snapshot.
type CoalescerState struct {
	// InflightKeys is the size of the canonical-question index;
	// WaiterEdges the number of coalesced waiter registrations currently
	// live; Hits the cumulative coalesce count.
	InflightKeys int64 `json:"inflight_keys"`
	WaiterEdges  int64 `json:"waiter_edges"`
	Hits         int64 `json:"hits"`
}

// WorkerState is one worker's instantaneous state in a snapshot.
type WorkerState struct {
	Worker int `json:"worker"`
	// Node is the owning node in the distributed simulation (0 for the
	// single-machine engines).
	Node  int    `json:"node"`
	Phase string `json:"phase"`
	// Proc and Query identify the current (phase "running") or most
	// recent PUNCH invocation; Punches counts completed invocations.
	Proc    string `json:"proc,omitempty"`
	Query   int64  `json:"query"`
	Punches int64  `json:"punches"`
}

// NodeState is one distributed-simulation node's state in a snapshot.
type NodeState struct {
	Node    int   `json:"node"`
	Dead    bool  `json:"dead,omitempty"`
	Live    int64 `json:"live"`
	Ready   int64 `json:"ready"`
	Blocked int64 `json:"blocked"`
	// Summaries is the node's summary-database size; GossipBacklog the
	// deliveries deferred at the latest gossip exchange; BusyTicks the
	// node's cumulative MAP makespan.
	Summaries     int64 `json:"summaries"`
	GossipBacklog int64 `json:"gossip_backlog"`
	BusyTicks     int64 `json:"busy_ticks"`
}

// SumDBState is the summary database's live view: totals plus the
// per-shard occupancy the striping exists for. In the distributed
// engine the view aggregates every node's database, so Summaries counts
// gossip replicas too.
type SumDBState struct {
	Summaries int64        `json:"summaries"`
	YesHits   int64        `json:"yes_hits"`
	NoHits    int64        `json:"no_hits"`
	Misses    int64        `json:"misses"`
	MemoHits  int64        `json:"memo_hits"`
	Shards    []ShardState `json:"shards,omitempty"`
}

// ShardState is one SUMDB lock stripe's live occupancy and traffic.
type ShardState struct {
	Shard     int   `json:"shard"`
	Procs     int   `json:"procs"`
	Summaries int   `json:"summaries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
}

// SolverState is the solver's mid-run accounting: entailment-cache and
// DPLL counters sampled from the live atomics.
type SolverState struct {
	SatCalls          int64 `json:"sat_calls"`
	TheoryChecks      int64 `json:"theory_checks"`
	DPLLConflicts     int64 `json:"dpll_conflicts"`
	LearnedClauses    int64 `json:"learned_clauses"`
	Propagations      int64 `json:"propagations"`
	EntailCacheHits   int64 `json:"entail_cache_hits"`
	EntailCacheMisses int64 `json:"entail_cache_misses"`
	EntailSynHits     int64 `json:"entail_syn_hits"`
	HashConsHits      int64 `json:"hashcons_hits"`
}

// StateSnapshot is one moment of a run, assembled for JSON. Gauges are
// read individually from atomics, so a snapshot is racy-but-monotone
// rather than a consistent cut — see DESIGN.md's snapshot-consistency
// notes for which fields are exact.
type StateSnapshot struct {
	Engine string `json:"engine,omitempty"`
	// Phase is the probe's run phase ("idle", "running", "finished");
	// Runs counts completed runs on the same probe.
	Phase string `json:"phase"`
	Runs  int64  `json:"runs,omitempty"`
	// ElapsedNs is wall-clock time since the run started.
	ElapsedNs  int64          `json:"elapsed_ns,omitempty"`
	VTime      int64          `json:"vtime"`
	Iterations int64          `json:"iterations"`
	Forest     ForestState    `json:"forest"`
	Coalescer  CoalescerState `json:"coalescer"`
	Workers    []WorkerState  `json:"workers,omitempty"`
	// Nodes and NodeSkew (max/avg busy ticks over live nodes) are
	// populated by the distributed engine only.
	Nodes    []NodeState  `json:"nodes,omitempty"`
	NodeSkew float64      `json:"node_skew,omitempty"`
	SumDB    *SumDBState  `json:"sumdb,omitempty"`
	Solver   *SolverState `json:"solver,omitempty"`
}

// TotalPunches sums the per-worker punch counters — one of the progress
// signals the watchdog watches.
func (s *StateSnapshot) TotalPunches() int64 {
	if s == nil {
		return 0
	}
	var n int64
	for _, w := range s.Workers {
		n += w.Punches
	}
	return n
}

// Snapshot assembles the atomics into a StateSnapshot (nil on a nil
// receiver). Engine-specific extras (SumDB, Solver) are layered on by
// the snapshot function the engine registers with Probe.Attach.
func (ls *LiveState) Snapshot() *StateSnapshot {
	if ls == nil {
		return nil
	}
	s := &StateSnapshot{
		Engine:     ls.engine,
		ElapsedNs:  int64(time.Since(ls.epoch)),
		VTime:      ls.vtime.Load(),
		Iterations: ls.iterations.Load(),
		Forest: ForestState{
			Live:     ls.live.Load(),
			Ready:    ls.ready.Load(),
			Blocked:  ls.blocked.Load(),
			Running:  ls.running.Load(),
			Spawned:  ls.spawned.Load(),
			Done:     ls.done.Load(),
			MaxDepth: ls.maxDepth.Load(),
		},
		Coalescer: CoalescerState{
			InflightKeys: ls.inflightKeys.Load(),
			WaiterEdges:  ls.waiterEdges.Load(),
			Hits:         ls.coalesced.Load(),
		},
	}
	s.Workers = make([]WorkerState, len(ls.workers))
	for i := range ls.workers {
		c := &ls.workers[i]
		w := WorkerState{
			Worker:  i,
			Phase:   WorkerPhase(c.phase.Load()).String(),
			Query:   c.query.Load(),
			Punches: c.punches.Load(),
		}
		if p, ok := c.proc.Load().(string); ok {
			w.Proc = p
		}
		if ls.workersPerNode > 0 {
			w.Node = i / ls.workersPerNode
		}
		s.Workers[i] = w
	}
	if len(ls.nodes) > 0 {
		s.Nodes = make([]NodeState, len(ls.nodes))
		var busySum, busyMax int64
		liveNodes := 0
		for i := range ls.nodes {
			c := &ls.nodes[i]
			n := NodeState{
				Node:          i,
				Dead:          c.dead.Load(),
				Live:          c.live.Load(),
				Ready:         c.ready.Load(),
				Blocked:       c.blocked.Load(),
				Summaries:     c.summaries.Load(),
				GossipBacklog: c.backlog.Load(),
				BusyTicks:     c.busyTicks.Load(),
			}
			s.Nodes[i] = n
			if !n.Dead {
				liveNodes++
				busySum += n.BusyTicks
				if n.BusyTicks > busyMax {
					busyMax = n.BusyTicks
				}
			}
		}
		if liveNodes > 0 && busySum > 0 {
			s.NodeSkew = float64(busyMax) / (float64(busySum) / float64(liveNodes))
		}
	}
	return s
}

// Probe is the stable live-introspection handle: callers (the HTTP
// debug server, the watchdog, bolt.Inspector) keep one Probe for the
// life of the process while engines attach and detach per run. All
// methods are nil-receiver safe and safe for concurrent use.
type Probe struct {
	fn   atomic.Pointer[func() *StateSnapshot]
	last atomic.Pointer[StateSnapshot]
	runs atomic.Int64
}

// Attach registers the snapshot function of a starting run. The
// function must be safe to call from any goroutine at any time until
// well after Detach (late readers may still hold it briefly).
func (p *Probe) Attach(fn func() *StateSnapshot) {
	if p == nil || fn == nil {
		return
	}
	p.fn.Store(&fn)
}

// Detach ends the attached run: one final snapshot is frozen (served to
// later State calls with phase "finished") and the run counter
// advances. Engines call it when the run has fully stopped.
func (p *Probe) Detach() {
	if p == nil {
		return
	}
	fnp := p.fn.Swap(nil)
	if fnp == nil {
		return
	}
	if s := (*fnp)(); s != nil {
		s.Phase = RunFinished.String()
		p.last.Store(s)
	}
	p.runs.Add(1)
}

// State samples the probe: a fresh snapshot of the attached run, the
// frozen final snapshot of the last completed run, or nil when nothing
// ever ran.
func (p *Probe) State() *StateSnapshot {
	if p == nil {
		return nil
	}
	if fnp := p.fn.Load(); fnp != nil {
		if s := (*fnp)(); s != nil {
			s.Phase = RunActive.String()
			s.Runs = p.runs.Load()
			return s
		}
	}
	if last := p.last.Load(); last != nil {
		s := *last
		s.Runs = p.runs.Load()
		return &s
	}
	return nil
}

// Phase reports the probe's run phase without building a snapshot.
func (p *Probe) Phase() RunPhase {
	if p == nil {
		return RunIdle
	}
	if p.fn.Load() != nil {
		return RunActive
	}
	if p.runs.Load() > 0 {
		return RunFinished
	}
	return RunIdle
}

// Runs returns how many runs have completed on this probe.
func (p *Probe) Runs() int64 {
	if p == nil {
		return 0
	}
	return p.runs.Load()
}
