package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety: a nil registry and a nil tracer must be inert — every
// method is a no-op rather than a panic, since the engines call them
// unconditionally behind one branch.
func TestNilSafety(t *testing.T) {
	var m *Metrics
	m.Inc(QueriesSpawned)
	m.Add(QueriesDone, 7)
	m.EnsureWorkers(8)
	m.ObservePunch(3, 100, time.Millisecond)
	m.ObserveSteal(2)
	if got := m.Get(QueriesSpawned); got != 0 {
		t.Errorf("nil registry Get = %d, want 0", got)
	}
	if m.Snapshot() != nil {
		t.Error("nil registry Snapshot != nil")
	}
	var s *Snapshot
	if s.Flatten() != nil {
		t.Error("nil snapshot Flatten != nil")
	}
}

func TestCountersAndWorkers(t *testing.T) {
	m := NewMetrics()
	m.EnsureWorkers(4)
	m.Inc(QueriesSpawned)
	m.Add(QueriesSpawned, 2)
	m.Inc(StealsSucceeded)
	m.ObservePunch(1, 50, 2*time.Microsecond)
	m.ObservePunch(1, 70, 3*time.Microsecond)
	m.ObservePunch(3, 10, time.Microsecond)
	m.ObserveSteal(3)
	// Out-of-range workers are dropped, not panicked on.
	m.ObservePunch(99, 1, 0)
	m.ObserveSteal(-1)

	snap := m.Snapshot()
	if got := snap.Counters["queries_spawned"]; got != 3 {
		t.Errorf("queries_spawned = %d, want 3", got)
	}
	if got := snap.Counters["punch_invocations"]; got != 4 {
		t.Errorf("punch_invocations = %d, want 4", got)
	}
	if len(snap.Workers) != 4 {
		t.Fatalf("workers = %d, want 4", len(snap.Workers))
	}
	w1 := snap.Workers[1]
	if w1.Punches != 2 || w1.BusyTicks != 120 {
		t.Errorf("worker 1 = %+v, want 2 punches / 120 busy ticks", w1)
	}
	if snap.Workers[3].Steals != 1 {
		t.Errorf("worker 3 steals = %d, want 1", snap.Workers[3].Steals)
	}
	flat := snap.Flatten()
	if flat["punch_cost_sum"] != 131 {
		t.Errorf("punch_cost_sum = %d, want 131", flat["punch_cost_sum"])
	}
	if flat["workers"] != 4 {
		t.Errorf("workers = %d, want 4", flat["workers"])
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 1000, -5} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	if s.Sum != 1006 {
		t.Errorf("sum = %d, want 1006", s.Sum)
	}
	if s.Max != 1000 {
		t.Errorf("max = %d, want 1000", s.Max)
	}
	var bucketTotal int64
	for _, b := range s.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != 6 {
		t.Errorf("bucket total = %d, want 6", bucketTotal)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				h.Observe(i)
			}
		}()
	}
	wg.Wait()
	if got := h.count.Load(); got != 8000 {
		t.Errorf("count = %d, want 8000", got)
	}
	if got := h.max.Load(); got != 999 {
		t.Errorf("max = %d, want 999", got)
	}
}

// TestChromeTracerSpans: punch-start/punch-end pairs become complete
// spans, everything else becomes instants, and the serialized document
// validates.
func TestChromeTracerSpans(t *testing.T) {
	c := NewChromeTracer()
	c.Event(Event{Type: EvSpawn, Query: 1, Proc: "main", Wall: 0})
	c.Event(Event{Type: EvPunchStart, Query: 1, Proc: "main", Worker: 0, Wall: 10 * time.Microsecond})
	c.Event(Event{Type: EvPunchEnd, Query: 1, Proc: "main", Worker: 0, Cost: 5, Wall: 30 * time.Microsecond})
	c.Event(Event{Type: EvPunchStart, Query: 2, Proc: "helper", Worker: 1, Node: 1, Wall: 12 * time.Microsecond})
	c.Event(Event{Type: EvPunchEnd, Query: 2, Proc: "helper", Worker: 1, Node: 1, Cost: 3, Wall: 22 * time.Microsecond})
	c.Event(Event{Type: EvDone, Query: 1, Proc: "main", Wall: 31 * time.Microsecond})
	if c.Spans() != 2 {
		t.Errorf("spans = %d, want 2", c.Spans())
	}
	var buf bytes.Buffer
	if err := c.Export(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	if n != 2 {
		t.Errorf("validated spans = %d, want 2", n)
	}
	out := buf.String()
	for _, want := range []string{`"process_name"`, `"thread_name"`, `"ph":"X"`, `"done"`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %s", want)
		}
	}
	// The document must be a plain JSON array.
	var generic []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &generic); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
}

// TestChromeTracerLoneEnd: an end without a start synthesizes a
// zero-length span instead of corrupting the document.
func TestChromeTracerLoneEnd(t *testing.T) {
	c := NewChromeTracer()
	c.Event(Event{Type: EvPunchEnd, Query: 9, Proc: "p", Wall: 5 * time.Microsecond})
	if c.Spans() != 1 {
		t.Errorf("spans = %d, want 1", c.Spans())
	}
	var buf bytes.Buffer
	if err := c.Export(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Errorf("validate: %v", err)
	}
}

// TestValidateRejectsOverlap: partially overlapping spans on one track
// are a malformed trace and must be rejected.
func TestValidateRejectsOverlap(t *testing.T) {
	doc := `[
		{"name":"a","ph":"X","ts":0,"dur":10,"pid":0,"tid":0},
		{"name":"b","ph":"X","ts":5,"dur":10,"pid":0,"tid":0}
	]`
	if _, err := ValidateChromeTrace([]byte(doc)); err == nil {
		t.Error("overlapping spans validated, want error")
	}
	// The same spans on different tracks are fine.
	doc2 := `[
		{"name":"a","ph":"X","ts":0,"dur":10,"pid":0,"tid":0},
		{"name":"b","ph":"X","ts":5,"dur":10,"pid":0,"tid":1}
	]`
	if _, err := ValidateChromeTrace([]byte(doc2)); err != nil {
		t.Errorf("disjoint tracks rejected: %v", err)
	}
	if _, err := ValidateChromeTrace([]byte("not json")); err == nil {
		t.Error("garbage validated, want error")
	}
}

func TestEventTypeNames(t *testing.T) {
	for ty := EventType(0); ty < numEventTypes; ty++ {
		if s := ty.String(); s == "" || strings.HasPrefix(s, "EventType(") {
			t.Errorf("event type %d has no name", ty)
		}
	}
	for c := Counter(0); c < numCounters; c++ {
		if s := c.String(); s == "" || s == "counter_unknown" {
			t.Errorf("counter %d has no name", c)
		}
	}
}

func TestRecording(t *testing.T) {
	var r Recording
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Event(Event{Type: EvSpawn, Worker: g})
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 400 {
		t.Errorf("len = %d, want 400", r.Len())
	}
	evs := r.Events()
	evs[0].Worker = 99 // the returned slice is a copy
	if r.Events()[0].Worker == 99 {
		t.Error("Events returned the internal slice, not a copy")
	}
}
