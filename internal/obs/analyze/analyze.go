// Package analyze is the offline trace-analysis engine: it consumes a
// run's query-lifecycle event stream (an obs.Recording, or a JSONL file
// written by obs.JSONLTracer) and reconstructs the query-causality DAG,
// then derives the run's critical path, its work/span scalability
// bounds, and blocking/straggler attribution.
//
// Causality rules. Each PUNCH invocation (a punch-start/punch-end pair
// on one (node, worker) track) becomes one span node. Span B depends on
// span A when:
//
//   - sequence: A and B are consecutive slices of the same query (a
//     slice cannot start before the previous slice of its query ended);
//   - spawn: B is the first slice of a query whose spawn event was
//     emitted by A's query while A was its latest completed slice (a
//     child cannot run before the parent slice that created it);
//   - wake: B is the slice a blocked query ran after a wake, and the
//     wake was triggered by a child whose completing slice was A (a
//     parent cannot resume before the child answer that woke it).
//
// The span of the DAG — the cost-weighted longest dependency chain — is
// the run's critical path: no schedule, at any worker count, can finish
// in less virtual time. Total work over span is therefore the maximum
// theoretical speedup, and the classic scheduling bounds
//
//	max(span, work/p)  <=  T_p  <=  span + (work-span)/p
//
// turn the trace into a what-if model for the paper's thread-throttle
// study (§5): the lower bound is what a perfectly balanced scheduler
// achieves, the upper bound is Brent/greedy list scheduling.
package analyze

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/query"
)

// Span is one PUNCH invocation in the reconstructed DAG.
type Span struct {
	Query  query.ID `json:"query"`
	Proc   string   `json:"proc"`
	Node   int      `json:"node"`
	Worker int      `json:"worker"`
	// Slice is this span's ordinal among its query's spans (0-based).
	Slice int `json:"slice"`
	// StartVTime and EndVTime are the engine's virtual clock at the
	// punch-start and punch-end events; Cost is the invocation's abstract
	// cost (the DAG edge weight).
	StartVTime int64 `json:"start_vtime"`
	EndVTime   int64 `json:"end_vtime"`
	Cost       int64 `json:"cost"`

	// finish is the earliest-finish time of this span under the DAG's
	// precedence (critical-path recurrence); bestDep the dependency that
	// realizes it (-1 = none).
	finish  int64
	bestDep int
}

// Analyze reconstructs the causality DAG from an event stream in
// arrival order and derives the full report. The stream must come from
// one run; an empty stream yields an error.
func Analyze(events []obs.Event) (*Report, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("analyze: empty event stream")
	}
	b := &builder{
		open:          map[[2]int]obs.Event{},
		lastSpan:      map[query.ID]int{},
		pending:       map[query.ID][]int{},
		parent:        map[query.ID]query.ID{},
		slices:        map[query.ID]int{},
		lastChildDone: map[query.ID]int{},
		blockAt:       map[query.ID]int64{},
		blockedTotal:  map[query.ID]int64{},
		blockedProc:   map[query.ID]string{},
		costByQuery:   map[query.ID]int64{},
		workers:       map[[2]int]*WorkerProfile{},
		nodes:         map[int]*NodeProfile{},
	}
	for _, ev := range events {
		b.feed(ev)
	}
	return b.report(len(events))
}

// builder accumulates the DAG while replaying the stream.
type builder struct {
	spans []Span
	// open holds the pending punch-start per (node, worker) track.
	open map[[2]int]obs.Event
	// lastSpan is each query's latest completed span index.
	lastSpan map[query.ID]int
	// pending collects the cross-query dependencies (spawn, wake) of each
	// query's next span.
	pending map[query.ID][]int
	parent  map[query.ID]query.ID
	slices  map[query.ID]int
	// lastChildDone is the span index of the most recent completed child
	// of each query — the wake edge's source.
	lastChildDone map[query.ID]int

	blockAt      map[query.ID]int64
	blockedTotal map[query.ID]int64
	blockedProc  map[query.ID]string

	// costByQuery accumulates each query's total PUNCH cost; coalesce
	// events consult it at report time to attribute the duplicate
	// subtree work that coalescing avoided (the twin's total cost is a
	// lower bound on what the dropped duplicate would have re-spent).
	costByQuery   map[query.ID]int64
	coalesceTwins []query.ID

	workers map[[2]int]*WorkerProfile
	nodes   map[int]*NodeProfile

	spawns, dones, gcd, steals, coalesces int64
	maxVTime                              int64
	critical                              int // span index with the max finish (-1 until set)
}

func (b *builder) node(n int) *NodeProfile {
	np := b.nodes[n]
	if np == nil {
		np = &NodeProfile{Node: n}
		b.nodes[n] = np
	}
	return np
}

func (b *builder) feed(ev obs.Event) {
	if ev.VTime > b.maxVTime {
		b.maxVTime = ev.VTime
	}
	key := [2]int{ev.Node, ev.Worker}
	switch ev.Type {
	case obs.EvSpawn:
		b.spawns++
		b.parent[ev.Query] = ev.Parent
		if ps, ok := b.lastSpan[ev.Parent]; ok {
			b.pending[ev.Query] = append(b.pending[ev.Query], ps)
		}
	case obs.EvPunchStart:
		b.open[key] = ev
	case obs.EvPunchEnd:
		start, ok := b.open[key]
		if !ok {
			start = ev // lone end: synthesize an instant start
		}
		delete(b.open, key)
		b.addSpan(start, ev)
	case obs.EvBlock:
		b.blockAt[ev.Query] = ev.VTime
		b.blockedProc[ev.Query] = ev.Proc
	case obs.EvWake:
		if at, ok := b.blockAt[ev.Query]; ok {
			if d := ev.VTime - at; d > 0 {
				b.blockedTotal[ev.Query] += d
			}
			delete(b.blockAt, ev.Query)
		}
		if cd, ok := b.lastChildDone[ev.Query]; ok {
			b.pending[ev.Query] = append(b.pending[ev.Query], cd)
		}
	case obs.EvDone:
		b.dones++
		if s, ok := b.lastSpan[ev.Query]; ok {
			if p, ok := b.parent[ev.Query]; ok && p != query.NoParent {
				b.lastChildDone[p] = s
			}
		}
	case obs.EvSteal:
		b.steals++
		if w := b.workers[key]; w != nil {
			w.Steals++
		} else {
			wp := &WorkerProfile{Node: ev.Node, Worker: ev.Worker, Steals: 1, FirstStart: -1}
			b.workers[key] = wp
		}
	case obs.EvGC:
		b.gcd += ev.N
	case obs.EvCoalesce:
		b.coalesces++
		b.coalesceTwins = append(b.coalesceTwins, query.ID(ev.N))
	case obs.EvGossipSend:
		np := b.node(ev.Node)
		np.GossipSends++
		np.GossipBytes += ev.N
	case obs.EvGossipRecv:
		np := b.node(ev.Node)
		np.GossipRecvs++
		np.GossipBytes += ev.N
	case obs.EvNodeKill:
		b.node(ev.Node).Killed = true
	}
}

// addSpan closes one punch-start/punch-end pair into a DAG node and
// runs the earliest-finish recurrence over its dependencies.
func (b *builder) addSpan(start, end obs.Event) {
	idx := len(b.spans)
	sp := Span{
		Query:      end.Query,
		Proc:       end.Proc,
		Node:       end.Node,
		Worker:     end.Worker,
		Slice:      b.slices[end.Query],
		StartVTime: start.VTime,
		EndVTime:   end.VTime,
		Cost:       end.Cost,
		bestDep:    -1,
	}
	b.slices[end.Query]++
	b.costByQuery[end.Query] += sp.Cost

	consider := func(dep int) {
		if dep < 0 || dep >= idx {
			return
		}
		if f := b.spans[dep].finish; sp.bestDep == -1 || f > b.spans[sp.bestDep].finish {
			sp.bestDep = dep
		}
	}
	if prev, ok := b.lastSpan[end.Query]; ok {
		consider(prev)
	}
	for _, dep := range b.pending[end.Query] {
		consider(dep)
	}
	delete(b.pending, end.Query)

	sp.finish = sp.Cost
	if sp.bestDep >= 0 {
		sp.finish += b.spans[sp.bestDep].finish
	}
	b.spans = append(b.spans, sp)
	b.lastSpan[end.Query] = idx
	if b.critical < 0 || len(b.spans) == 1 || sp.finish > b.spans[b.critical].finish {
		b.critical = idx
	}

	key := [2]int{end.Node, end.Worker}
	w := b.workers[key]
	if w == nil {
		w = &WorkerProfile{Node: end.Node, Worker: end.Worker, FirstStart: -1}
		b.workers[key] = w
	}
	w.Punches++
	w.BusyTicks += sp.Cost
	if w.FirstStart < 0 || sp.StartVTime < w.FirstStart {
		w.FirstStart = sp.StartVTime
	}
	if gap := sp.StartVTime - w.lastEnd; w.Punches > 1 && gap > 0 {
		w.IdleGapTicks += gap
		if gap > w.MaxIdleGap {
			w.MaxIdleGap = gap
		}
	}
	if sp.EndVTime > w.lastEnd {
		w.lastEnd = sp.EndVTime
	}
	w.LastEnd = w.lastEnd

	np := b.node(end.Node)
	np.Punches++
	np.BusyTicks += sp.Cost
}

// report finalizes the derived views.
func (b *builder) report(events int) (*Report, error) {
	if len(b.spans) == 0 {
		return nil, fmt.Errorf("analyze: stream holds no completed PUNCH spans")
	}
	r := &Report{
		Events:        events,
		Spans:         len(b.spans),
		Spawns:        b.spawns,
		Dones:         b.dones,
		GCd:           b.gcd,
		Steals:        b.steals,
		Coalesces:     b.coalesces,
		MakespanTicks: b.maxVTime,
	}
	for _, tw := range b.coalesceTwins {
		r.CoalescedSavedTicks += b.costByQuery[tw]
	}
	for i := range b.spans {
		r.WorkTicks += b.spans[i].Cost
	}
	r.SpanTicks = b.spans[b.critical].finish
	r.CriticalPathTicks = r.SpanTicks

	// Walk the critical path backwards from the max-finish span.
	byProc := map[string]int64{}
	for i := b.critical; i >= 0; i = b.spans[i].bestDep {
		sp := b.spans[i]
		r.CriticalPath = append(r.CriticalPath, PathStep{
			Query: sp.Query, Proc: sp.Proc, Slice: sp.Slice,
			Cost: sp.Cost, Node: sp.Node, Worker: sp.Worker,
			StartVTime: sp.StartVTime, EndVTime: sp.EndVTime,
		})
		byProc[sp.Proc] += sp.Cost
	}
	// Reverse into causal order.
	for i, j := 0, len(r.CriticalPath)-1; i < j; i, j = i+1, j-1 {
		r.CriticalPath[i], r.CriticalPath[j] = r.CriticalPath[j], r.CriticalPath[i]
	}
	for proc, ticks := range byProc {
		ps := ProcShare{Proc: proc, Ticks: ticks}
		if r.SpanTicks > 0 {
			ps.Share = float64(ticks) / float64(r.SpanTicks)
		}
		r.CriticalPathByProc = append(r.CriticalPathByProc, ps)
	}
	sort.Slice(r.CriticalPathByProc, func(i, j int) bool {
		a, c := r.CriticalPathByProc[i], r.CriticalPathByProc[j]
		if a.Ticks != c.Ticks {
			return a.Ticks > c.Ticks
		}
		return a.Proc < c.Proc
	})
	if r.MakespanTicks > 0 {
		r.CriticalPathShareOfMakespan = float64(r.SpanTicks) / float64(r.MakespanTicks)
		r.ObservedParallelism = float64(r.WorkTicks) / float64(r.MakespanTicks)
	}
	if r.SpanTicks > 0 {
		r.MaxSpeedup = float64(r.WorkTicks) / float64(r.SpanTicks)
	}

	// Blocking attribution: the distribution of per-query blocked time.
	var hist obs.Histogram
	for q, d := range b.blockedTotal {
		hist.Observe(d)
		r.TotalBlockedTicks += d
		r.TopBlocked = append(r.TopBlocked, BlockedQuery{
			Query: q, Proc: b.blockedProc[q], BlockedTicks: d,
		})
	}
	sort.Slice(r.TopBlocked, func(i, j int) bool {
		a, c := r.TopBlocked[i], r.TopBlocked[j]
		if a.BlockedTicks != c.BlockedTicks {
			return a.BlockedTicks > c.BlockedTicks
		}
		return a.Query < c.Query
	})
	if len(r.TopBlocked) > 10 {
		r.TopBlocked = r.TopBlocked[:10]
	}
	r.BlockedTimes = hist.Snapshot()

	// Worker and node profiles, in track order.
	for _, w := range b.workers {
		if r.MakespanTicks > 0 {
			w.Utilization = float64(w.BusyTicks) / float64(r.MakespanTicks)
		}
		r.Workers = append(r.Workers, *w)
	}
	sort.Slice(r.Workers, func(i, j int) bool {
		if r.Workers[i].Node != r.Workers[j].Node {
			return r.Workers[i].Node < r.Workers[j].Node
		}
		return r.Workers[i].Worker < r.Workers[j].Worker
	})
	for i := range r.Workers {
		if r.Workers[i].Punches > 0 {
			r.MeasuredWorkers++
		}
	}
	if r.MeasuredWorkers > 0 && r.MakespanTicks > 0 {
		r.ParallelEfficiency = float64(r.WorkTicks) /
			(float64(r.MakespanTicks) * float64(r.MeasuredWorkers))
	}

	var busySum int64
	var busyMax int64
	for _, np := range b.nodes {
		r.Nodes = append(r.Nodes, *np)
		busySum += np.BusyTicks
		if np.BusyTicks > busyMax {
			busyMax = np.BusyTicks
		}
	}
	sort.Slice(r.Nodes, func(i, j int) bool { return r.Nodes[i].Node < r.Nodes[j].Node })
	if len(r.Nodes) > 1 && busySum > 0 {
		avg := float64(busySum) / float64(len(r.Nodes))
		r.NodeSkew = float64(busyMax) / avg
	}

	// What-if rows: the measured track count, its doublings, and the
	// infinite-worker limit (the span itself).
	base := r.MeasuredWorkers
	if base < 1 {
		base = 1
	}
	for _, p := range []int{base, 2 * base, 4 * base} {
		r.WhatIf = append(r.WhatIf, WhatIfRow{
			Workers:    p,
			LowerTicks: r.PredictMakespan(p),
			UpperTicks: r.predictUpper(p),
		})
	}
	r.WhatIf = append(r.WhatIf, WhatIfRow{
		Workers: 0, LowerTicks: r.SpanTicks, UpperTicks: r.SpanTicks,
	})
	return r, nil
}
