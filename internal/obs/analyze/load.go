package analyze

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

// LoadJSONL reads an event stream written by obs.JSONLTracer: one JSON
// event per line, blank lines skipped. The whole stream is returned in
// file order (which is the tracer's arrival order).
func LoadJSONL(r io.Reader) ([]obs.Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var events []obs.Event
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		ev, err := obs.UnmarshalEventJSON(raw)
		if err != nil {
			return nil, fmt.Errorf("analyze: line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("analyze: reading trace: %w", err)
	}
	return events, nil
}

// LoadJSONLFile is LoadJSONL over a file path.
func LoadJSONLFile(path string) ([]obs.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadJSONL(f)
}
