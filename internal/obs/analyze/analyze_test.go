package analyze_test

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/drivers"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/parser"
	"repro/internal/punch"
	"repro/internal/query"
	"repro/internal/summary"
)

// chainPunch scripts a pure chain of calls: the root spawns one child,
// which spawns one child, ... to the given depth; every invocation
// costs chainCost ticks and every parent needs a second slice after its
// child's answer wakes it. The causality DAG is a single chain, so
// span == work by construction.
const chainCost = 100

type chainPunch struct {
	mu    sync.Mutex
	depth int
	calls map[query.ID]int
	level map[query.ID]int
}

func newChainPunch(depth int) *chainPunch {
	return &chainPunch{depth: depth, calls: map[query.ID]int{}, level: map[query.ID]int{}}
}

func (p *chainPunch) Name() string { return "chain" }

func (p *chainPunch) Step(ctx *punch.Context, qr *query.Query) punch.Result {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls[qr.ID]++
	lvl := p.level[qr.ID] // root's zero value is its level
	switch {
	case p.calls[qr.ID] == 1 && lvl < p.depth:
		c := ctx.Alloc.New(qr.ID, summary.Question{Proc: fmt.Sprintf("lvl%d", lvl+1)})
		p.level[c.ID] = lvl + 1
		qr.State = query.Blocked
		return punch.Result{Self: qr, Children: []*query.Query{c}, Cost: chainCost}
	default:
		qr.State, qr.Outcome = query.Done, query.Unreachable
		return punch.Result{Self: qr, Cost: chainCost}
	}
}

// fanPunch scripts a fan-out: the root spawns width independent
// children (each one expensive slice), then finishes after the last
// answer wakes it. Span is root + one child + root; work is all of
// them.
type fanPunch struct {
	mu    sync.Mutex
	calls map[query.ID]int
	width int
}

func newFanPunch(width int) *fanPunch {
	return &fanPunch{width: width, calls: map[query.ID]int{}}
}

func (p *fanPunch) Name() string { return "fan" }

func (p *fanPunch) Step(ctx *punch.Context, qr *query.Query) punch.Result {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls[qr.ID]++
	if qr.Parent == query.NoParent && p.calls[qr.ID] == 1 {
		kids := make([]*query.Query, p.width)
		for i := range kids {
			kids[i] = ctx.Alloc.New(qr.ID, summary.Question{Proc: fmt.Sprintf("leaf%d", i)})
		}
		qr.State = query.Blocked
		return punch.Result{Self: qr, Children: kids, Cost: 1}
	}
	qr.State, qr.Outcome = query.Done, query.Unreachable
	cost := int64(1)
	if qr.Parent != query.NoParent {
		cost = 1000
	}
	return punch.Result{Self: qr, Cost: cost}
}

func runScripted(t *testing.T, p punch.Punch, threads int, tr obs.Tracer) core.Result {
	t.Helper()
	prog := parser.MustParse(`proc main { locals x; x = 1; assert(x > 0); }`)
	res := core.New(prog, core.Options{
		Punch:         p,
		MaxThreads:    threads,
		VirtualCores:  8,
		MaxIterations: 1 << 16,
		Tracer:        tr,
	}).Run(summary.Question{Proc: "main"})
	if res.Verdict != core.Safe {
		t.Fatalf("scripted run verdict = %v, want Safe", res.Verdict)
	}
	return res
}

// TestChainSpanEqualsSequentialMakespan: on a pure chain of calls the
// critical path IS the whole run — span == work == the sequential
// (1-thread) makespan.
func TestChainSpanEqualsSequentialMakespan(t *testing.T) {
	const depth = 4
	rec := &obs.Recording{}
	res := runScripted(t, newChainPunch(depth), 1, rec)

	rep, err := analyze.Analyze(rec.Events())
	if err != nil {
		t.Fatal(err)
	}
	// Spans: the root and each non-leaf run twice (spawn slice + resume
	// slice), the leaf once.
	wantSpans := 2*depth + 1
	wantWork := int64(wantSpans) * chainCost
	if rep.Spans != wantSpans {
		t.Errorf("spans = %d, want %d", rep.Spans, wantSpans)
	}
	if rep.WorkTicks != wantWork {
		t.Errorf("work = %d, want %d", rep.WorkTicks, wantWork)
	}
	if rep.SpanTicks != rep.WorkTicks {
		t.Errorf("chain span = %d, want == work %d (every span is on the critical path)",
			rep.SpanTicks, rep.WorkTicks)
	}
	if rep.MakespanTicks != res.VirtualTicks {
		t.Errorf("trace makespan = %d, engine reported %d", rep.MakespanTicks, res.VirtualTicks)
	}
	if rep.SpanTicks != rep.MakespanTicks {
		t.Errorf("chain span = %d, want == sequential makespan %d",
			rep.SpanTicks, rep.MakespanTicks)
	}
	if len(rep.CriticalPath) != wantSpans {
		t.Errorf("critical path has %d steps, want all %d spans", len(rep.CriticalPath), wantSpans)
	}
	if rep.MaxSpeedup != 1 {
		t.Errorf("max speedup = %.2f, want exactly 1 on a chain", rep.MaxSpeedup)
	}
	// Every parent spent time blocked on its child.
	if rep.TotalBlockedTicks <= 0 {
		t.Errorf("total blocked ticks = %d, want > 0 (parents block on children)", rep.TotalBlockedTicks)
	}
	// The what-if model must say parallelism cannot help a chain.
	for _, row := range rep.WhatIf {
		if row.LowerTicks != rep.SpanTicks {
			t.Errorf("what-if at %d workers predicts %d, want span %d (chains don't scale)",
				row.Workers, row.LowerTicks, rep.SpanTicks)
		}
	}
}

// TestFanOutSpanBelowWork: with independent children the critical path
// is root + one child + root's resume; everything else is parallel
// slack.
func TestFanOutSpanBelowWork(t *testing.T) {
	const width = 8
	rec := &obs.Recording{}
	runScripted(t, newFanPunch(width), width, rec)

	rep, err := analyze.Analyze(rec.Events())
	if err != nil {
		t.Fatal(err)
	}
	wantWork := int64(2 + 1000*width)
	if rep.WorkTicks != wantWork {
		t.Errorf("work = %d, want %d", rep.WorkTicks, wantWork)
	}
	wantSpan := int64(1 + 1000 + 1)
	if rep.SpanTicks != wantSpan {
		t.Errorf("fan-out span = %d, want %d (root + one leaf + resume)", rep.SpanTicks, wantSpan)
	}
	if rep.SpanTicks >= rep.WorkTicks {
		t.Errorf("fan-out span %d not below work %d", rep.SpanTicks, rep.WorkTicks)
	}
	if rep.MaxSpeedup < 7 {
		t.Errorf("max speedup = %.2f, want near %d on a %d-wide fan-out", rep.MaxSpeedup, width, width)
	}
	if len(rep.CriticalPath) != 3 {
		t.Errorf("critical path has %d steps, want 3", len(rep.CriticalPath))
	}
	// The infinite-workers row is the span itself; finite rows respect
	// lower <= upper and lower >= span.
	last := rep.WhatIf[len(rep.WhatIf)-1]
	if last.Workers != 0 || last.LowerTicks != rep.SpanTicks || last.UpperTicks != rep.SpanTicks {
		t.Errorf("infinite-workers row = %+v, want span %d", last, rep.SpanTicks)
	}
	for _, row := range rep.WhatIf {
		if row.LowerTicks > row.UpperTicks || row.LowerTicks < rep.SpanTicks {
			t.Errorf("what-if row %+v violates span <= lower <= upper", row)
		}
	}
}

// TestAnalyzeJSONLRoundTrip: analyzing a stream after a JSONL
// round-trip yields the identical report. The run is single-threaded so
// both sinks see the same arrival order.
func TestAnalyzeJSONLRoundTrip(t *testing.T) {
	rec := &obs.Recording{}
	var buf bytes.Buffer
	jt := obs.NewJSONLTracer(&buf)
	runScripted(t, newChainPunch(3), 1, obs.Tee(rec, jt))
	if err := jt.Flush(); err != nil {
		t.Fatal(err)
	}

	direct, err := analyze.Analyze(rec.Events())
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := analyze.LoadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	viaJSONL, err := analyze.Analyze(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, viaJSONL) {
		t.Errorf("report changed across the JSONL round trip:\n direct %+v\n jsonl  %+v", direct, viaJSONL)
	}
}

// TestWhatIfPredictionMatchesObserved: on a parallelism-rich real check
// the model's lower bound at the measured thread count must land within
// 25% of the streaming engine's observed makespan (the acceptance bar
// for the what-if report). The thread count is chosen so the balance
// bound work/p dominates the span, which is the regime the engine's
// virtual clock models (it balances cost over the simulated cores
// without precedence stalls — see DESIGN.md on the model's assumptions).
func TestWhatIfPredictionMatchesObserved(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real check (~3s)")
	}
	const cores = 2
	rec := &obs.Recording{}
	opts := harness.Options{Async: true, Tracer: rec, Cores: cores}
	check := drivers.NamedCheck("parport", "PowerUpFail", false)
	par := harness.RunCheck(check, cores, opts)
	if par.Ticks <= 0 {
		t.Fatalf("streaming run reported makespan %d", par.Ticks)
	}
	rep, err := analyze.Analyze(rec.Events())
	if err != nil {
		t.Fatal(err)
	}
	pred := rep.PredictMakespan(cores)
	diff := float64(pred-par.Ticks) / float64(par.Ticks)
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.25 {
		t.Errorf("predicted makespan at %d workers = %d, observed %d (%.0f%% off, want within 25%%)",
			cores, pred, par.Ticks, diff*100)
	}
}
