package analyze

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/obs"
	"repro/internal/query"
)

// PathStep is one PUNCH span on the critical path, in causal order.
type PathStep struct {
	Query      query.ID `json:"query"`
	Proc       string   `json:"proc"`
	Slice      int      `json:"slice"`
	Cost       int64    `json:"cost"`
	Node       int      `json:"node"`
	Worker     int      `json:"worker"`
	StartVTime int64    `json:"start_vtime"`
	EndVTime   int64    `json:"end_vtime"`
}

// ProcShare attributes critical-path ticks to one procedure.
type ProcShare struct {
	Proc  string  `json:"proc"`
	Ticks int64   `json:"ticks"`
	Share float64 `json:"share"`
}

// WhatIfRow is one entry of the scalability model: the predicted
// makespan window at a worker count (0 = infinitely many workers).
type WhatIfRow struct {
	Workers int `json:"workers"`
	// LowerTicks is max(span, work/p) — no schedule beats it; UpperTicks
	// is span + (work-span)/p — greedy scheduling never exceeds it.
	LowerTicks int64 `json:"lower_ticks"`
	UpperTicks int64 `json:"upper_ticks"`
}

// BlockedQuery is one query's total Blocked time.
type BlockedQuery struct {
	Query        query.ID `json:"query"`
	Proc         string   `json:"proc"`
	BlockedTicks int64    `json:"blocked_ticks"`
}

// WorkerProfile is one (node, worker) track's straggler view.
type WorkerProfile struct {
	Node        int     `json:"node"`
	Worker      int     `json:"worker"`
	Punches     int64   `json:"punches"`
	BusyTicks   int64   `json:"busy_ticks"`
	Steals      int64   `json:"steals"`
	Utilization float64 `json:"utilization"`
	// FirstStart/LastEnd bound the track's active window in virtual
	// time; IdleGapTicks is the total virtual time between consecutive
	// spans on the track and MaxIdleGap the largest single gap.
	FirstStart   int64 `json:"first_start"`
	LastEnd      int64 `json:"last_end"`
	IdleGapTicks int64 `json:"idle_gap_ticks"`
	MaxIdleGap   int64 `json:"max_idle_gap"`

	lastEnd int64
}

// NodeProfile is one simulated node's skew and gossip view (single-node
// engines report exactly one).
type NodeProfile struct {
	Node        int   `json:"node"`
	Punches     int64 `json:"punches"`
	BusyTicks   int64 `json:"busy_ticks"`
	GossipSends int64 `json:"gossip_sends"`
	GossipRecvs int64 `json:"gossip_recvs"`
	GossipBytes int64 `json:"gossip_bytes"`
	Killed      bool  `json:"killed,omitempty"`
}

// Report is the full derived view of one run's trace.
type Report struct {
	Events int   `json:"events"`
	Spans  int   `json:"spans"`
	Spawns int64 `json:"spawns"`
	Dones  int64 `json:"dones"`
	GCd    int64 `json:"gcd"`
	Steals int64 `json:"steals"`

	// Coalesces counts spawns answered by a live in-flight twin instead
	// of a duplicate subtree; CoalescedSavedTicks estimates the PUNCH
	// work those duplicates would have re-spent (sum of each twin's
	// total observed cost, a per-coalesce lower bound).
	Coalesces           int64 `json:"coalesces"`
	CoalescedSavedTicks int64 `json:"coalesced_saved_ticks"`

	// MakespanTicks is the observed virtual makespan (the stream's
	// maximum timestamp); WorkTicks the total PUNCH cost; SpanTicks the
	// causality DAG's longest cost-weighted chain. CriticalPathTicks is
	// SpanTicks under its profiler name: the two are the same quantity
	// seen as a bound (span) and as a chain to optimize (critical path).
	MakespanTicks     int64 `json:"makespan_ticks"`
	WorkTicks         int64 `json:"work_ticks"`
	SpanTicks         int64 `json:"span_ticks"`
	CriticalPathTicks int64 `json:"critical_path_ticks"`

	// MaxSpeedup is work/span — the speedup no thread count can exceed.
	MaxSpeedup float64 `json:"max_speedup"`
	// ObservedParallelism is work/makespan — the average number of busy
	// simulated cores; ParallelEfficiency divides it by the worker
	// tracks that did any work.
	ObservedParallelism float64 `json:"observed_parallelism"`
	ParallelEfficiency  float64 `json:"parallel_efficiency"`
	MeasuredWorkers     int     `json:"measured_workers"`

	CriticalPath                []PathStep  `json:"critical_path"`
	CriticalPathByProc          []ProcShare `json:"critical_path_by_proc"`
	CriticalPathShareOfMakespan float64     `json:"critical_path_share_of_makespan"`

	WhatIf []WhatIfRow `json:"what_if"`

	TotalBlockedTicks int64            `json:"total_blocked_ticks"`
	BlockedTimes      obs.HistSnapshot `json:"blocked_times"`
	TopBlocked        []BlockedQuery   `json:"top_blocked,omitempty"`

	Workers []WorkerProfile `json:"workers"`
	Nodes   []NodeProfile   `json:"nodes"`
	// NodeSkew is max/avg per-node busy ticks (1.0 = perfectly even;
	// meaningful only for multi-node traces).
	NodeSkew float64 `json:"node_skew,omitempty"`
}

// PredictMakespan is the what-if lower bound at p workers:
// max(span, work/p). No schedule on p workers can finish faster.
func (r *Report) PredictMakespan(p int) int64 {
	if p <= 0 {
		return r.SpanTicks
	}
	perWorker := (r.WorkTicks + int64(p) - 1) / int64(p)
	if perWorker < r.SpanTicks {
		return r.SpanTicks
	}
	return perWorker
}

// predictUpper is the greedy-scheduling (Brent) upper bound at p
// workers: span + (work-span)/p.
func (r *Report) predictUpper(p int) int64 {
	if p <= 0 {
		return r.SpanTicks
	}
	rest := r.WorkTicks - r.SpanTicks
	if rest < 0 {
		rest = 0
	}
	return r.SpanTicks + (rest+int64(p)-1)/int64(p)
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the report as a human-readable profile.
func (r *Report) WriteText(w io.Writer) error {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("trace analysis: %d events, %d punch spans, %d spawns, %d done, %d gc'd, %d steals\n",
		r.Events, r.Spans, r.Spawns, r.Dones, r.GCd, r.Steals)
	if r.Coalesces > 0 {
		p("coalescing: %d duplicate spawns coalesced, ~%d ticks of punch work saved\n",
			r.Coalesces, r.CoalescedSavedTicks)
	}
	p("\nwork/span\n")
	p("  makespan (observed)   %12d ticks\n", r.MakespanTicks)
	p("  work  (total cost)    %12d ticks\n", r.WorkTicks)
	p("  span  (critical path) %12d ticks\n", r.SpanTicks)
	p("  max theoretical speedup  %9.2fx (work/span)\n", r.MaxSpeedup)
	p("  observed parallelism     %9.2fx (work/makespan)\n", r.ObservedParallelism)
	p("  parallel efficiency      %9.1f%% over %d worker tracks\n",
		r.ParallelEfficiency*100, r.MeasuredWorkers)

	p("\nwhat-if makespan (lower = balance bound, upper = greedy bound)\n")
	for _, row := range r.WhatIf {
		label := fmt.Sprintf("%d workers", row.Workers)
		if row.Workers == 0 {
			label = "infinite"
		}
		p("  %-12s %12d .. %-12d ticks\n", label, row.LowerTicks, row.UpperTicks)
	}

	p("\ncritical path: %d ticks, %.1f%% of makespan, %d spans\n",
		r.CriticalPathTicks, r.CriticalPathShareOfMakespan*100, len(r.CriticalPath))
	for _, ps := range r.CriticalPathByProc {
		p("  %-30s %12d ticks  %5.1f%%\n", ps.Proc, ps.Ticks, ps.Share*100)
	}
	n := len(r.CriticalPath)
	show := n
	if show > 12 {
		show = 12
	}
	for i := 0; i < show; i++ {
		st := r.CriticalPath[i]
		p("  #%-3d query %-6d slice %-3d %-28s cost %d\n", i, st.Query, st.Slice, st.Proc, st.Cost)
	}
	if n > show {
		p("  ... %d more spans\n", n-show)
	}

	p("\nblocking: %d ticks total blocked time across %d queries\n",
		r.TotalBlockedTicks, r.BlockedTimes.Count)
	for _, b := range r.BlockedTimes.Buckets {
		p("  blocked <= %-10d %6d queries\n", b.Le, b.Count)
	}
	for _, tb := range r.TopBlocked {
		p("  top blocked: query %-6d %-28s %12d ticks\n", tb.Query, tb.Proc, tb.BlockedTicks)
	}

	p("\nworkers (%d tracks)\n", len(r.Workers))
	for _, wp := range r.Workers {
		p("  node %-2d worker %-3d punches %-6d busy %-10d util %5.1f%% steals %-5d idle-gaps %-10d max-gap %d\n",
			wp.Node, wp.Worker, wp.Punches, wp.BusyTicks, wp.Utilization*100,
			wp.Steals, wp.IdleGapTicks, wp.MaxIdleGap)
	}

	if len(r.Nodes) > 1 {
		p("\nnodes (%d), skew %.2fx (max/avg busy)\n", len(r.Nodes), r.NodeSkew)
		for _, np := range r.Nodes {
			killed := ""
			if np.Killed {
				killed = "  KILLED"
			}
			p("  node %-2d punches %-6d busy %-10d gossip %d sent / %d recv / %d bytes%s\n",
				np.Node, np.Punches, np.BusyTicks, np.GossipSends, np.GossipRecvs, np.GossipBytes, killed)
		}
	}
	return nil
}
