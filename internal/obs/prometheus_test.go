package obs

import (
	"bufio"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// parseExposition reads a Prometheus text exposition into a flat
// name{labels} -> value map, ignoring comment lines.
func parseExposition(t *testing.T, text string) map[string]int64 {
	t.Helper()
	out := map[string]int64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseInt(line[i+1:], 10, 64)
		if err != nil {
			t.Fatalf("non-integer value in line %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestWritePrometheus: counters, worker gauges and cumulative histogram
// buckets all round-trip through the text format.
func TestWritePrometheus(t *testing.T) {
	m := NewMetrics()
	m.EnsureWorkers(2)
	m.Inc(QueriesSpawned)
	m.Inc(QueriesSpawned)
	m.Inc(QueriesDone)
	m.ObservePunch(0, 3, 10*time.Nanosecond)
	m.ObservePunch(0, 900, 20*time.Nanosecond)
	m.ObservePunch(1, 70, 30*time.Nanosecond)
	m.ObserveSteal(1)
	snap := m.Snapshot()
	snap.MakespanTicks = 973

	var b strings.Builder
	if err := WritePrometheus(&b, snap); err != nil {
		t.Fatal(err)
	}
	vals := parseExposition(t, b.String())

	if got := vals["bolt_queries_spawned_total"]; got != 2 {
		t.Errorf("queries_spawned_total = %d, want 2", got)
	}
	if got := vals["bolt_queries_done_total"]; got != 1 {
		t.Errorf("queries_done_total = %d, want 1", got)
	}
	if got := vals["bolt_punch_invocations_total"]; got != 3 {
		t.Errorf("punch_invocations_total = %d, want 3", got)
	}
	if got := vals["bolt_makespan_ticks"]; got != 973 {
		t.Errorf("makespan_ticks = %d, want 973", got)
	}
	if got := vals[`bolt_worker_punches{worker="0"}`]; got != 2 {
		t.Errorf(`worker_punches{worker="0"} = %d, want 2`, got)
	}
	if got := vals[`bolt_worker_busy_ticks{worker="0"}`]; got != 903 {
		t.Errorf(`worker_busy_ticks{worker="0"} = %d, want 903`, got)
	}
	if got := vals[`bolt_worker_steals{worker="1"}`]; got != 1 {
		t.Errorf(`worker_steals{worker="1"} = %d, want 1`, got)
	}
	if got := vals["bolt_punch_cost_ticks_sum"]; got != 973 {
		t.Errorf("punch_cost_ticks_sum = %d, want 973", got)
	}
	if got := vals["bolt_punch_cost_ticks_count"]; got != 3 {
		t.Errorf("punch_cost_ticks_count = %d, want 3", got)
	}
	if got := vals[`bolt_punch_cost_ticks_bucket{le="+Inf"}`]; got != 3 {
		t.Errorf(`punch_cost_ticks_bucket{le="+Inf"} = %d, want 3`, got)
	}

	// Buckets must be cumulative: non-decreasing in le order, ending at
	// the +Inf count.
	var prev int64 = -1
	var seen int
	for _, bk := range snap.PunchCost.Buckets {
		key := fmt.Sprintf(`bolt_punch_cost_ticks_bucket{le="%d"}`, bk.Le)
		cum, ok := vals[key]
		if !ok {
			t.Fatalf("missing bucket %s", key)
		}
		if cum < prev {
			t.Errorf("bucket %s not cumulative: %d after %d", key, cum, prev)
		}
		prev = cum
		seen++
	}
	if seen == 0 {
		t.Fatal("no finite punch-cost buckets in exposition")
	}
	if prev != 3 {
		t.Errorf("last finite bucket = %d, want total count 3", prev)
	}
}

func TestWritePrometheusNilSnapshot(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, nil); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("nil snapshot rendered %q, want empty", b.String())
	}
}

// TestMetricsHandler: scraping twice sees the registry move.
func TestMetricsHandler(t *testing.T) {
	m := NewMetrics()
	h := MetricsHandler(m)
	scrape := func() map[string]int64 {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
			t.Fatalf("Content-Type = %q, want the 0.0.4 text exposition", ct)
		}
		return parseExposition(t, rec.Body.String())
	}
	m.Inc(Wakes)
	if got := scrape()["bolt_wakes_total"]; got != 1 {
		t.Fatalf("first scrape wakes_total = %d, want 1", got)
	}
	m.Inc(Wakes)
	if got := scrape()["bolt_wakes_total"]; got != 2 {
		t.Fatalf("second scrape wakes_total = %d, want 2 (handler must re-snapshot)", got)
	}
}

func TestMetricsHandlerNilRegistry(t *testing.T) {
	rec := httptest.NewRecorder()
	MetricsHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	if body := strings.TrimSpace(rec.Body.String()); body != "" {
		t.Errorf("nil registry served %q, want empty exposition", body)
	}
}
