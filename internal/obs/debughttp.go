// The live debug HTTP surface: one mux carrying the Prometheus
// exposition, the pprof endpoints, and the /debug/bolt/* introspection
// routes (state, flight, health). StartPprofServer remains as the thin
// metrics+pprof-only wrapper the CLIs used before the introspection
// routes existed.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"runtime"
	"strconv"
	"time"
)

// BuildInfo identifies the running binary for the bolt_build_info
// metric: the Go toolchain, the summary wire-format version, and the
// engines compiled in.
type BuildInfo struct {
	GoVersion   string `json:"go_version"`
	WireVersion int    `json:"wire_version"`
	Engines     string `json:"engines"`
}

// DebugState bundles the handles the debug server exposes. Every field
// is optional: a nil field simply leaves its endpoint serving an empty
// (but well-formed) response.
type DebugState struct {
	// Metrics backs /metrics.
	Metrics *Metrics
	// Probe backs /debug/bolt/state.
	Probe *Probe
	// Flight backs /debug/bolt/flight.
	Flight *FlightRecorder
	// Watchdog contributes its counters to /debug/bolt/health.
	Watchdog *Watchdog
	// Prov backs /debug/bolt/prov: called per request, it returns the
	// most recent verdict's provenance document (any JSON-marshalable
	// value) or nil when no run has recorded provenance yet. The obs
	// package stays decoupled from the provenance types; callers close
	// over whatever they hold.
	Prov func() any
	// Build is stamped into bolt_build_info and /debug/bolt/health.
	Build BuildInfo
	// Start anchors bolt_uptime_seconds (time.Now at server start when
	// zero).
	Start time.Time
}

// WriteRuntimeInfo appends the process-level gauges to a Prometheus
// exposition: bolt_build_info (constant 1 with identifying labels),
// bolt_uptime_seconds, and bolt_run_state (0 idle / 1 running /
// 2 finished) so a scrape can tell an idle server from an in-flight or
// completed run.
func WriteRuntimeInfo(w io.Writer, bi BuildInfo, uptime time.Duration, phase RunPhase) error {
	goVersion := bi.GoVersion
	if goVersion == "" {
		goVersion = runtime.Version()
	}
	if _, err := fmt.Fprintf(w,
		"# TYPE bolt_build_info gauge\nbolt_build_info{go_version=%q,wire_version=\"%d\",engines=%q} 1\n",
		goVersion, bi.WireVersion, bi.Engines); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"# TYPE bolt_uptime_seconds gauge\nbolt_uptime_seconds %.3f\n", uptime.Seconds()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"# TYPE bolt_run_state gauge\nbolt_run_state %d\n", int(phase))
	return err
}

// Handler builds the full debug mux for st: /metrics, /debug/bolt/state,
// /debug/bolt/flight, /debug/bolt/health, and the /debug/pprof family.
func (st DebugState) Handler() http.Handler {
	start := st.Start
	if start.IsZero() {
		start = time.Now()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WriteRuntimeInfo(w, st.Build, time.Since(start), st.Probe.Phase()); err != nil {
			return
		}
		_ = WritePrometheus(w, st.Metrics.Snapshot())
	})
	mux.HandleFunc("/debug/bolt/state", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s := st.Probe.State()
		if s == nil {
			// No run attached and none completed: an explicit idle
			// document beats a 404 — pollers can keep one code path.
			s = &StateSnapshot{Phase: RunIdle.String()}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s)
	})
	mux.HandleFunc("/debug/bolt/flight", func(w http.ResponseWriter, _ *http.Request) {
		snap := st.Flight.Snapshot()
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Bolt-Flight-Total", strconv.FormatInt(snap.Total, 10))
		w.Header().Set("X-Bolt-Flight-Dropped", strconv.FormatInt(snap.Dropped, 10))
		w.Header().Set("X-Bolt-Flight-Capacity", strconv.Itoa(st.Flight.Capacity()))
		for _, ev := range snap.Events {
			line, err := MarshalEventJSON(ev)
			if err != nil {
				return
			}
			if _, err := w.Write(append(line, '\n')); err != nil {
				return
			}
		}
	})
	mux.HandleFunc("/debug/bolt/health", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		doc := struct {
			Status        string         `json:"status"`
			Phase         string         `json:"phase"`
			UptimeSeconds float64        `json:"uptime_seconds"`
			Build         BuildInfo      `json:"build"`
			FlightTotal   int64          `json:"flight_total,omitempty"`
			FlightDropped int64          `json:"flight_dropped,omitempty"`
			Watchdog      WatchdogStatus `json:"watchdog"`
		}{
			Status:        "ok",
			Phase:         st.Probe.Phase().String(),
			UptimeSeconds: time.Since(start).Seconds(),
			Build:         st.Build,
			FlightTotal:   st.Flight.Total(),
			FlightDropped: st.Flight.Dropped(),
			Watchdog:      st.Watchdog.Status(),
		}
		if wd := doc.Watchdog; wd.Enabled && wd.StuckFor > 0 {
			doc.Status = "stalled"
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
	mux.HandleFunc("/debug/bolt/prov", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var doc any
		if st.Prov != nil {
			doc = st.Prov()
		}
		if doc == nil {
			doc = struct {
				Status string `json:"status"`
			}{Status: "no provenance recorded"}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return mux
}

// StartDebugServer serves st's debug mux on addr in a background
// goroutine and returns the bound address (useful with ":0"). The
// listener lives for the remainder of the process — the CLIs use it for
// the duration of a run.
func StartDebugServer(addr string, st DebugState) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: st.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
