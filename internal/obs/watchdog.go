// Stall watchdog: a wall-clock sampler over a Probe that notices when a
// run has stopped making progress and says why. The diagnosis logic is
// a pure function over two snapshots (Diagnose), so the detector is
// testable without timers; the Watchdog wraps it in a ticker goroutine
// and fires a structured StallReport (plus, when a flight recorder is
// attached, a dump of the recent event history) through a callback.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Default watchdog cadence: sample twice a second, call a run stalled
// after five seconds without progress.
const (
	DefaultWatchdogTick  = 500 * time.Millisecond
	DefaultWatchdogStall = 5 * time.Second
)

// WatchdogConfig configures a Watchdog.
type WatchdogConfig struct {
	// Probe is the live-state source to sample. Required.
	Probe *Probe
	// Flight, when set, is dumped into the StallReport on trigger.
	Flight *FlightRecorder
	// Tick is the sampling period (DefaultWatchdogTick when zero).
	Tick time.Duration
	// StallAfter is how long progress may flatline before the watchdog
	// fires (DefaultWatchdogStall when zero).
	StallAfter time.Duration
	// OnStall receives each stall report. Required for the watchdog to
	// be useful; it is invoked from the watchdog goroutine.
	OnStall func(StallReport)
}

// StallReport is the watchdog's structured diagnosis of a stalled run.
type StallReport struct {
	// Reason is the primary diagnosis: "all-blocked", "straggler", or
	// "no-progress".
	Reason string `json:"reason"`
	// Detail is a human-oriented elaboration of Reason.
	Detail string `json:"detail"`
	// Stalled is how long the progress signature had been flat when the
	// report fired.
	Stalled time.Duration `json:"stalled_ns"`
	// Stragglers lists workers still marked running while the rest of
	// the pool sits idle/parked (straggler diagnosis only).
	Stragglers []WorkerState `json:"stragglers,omitempty"`
	// State is the snapshot the diagnosis was made from.
	State *StateSnapshot `json:"state,omitempty"`
	// Flight is the recent event history at trigger time (when the
	// watchdog had a recorder attached).
	Flight *FlightSnapshot `json:"flight,omitempty"`
}

// String renders the report as the one-paragraph diagnosis the CLIs
// print.
func (r StallReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "watchdog: stall detected (%s) after %v: %s", r.Reason, r.Stalled.Round(time.Millisecond), r.Detail)
	if r.State != nil {
		fmt.Fprintf(&b, "\n  forest: live=%d ready=%d blocked=%d running=%d done=%d/%d",
			r.State.Forest.Live, r.State.Forest.Ready, r.State.Forest.Blocked,
			r.State.Forest.Running, r.State.Forest.Done, r.State.Forest.Spawned)
		fmt.Fprintf(&b, "\n  coalescer: inflight=%d waiter_edges=%d", r.State.Coalescer.InflightKeys, r.State.Coalescer.WaiterEdges)
	}
	for _, w := range r.Stragglers {
		fmt.Fprintf(&b, "\n  straggler: worker %d running %s (query %d, %d punches)", w.Worker, w.Proc, w.Query, w.Punches)
	}
	if r.Flight != nil {
		fmt.Fprintf(&b, "\n  flight: %d events retained, %d dropped", len(r.Flight.Events), r.Flight.Dropped)
	}
	return b.String()
}

// progressSig is the part of a snapshot that must move for the run to
// count as progressing. Punch completions are included so a run that
// answers nothing but keeps grinding PUNCHes (e.g. a slow straggler)
// is distinguished from one that is truly wedged.
type progressSig struct {
	vtime   int64
	done    int64
	spawned int64
	punches int64
}

func signature(s *StateSnapshot) progressSig {
	if s == nil {
		return progressSig{}
	}
	return progressSig{
		vtime:   s.VTime,
		done:    s.Forest.Done,
		spawned: s.Forest.Spawned,
		punches: s.TotalPunches(),
	}
}

// Diagnose classifies a stalled snapshot. prev and cur are consecutive
// watchdog samples whose progress signatures matched for at least the
// stall window; stuck is how long the signature has been flat. The
// returned report carries cur. Diagnose is pure — no clocks, no locks —
// so tests can drive it with hand-built snapshots.
func Diagnose(prev, cur *StateSnapshot, stuck time.Duration) StallReport {
	r := StallReport{Reason: "no-progress", Stalled: stuck, State: cur}
	if cur == nil {
		r.Detail = "no state snapshot available"
		return r
	}
	running, parked := 0, 0
	var stragglers []WorkerState
	for _, w := range cur.Workers {
		switch w.Phase {
		case WorkerRunning.String():
			running++
			stragglers = append(stragglers, w)
		case WorkerParked.String():
			parked++
		}
	}
	switch {
	case len(cur.Workers) > 0 && running == 0 && cur.Forest.Blocked > 0 && cur.Forest.Ready == 0:
		// Nothing is executing and every live query is waiting on an
		// answer that cannot arrive: the classic deadlock shape.
		r.Reason = "all-blocked"
		r.Detail = fmt.Sprintf("%d queries blocked, 0 ready, 0 workers running (%d parked)",
			cur.Forest.Blocked, parked)
	case running > 0 && running*4 <= len(cur.Workers):
		// A small minority of the pool is still inside PUNCH while the
		// rest drained — the idle-gap/straggler shape from analyze's
		// profile, observed live.
		sort.Slice(stragglers, func(i, j int) bool { return stragglers[i].Worker < stragglers[j].Worker })
		r.Reason = "straggler"
		r.Detail = fmt.Sprintf("%d of %d workers still running with no progress for %v",
			running, len(cur.Workers), stuck.Round(time.Millisecond))
		r.Stragglers = stragglers
	default:
		r.Detail = fmt.Sprintf("no vtime/answer/punch movement for %v (%d workers running, %d parked)",
			stuck.Round(time.Millisecond), running, parked)
	}
	_ = prev // reserved: future diagnoses may compare deltas
	return r
}

// WatchdogStatus is the watchdog's own health, served by
// /debug/bolt/health.
type WatchdogStatus struct {
	Enabled bool `json:"enabled"`
	// Samples counts watchdog ticks; Stalls how many stall episodes
	// have fired.
	Samples int64 `json:"samples"`
	Stalls  int64 `json:"stalls"`
	// LastReason is the Reason of the most recent stall report ("" when
	// none fired yet).
	LastReason string `json:"last_reason,omitempty"`
	// StuckFor is how long the current no-progress interval has lasted
	// (0 when progressing).
	StuckFor time.Duration `json:"stuck_for_ns"`
}

// Watchdog samples a Probe on a wall-clock tick and fires OnStall when
// the run flatlines. One stall episode fires one report: the watchdog
// re-arms only after progress resumes, so a wedged run does not spam
// its callback every tick.
type Watchdog struct {
	cfg WatchdogConfig

	samples    atomic.Int64
	stalls     atomic.Int64
	lastReason atomic.Value // string
	stuckNs    atomic.Int64

	mu      sync.Mutex
	stop    chan struct{}
	stopped chan struct{}
}

// NewWatchdog returns an unstarted watchdog; cfg.Tick and
// cfg.StallAfter get their defaults here.
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Tick <= 0 {
		cfg.Tick = DefaultWatchdogTick
	}
	if cfg.StallAfter <= 0 {
		cfg.StallAfter = DefaultWatchdogStall
	}
	return &Watchdog{cfg: cfg}
}

// Start launches the sampling goroutine. Starting a started watchdog is
// a no-op.
func (w *Watchdog) Start() {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.stop != nil {
		return
	}
	w.stop = make(chan struct{})
	w.stopped = make(chan struct{})
	go w.run(w.stop, w.stopped)
}

// Stop halts the sampling goroutine and waits for it to exit. Safe to
// call on a nil or never-started watchdog.
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	w.mu.Lock()
	stop, stopped := w.stop, w.stopped
	w.stop, w.stopped = nil, nil
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-stopped
	}
}

// Status reports the watchdog's counters (zero-valued on nil).
func (w *Watchdog) Status() WatchdogStatus {
	if w == nil {
		return WatchdogStatus{}
	}
	st := WatchdogStatus{
		Enabled:  true,
		Samples:  w.samples.Load(),
		Stalls:   w.stalls.Load(),
		StuckFor: time.Duration(w.stuckNs.Load()),
	}
	if r, ok := w.lastReason.Load().(string); ok {
		st.LastReason = r
	}
	return st
}

func (w *Watchdog) run(stop, stopped chan struct{}) {
	defer close(stopped)
	t := time.NewTicker(w.cfg.Tick)
	defer t.Stop()
	var (
		prev     *StateSnapshot
		last     progressSig
		flatFor  time.Duration
		haveSig  bool
		reported bool
	)
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		cur := w.cfg.Probe.State()
		w.samples.Add(1)
		if cur == nil || cur.Phase != RunActive.String() {
			// Nothing running: reset the episode so the next run starts
			// with a fresh window.
			prev, haveSig, flatFor, reported = nil, false, 0, false
			w.stuckNs.Store(0)
			continue
		}
		sig := signature(cur)
		if !haveSig || sig != last {
			last, haveSig = sig, true
			prev = cur
			flatFor = 0
			reported = false
			w.stuckNs.Store(0)
			continue
		}
		flatFor += w.cfg.Tick
		w.stuckNs.Store(int64(flatFor))
		if flatFor < w.cfg.StallAfter || reported {
			continue
		}
		reported = true
		w.stalls.Add(1)
		rep := Diagnose(prev, cur, flatFor)
		w.lastReason.Store(rep.Reason)
		if w.cfg.Flight != nil {
			fs := w.cfg.Flight.Snapshot()
			rep.Flight = &fs
		}
		if w.cfg.OnStall != nil {
			w.cfg.OnStall(rep)
		}
	}
}
