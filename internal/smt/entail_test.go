package smt

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/logic"
)

func TestSyntacticImplies(t *testing.T) {
	x, y := v("x"), v("y")
	cases := []struct {
		name string
		a, b logic.Formula
		want bool
	}{
		{"to-true", le(x, k(3)), logic.True, true},
		{"from-false", logic.False, le(x, k(3)), true},
		{"conjunct-subset", logic.Conj(le(x, k(2)), le(k(0), y)), le(x, k(2)), true},
		{"constant-slack", le(x, k(3)), le(x, k(5)), true},
		{"constant-slack-reverse", le(x, k(5)), le(x, k(3)), false},
		{"different-var", le(x, k(3)), le(y, k(3)), false},
		{"eq-needs-solver", logic.Eq(x, k(3)), le(x, k(3)), false},
	}
	for _, tc := range cases {
		if got := syntacticImplies(tc.a, tc.b); got != tc.want {
			t.Errorf("%s: syntacticImplies(%v, %v) = %v, want %v",
				tc.name, tc.a, tc.b, got, tc.want)
		}
	}
}

// TestEquivalentShortCircuit: structurally identical formulas settle by
// Key equality with no solver work, and equivalence still holds (via the
// cached two-direction path) for distinct but equivalent builds.
func TestEquivalentShortCircuit(t *testing.T) {
	s := New().EnableEntailmentCache()
	a := logic.Conj(le(v("x"), k(1)), le(k(0), v("y")))
	b := logic.Conj(le(v("x"), k(1)), le(k(0), v("y")))
	if !s.Equivalent(a, b) {
		t.Fatalf("identical formulas not equivalent")
	}
	if st := s.StatsSnapshot(); st.EntailCacheHits+st.EntailCacheMisses != 0 {
		t.Fatalf("Key-equal pair touched the cache: %+v", st)
	}
	// x = 3 and 3 ≤ x ∧ x ≤ 3 differ structurally but are equivalent:
	// both Implies directions must run, and they go through the cache.
	c := logic.Eq(v("x"), k(3))
	d := logic.Conj(le(k(3), v("x")), le(v("x"), k(3)))
	if !s.Equivalent(c, d) {
		t.Fatalf("x=3 not equivalent to 3<=x<=3")
	}
	if st := s.StatsSnapshot(); st.EntailCacheMisses != 2 {
		t.Fatalf("expected 2 cold Implies lookups, got %+v", st)
	}
	if !s.Equivalent(c, d) {
		t.Fatalf("equivalence lost on repeat")
	}
	if st := s.StatsSnapshot(); st.EntailCacheHits != 2 {
		t.Fatalf("repeat Equivalent did not hit the cache: %+v", st)
	}
}

// TestEntailmentCacheDisabledZeroStats: a solver that never called
// EnableEntailmentCache must keep all cache counters at zero — the
// zero-overhead-when-disabled contract the ablation flag relies on.
func TestEntailmentCacheDisabledZeroStats(t *testing.T) {
	s := New()
	x := v("x")
	for i := 0; i < 10; i++ {
		s.Implies(le(x, k(int64(i))), le(x, k(int64(i+3))))
		s.Valid(logic.Disj(le(x, k(int64(i))), logic.Not(le(x, k(int64(i))))))
	}
	st := s.StatsSnapshot()
	if st.EntailCacheHits != 0 || st.EntailCacheMisses != 0 || st.EntailSynHits != 0 {
		t.Fatalf("disabled cache recorded traffic: %+v", st)
	}
}

// TestEntailmentCacheHammer: 32 goroutines fire random Implies queries
// from a shared pool at one cache-enabled solver; every verdict must
// agree with an uncached reference, and the shared cache must see both
// hits and misses. Run under -race (make race) this is the concurrency
// certificate for the striped cache.
func TestEntailmentCacheHammer(t *testing.T) {
	r := rand.New(rand.NewSource(20260805))
	vars := []logic.Lin{v("x"), v("y"), v("z")}
	pool := make([]logic.Formula, 24)
	for i := range pool {
		n := 1 + r.Intn(3)
		cs := make([]logic.Formula, n)
		for j := range cs {
			vr := vars[r.Intn(len(vars))]
			bound := k(int64(r.Intn(9) - 4))
			if r.Intn(2) == 0 {
				cs[j] = le(vr, bound)
			} else {
				cs[j] = le(bound, vr)
			}
		}
		pool[i] = logic.Conj(cs...)
	}

	// Reference verdicts from a cache-less solver, computed serially.
	ref := New()
	want := map[[2]int]bool{}
	for i := range pool {
		for j := range pool {
			want[[2]int{i, j}] = ref.Implies(pool[i], pool[j])
		}
	}

	shared := New().EnableEntailmentCache()
	const goroutines = 32
	const perG = 400
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			lr := rand.New(rand.NewSource(seed))
			for n := 0; n < perG; n++ {
				i, j := lr.Intn(len(pool)), lr.Intn(len(pool))
				if got := shared.Implies(pool[i], pool[j]); got != want[[2]int{i, j}] {
					select {
					case errs <- fmt.Errorf("Implies(pool[%d], pool[%d]) = %v under contention, want %v",
						i, j, got, want[[2]int{i, j}]):
					default:
					}
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	st := shared.StatsSnapshot()
	if st.EntailCacheHits == 0 || st.EntailCacheMisses == 0 {
		t.Fatalf("hammer saw no cache traffic: %+v", st)
	}
	// 32x400 lookups over at most 24x24 distinct keys: hits dominate.
	if st.EntailCacheHits < st.EntailCacheMisses {
		t.Fatalf("expected hit-dominated traffic, got %+v", st)
	}
}
