package smt

import (
	"testing"

	"repro/internal/lang"
	"repro/internal/logic"
)

// dpllHardUnsat builds an unsatisfiable formula whose DNF blows past
// maxDNF (2^n cubes), forcing the DPLL path: n sign-split disjunctions,
// all lower bounds forced to ≥ 1, and a sum cap that is one short.
func dpllHardUnsat(n int) logic.Formula {
	var fs []logic.Formula
	sum := logic.LinConst(0)
	for i := 0; i < n; i++ {
		name := lang.Var(string(rune('a' + i)))
		fs = append(fs, logic.Disj(
			logic.LE(logic.LinVar(name).Add(logic.LinConst(1))), // v ≤ -1
			logic.LE(logic.LinConst(1).Sub(logic.LinVar(name))), // v ≥ 1
		))
		fs = append(fs, logic.LE(logic.LinConst(1).Sub(logic.LinVar(name)))) // v ≥ 1
		sum = sum.Add(logic.LinVar(name))
	}
	fs = append(fs, logic.LE(sum.Sub(logic.LinConst(int64(n-1))))) // Σv ≤ n-1
	return logic.Conj(fs...)
}

// The learning solver must reach the same proven-UNSAT verdict as the
// naive restart loop while spending strictly fewer full theory checks:
// the backtrackable theory trail prunes partial assignments and learned
// clauses keep refuted sub-spaces refuted, where the naive loop pays a
// fresh satCube per restart.
func TestDPLLLearningFewerTheoryChecks(t *testing.T) {
	f := dpllHardUnsat(10)

	cdcl := New()
	rc := cdcl.satDPLL(f)
	if rc.Sat || !rc.Known {
		t.Fatalf("cdcl: expected proven unsat, got %+v", rc)
	}
	cs := cdcl.StatsSnapshot()

	naive := New()
	rn := naive.satDPLLNaive(f)
	if rn.Sat || !rn.Known {
		t.Fatalf("naive: expected proven unsat, got %+v", rn)
	}
	ns := naive.StatsSnapshot()

	if cs.TheoryChecks >= ns.TheoryChecks {
		t.Fatalf("cdcl theory checks = %d, naive = %d; learning should prune",
			cs.TheoryChecks, ns.TheoryChecks)
	}
	if cs.Propagations == 0 {
		t.Fatal("cdcl path reported zero propagations")
	}
	if cs.LearnedClauses == 0 {
		t.Fatal("cdcl path reported zero learned clauses")
	}
	if ns.DPLLConflicts != 0 || ns.LearnedClauses != 0 || ns.Propagations != 0 {
		t.Fatalf("naive path moved CDCL counters: %+v", ns)
	}
}

// The CDCL solver on the satisfiable forcing workload must agree with
// the naive loop and produce a verified model.
func TestDPLLLearningSatAgreement(t *testing.T) {
	var fs []logic.Formula
	for i := 0; i < 10; i++ {
		name := lang.Var(string(rune('a' + i)))
		fs = append(fs, logic.Disj(
			logic.LE(logic.LinVar(name).Add(logic.LinConst(1))),
			logic.LE(logic.LinConst(1).Sub(logic.LinVar(name))),
		))
		fs = append(fs, logic.LE(logic.LinVar(name).Scale(-1))) // v ≥ 0 forces the ≥1 arm
	}
	f := logic.Conj(fs...)
	s := New()
	r := s.satDPLL(f)
	if !r.Sat || !r.Known || r.Model == nil {
		t.Fatalf("expected known sat with model, got %+v", r)
	}
	if !logic.Eval(f, r.Model) {
		t.Fatalf("model %v does not satisfy the formula", r.Model)
	}
}

// The warm entailment-cache path must be allocation-free: interned ids
// in, struct key lookup, verdict out — no string building anywhere.
func TestImpliesCachedPathAllocFree(t *testing.T) {
	s := New()
	s.EnableEntailmentCache()
	x := logic.LinVar(lang.Var("x"))
	a := logic.Conj(logic.LEq(x, logic.LinConst(3)), logic.LEq(logic.LinConst(0), x))
	b := logic.LEq(x, logic.LinConst(5))
	if !s.Implies(a, b) {
		t.Fatal("0 ≤ x ≤ 3 should imply x ≤ 5")
	}
	allocs := testing.AllocsPerRun(200, func() {
		s.Implies(a, b)
	})
	if allocs > 0 {
		t.Fatalf("cached Implies allocates %.1f objects per call, want 0", allocs)
	}
}

// BenchmarkDPLLLearning pits the learning solver against the retained
// naive restart loop on the forced-DPLL unsat workload. A fresh solver
// per iteration charges each path its full cost (no memo carryover).
func BenchmarkDPLLLearning(b *testing.B) {
	f := dpllHardUnsat(10)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := New()
			if r := s.satDPLLNaive(f); r.Sat || !r.Known {
				b.Fatalf("verdict flipped: %+v", r)
			}
		}
		s := New()
		s.satDPLLNaive(f)
		b.ReportMetric(float64(s.StatsSnapshot().TheoryChecks), "theorychecks")
	})
	b.Run("cdcl", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := New()
			if r := s.satDPLL(f); r.Sat || !r.Known {
				b.Fatalf("verdict flipped: %+v", r)
			}
		}
		s := New()
		s.satDPLL(f)
		st := s.StatsSnapshot()
		b.ReportMetric(float64(st.TheoryChecks), "theorychecks")
		b.ReportMetric(float64(st.DPLLConflicts), "conflicts")
		b.ReportMetric(float64(st.LearnedClauses), "learned")
	})
}
