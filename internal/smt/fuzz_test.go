// Differential fuzzing of the CDCL solver against the retained naive
// restart loop: both must reach identical Sat/Known verdicts on every
// generated NNF formula, and any Known-sat model must evaluate true.
// The naive loop is the executable specification — it restarts
// recursive DPLL from scratch per theory conflict and shares the same
// theory backend (satCube), so verdict divergence can only come from
// the learning machinery: watched-literal bookkeeping, 1-UIP analysis,
// backjumping, or the backtrackable theory trail.
package smt

import (
	"testing"

	"repro/internal/lang"
	"repro/internal/logic"
)

// fuzzSrc decodes a byte stream into bounded decisions; exhausted input
// yields zeros, so every prefix decodes to a well-formed formula.
type fuzzSrc struct {
	data []byte
	i    int
}

func (s *fuzzSrc) next() byte {
	if s.i >= len(s.data) {
		return 0
	}
	b := s.data[s.i]
	s.i++
	return b
}

// genLin builds a small linear term over x, y, z with coefficients in
// [-2, 2] and constant in [-4, 4] — the same envelope the brute-force
// agreement test uses, so theory checks stay cheap.
func genLin(s *fuzzSrc) logic.Lin {
	l := logic.LinConst(int64(s.next()%9) - 4)
	for _, name := range []lang.Var{"x", "y", "z"} {
		if c := int64(s.next()%5) - 2; c != 0 {
			l = l.Add(logic.LinVar(name).Scale(c))
		}
	}
	return l
}

// genFormula decodes an NNF formula of bounded depth and fanout.
func genFormula(s *fuzzSrc, depth int) logic.Formula {
	if depth == 0 || s.next()%3 == 0 {
		l := genLin(s)
		if s.next()%4 == 0 {
			return logic.EQ(l)
		}
		return logic.LE(l)
	}
	n := 2 + int(s.next()%2)
	fs := make([]logic.Formula, n)
	for i := range fs {
		fs[i] = genFormula(s, depth-1)
	}
	if s.next()%2 == 0 {
		return logic.Conj(fs...)
	}
	return logic.Disj(fs...)
}

func FuzzDPLLAgainstReference(f *testing.F) {
	// Seeds cover the interesting shapes: trivial, conjunction-heavy,
	// disjunction-heavy, equality-laden, and a long mixed stream.
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 254, 253, 252, 251, 250, 249, 248, 247, 246})
	f.Add([]byte{1, 4, 0, 3, 2, 4, 4, 1, 0, 2, 3, 4, 0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 5, 6})
	f.Add([]byte{9, 1, 1, 1, 1, 9, 2, 2, 2, 2, 9, 3, 3, 3, 3, 9, 4, 4, 4, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			return // depth is bounded; long inputs only slow the run
		}
		src := &fuzzSrc{data: data}
		g := eliminateEq(genFormula(src, 2))
		if _, ok := g.(logic.Bool); ok {
			return
		}
		// Generous budgets: on formulas this small neither path should
		// ever exhaust, so verdicts are exact, not budget artifacts.
		learn := New()
		learn.maxConflicts = 10000
		naive := New()
		naive.maxConflicts = 10000
		got := learn.satDPLL(g)
		want := naive.satDPLLNaive(g)
		if got.Sat != want.Sat || got.Known != want.Known {
			t.Fatalf("verdict divergence on %v:\n  cdcl  = {Sat:%v Known:%v}\n  naive = {Sat:%v Known:%v}",
				g, got.Sat, got.Known, want.Sat, want.Known)
		}
		if got.Known && got.Sat {
			if got.Model == nil {
				t.Fatalf("cdcl known-sat without model on %v", g)
			}
			if !logic.Eval(g, got.Model) {
				t.Fatalf("cdcl model %v does not satisfy %v", got.Model, g)
			}
		}
	})
}
