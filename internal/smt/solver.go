// Package smt is a small, self-contained satisfiability solver for
// quantifier-free linear integer arithmetic (QF_LIA), standing in for the
// Z3 solver used by the paper's implementation.
//
// Architecture: formulas with few disjuncts are decided directly on their
// DNF cubes; larger formulas go through a DPLL loop over a boolean
// abstraction of the atoms with lazy theory conflicts. The theory check is
// Fourier–Motzkin elimination over the rationals (refutation-complete for
// UNSAT over the integers), followed by a branch-and-bound style integer
// model search using the dark shadow when the real shadow admits only
// fractional witnesses.
//
// Every verdict is conservative: UNSAT is only reported when proven, and a
// model is only reported after it has been verified by evaluation. When
// the solver gives up (resource caps, dark-shadow incompleteness) it
// reports "possibly satisfiable, no model".
package smt

import (
	"sync"
	"sync/atomic"

	"repro/internal/lang"
	"repro/internal/logic"
)

// Result is the outcome of a satisfiability check.
type Result struct {
	// Sat is false only when the formula is proven unsatisfiable.
	Sat bool
	// Model is a verified satisfying assignment; nil when Sat is false or
	// the search was inconclusive.
	Model map[lang.Var]int64
	// Known is true when the verdict is definitive (proven unsat, or a
	// verified model was found).
	Known bool
}

// Stats carries the solver's operation counters. Counters are atomic so a
// single Solver can be shared between the parallel PUNCH instances, as
// SUMDB shares one in the paper's implementation.
type Stats struct {
	SatCalls     int64
	TheoryChecks int64
	Conflicts    int64 // theory conflicts (blocked lazy-SMT assignments)
	Ticks        int64 // abstract work units, the currency of virtual time
	// Entailment-cache counters; all zero when the cache is disabled.
	EntailCacheHits   int64
	EntailCacheMisses int64
	EntailSynHits     int64 // misses settled by the syntactic pre-check, no DPLL
	// Learning-solver counters (cdcl.go).
	DPLLConflicts  int64 // propositional conflicts analyzed by the CDCL core
	LearnedClauses int64 // clauses learned (1-UIP, theory-trail, blocking)
	Propagations   int64 // literals propagated by the two-watched scheme
	// HashConsHits is the process-global intern-table hit delta since
	// this solver was created (snapshot-only; see StatsSnapshot).
	HashConsHits int64
}

// Solver decides QF_LIA formulas. The zero value is not usable; call New.
type Solver struct {
	stats Stats
	// maxDNF is the cube count above which the DPLL path is used.
	maxDNF int
	// maxConflicts caps theory-conflict iterations before giving up.
	maxConflicts int
	// cache memoizes Sat results by formula structure.
	cache    sync.Map
	cacheLen int64
	// cubeMemo memoizes satCube verdicts by the sorted interned ids of
	// the cube's atoms: Fourier–Motzkin over a cube is a pure function
	// of the atom set, so elimination work is shared across the
	// near-identical assignments successive DPLL iterations produce.
	cubeMemo    sync.Map
	cubeMemoLen int64
	// entail memoizes Implies/Valid verdicts by formula-key pair; nil
	// until EnableEntailmentCache so the disabled path is untouched.
	entail *entailCache
	// internHitsBase is the global hash-cons hit counter at New time,
	// so StatsSnapshot can report the per-solver-lifetime delta.
	internHitsBase int64
}

// Bounds on the Sat and satCube memoization tables.
const (
	maxCacheEntries = 1 << 15
	maxCubeMemo     = 1 << 14
)

// New returns a solver with default resource limits. The entailment
// cache starts disabled; callers opt in with EnableEntailmentCache.
func New() *Solver {
	hits, _ := logic.InternStats()
	return &Solver{maxDNF: 256, maxConflicts: 1500, internHitsBase: hits}
}

// EnableEntailmentCache switches on the sharded Implies/Valid memo and
// the syntactic subsumption pre-check. Must be called before the solver
// is shared between goroutines. Returns the receiver for chaining.
func (s *Solver) EnableEntailmentCache() *Solver {
	if s.entail == nil {
		s.entail = newEntailCache()
	}
	return s
}

// EntailmentCacheEnabled reports whether EnableEntailmentCache was called.
func (s *Solver) EntailmentCacheEnabled() bool { return s.entail != nil }

// Ticks returns the cumulative abstract work units spent so far.
func (s *Solver) Ticks() int64 { return atomic.LoadInt64(&s.stats.Ticks) }

// StatsSnapshot returns a copy of the operation counters. HashConsHits
// is the process-global intern-table hit delta since New — with one
// solver per run this attributes the run's hash-consing traffic, with
// concurrent runs in one process the windows overlap (metrics only;
// never used for decisions).
func (s *Solver) StatsSnapshot() Stats {
	hits, _ := logic.InternStats()
	return Stats{
		SatCalls:          atomic.LoadInt64(&s.stats.SatCalls),
		TheoryChecks:      atomic.LoadInt64(&s.stats.TheoryChecks),
		Conflicts:         atomic.LoadInt64(&s.stats.Conflicts),
		Ticks:             atomic.LoadInt64(&s.stats.Ticks),
		EntailCacheHits:   atomic.LoadInt64(&s.stats.EntailCacheHits),
		EntailCacheMisses: atomic.LoadInt64(&s.stats.EntailCacheMisses),
		EntailSynHits:     atomic.LoadInt64(&s.stats.EntailSynHits),
		DPLLConflicts:     atomic.LoadInt64(&s.stats.DPLLConflicts),
		LearnedClauses:    atomic.LoadInt64(&s.stats.LearnedClauses),
		Propagations:      atomic.LoadInt64(&s.stats.Propagations),
		HashConsHits:      hits - s.internHitsBase,
	}
}

func (s *Solver) tick(n int64) { atomic.AddInt64(&s.stats.Ticks, n) }

// Sat decides satisfiability of f over the integers. Results are
// memoized by formula structure: the hash-consed id when available,
// falling back to the structural string past the intern-table cap.
func (s *Solver) Sat(f logic.Formula) Result {
	atomic.AddInt64(&s.stats.SatCalls, 1)
	s.tick(1)
	var key any
	if id := logic.KeyID(f); id != 0 {
		key = id
	} else {
		key = logic.Key(f)
	}
	if v, ok := s.cache.Load(key); ok {
		return v.(Result)
	}
	r := s.satUncached(f)
	// Bounded memoization: once the cap is reached new results are simply
	// not cached (no eviction, so no synchronization hazards).
	if atomic.LoadInt64(&s.cacheLen) < maxCacheEntries {
		atomic.AddInt64(&s.cacheLen, 1)
		s.cache.Store(key, r)
	}
	return r
}

// maxFormulaSize bounds the formulas the solver will attempt; beyond it
// the conservative "possibly satisfiable" verdict is returned immediately
// (sound for every use in the analyses: proofs need proven-unsat, and
// witnesses need verified models).
const maxFormulaSize = 2500

func (s *Solver) satUncached(f logic.Formula) Result {
	if logic.Size(f) > maxFormulaSize {
		return Result{Sat: true}
	}
	f = eliminateEq(f)
	switch g := f.(type) {
	case logic.Bool:
		if bool(g) {
			return Result{Sat: true, Model: map[lang.Var]int64{}, Known: true}
		}
		return Result{Known: true}
	}
	// Fast path: small DNF, decide cube by cube.
	if cubes, ok := logic.Cubes(f, s.maxDNF); ok {
		unknown := false
		for _, c := range cubes {
			r := s.satCube(c)
			if r.Sat && r.Known {
				return r
			}
			if !r.Known {
				unknown = true
			}
		}
		if unknown {
			return Result{Sat: true}
		}
		return Result{Known: true}
	}
	return s.satDPLL(f)
}

// satCube decides a single conjunction of ≤-atoms. Verdicts are
// memoized by the cube's atom-set identity (sorted interned term ids):
// a hit costs one tick instead of re-running elimination.
func (s *Solver) satCube(c logic.Cube) Result {
	atomic.AddInt64(&s.stats.TheoryChecks, 1)
	key, keyed := cubeKey(c)
	if keyed {
		if v, ok := s.cubeMemo.Load(key); ok {
			s.tick(1)
			return v.(Result)
		}
	}
	r := s.satCubeUncached(c)
	if keyed && atomic.LoadInt64(&s.cubeMemoLen) < maxCubeMemo {
		atomic.AddInt64(&s.cubeMemoLen, 1)
		s.cubeMemo.Store(key, r)
	}
	return r
}

func (s *Solver) satCubeUncached(c logic.Cube) Result {
	s.tick(int64(len(c)) + 1)
	vars := cubeVars(c)
	if !s.rationallySat(c, vars) {
		return Result{Known: true}
	}
	model := s.findIntModel(c, vars, 0)
	if model == nil {
		return Result{Sat: true} // rational-sat, integer status unknown
	}
	for v := range vars {
		if _, ok := model[v]; !ok {
			model[v] = 0
		}
	}
	if !logic.Eval(c.Formula(), model) {
		// Defensive: a model we cannot verify is treated as unknown.
		return Result{Sat: true}
	}
	return Result{Sat: true, Model: model, Known: true}
}

// cubeKey canonicalizes a cube as the sorted interned ids of its atom
// terms, packed into a string for map use. False when any term is not
// internable (table cap) or the cube contains an equality.
func cubeKey(c logic.Cube) (string, bool) {
	ids := make([]uint64, len(c))
	for i, a := range c {
		if a.Eq {
			return "", false
		}
		id := logic.LinID(a.L)
		if id == 0 {
			return "", false
		}
		ids[i] = uint64(id)
	}
	// Insertion sort: cubes are small and nearly sorted.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	buf := make([]byte, 0, 8*len(ids))
	for _, id := range ids {
		buf = append(buf,
			byte(id), byte(id>>8), byte(id>>16), byte(id>>24),
			byte(id>>32), byte(id>>40), byte(id>>48), byte(id>>56))
	}
	return string(buf), true
}

// rationallySat runs real-shadow FM elimination to refute the cube over
// the rationals. A false answer is a proof of integer unsatisfiability.
func (s *Solver) rationallySat(c logic.Cube, vars map[lang.Var]bool) bool {
	_, _, sat := logic.ProjectCube(c, vars, logic.Over)
	s.tick(int64(len(c)))
	return sat
}

// findIntModel searches for an integer model of the cube. It eliminates
// variables one at a time, first with the real shadow; if back-substitution
// finds an empty integer interval it retries with the dark shadow, whose
// result guarantees an integer witness for the eliminated variable.
func (s *Solver) findIntModel(c logic.Cube, vars map[lang.Var]bool, depth int) map[lang.Var]int64 {
	s.tick(1)
	if depth > 64 {
		return nil
	}
	v, ok := firstVar(vars)
	if !ok {
		// Ground cube: satisfiable iff no positive constant remains, which
		// simplifyCube inside ProjectCube has already established.
		if _, _, sat := logic.ProjectCube(c, nil, logic.Over); !sat {
			return nil
		}
		return map[lang.Var]int64{}
	}
	rest := cloneVarSet(vars)
	delete(rest, v)

	try := func(mode logic.Shadow) map[lang.Var]int64 {
		proj, _, sat := logic.ProjectCube(c, map[lang.Var]bool{v: true}, mode)
		if !sat {
			return nil
		}
		m := s.findIntModel(proj, rest, depth+1)
		if m == nil {
			return nil
		}
		lo, hi, hasLo, hasHi := logic.BoundsOn(c, v, m)
		switch {
		case hasLo && hasHi && lo > hi:
			return nil
		case hasLo && hasHi:
			m[v] = clamp(0, lo, hi)
		case hasLo:
			m[v] = max64(0, lo)
		case hasHi:
			m[v] = min64(0, hi)
		default:
			m[v] = 0
		}
		return m
	}
	if m := try(logic.Over); m != nil {
		return m
	}
	return try(logic.Under)
}

// Valid reports whether f is valid (holds in all integer states). Only a
// proven-valid formula yields true. Verdicts are memoized when the
// entailment cache is enabled, keyed by the hash-consed id — the cached
// path does no string building.
func (s *Solver) Valid(f logic.Formula) bool {
	if s.entail == nil {
		return s.validUncached(f)
	}
	id := logic.KeyID(f)
	if id == 0 {
		key := "V\x1f" + logic.Key(f)
		if v, ok := s.entail.getStr(key); ok {
			atomic.AddInt64(&s.stats.EntailCacheHits, 1)
			return v
		}
		atomic.AddInt64(&s.stats.EntailCacheMisses, 1)
		v := s.validUncached(f)
		s.entail.putStr(key, v)
		return v
	}
	key := entailKey{kind: 'V', a: id}
	if v, ok := s.entail.get(key); ok {
		atomic.AddInt64(&s.stats.EntailCacheHits, 1)
		return v
	}
	atomic.AddInt64(&s.stats.EntailCacheMisses, 1)
	v := s.validUncached(f)
	s.entail.put(key, v)
	return v
}

func (s *Solver) validUncached(f logic.Formula) bool {
	r := s.Sat(logic.Not(f))
	return r.Known && !r.Sat
}

// Implies reports whether a ⇒ b is proven valid. Structurally identical
// formulas short-circuit without a solver call — an integer comparison
// of interned ids; with the entailment cache enabled, verdicts are
// memoized by the id pair and a cheap syntactic subsumption pre-check
// runs before DPLL.
func (s *Solver) Implies(a, b logic.Formula) bool {
	ida, idb := logic.KeyID(a), logic.KeyID(b)
	if ida != 0 && ida == idb {
		return true
	}
	if ida == 0 || idb == 0 {
		return s.impliesFallback(a, b)
	}
	if s.entail == nil {
		return s.validUncached(logic.Disj(logic.Not(a), b))
	}
	key := entailKey{kind: 'I', a: ida, b: idb}
	if v, ok := s.entail.get(key); ok {
		atomic.AddInt64(&s.stats.EntailCacheHits, 1)
		return v
	}
	atomic.AddInt64(&s.stats.EntailCacheMisses, 1)
	v := s.impliesUncached(a, b)
	s.entail.put(key, v)
	return v
}

// impliesFallback is the string-keyed path for formulas past the
// intern-table cap.
func (s *Solver) impliesFallback(a, b logic.Formula) bool {
	ka, kb := logic.Key(a), logic.Key(b)
	if ka == kb {
		return true
	}
	if s.entail == nil {
		return s.validUncached(logic.Disj(logic.Not(a), b))
	}
	key := ka + "\x1f" + kb
	if v, ok := s.entail.getStr(key); ok {
		atomic.AddInt64(&s.stats.EntailCacheHits, 1)
		return v
	}
	atomic.AddInt64(&s.stats.EntailCacheMisses, 1)
	v := s.impliesUncached(a, b)
	s.entail.putStr(key, v)
	return v
}

func (s *Solver) impliesUncached(a, b logic.Formula) bool {
	if syntacticImplies(a, b) {
		atomic.AddInt64(&s.stats.EntailSynHits, 1)
		s.tick(1)
		return true
	}
	return s.validUncached(logic.Disj(logic.Not(a), b))
}

// Equivalent reports whether a ⇔ b is proven valid. Structurally
// identical formulas short-circuit on id equality; otherwise both
// directions go through the (cached) Implies path.
func (s *Solver) Equivalent(a, b logic.Formula) bool {
	if ida, idb := logic.KeyID(a), logic.KeyID(b); ida != 0 && ida == idb {
		return true
	} else if (ida == 0 || idb == 0) && logic.Key(a) == logic.Key(b) {
		return true
	}
	return s.Implies(a, b) && s.Implies(b, a)
}

// Model returns a verified model of f, or nil when none was found (which
// does not prove unsatisfiability unless Sat reports Known).
func (s *Solver) Model(f logic.Formula) map[lang.Var]int64 {
	r := s.Sat(f)
	return r.Model
}

// eliminateEq rewrites equality atoms into conjunctions of inequalities so
// the DPLL abstraction only sees ≤-atoms, which negate to single atoms.
func eliminateEq(f logic.Formula) logic.Formula {
	switch f := f.(type) {
	case logic.Bool:
		return f
	case logic.Atom:
		if f.Eq {
			return logic.Conj(logic.LE(f.L), logic.LE(f.L.Scale(-1)))
		}
		return f
	case logic.And:
		out := make([]logic.Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = eliminateEq(g)
		}
		return logic.Conj(out...)
	case logic.Or:
		out := make([]logic.Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = eliminateEq(g)
		}
		return logic.Disj(out...)
	default:
		return f
	}
}

func cubeVars(c logic.Cube) map[lang.Var]bool {
	out := map[lang.Var]bool{}
	for _, a := range c {
		for _, v := range a.L.Vars {
			out[v] = true
		}
	}
	return out
}

func cloneVarSet(m map[lang.Var]bool) map[lang.Var]bool {
	out := make(map[lang.Var]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func firstVar(m map[lang.Var]bool) (lang.Var, bool) {
	var best lang.Var
	found := false
	for v := range m {
		if !found || v < best {
			best = v
			found = true
		}
	}
	return best, found
}

func clamp(x, lo, hi int64) int64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
