// Conflict-driven clause learning over the propositional skeleton: the
// production replacement for the restart-from-scratch recursive DPLL in
// dpll.go. Two-watched-literal propagation, 1-UIP conflict analysis
// with backjumping, VSIDS-style branching with phase saving, and a
// backtrackable theory trail (theory.go) that prunes theory-
// inconsistent partial assignments before they reach a full
// Fourier–Motzkin check. Clauses learned from propositional conflicts,
// theory-trail conflicts and theory blocking clauses all persist across
// the lazy-SMT iterations, so the near-identical entailment queries the
// analyses generate prune instead of re-searching.
//
// Soundness note on the `unknown` flag: blocking clauses for
// assignments whose cube is rationally satisfiable but lacks an integer
// witness are not logical consequences of the formula, so learned
// clauses derived from them are tainted — but such a clause is only
// ever added after `unknown` is set, and once set the loop never
// reports proven-UNSAT, exactly mirroring the naive loop's contract.
package smt

import (
	"sync/atomic"

	"repro/internal/logic"
)

type cdclStatus int

const (
	cdclSat    cdclStatus = iota // full propositional model found
	cdclUnsat                    // propositionally exhausted
	cdclBudget                   // propositional-conflict budget exceeded
)

// satDPLL decides satisfiability of a formula whose DNF is too large to
// enumerate: the lazy SMT loop with a learning SAT core. Budget
// semantics match the naive loop: at most maxConflicts theory
// iterations, with exhaustion reported as "possibly satisfiable".
func (s *Solver) satDPLL(f logic.Formula) Result {
	sk := newSkeleton(f)
	c := newCDCL(sk)
	defer func() {
		atomic.AddInt64(&s.stats.DPLLConflicts, c.conflicts)
		atomic.AddInt64(&s.stats.LearnedClauses, c.learned)
		atomic.AddInt64(&s.stats.Propagations, c.props)
	}()
	// Defensive cap on propositional conflicts across the whole call;
	// exceeding it yields the conservative unknown verdict.
	propBudget := int64(s.maxConflicts)*64 + 4096
	unknown := false
	for i := 0; i < s.maxConflicts; i++ {
		switch c.search(propBudget) {
		case cdclBudget:
			return Result{Sat: true}
		case cdclUnsat:
			if unknown {
				return Result{Sat: true}
			}
			return Result{Known: true} // propositionally exhausted
		}
		cube := sk.theoryCube(c.assign)
		r := s.satCube(cube)
		if r.Sat && r.Known {
			return r
		}
		if r.Sat && !r.Known {
			// Rationally satisfiable but no integer witness found: block
			// this assignment and remember we cannot claim UNSAT.
			unknown = true
		}
		atomic.AddInt64(&s.stats.Conflicts, 1)
		lits := sk.blockingLits(s, c.assign, !r.Sat && r.Known)
		if !c.addBlocking(lits) {
			if unknown {
				return Result{Sat: true}
			}
			return Result{Known: true}
		}
	}
	return Result{Sat: true}
}

// cdcl is the learning SAT core over a skeleton's clause set.
type cdcl struct {
	sk       *skeleton
	nvars    int
	clauses  [][]int // initial + learned; watched literals at positions 0 and 1
	watches  [][]int // watch lists: widx(lit) → clause indices watching lit
	assign   []int8  // 0 unassigned, 1 true, -1 false
	level    []int   // decision level of each assigned var
	reason   []int   // clause index that propagated the var, -1 for decisions
	trail    []int   // assigned literals in order
	trailLim []int   // trail length at each decision
	thLim    []int   // theory-trail length at each decision
	qhead    int
	activity []float64
	varInc   float64
	phase    []int8 // saved polarity per var
	seen     []bool // scratch for analyze
	varAtom  []int  // var index → atom index, -1 for gate vars
	th       *theoryTrail
	failed   bool // contradictory unit clauses at construction

	conflicts int64 // propositional + theory-trail conflicts
	learned   int64
	props     int64
}

func litVar(lit int) int {
	if lit < 0 {
		return -lit - 1
	}
	return lit - 1
}

// widx indexes the watch list of a literal.
func widx(lit int) int {
	if lit > 0 {
		return 2 * (lit - 1)
	}
	return 2*(-lit-1) + 1
}

func newCDCL(sk *skeleton) *cdcl {
	n := sk.nvars
	c := &cdcl{
		sk:       sk,
		nvars:    n,
		watches:  make([][]int, 2*n),
		assign:   make([]int8, n),
		level:    make([]int, n),
		reason:   make([]int, n),
		activity: make([]float64, n),
		varInc:   1,
		phase:    make([]int8, n),
		seen:     make([]bool, n),
		varAtom:  make([]int, n),
		th:       newTheoryTrail(),
	}
	for i := range c.reason {
		c.reason[i] = -1
	}
	for i := range c.phase {
		c.phase[i] = 1 // try true first, like the naive loop
	}
	for i := range c.varAtom {
		c.varAtom[i] = -1
	}
	for i, v := range sk.atomVars {
		c.varAtom[v] = i
	}
	c.clauses = make([][]int, 0, len(sk.clauses)+64)
	for _, cl := range sk.clauses {
		ci := len(c.clauses)
		c.clauses = append(c.clauses, cl)
		if len(cl) == 1 {
			if !c.enqueue(cl[0], ci) {
				c.failed = true
				return c
			}
			continue
		}
		c.watches[widx(cl[0])] = append(c.watches[widx(cl[0])], ci)
		c.watches[widx(cl[1])] = append(c.watches[widx(cl[1])], ci)
	}
	return c
}

func (c *cdcl) decisionLevel() int   { return len(c.trailLim) }
func (c *cdcl) litLevel(lit int) int { return c.level[litVar(lit)] }

// enqueue assigns lit with the given reason clause. Returns false when
// lit is already false (the caller owns the conflict).
func (c *cdcl) enqueue(lit, reason int) bool {
	switch litValue(c.assign, lit) {
	case 1:
		return true
	case -1:
		return false
	}
	v := litVar(lit)
	if lit > 0 {
		c.assign[v] = 1
	} else {
		c.assign[v] = -1
	}
	c.level[v] = c.decisionLevel()
	c.reason[v] = reason
	c.trail = append(c.trail, lit)
	return true
}

// propagate runs two-watched-literal unit propagation (with theory
// assertion per dequeued atom literal) to fixpoint. Returns the index
// of a conflicting clause, or -1.
func (c *cdcl) propagate() int {
	for c.qhead < len(c.trail) {
		lit := c.trail[c.qhead]
		c.qhead++
		c.props++
		if ai := c.varAtom[litVar(lit)]; ai >= 0 {
			if !c.th.assert(cubeAtom(c.sk.atoms[ai], lit > 0), lit) {
				return c.theoryConflict()
			}
		}
		neg := -lit
		wi := widx(neg)
		ws := c.watches[wi]
		out := ws[:0]
		conflict := -1
		for k := 0; k < len(ws); k++ {
			ci := ws[k]
			cl := c.clauses[ci]
			if cl[0] == neg {
				cl[0], cl[1] = cl[1], cl[0]
			}
			if litValue(c.assign, cl[0]) == 1 {
				out = append(out, ci)
				continue
			}
			moved := false
			for j := 2; j < len(cl); j++ {
				if litValue(c.assign, cl[j]) != -1 {
					cl[1], cl[j] = cl[j], cl[1]
					c.watches[widx(cl[1])] = append(c.watches[widx(cl[1])], ci)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			out = append(out, ci) // stays watched; clause is unit or conflicting
			if !c.enqueue(cl[0], ci) {
				out = append(out, ws[k+1:]...)
				conflict = ci
				break
			}
		}
		c.watches[wi] = out
		if conflict >= 0 {
			return conflict
		}
	}
	return -1
}

// theoryConflict materializes the current theory-trail conflict as a
// learned clause (the negation of every asserted atom literal — a
// logical consequence, since the trail proved them jointly unsat) and
// returns its index for analysis.
func (c *cdcl) theoryConflict() int {
	cl := make([]int, len(c.th.lits))
	for i, l := range c.th.lits {
		cl[i] = -l
	}
	c.learned++
	return c.addUnderAssignment(cl)
}

// addUnderAssignment adds a clause whose literals are all currently
// false, placing the two highest-level literals at the watched
// positions so the watch invariant holds after backjumping.
func (c *cdcl) addUnderAssignment(cl []int) int {
	ci := len(c.clauses)
	if len(cl) >= 2 {
		hi := 0
		for j := 1; j < len(cl); j++ {
			if c.litLevel(cl[j]) > c.litLevel(cl[hi]) {
				hi = j
			}
		}
		cl[0], cl[hi] = cl[hi], cl[0]
		hi2 := 1
		for j := 2; j < len(cl); j++ {
			if c.litLevel(cl[j]) > c.litLevel(cl[hi2]) {
				hi2 = j
			}
		}
		cl[1], cl[hi2] = cl[hi2], cl[1]
		c.clauses = append(c.clauses, cl)
		c.watches[widx(cl[0])] = append(c.watches[widx(cl[0])], ci)
		c.watches[widx(cl[1])] = append(c.watches[widx(cl[1])], ci)
		return ci
	}
	c.clauses = append(c.clauses, cl) // unit: used as a conflict, unwatched
	return ci
}

// handleConflict learns a 1-UIP clause from the conflict and backjumps.
// Returns false when the conflict proves propositional unsatisfiability
// (it involves only root-level assignments).
func (c *cdcl) handleConflict(confl int) bool {
	c.conflicts++
	// Injected clauses (theory conflicts, blocking clauses) may sit
	// entirely below the current decision level; first backtrack to the
	// highest literal level so analyze sees a current-level conflict.
	ml := 0
	for _, q := range c.clauses[confl] {
		if l := c.litLevel(q); l > ml {
			ml = l
		}
	}
	if ml == 0 {
		return false
	}
	if ml < c.decisionLevel() {
		c.cancelUntil(ml)
	}
	learnt, back := c.analyze(confl)
	c.cancelUntil(back)
	c.addLearnt(learnt)
	c.varInc /= 0.95 // VSIDS decay
	return true
}

// analyze derives the first-UIP learned clause from the conflict.
// Returns the clause (asserting literal at position 0, highest-level
// remaining literal at position 1) and the backjump level.
func (c *cdcl) analyze(confl int) ([]int, int) {
	learnt := []int{0} // slot 0 reserved for the asserting literal
	counter := 0
	p := 0 // literal last resolved on (0 on the first iteration)
	idx := len(c.trail) - 1
	curLevel := c.decisionLevel()
	for {
		cl := c.clauses[confl]
		start := 0
		if p != 0 {
			start = 1 // cl[0] is the propagated literal p itself
		}
		for _, q := range cl[start:] {
			v := litVar(q)
			if !c.seen[v] && c.level[v] > 0 {
				c.seen[v] = true
				c.bump(v)
				if c.level[v] >= curLevel {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		for !c.seen[litVar(c.trail[idx])] {
			idx--
		}
		p = c.trail[idx]
		vp := litVar(p)
		c.seen[vp] = false
		counter--
		idx--
		if counter == 0 {
			break
		}
		confl = c.reason[vp]
	}
	learnt[0] = -p
	for _, q := range learnt[1:] {
		c.seen[litVar(q)] = false
	}
	back := 0
	if len(learnt) > 1 {
		hi := 1
		for j := 2; j < len(learnt); j++ {
			if c.litLevel(learnt[j]) > c.litLevel(learnt[hi]) {
				hi = j
			}
		}
		learnt[1], learnt[hi] = learnt[hi], learnt[1]
		back = c.litLevel(learnt[1])
	}
	return learnt, back
}

// addLearnt installs the learned clause and asserts its first literal.
func (c *cdcl) addLearnt(learnt []int) {
	c.learned++
	if len(learnt) == 1 {
		c.enqueue(learnt[0], -1) // asserted at the root
		return
	}
	ci := len(c.clauses)
	c.clauses = append(c.clauses, learnt)
	c.watches[widx(learnt[0])] = append(c.watches[widx(learnt[0])], ci)
	c.watches[widx(learnt[1])] = append(c.watches[widx(learnt[1])], ci)
	c.enqueue(learnt[0], ci)
}

func (c *cdcl) bump(v int) {
	c.activity[v] += c.varInc
	if c.activity[v] > 1e100 {
		for i := range c.activity {
			c.activity[i] *= 1e-100
		}
		c.varInc *= 1e-100
	}
}

// pickBranch returns the unassigned variable with the highest activity
// (lowest index on ties, keeping the search deterministic), or -1 when
// every variable is assigned.
func (c *cdcl) pickBranch() int {
	best := -1
	for v := 0; v < c.nvars; v++ {
		if c.assign[v] == 0 && (best < 0 || c.activity[v] > c.activity[best]) {
			best = v
		}
	}
	return best
}

func (c *cdcl) newDecisionLevel() {
	c.trailLim = append(c.trailLim, len(c.trail))
	c.thLim = append(c.thLim, c.th.size())
}

// cancelUntil backtracks to the given decision level, saving phases and
// unwinding the theory trail in lockstep.
func (c *cdcl) cancelUntil(level int) {
	if c.decisionLevel() <= level {
		return
	}
	for i := len(c.trail) - 1; i >= c.trailLim[level]; i-- {
		v := litVar(c.trail[i])
		c.phase[v] = c.assign[v]
		c.assign[v] = 0
		c.reason[v] = -1
	}
	c.trail = c.trail[:c.trailLim[level]]
	c.trailLim = c.trailLim[:level]
	c.th.popTo(c.thLim[level])
	c.thLim = c.thLim[:level]
	c.qhead = len(c.trail)
}

// search runs CDCL until a full model, propositional exhaustion, or the
// cumulative conflict budget.
func (c *cdcl) search(propBudget int64) cdclStatus {
	if c.failed {
		return cdclUnsat
	}
	for {
		confl := c.propagate()
		if confl >= 0 {
			if !c.handleConflict(confl) {
				return cdclUnsat
			}
			if c.conflicts >= propBudget {
				return cdclBudget
			}
			continue
		}
		v := c.pickBranch()
		if v < 0 {
			return cdclSat
		}
		c.newDecisionLevel()
		lit := v + 1
		if c.phase[v] < 0 {
			lit = -lit
		}
		c.enqueue(lit, -1)
	}
}

// addBlocking installs a theory blocking clause for the current full
// assignment and backjumps past it. Returns false when the clause
// proves the propositional space exhausted.
func (c *cdcl) addBlocking(lits []int) bool {
	if len(lits) == 0 {
		return false
	}
	ml := 0
	for _, q := range lits {
		if l := c.litLevel(q); l > ml {
			ml = l
		}
	}
	if ml == 0 {
		return false // the blocked assignment is forced at the root
	}
	c.learned++
	return c.handleConflict(c.addUnderAssignment(lits))
}
