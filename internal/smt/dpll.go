package smt

import (
	"fmt"
	"sync/atomic"

	"repro/internal/logic"
)

// satDPLLNaive is the pre-learning lazy SMT loop: restart recursive
// DPLL from scratch after every theory conflict, accumulating blocking
// clauses. Retained verbatim as the differential-testing reference for
// the CDCL solver (FuzzDPLLAgainstReference) — the production path is
// satDPLL in cdcl.go.
func (s *Solver) satDPLLNaive(f logic.Formula) Result {
	sk := newSkeleton(f)
	unknown := false
	for i := 0; i < s.maxConflicts; i++ {
		assign := sk.solve()
		if assign == nil {
			if unknown {
				return Result{Sat: true}
			}
			return Result{Known: true} // propositionally exhausted
		}
		cube := sk.theoryCube(assign)
		r := s.satCube(cube)
		if r.Sat && r.Known {
			return r
		}
		if r.Sat && !r.Known {
			// Rationally satisfiable but no integer witness found: block
			// this assignment and remember we cannot claim UNSAT.
			unknown = true
		}
		atomic.AddInt64(&s.stats.Conflicts, 1)
		sk.block(s, assign, cube, !r.Sat && r.Known)
	}
	return Result{Sat: true}
}

// skeleton is the propositional abstraction: atom i of atoms corresponds
// to boolean variable i; gate variables for And/Or nodes follow.
type skeleton struct {
	atoms    []logic.Atom
	atomVars []int // boolean variable index of atoms[i]
	index    map[logic.ID]int
	indexStr map[string]int // fallback for intern-table overflow
	clauses  [][]int        // literals: +v+1 (positive), -(v+1) (negative)
	nvars    int
}

func newSkeleton(f logic.Formula) *skeleton {
	sk := &skeleton{index: map[logic.ID]int{}}
	root := sk.encode(f)
	sk.clauses = append(sk.clauses, []int{root})
	return sk
}

// atomVar interns the atom and returns its boolean variable index. The
// key is the hash-consed id of the atom's term — an integer map lookup
// instead of the string render this used to pay per encode.
func (sk *skeleton) atomVar(a logic.Atom) int {
	id := logic.LinID(a.L)
	if id == 0 {
		key := a.L.String()
		if i, ok := sk.indexStr[key]; ok {
			return i
		}
		if sk.indexStr == nil {
			sk.indexStr = map[string]int{}
		}
		sk.indexStr[key] = sk.addAtom(a)
		return sk.indexStr[key]
	}
	if i, ok := sk.index[id]; ok {
		return i
	}
	i := sk.addAtom(a)
	sk.index[id] = i
	return i
}

func (sk *skeleton) addAtom(a logic.Atom) int {
	i := sk.nvars
	sk.nvars++
	sk.atoms = append(sk.atoms, a)
	sk.atomVars = append(sk.atomVars, i)
	return i
}

// encode returns the literal representing f, adding Plaisted–Greenbaum
// (one-sided, sufficient for NNF) definition clauses for gates.
func (sk *skeleton) encode(f logic.Formula) int {
	switch f := f.(type) {
	case logic.Bool:
		// Encode constants as a fresh gate forced to the right value.
		g := sk.freshGate()
		if bool(f) {
			sk.clauses = append(sk.clauses, []int{g})
		} else {
			sk.clauses = append(sk.clauses, []int{-g})
		}
		return g
	case logic.Atom:
		if f.Eq {
			panic("smt: equality atom reached the DPLL skeleton")
		}
		return sk.atomVar(f) + 1
	case logic.And:
		g := sk.freshGate()
		for _, child := range f.Fs {
			c := sk.encode(child)
			sk.clauses = append(sk.clauses, []int{-g, c})
		}
		return g
	case logic.Or:
		g := sk.freshGate()
		cl := []int{-g}
		for _, child := range f.Fs {
			cl = append(cl, sk.encode(child))
		}
		sk.clauses = append(sk.clauses, cl)
		return g
	default:
		panic(fmt.Sprintf("smt: unknown Formula %T", f))
	}
}

func (sk *skeleton) freshGate() int {
	sk.nvars++
	return sk.nvars // 1-based literal for the new var (index nvars-1)
}

// solve runs recursive DPLL with unit propagation and returns a full
// assignment (index → value) or nil when propositionally unsatisfiable.
func (sk *skeleton) solve() []int8 {
	assign := make([]int8, sk.nvars) // 0 unassigned, 1 true, -1 false
	if sk.dpll(assign) {
		return assign
	}
	return nil
}

func (sk *skeleton) dpll(assign []int8) bool {
	for {
		status, unit := sk.propagateOnce(assign)
		switch status {
		case stConflict:
			return false
		case stUnit:
			set(assign, unit)
			continue
		}
		break
	}
	// Pick the first unassigned variable.
	v := -1
	for i, a := range assign {
		if a == 0 {
			v = i
			break
		}
	}
	if v == -1 {
		return true
	}
	for _, val := range []int8{1, -1} {
		saved := append([]int8(nil), assign...)
		assign[v] = val
		if sk.dpll(assign) {
			return true
		}
		copy(assign, saved)
	}
	return false
}

type propStatus int

const (
	stStable propStatus = iota
	stUnit
	stConflict
)

// propagateOnce scans clauses for a conflict or a unit literal.
func (sk *skeleton) propagateOnce(assign []int8) (propStatus, int) {
	for _, cl := range sk.clauses {
		satisfied := false
		unassigned := 0
		lastFree := 0
		for _, lit := range cl {
			switch litValue(assign, lit) {
			case 1:
				satisfied = true
			case 0:
				unassigned++
				lastFree = lit
			}
			if satisfied {
				break
			}
		}
		if satisfied {
			continue
		}
		if unassigned == 0 {
			return stConflict, 0
		}
		if unassigned == 1 {
			return stUnit, lastFree
		}
	}
	return stStable, 0
}

func litValue(assign []int8, lit int) int8 {
	v := lit
	if v < 0 {
		v = -v
	}
	a := assign[v-1]
	if lit < 0 {
		return -a
	}
	return a
}

func set(assign []int8, lit int) {
	if lit > 0 {
		assign[lit-1] = 1
	} else {
		assign[-lit-1] = -1
	}
}

// theoryCube collects the linear constraints asserted by the assignment:
// atom true contributes L ≤ 0, atom false contributes ¬(L ≤ 0) = -L+1 ≤ 0.
func (sk *skeleton) theoryCube(assign []int8) logic.Cube {
	var cube logic.Cube
	for i, a := range sk.atoms {
		switch assign[sk.atomVars[i]] {
		case 1:
			cube = append(cube, a)
		case -1:
			cube = append(cube, logic.Atom{L: a.L.Scale(-1).AddConst(1)})
		}
	}
	return cube
}

// block adds a clause forbidding the current theory assignment. When the
// conflict is a proven theory UNSAT, the clause is first minimized
// greedily so it prunes more of the search space.
func (sk *skeleton) block(s *Solver, assign []int8, cube logic.Cube, provenUnsat bool) {
	sk.clauses = append(sk.clauses, sk.blockingLits(s, assign, provenUnsat))
}

// blockingLits computes the clause forbidding the atom part of the
// current full assignment: literals over atom variables only, since gate
// variables are functionally determined and must not appear in learned
// clauses. When the conflict is a proven theory UNSAT the clause is
// minimized greedily: drop literals whose removal keeps the remaining
// constraint set unsatisfiable, so the clause prunes more of the space.
func (sk *skeleton) blockingLits(s *Solver, assign []int8, provenUnsat bool) []int {
	type litAtom struct {
		lit  int
		atom logic.Atom
	}
	var lits []litAtom
	for i := range sk.atoms {
		v := sk.atomVars[i]
		switch assign[v] {
		case 1:
			lits = append(lits, litAtom{-(v + 1), cubeAtom(sk.atoms[i], true)})
		case -1:
			lits = append(lits, litAtom{v + 1, cubeAtom(sk.atoms[i], false)})
		}
	}
	if provenUnsat && len(lits) > 2 && len(lits) <= 64 {
		kept := lits
		for i := 0; i < len(kept) && len(kept) > 1; {
			trial := make(logic.Cube, 0, len(kept)-1)
			for j, la := range kept {
				if j != i {
					trial = append(trial, la.atom)
				}
			}
			vars := cubeVars(trial)
			if !s.rationallySat(trial, vars) {
				kept = append(kept[:i:i], kept[i+1:]...)
			} else {
				i++
			}
		}
		lits = kept
	}
	cl := make([]int, len(lits))
	for i, la := range lits {
		cl[i] = la.lit
	}
	return cl
}

func cubeAtom(a logic.Atom, positive bool) logic.Atom {
	if positive {
		return a
	}
	return logic.Atom{L: a.L.Scale(-1).AddConst(1)}
}
