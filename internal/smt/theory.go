// Backtrackable theory state for the CDCL loop: a trail of asserted
// ≤-atoms with incremental integer-interval propagation and O(1)
// push/pop. As the SAT core assigns atom variables, each implied linear
// constraint is asserted here; single-variable atoms tighten exact
// integer bounds and multi-variable atoms are interval-checked against
// the current box. A detected conflict is always a proven integer
// inconsistency of the asserted atoms, so the search prunes a partial
// assignment without paying a full Fourier–Motzkin check — and on
// backtracking the trail pops to the decision mark, reusing every bound
// derived on the shared prefix instead of rebuilding per theory check.
//
// Detection is deliberately incomplete (a full assignment that survives
// the trail still goes through satCube); soundness only needs the
// converse, that every reported conflict is real. Arithmetic is
// overflow-guarded: any derivation that could exceed the guard range
// concludes nothing rather than risking a false conflict.
package smt

import (
	"repro/internal/lang"
	"repro/internal/logic"
)

// Guard ranges for the interval arithmetic; anything beyond them is
// treated as unbounded (no conclusion), so overflow can never
// manufacture a false conflict.
const (
	thGuard     = int64(1) << 40 // bound magnitudes
	thCoefGuard = int64(1) << 20 // coefficient magnitudes
	thSumGuard  = int64(1) << 62 // running-sum magnitude
)

// interval is an integer interval with optional endpoints.
type interval struct {
	lo, hi       int64
	hasLo, hasHi bool
}

type thUndo struct {
	v    lang.Var
	prev interval
	had  bool // v had an entry before this assertion
}

// theoryTrail is the backtrackable bounds store.
type theoryTrail struct {
	bounds map[lang.Var]interval
	undo   []thUndo
	lits   []int // asserted skeleton literals, in assertion order
	marks  []int // undo length before each asserted literal
}

func newTheoryTrail() *theoryTrail {
	return &theoryTrail{bounds: map[lang.Var]interval{}}
}

// size returns the trail length (for decision-level marks).
func (t *theoryTrail) size() int { return len(t.lits) }

// popTo unwinds the trail to length n, restoring every bound the popped
// assertions tightened.
func (t *theoryTrail) popTo(n int) {
	for i := len(t.lits) - 1; i >= n; i-- {
		for j := len(t.undo) - 1; j >= t.marks[i]; j-- {
			u := t.undo[j]
			if u.had {
				t.bounds[u.v] = u.prev
			} else {
				delete(t.bounds, u.v)
			}
		}
		t.undo = t.undo[:t.marks[i]]
	}
	t.lits = t.lits[:n]
	t.marks = t.marks[:n]
}

// setBound records the previous interval for undo and stores the new
// one.
func (t *theoryTrail) setBound(v lang.Var, iv interval) {
	prev, had := t.bounds[v]
	t.undo = append(t.undo, thUndo{v: v, prev: prev, had: had})
	t.bounds[v] = iv
}

// assert records the atom (a.L ≤ 0) implied by skeleton literal lit and
// returns false when the asserted set is proven integer-unsatisfiable.
func (t *theoryTrail) assert(a logic.Atom, lit int) bool {
	t.lits = append(t.lits, lit)
	t.marks = append(t.marks, len(t.undo))
	if a.Eq {
		return true // equalities never reach the skeleton; be lenient
	}
	l := a.L
	if len(l.Vars) == 1 {
		return t.assertSingle(l.Vars[0], l.Coefs[0], l.K)
	}
	return !t.refutesBox(l)
}

// assertSingle tightens the interval of v from c·v + k ≤ 0.
func (t *theoryTrail) assertSingle(v lang.Var, c, k int64) bool {
	if k <= -thGuard || k >= thGuard || c <= -thGuard || c >= thGuard {
		return true // out of guarded range: no conclusion
	}
	iv := t.bounds[v]
	if c > 0 {
		// v ≤ ⌊-k/c⌋.
		b := floorDivI(-k, c)
		if !iv.hasHi || b < iv.hi {
			iv.hi, iv.hasHi = b, true
			t.setBound(v, iv)
		}
	} else {
		// (-c)·v ≥ k → v ≥ ⌈k/(-c)⌉.
		b := ceilDivI(k, -c)
		if !iv.hasLo || b > iv.lo {
			iv.lo, iv.hasLo = b, true
			t.setBound(v, iv)
		}
	}
	return !(iv.hasLo && iv.hasHi && iv.lo > iv.hi)
}

// refutesBox reports whether l ≤ 0 is impossible under the current box:
// true when the minimum of l over the box provably exceeds 0. Missing
// bounds or guarded overflow yield false (no conclusion).
func (t *theoryTrail) refutesBox(l logic.Lin) bool {
	minVal := l.K
	if minVal <= -thGuard || minVal >= thGuard {
		return false
	}
	for i, v := range l.Vars {
		c := l.Coefs[i]
		iv := t.bounds[v]
		var b int64
		switch {
		case c > 0 && iv.hasLo:
			b = iv.lo
		case c < 0 && iv.hasHi:
			b = iv.hi
		default:
			return false // unbounded in the minimizing direction
		}
		// |c| < 2^20 and |b| < 2^40 keep c·b under 2^60; the running sum
		// stays under 2^62. Anything larger concludes nothing.
		if c <= -thCoefGuard || c >= thCoefGuard || b <= -thGuard || b >= thGuard {
			return false
		}
		minVal += c * b
		if minVal <= -thSumGuard || minVal >= thSumGuard {
			return false
		}
	}
	return minVal > 0
}

// floorDivI returns ⌊a/b⌋ for b > 0 (logic keeps its own unexported).
func floorDivI(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// ceilDivI returns ⌈a/b⌉ for b > 0.
func ceilDivI(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		q++
	}
	return q
}
