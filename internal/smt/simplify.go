package smt

import (
	"repro/internal/logic"
)

// maxSimplifyParts bounds the width of conjunctions/disjunctions the
// simplifier will attempt; larger formulas are returned unchanged.
const maxSimplifyParts = 48

// Simplify removes redundant conjuncts and disjuncts from f using
// implication checks: a conjunct implied by its siblings is dropped, as is
// a disjunct that implies the disjunction of its siblings. The result is
// logically equivalent to f. Simplification keeps the region formulas of
// refinement-based analyses from accumulating junk across splits.
func (s *Solver) Simplify(f logic.Formula) logic.Formula {
	switch f := f.(type) {
	case logic.And:
		if len(f.Fs) > maxSimplifyParts {
			return f
		}
		parts := make([]logic.Formula, len(f.Fs))
		for i, g := range f.Fs {
			parts[i] = s.Simplify(g)
		}
		// Greedy deletion filter, scanning from the back so recently
		// added (usually more redundant) conjuncts go first.
		kept := append([]logic.Formula(nil), parts...)
		for i := len(kept) - 1; i >= 0 && len(kept) > 1; i-- {
			rest := make([]logic.Formula, 0, len(kept)-1)
			rest = append(rest, kept[:i]...)
			rest = append(rest, kept[i+1:]...)
			if s.Implies(logic.Conj(rest...), kept[i]) {
				kept = rest
			}
		}
		return logic.Conj(kept...)
	case logic.Or:
		if len(f.Fs) > maxSimplifyParts {
			return f
		}
		parts := make([]logic.Formula, len(f.Fs))
		for i, g := range f.Fs {
			parts[i] = s.Simplify(g)
		}
		kept := append([]logic.Formula(nil), parts...)
		for i := len(kept) - 1; i >= 0 && len(kept) > 1; i-- {
			rest := make([]logic.Formula, 0, len(kept)-1)
			rest = append(rest, kept[:i]...)
			rest = append(rest, kept[i+1:]...)
			if s.Implies(kept[i], logic.Disj(rest...)) {
				kept = rest
			}
		}
		return logic.Disj(kept...)
	default:
		return f
	}
}
