package smt

import (
	"math/rand"
	"testing"

	"repro/internal/lang"
	"repro/internal/logic"
)

func v(name string) logic.Lin         { return logic.LinVar(lang.Var(name)) }
func k(x int64) logic.Lin             { return logic.LinConst(x) }
func le(a, b logic.Lin) logic.Formula { return logic.LEq(a, b) }

func TestSatTrivial(t *testing.T) {
	s := New()
	if r := s.Sat(logic.True); !r.Sat || !r.Known {
		t.Fatalf("Sat(true) = %+v", r)
	}
	if r := s.Sat(logic.False); r.Sat || !r.Known {
		t.Fatalf("Sat(false) = %+v", r)
	}
}

func TestSatSimpleConjunction(t *testing.T) {
	s := New()
	// x ≥ 3 ∧ x ≤ 5 ∧ y = x + 1.
	f := logic.Conj(
		le(k(3), v("x")),
		le(v("x"), k(5)),
		logic.Eq(v("y"), v("x").AddConst(1)),
	)
	r := s.Sat(f)
	if !r.Sat || !r.Known || r.Model == nil {
		t.Fatalf("expected sat with model, got %+v", r)
	}
	if !logic.Eval(f, r.Model) {
		t.Fatalf("model %v does not satisfy %v", r.Model, f)
	}
}

func TestSatUnsatConjunction(t *testing.T) {
	s := New()
	// x ≤ 2 ∧ x ≥ 5.
	f := logic.Conj(le(v("x"), k(2)), le(k(5), v("x")))
	if r := s.Sat(f); r.Sat || !r.Known {
		t.Fatalf("expected proven unsat, got %+v", r)
	}
}

func TestSatIntegerOnlyGap(t *testing.T) {
	s := New()
	// 2x = 1 is rationally satisfiable but integer-unsat:
	// encoded as 2x ≤ 1 ∧ 2x ≥ 1.
	f := logic.Conj(
		le(v("x").Scale(2), k(1)),
		le(k(1), v("x").Scale(2)),
	)
	r := s.Sat(f)
	if r.Sat && r.Model != nil {
		t.Fatalf("found impossible model %v", r.Model)
	}
	// The solver may answer unknown here (dark-shadow incompleteness) but
	// must never produce a model.
}

func TestSatIntegerGapWithRoom(t *testing.T) {
	s := New()
	// 3 ≤ 2x ≤ 5 has the integer solution x = 2.
	f := logic.Conj(
		le(k(3), v("x").Scale(2)),
		le(v("x").Scale(2), k(5)),
	)
	r := s.Sat(f)
	if !r.Sat || r.Model == nil {
		t.Fatalf("expected model, got %+v", r)
	}
	if r.Model["x"] != 2 {
		t.Fatalf("x = %d, want 2", r.Model["x"])
	}
}

func TestSatDisjunction(t *testing.T) {
	s := New()
	// (x ≤ -10 ∨ x ≥ 10) ∧ 0 ≤ x ∧ x ≤ 20.
	f := logic.Conj(
		logic.Disj(le(v("x"), k(-10)), le(k(10), v("x"))),
		le(k(0), v("x")),
		le(v("x"), k(20)),
	)
	r := s.Sat(f)
	if !r.Sat || r.Model == nil {
		t.Fatalf("expected sat, got %+v", r)
	}
	if x := r.Model["x"]; x < 10 || x > 20 {
		t.Fatalf("model x = %d outside [10,20]", x)
	}
}

func TestValidAndImplies(t *testing.T) {
	s := New()
	// x ≤ 3 ⇒ x ≤ 10.
	if !s.Implies(le(v("x"), k(3)), le(v("x"), k(10))) {
		t.Error("x≤3 ⇒ x≤10 should be valid")
	}
	if s.Implies(le(v("x"), k(10)), le(v("x"), k(3))) {
		t.Error("x≤10 ⇒ x≤3 should not be valid")
	}
	// x = y ⇒ x ≤ y.
	if !s.Implies(logic.Eq(v("x"), v("y")), le(v("x"), v("y"))) {
		t.Error("x=y ⇒ x≤y should be valid")
	}
	if !s.Valid(logic.Disj(le(v("x"), k(0)), le(k(1), v("x")))) {
		t.Error("x≤0 ∨ x≥1 should be valid over the integers")
	}
}

func TestEquivalent(t *testing.T) {
	s := New()
	a := logic.Lt(v("x"), k(5)) // x < 5
	b := le(v("x"), k(4))       // x ≤ 4
	if !s.Equivalent(a, b) {
		t.Error("x<5 and x≤4 should be equivalent over the integers")
	}
	if s.Equivalent(a, le(v("x"), k(5))) {
		t.Error("x<5 and x≤5 should differ")
	}
}

// randFormula builds a random formula over three variables with small
// coefficients, bounded so brute force can decide it.
func randFormula(r *rand.Rand, depth int) logic.Formula {
	if depth == 0 || r.Intn(3) == 0 {
		terms := logic.LinConst(int64(r.Intn(9) - 4))
		for _, name := range []lang.Var{"x", "y", "z"} {
			c := int64(r.Intn(5) - 2)
			if c != 0 {
				terms = terms.Add(logic.LinVar(name).Scale(c))
			}
		}
		if r.Intn(4) == 0 {
			return logic.EQ(terms)
		}
		return logic.LE(terms)
	}
	n := 2 + r.Intn(2)
	fs := make([]logic.Formula, n)
	for i := range fs {
		fs[i] = randFormula(r, depth-1)
	}
	if r.Intn(2) == 0 {
		return logic.Conj(fs...)
	}
	return logic.Disj(fs...)
}

// bruteSat searches the box [-B,B]^3 for a model.
func bruteSat(f logic.Formula, bound int64) (map[lang.Var]int64, bool) {
	for x := -bound; x <= bound; x++ {
		for y := -bound; y <= bound; y++ {
			for z := -bound; z <= bound; z++ {
				m := map[lang.Var]int64{"x": x, "y": y, "z": z}
				if logic.Eval(f, m) {
					return m, true
				}
			}
		}
	}
	return nil, false
}

// Property: the solver agrees with brute force on random small formulas.
// Coefficients ≤ 2 and constants ≤ 4 keep every satisfiable instance's
// witness inside the search box.
func TestSolverAgreesWithBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	s := New()
	disagreeUnknown := 0
	for i := 0; i < 400; i++ {
		f := randFormula(r, 2)
		_, bruteHas := bruteSat(f, 12)
		got := s.Sat(f)
		if got.Known {
			if got.Sat != bruteHas && bruteHas {
				t.Fatalf("solver says unsat, brute force found a model: %v", f)
			}
			if got.Sat && got.Model == nil {
				t.Fatalf("known-sat without model: %v", f)
			}
			if got.Model != nil && !logic.Eval(f, got.Model) {
				t.Fatalf("invalid model %v for %v", got.Model, f)
			}
			if got.Sat && !bruteHas {
				// Model may be outside the brute-force box; verify it.
				if !logic.Eval(f, got.Model) {
					t.Fatalf("model outside box is invalid: %v for %v", got.Model, f)
				}
			}
		} else {
			disagreeUnknown++
		}
	}
	if disagreeUnknown > 40 {
		t.Fatalf("too many unknown verdicts: %d/400", disagreeUnknown)
	}
}

// Property: UNSAT answers are always sound on random formulas conjoined
// with their negation.
func TestContradictionsAreUnsat(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	s := New()
	proven := 0
	for i := 0; i < 200; i++ {
		f := randFormula(r, 2)
		contra := logic.Conj(f, logic.Not(f))
		got := s.Sat(contra)
		if got.Model != nil {
			t.Fatalf("model %v satisfies f ∧ ¬f for f=%v", got.Model, f)
		}
		if got.Known && !got.Sat {
			proven++
		}
	}
	if proven < 150 {
		t.Fatalf("solver proved only %d/200 contradictions", proven)
	}
}

func TestDPLLPathLargeDisjunction(t *testing.T) {
	s := New()
	// Force the DPLL path: conjunction of many binary disjunctions
	// (2^n cubes) with a single consistent assignment.
	var fs []logic.Formula
	for i := 0; i < 8; i++ {
		name := lang.Var(string(rune('a' + i)))
		fs = append(fs, logic.Disj(
			le(logic.LinVar(name), k(-1)),
			le(k(1), logic.LinVar(name)),
		))
		fs = append(fs, le(k(0), logic.LinVar(name))) // forces the ≥1 arm
	}
	f := logic.Conj(fs...)
	r := s.Sat(f)
	if !r.Sat || r.Model == nil {
		t.Fatalf("expected sat, got %+v", r)
	}
	for i := 0; i < 8; i++ {
		name := lang.Var(string(rune('a' + i)))
		if r.Model[name] < 1 {
			t.Fatalf("model %v violates %s ≥ 1", r.Model, name)
		}
	}
}

func TestDPLLPathUnsat(t *testing.T) {
	s := New()
	var fs []logic.Formula
	for i := 0; i < 6; i++ {
		name := lang.Var(string(rune('a' + i)))
		fs = append(fs, logic.Disj(
			le(logic.LinVar(name), k(-1)),
			le(k(1), logic.LinVar(name)),
		))
	}
	// a + b + c + d + e + f = 0 with every variable in {≤-1} ∪ {≥1} is
	// satisfiable (e.g. three of each), but adding all ≥ 1 bounds and the
	// sum ≤ 5 is unsat since the sum must be ≥ 6.
	sum := logic.LinConst(0)
	for i := 0; i < 6; i++ {
		name := lang.Var(string(rune('a' + i)))
		sum = sum.Add(logic.LinVar(name))
		fs = append(fs, le(k(1), logic.LinVar(name)))
	}
	fs = append(fs, le(sum, k(5)))
	r := s.Sat(logic.Conj(fs...))
	if r.Sat || !r.Known {
		t.Fatalf("expected proven unsat, got %+v", r)
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := New()
	before := s.StatsSnapshot()
	s.Sat(le(v("x"), k(0)))
	s.Sat(le(k(1), v("x")))
	after := s.StatsSnapshot()
	if after.SatCalls != before.SatCalls+2 {
		t.Fatalf("SatCalls = %d, want %d", after.SatCalls, before.SatCalls+2)
	}
	if after.Ticks <= before.Ticks {
		t.Fatal("Ticks did not advance")
	}
}

func TestModelHelper(t *testing.T) {
	s := New()
	f := logic.Conj(le(k(7), v("x")), le(v("x"), k(7)))
	m := s.Model(f)
	if m == nil || m["x"] != 7 {
		t.Fatalf("Model = %v, want x=7", m)
	}
	if s.Model(logic.False) != nil {
		t.Fatal("Model(false) should be nil")
	}
}

func TestSimplifyDropsRedundantConjuncts(t *testing.T) {
	s := New()
	// x ≤ 3 ∧ x ≤ 10 ∧ x ≥ 0  →  the x ≤ 10 conjunct is implied.
	f := logic.Conj(le(v("x"), k(3)), le(v("x"), k(10)), le(k(0), v("x")))
	g := s.Simplify(f)
	if logic.Size(g) >= logic.Size(f) {
		t.Fatalf("no simplification: %v -> %v", f, g)
	}
	if !s.Equivalent(f, g) {
		t.Fatalf("simplification changed semantics: %v vs %v", f, g)
	}
}

func TestSimplifyDropsAbsorbedDisjuncts(t *testing.T) {
	s := New()
	// (x ≤ 3) ∨ (x ≤ 10): the first disjunct implies the second.
	f := logic.Disj(le(v("x"), k(3)), le(v("x"), k(10)))
	g := s.Simplify(f)
	if logic.Size(g) >= logic.Size(f) {
		t.Fatalf("no simplification: %v -> %v", f, g)
	}
	if !s.Equivalent(f, g) {
		t.Fatal("semantics changed")
	}
}

func TestSimplifyPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	s := New()
	for i := 0; i < 120; i++ {
		f := randFormula(r, 2)
		g := s.Simplify(f)
		m := map[lang.Var]int64{
			"x": int64(r.Intn(11) - 5),
			"y": int64(r.Intn(11) - 5),
			"z": int64(r.Intn(11) - 5),
		}
		if logic.Eval(f, m) != logic.Eval(g, m) {
			t.Fatalf("Simplify changed semantics under %v:\n f=%v\n g=%v", m, f, g)
		}
	}
}

func TestOversizedFormulaIsUnknownNotWrong(t *testing.T) {
	s := New()
	// Build a conjunction larger than the size cap that is actually
	// unsatisfiable; the solver may answer unknown but never "sat with
	// model" or a wrong proof.
	fs := []logic.Formula{le(k(1), v("x")), le(v("x"), k(0))}
	for i := 0; i < 3000; i++ {
		fs = append(fs, le(v("x"), k(int64(i+100))))
	}
	r := s.Sat(logic.Conj(fs...))
	if r.Model != nil {
		t.Fatal("model for an unsatisfiable formula")
	}
	if r.Known && r.Sat {
		t.Fatal("claimed known-sat without model")
	}
}
