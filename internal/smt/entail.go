// Sharded entailment cache: a striped-lock memo for Implies/Valid
// verdicts, shared between concurrent PUNCH instances the same way SUMDB
// is. Entailment over immutable formulas is a pure function of the two
// keys, so a cached verdict never needs invalidation; SUMDB's
// version-invalidated answer memo composes with it unchanged.
package smt

import (
	"sync"

	"repro/internal/logic"
)

const (
	// entailShards stripes the memo so concurrent workers rarely contend
	// on the same lock.
	entailShards = 64
	// maxEntailPerShard bounds each stripe; a full stripe is dropped
	// wholesale rather than evicted entry-by-entry.
	maxEntailPerShard = 1 << 10
	// maxSynConjuncts bounds the quadratic conjunct-subsumption scan.
	maxSynConjuncts = 16
)

// entailKey identifies one memoized verdict by the hash-consed ids of
// the operands: kind 'I' is Implies(a ⇒ b), kind 'V' is Valid(a). A
// struct key over integers makes the cached path allocation-free — no
// string build, no key concatenation.
type entailKey struct {
	kind byte
	a, b logic.ID
}

type entailShard struct {
	mu sync.RWMutex
	m  map[entailKey]bool
	// ms is the fallback for formulas past the intern-table cap, which
	// have no id and key by their structural print.
	ms map[string]bool
}

type entailCache struct {
	shards [entailShards]entailShard
}

func newEntailCache() *entailCache {
	c := &entailCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[entailKey]bool)
	}
	return c
}

// shardOf picks a stripe by mixing the operand ids.
func shardOf(key entailKey) uint32 {
	h := (uint64(key.a)*0x9e3779b97f4a7c15 ^ uint64(key.b)) * 0x9e3779b97f4a7c15
	h ^= uint64(key.kind)
	return uint32(h>>33) % entailShards
}

// shardOfStr picks a stripe by FNV-1a over a fallback string key.
func shardOfStr(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h % entailShards
}

func (c *entailCache) get(key entailKey) (bool, bool) {
	sh := &c.shards[shardOf(key)]
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	return v, ok
}

func (c *entailCache) put(key entailKey, v bool) {
	sh := &c.shards[shardOf(key)]
	sh.mu.Lock()
	if len(sh.m) >= maxEntailPerShard {
		sh.m = make(map[entailKey]bool)
	}
	sh.m[key] = v
	sh.mu.Unlock()
}

func (c *entailCache) getStr(key string) (bool, bool) {
	sh := &c.shards[shardOfStr(key)]
	sh.mu.RLock()
	v, ok := sh.ms[key]
	sh.mu.RUnlock()
	return v, ok
}

func (c *entailCache) putStr(key string, v bool) {
	sh := &c.shards[shardOfStr(key)]
	sh.mu.Lock()
	if sh.ms == nil || len(sh.ms) >= maxEntailPerShard {
		sh.ms = make(map[string]bool)
	}
	sh.ms[key] = v
	sh.mu.Unlock()
}

// len reports the total number of cached verdicts (test support).
func (c *entailCache) len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.m) + len(sh.ms)
		sh.mu.RUnlock()
	}
	return n
}

// syntacticImplies is the cheap literal-subsumption pre-check run before
// DPLL: it proves a ⇒ b when every conjunct of b is entailed by some
// conjunct of a, where "entailed" is structural equality or, for ≤-atoms,
// a constant-offset comparison (L ≤ 0 entails L + c ≤ 0 for c ≤ 0).
// A true answer is always sound; false means "fall through to the solver".
func syntacticImplies(a, b logic.Formula) bool {
	if bb, ok := b.(logic.Bool); ok {
		return bool(bb)
	}
	if ab, ok := a.(logic.Bool); ok && !bool(ab) {
		return true
	}
	ac, bc := conjunctsOf(a), conjunctsOf(b)
	if len(ac) > maxSynConjuncts || len(bc) > maxSynConjuncts {
		return false
	}
	keys := make(map[logic.ID]bool, len(ac))
	for _, g := range ac {
		if id := logic.KeyID(g); id != 0 {
			keys[id] = true
		}
	}
	for _, g := range bc {
		if !conjunctEntailed(ac, keys, g) {
			return false
		}
	}
	return true
}

// conjunctsOf returns the top-level conjuncts of f (f itself when it is
// not a conjunction). Conj flattens at construction, so one level is
// enough.
func conjunctsOf(f logic.Formula) []logic.Formula {
	if and, ok := f.(logic.And); ok {
		return and.Fs
	}
	return []logic.Formula{f}
}

// conjunctEntailed reports whether some conjunct of a entails g
// syntactically.
func conjunctEntailed(ac []logic.Formula, keys map[logic.ID]bool, g logic.Formula) bool {
	if id := logic.KeyID(g); id != 0 && keys[id] {
		return true
	}
	ga, ok := g.(logic.Atom)
	if !ok || ga.Eq {
		return false
	}
	for _, h := range ac {
		ha, ok := h.(logic.Atom)
		if !ok || ha.Eq {
			continue
		}
		// h: L ≤ 0 entails g: L + c ≤ 0 whenever c ≤ 0.
		if d := ga.L.Sub(ha.L); d.IsConst() && d.K <= 0 {
			return true
		}
	}
	return false
}
