// Sharded entailment cache: a striped-lock memo for Implies/Valid
// verdicts, shared between concurrent PUNCH instances the same way SUMDB
// is. Entailment over immutable formulas is a pure function of the two
// keys, so a cached verdict never needs invalidation; SUMDB's
// version-invalidated answer memo composes with it unchanged.
package smt

import (
	"sync"

	"repro/internal/logic"
)

const (
	// entailShards stripes the memo so concurrent workers rarely contend
	// on the same lock.
	entailShards = 64
	// maxEntailPerShard bounds each stripe; a full stripe is dropped
	// wholesale rather than evicted entry-by-entry.
	maxEntailPerShard = 1 << 10
	// maxSynConjuncts bounds the quadratic conjunct-subsumption scan.
	maxSynConjuncts = 16
)

type entailShard struct {
	mu sync.RWMutex
	m  map[string]bool
}

type entailCache struct {
	shards [entailShards]entailShard
}

func newEntailCache() *entailCache {
	c := &entailCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[string]bool)
	}
	return c
}

// shardOf picks a stripe by FNV-1a over the key.
func shardOf(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h % entailShards
}

func (c *entailCache) get(key string) (bool, bool) {
	sh := &c.shards[shardOf(key)]
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	return v, ok
}

func (c *entailCache) put(key string, v bool) {
	sh := &c.shards[shardOf(key)]
	sh.mu.Lock()
	if len(sh.m) >= maxEntailPerShard {
		sh.m = make(map[string]bool)
	}
	sh.m[key] = v
	sh.mu.Unlock()
}

// len reports the total number of cached verdicts (test support).
func (c *entailCache) len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// syntacticImplies is the cheap literal-subsumption pre-check run before
// DPLL: it proves a ⇒ b when every conjunct of b is entailed by some
// conjunct of a, where "entailed" is structural equality or, for ≤-atoms,
// a constant-offset comparison (L ≤ 0 entails L + c ≤ 0 for c ≤ 0).
// A true answer is always sound; false means "fall through to the solver".
func syntacticImplies(a, b logic.Formula) bool {
	if bb, ok := b.(logic.Bool); ok {
		return bool(bb)
	}
	if ab, ok := a.(logic.Bool); ok && !bool(ab) {
		return true
	}
	ac, bc := conjunctsOf(a), conjunctsOf(b)
	if len(ac) > maxSynConjuncts || len(bc) > maxSynConjuncts {
		return false
	}
	keys := make(map[string]bool, len(ac))
	for _, g := range ac {
		keys[logic.Key(g)] = true
	}
	for _, g := range bc {
		if !conjunctEntailed(ac, keys, g) {
			return false
		}
	}
	return true
}

// conjunctsOf returns the top-level conjuncts of f (f itself when it is
// not a conjunction). Conj flattens at construction, so one level is
// enough.
func conjunctsOf(f logic.Formula) []logic.Formula {
	if and, ok := f.(logic.And); ok {
		return and.Fs
	}
	return []logic.Formula{f}
}

// conjunctEntailed reports whether some conjunct of a entails g
// syntactically.
func conjunctEntailed(ac []logic.Formula, keys map[string]bool, g logic.Formula) bool {
	if keys[logic.Key(g)] {
		return true
	}
	ga, ok := g.(logic.Atom)
	if !ok || ga.Eq {
		return false
	}
	for _, h := range ac {
		ha, ok := h.(logic.Atom)
		if !ok || ha.Eq {
			continue
		}
		// h: L ≤ 0 entails g: L + c ≤ 0 whenever c ≤ 0.
		if d := ga.L.Sub(ha.L); d.IsConst() && d.K <= 0 {
			return true
		}
	}
	return false
}
