// Package interp is a bounded concrete interpreter for cfg programs. It
// plays the role the concrete test executions play in DART/CUTE-style
// must-analyses, and serves as the ground-truth oracle in the test suite:
// every must summary should be witnessed by a concrete run, and no
// not-may proof may ever be contradicted by one.
package interp

import (
	"fmt"
	"math/rand"

	"repro/internal/cfg"
	"repro/internal/lang"
)

// State is a concrete valuation of variables.
type State map[lang.Var]int64

// Clone copies the state.
func (s State) Clone() State {
	out := make(State, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Options configure a run.
type Options struct {
	// MaxSteps bounds the number of edges executed (including in callees);
	// 0 means a default of 100000.
	MaxSteps int
	// Rand resolves havocs and nondeterministic branch choices; nil uses a
	// fixed seed.
	Rand *rand.Rand
	// HavocValues, when non-nil, resolves havocs in order (wrapping
	// around); it overrides Rand for havoc resolution, enabling
	// model-directed executions.
	HavocValues []int64
	// HavocRange bounds random havoc values to [-HavocRange, HavocRange];
	// 0 means 16.
	HavocRange int64
	// RecordTrace captures the executed edges and havoc draws in the
	// Result (for counterexample reporting).
	RecordTrace bool
	// HavocPool, when non-empty, biases havoc draws: half the draws come
	// uniformly from the pool (typically the program's literal constants
	// and their neighbours — the classic fuzzing trick for guards like
	// x == 100), the rest from the random range.
	HavocPool []int64
}

// Result reports the outcome of an execution.
type Result struct {
	// Completed is true when main's exit was reached within the budget.
	Completed bool
	// Stuck is true when no outgoing edge was enabled (all assumes false).
	Stuck bool
	// Final is the state at termination (exit, stuck point, or budget
	// exhaustion).
	Final State
	// Steps is the number of edges executed.
	Steps int
	// Trace is the executed edge sequence (only when Options.RecordTrace).
	Trace []TraceStep
	// Havocs are the nondeterministic values drawn, in order (only when
	// Options.RecordTrace). Replaying them via HavocValues reproduces the
	// run when branch nondeterminism is absent.
	Havocs []int64
}

// TraceStep is one executed edge.
type TraceStep struct {
	Proc     string
	From, To cfg.NodeID
	Stmt     lang.Stmt
}

type runner struct {
	prog     *cfg.Program
	rng      *rand.Rand
	havocs   []int64
	havocIdx int
	havocRng int64
	steps    int
	maxSteps int
	record   bool
	trace    []TraceStep
	drawn    []int64
	pool     []int64
}

// Run executes the program's main procedure from an all-zero initial state
// (modified by opts) and returns the result.
func Run(prog *cfg.Program, opts Options) Result {
	return RunProc(prog, prog.Main, State{}, opts)
}

// RunProc executes the named procedure from the given global state.
// Locals start at zero.
func RunProc(prog *cfg.Program, proc string, globals State, opts Options) Result {
	r := &runner{
		prog:     prog,
		rng:      opts.Rand,
		havocs:   opts.HavocValues,
		havocRng: opts.HavocRange,
		maxSteps: opts.MaxSteps,
		record:   opts.RecordTrace,
		pool:     opts.HavocPool,
	}
	if r.rng == nil {
		r.rng = rand.New(rand.NewSource(0))
	}
	if r.havocRng == 0 {
		r.havocRng = 16
	}
	if r.maxSteps == 0 {
		r.maxSteps = 100000
	}
	state := State{}
	for _, g := range prog.Globals {
		state[g] = globals[g]
	}
	p := prog.Proc(proc)
	if p == nil {
		panic(fmt.Sprintf("interp: no procedure %q", proc))
	}
	completed, stuck := r.exec(p, state)
	return Result{Completed: completed, Stuck: stuck, Final: state, Steps: r.steps, Trace: r.trace, Havocs: r.drawn}
}

// exec runs proc to its exit, mutating state (globals persist; locals are
// scoped by save/restore).
func (r *runner) exec(proc *cfg.Proc, state State) (completed, stuck bool) {
	// Scope locals: save outer bindings, zero ours, restore on return.
	saved := make(map[lang.Var]int64, len(proc.Locals))
	had := make(map[lang.Var]bool, len(proc.Locals))
	for _, l := range proc.Locals {
		if v, ok := state[l]; ok {
			saved[l] = v
			had[l] = true
		}
		state[l] = 0
	}
	defer func() {
		for _, l := range proc.Locals {
			if had[l] {
				state[l] = saved[l]
			} else {
				delete(state, l)
			}
		}
	}()

	node := proc.Entry
	for node != proc.Exit {
		if r.steps >= r.maxSteps {
			return false, false
		}
		// Collect enabled edges.
		var enabled []cfg.Edge
		for _, ei := range proc.Out[node] {
			e := proc.Edges[ei]
			if a, ok := e.Stmt.(lang.Assume); ok {
				if !evalBool(a.Cond, state) {
					continue
				}
			}
			enabled = append(enabled, e)
		}
		if len(enabled) == 0 {
			return false, true
		}
		e := enabled[0]
		if len(enabled) > 1 {
			e = enabled[r.rng.Intn(len(enabled))]
		}
		r.steps++
		if r.record {
			r.trace = append(r.trace, TraceStep{Proc: proc.Name, From: e.From, To: e.To, Stmt: e.Stmt})
		}
		switch s := e.Stmt.(type) {
		case lang.Assign:
			state[s.Lhs] = evalInt(s.Rhs, state)
		case lang.Assume, lang.Skip:
			// Guard already checked; no state change.
		case lang.Havoc:
			state[s.V] = r.nextHavoc()
		case lang.Call:
			callee := r.prog.Proc(s.Proc)
			done, st := r.exec(callee, state)
			if !done {
				return false, st
			}
		default:
			panic(fmt.Sprintf("interp: unknown Stmt %T", e.Stmt))
		}
		node = e.To
	}
	return true, false
}

func (r *runner) nextHavoc() int64 {
	var v int64
	switch {
	case len(r.havocs) > 0:
		v = r.havocs[r.havocIdx%len(r.havocs)]
		r.havocIdx++
	case len(r.pool) > 0 && r.rng.Intn(2) == 0:
		v = r.pool[r.rng.Intn(len(r.pool))]
	default:
		v = r.rng.Int63n(2*r.havocRng+1) - r.havocRng
	}
	if r.record {
		r.drawn = append(r.drawn, v)
	}
	return v
}

func evalInt(e lang.IntExpr, s State) int64 {
	switch e := e.(type) {
	case lang.Const:
		return e.Val
	case lang.Ref:
		return s[e.V]
	case lang.Add:
		return evalInt(e.X, s) + evalInt(e.Y, s)
	case lang.Sub:
		return evalInt(e.X, s) - evalInt(e.Y, s)
	case lang.Neg:
		return -evalInt(e.X, s)
	case lang.Mul:
		return e.K * evalInt(e.X, s)
	default:
		panic(fmt.Sprintf("interp: unknown IntExpr %T", e))
	}
}

func evalBool(b lang.BoolExpr, s State) bool {
	switch b := b.(type) {
	case lang.BoolConst:
		return b.Val
	case lang.Cmp:
		x, y := evalInt(b.X, s), evalInt(b.Y, s)
		switch b.Op {
		case lang.Lt:
			return x < y
		case lang.Le:
			return x <= y
		case lang.Gt:
			return x > y
		case lang.Ge:
			return x >= y
		case lang.Eq:
			return x == y
		case lang.Ne:
			return x != y
		}
		panic(fmt.Sprintf("interp: invalid CmpOp %v", b.Op))
	case lang.And:
		return evalBool(b.X, s) && evalBool(b.Y, s)
	case lang.Or:
		return evalBool(b.X, s) || evalBool(b.Y, s)
	case lang.Not:
		return !evalBool(b.X, s)
	default:
		panic(fmt.Sprintf("interp: unknown BoolExpr %T", b))
	}
}

// EvalBool exposes boolean evaluation for tests and oracles.
func EvalBool(b lang.BoolExpr, s State) bool { return evalBool(b, s) }

// EvalInt exposes integer evaluation for tests and oracles.
func EvalInt(e lang.IntExpr, s State) int64 { return evalInt(e, s) }
