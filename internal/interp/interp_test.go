package interp

import (
	"math/rand"
	"testing"

	"repro/internal/cfg"
	"repro/internal/lang"
)

// buildCounter builds: main { i = 0; while (i < n) i++ ; g = i }.
func buildCounter(n int64) *cfg.Program {
	b := cfg.NewProc("main", "i")
	head := b.NewNode()
	body := b.NewNode()
	after := b.NewNode()
	exit := b.NewNode()
	b.AddEdge(b.Entry(), head, lang.Assign{Lhs: "i", Rhs: lang.C(0)})
	b.AddEdge(head, body, lang.Assume{Cond: lang.CmpE(lang.V("i"), lang.Lt, lang.C(n))})
	b.AddEdge(body, head, lang.Assign{Lhs: "i", Rhs: lang.Plus(lang.V("i"), lang.C(1))})
	b.AddEdge(head, after, lang.Assume{Cond: lang.CmpE(lang.V("i"), lang.Ge, lang.C(n))})
	b.AddEdge(after, exit, lang.Assign{Lhs: "g", Rhs: lang.V("i")})
	return cfg.MustProgram("t", []lang.Var{"g"}, "main", b.Finish(exit))
}

func TestRunCounter(t *testing.T) {
	res := Run(buildCounter(7), Options{})
	if !res.Completed || res.Final["g"] != 7 {
		t.Fatalf("res = %+v", res)
	}
}

func TestMaxStepsBudget(t *testing.T) {
	res := Run(buildCounter(1000000), Options{MaxSteps: 100})
	if res.Completed {
		t.Fatal("completed despite budget")
	}
	if res.Steps != 100 {
		t.Fatalf("Steps = %d", res.Steps)
	}
}

func TestRunProcFromState(t *testing.T) {
	// proc bump { g = g + 1 } run from g=41.
	b := cfg.NewProc("bump")
	exit := b.NewNode()
	b.AddEdge(b.Entry(), exit, lang.Assign{Lhs: "g", Rhs: lang.Plus(lang.V("g"), lang.C(1))})
	prog := cfg.MustProgram("t", []lang.Var{"g"}, "bump", b.Finish(exit))
	res := RunProc(prog, "bump", State{"g": 41}, Options{})
	if !res.Completed || res.Final["g"] != 42 {
		t.Fatalf("res = %+v", res)
	}
}

func TestHavocSequenceWraps(t *testing.T) {
	// main { havoc g; havoc h; } with values [3] — both get 3 (wrap).
	b := cfg.NewProc("main")
	mid := b.NewNode()
	exit := b.NewNode()
	b.AddEdge(b.Entry(), mid, lang.Havoc{V: "g"})
	b.AddEdge(mid, exit, lang.Havoc{V: "h"})
	prog := cfg.MustProgram("t", []lang.Var{"g", "h"}, "main", b.Finish(exit))
	res := Run(prog, Options{HavocValues: []int64{3}})
	if res.Final["g"] != 3 || res.Final["h"] != 3 {
		t.Fatalf("res = %+v", res)
	}
}

func TestRandomHavocWithinRange(t *testing.T) {
	b := cfg.NewProc("main")
	exit := b.NewNode()
	b.AddEdge(b.Entry(), exit, lang.Havoc{V: "g"})
	prog := cfg.MustProgram("t", []lang.Var{"g"}, "main", b.Finish(exit))
	for seed := int64(0); seed < 50; seed++ {
		res := Run(prog, Options{Rand: rand.New(rand.NewSource(seed)), HavocRange: 5})
		if v := res.Final["g"]; v < -5 || v > 5 {
			t.Fatalf("havoc %d outside range", v)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	s := State{"a": 1}
	c := s.Clone()
	c["a"] = 2
	if s["a"] != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestEvalHelpers(t *testing.T) {
	st := State{"x": 3, "y": -2}
	if EvalInt(lang.Times(2, lang.Plus(lang.V("x"), lang.V("y"))), st) != 2 {
		t.Fatal("EvalInt")
	}
	if !EvalBool(lang.CmpE(lang.V("x"), lang.Ne, lang.V("y")), st) {
		t.Fatal("EvalBool")
	}
}
