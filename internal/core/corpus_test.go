package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/parser"
	"repro/internal/punch/maymust"
)

// TestCorpus verifies the golden regression corpus in testdata/corpus:
// files prefixed safe_ must prove, bug_ must report the error reachable,
// under both the sequential and a parallel configuration.
func TestCorpus(t *testing.T) {
	files, err := filepath.Glob("../../testdata/corpus/*.bolt")
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus missing: %v (%d files)", err, len(files))
	}
	for _, f := range files {
		name := filepath.Base(f)
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := parser.Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			want := Unknown
			switch {
			case strings.HasPrefix(name, "safe_"):
				want = Safe
			case strings.HasPrefix(name, "bug_"):
				want = ErrorReachable
			default:
				t.Fatalf("corpus file %s has no verdict prefix", name)
			}
			for _, threads := range []int{1, 8} {
				res := New(prog, Options{
					Punch:         maymust.New(),
					MaxThreads:    threads,
					MaxIterations: 60000,
					CheckContract: true,
				}).Run(AssertionQuestion(prog))
				if res.Verdict != want {
					t.Errorf("threads=%d: verdict %v, want %v", threads, res.Verdict, want)
				}
			}
		})
	}
}
