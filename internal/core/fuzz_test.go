package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/punch/maymust"
)

// randProgram emits a random structured program: up to three helper
// procedures manipulating two globals under guards, a main that calls
// them, and a final assertion. Havoc values are small so concrete
// enumeration is an effective oracle.
func randProgram(r *rand.Rand) string {
	var b strings.Builder
	fmt.Fprintf(&b, "globals ga, gb;\n")

	nHelpers := 1 + r.Intn(3)
	stmt := func(depth int) string {
		g := []string{"ga", "gb"}[r.Intn(2)]
		switch r.Intn(6) {
		case 0:
			return fmt.Sprintf("%s = %s + %d;", g, g, r.Intn(3)-1)
		case 1:
			return fmt.Sprintf("%s = %d;", g, r.Intn(5)-2)
		case 2:
			return fmt.Sprintf("if (%s > %d) { %s = %s - 1; }", g, r.Intn(3), g, g)
		case 3:
			return fmt.Sprintf("if (ga > gb) { %s = %d; } else { %s = %s + 1; }",
				g, r.Intn(3), g, g)
		case 4:
			return fmt.Sprintf("havoc t; assume(t >= %d && t <= %d); %s = %s + t;",
				-1, 1, g, g)
		default:
			return "skip;"
		}
	}
	for h := 0; h < nHelpers; h++ {
		fmt.Fprintf(&b, "proc helper%d {\n  locals t;\n", h)
		for i := 0; i < 2+r.Intn(3); i++ {
			fmt.Fprintf(&b, "  %s\n", stmt(0))
		}
		fmt.Fprintf(&b, "}\n")
	}
	fmt.Fprintf(&b, "proc main {\n  locals t;\n  ga = %d; gb = %d;\n", r.Intn(3), r.Intn(3))
	for i := 0; i < 2+r.Intn(3); i++ {
		if r.Intn(3) == 0 {
			fmt.Fprintf(&b, "  helper%d();\n", r.Intn(nHelpers))
		} else {
			fmt.Fprintf(&b, "  %s\n", stmt(0))
		}
	}
	bound := r.Intn(9) - 1
	op := []string{"<=", ">="}[r.Intn(2)]
	fmt.Fprintf(&b, "  assert(ga %s %d);\n}\n", op, bound)
	return b.String()
}

// TestFuzzVerdictSoundness: on 60 random programs the engine's verdict
// must never contradict concrete exploration — Safe programs have no
// failing run, ErrorReachable verdicts have a concrete witness.
func TestFuzzVerdictSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing is not short")
	}
	r := rand.New(rand.NewSource(20260705))
	unknowns := 0
	for i := 0; i < 60; i++ {
		src := randProgram(r)
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("generated program does not parse: %v\n%s", err, src)
		}
		res := New(prog, Options{
			Punch:         maymust.New(),
			MaxThreads:    4,
			MaxIterations: 1500,
			CheckContract: true,
		}).Run(AssertionQuestion(prog))

		concreteFails := false
		for seed := int64(0); seed < 400 && !concreteFails; seed++ {
			cr := interp.Run(prog, interp.Options{
				Rand:       rand.New(rand.NewSource(seed)),
				MaxSteps:   20000,
				HavocRange: 2,
			})
			concreteFails = cr.Completed && cr.Final[parser.ErrVar] != 0
		}
		switch res.Verdict {
		case Safe:
			if concreteFails {
				t.Fatalf("program %d: Safe verdict contradicted concretely\n%s", i, src)
			}
		case ErrorReachable:
			if !concreteFails {
				// The witness may need havoc values outside the concrete
				// search range; widen once before failing.
				wide := false
				for seed := int64(0); seed < 1000 && !wide; seed++ {
					cr := interp.Run(prog, interp.Options{
						Rand:       rand.New(rand.NewSource(seed)),
						MaxSteps:   20000,
						HavocRange: 8,
					})
					wide = cr.Completed && cr.Final[parser.ErrVar] != 0
				}
				if !wide {
					t.Fatalf("program %d: ErrorReachable not witnessed\n%s", i, src)
				}
			}
		default:
			unknowns++
		}
	}
	if unknowns > 20 {
		t.Errorf("too many inconclusive fuzz verdicts: %d/60", unknowns)
	}
}

// TestFuzzEngineConfluence: sequential, parallel and streaming engines
// agree on random programs (Unknown counts as agreement with anything,
// since it only reflects resource budgets).
func TestFuzzEngineConfluence(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing is not short")
	}
	r := rand.New(rand.NewSource(7))
	configs := []Options{
		{MaxThreads: 1},
		{MaxThreads: 8},
		{MaxThreads: 1, Async: true},
		{MaxThreads: 8, Async: true},
		// Redundancy-elimination ablation contrast: coalescing and the
		// entailment cache must never change a verdict.
		{MaxThreads: 8, DisableCoalesce: true, DisableEntailmentCache: true},
		{MaxThreads: 8, Async: true, DisableCoalesce: true, DisableEntailmentCache: true},
	}
	for i := 0; i < 25; i++ {
		src := randProgram(r)
		prog := parser.MustParse(src)
		verdicts := make([]Verdict, len(configs))
		for j, o := range configs {
			o.Punch = maymust.New()
			o.MaxIterations = 1200
			verdicts[j] = New(prog, o).Run(AssertionQuestion(prog)).Verdict
		}
		for j := 1; j < len(verdicts); j++ {
			a, b := verdicts[0], verdicts[j]
			if a != Unknown && b != Unknown && a != b {
				t.Fatalf("engine configs 0 and %d disagree (%v vs %v) on\n%s", j, a, b, src)
			}
		}
	}
}
