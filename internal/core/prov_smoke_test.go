package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/parser"
	"repro/internal/punch/maymust"
	"repro/internal/store"
)

// corpusPrograms loads every corpus program with its expected verdict.
func corpusPrograms(t *testing.T) map[string]Verdict {
	t.Helper()
	files, err := filepath.Glob("../../testdata/corpus/*.bolt")
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus missing: %v (%d files)", err, len(files))
	}
	out := map[string]Verdict{}
	for _, f := range files {
		name := filepath.Base(f)
		switch {
		case strings.HasPrefix(name, "safe_"):
			out[f] = Safe
		case strings.HasPrefix(name, "bug_"):
			out[f] = ErrorReachable
		default:
			t.Fatalf("corpus file %s has no verdict prefix", name)
		}
	}
	return out
}

// TestProvSmoke is the prov-smoke gate (`make prov-smoke`): on every
// corpus program, all three engines produce a provenance record that
// verifies (non-empty cone containing the root, closed under spawn and
// dependency edges, consistent warm accounting) and whose canonical
// bytes are identical across barrier, async, and distributed schedules
// — the procedure-granularity schedule-invariance claim.
func TestProvSmoke(t *testing.T) {
	for f, want := range corpusPrograms(t) {
		name := filepath.Base(f)
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := parser.Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			q0 := AssertionQuestion(prog)
			type run struct {
				engine  string
				verdict Verdict
				stable  []byte
			}
			var runs []run
			for _, engine := range []string{"barrier", "async"} {
				res := New(prog, Options{
					Punch:             maymust.New(),
					MaxThreads:        8,
					MaxIterations:     60000,
					Async:             engine == "async",
					CheckContract:     true,
					CollectProvenance: true,
				}).Run(q0)
				if res.Verdict != want {
					t.Fatalf("%s: verdict %v, want %v", engine, res.Verdict, want)
				}
				if res.Provenance == nil {
					t.Fatalf("%s: no provenance recorded", engine)
				}
				if err := res.Provenance.Verify(); err != nil {
					t.Fatalf("%s: %v", engine, err)
				}
				runs = append(runs, run{engine, res.Verdict, res.Provenance.StableBytes()})
			}
			dres := NewDistributed(prog, DistOptions{
				Punch:             maymust.New(),
				Nodes:             3,
				ThreadsPerNode:    4,
				CollectProvenance: true,
			}).Run(q0)
			if dres.Verdict != want {
				t.Fatalf("dist: verdict %v, want %v", dres.Verdict, want)
			}
			if dres.Provenance == nil {
				t.Fatal("dist: no provenance recorded")
			}
			if err := dres.Provenance.Verify(); err != nil {
				t.Fatalf("dist: %v", err)
			}
			runs = append(runs, run{"dist", dres.Verdict, dres.Provenance.StableBytes()})

			for _, r := range runs[1:] {
				if !bytes.Equal(runs[0].stable, r.stable) {
					t.Errorf("provenance differs between %s and %s:\n%s\n%s",
						runs[0].engine, r.engine, runs[0].stable, r.stable)
				}
			}
		})
	}
}

// TestConeInvalidationConfluence validates the invalidation-cone claim
// the explain report is built on: after an edit to procedure p, it is
// enough to discard the summaries of procedures in prov.Cone(p) — a
// warm re-check from the remaining store reaches the same verdict as a
// from-scratch run. The edit is simulated on every procedure of every
// corpus program's cone, which is the conservative direction: the kept
// summaries are exactly the ones the cone analysis says may be trusted.
func TestConeInvalidationConfluence(t *testing.T) {
	for f, want := range corpusPrograms(t) {
		name := filepath.Base(f)
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := parser.Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			q0 := AssertionQuestion(prog)
			opts := func(st store.Store) Options {
				return Options{
					Punch:             maymust.New(),
					MaxThreads:        8,
					MaxIterations:     60000,
					Store:             st,
					CollectProvenance: true,
				}
			}

			// Cold run populates the store and records provenance.
			st := store.NewMem()
			cold := New(prog, opts(st)).Run(q0)
			if cold.Verdict != want || cold.StoreErr != nil {
				t.Fatalf("cold: verdict %v (want %v), store err %v", cold.Verdict, want, cold.StoreErr)
			}
			all, err := st.Load()
			if err != nil {
				t.Fatal(err)
			}

			for _, edited := range cold.Provenance.Procedures {
				cone := cold.Provenance.Cone(edited)
				stale := map[string]bool{}
				for _, proc := range cone.Procedures {
					stale[proc] = true
				}
				// Invalidate the cone: keep only summaries of procedures the
				// cone analysis says an edit to `edited` cannot affect.
				kept := store.NewMem()
				for _, s := range all {
					if !stale[s.Proc] {
						if _, err := kept.Put(s); err != nil {
							t.Fatal(err)
						}
					}
				}
				warm := New(prog, opts(kept)).Run(q0)
				if warm.Verdict != cold.Verdict {
					t.Errorf("edit %s: warm verdict %v after cone invalidation, from-scratch says %v",
						edited, warm.Verdict, cold.Verdict)
				}
				if warm.StoreErr != nil {
					t.Errorf("edit %s: store err %v", edited, warm.StoreErr)
				}
			}
		})
	}
}
