package core

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/punch"
	"repro/internal/query"
	"repro/internal/summary"
)

// gatePunch is a scripted PUNCH that wedges a run at a known point: the
// root spawns one child ("slow") and blocks; the child parks on a
// wall-clock gate until the test releases it. While the gate is closed
// the run is provably mid-flight, so the test can sample the probe and
// know exactly what it should see.
type gatePunch struct {
	entered chan struct{} // closed when the child PUNCH begins
	release chan struct{} // closed by the test to let the child finish

	enterOnce sync.Once
	mu        sync.Mutex
	calls     map[query.ID]int
}

func newGatePunch() *gatePunch {
	return &gatePunch{
		entered: make(chan struct{}),
		release: make(chan struct{}),
		calls:   map[query.ID]int{},
	}
}

func (p *gatePunch) Name() string { return "gate" }

func (p *gatePunch) Step(ctx *punch.Context, qr *query.Query) punch.Result {
	p.mu.Lock()
	p.calls[qr.ID]++
	calls := p.calls[qr.ID]
	p.mu.Unlock()
	done := func() punch.Result {
		// PUNCH contract: a Done query's answer is in the database. The
		// distributed engine's root check relies on it when REDUCE
		// garbage-collects the root in the same round it completes.
		ctx.DB.Add(summary.Summary{Kind: summary.NotMay, Proc: qr.Q.Proc, Pre: qr.Q.Pre, Post: qr.Q.Post})
		qr.State, qr.Outcome = query.Done, query.Unreachable
		return punch.Result{Self: qr, Cost: 1}
	}
	if qr.Parent == query.NoParent {
		if calls > 1 {
			return done()
		}
		c := ctx.Alloc.New(qr.ID, summary.Question{Proc: "slow", Pre: logic.True, Post: logic.True})
		qr.State = query.Blocked
		return punch.Result{Self: qr, Children: []*query.Query{c}, Cost: 1}
	}
	p.enterOnce.Do(func() { close(p.entered) })
	<-p.release
	return done()
}

// sampleStateJSON issues the acceptance-criterion request: GET
// /debug/bolt/state against a live probe, asserting the response is
// well-formed JSON, and returns the decoded snapshot.
func sampleStateJSON(t *testing.T, probe *obs.Probe) *obs.StateSnapshot {
	t.Helper()
	rec := httptest.NewRecorder()
	obs.DebugState{Probe: probe}.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/bolt/state", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /debug/bolt/state = %d", rec.Code)
	}
	var s obs.StateSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("/debug/bolt/state is not valid JSON: %v\n%s", err, rec.Body.String())
	}
	return &s
}

// TestLiveStateMidRun samples /debug/bolt/state while each engine is
// provably mid-flight (wedged on the gate PUNCH) and asserts the
// snapshot reflects a live run: phase running, the right engine and
// worker population, a worker visibly inside the slow PUNCH, and the
// SUMDB/solver views attached.
func TestLiveStateMidRun(t *testing.T) {
	prog := parser.MustParse(`proc main { locals x; x = 1; assert(x > 0); }`)
	q0 := summary.Question{Proc: "main", Pre: logic.True, Post: logic.True}

	type result struct {
		verdict Verdict
		reason  StopReason
	}
	engines := []struct {
		name    string
		workers int
		nodes   int
		run     func(p *gatePunch, probe *obs.Probe) result
	}{
		{"barrier", 4, 0, func(p *gatePunch, probe *obs.Probe) result {
			res := New(prog, Options{Punch: p, MaxThreads: 4, MaxIterations: 100, Probe: probe}).Run(q0)
			return result{res.Verdict, res.StopReason}
		}},
		{"async", 4, 0, func(p *gatePunch, probe *obs.Probe) result {
			res := New(prog, Options{Punch: p, MaxThreads: 4, MaxIterations: 100, Async: true, Probe: probe}).Run(q0)
			return result{res.Verdict, res.StopReason}
		}},
		{"dist", 6, 3, func(p *gatePunch, probe *obs.Probe) result {
			res := NewDistributed(prog, DistOptions{Punch: p, Nodes: 3, ThreadsPerNode: 2, Probe: probe}).RunContext(context.Background(), q0)
			return result{res.Verdict, res.StopReason}
		}},
	}
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			p := newGatePunch()
			var probe obs.Probe
			resCh := make(chan result, 1)
			go func() { resCh <- eng.run(p, &probe) }()

			select {
			case <-p.entered:
			case <-time.After(30 * time.Second):
				t.Fatal("child PUNCH never started")
			}
			s := sampleStateJSON(t, &probe)
			if s.Phase != "running" {
				t.Errorf("phase = %q; want running", s.Phase)
			}
			if s.Engine != eng.name {
				t.Errorf("engine = %q; want %q", s.Engine, eng.name)
			}
			if len(s.Workers) != eng.workers {
				t.Errorf("workers = %d; want %d", len(s.Workers), eng.workers)
			}
			slow := 0
			for _, w := range s.Workers {
				if w.Phase == "running" && w.Proc == "slow" {
					slow++
				}
			}
			if slow != 1 {
				t.Errorf("workers inside the slow PUNCH = %d; want exactly 1\n%+v", slow, s.Workers)
			}
			if s.SumDB == nil || s.Solver == nil {
				t.Errorf("SumDB/Solver views missing: %v/%v", s.SumDB, s.Solver)
			}
			if eng.nodes > 0 && len(s.Nodes) != eng.nodes {
				t.Errorf("nodes = %d; want %d", len(s.Nodes), eng.nodes)
			}
			if eng.nodes == 0 && len(s.Nodes) != 0 {
				t.Errorf("single-machine engine published %d nodes", len(s.Nodes))
			}

			close(p.release)
			res := <-resCh
			if res.verdict != Safe || res.reason != StopRootAnswered {
				t.Fatalf("run ended %v/%v; want Safe/root-answered", res.verdict, res.reason)
			}
			if probe.Phase() != obs.RunFinished {
				t.Fatalf("probe phase after run = %v; want finished", probe.Phase())
			}
			final := sampleStateJSON(t, &probe)
			if final.Phase != "finished" {
				t.Fatalf("final phase = %q; want finished", final.Phase)
			}
			if final.Forest.Done < 2 {
				t.Fatalf("final done = %d; want >= 2 (root + child)", final.Forest.Done)
			}
		})
	}
}

// TestWatchdogStallSmoke is the scripted-stall acceptance check (run by
// `make watchdog-smoke`): wedge the streaming engine on the gate PUNCH,
// point a fast watchdog at its probe, and require a stall diagnosis
// with the flight recorder's event history attached before the run is
// released.
func TestWatchdogStallSmoke(t *testing.T) {
	prog := parser.MustParse(`proc main { locals x; x = 1; assert(x > 0); }`)
	p := newGatePunch()
	var probe obs.Probe
	flight := obs.NewFlightRecorder(128)

	reports := make(chan obs.StallReport, 4)
	wd := obs.NewWatchdog(obs.WatchdogConfig{
		Probe:      &probe,
		Flight:     flight,
		Tick:       5 * time.Millisecond,
		StallAfter: 25 * time.Millisecond,
		OnStall:    func(r obs.StallReport) { reports <- r },
	})
	wd.Start()
	defer wd.Stop()

	resCh := make(chan Verdict, 1)
	go func() {
		res := New(prog, Options{
			Punch:      p,
			MaxThreads: 4,
			Async:      true,
			Probe:      &probe,
			Tracer:     flight,
		}).Run(summary.Question{Proc: "main", Pre: logic.True, Post: logic.True})
		resCh <- res.Verdict
	}()

	select {
	case <-p.entered:
	case <-time.After(30 * time.Second):
		t.Fatal("child PUNCH never started")
	}
	var rep obs.StallReport
	select {
	case rep = <-reports:
	case <-time.After(30 * time.Second):
		t.Fatal("watchdog never diagnosed the seeded stall")
	}
	if rep.Reason == "" || rep.State == nil {
		t.Fatalf("report = %+v; want a diagnosis with state attached", rep)
	}
	if rep.State.Engine != "async" || rep.State.Phase != "running" {
		t.Fatalf("report state = %s/%s; want async/running", rep.State.Engine, rep.State.Phase)
	}
	if rep.Flight == nil || rep.Flight.Total == 0 {
		t.Fatalf("flight history missing from report: %+v", rep.Flight)
	}
	if rep.Stalled < 25*time.Millisecond {
		t.Fatalf("stalled = %v; want >= the stall window", rep.Stalled)
	}
	t.Logf("diagnosis:\n%s", rep.String())

	close(p.release)
	if v := <-resCh; v != Safe {
		t.Fatalf("released run ended %v; want Safe", v)
	}
	if st := wd.Status(); st.Stalls == 0 {
		t.Fatalf("watchdog status = %+v; want at least one stall", st)
	}
}
