package core

import (
	"repro/internal/cfg"
	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/summary"
)

// AssertionQuestion builds the verification question for a program whose
// safety property was compiled from assert/abort statements: can main,
// from any input, reach its exit with the error flag raised?
func AssertionQuestion(prog *cfg.Program) summary.Question {
	return summary.Question{
		Proc: prog.Main,
		Pre:  logic.True,
		Post: logic.LEq(logic.LinConst(1), logic.LinVar(parser.ErrVar)),
	}
}

// ReachQuestion builds a general reachability question (φ1 ⇒?_P φ2) from
// boolean expressions over the program's globals.
func ReachQuestion(proc string, pre, post lang.BoolExpr) summary.Question {
	return summary.Question{
		Proc: proc,
		Pre:  logic.FromBool(pre),
		Post: logic.FromBool(post),
	}
}
