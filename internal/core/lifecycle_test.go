package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/drivers"
	"repro/internal/parser"
	"repro/internal/punch"
	"repro/internal/punch/maymust"
	"repro/internal/query"
	"repro/internal/summary"
)

func TestStopReasonStrings(t *testing.T) {
	reasons := []StopReason{
		StopNone, StopRootAnswered, StopWallTimeout, StopTickBudget,
		StopEventBudget, StopDeadlocked, StopCancelled, StopNodeFailure,
	}
	seen := map[string]bool{}
	for _, r := range reasons {
		s := r.String()
		if s == "" || strings.HasPrefix(s, "StopReason(") {
			t.Errorf("reason %d has no name: %q", int(r), s)
		}
		if seen[s] {
			t.Errorf("duplicate reason string %q", s)
		}
		seen[s] = true
	}
	for _, r := range []StopReason{StopWallTimeout, StopTickBudget, StopEventBudget} {
		if !r.Exhausted() {
			t.Errorf("%v must count as budget exhaustion", r)
		}
	}
	for _, r := range []StopReason{StopNone, StopRootAnswered, StopDeadlocked, StopCancelled, StopNodeFailure} {
		if r.Exhausted() {
			t.Errorf("%v must not count as budget exhaustion", r)
		}
	}
}

func TestParseFaults(t *testing.T) {
	if f, err := ParseFaults(""); err != nil || f != nil {
		t.Fatalf("empty spec: %v %v", f, err)
	}
	f, err := ParseFaults("kill=1@3,drop=0.2,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	if f.KillNode != 1 || f.KillRound != 3 || f.GossipDrop != 0.2 || f.Seed != 42 {
		t.Fatalf("parsed %+v", f)
	}
	f, err = ParseFaults("drop=0.5")
	if err != nil || f.KillNode != NoFaultNode {
		t.Fatalf("drop-only spec: %+v %v", f, err)
	}
	for _, bad := range []string{"kill=1", "kill=x@2", "kill=1@y", "drop=1.5", "drop=-0.1", "seed=zz", "nope=1", "kill"} {
		if _, err := ParseFaults(bad); err == nil {
			t.Errorf("spec %q must not parse", bad)
		}
	}
}

// highHashProc returns a procedure name whose 32-bit FNV-1a hash exceeds
// MaxInt32 and is not a multiple of every small node count — the input
// class for which int(h.Sum32()) % nodes is negative on 32-bit platforms.
func highHashProc(t *testing.T) string {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		name := fmt.Sprintf("proc%d", i)
		h := fnv.New32a()
		_, _ = h.Write([]byte(name))
		sum := h.Sum32()
		if sum > math.MaxInt32 && int(int32(sum))%3 < 0 && int(int32(sum))%7 < 0 {
			return name
		}
	}
	t.Fatal("no high-hash proc name found")
	return ""
}

// TestNodeOfUint32Modulo is the regression test for the distributed
// router: hashing must take the modulo in uint32 space (like
// summary.shardIndex), because int(h.Sum32()) is negative on 32-bit
// platforms for half of all hashes and a signed modulo then indexes
// nodes[] out of range.
func TestNodeOfUint32Modulo(t *testing.T) {
	name := highHashProc(t)
	h := fnv.New32a()
	_, _ = h.Write([]byte(name))
	sum := h.Sum32()
	if int(int32(sum))%3 >= 0 {
		t.Fatalf("%q does not demonstrate the 32-bit signed-modulo bug", name)
	}
	prog := parser.MustParse(`proc main { locals x; x = 1; assert(x > 0); }`)
	for _, nodes := range []int{2, 3, 7} {
		eng := NewDistributed(prog, DistOptions{Punch: maymust.New(), Nodes: nodes})
		got := eng.nodeOf(name)
		if got < 0 || got >= nodes {
			t.Fatalf("nodeOf(%q) with %d nodes = %d, out of range", name, nodes, got)
		}
		if want := int(sum % uint32(nodes)); got != want {
			t.Fatalf("nodeOf(%q) = %d, want uint32 modulo %d", name, got, want)
		}
	}
}

// TestDistributedHighHashProcRuns routes a query tree through a callee
// whose hash exceeds MaxInt32, end to end.
func TestDistributedHighHashProcRuns(t *testing.T) {
	name := highHashProc(t)
	src := fmt.Sprintf(`globals g;
proc main { g = 0; %s(); assert(g <= 1); }
proc %s { g = g + 1; }`, name, name)
	prog := parser.MustParse(src)
	res := NewDistributed(prog, DistOptions{
		Punch:          maymust.New(),
		Nodes:          3,
		ThreadsPerNode: 2,
		MaxRounds:      4000,
	}).Run(AssertionQuestion(prog))
	if res.Verdict != Safe {
		t.Fatalf("verdict = %v (%+v)", res.Verdict, res)
	}
	if res.StopReason != StopRootAnswered {
		t.Fatalf("stop reason = %v, want root-answered", res.StopReason)
	}
}

// TestCancelledContextAllEngines: a pre-cancelled context must stop all
// three engines with StopReason StopCancelled and an Unknown verdict —
// and cancellation must NOT masquerade as a timeout or deadlock.
func TestCancelledContextAllEngines(t *testing.T) {
	prog := parser.MustParse(relationalToySource())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q0 := AssertionQuestion(prog)

	for _, async := range []bool{false, true} {
		res := New(prog, Options{
			Punch:         maymust.New(),
			MaxThreads:    4,
			MaxIterations: 1 << 19,
			Async:         async,
		}).RunContext(ctx, q0)
		if res.StopReason != StopCancelled {
			t.Errorf("async=%v: stop reason %v, want cancelled", async, res.StopReason)
		}
		if res.Verdict != Unknown || res.TimedOut || res.Deadlocked {
			t.Errorf("async=%v: cancelled run reported %v timedOut=%v deadlocked=%v",
				async, res.Verdict, res.TimedOut, res.Deadlocked)
		}
	}
	dres := NewDistributed(prog, DistOptions{Punch: maymust.New(), Nodes: 2}).RunContext(ctx, q0)
	if dres.StopReason != StopCancelled || dres.Verdict != Unknown || dres.TimedOut {
		t.Errorf("distributed: %+v, want cancelled/Unknown", dres)
	}
}

// TestCancelMidRunJoinsWorkers is the acceptance check: cancelling any
// engine mid-run on a driver-sized workload returns StopReason
// StopCancelled well within a deadline, with every worker goroutine
// joined (no leaks). Run under -race by the Makefile's race target.
func TestCancelMidRunJoinsWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("driver verification is not short")
	}
	prog := drivers.Generate(drivers.NamedCheck("parport", "MarkPowerDown", false).Config)
	q0 := AssertionQuestion(prog)
	baseline := runtime.NumGoroutine()

	type runner struct {
		name string
		run  func(ctx context.Context) StopReason
	}
	runners := []runner{
		{"barrier", func(ctx context.Context) StopReason {
			return New(prog, Options{Punch: maymust.New(), MaxThreads: 8, MaxIterations: 1 << 19}).RunContext(ctx, q0).StopReason
		}},
		{"async", func(ctx context.Context) StopReason {
			return New(prog, Options{Punch: maymust.New(), MaxThreads: 8, MaxIterations: 1 << 19, Async: true}).RunContext(ctx, q0).StopReason
		}},
		{"distributed", func(ctx context.Context) StopReason {
			return NewDistributed(prog, DistOptions{Punch: maymust.New(), Nodes: 3, ThreadsPerNode: 4}).RunContext(ctx, q0).StopReason
		}},
	}
	for _, r := range runners {
		t.Run(r.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(5 * time.Millisecond)
				cancel()
			}()
			done := make(chan StopReason, 1)
			go func() { done <- r.run(ctx) }()
			select {
			case reason := <-done:
				// A fast finish before the cancel lands is legal.
				if reason != StopCancelled && reason != StopRootAnswered {
					t.Errorf("stop reason %v, want cancelled (or root-answered if it won the race)", reason)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("engine did not observe cancellation within the deadline")
			}
		})
	}
	waitForGoroutines(t, baseline)
}

// waitForGoroutines polls until the goroutine count returns to the
// baseline (plus slack for the runtime's own helpers), failing on leak.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// scriptPunch is a deterministic scripted PUNCH: the root spawns two
// children; child c1 completes immediately, child c2 needs two slices, so
// with two threads the root's completion lands in the same MAP batch as
// c2's — the exact shape in which the barrier engine used to lose Done
// counts.
type scriptPunch struct {
	mu    sync.Mutex
	calls map[query.ID]int
	kids  []query.ID
}

func newScriptPunch() *scriptPunch { return &scriptPunch{calls: map[query.ID]int{}} }

func (p *scriptPunch) Name() string { return "script" }

func (p *scriptPunch) Step(ctx *punch.Context, qr *query.Query) punch.Result {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls[qr.ID]++
	done := func() punch.Result {
		qr.State, qr.Outcome = query.Done, query.Unreachable
		return punch.Result{Self: qr, Cost: 1}
	}
	switch {
	case qr.Parent == query.NoParent && p.calls[qr.ID] == 1:
		c1 := ctx.Alloc.New(qr.ID, summary.Question{Proc: "a"})
		c2 := ctx.Alloc.New(qr.ID, summary.Question{Proc: "b"})
		p.kids = []query.ID{c1.ID, c2.ID}
		qr.State = query.Blocked
		return punch.Result{Self: qr, Children: []*query.Query{c1, c2}, Cost: 1}
	case qr.Parent == query.NoParent:
		return done()
	case qr.ID == p.kids[0]:
		return done()
	case p.calls[qr.ID] == 1:
		qr.State = query.Ready // budget slice exhausted; run me again
		return punch.Result{Self: qr, Cost: 1}
	default:
		return done()
	}
}

// TestBarrierDoneCountMidBatch: with the scripted PUNCH and two threads,
// the final MAP batch contains both the root's completion and c2's. The
// regression: the root-answered break used to count only the root, losing
// every sibling Done result of that batch.
func TestBarrierDoneCountMidBatch(t *testing.T) {
	prog := parser.MustParse(`proc main { locals x; x = 1; assert(x > 0); }`)
	res := New(prog, Options{
		Punch:         newScriptPunch(),
		MaxThreads:    2,
		MaxIterations: 100,
	}).Run(summary.Question{Proc: "main"})
	if res.Verdict != Safe {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if res.StopReason != StopRootAnswered {
		t.Fatalf("stop reason = %v", res.StopReason)
	}
	// Batch 1: root (spawns c1, c2). Batch 2: c1 Done, c2 Ready.
	// Batch 3: root Done AND c2 Done — all three must be counted.
	if res.DoneQueries != 3 {
		t.Fatalf("DoneQueries = %d, want 3 (root + both children)", res.DoneQueries)
	}
	// The live peak (root + both children) is reached before the final
	// batch's REDUCE and must survive the root-answered break.
	if res.PeakLive != 3 {
		t.Fatalf("PeakLive = %d, want 3", res.PeakLive)
	}
}

// countingPunch wraps an analysis and counts every PUNCH invocation that
// returned a Done query — the ground truth DoneQueries must match.
type countingPunch struct {
	inner punch.Punch
	done  int64
}

func (p *countingPunch) Name() string { return p.inner.Name() }

func (p *countingPunch) Step(ctx *punch.Context, qr *query.Query) punch.Result {
	r := p.inner.Step(ctx, qr)
	if r.Self.State == query.Done {
		atomic.AddInt64(&p.done, 1)
	}
	return r
}

// TestDoneQueriesBarrierAsyncAgree: on the regression corpus both engines
// must account Done queries the same way — DoneQueries equals the number
// of Done results PUNCH actually produced. (Exact cross-engine equality
// of the raw counts is NOT an invariant: scheduling order changes which
// queries get answered by summary reuse, so the two engines legitimately
// create different query populations.) The barrier engine used to fail
// this whenever the root completed mid-batch: every sibling Done result
// of the final batch went uncounted.
func TestDoneQueriesBarrierAsyncAgree(t *testing.T) {
	files, err := filepath.Glob("../../testdata/corpus/*.bolt")
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus missing: %v (%d files)", err, len(files))
	}
	for _, f := range files {
		name := filepath.Base(f)
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := parser.Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			q0 := AssertionQuestion(prog)
			for _, threads := range []int{1, 8} {
				bp := &countingPunch{inner: maymust.New()}
				barrier := New(prog, Options{Punch: bp, MaxThreads: threads, MaxIterations: 60000}).Run(q0)
				if barrier.DoneQueries != bp.done {
					t.Errorf("barrier threads=%d: DoneQueries=%d, but PUNCH produced %d Done results",
						threads, barrier.DoneQueries, bp.done)
				}
				ap := &countingPunch{inner: maymust.New()}
				async := New(prog, Options{Punch: ap, MaxThreads: threads, MaxIterations: 60000, Async: true}).Run(q0)
				// With one worker no result can become obsolete mid-run,
				// so the streaming count is exact; with more workers a
				// result whose subtree was GC'd concurrently is dropped,
				// so DoneQueries may only undercount the PUNCH total.
				if threads == 1 && async.DoneQueries != ap.done {
					t.Errorf("async threads=1: DoneQueries=%d, but PUNCH produced %d Done results",
						async.DoneQueries, ap.done)
				}
				if async.DoneQueries > ap.done {
					t.Errorf("async threads=%d: DoneQueries=%d exceeds PUNCH total %d",
						threads, async.DoneQueries, ap.done)
				}
				if barrier.Verdict != async.Verdict {
					t.Fatalf("threads=%d: verdicts diverge: barrier %v, async %v",
						threads, barrier.Verdict, async.Verdict)
				}
			}
		})
	}
}

// rewakePunch scripts the satellite-5 scenario: the root is mid-PUNCH
// when its second child completes (arming the rewake flag) and the run is
// cancelled before the root returns. The returned Blocked root must NOT
// be re-enqueued after stop.
type rewakePunch struct {
	rootInFlight chan struct{} // closed when the root's 2nd slice starts
	rootRelease  chan struct{} // closed by the test to let it return
	c2Release    chan struct{} // closed by the test to let c2 complete
	mu           sync.Mutex
	calls        map[query.ID]int
	kids         []query.ID
}

func newRewakePunch() *rewakePunch {
	return &rewakePunch{
		rootInFlight: make(chan struct{}),
		rootRelease:  make(chan struct{}),
		c2Release:    make(chan struct{}),
		calls:        map[query.ID]int{},
	}
}

func (p *rewakePunch) Name() string { return "rewake" }

func (p *rewakePunch) Step(ctx *punch.Context, qr *query.Query) punch.Result {
	p.mu.Lock()
	p.calls[qr.ID]++
	calls := p.calls[qr.ID]
	switch {
	case qr.Parent == query.NoParent && calls == 1:
		c1 := ctx.Alloc.New(qr.ID, summary.Question{Proc: "a"})
		c2 := ctx.Alloc.New(qr.ID, summary.Question{Proc: "b"})
		p.kids = []query.ID{c1.ID, c2.ID}
		p.mu.Unlock()
		qr.State = query.Blocked
		return punch.Result{Self: qr, Children: []*query.Query{c1, c2}, Cost: 1}
	case qr.Parent == query.NoParent:
		p.mu.Unlock()
		close(p.rootInFlight)
		<-p.rootRelease
		qr.State = query.Blocked
		return punch.Result{Self: qr, Cost: 1}
	case qr.ID == p.kids[0]:
		p.mu.Unlock()
		qr.State, qr.Outcome = query.Done, query.Unreachable
		return punch.Result{Self: qr, Cost: 1}
	default:
		p.mu.Unlock()
		<-p.c2Release
		qr.State, qr.Outcome = query.Done, query.Unreachable
		return punch.Result{Self: qr, Cost: 1}
	}
}

// TestAsyncRewakeUnderCancellation (satellite): a parent mid-PUNCH whose
// child completes just as the run is cancelled must not be re-enqueued
// after stop — the run terminates with all workers joined and no
// send-after-stop. Run under -race by the Makefile's race target.
func TestAsyncRewakeUnderCancellation(t *testing.T) {
	prog := parser.MustParse(`proc main { locals x; x = 1; assert(x > 0); }`)
	baseline := runtime.NumGoroutine()
	p := newRewakePunch()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := make(chan IterSample, 64)
	resCh := make(chan Result, 1)
	go func() {
		resCh <- New(prog, Options{
			Punch:         p,
			MaxThreads:    2,
			MaxIterations: 1000,
			Async:         true,
			OnIteration:   func(s IterSample) { events <- s },
		}).RunContext(ctx, summary.Question{Proc: "main"})
	}()

	await := func(ch <-chan struct{}, what string) {
		select {
		case <-ch:
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for %s", what)
		}
	}
	await(p.rootInFlight, "root's second PUNCH slice")
	close(p.c2Release) // c2 completes while the root is mid-PUNCH → rewake armed
	for {
		select {
		case s := <-events:
			if s.DoneSoFar >= 2 { // c1 and c2 both reduced
				goto armed
			}
		case <-time.After(10 * time.Second):
			t.Fatal("timed out waiting for c2's completion event")
		}
	}
armed:
	cancel()
	// Give the cancellation watcher time to halt the scheduler before the
	// root's PUNCH returns Blocked with its rewake flag set.
	time.Sleep(50 * time.Millisecond)
	close(p.rootRelease)

	select {
	case res := <-resCh:
		if res.StopReason != StopCancelled {
			t.Fatalf("stop reason = %v, want cancelled", res.StopReason)
		}
		if res.Verdict != Unknown {
			t.Fatalf("verdict = %v", res.Verdict)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not terminate: rewake was re-enqueued after stop")
	}
	waitForGoroutines(t, baseline)
}

// TestAsyncPushAfterStopIsNoop: the scheduler's enqueue guard — the
// send-after-stop half of the rewake protocol.
func TestAsyncPushAfterStopIsNoop(t *testing.T) {
	s := &asyncState{
		queued:  map[query.ID]bool{},
		running: map[query.ID]bool{},
		rewake:  map[query.ID]bool{},
		deques:  make([][]*query.Query, 1),
		res:     &Result{},
	}
	s.cond = sync.NewCond(&s.mu)
	alloc := &query.Allocator{}
	q := alloc.New(query.NoParent, summary.Question{Proc: "p"})
	s.mu.Lock()
	s.halt(StopCancelled)
	s.push(0, q)
	if len(s.deques[0]) != 0 || s.queued[q.ID] {
		t.Fatal("push after stop enqueued work")
	}
	if s.reason != StopCancelled {
		t.Fatalf("halt reason = %v", s.reason)
	}
	// A later halt must not overwrite the first reason.
	s.halt(StopDeadlocked)
	if s.reason != StopCancelled {
		t.Fatalf("second halt overwrote reason: %v", s.reason)
	}
	s.mu.Unlock()
}

// TestStopReasonBudgets: each budget knob reports its own reason.
func TestStopReasonBudgets(t *testing.T) {
	prog := parser.MustParse(relationalToySource())
	q0 := AssertionQuestion(prog)

	for _, async := range []bool{false, true} {
		res := New(prog, Options{Punch: maymust.New(), MaxThreads: 2, MaxIterations: 1 << 19,
			MaxVirtualTicks: 10, Async: async}).Run(q0)
		if res.Verdict == Unknown && res.StopReason != StopTickBudget {
			t.Errorf("async=%v tick budget: reason %v", async, res.StopReason)
		}
		res = New(prog, Options{Punch: maymust.New(), MaxThreads: 2, MaxIterations: 3, Async: async}).Run(q0)
		if res.Verdict == Unknown && res.StopReason != StopEventBudget {
			t.Errorf("async=%v event budget: reason %v", async, res.StopReason)
		}
		if res.Verdict == Unknown && !res.TimedOut {
			t.Errorf("async=%v: budget stop must derive TimedOut", async)
		}
		res = New(prog, Options{Punch: maymust.New(), MaxThreads: 2, MaxIterations: 1 << 19,
			RealTimeout: time.Nanosecond, Async: async}).Run(q0)
		if res.Verdict == Unknown && res.StopReason != StopWallTimeout {
			t.Errorf("async=%v wall budget: reason %v", async, res.StopReason)
		}
	}

	dres := NewDistributed(prog, DistOptions{Punch: maymust.New(), Nodes: 2, MaxRounds: 2}).Run(q0)
	if dres.Verdict == Unknown && dres.StopReason != StopEventBudget {
		t.Errorf("distributed round budget: reason %v", dres.StopReason)
	}
	ok := New(prog, Options{Punch: maymust.New(), MaxThreads: 2, MaxIterations: 1 << 19}).
		Run(AssertionQuestion(parser.MustParse(`proc main { locals x; x = 1; assert(x > 0); }`)))
	_ = ok
}

// TestStopReasonRootAnswered: a completed run reports root-answered on
// all three engines.
func TestStopReasonRootAnswered(t *testing.T) {
	prog := parser.MustParse(`globals g;
proc main { g = 0; inc(); assert(g <= 1); }
proc inc { g = g + 1; }`)
	q0 := AssertionQuestion(prog)
	for _, async := range []bool{false, true} {
		res := New(prog, Options{Punch: maymust.New(), MaxThreads: 4, MaxIterations: 60000, Async: async}).Run(q0)
		if res.Verdict != Safe || res.StopReason != StopRootAnswered {
			t.Errorf("async=%v: %v / %v", async, res.Verdict, res.StopReason)
		}
		if res.TimedOut || res.Deadlocked {
			t.Errorf("async=%v: answered run carries stale flags", async)
		}
	}
	dres := NewDistributed(prog, DistOptions{Punch: maymust.New(), Nodes: 2}).Run(q0)
	if dres.Verdict != Safe || dres.StopReason != StopRootAnswered {
		t.Errorf("distributed: %v / %v", dres.Verdict, dres.StopReason)
	}
}
