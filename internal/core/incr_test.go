package core

import (
	"testing"

	"repro/internal/incr"
	"repro/internal/parser"
	"repro/internal/punch/maymust"
	"repro/internal/store"
)

// incrTestProg has a procedure (idle) the root never reaches, so an
// edit to it must not force a re-run, and a shared helper chain whose
// edits invalidate exactly the reverse cone.
const incrTestProg = `program it;
globals acc;
proc main { locals c; havoc c; acc = 0; if (c > 0) { left(); } else { right(); } assert(acc <= 5); }
proc left { acc = acc + 1; deep(); }
proc right { acc = acc + 2; }
proc deep { acc = acc + 1; }
proc idle { acc = 0; }
`

func incrOpts(st store.Store, async bool) Options {
	return Options{
		Punch:         maymust.New(),
		MaxThreads:    8,
		MaxIterations: 60000,
		Async:         async,
		Store:         st,
		Incremental:   true,
	}
}

func TestIncrementalRecheck(t *testing.T) {
	for _, async := range []bool{false, true} {
		name := "barrier"
		if async {
			name = "async"
		}
		t.Run(name, func(t *testing.T) {
			prog := parser.MustParse(incrTestProg)
			q0 := AssertionQuestion(prog)
			st := store.NewMem()

			// First incremental run: no manifest, full invalidation of an
			// empty store, runs cold and persists everything.
			cold := New(prog, incrOpts(st, async)).Run(q0)
			if cold.Verdict != Safe || cold.StoreErr != nil {
				t.Fatalf("cold: verdict %v, store err %v", cold.Verdict, cold.StoreErr)
			}
			if cold.ReusedVerdict || len(cold.EditedProcs) != 5 {
				t.Fatalf("cold: reused=%v edited=%v, want full-program edit set", cold.ReusedVerdict, cold.EditedProcs)
			}
			if cold.PersistedSummaries == 0 {
				t.Fatal("cold run persisted nothing")
			}

			// Unchanged program: the verdict must be reused without a run.
			again := New(prog, incrOpts(st, async)).Run(q0)
			if !again.ReusedVerdict || again.Verdict != Safe || again.StopReason != StopVerdictReused {
				t.Fatalf("unchanged: reused=%v verdict=%v stop=%v", again.ReusedVerdict, again.Verdict, again.StopReason)
			}
			if again.VirtualTicks != 0 || again.SurvivingSummaries == 0 {
				t.Fatalf("unchanged: ticks=%d surviving=%d", again.VirtualTicks, again.SurvivingSummaries)
			}

			// Edit a procedure the root never reaches: still reused.
			mutIdle, err := incr.MutateSource(incrTestProg, "idle", 3)
			if err != nil {
				t.Fatal(err)
			}
			progIdle := parser.MustParse(mutIdle)
			idle := New(progIdle, incrOpts(st, async)).Run(AssertionQuestion(progIdle))
			if !idle.ReusedVerdict || idle.Verdict != Safe {
				t.Fatalf("idle edit: reused=%v verdict=%v", idle.ReusedVerdict, idle.Verdict)
			}
			if len(idle.EditedProcs) != 1 || idle.EditedProcs[0] != "idle" {
				t.Fatalf("idle edit: edited=%v, want [idle]", idle.EditedProcs)
			}

			// Edit deep: the cone {deep, left, main} is stale, right and
			// idle survive, and the re-check verdict stays confluent.
			// (The store's manifest is now progIdle's, so mutate on top.)
			mutDeep, err := incr.MutateSource(mutIdle, "deep", 5)
			if err != nil {
				t.Fatal(err)
			}
			progDeep := parser.MustParse(mutDeep)
			re := New(progDeep, incrOpts(st, async)).Run(AssertionQuestion(progDeep))
			if re.ReusedVerdict {
				t.Fatal("deep edit reaches the root, must not reuse the verdict")
			}
			if re.Verdict != Safe || re.StoreErr != nil {
				t.Fatalf("deep edit: verdict %v, store err %v", re.Verdict, re.StoreErr)
			}
			if len(re.EditedProcs) != 1 || re.EditedProcs[0] != "deep" {
				t.Fatalf("deep edit: edited=%v, want [deep]", re.EditedProcs)
			}
			if re.InvalidatedSummaries == 0 {
				t.Fatal("deep edit invalidated nothing")
			}
			if re.SurvivingSummaries == 0 {
				t.Fatal("deep edit should leave right/idle summaries alive")
			}
			// Confluence with a from-scratch run.
			scratch := New(progDeep, Options{Punch: maymust.New(), MaxThreads: 8, MaxIterations: 60000, Async: async}).Run(AssertionQuestion(progDeep))
			if scratch.Verdict != re.Verdict {
				t.Fatalf("re-check verdict %v, from-scratch %v", re.Verdict, scratch.Verdict)
			}
		})
	}
}

// TestIncrementalRecheckDistributed mirrors the shared-memory test on
// the simulated cluster and checks the invalidation routing.
func TestIncrementalRecheckDistributed(t *testing.T) {
	prog := parser.MustParse(incrTestProg)
	q0 := AssertionQuestion(prog)
	st := store.NewMem()
	dopts := func() DistOptions {
		return DistOptions{
			Punch:          maymust.New(),
			Nodes:          3,
			ThreadsPerNode: 4,
			Store:          st,
			Incremental:    true,
		}
	}
	cold := NewDistributed(prog, dopts()).Run(q0)
	if cold.Verdict != Safe || cold.StoreErr != nil {
		t.Fatalf("cold: verdict %v, store err %v", cold.Verdict, cold.StoreErr)
	}
	again := NewDistributed(prog, dopts()).Run(q0)
	if !again.ReusedVerdict || again.Verdict != Safe || again.StopReason != StopVerdictReused {
		t.Fatalf("unchanged: reused=%v verdict=%v stop=%v", again.ReusedVerdict, again.Verdict, again.StopReason)
	}
	mut, err := incr.MutateSource(incrTestProg, "deep", 5)
	if err != nil {
		t.Fatal(err)
	}
	prog2 := parser.MustParse(mut)
	re := NewDistributed(prog2, dopts()).Run(AssertionQuestion(prog2))
	if re.ReusedVerdict || re.Verdict != Safe || re.StoreErr != nil {
		t.Fatalf("deep edit: reused=%v verdict=%v err=%v", re.ReusedVerdict, re.Verdict, re.StoreErr)
	}
	if re.InvalidatedSummaries == 0 || re.SurvivingSummaries == 0 {
		t.Fatalf("deep edit: invalidated=%d surviving=%d", re.InvalidatedSummaries, re.SurvivingSummaries)
	}
	routed := 0
	for _, n := range re.PerNodeInvalidated {
		routed += n
	}
	if routed != re.InvalidatedSummaries {
		t.Fatalf("per-node invalidation %v sums to %d, want %d", re.PerNodeInvalidated, routed, re.InvalidatedSummaries)
	}
}
