// Incremental re-analysis: before a warm run hydrates from the store,
// prepareIncr diffs the program against the store's manifest, plans the
// invalidation cone (internal/incr), discards exactly the stale
// summaries, and decides whether the persisted verdict can be reused
// outright. All three engines share this path; only the plumbing of the
// results into Result/DistResult differs.

package core

import (
	"sort"

	"repro/internal/cfg"
	"repro/internal/incr"
	"repro/internal/store"
	"repro/internal/summary"
	"repro/internal/wire"
)

// incrPrep is what prepareIncr hands back to an engine.
type incrPrep struct {
	// edited is the procedures whose content changed since the manifest
	// was written (every procedure on a full invalidation).
	edited []string
	// invalidated counts summaries discarded from the store; perProc
	// breaks the count down for the distributed engine's routing.
	invalidated int
	perProc     map[string]int
	// surviving is the store's summary count after invalidation, or -1
	// when the store cannot report one.
	surviving int
	// reuse is set when the root lies outside the stale cone and a
	// persisted verdict for this exact question exists: the engine may
	// return verdict without running.
	reuse   bool
	verdict Verdict
	// skipLoad / skipAll implement the fallback for stores without the
	// Deleter capability: stale summaries are filtered out at hydration
	// time instead of deleted.
	skipLoad map[string]bool
	skipAll  bool
	// full marks a run with no usable manifest: everything is stale and
	// the re-check degrades to a (sound) cold run.
	full bool
	err  error
}

// prepareIncr plans and applies invalidation against st for a re-check
// of prog. It must run before the engine hydrates its database. Store
// capabilities degrade gracefully: no ManifestStore or no stored
// manifest means full invalidation; no Deleter means stale summaries
// are skipped at load time; no ProvStore means the static call graph
// alone drives the cone (still sound — see the incr package comment).
func prepareIncr(prog *cfg.Program, st store.Store, q0 summary.Question) incrPrep {
	p := incrPrep{surviving: -1}
	newMan := incr.Snapshot(prog)
	var oldMan map[string]store.Fingerprint
	ms, hasManifest := st.(store.ManifestStore)
	if hasManifest {
		m, err := ms.LoadManifest()
		if err != nil {
			p.err = err
		} else {
			oldMan = m
		}
	}
	p.full = len(oldMan) == 0
	if p.full {
		p.edited = make([]string, 0, len(newMan))
		for name := range newMan {
			p.edited = append(p.edited, name)
		}
		sort.Strings(p.edited)
	} else {
		p.edited = incr.Diff(oldMan, newMan)
	}

	// The dependency graph for the cone: the edited program's static
	// call graph unioned with every persisted provenance adjacency.
	deps := prog.CallGraph()
	var reuseRec *wire.ProvRecord
	rootKey, _ := wire.QuestionKey(q0)
	if ps, ok := st.(store.ProvStore); ok {
		recs, err := ps.LoadProv()
		if err != nil && p.err == nil {
			p.err = err
		}
		for i := range recs {
			deps = incr.MergeDeps(deps, recs[i].Deps)
			if rootKey != "" && recs[i].RootKey == rootKey {
				reuseRec = &recs[i] // records are oldest-first; keep the latest
			}
		}
	}
	plan := incr.PlanInvalidation(p.edited, deps, q0.Proc)

	if del, ok := st.(store.Deleter); ok {
		var removed map[string]int
		var err error
		switch {
		case p.full:
			removed, err = del.DeleteProcs(nil) // nil = everything
		case len(plan.Stale) > 0:
			removed, err = del.DeleteProcs(plan.Stale)
		}
		if err != nil && p.err == nil {
			p.err = err
		}
		p.perProc = removed
		for _, n := range removed {
			p.invalidated += n
		}
	} else if p.full {
		p.skipAll = true
	} else {
		p.skipLoad = make(map[string]bool, len(plan.Stale))
		for _, proc := range plan.Stale {
			p.skipLoad[proc] = true
		}
	}

	// The manifest is replaced right after invalidation, not at run end:
	// survivors + new manifest is a consistent store state even if the
	// run crashes before persisting fresh summaries (the next re-check
	// just finds nothing extra to invalidate).
	if hasManifest {
		if err := ms.PutManifest(newMan); err != nil && p.err == nil {
			p.err = err
		}
	}

	// Verdict reuse: nothing the root (transitively) depends on was
	// edited, so the persisted verdict for this exact question is still
	// the answer. Unknown verdicts are never reused — a re-run may have
	// more budget.
	if !p.full && !plan.RootAffected && reuseRec != nil {
		if v, ok := parseVerdict(reuseRec.Verdict); ok {
			p.reuse = true
			p.verdict = v
			if c, ok := st.(interface{ Count() int }); ok {
				p.surviving = c.Count()
			}
		}
	}
	return p
}

// parseVerdict maps a persisted verdict render back to the enum;
// Unknown (or anything unrecognized) is not reusable.
func parseVerdict(s string) (Verdict, bool) {
	switch s {
	case Safe.String():
		return Safe, true
	case ErrorReachable.String():
		return ErrorReachable, true
	}
	return Unknown, false
}

// applyIncrPrep copies the plan's accounting into a shared-memory
// engine result.
func applyIncrPrep(res *Result, p incrPrep) {
	res.EditedProcs = p.edited
	res.InvalidatedSummaries = p.invalidated
	if p.surviving >= 0 {
		res.SurvivingSummaries = p.surviving
	}
	if p.err != nil && res.StoreErr == nil {
		res.StoreErr = p.err
	}
}
