package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/drivers"
	"repro/internal/parser"
	"repro/internal/punch/maymust"
)

func TestDistributedMatchesSingleNode(t *testing.T) {
	cases := []struct {
		src  string
		want Verdict
	}{
		{`globals g;
		  proc main { g = 0; a(); b(); assert(g <= 2); }
		  proc a { g = g + 1; }
		  proc b { g = g + 1; }`, Safe},
		{`globals g;
		  proc main { g = 0; a(); b(); assert(g <= 1); }
		  proc a { g = g + 1; }
		  proc b { g = g + 1; }`, ErrorReachable},
	}
	for i, c := range cases {
		prog := parser.MustParse(c.src)
		for _, nodes := range []int{1, 2, 4} {
			eng := NewDistributed(prog, DistOptions{
				Punch:          maymust.New(),
				Nodes:          nodes,
				ThreadsPerNode: 2,
				MaxRounds:      4000,
			})
			res := eng.Run(AssertionQuestion(prog))
			if res.Verdict != c.want {
				t.Errorf("case %d nodes=%d: verdict %v, want %v", i, nodes, res.Verdict, c.want)
			}
		}
	}
}

func TestDistributedShardsMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("driver verification is not short")
	}
	prog := drivers.Generate(drivers.NamedCheck("parport", "MarkPowerDown", false).Config)
	q := AssertionQuestion(prog)

	single := NewDistributed(prog, DistOptions{Punch: maymust.New(), Nodes: 1, ThreadsPerNode: 8, MaxRounds: 1 << 18}).Run(q)
	multi := NewDistributed(prog, DistOptions{Punch: maymust.New(), Nodes: 4, ThreadsPerNode: 8, MaxRounds: 1 << 18}).Run(q)

	if single.Verdict != Safe || multi.Verdict != Safe {
		t.Fatalf("verdicts: single=%v multi=%v", single.Verdict, multi.Verdict)
	}
	maxShard := 0
	for _, p := range multi.PerNodePeakLive {
		if p > maxShard {
			maxShard = p
		}
	}
	// The paper's prediction: sharding bounds per-machine memory. The
	// busiest shard must hold fewer live queries than the single node.
	if maxShard >= single.PerNodePeakLive[0] && single.PerNodePeakLive[0] > 2 {
		t.Errorf("no memory sharding benefit: shard peak %d vs single %d", maxShard, single.PerNodePeakLive[0])
	}
	if multi.SyncExchanges == 0 {
		t.Error("no gossip happened")
	}
}

func TestDistributedSyncLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("driver verification is not short")
	}
	prog := drivers.Generate(drivers.NamedCheck("parport", "PowerDownFail", false).Config)
	q := AssertionQuestion(prog)
	fast := NewDistributed(prog, DistOptions{Punch: maymust.New(), Nodes: 2, ThreadsPerNode: 4, SyncEvery: 1, MaxRounds: 1 << 18}).Run(q)
	slow := NewDistributed(prog, DistOptions{Punch: maymust.New(), Nodes: 2, ThreadsPerNode: 4, SyncEvery: 8, SyncCost: 50, MaxRounds: 1 << 18}).Run(q)
	if fast.Verdict != Safe || slow.Verdict != Safe {
		t.Fatalf("verdicts: fast=%v slow=%v", fast.Verdict, slow.Verdict)
	}
	// Staleness must never change the verdict; it may change the cost.
	t.Logf("sync every round: %d ticks; every 8 rounds: %d ticks", fast.VirtualTicks, slow.VirtualTicks)
}

// TestDistributedFaultConfluence is the acceptance criterion for the
// fault-injection layer: killing a node mid-run while dropping 20% of
// gossip deliveries (seeded) must leave every corpus verdict identical
// to the fault-free barrier engine's. Recovery = the dead node's
// summaries are re-gossiped from the replicated log and its live queries
// re-routed to the next live node on the hash ring.
func TestDistributedFaultConfluence(t *testing.T) {
	files, err := filepath.Glob("../../testdata/corpus/*.bolt")
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus missing: %v (%d files)", err, len(files))
	}
	for _, f := range files {
		name := filepath.Base(f)
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := parser.Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			want := Safe
			if strings.HasPrefix(name, "bug_") {
				want = ErrorReachable
			}
			q0 := AssertionQuestion(prog)
			barrier := New(prog, Options{Punch: maymust.New(), MaxThreads: 8, MaxIterations: 60000}).Run(q0)
			if barrier.Verdict != want {
				t.Fatalf("barrier verdict %v, want %v", barrier.Verdict, want)
			}
			dist := NewDistributed(prog, DistOptions{
				Punch:          maymust.New(),
				Nodes:          3,
				ThreadsPerNode: 4,
				MaxRounds:      60000,
				Faults:         &Faults{KillNode: 1, KillRound: 1, GossipDrop: 0.2, Seed: 42},
			}).Run(q0)
			if dist.Verdict != barrier.Verdict {
				t.Errorf("fault-injected verdict %v diverges from barrier %v (stop %v, killed %v, rerouted %d, recovered %d)",
					dist.Verdict, barrier.Verdict, dist.StopReason, dist.KilledNodes, dist.ReroutedQueries, dist.RecoveredSummaries)
			}
			// The kill fires at the start of round 1; a program answered in
			// round 0 legitimately never sees it.
			if dist.Rounds > 1 && (len(dist.KilledNodes) != 1 || dist.KilledNodes[0] != 1) {
				t.Errorf("killed nodes = %v after %d rounds, want [1]", dist.KilledNodes, dist.Rounds)
			}
		})
	}
}

// TestDistributedKillRecovery kills a node deep into a driver-sized run
// with lossy gossip and requires the verdict to survive the failover.
func TestDistributedKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("driver verification is not short")
	}
	prog := drivers.Generate(drivers.NamedCheck("parport", "MarkPowerDown", false).Config)
	res := NewDistributed(prog, DistOptions{
		Punch:          maymust.New(),
		Nodes:          4,
		ThreadsPerNode: 8,
		MaxRounds:      1 << 18,
		Faults:         &Faults{KillNode: 2, KillRound: 3, GossipDrop: 0.2, Seed: 7},
	}).Run(AssertionQuestion(prog))
	if res.Verdict != Safe {
		t.Fatalf("verdict %v after node kill, want Safe (stop %v)", res.Verdict, res.StopReason)
	}
	if len(res.KilledNodes) != 1 || res.KilledNodes[0] != 2 {
		t.Fatalf("killed nodes = %v, want [2]", res.KilledNodes)
	}
	if res.StopReason != StopRootAnswered {
		t.Fatalf("stop reason %v, want root-answered", res.StopReason)
	}
	t.Logf("recovered: %d summaries re-gossiped, %d queries re-routed, %d deliveries dropped",
		res.RecoveredSummaries, res.ReroutedQueries, res.DroppedDeliveries)
}

// TestDistributedNodeFailureStop: when the failing node is the last one
// alive the run cannot proceed — it must stop with StopNodeFailure, not
// pretend to time out or deadlock.
func TestDistributedNodeFailureStop(t *testing.T) {
	prog := parser.MustParse(relationalToySource())
	res := NewDistributed(prog, DistOptions{
		Punch:          maymust.New(),
		Nodes:          1,
		ThreadsPerNode: 2,
		MaxRounds:      4000,
		Faults:         &Faults{KillNode: 0, KillRound: 1, Seed: 1},
	}).Run(AssertionQuestion(prog))
	if res.StopReason != StopNodeFailure {
		t.Fatalf("stop reason %v, want node-failure", res.StopReason)
	}
	if res.Verdict != Unknown {
		t.Fatalf("verdict %v, want Unknown", res.Verdict)
	}
	if res.TimedOut || res.Deadlocked {
		t.Fatalf("node failure misreported: timedOut=%v deadlocked=%v", res.TimedOut, res.Deadlocked)
	}
	if len(res.KilledNodes) != 1 {
		t.Fatalf("killed nodes = %v", res.KilledNodes)
	}
}
