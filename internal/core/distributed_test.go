package core

import (
	"testing"

	"repro/internal/drivers"
	"repro/internal/parser"
	"repro/internal/punch/maymust"
)

func TestDistributedMatchesSingleNode(t *testing.T) {
	cases := []struct {
		src  string
		want Verdict
	}{
		{`globals g;
		  proc main { g = 0; a(); b(); assert(g <= 2); }
		  proc a { g = g + 1; }
		  proc b { g = g + 1; }`, Safe},
		{`globals g;
		  proc main { g = 0; a(); b(); assert(g <= 1); }
		  proc a { g = g + 1; }
		  proc b { g = g + 1; }`, ErrorReachable},
	}
	for i, c := range cases {
		prog := parser.MustParse(c.src)
		for _, nodes := range []int{1, 2, 4} {
			eng := NewDistributed(prog, DistOptions{
				Punch:          maymust.New(),
				Nodes:          nodes,
				ThreadsPerNode: 2,
				MaxRounds:      4000,
			})
			res := eng.Run(AssertionQuestion(prog))
			if res.Verdict != c.want {
				t.Errorf("case %d nodes=%d: verdict %v, want %v", i, nodes, res.Verdict, c.want)
			}
		}
	}
}

func TestDistributedShardsMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("driver verification is not short")
	}
	prog := drivers.Generate(drivers.NamedCheck("parport", "MarkPowerDown", false).Config)
	q := AssertionQuestion(prog)

	single := NewDistributed(prog, DistOptions{Punch: maymust.New(), Nodes: 1, ThreadsPerNode: 8, MaxRounds: 1 << 18}).Run(q)
	multi := NewDistributed(prog, DistOptions{Punch: maymust.New(), Nodes: 4, ThreadsPerNode: 8, MaxRounds: 1 << 18}).Run(q)

	if single.Verdict != Safe || multi.Verdict != Safe {
		t.Fatalf("verdicts: single=%v multi=%v", single.Verdict, multi.Verdict)
	}
	maxShard := 0
	for _, p := range multi.PerNodePeakLive {
		if p > maxShard {
			maxShard = p
		}
	}
	// The paper's prediction: sharding bounds per-machine memory. The
	// busiest shard must hold fewer live queries than the single node.
	if maxShard >= single.PerNodePeakLive[0] && single.PerNodePeakLive[0] > 2 {
		t.Errorf("no memory sharding benefit: shard peak %d vs single %d", maxShard, single.PerNodePeakLive[0])
	}
	if multi.SyncExchanges == 0 {
		t.Error("no gossip happened")
	}
}

func TestDistributedSyncLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("driver verification is not short")
	}
	prog := drivers.Generate(drivers.NamedCheck("parport", "PowerDownFail", false).Config)
	q := AssertionQuestion(prog)
	fast := NewDistributed(prog, DistOptions{Punch: maymust.New(), Nodes: 2, ThreadsPerNode: 4, SyncEvery: 1, MaxRounds: 1 << 18}).Run(q)
	slow := NewDistributed(prog, DistOptions{Punch: maymust.New(), Nodes: 2, ThreadsPerNode: 4, SyncEvery: 8, SyncCost: 50, MaxRounds: 1 << 18}).Run(q)
	if fast.Verdict != Safe || slow.Verdict != Safe {
		t.Fatalf("verdicts: fast=%v slow=%v", fast.Verdict, slow.Verdict)
	}
	// Staleness must never change the verdict; it may change the cost.
	t.Logf("sync every round: %d ticks; every 8 rounds: %d ticks", fast.VirtualTicks, slow.VirtualTicks)
}
