package core

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/parser"
	"repro/internal/punch/maymust"
)

func run(t *testing.T, src string, threads int) Result {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return runProg(t, prog, threads)
}

func runProg(t *testing.T, prog *cfg.Program, threads int) Result {
	t.Helper()
	eng := New(prog, Options{
		Punch:         maymust.New(),
		MaxThreads:    threads,
		MaxIterations: 3000,
		CheckContract: true,
	})
	return eng.Run(AssertionQuestion(prog))
}

func TestSafeStraightLine(t *testing.T) {
	res := run(t, `proc main { locals x; x = 1; assert(x > 0); }`, 1)
	if res.Verdict != Safe {
		t.Fatalf("verdict = %v (%+v)", res.Verdict, res)
	}
}

func TestBuggyStraightLine(t *testing.T) {
	res := run(t, `proc main { locals x; x = 1; assert(x > 5); }`, 1)
	if res.Verdict != ErrorReachable {
		t.Fatalf("verdict = %v (%+v)", res.Verdict, res)
	}
}

func TestHavocSafe(t *testing.T) {
	res := run(t, `
proc main {
  locals x;
  havoc x;
  assume(x > 0);
  assert(x >= 1);
}`, 1)
	if res.Verdict != Safe {
		t.Fatalf("verdict = %v", res.Verdict)
	}
}

func TestHavocBuggy(t *testing.T) {
	res := run(t, `
proc main {
  locals x;
  havoc x;
  assume(x > 0);
  assert(x >= 2);
}`, 1)
	if res.Verdict != ErrorReachable {
		t.Fatalf("verdict = %v", res.Verdict)
	}
}

func TestBranchingSafe(t *testing.T) {
	res := run(t, `
proc main {
  locals x, y;
  havoc x;
  if (x > 0) { y = x; } else { y = 0 - x; }
  assert(y >= 0);
}`, 1)
	if res.Verdict != Safe {
		t.Fatalf("verdict = %v", res.Verdict)
	}
}

func TestCallSafe(t *testing.T) {
	res := run(t, `
globals g;
proc main {
  g = 5;
  bump();
  assert(g >= 6);
}
proc bump {
  g = g + 1;
}`, 1)
	if res.Verdict != Safe {
		t.Fatalf("verdict = %v (%+v)", res.Verdict, res)
	}
	if res.TotalQueries < 2 {
		t.Fatalf("expected a child query for bump, got %d total", res.TotalQueries)
	}
}

func TestCallBuggy(t *testing.T) {
	res := run(t, `
globals g;
proc main {
  g = 5;
  bump();
  assert(g >= 7);
}
proc bump {
  g = g + 1;
}`, 1)
	if res.Verdict != ErrorReachable {
		t.Fatalf("verdict = %v (%+v)", res.Verdict, res)
	}
}

// toySource is a modular rendering of the §2.1 toy program: main calls
// foo, bar and baz and asserts on their results, with each obligation
// checkable against one callee at a time — the shape of real SDV safety
// properties (per-global monitor automata).
func toySource() string {
	return `
program toy;
globals rfoo, rbar, rbaz, p;

proc main {
  foo();
  bar();
  p = 0 - 12;
  baz();
  assert(rfoo > -5);
  assert(rbar > -5);
  assert(rbaz > -6);
}

proc foo {
  havoc rfoo;
  assume(rfoo >= -4);
}

proc bar {
  havoc rbar;
  assume(rbar >= -4);
}

proc baz {
  // Called only with p <= -10; returns a value above -6.
  havoc rbaz;
  assume(rbaz >= p + 7);
}
`
}

// relationalToySource is the §2.1 toy verbatim: the assertion couples all
// three callee results through one linear sum. Proving it requires a
// relational invariant across three procedure summaries, which
// test-driven may-must refinement (DASH and this reproduction alike)
// explores point by point; convergence is not guaranteed. The test
// demands soundness — never a wrong verdict — but tolerates Unknown.
func relationalToySource() string {
	return `
program toyrel;
globals rfoo, rbar, rbaz, p;

proc main {
  locals y;
  foo();
  bar();
  p = 0 - 12;
  baz();
  y = rfoo + rbar + rbaz + 16;
  assert(y > 0);
}

proc foo {
  havoc rfoo;
  assume(rfoo >= -4);
}

proc bar {
  havoc rbar;
  assume(rbar >= -4);
}

proc baz {
  havoc rbaz;
  assume(rbaz >= p + 7);
}
`
}

func TestToyProgramSafe(t *testing.T) {
	// rfoo, rbar ≥ -4 > -5 and rbaz ≥ p+7 = -5 > -6: all asserts hold.
	res := run(t, toySource(), 1)
	if res.Verdict != Safe {
		t.Fatalf("verdict = %v (%+v)", res.Verdict, res)
	}
}

func TestToyProgramParallelMatchesSequential(t *testing.T) {
	for _, threads := range []int{1, 2, 4, 8} {
		res := run(t, toySource(), threads)
		if res.Verdict != Safe {
			t.Fatalf("threads=%d: verdict = %v", threads, res.Verdict)
		}
	}
}

func TestRelationalToySoundness(t *testing.T) {
	prog := parser.MustParse(relationalToySource())
	eng := New(prog, Options{
		Punch:         maymust.New(),
		MaxThreads:    2,
		MaxIterations: 120,
		CheckContract: true,
	})
	res := eng.Run(AssertionQuestion(prog))
	// The program is safe; the analysis may not converge on the
	// relational invariant, but it must never report the error reachable.
	if res.Verdict == ErrorReachable {
		t.Fatalf("unsound verdict on safe relational program: %+v", res)
	}
}

func TestLoopSafe(t *testing.T) {
	res := run(t, `
proc main {
  locals i;
  i = 0;
  while (i < 5) { i = i + 1; }
  assert(i >= 5);
}`, 1)
	if res.Verdict != Safe {
		t.Fatalf("verdict = %v (%+v)", res.Verdict, res)
	}
}

func TestLoopBuggy(t *testing.T) {
	res := run(t, `
proc main {
  locals i;
  i = 0;
  while (i < 5) { i = i + 1; }
  assert(i >= 6);
}`, 1)
	if res.Verdict != ErrorReachable {
		t.Fatalf("verdict = %v (%+v)", res.Verdict, res)
	}
}

func TestNestedCallsSafe(t *testing.T) {
	res := run(t, `
globals a, b;
proc main {
  a = 0; b = 0;
  level1();
  assert(a + b <= 4);
}
proc level1 {
  a = a + 1;
  level2();
  a = a + 1;
}
proc level2 {
  b = b + 1;
  level3();
}
proc level3 {
  b = b + 1;
}`, 1)
	if res.Verdict != Safe {
		t.Fatalf("verdict = %v (%+v)", res.Verdict, res)
	}
}

func TestDiamondCallGraphSummaryReuse(t *testing.T) {
	// Both paths call shared(); the summary must be computed once and
	// reused.
	res := run(t, `
globals g, c;
proc main {
  havoc c;
  g = 0;
  if (c > 0) { left(); } else { right(); }
  assert(g <= 3);
}
proc left { shared(); }
proc right { shared(); g = g + 1; }
proc shared { g = g + 2; }`, 1)
	if res.Verdict != Safe {
		t.Fatalf("verdict = %v (%+v)", res.Verdict, res)
	}
}

func TestUnknownOnIterationBudget(t *testing.T) {
	// A loop whose invariant the analysis cannot find quickly with a tiny
	// budget must yield Unknown, not a wrong verdict.
	prog := parser.MustParse(`
proc main {
  locals i, j;
  havoc j;
  i = 0;
  while (i < j) { i = i + 1; }
  assert(i * 1 >= 0 || j > 0 || i <= j + 100);
}`)
	eng := New(prog, Options{Punch: maymust.New(), MaxThreads: 1, MaxIterations: 2})
	res := eng.Run(AssertionQuestion(prog))
	if res.Verdict == ErrorReachable {
		t.Fatalf("wrong verdict on budget exhaustion: %v", res.Verdict)
	}
}

func TestParamsVerifyEndToEnd(t *testing.T) {
	// The parameter/return calling-convention sugar must verify cleanly
	// through the whole pipeline.
	res := run(t, `
globals r;
proc main {
  locals x;
  havoc x;
  assume(x >= 0 && x <= 10);
  r = double(x);
  assert(r <= 20);
}
proc double(n) {
  return n + n;
}`, 4)
	if res.Verdict != Safe {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	res2 := run(t, `
globals r;
proc main {
  locals x;
  havoc x;
  assume(x >= 0 && x <= 10);
  r = double(x);
  assert(r <= 19);
}
proc double(n) {
  return n + n;
}`, 4)
	if res2.Verdict != ErrorReachable {
		t.Fatalf("verdict = %v", res2.Verdict)
	}
}
