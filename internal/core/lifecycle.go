// Run-lifecycle layer shared by the three engines (barrier, streaming,
// distributed): one audited vocabulary for why a run ended, plus the
// fault-injection plan the distributed simulation executes. Before this
// layer each engine hand-rolled its own break/bool logic, and the edge
// cases diverged (timeout vs deadlock conflation, lost mid-batch Done
// counts, bare Unknown on all-blocked clusters); every termination path
// now records exactly one StopReason, and the legacy TimedOut/Deadlocked
// flags are derived from it.
package core

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/smt"
	"repro/internal/summary"
)

// StopReason explains why a run terminated. Exactly one reason is
// recorded per run; the first stop condition to fire wins, except that an
// answered root always reports RootAnswered (a verdict found in the same
// instant as a budget stop is still a verdict).
type StopReason int

// Stop reasons, in rough priority order.
const (
	// StopNone: the run has not terminated (zero value; never returned by
	// a completed Run).
	StopNone StopReason = iota
	// StopRootAnswered: the root question was answered; the Verdict field
	// holds the answer.
	StopRootAnswered
	// StopWallTimeout: the wall-clock budget (RealTimeout) expired.
	StopWallTimeout
	// StopTickBudget: the virtual-time budget (MaxVirtualTicks) expired.
	StopTickBudget
	// StopEventBudget: the iteration/event/round budget (MaxIterations,
	// its event-count analogue in the streaming engine, or MaxRounds in
	// the distributed simulation) was exhausted.
	StopEventBudget
	// StopDeadlocked: every live query is Blocked and no child can ever
	// answer, so the analysis is stuck short of any budget.
	StopDeadlocked
	// StopCancelled: the context passed to RunContext was cancelled.
	StopCancelled
	// StopNodeFailure: injected faults killed every node of the
	// distributed simulation, leaving nobody to answer the root.
	StopNodeFailure
	// StopVerdictReused: an incremental re-check answered the root from
	// the persisted verdict without running — the edit's invalidation
	// cone did not touch the root question.
	StopVerdictReused
)

func (r StopReason) String() string {
	switch r {
	case StopNone:
		return "none"
	case StopRootAnswered:
		return "root-answered"
	case StopWallTimeout:
		return "wall-timeout"
	case StopTickBudget:
		return "tick-budget"
	case StopEventBudget:
		return "event-budget"
	case StopDeadlocked:
		return "deadlocked"
	case StopCancelled:
		return "cancelled"
	case StopNodeFailure:
		return "node-failure"
	case StopVerdictReused:
		return "verdict-reused"
	}
	return fmt.Sprintf("StopReason(%d)", int(r))
}

// Exhausted reports whether the reason is a resource-budget stop — the
// cases the legacy TimedOut flag covered. Cancellation and deadlock are
// not budget exhaustion.
func (r StopReason) Exhausted() bool {
	return r == StopWallTimeout || r == StopTickBudget || r == StopEventBudget
}

// Faults is the fault-injection plan for the distributed simulation
// (DistOptions.Faults): kill one node at the start of a given round, and
// drop gossip deliveries with seeded randomness. A dropped delivery is
// not acknowledged (the receiver's dedup set is left unmarked), so it is
// retried at the next exchange — injected drop is therefore also injected
// delay. All randomness flows from Seed, keeping faulty runs replayable.
type Faults struct {
	// KillNode is the node to kill (-1 = no kill).
	KillNode int
	// KillRound is the round at whose start the node dies. Rounds are
	// 0-based; a kill round the run never reaches injects nothing.
	KillRound int
	// GossipDrop is the probability in [0,1) that one summary delivery is
	// dropped (deferred to a later exchange) during a periodic gossip.
	// Deadlock-recovery exchanges are exempt: they model a reliable
	// anti-entropy repair, so injected loss can delay but never wedge the
	// cluster.
	GossipDrop float64
	// Seed seeds the drop randomness.
	Seed int64
}

// NoFaultNode marks a Faults plan with no kill.
const NoFaultNode = -1

// instr bundles one run's observability hooks — the event tracer, the
// metrics registry, the wall-clock epoch, and the pprof-label switch —
// shared by the three engines. The zero instr is fully disabled. The
// hot-path contract: every event emission is guarded by `if in.tr !=
// nil` at the call site (one branch, no Event constructed behind it)
// and every metrics update goes through obs's nil-receiver-safe
// methods (one branch each).
type instr struct {
	tr     obs.Tracer
	m      *obs.Metrics
	epoch  time.Time
	labels bool
}

// newInstr builds the hooks for a run with the given worker-slot count.
func newInstr(tr obs.Tracer, m *obs.Metrics, workers int, epoch time.Time, labels bool) instr {
	m.EnsureWorkers(workers)
	return instr{tr: tr, m: m, epoch: epoch, labels: labels}
}

// emit stamps ev with the run-relative wall clock and hands it to the
// tracer. Callers guard with `if in.tr != nil`.
func (in *instr) emit(ev obs.Event) {
	ev.Wall = time.Since(in.epoch)
	in.tr.Event(ev)
}

// deliver records one summary delivery between nodes of the distributed
// simulation: the gossip counters plus a send/receive event pair keyed
// by the endpoints.
func (in *instr) deliver(from, to int, proc string, bytes int, vtime int64) {
	in.m.Inc(obs.GossipDeliveries)
	in.m.Add(obs.GossipBytes, int64(bytes))
	if in.tr != nil {
		in.emit(obs.Event{Type: obs.EvGossipSend, Proc: proc, Node: from, VTime: vtime, N: int64(bytes)})
		in.emit(obs.Event{Type: obs.EvGossipRecv, Proc: proc, Node: to, VTime: vtime, N: int64(bytes)})
	}
}

// finish snapshots the registry (nil when metrics were off), stamping
// the run's makespan and folding in the summary-database traffic under
// sumdb_* counter keys (aggregate plus per lock stripe) and the solver's
// entailment-cache traffic under entailment_cache_* keys. The solver
// counters live as atomics in smt.Stats (smt cannot import obs), so this
// fold is what routes them into the Prometheus rendering.
func (in *instr) finish(makespan int64, st summary.Stats, sv smt.Stats) *obs.Snapshot {
	snap := in.m.Snapshot()
	if snap == nil {
		return nil
	}
	snap.MakespanTicks = makespan
	c := snap.Counters
	c["sumdb_added"] = st.Added
	c["sumdb_yes_hits"] = st.YesHits
	c["sumdb_no_hits"] = st.NoHits
	c["sumdb_misses"] = st.Misses
	c["sumdb_memo_hits"] = st.MemoHits
	c["sumdb_dupes_skipped"] = st.DupesSkip
	for _, sh := range st.PerShard {
		base := fmt.Sprintf("sumdb_shard%02d_", sh.Shard)
		c[base+"hits"] = sh.YesHits + sh.NoHits
		c[base+"misses"] = sh.Misses
		c[base+"summaries"] = int64(sh.Summaries)
	}
	c["entailment_cache_hits"] = sv.EntailCacheHits
	c["entailment_cache_misses"] = sv.EntailCacheMisses
	c["entailment_cache_syn_hits"] = sv.EntailSynHits
	c["dpll_conflicts"] = sv.DPLLConflicts
	c["dpll_learned_clauses"] = sv.LearnedClauses
	c["dpll_propagations"] = sv.Propagations
	c["theory_checks"] = sv.TheoryChecks
	c["hashcons_hits"] = sv.HashConsHits
	return snap
}

// ParseFaults parses a command-line fault spec of the form
//
//	kill=N@R,drop=P,seed=S
//
// where every clause is optional (an empty spec returns nil: no faults).
// Examples: "kill=1@3", "drop=0.2,seed=42", "kill=0@5,drop=0.1".
func ParseFaults(spec string) (*Faults, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	f := &Faults{KillNode: NoFaultNode}
	for _, clause := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(clause), "=")
		if !ok {
			return nil, fmt.Errorf("faults: clause %q is not key=value", clause)
		}
		switch key {
		case "kill":
			node, round, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("faults: kill=%q is not NODE@ROUND", val)
			}
			n, err := strconv.Atoi(node)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faults: bad kill node %q", node)
			}
			r, err := strconv.Atoi(round)
			if err != nil || r < 0 {
				return nil, fmt.Errorf("faults: bad kill round %q", round)
			}
			f.KillNode, f.KillRound = n, r
		case "drop":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p >= 1 {
				return nil, fmt.Errorf("faults: drop=%q is not a probability in [0,1)", val)
			}
			f.GossipDrop = p
		case "seed":
			s, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q", val)
			}
			f.Seed = s
		default:
			return nil, fmt.Errorf("faults: unknown clause %q", key)
		}
	}
	return f, nil
}
