package core

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/parser"
	"repro/internal/punch"
	"repro/internal/punch/maymust"
	"repro/internal/query"
	"repro/internal/summary"
)

// diamondPunch scripts the canonical coalescing shape: the root spawns
// "left" and "right", each of which spawns an identical "shared"
// question. With coalescing on, the second "shared" spawn must attach to
// the in-flight first instead of allocating a twin subtree; the shared
// query goes Done while its coalesced waiter is still Blocked, so the
// Done fan-out and the GC retention rule are both on the hook — a
// dropped wake or a premature collection deadlocks the diamond.
type diamondPunch struct {
	mu         sync.Mutex
	calls      map[query.ID]int
	armsDone   map[string]bool
	sharedRuns int
}

func newDiamondPunch() *diamondPunch {
	return &diamondPunch{calls: map[query.ID]int{}, armsDone: map[string]bool{}}
}

func (p *diamondPunch) Name() string { return "diamond" }

func (p *diamondPunch) Step(ctx *punch.Context, qr *query.Query) punch.Result {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls[qr.ID]++
	done := func() punch.Result {
		qr.State, qr.Outcome = query.Done, query.Unreachable
		return punch.Result{Self: qr, Cost: 1}
	}
	spawn := func(procs ...string) punch.Result {
		children := make([]*query.Query, len(procs))
		for i, proc := range procs {
			children[i] = ctx.Alloc.New(qr.ID, summary.Question{Proc: proc})
		}
		qr.State = query.Blocked
		return punch.Result{Self: qr, Children: children, Cost: 1}
	}
	switch qr.Q.Proc {
	case "main":
		if p.calls[qr.ID] == 1 {
			return spawn("left", "right")
		}
		// Re-examine-and-reblock: a wake with only one arm answered is
		// legitimate (the streaming schedule wakes on the first child's
		// Done), so the root completes only once both arms have.
		if p.armsDone["left"] && p.armsDone["right"] {
			return done()
		}
		qr.State = query.Blocked
		return punch.Result{Self: qr, Cost: 1}
	case "left", "right":
		if p.calls[qr.ID] == 1 {
			return spawn("shared")
		}
		p.armsDone[qr.Q.Proc] = true
		return done()
	default: // shared
		p.sharedRuns++
		return done()
	}
}

// TestCoalesceDiamondBarrier: exact accounting on the deterministic
// barrier schedule. On: one coalesce hit, the shared subtree exists
// once (4 queries total live and done). Off: the duplicate subtree is
// materialized (5 of each). Either way the diamond terminates with the
// root answered — the waiter wake after the shared query's Done is what
// keeps the second arm alive.
func TestCoalesceDiamondBarrier(t *testing.T) {
	prog := parser.MustParse(`proc main { locals x; x = 1; assert(x > 0); }`)
	for _, tc := range []struct {
		name             string
		disable          bool
		hits, done, peak int64
		sharedRuns       int
	}{
		{name: "coalesce-on", disable: false, hits: 1, done: 4, peak: 4, sharedRuns: 1},
		{name: "coalesce-off", disable: true, hits: 0, done: 5, peak: 5, sharedRuns: 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := newDiamondPunch()
			res := New(prog, Options{
				Punch:           p,
				MaxThreads:      2,
				MaxIterations:   100,
				DisableCoalesce: tc.disable,
			}).Run(summary.Question{Proc: "main"})
			if res.Verdict != Safe {
				t.Fatalf("verdict = %v", res.Verdict)
			}
			if res.StopReason != StopRootAnswered {
				t.Fatalf("stop reason = %v (a lost waiter wake deadlocks here)", res.StopReason)
			}
			if res.CoalesceHits != tc.hits {
				t.Errorf("CoalesceHits = %d, want %d", res.CoalesceHits, tc.hits)
			}
			if res.DoneQueries != tc.done {
				t.Errorf("DoneQueries = %d, want %d", res.DoneQueries, tc.done)
			}
			if int64(res.PeakLive) != tc.peak {
				t.Errorf("PeakLive = %d, want %d", res.PeakLive, tc.peak)
			}
			if p.sharedRuns != tc.sharedRuns {
				t.Errorf("shared PUNCH runs = %d, want %d", p.sharedRuns, tc.sharedRuns)
			}
		})
	}
}

// TestCoalesceDiamondAsync: the streaming schedule is nondeterministic
// (the second arm may spawn before, during, or after the shared twin's
// lifetime), but accounting must balance: every allocated arm either
// runs to Done or is absorbed by a coalesce hit, so Done + hits is the
// full 5-query diamond regardless of interleaving.
func TestCoalesceDiamondAsync(t *testing.T) {
	prog := parser.MustParse(`proc main { locals x; x = 1; assert(x > 0); }`)
	for i := 0; i < 20; i++ {
		res := New(prog, Options{
			Punch:         newDiamondPunch(),
			MaxThreads:    4,
			Async:         true,
			MaxIterations: 1000,
		}).Run(summary.Question{Proc: "main"})
		if res.Verdict != Safe || res.StopReason != StopRootAnswered {
			t.Fatalf("run %d: verdict %v, stop %v", i, res.Verdict, res.StopReason)
		}
		if got := res.DoneQueries + res.CoalesceHits; got != 5 {
			t.Fatalf("run %d: DoneQueries (%d) + CoalesceHits (%d) = %d, want 5",
				i, res.DoneQueries, res.CoalesceHits, got)
		}
	}
}

// TestCorpusCoalesceConfluence: on the regression corpus, coalescing
// and the entailment cache must be invisible in the verdict — every
// engine agrees with the filename's expectation with the optimizations
// on (default) and off, including the distributed engine whose wake
// fan-out crosses node-local trees.
func TestCorpusCoalesceConfluence(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep is not short")
	}
	files, err := filepath.Glob("../../testdata/corpus/*.bolt")
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus missing: %v (%d files)", err, len(files))
	}
	for _, f := range files {
		name := filepath.Base(f)
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := parser.Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			want := Unknown
			switch {
			case strings.HasPrefix(name, "safe_"):
				want = Safe
			case strings.HasPrefix(name, "bug_"):
				want = ErrorReachable
			default:
				t.Fatalf("corpus file %s has no verdict prefix", name)
			}
			for _, disable := range []bool{false, true} {
				for _, async := range []bool{false, true} {
					res := New(prog, Options{
						Punch:                  maymust.New(),
						MaxThreads:             8,
						MaxIterations:          60000,
						CheckContract:          true,
						Async:                  async,
						DisableCoalesce:        disable,
						DisableEntailmentCache: disable,
					}).Run(AssertionQuestion(prog))
					if res.Verdict != want {
						t.Errorf("async=%v disable=%v: verdict %v, want %v",
							async, disable, res.Verdict, want)
					}
				}
				dres := NewDistributed(prog, DistOptions{
					Punch:                  maymust.New(),
					Nodes:                  3,
					DisableCoalesce:        disable,
					DisableEntailmentCache: disable,
				}).Run(AssertionQuestion(prog))
				if dres.Verdict != want {
					t.Errorf("distributed disable=%v: verdict %v, want %v",
						disable, dres.Verdict, want)
				}
			}
		})
	}
}
