package core

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/punch/maymust"
	"repro/internal/store"
	"repro/internal/summary"
)

// warmSrc exercises the interprocedural path: summaries for the callees
// are what the persistent store carries between runs.
const warmSrc = `globals g, c;
proc main { havoc c; g = 0; if (c > 0) { left(); } else { right(); } assert(g <= 3); }
proc left { shared(); }
proc right { shared(); g = g + 1; }
proc shared { g = g + 2; }`

func runWithStore(t *testing.T, src string, async bool, st store.Store) Result {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(prog, Options{
		Punch:         maymust.New(),
		MaxThreads:    4,
		MaxIterations: 3000,
		CheckContract: true,
		Async:         async,
		Store:         st,
	})
	return eng.Run(AssertionQuestion(prog))
}

// TestWarmStart: a cold run persists its summaries, a warm run loads
// them, and the verdict is confluent — on both single-machine engines
// and for both store backends.
func TestWarmStart(t *testing.T) {
	for _, tc := range []struct {
		name  string
		async bool
	}{{"barrier", false}, {"async", true}} {
		t.Run(tc.name, func(t *testing.T) {
			for _, backend := range []string{"mem", "disk"} {
				t.Run(backend, func(t *testing.T) {
					fp := store.NewFingerprint("core-test", warmSrc)
					dir := t.TempDir()
					mem := store.NewMem()
					get := func() store.Store {
						if backend == "mem" {
							return mem
						}
						d, err := store.OpenDisk(dir, fp, false)
						if err != nil {
							t.Fatal(err)
						}
						return d
					}

					st := get()
					cold := runWithStore(t, warmSrc, tc.async, st)
					if cold.StoreErr != nil {
						t.Fatalf("cold run store error: %v", cold.StoreErr)
					}
					if cold.WarmSummaries != 0 {
						t.Fatalf("cold run loaded %d summaries from an empty store", cold.WarmSummaries)
					}
					if cold.PersistedSummaries == 0 {
						t.Fatal("cold run persisted no summaries")
					}
					if backend == "disk" {
						if err := st.Close(); err != nil {
							t.Fatal(err)
						}
					}

					st = get()
					warm := runWithStore(t, warmSrc, tc.async, st)
					if warm.StoreErr != nil {
						t.Fatalf("warm run store error: %v", warm.StoreErr)
					}
					if warm.WarmSummaries == 0 {
						t.Fatal("warm run loaded no summaries")
					}
					if warm.Verdict != cold.Verdict {
						t.Fatalf("verdict diverged cold vs warm: %v vs %v", cold.Verdict, warm.Verdict)
					}
					if warm.VirtualTicks > cold.VirtualTicks {
						t.Errorf("warm run slower than cold: %d > %d ticks", warm.VirtualTicks, cold.VirtualTicks)
					}
					if backend == "disk" {
						if err := st.Close(); err != nil {
							t.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// TestWarmStartDistributed: the cluster engine routes warm summaries to
// their owning nodes and persists the union of all node databases.
func TestWarmStartDistributed(t *testing.T) {
	prog, err := parser.Parse(warmSrc)
	if err != nil {
		t.Fatal(err)
	}
	fp := store.NewFingerprint("core-test-dist", warmSrc)
	dir := t.TempDir()
	q := AssertionQuestion(prog)

	runDist := func(st store.Store) DistResult {
		return NewDistributed(prog, DistOptions{
			Punch:          maymust.New(),
			Nodes:          3,
			ThreadsPerNode: 2,
			MaxRounds:      1 << 18,
			Store:          st,
		}).Run(q)
	}

	st, err := store.OpenDisk(dir, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	cold := runDist(st)
	if cold.StoreErr != nil {
		t.Fatalf("cold run store error: %v", cold.StoreErr)
	}
	if cold.PersistedSummaries == 0 {
		t.Fatal("cold distributed run persisted no summaries")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st, err = store.OpenDisk(dir, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	warm := runDist(st)
	if warm.StoreErr != nil {
		t.Fatalf("warm run store error: %v", warm.StoreErr)
	}
	if warm.WarmSummaries == 0 {
		t.Fatal("warm distributed run loaded no summaries")
	}
	if warm.Verdict != cold.Verdict {
		t.Fatalf("verdict diverged cold vs warm: %v vs %v", cold.Verdict, warm.Verdict)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWarmStartVerdictConfluence sweeps a small program matrix across
// all three engines: whatever the cold run answers, a warm re-run from
// the store it wrote must answer identically. Summaries are sound facts
// about the fingerprinted program, so the verdict cannot flip.
func TestWarmStartVerdictConfluence(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"safe-calls", `globals g;
			proc main { g = 5; bump(); assert(g >= 6); }
			proc bump { g = g + 1; }`},
		{"buggy-calls", `globals g;
			proc main { g = 5; bump(); assert(g >= 7); }
			proc bump { g = g + 1; }`},
		{"safe-nested", `globals a, b;
			proc main { a = 0; b = 0; level1(); assert(a + b <= 4); }
			proc level1 { a = a + 1; level2(); a = a + 1; }
			proc level2 { b = b + 1; level3(); }
			proc level3 { b = b + 1; }`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog, err := parser.Parse(c.src)
			if err != nil {
				t.Fatal(err)
			}
			q := AssertionQuestion(prog)
			for _, engine := range []string{"barrier", "async", "dist"} {
				t.Run(engine, func(t *testing.T) {
					mem := store.NewMem()
					run := func() (Verdict, error) {
						if engine == "dist" {
							r := NewDistributed(prog, DistOptions{
								Punch:          maymust.New(),
								Nodes:          2,
								ThreadsPerNode: 2,
								MaxRounds:      1 << 18,
								Store:          mem,
							}).Run(q)
							return r.Verdict, r.StoreErr
						}
						eng := New(prog, Options{
							Punch:         maymust.New(),
							MaxThreads:    4,
							MaxIterations: 3000,
							CheckContract: true,
							Async:         engine == "async",
							Store:         mem,
						})
						r := eng.Run(q)
						return r.Verdict, r.StoreErr
					}
					cold, err := run()
					if err != nil {
						t.Fatal(err)
					}
					warm, err := run()
					if err != nil {
						t.Fatal(err)
					}
					if warm != cold {
						t.Fatalf("verdict diverged cold vs warm: %v vs %v", cold, warm)
					}
				})
			}
		})
	}
}

// TestStoreDisabledWithSumDBOff: the ablation that disables the summary
// database also disables the store (there is nothing sound to persist).
func TestStoreDisabledWithSumDBOff(t *testing.T) {
	mem := store.NewMem()
	seed := summary.Summary{
		Kind: summary.NotMay,
		Proc: "shared",
		Pre:  logic.LE(logic.LinVar("g").AddConst(-100)),
		Post: logic.False,
	}
	if _, err := mem.Put(seed); err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse(warmSrc)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(prog, Options{
		Punch:         maymust.New(),
		MaxThreads:    2,
		MaxIterations: 3000,
		DisableSumDB:  true,
		Store:         mem,
	})
	res := eng.Run(AssertionQuestion(prog))
	if res.WarmSummaries != 0 || res.PersistedSummaries != 0 {
		t.Fatalf("store used despite DisableSumDB: warm=%d persisted=%d",
			res.WarmSummaries, res.PersistedSummaries)
	}
}
