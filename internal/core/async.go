// Streaming BOLT: an asynchronous work-stealing alternative to the
// bulk-synchronous Fig. 4 loop. The barrier engine's MAP stage waits for
// its slowest PUNCH before REDUCE may wake any parent, so one
// long-running query idles the whole fleet — the straggler effect that
// asynchronous task pools eliminate. Here a persistent pool of
// MaxThreads workers pulls Ready queries from per-worker deques
// (LIFO-local for cache affinity and depth-first flavour, FIFO-steal for
// breadth when idle), and REDUCE happens incrementally per completion:
// a finished query immediately wakes its Blocked parent and
// garbage-collects its subtree without waiting for the rest of any
// batch. When the root query completes, in-flight work is cancelled.
//
// Semantics match the barrier engine: the same PUNCH contract, the same
// summary-database monotonicity, and therefore the same verdicts (the
// confluence tests assert this across the corpus and fuzz seeds). The
// virtual clock is event-driven instead of batch-synchronous: each
// completed PUNCH invocation's cost is assigned greedily to the
// least-loaded simulated core, and virtual time is the resulting online
// list-scheduling makespan — the exact analogue of the barrier engine's
// per-batch makespan without the barrier.
package core

import (
	"context"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/prov"
	"repro/internal/punch"
	"repro/internal/query"
	"repro/internal/smt"
	"repro/internal/summary"
)

// coreClock is the event-driven virtual clock: a min-heap of simulated
// core loads. Each completion event assigns its cost to the least-loaded
// core; the clock reads the makespan so far.
type coreClock struct {
	load  []int64 // min-heap
	vtime int64   // max completion time assigned so far
}

func newCoreClock(cores int) *coreClock {
	if cores <= 0 {
		cores = 1
	}
	return &coreClock{load: make([]int64, cores)}
}

// assign charges cost to the least-loaded core and returns the new
// virtual time. Tracking the running max of assigned completion times is
// exactly the makespan: the eventually-max-loaded core reached its load
// via its own last assignment.
func (c *coreClock) assign(cost int64) int64 {
	l := c.load[0] + cost
	c.load[0] = l
	siftDown(c.load, 0)
	if l > c.vtime {
		c.vtime = l
	}
	return c.vtime
}

// asyncState is the shared scheduler state. One mutex guards the deques,
// the query tree and the instrumentation; PUNCH — the dominant cost —
// always runs outside the lock.
type asyncState struct {
	e    *Engine
	root query.ID
	ctx  context.Context

	mu   sync.Mutex
	cond *sync.Cond
	tree *query.Tree
	// deques[i] is worker i's deque: the owner pushes and pops at the
	// tail (LIFO, depth-first on its own children), thieves steal from
	// the head (FIFO, oldest queries first).
	deques  [][]*query.Query
	queued  map[query.ID]bool // in some deque (dedup guard)
	running map[query.ID]bool // currently inside a PUNCH invocation
	// rewake marks running queries whose child completed mid-flight: if
	// such a query returns Blocked it is immediately re-enqueued, so the
	// wake-up is never lost (the barrier engine gets this for free from
	// its stage ordering).
	rewake map[query.ID]bool

	stopped   bool
	reason    StopReason // first stop condition to fire; set by halt
	busy      int        // workers inside PUNCH
	events    int64      // completion events processed
	maxEvents int64
	doneCount int64
	clock     *coreClock
	start     time.Time
	res       *Result

	// in holds the run's observability hooks. All event emissions
	// happen with mu held (punch-start before the worker unlocks,
	// punch-end and the lifecycle events inside reduce), so the
	// recorded stream is totally ordered and its virtual-time stamps
	// are monotone.
	in instr
	// ls is the live-introspection surface (nil when no probe was
	// attached). Gauges are published under mu in sample(); the
	// per-worker cells are atomics and may also be touched from the
	// worker loop.
	ls    *obs.LiveState
	alloc *query.Allocator
	// depth is each live query's distance from the root, maintained
	// only when pprof labels or live introspection are on.
	depth map[query.ID]int
	// rec is the provenance recorder (nil unless CollectProvenance);
	// workers wrap each PUNCH invocation's database view through it.
	rec *prov.Recorder
}

// runAsync answers q0 with the streaming engine.
func (e *Engine) runAsync(ctx0 context.Context, q0 summary.Question) Result {
	start := time.Now()
	solver := smt.New()
	if !e.opts.DisableEntailmentCache {
		solver.EnableEntailmentCache()
	}
	var db *summary.DB
	if e.opts.DisableSumDB {
		db = summary.NewDisabled(solver)
	} else {
		db = summary.New(solver)
	}
	alloc := &query.Allocator{}
	ctx := &punch.Context{Prog: e.prog, DB: db, Alloc: alloc, ModRef: e.prog.ModRef()}
	tree := query.NewTree()
	if !e.opts.DisableCoalesce {
		tree.TrackInflight()
	}
	root := alloc.New(query.NoParent, q0)
	tree.Add(root)

	cores := e.opts.VirtualCores
	if cores <= 0 || cores > e.opts.MaxThreads {
		cores = e.opts.MaxThreads
	}
	res := Result{Verdict: Unknown, CostByProc: map[string]int64{}}
	var rec *prov.Recorder
	if e.opts.CollectProvenance {
		rec = prov.NewRecorder(e.opts.Metrics)
	}
	var prep incrPrep
	if e.opts.Incremental && e.opts.Store != nil && !e.opts.DisableSumDB {
		prep = prepareIncr(e.prog, e.opts.Store, q0)
		applyIncrPrep(&res, prep)
		if prep.reuse {
			res.Verdict = prep.verdict
			res.ReusedVerdict = true
			res.setStop(StopVerdictReused)
			res.WallTime = time.Since(start)
			return res
		}
	}
	e.loadStore(db, rec, &res, prep.skipLoad, prep.skipAll)
	if e.opts.Incremental {
		res.SurvivingSummaries = res.WarmSummaries
	}
	rec.Root(root.ID, root.Q.Proc)
	s := &asyncState{
		e:       e,
		root:    root.ID,
		ctx:     ctx0,
		tree:    tree,
		deques:  make([][]*query.Query, e.opts.MaxThreads),
		queued:  map[query.ID]bool{},
		running: map[query.ID]bool{},
		rewake:  map[query.ID]bool{},
		// The barrier engine's MaxIterations bounds batches of up to
		// MaxThreads invocations; bound completion events equivalently.
		maxEvents: int64(e.opts.MaxIterations) * int64(e.opts.MaxThreads),
		clock:     newCoreClock(cores),
		start:     start,
		res:       &res,
		alloc:     alloc,
		rec:       rec,
	}
	s.cond = sync.NewCond(&s.mu)
	s.in = newInstr(e.opts.Tracer, e.opts.Metrics, e.opts.MaxThreads, start, e.opts.PprofLabels)
	if e.opts.Probe != nil {
		s.ls = obs.NewLiveState("async", e.opts.MaxThreads, 0, start)
		attachProbe(e.opts.Probe, s.ls, db, solver)
		defer e.opts.Probe.Detach()
		publishForest(s.ls, tree, alloc, 0, 0, 0, 0, 0)
	}
	if s.in.labels || s.ls != nil {
		s.depth = map[query.ID]int{root.ID: 0}
	}
	s.in.m.Inc(obs.QueriesSpawned)
	if s.in.tr != nil {
		s.in.emit(obs.Event{Type: obs.EvSpawn, Query: root.ID, Parent: query.NoParent, Proc: root.Q.Proc})
	}
	s.push(0, root)

	var wg sync.WaitGroup
	for i := 0; i < e.opts.MaxThreads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s.worker(id, ctx)
		}(i)
	}
	// Cancellation watcher: a parked worker sits in cond.Wait and cannot
	// poll ctx, so a dedicated goroutine turns ctx expiry into halt()'s
	// broadcast. It exits with the run (runDone), never after it.
	runDone := make(chan struct{})
	if ctx0.Done() != nil {
		go func() {
			select {
			case <-ctx0.Done():
				s.mu.Lock()
				s.halt(StopCancelled)
				s.mu.Unlock()
			case <-runDone:
			}
		}()
	}
	wg.Wait()
	close(runDone)

	if res.Verdict != Unknown {
		// A verdict recorded in the same instant as a budget or
		// cancellation stop is still a verdict.
		s.reason = StopRootAnswered
	}
	res.setStop(s.reason)
	res.TotalQueries = alloc.Count()
	res.DoneQueries = s.doneCount
	res.VirtualTicks = s.clock.vtime
	res.WallTime = time.Since(start)
	res.SumDB = db.StatsSnapshot()
	res.Solver = solver.StatsSnapshot()
	res.Summaries = db.All()
	e.persistStore(db, &res)
	e.finishProv(rec, &res, "async", q0)
	res.Metrics = s.in.finish(s.clock.vtime, res.SumDB, res.Solver)
	return res
}

// worker is the persistent loop of one pool member.
func (s *asyncState) worker(id int, ctx *punch.Context) {
	s.mu.Lock()
	for {
		if s.stopped {
			break
		}
		if s.checkBudgets() {
			break
		}
		q := s.pop(id)
		if q == nil {
			if s.busy == 0 {
				// No queued work anywhere and nobody running who could
				// produce more: every survivor is Blocked and no child can
				// ever answer, so the analysis is stuck. (A root answer
				// stops the run before the pool can drain.)
				s.halt(StopDeadlocked)
				break
			}
			s.res.IdleWaits++
			s.in.m.Inc(obs.IdleParks)
			s.ls.WorkerParked(id)
			s.cond.Wait()
			continue
		}
		s.busy++
		s.running[q.ID] = true
		s.ls.WorkerRunning(id, q.Q.Proc, int64(q.ID))
		// While PUNCH runs it may mutate q in place outside the lock;
		// keep index scans (ReadyCount, InState) away from it.
		s.tree.Deschedule(q.ID)
		if s.in.tr != nil {
			s.in.emit(obs.Event{Type: obs.EvPunchStart, Query: q.ID, Proc: q.Q.Proc, Worker: id, VTime: s.clock.vtime})
		}
		var d int
		if s.in.labels {
			d = s.depth[q.ID]
		}
		s.mu.Unlock()
		var t0 time.Time
		if s.in.m != nil {
			t0 = time.Now()
		}
		pctx := ctx
		if s.rec != nil {
			ic := *ctx
			ic.DB = s.rec.Frame(ctx.DB, q.ID, q.Q.Proc)
			pctx = &ic
		}
		var r punch.Result
		if s.in.labels {
			obs.DoPunch(s.ctx, "async", q.Q.Proc, d, func() {
				r = s.e.opts.Punch.Step(pctx, q)
			})
		} else {
			r = s.e.opts.Punch.Step(pctx, q)
		}
		var wall time.Duration
		if s.in.m != nil {
			wall = time.Since(t0)
		}
		s.mu.Lock()
		s.busy--
		delete(s.running, q.ID)
		s.ls.WorkerFinished(id)
		if s.in.m != nil {
			s.in.m.ObservePunch(id, r.Cost, wall)
		}
		s.reduce(id, q, r)
	}
	s.mu.Unlock()
}

// checkBudgets enforces cancellation and the wall-clock, virtual-tick
// and event budgets. Called with mu held; returns true when the run must
// stop.
func (s *asyncState) checkBudgets() bool {
	o := &s.e.opts
	switch {
	case s.ctx.Err() != nil:
		s.halt(StopCancelled)
	case o.RealTimeout > 0 && time.Since(s.start) > o.RealTimeout:
		s.halt(StopWallTimeout)
	case o.MaxVirtualTicks > 0 && s.clock.vtime >= o.MaxVirtualTicks:
		s.halt(StopTickBudget)
	case s.events >= s.maxEvents:
		s.halt(StopEventBudget)
	default:
		return false
	}
	return true
}

// halt records the first stop reason and cancels the run: workers finish
// their current PUNCH invocation and exit, parked workers are woken by
// the broadcast. Called with mu held; later calls are no-ops, so exactly
// one reason survives.
func (s *asyncState) halt(reason StopReason) {
	if s.stopped {
		return
	}
	s.reason = reason
	s.stopped = true
	s.cond.Broadcast()
}

// push enqueues q on worker id's deque unless it is already queued or
// running. Called with mu held.
func (s *asyncState) push(id int, q *query.Query) {
	if s.stopped || s.queued[q.ID] || s.running[q.ID] {
		return
	}
	s.queued[q.ID] = true
	s.deques[id] = append(s.deques[id], q)
	s.cond.Signal()
}

// pop returns the next runnable query for worker id: newest from its own
// deque, else oldest stolen from another worker's. Entries whose query
// was garbage-collected or is no longer Ready are discarded in passing.
// Called with mu held.
func (s *asyncState) pop(id int) *query.Query {
	for {
		var q *query.Query
		if d := s.deques[id]; len(d) > 0 {
			q = d[len(d)-1]
			s.deques[id] = d[:len(d)-1]
		} else {
			s.in.m.Inc(obs.StealsAttempted)
			s.ls.WorkerStealing(id)
			for off := 1; off < len(s.deques); off++ {
				v := (id + off) % len(s.deques)
				if d := s.deques[v]; len(d) > 0 {
					q = d[0]
					s.deques[v] = d[1:]
					s.res.Steals++
					s.in.m.Inc(obs.StealsSucceeded)
					s.in.m.ObserveSteal(id)
					if s.in.tr != nil {
						s.in.emit(obs.Event{Type: obs.EvSteal, Query: q.ID, Proc: q.Q.Proc, Worker: id, VTime: s.clock.vtime, N: int64(v)})
					}
					break
				}
			}
		}
		if q == nil {
			return nil
		}
		delete(s.queued, q.ID)
		if live := s.tree.Get(q.ID); live == q && q.State == query.Ready {
			return q
		}
		// Stale: the subtree was collected or the state moved on.
	}
}

// reduce applies one PUNCH result: the incremental REDUCE stage. Called
// with mu held.
func (s *asyncState) reduce(id int, q *query.Query, r punch.Result) {
	if s.e.opts.CheckContract {
		if err := punch.CheckContract(q, r); err != nil {
			panic(err)
		}
	}
	s.events++
	vtimeBefore := s.clock.vtime
	s.clock.assign(r.Cost)
	s.res.CostByProc[q.Q.Proc] += r.Cost
	wasRewake := s.rewake[r.Self.ID]
	delete(s.rewake, r.Self.ID)
	if s.in.tr != nil {
		s.in.emit(obs.Event{Type: obs.EvPunchEnd, Query: q.ID, Proc: q.Q.Proc, Worker: id, VTime: s.clock.vtime, Cost: r.Cost})
	}

	if s.tree.Get(r.Self.ID) == nil {
		// The query's subtree was garbage-collected while it ran (its
		// parent finished first): the result is obsolete. The cost was
		// still charged — real cycles were spent.
		s.sample(vtimeBefore, r.Cost, 0)
		return
	}
	s.tree.Replace(r.Self)
	newQ := 0
	// wakeSelf marks that a spawn coalesced onto an already-Done twin:
	// the answering summary is in SUMDB now, so if this query comes back
	// Blocked it must re-run immediately (same shape as the rewake flag).
	wakeSelf := false
	coalesce := !s.e.opts.DisableCoalesce
	if r.Self.State != query.Done {
		for _, c := range r.Children {
			if coalesce {
				if twinID, ok := s.tree.Inflight(c.Q.Key()); ok && s.tryCoalesce(id, r.Self, c, twinID, &wakeSelf) {
					continue
				}
			}
			s.tree.Add(c)
			s.push(id, c)
			newQ++
			s.in.m.Inc(obs.QueriesSpawned)
			s.rec.Spawn(r.Self.ID, r.Self.Q.Proc, c.ID, c.Q.Proc)
			if s.depth != nil {
				s.depth[c.ID] = s.depth[r.Self.ID] + 1
				s.ls.ObserveDepth(s.depth[c.ID])
			}
			if s.in.tr != nil {
				s.in.emit(obs.Event{Type: obs.EvSpawn, Query: c.ID, Parent: r.Self.ID, Proc: c.Q.Proc, Worker: id, VTime: s.clock.vtime})
			}
		}
	}
	if l := s.tree.Len(); l > s.res.PeakLive {
		s.res.PeakLive = l
	}

	switch r.Self.State {
	case query.Done:
		s.doneCount++
		s.in.m.Inc(obs.QueriesDone)
		if s.in.tr != nil {
			s.in.emit(obs.Event{Type: obs.EvDone, Query: r.Self.ID, Proc: q.Q.Proc, Worker: id, VTime: s.clock.vtime})
		}
		if r.Self.ID == s.root {
			// Root answered: record the verdict and cancel all in-flight
			// and queued work.
			s.res.RootOutcome = r.Self.Outcome
			switch r.Self.Outcome {
			case query.Reachable:
				s.res.Verdict = ErrorReachable
			case query.Unreachable:
				s.res.Verdict = Safe
			}
			s.sample(vtimeBefore, r.Cost, newQ)
			s.halt(StopRootAnswered)
			return
		}
		if r.Self.Parent != query.NoParent {
			s.wake(id, r.Self.Parent)
		}
		// Fan the wake out to every coalesced waiter — the one summary
		// just published answers them all — then clear the edges so the
		// GC condition ("no waiters remain") holds for RemoveSubtree.
		for _, w := range s.tree.Waiters(r.Self.ID) {
			s.wake(id, w)
		}
		s.tree.ClearWaiters(r.Self.ID)
		if !s.e.opts.DisableGC {
			removed := s.tree.RemoveSubtree(r.Self.ID)
			s.in.m.Add(obs.QueriesGCd, int64(removed))
			if s.in.tr != nil {
				s.in.emit(obs.Event{Type: obs.EvGC, Query: r.Self.ID, Proc: q.Q.Proc, Worker: id, VTime: s.clock.vtime, N: int64(removed)})
			}
		}
	case query.Ready:
		// Budget slice exhausted: more work to do, go around again.
		s.push(id, r.Self)
		if s.in.tr != nil {
			s.in.emit(obs.Event{Type: obs.EvReady, Query: r.Self.ID, Proc: q.Q.Proc, Worker: id, VTime: s.clock.vtime})
		}
	case query.Blocked:
		s.in.m.Inc(obs.QueriesBlocked)
		if s.in.tr != nil {
			s.in.emit(obs.Event{Type: obs.EvBlock, Query: r.Self.ID, Proc: q.Q.Proc, Worker: id, VTime: s.clock.vtime})
		}
		if wasRewake || wakeSelf {
			// A child completed while this query ran (or a spawn coalesced
			// onto an already-Done twin); its answer may be exactly what
			// unblocks it.
			s.tree.SetState(r.Self.ID, query.Ready)
			s.push(id, r.Self)
			s.in.m.Inc(obs.Rewakes)
			if s.in.tr != nil {
				s.in.emit(obs.Event{Type: obs.EvWake, Query: r.Self.ID, Proc: q.Q.Proc, Worker: id, VTime: s.clock.vtime})
			}
		}
	}
	s.sample(vtimeBefore, r.Cost, newQ)
}

// wake makes target Ready and enqueues it (or arms its rewake flag when
// it is inside PUNCH right now) after a summary that may answer it
// landed. Called with mu held.
func (s *asyncState) wake(id int, target query.ID) {
	p := s.tree.Get(target)
	if p == nil {
		return
	}
	if s.running[target] {
		// The target is inside PUNCH right now; poke it to re-run if it
		// comes back Blocked.
		s.rewake[target] = true
		return
	}
	if p.State == query.Blocked {
		s.tree.SetState(p.ID, query.Ready)
		s.push(id, p)
		s.in.m.Inc(obs.Wakes)
		if s.in.tr != nil {
			s.in.emit(obs.Event{Type: obs.EvWake, Query: p.ID, Proc: p.Q.Proc, Worker: id, VTime: s.clock.vtime})
		}
	}
}

// tryCoalesce attempts to answer child c of parent with the live
// in-flight twin instead of adding a duplicate subtree. Reports whether
// c was coalesced. Called with mu held; the twin's State may only be
// read when the twin is not inside PUNCH (running queries mutate State
// in place outside the lock).
func (s *asyncState) tryCoalesce(id int, parent, c *query.Query, twinID query.ID, wakeSelf *bool) bool {
	twin := s.tree.Get(twinID)
	if twin == nil {
		return false
	}
	if !s.running[twinID] && twin.State == query.Done {
		// The twin's summary is already in SUMDB: drop the duplicate and
		// re-run the parent immediately if it comes back Blocked.
		*wakeSelf = true
		s.hitCoalesce(id, parent, c, twinID)
		return true
	}
	if query.WouldCycle([]*query.Tree{s.tree}, twinID, parent.ID) {
		return false
	}
	s.tree.AddWaiter(twinID, parent.ID)
	s.hitCoalesce(id, parent, c, twinID)
	return true
}

func (s *asyncState) hitCoalesce(id int, parent, c *query.Query, twinID query.ID) {
	s.res.CoalesceHits++
	s.in.m.Inc(obs.CoalesceHits)
	s.rec.Coalesce(parent.ID, parent.Q.Proc, c.Q.Proc)
	if s.in.tr != nil {
		s.in.emit(obs.Event{Type: obs.EvCoalesce, Query: c.ID, Parent: parent.ID, Proc: c.Q.Proc, Worker: id, VTime: s.clock.vtime, N: int64(twinID)})
	}
}

// sample records one completion event in the instrumentation trace and
// folds its observations into the peak gauges — every reduce path
// (including the root-done and obsolete-result early returns, which used
// to skip the PeakReady update) ends in a sample, so no event's peak is
// lost. Called with mu held.
func (s *asyncState) sample(vtimeBefore, cost int64, newQ int) {
	s.res.Iterations = int(s.events)
	smp := IterSample{
		Iter:       int(s.events) - 1,
		VTime:      vtimeBefore,
		StageCost:  cost,
		Ready:      s.tree.ReadyCount(),
		Processed:  1,
		Live:       s.tree.Len(),
		DoneSoFar:  s.doneCount,
		NewQueries: newQ,
	}
	if smp.Ready > s.res.PeakReady {
		s.res.PeakReady = smp.Ready
	}
	if s.ls != nil {
		busy := int64(s.busy)
		s.ls.Tick(s.clock.vtime, s.events)
		s.ls.SetProgress(s.alloc.Count(), s.doneCount)
		s.ls.SetForest(int64(smp.Live), int64(smp.Ready), int64(smp.Live)-int64(smp.Ready)-busy, busy)
		s.ls.SetCoalescer(int64(s.tree.InflightSize()), int64(s.tree.WaiterEdgeCount()), s.res.CoalesceHits)
	}
	s.res.Trace = append(s.res.Trace, smp)
	if s.e.opts.OnIteration != nil {
		s.e.opts.OnIteration(smp)
	}
}
