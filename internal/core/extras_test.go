package core

import (
	"math/rand"
	"testing"

	"repro/internal/drivers"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/punch/may"
	"repro/internal/punch/maymust"
	"repro/internal/punch/must"
	"repro/internal/smt"
	"repro/internal/summary"
)

// TestEngineConfluence: sequential, parallel, LIFO and speculative
// configurations must agree on verdicts.
func TestEngineConfluence(t *testing.T) {
	cases := []struct {
		src  string
		want Verdict
	}{
		{`proc main { locals x; x = 2; assert(x > 1); }`, Safe},
		{`proc main { locals x; havoc x; assume(x > 3); assert(x > 4); }`, ErrorReachable},
		{`globals g;
		  proc main { g = 0; inc(); inc(); assert(g <= 2); }
		  proc inc { g = g + 1; }`, Safe},
		{`globals g;
		  proc main { g = 0; inc(); inc(); assert(g <= 1); }
		  proc inc { g = g + 1; }`, ErrorReachable},
	}
	configs := []Options{
		{MaxThreads: 1},
		{MaxThreads: 4},
		{MaxThreads: 16, Select: LIFO},
		{MaxThreads: 4, Speculate: true},
		{MaxThreads: 4, DisableGC: true},
	}
	for ci, c := range cases {
		prog := parser.MustParse(c.src)
		for oi, o := range configs {
			o.Punch = maymust.New()
			o.MaxIterations = 3000
			o.CheckContract = true
			res := New(prog, o).Run(AssertionQuestion(prog))
			if res.Verdict != c.want {
				t.Errorf("case %d config %d: verdict %v, want %v", ci, oi, res.Verdict, c.want)
			}
		}
	}
}

// TestNoSumDBAblation: without the summary database the engine cannot
// finish call-dependent queries (children's answers are never visible),
// but it must stay sound.
func TestNoSumDBAblation(t *testing.T) {
	prog := parser.MustParse(`
globals g;
proc main { g = 0; inc(); assert(g <= 1); }
proc inc { g = g + 1; }`)
	res := New(prog, Options{
		Punch:         maymust.New(),
		MaxThreads:    2,
		MaxIterations: 60,
		DisableSumDB:  true,
	}).Run(AssertionQuestion(prog))
	if res.Verdict == ErrorReachable {
		t.Fatalf("unsound verdict without SUMDB: %v", res.Verdict)
	}
	// Call-free queries still work without the database.
	prog2 := parser.MustParse(`proc main { locals x; x = 1; assert(x > 2); }`)
	res2 := New(prog2, Options{Punch: maymust.New(), MaxThreads: 1, MaxIterations: 200, DisableSumDB: true}).
		Run(AssertionQuestion(prog2))
	if res2.Verdict != ErrorReachable {
		t.Fatalf("call-free check without SUMDB: %v", res2.Verdict)
	}
}

// TestCrossAnalysisAgreement: on bug-finding, all three instantiations
// agree (must cannot prove safety, so Safe cases check may-must vs may on
// call-free programs only).
func TestCrossAnalysisAgreement(t *testing.T) {
	buggy := []string{
		`proc main { locals x; x = 3; assert(x < 3); }`,
		`proc main { locals x; havoc x; if (x > 10) { assert(x <= 10); } }`,
		`globals g; proc main { g = 1; dec(); assert(g >= 1); } proc dec { g = g - 1; }`,
	}
	for i, src := range buggy {
		prog := parser.MustParse(src)
		for name, p := range map[string]Options{
			"maymust": {Punch: maymust.New()},
			"may":     {Punch: may.New()},
			"must":    {Punch: must.New()},
		} {
			p.MaxThreads = 2
			p.MaxIterations = 2000
			p.CheckContract = true
			res := New(prog, p).Run(AssertionQuestion(prog))
			if res.Verdict != ErrorReachable {
				t.Errorf("buggy %d under %s: %v", i, name, res.Verdict)
			}
		}
	}
}

// TestVerdictsMatchConcreteOracle: property test against the interpreter
// on generated drivers — Safe verdicts must never be contradicted by a
// concrete failing run, and ErrorReachable verdicts must be witnessed by
// at least one concrete failure within a generous search.
func TestVerdictsMatchConcreteOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle comparison is not short")
	}
	checks := []struct {
		driver, prop string
		buggy        bool
	}{
		{"parport", "PnpIrpCompletion", false},
		{"parport", "IoAllocateFree", true},
		{"drv10", "NsRemoveLockMnRemove", false},
		{"drv12", "MarkPowerDown", true},
	}
	for _, c := range checks {
		prog := drivers.Generate(drivers.NamedCheck(c.driver, c.prop, c.buggy).Config)
		res := New(prog, Options{Punch: maymust.New(), MaxThreads: 8, MaxIterations: 40000}).
			Run(AssertionQuestion(prog))
		concreteFails := false
		for seed := int64(0); seed < 300 && !concreteFails; seed++ {
			r := interp.Run(prog, interp.Options{Rand: rand.New(rand.NewSource(seed)), MaxSteps: 50000})
			concreteFails = r.Completed && r.Final[parser.ErrVar] != 0
		}
		switch res.Verdict {
		case Safe:
			if concreteFails {
				t.Errorf("%s/%s buggy=%v: Safe verdict contradicted concretely", c.driver, c.prop, c.buggy)
			}
		case ErrorReachable:
			if !concreteFails {
				t.Errorf("%s/%s buggy=%v: ErrorReachable not witnessed in 300 runs", c.driver, c.prop, c.buggy)
			}
		default:
			t.Errorf("%s/%s buggy=%v: inconclusive (%v)", c.driver, c.prop, c.buggy, res.Verdict)
		}
	}
}

// TestMakespan validates the virtual-clock scheduling arithmetic.
func TestMakespan(t *testing.T) {
	cases := []struct {
		costs []int64
		n     int
		want  int64
	}{
		{[]int64{5, 3, 2}, 1, 10},
		{[]int64{5, 3, 2}, 3, 5},
		{[]int64{5, 3, 2}, 8, 5},
		{[]int64{4, 4, 4, 4}, 2, 8},
		{[]int64{9, 1, 1, 1}, 2, 9},
		{nil, 4, 0},
	}
	for _, c := range cases {
		if got := makespan(c.costs, c.n); got != c.want {
			t.Errorf("makespan(%v, %d) = %d, want %d", c.costs, c.n, got, c.want)
		}
	}
}

// TestSequentialDeterminism: identical runs must produce identical
// virtual time and query counts.
func TestSequentialDeterminism(t *testing.T) {
	prog := drivers.Generate(drivers.NamedCheck("parport", "PnpIrpCompletion", false).Config)
	run := func() Result {
		return New(prog, Options{Punch: maymust.New(), MaxThreads: 1, MaxIterations: 40000}).
			Run(AssertionQuestion(prog))
	}
	a, b := run(), run()
	if a.VirtualTicks != b.VirtualTicks || a.TotalQueries != b.TotalQueries || a.Verdict != b.Verdict {
		t.Fatalf("nondeterministic sequential run: %+v vs %+v", a, b)
	}
}

// TestSummariesSoundAgainstOracle: every not-may summary produced during
// verification claims certain exit states unreachable; random concrete
// executions from sampled pre-states must never contradict it. Every must
// summary's pre/post must be concretely consistent for its witnessed
// point: some run from the pre-point reaches an exit in the post.
func TestSummariesSoundAgainstOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle comparison is not short")
	}
	srcs := []string{
		`globals g;
		 proc main { g = 0; inc(); inc(); assert(g <= 2); }
		 proc inc { g = g + 1; }`,
		`globals lk;
		 proc main { lk = 0; acq(); rel(); assert(lk == 0); }
		 proc acq { if (lk == 0) { lk = 1; } }
		 proc rel { if (lk == 1) { lk = 0; } }`,
	}
	solver := smt.New()
	for _, src := range srcs {
		prog := parser.MustParse(src)
		res := New(prog, Options{Punch: maymust.New(), MaxThreads: 4, MaxIterations: 4000}).
			Run(AssertionQuestion(prog))
		if res.Verdict != Safe {
			t.Fatalf("expected Safe, got %v", res.Verdict)
		}
		if len(res.Summaries) == 0 {
			t.Fatal("no summaries recorded")
		}
		for _, s := range res.Summaries {
			m := solver.Model(s.Pre)
			if m == nil {
				continue
			}
			start := interp.State{}
			for _, g := range prog.Globals {
				start[g] = m[g]
			}
			switch s.Kind {
			case summary.NotMay:
				for seed := int64(0); seed < 40; seed++ {
					r := interp.RunProc(prog, s.Proc, start, interp.Options{Rand: rand.New(rand.NewSource(seed)), MaxSteps: 20000})
					if !r.Completed {
						continue
					}
					final := map[lang.Var]int64{}
					for _, g := range prog.Globals {
						final[g] = r.Final[g]
					}
					if logic.Eval(s.Post, final) {
						t.Fatalf("not-may summary %v contradicted by concrete run (exit %v)", s, final)
					}
				}
			case summary.Must:
				witnessed := false
				for seed := int64(0); seed < 300 && !witnessed; seed++ {
					r := interp.RunProc(prog, s.Proc, start, interp.Options{Rand: rand.New(rand.NewSource(seed)), MaxSteps: 20000})
					if !r.Completed {
						continue
					}
					final := map[lang.Var]int64{}
					for _, g := range prog.Globals {
						final[g] = r.Final[g]
					}
					witnessed = logic.Eval(s.Post, final)
				}
				if !witnessed {
					t.Errorf("must summary %v never witnessed concretely", s)
				}
			}
		}
	}
}

// TestFrameRuleOnSummaries: summaries for a callee must not mention
// globals the callee neither touches nor the question constrains — the
// mod/ref frame rule that keeps summaries reusable across calling
// contexts.
func TestFrameRuleOnSummaries(t *testing.T) {
	prog := parser.MustParse(`
globals a, b, unrelated;
proc main {
  unrelated = 77;
  a = 1;
  bump();
  assert(a <= 2);
}
proc bump { a = a + 1; b = a; }`)
	res := New(prog, Options{Punch: maymust.New(), MaxThreads: 2, MaxIterations: 4000}).
		Run(AssertionQuestion(prog))
	if res.Verdict != Safe {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	found := false
	for _, s := range res.Summaries {
		if s.Proc != "bump" {
			continue
		}
		found = true
		for _, v := range logic.FreeVars(s.Pre) {
			if v == "unrelated" {
				t.Errorf("summary pre pins the unrelated global: %v", s)
			}
		}
		for _, v := range logic.FreeVars(s.Post) {
			if v == "unrelated" {
				t.Errorf("summary post pins the unrelated global: %v", s)
			}
		}
	}
	if !found {
		t.Fatal("no summaries for bump recorded")
	}
}

// TestOnIterationHook: the per-iteration observer receives the same
// samples the result trace records.
func TestOnIterationHook(t *testing.T) {
	prog := parser.MustParse(`globals g;
proc main { g = 0; inc(); assert(g <= 1); }
proc inc { g = g + 1; }`)
	var seen []IterSample
	res := New(prog, Options{
		Punch:         maymust.New(),
		MaxThreads:    2,
		MaxIterations: 2000,
		OnIteration:   func(s IterSample) { seen = append(seen, s) },
	}).Run(AssertionQuestion(prog))
	if res.Verdict != Safe {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if len(seen) != len(res.Trace) {
		t.Fatalf("hook saw %d samples, trace has %d", len(seen), len(res.Trace))
	}
	for i := range seen {
		if seen[i] != res.Trace[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}
