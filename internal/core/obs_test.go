package core

import (
	"testing"

	"repro/internal/drivers"
	"repro/internal/obs"
	"repro/internal/punch/maymust"
	"repro/internal/query"
)

// TestAsyncTraceOrdering runs the streaming engine at 32 workers with a
// recording tracer and asserts the stream's ordering invariants. The
// async scheduler emits every event while holding its mutex, so the
// recorded order is the total order of scheduler decisions:
//
//   - virtual time is monotone over the whole stream,
//   - a punch-end never precedes its punch-start (per worker track the
//     two strictly alternate),
//   - a query is GC'd only after it is Done,
//   - every non-root punched query was spawned first.
//
// Run under -race by `make race` along with the rest of this package.
func TestAsyncTraceOrdering(t *testing.T) {
	prog := drivers.Generate(drivers.NamedCheck("toastmon", "PnpIrpCompletion", false).Config)
	rec := &obs.Recording{}
	m := obs.NewMetrics()
	res := New(prog, Options{
		Punch:         maymust.New(),
		MaxThreads:    32,
		MaxIterations: 1 << 19,
		Async:         true,
		Tracer:        rec,
		Metrics:       m,
	}).Run(AssertionQuestion(prog))
	if res.Verdict == Unknown {
		t.Fatalf("verdict Unknown (stop %v)", res.StopReason)
	}
	evs := rec.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}

	var lastVT int64
	spawned := map[query.ID]bool{}
	done := map[query.ID]bool{}
	inPunch := map[int]query.ID{} // worker -> open punch query
	starts, ends := 0, 0
	for i, ev := range evs {
		if ev.VTime < lastVT {
			t.Fatalf("event %d (%v): virtual time went backwards (%d < %d)", i, ev.Type, ev.VTime, lastVT)
		}
		lastVT = ev.VTime
		switch ev.Type {
		case obs.EvSpawn:
			spawned[ev.Query] = true
		case obs.EvPunchStart:
			starts++
			if !spawned[ev.Query] {
				t.Fatalf("event %d: punch-start for query %d before its spawn", i, ev.Query)
			}
			if open, ok := inPunch[ev.Worker]; ok {
				t.Fatalf("event %d: worker %d started query %d with query %d still open", i, ev.Worker, ev.Query, open)
			}
			inPunch[ev.Worker] = ev.Query
		case obs.EvPunchEnd:
			ends++
			open, ok := inPunch[ev.Worker]
			if !ok {
				t.Fatalf("event %d: punch-end on worker %d with no punch-start", i, ev.Worker)
			}
			if open != ev.Query {
				t.Fatalf("event %d: worker %d ended query %d but %d is open", i, ev.Worker, ev.Query, open)
			}
			delete(inPunch, ev.Worker)
		case obs.EvDone:
			done[ev.Query] = true
		case obs.EvGC:
			if !done[ev.Query] {
				t.Fatalf("event %d: GC of query %d before it was done", i, ev.Query)
			}
		}
	}
	if starts == 0 {
		t.Fatal("no punch spans recorded")
	}
	// The run is cancelled when the root answers, so in-flight punches at
	// that instant legitimately never emit an end; starts can only exceed
	// ends by queries still open at halt.
	if ends > starts {
		t.Errorf("punch ends %d > starts %d", ends, starts)
	}

	snap := res.Metrics
	if snap == nil {
		t.Fatal("metrics snapshot missing")
	}
	if got := snap.Counters["queries_done"]; got != res.DoneQueries {
		t.Errorf("queries_done = %d, want %d", got, res.DoneQueries)
	}
	if snap.Counters["punch_invocations"] < int64(ends) {
		t.Errorf("punch_invocations = %d < punch-end events %d",
			snap.Counters["punch_invocations"], ends)
	}
	if snap.MakespanTicks != res.VirtualTicks {
		t.Errorf("makespan_ticks = %d, want %d", snap.MakespanTicks, res.VirtualTicks)
	}
	if len(snap.Workers) != 32 {
		t.Errorf("worker cells = %d, want 32", len(snap.Workers))
	}
}

// TestBarrierMetricsGossipFree: the single-machine engines must leave the
// cluster counters untouched, and the snapshot must fold in sumdb_*.
func TestBarrierMetricsGossipFree(t *testing.T) {
	prog := drivers.Generate(drivers.NamedCheck("toastmon", "PendedCompletedRequest", false).Config)
	m := obs.NewMetrics()
	res := New(prog, Options{
		Punch:         maymust.New(),
		MaxThreads:    8,
		MaxIterations: 1 << 19,
		Metrics:       m,
	}).Run(AssertionQuestion(prog))
	snap := res.Metrics
	if snap == nil {
		t.Fatal("metrics snapshot missing")
	}
	for _, k := range []string{"gossip_rounds", "gossip_deliveries", "gossip_bytes", "node_kills", "steals_attempted"} {
		if snap.Counters[k] != 0 {
			t.Errorf("%s = %d on the barrier engine, want 0", k, snap.Counters[k])
		}
	}
	if sp := snap.Counters["queries_spawned"]; sp < 1 || sp > res.TotalQueries {
		t.Errorf("queries_spawned = %d, want in [1, %d]", sp, res.TotalQueries)
	}
	if _, ok := snap.Counters["sumdb_added"]; !ok {
		t.Error("snapshot missing sumdb_added")
	}
}

// TestDistributedMetrics: the cluster run populates gossip accounting
// and aggregates summary-database traffic across nodes.
func TestDistributedMetrics(t *testing.T) {
	prog := drivers.Generate(drivers.NamedCheck("toastmon", "PendedCompletedRequest", false).Config)
	m := obs.NewMetrics()
	res := NewDistributed(prog, DistOptions{
		Punch:          maymust.New(),
		Nodes:          3,
		ThreadsPerNode: 4,
		Metrics:        m,
		Faults:         &Faults{KillNode: 2, KillRound: 2},
	}).Run(AssertionQuestion(prog))
	snap := res.Metrics
	if snap == nil {
		t.Fatal("metrics snapshot missing")
	}
	if res.SyncExchanges > 0 && snap.Counters["gossip_rounds"] != int64(res.SyncExchanges) {
		t.Errorf("gossip_rounds = %d, want %d", snap.Counters["gossip_rounds"], res.SyncExchanges)
	}
	if len(res.KilledNodes) == 1 && snap.Counters["node_kills"] != 1 {
		t.Errorf("node_kills = %d, want 1", snap.Counters["node_kills"])
	}
	if snap.Counters["gossip_deliveries"] > 0 && snap.Counters["gossip_bytes"] == 0 {
		t.Error("gossip deliveries counted but no bytes")
	}
	if snap.MakespanTicks != res.VirtualTicks {
		t.Errorf("makespan_ticks = %d, want %d", snap.MakespanTicks, res.VirtualTicks)
	}
}
