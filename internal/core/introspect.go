// Live-introspection wiring shared by the three engines: each run that
// was handed an obs.Probe builds an obs.LiveState, publishes its gauges
// at the engine's existing safe points (the streaming engine under its
// scheduler mutex, the barrier and distributed engines at stage/round
// boundaries), and attaches a snapshot function that layers the
// concurrent-safe SUMDB and solver counters on top of the atomics. A
// nil probe costs each publish site one branch, like the tracer and
// metrics hooks.
package core

import (
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/smt"
	"repro/internal/summary"
)

// attachProbe registers the single-database engines' snapshot function:
// the LiveState atomics plus live SUMDB shard occupancy and solver
// counters. db.StatsSnapshot and solver.StatsSnapshot are safe to call
// concurrently with a running analysis, so the closure may fire from
// any goroutine at any time.
func attachProbe(p *obs.Probe, ls *obs.LiveState, db *summary.DB, solver *smt.Solver) {
	p.Attach(func() *obs.StateSnapshot {
		s := ls.Snapshot()
		s.SumDB = sumdbState(db.StatsSnapshot())
		s.Solver = solverState(solver.StatsSnapshot())
		return s
	})
}

// attachDistProbe is attachProbe for the distributed simulation: the
// SUMDB view aggregates every node's database (so summary counts
// include gossip replicas).
func attachDistProbe(p *obs.Probe, ls *obs.LiveState, nodes []*distNode, solver *smt.Solver) {
	p.Attach(func() *obs.StateSnapshot {
		s := ls.Snapshot()
		s.SumDB = sumdbState(aggregateStats(nodes))
		s.Solver = solverState(solver.StatsSnapshot())
		return s
	})
}

// sumdbState converts a summary.Stats snapshot into the obs view. The
// total is derived from the per-shard breakdown so no extra database
// traversal happens on the sampling path.
func sumdbState(st summary.Stats) *obs.SumDBState {
	out := &obs.SumDBState{
		YesHits:  st.YesHits,
		NoHits:   st.NoHits,
		Misses:   st.Misses,
		MemoHits: st.MemoHits,
	}
	for _, sh := range st.PerShard {
		out.Summaries += int64(sh.Summaries)
		out.Shards = append(out.Shards, obs.ShardState{
			Shard:     sh.Shard,
			Procs:     sh.Procs,
			Summaries: sh.Summaries,
			Hits:      sh.YesHits + sh.NoHits,
			Misses:    sh.Misses,
		})
	}
	return out
}

// solverState converts an smt.Stats snapshot into the obs view.
func solverState(sv smt.Stats) *obs.SolverState {
	return &obs.SolverState{
		SatCalls:          sv.SatCalls,
		TheoryChecks:      sv.TheoryChecks,
		DPLLConflicts:     sv.DPLLConflicts,
		LearnedClauses:    sv.LearnedClauses,
		Propagations:      sv.Propagations,
		EntailCacheHits:   sv.EntailCacheHits,
		EntailCacheMisses: sv.EntailCacheMisses,
		EntailSynHits:     sv.EntailSynHits,
		HashConsHits:      sv.HashConsHits,
	}
}

// publishForest pushes one tree's occupancy, the progress counters and
// the coalescer gauges — the shared shape of the barrier engine's
// per-iteration publish and the streaming engine's per-event publish.
// running is the number of queries inside PUNCH right now (0 for the
// barrier engine, which publishes between stages). Callers hold
// whatever lock guards the tree.
func publishForest(ls *obs.LiveState, tree *query.Tree, alloc *query.Allocator, vtime, iterations, done, coalesceHits, running int64) {
	if ls == nil {
		return
	}
	live := int64(tree.Len())
	ready := int64(tree.ReadyCount())
	ls.Tick(vtime, iterations)
	ls.SetProgress(alloc.Count(), done)
	ls.SetForest(live, ready, live-ready-running, running)
	ls.SetCoalescer(int64(tree.InflightSize()), int64(tree.WaiterEdgeCount()), coalesceHits)
}

// publishDist pushes the cluster-wide gauges at a round boundary:
// per-node occupancy plus the aggregate forest/coalescer view.
func publishDist(ls *obs.LiveState, nodes []*distNode, alloc *query.Allocator, vtime, rounds, done, coalesceHits int64) {
	if ls == nil {
		return
	}
	var live, ready, inflight, edges int64
	for ni, n := range nodes {
		nl := int64(n.tree.Len())
		nr := int64(n.tree.ReadyCount())
		ls.NodeSet(ni, nl, nr, nl-nr, int64(n.db.Count()))
		live += nl
		ready += nr
		inflight += int64(n.tree.InflightSize())
		edges += int64(n.tree.WaiterEdgeCount())
	}
	ls.Tick(vtime, rounds)
	ls.SetProgress(alloc.Count(), done)
	ls.SetForest(live, ready, live-ready, 0)
	ls.SetCoalescer(inflight, edges, coalesceHits)
}
