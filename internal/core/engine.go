// Package core implements BOLT (Fig. 4 of the paper): the parallel
// top-down verification framework. The engine iterates a MAP stage — which
// applies the PUNCH parameter to Ready queries in parallel, bounded by the
// thread throttle — and a REDUCE stage — which reactivates Blocked parents
// of Done queries and garbage-collects Done subtrees — until the root
// verification question is answered by a summary in SUMDB.
//
// Besides real wall-clock execution with goroutines, the engine maintains
// a deterministic virtual clock: each PUNCH invocation reports its
// abstract cost, and a MAP stage advances virtual time by the makespan of
// its batch (the maximum cost, since the batch size never exceeds the
// thread count). On this repository's single-core test hardware the
// virtual clock is what reproduces the paper's speedup tables; the real
// engine exercises true concurrency for correctness.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cfg"
	"repro/internal/obs"
	"repro/internal/prov"
	"repro/internal/punch"
	"repro/internal/query"
	"repro/internal/smt"
	"repro/internal/store"
	"repro/internal/summary"
	"repro/internal/wire"
)

// Verdict is the outcome of a verification run.
type Verdict int

// Verdicts.
const (
	// Unknown: resource limits hit, or the analysis got stuck.
	Unknown Verdict = iota
	// Safe: a not-may summary answers the root question — the error
	// states are unreachable.
	Safe
	// ErrorReachable: a must summary answers the root question — some
	// execution reaches the error states.
	ErrorReachable
)

func (v Verdict) String() string {
	switch v {
	case Safe:
		return "Program is Safe"
	case ErrorReachable:
		return "Error Reachable"
	case Unknown:
		return "Unknown (resources exhausted)"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// SelectPolicy orders the Ready queries the MAP stage picks from when the
// throttle is smaller than the Ready set.
type SelectPolicy int

// Selection policies.
const (
	// FIFO processes oldest queries first (the sequential demand-driven
	// order).
	FIFO SelectPolicy = iota
	// LIFO processes newest queries first (depth-first flavour).
	LIFO
)

// Options configure an engine run.
type Options struct {
	// Punch is the intraprocedural analysis parameter (required).
	Punch punch.Punch
	// MaxThreads is the paper's artificial throttle: the bound on queries
	// processed per MAP stage and on concurrently running PUNCH instances.
	// 1 is the sequential baseline. Default 1.
	MaxThreads int
	// VirtualCores is the number of simulated processor cores for the
	// virtual clock: a MAP stage advances virtual time by the greedy
	// list-scheduling makespan of its batch on this many machines (the
	// paper's test machine has 8). 0 means as many cores as threads.
	VirtualCores int
	// MaxVirtualTicks bounds accumulated virtual time (0 = unbounded).
	MaxVirtualTicks int64
	// RealTimeout bounds wall-clock time (0 = unbounded).
	RealTimeout time.Duration
	// MaxIterations bounds MAP/REDUCE iterations (0 = 1 << 20).
	MaxIterations int
	// DisableGC turns off the REDUCE stage's removal of Done subtrees
	// (ablation).
	DisableGC bool
	// DisableSumDB makes the summary database store and answer nothing
	// (ablation). Note PUNCH then never terminates queries via reuse.
	DisableSumDB bool
	// DisableCoalesce turns off in-flight query coalescing (ablation):
	// every spawned child grows its own subtree even when a live query is
	// already computing the same canonical question. Coalescing is on by
	// default; disabling it restores the exact pre-coalescing behavior
	// with no key computation on the spawn path.
	DisableCoalesce bool
	// DisableEntailmentCache turns off the solver's sharded Implies/Valid
	// memo and its syntactic subsumption pre-check (ablation). The cache
	// is on by default.
	DisableEntailmentCache bool
	// Store, when non-nil, is the persistent summary store the run
	// warm-starts from: its contents are loaded into SUMDB before the
	// first MAP stage, and every summary SUMDB holds at run end is
	// persisted back (deduplicated by canonical wire key). Summaries are
	// sound facts about the program, so a warm run's verdict matches the
	// cold run's — it just gets there with less work. Ignored when
	// DisableSumDB is set; store failures land in Result.StoreErr.
	Store store.Store
	// Select orders Ready queries for the MAP stage.
	Select SelectPolicy
	// CheckContract validates the §3.2 PUNCH postcondition on every
	// invocation (used by the test suite).
	CheckContract bool
	// Speculate enables the §7 speculative extension: when a MAP stage has
	// spare thread slots, Blocked queries are also scheduled so they can
	// re-examine SUMDB and fan out further work early. (Barrier engine
	// only; the streaming engine keeps workers saturated by design.)
	Speculate bool
	// Async selects the streaming work-stealing engine (async.go): a
	// persistent pool of MaxThreads workers pulls Ready queries from
	// work-stealing deques and REDUCE happens incrementally per Done
	// result, so a finished query immediately wakes its Blocked parent
	// without waiting for the rest of a batch. Verdict semantics are
	// identical to the barrier engine; scheduling (and hence trace
	// shapes) is nondeterministic.
	Async bool
	// OnIteration, when set, observes per-iteration samples. Under Async
	// each sample is one PUNCH completion event rather than one
	// MAP/REDUCE batch.
	OnIteration func(IterSample)
	// Tracer, when non-nil, receives the run's query-lifecycle event
	// stream (see internal/obs). A nil tracer costs one branch per
	// would-be event.
	Tracer obs.Tracer
	// Metrics, when non-nil, is the registry the run's counters and
	// histograms accumulate into; a snapshot lands in Result.Metrics.
	// A nil registry costs one branch per would-be update.
	Metrics *obs.Metrics
	// PprofLabels wraps every PUNCH invocation in runtime/pprof labels
	// (engine, proc, query-depth) for CPU-profile attribution.
	PprofLabels bool
	// Probe, when non-nil, receives a live-state snapshot function for
	// the run's duration: per-worker state, forest occupancy, coalescer
	// and SUMDB/solver gauges, sampled concurrently by the debug HTTP
	// endpoints and the stall watchdog. A nil probe costs one branch per
	// publish site.
	Probe *obs.Probe
	// CollectProvenance records each query's summary read/write sets and
	// the run's procedure dependency DAG into Result.Provenance (see
	// internal/prov). Off by default; when off the engines pay one nil
	// check per PUNCH invocation. With a Store attached, the verdict's
	// read set is also persisted beside the summaries.
	CollectProvenance bool
	// Incremental turns the warm start into an incremental re-check:
	// before hydration the program is diffed against the store's
	// persisted manifest, the edit's invalidation cone is discarded from
	// the store, and — when the root lies outside the cone — the
	// persisted verdict is reused without running (StopVerdictReused).
	// Implies CollectProvenance (the run's dependency graph must be
	// persisted for the next re-check). No effect without a Store.
	Incremental bool
}

// IterSample is one MAP/REDUCE iteration's instrumentation record; the
// series reproduces Figs. 3 and 7.
type IterSample struct {
	Iter       int
	VTime      int64 // virtual clock before the stage
	StageCost  int64 // makespan charged by this stage
	Ready      int   // Ready queries before selection
	Processed  int   // queries handed to PUNCH this stage
	Live       int   // live queries after REDUCE
	DoneSoFar  int64 // cumulative Done queries
	NewQueries int   // children created this stage
}

// Result reports a verification run.
type Result struct {
	Verdict     Verdict
	RootOutcome query.Outcome
	// StopReason records why the run terminated; the legacy TimedOut and
	// Deadlocked flags below are derived from it (see Result.setStop).
	StopReason   StopReason
	Iterations   int
	TotalQueries int64 // queries ever created
	PeakReady    int
	PeakLive     int
	DoneQueries  int64
	VirtualTicks int64
	WallTime     time.Duration
	TimedOut     bool
	Deadlocked   bool
	// Steals and IdleWaits instrument the streaming engine's scheduler:
	// how many queries were stolen from another worker's deque, and how
	// many times a worker found no runnable work and had to park. Both
	// are zero for the barrier engine.
	Steals    int64
	IdleWaits int64
	// CoalesceHits counts spawned children answered by a live in-flight
	// twin instead of growing a duplicate subtree (zero when coalescing
	// is disabled).
	CoalesceHits int64
	Trace        []IterSample
	SumDB        summary.Stats
	Solver       smt.Stats
	// CostByProc aggregates PUNCH cost per analyzed procedure, a profile
	// of where virtual time is spent.
	CostByProc map[string]int64
	// Metrics is the observability snapshot (nil unless Options.Metrics
	// was set): counters, punch histograms, per-worker accounting, and
	// sumdb_* traffic including the per-shard breakdown.
	Metrics *obs.Snapshot
	// Summaries is the final content of SUMDB.
	Summaries []summary.Summary
	// WarmSummaries is the number of summaries loaded from Options.Store
	// before the run (0 on a cold start); PersistedSummaries the number
	// of new summaries written back to it; StoreErr the first store
	// failure, if any (the run itself proceeds — a broken store degrades
	// to a cold run, never a wrong verdict).
	WarmSummaries      int
	PersistedSummaries int
	StoreErr           error
	// Provenance is the verdict's dependency record (nil unless
	// Options.CollectProvenance was set): the procedure cone, the
	// summaries read and written, and warm-vs-fresh attribution.
	Provenance *prov.Provenance
	// EditedProcs, InvalidatedSummaries and SurvivingSummaries report an
	// incremental re-check (Options.Incremental): the procedures whose
	// content changed since the store's manifest, the summaries the edit
	// cone discarded, and the summaries that survived invalidation.
	// ReusedVerdict marks a re-check answered entirely from the store —
	// the edit could not affect the root question, so the persisted
	// verdict was returned without running (StopVerdictReused).
	EditedProcs          []string
	InvalidatedSummaries int
	SurvivingSummaries   int
	ReusedVerdict        bool
}

// setStop records the termination reason exactly once and keeps the
// legacy flag fields consistent with it.
func (r *Result) setStop(reason StopReason) {
	if r.StopReason != StopNone {
		return
	}
	r.StopReason = reason
	r.TimedOut = reason.Exhausted()
	r.Deadlocked = reason == StopDeadlocked
}

// Engine runs BOLT on one program.
type Engine struct {
	prog *cfg.Program
	opts Options
}

// New returns an engine; opts.Punch must be set.
func New(prog *cfg.Program, opts Options) *Engine {
	if opts.Punch == nil {
		panic("core: Options.Punch is required")
	}
	if opts.MaxThreads <= 0 {
		opts.MaxThreads = 1
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 1 << 20
	}
	if opts.Incremental {
		// A re-check must persist its dependency graph for the next one.
		opts.CollectProvenance = true
	}
	return &Engine{prog: prog, opts: opts}
}

// Run answers the verification question q0 (Fig. 4) with no external
// cancellation; see RunContext.
func (e *Engine) Run(q0 summary.Question) Result {
	return e.RunContext(context.Background(), q0)
}

// RunContext answers the verification question q0 (Fig. 4). With
// Options.Async it delegates to the streaming work-stealing engine;
// otherwise it runs the paper's bulk-synchronous MAP/REDUCE loop.
// Cancelling ctx stops the run with StopReason StopCancelled; since PUNCH
// invocations are not preemptible, cancellation is observed at stage
// boundaries (one PUNCH slice is bounded by the step budget, so the
// latency is small).
func (e *Engine) RunContext(ctx0 context.Context, q0 summary.Question) Result {
	if e.opts.Async {
		return e.runAsync(ctx0, q0)
	}
	start := time.Now()
	solver := smt.New()
	if !e.opts.DisableEntailmentCache {
		solver.EnableEntailmentCache()
	}
	var db *summary.DB
	if e.opts.DisableSumDB {
		db = summary.NewDisabled(solver)
	} else {
		db = summary.New(solver)
	}
	alloc := &query.Allocator{}
	ctx := &punch.Context{Prog: e.prog, DB: db, Alloc: alloc, ModRef: e.prog.ModRef()}
	tree := query.NewTree()
	coalesce := !e.opts.DisableCoalesce
	res := Result{Verdict: Unknown, CostByProc: map[string]int64{}}
	var rec *prov.Recorder
	if e.opts.CollectProvenance {
		rec = prov.NewRecorder(e.opts.Metrics)
	}
	var prep incrPrep
	if e.opts.Incremental && e.opts.Store != nil && !e.opts.DisableSumDB {
		prep = prepareIncr(e.prog, e.opts.Store, q0)
		applyIncrPrep(&res, prep)
		if prep.reuse {
			res.Verdict = prep.verdict
			res.ReusedVerdict = true
			res.setStop(StopVerdictReused)
			res.WallTime = time.Since(start)
			return res
		}
	}
	e.loadStore(db, rec, &res, prep.skipLoad, prep.skipAll)
	if e.opts.Incremental {
		res.SurvivingSummaries = res.WarmSummaries
	}
	if coalesce {
		tree.TrackInflight()
	}
	forest := []*query.Tree{tree}
	root := alloc.New(query.NoParent, q0)
	tree.Add(root)
	rec.Root(root.ID, root.Q.Proc)

	var vtime int64
	var doneCount int64

	in := newInstr(e.opts.Tracer, e.opts.Metrics, e.opts.MaxThreads, start, e.opts.PprofLabels)
	var ls *obs.LiveState
	if e.opts.Probe != nil {
		ls = obs.NewLiveState("barrier", e.opts.MaxThreads, 0, start)
		attachProbe(e.opts.Probe, ls, db, solver)
		defer e.opts.Probe.Detach()
		publishForest(ls, tree, alloc, 0, 0, 0, 0, 0)
	}
	// depth tracks each live query's distance from the root for the
	// query-depth pprof label and the live max-depth gauge; maintained
	// only when one of them is on.
	var depth map[query.ID]int
	if in.labels || ls != nil {
		depth = map[query.ID]int{root.ID: 0}
	}
	in.m.Inc(obs.QueriesSpawned)
	if in.tr != nil {
		in.emit(obs.Event{Type: obs.EvSpawn, Query: root.ID, Parent: query.NoParent, Proc: root.Q.Proc})
	}

	for iter := 0; iter < e.opts.MaxIterations; iter++ {
		if ctx0.Err() != nil {
			res.setStop(StopCancelled)
			break
		}
		if e.opts.RealTimeout > 0 && time.Since(start) > e.opts.RealTimeout {
			res.setStop(StopWallTimeout)
			break
		}
		if e.opts.MaxVirtualTicks > 0 && vtime >= e.opts.MaxVirtualTicks {
			res.setStop(StopTickBudget)
			break
		}
		ready := tree.InState(query.Ready)
		if len(ready) > res.PeakReady {
			res.PeakReady = len(ready)
		}
		if len(ready) == 0 {
			// Every live query is Blocked: no child can ever answer (the
			// query tree has no cycles), so the analysis is stuck.
			res.setStop(StopDeadlocked)
			break
		}
		if e.opts.Select == LIFO {
			for i, j := 0, len(ready)-1; i < j; i, j = i+1, j-1 {
				ready[i], ready[j] = ready[j], ready[i]
			}
		}
		sel := ready
		if len(sel) > e.opts.MaxThreads {
			sel = sel[:e.opts.MaxThreads]
		}
		if e.opts.Speculate && len(sel) < e.opts.MaxThreads {
			// §7 speculative extension: fill idle slots with Blocked
			// queries, temporarily waking them so PUNCH can recheck SUMDB
			// and fan out additional sub-queries ahead of demand.
			blocked := tree.InState(query.Blocked)
			for _, b := range blocked {
				if len(sel) >= e.opts.MaxThreads {
					break
				}
				tree.SetState(b.ID, query.Ready)
				sel = append(sel, b)
			}
		}

		// MAP: run PUNCH on the selected queries in parallel. The summary
		// database is the only shared state (§3.3). Worker slot i is the
		// event track; the depth map is read-only while the batch runs.
		results := make([]punch.Result, len(sel))
		var wg sync.WaitGroup
		for i := range sel {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				q := sel[i]
				ls.WorkerRunning(i, q.Q.Proc, int64(q.ID))
				if in.tr != nil {
					in.emit(obs.Event{Type: obs.EvPunchStart, Query: q.ID, Proc: q.Q.Proc, Worker: i, VTime: vtime})
				}
				var t0 time.Time
				if in.m != nil {
					t0 = time.Now()
				}
				pctx := ctx
				if rec != nil {
					ic := *ctx
					ic.DB = rec.Frame(db, q.ID, q.Q.Proc)
					pctx = &ic
				}
				if in.labels {
					obs.DoPunch(ctx0, "barrier", q.Q.Proc, depth[q.ID], func() {
						results[i] = e.opts.Punch.Step(pctx, q)
					})
				} else {
					results[i] = e.opts.Punch.Step(pctx, q)
				}
				if in.m != nil {
					in.m.ObservePunch(i, results[i].Cost, time.Since(t0))
				}
				if in.tr != nil {
					in.emit(obs.Event{Type: obs.EvPunchEnd, Query: q.ID, Proc: q.Q.Proc, Worker: i, VTime: vtime, Cost: results[i].Cost})
				}
				ls.WorkerFinished(i)
			}(i)
		}
		wg.Wait()

		// Virtual time: the stage advances the clock by the makespan of
		// its batch on the simulated cores.
		costs := make([]int64, len(results))
		newQueries := 0
		for i := range results {
			costs[i] = results[i].Cost
			newQueries += len(results[i].Children)
			res.CostByProc[sel[i].Q.Proc] += results[i].Cost
		}
		cores := e.opts.VirtualCores
		if cores <= 0 || cores > e.opts.MaxThreads {
			cores = e.opts.MaxThreads
		}
		stageCost := makespan(costs, cores)
		vtime += stageCost

		for i := range results {
			r := results[i]
			if e.opts.CheckContract {
				if err := punch.CheckContract(sel[i], r); err != nil {
					panic(err)
				}
			}
			tree.Replace(r.Self)
			for _, c := range r.Children {
				// Coalescing: a spawn matching a live in-flight query
				// registers the parent as a waiter on the twin instead of
				// growing a duplicate subtree; a spawn matching an
				// already-Done twin is answered by the summary that twin
				// has published, so the parent is woken immediately.
				if coalesce {
					if twinID, ok := tree.Inflight(c.Q.Key()); ok {
						if twin := tree.Get(twinID); twin != nil {
							if twin.State == query.Done {
								res.CoalesceHits++
								in.m.Inc(obs.CoalesceHits)
								rec.Coalesce(r.Self.ID, r.Self.Q.Proc, c.Q.Proc)
								if in.tr != nil {
									in.emit(obs.Event{Type: obs.EvCoalesce, Query: c.ID, Parent: r.Self.ID, Proc: c.Q.Proc, VTime: vtime, N: int64(twinID)})
								}
								if r.Self.State == query.Blocked {
									tree.SetState(r.Self.ID, query.Ready)
								}
								continue
							}
							if !query.WouldCycle(forest, twinID, r.Self.ID) {
								tree.AddWaiter(twinID, r.Self.ID)
								res.CoalesceHits++
								in.m.Inc(obs.CoalesceHits)
								rec.Coalesce(r.Self.ID, r.Self.Q.Proc, c.Q.Proc)
								if in.tr != nil {
									in.emit(obs.Event{Type: obs.EvCoalesce, Query: c.ID, Parent: r.Self.ID, Proc: c.Q.Proc, VTime: vtime, N: int64(twinID)})
								}
								continue
							}
						}
					}
				}
				tree.Add(c)
				in.m.Inc(obs.QueriesSpawned)
				rec.Spawn(r.Self.ID, r.Self.Q.Proc, c.ID, c.Q.Proc)
				if depth != nil {
					depth[c.ID] = depth[r.Self.ID] + 1
					ls.ObserveDepth(depth[c.ID])
				}
				if in.tr != nil {
					in.emit(obs.Event{Type: obs.EvSpawn, Query: c.ID, Parent: r.Self.ID, Proc: c.Q.Proc, VTime: vtime})
				}
			}
			switch r.Self.State {
			case query.Done:
				in.m.Inc(obs.QueriesDone)
				if in.tr != nil {
					in.emit(obs.Event{Type: obs.EvDone, Query: r.Self.ID, Proc: r.Self.Q.Proc, VTime: vtime})
				}
			case query.Blocked:
				in.m.Inc(obs.QueriesBlocked)
				if in.tr != nil {
					in.emit(obs.Event{Type: obs.EvBlock, Query: r.Self.ID, Proc: r.Self.Q.Proc, VTime: vtime})
				}
			case query.Ready:
				if in.tr != nil {
					in.emit(obs.Event{Type: obs.EvReady, Query: r.Self.ID, Proc: r.Self.Q.Proc, VTime: vtime})
				}
			}
		}

		// The true live peak is reached before REDUCE garbage-collects
		// Done subtrees, and every Done result of this batch counts —
		// including results that land in the same batch as the root's
		// completion, which the root-answered break below must not skip.
		if tree.Len() > res.PeakLive {
			res.PeakLive = tree.Len()
		}
		for i := range results {
			if results[i].Self.State == query.Done {
				doneCount++
			}
		}

		// Check the root before REDUCE removes Done subtrees.
		rootNow := tree.Get(root.ID)
		if rootNow != nil && rootNow.State == query.Done {
			res.RootOutcome = rootNow.Outcome
			switch rootNow.Outcome {
			case query.Reachable:
				res.Verdict = ErrorReachable
			case query.Unreachable:
				res.Verdict = Safe
			}
			res.setStop(StopRootAnswered)
			res.Iterations = iter + 1
			e.sample(&res, iter, vtime, stageCost, len(ready), len(sel), tree.Len(), doneCount, newQueries)
			publishForest(ls, tree, alloc, vtime, int64(iter+1), doneCount, res.CoalesceHits, 0)
			break
		}

		// REDUCE: wake Blocked parents of Done queries and garbage-collect
		// Done subtrees (§3.3).
		for i := range results {
			self := results[i].Self
			if self.State != query.Done {
				continue
			}
			if self.Parent != query.NoParent {
				if p := tree.Get(self.Parent); p != nil && p.State == query.Blocked {
					tree.SetState(p.ID, query.Ready)
					in.m.Inc(obs.Wakes)
					if in.tr != nil {
						in.emit(obs.Event{Type: obs.EvWake, Query: p.ID, Proc: p.Q.Proc, VTime: vtime})
					}
				}
			}
			// Fan the wake out to every coalesced waiter: the one summary
			// this query published answers them all. Clearing the edges
			// afterwards restores the GC condition.
			for _, w := range tree.Waiters(self.ID) {
				if p := tree.Get(w); p != nil && p.State == query.Blocked {
					tree.SetState(p.ID, query.Ready)
					in.m.Inc(obs.Wakes)
					if in.tr != nil {
						in.emit(obs.Event{Type: obs.EvWake, Query: p.ID, Proc: p.Q.Proc, VTime: vtime})
					}
				}
			}
			tree.ClearWaiters(self.ID)
			if !e.opts.DisableGC {
				removed := tree.RemoveSubtree(self.ID)
				in.m.Add(obs.QueriesGCd, int64(removed))
				if in.tr != nil {
					in.emit(obs.Event{Type: obs.EvGC, Query: self.ID, Proc: self.Q.Proc, VTime: vtime, N: int64(removed)})
				}
			}
		}
		if tree.Len() > res.PeakLive {
			res.PeakLive = tree.Len()
		}
		res.Iterations = iter + 1
		e.sample(&res, iter, vtime, stageCost, len(ready), len(sel), tree.Len(), doneCount, newQueries)
		publishForest(ls, tree, alloc, vtime, int64(iter+1), doneCount, res.CoalesceHits, 0)
	}

	// Falling out of the loop without a recorded reason means the
	// iteration budget ran dry.
	res.setStop(StopEventBudget)
	res.TotalQueries = alloc.Count()
	res.DoneQueries = doneCount
	res.VirtualTicks = vtime
	res.WallTime = time.Since(start)
	res.SumDB = db.StatsSnapshot()
	res.Solver = solver.StatsSnapshot()
	res.Summaries = db.All()
	e.persistStore(db, &res)
	e.finishProv(rec, &res, "barrier", q0)
	res.Metrics = in.finish(vtime, res.SumDB, res.Solver)
	return res
}

// loadStore warm-starts the run: every summary the store holds is a
// sound fact about this program (the store's fingerprint pinned the
// corpus), so seeding SUMDB with them lets PUNCH answer questions that
// a cold run would re-derive. A load failure degrades to a cold run.
// skip and skipAll implement incremental invalidation on stores without
// a Deleter: stale summaries are filtered out here instead of deleted,
// and counted as invalidated.
func (e *Engine) loadStore(db *summary.DB, rec *prov.Recorder, res *Result, skip map[string]bool, skipAll bool) {
	if e.opts.Store == nil || e.opts.DisableSumDB {
		return
	}
	sums, err := e.opts.Store.Load()
	if err != nil {
		res.StoreErr = err
		return
	}
	for _, s := range sums {
		if skipAll || skip[s.Proc] {
			res.InvalidatedSummaries++
			continue
		}
		db.Add(s)
		rec.MarkWarm(s)
		res.WarmSummaries++
	}
}

// finishProv freezes the recorder into the result, feeds the cone-size
// histogram, and persists the verdict's read set beside the summaries
// when the store supports provenance.
func (e *Engine) finishProv(rec *prov.Recorder, res *Result, engine string, q0 summary.Question) {
	if rec == nil {
		return
	}
	p := rec.Finish(res.Verdict.String())
	res.Provenance = p
	observeCones(e.opts.Metrics, p)
	if e.opts.Store == nil || e.opts.DisableSumDB {
		return
	}
	if err := persistProv(e.opts.Store, p, engine, q0); err != nil && res.StoreErr == nil {
		res.StoreErr = err
	}
}

// observeCones feeds each procedure's invalidation-cone size into the
// metrics histogram.
func observeCones(m *obs.Metrics, p *prov.Provenance) {
	if m == nil {
		return
	}
	for _, cs := range p.ConeSizes() {
		m.ObserveConeSize(int64(cs.Size))
	}
}

// persistProv writes a verdict's read set next to the summaries when
// the store supports provenance (a missing capability is not an error).
// The record carries the root question's durable key and the run's
// procedure dependency adjacency, which the next incremental re-check
// consumes for verdict reuse and invalidation planning.
func persistProv(st store.Store, p *prov.Provenance, engine string, q0 summary.Question) error {
	ps, ok := st.(store.ProvStore)
	if !ok {
		return nil
	}
	// An un-encodable question (scripted tests use nil-formula markers
	// that still encode; real failures are volatile keys) just loses the
	// reuse fast path, never the record.
	rootKey, _ := wire.QuestionKey(q0)
	wrec := wire.ProvRecord{Root: p.Root, Verdict: p.Verdict, Engine: engine, RootKey: rootKey, Deps: p.Deps}
	for _, r := range p.Reads() {
		if r.Summary.Pre == nil || r.Summary.Post == nil {
			// Scripted test summaries carry nil formulas and are not
			// durable; the persisted read set covers only real facts.
			continue
		}
		wrec.Reads = append(wrec.Reads, wire.ProvRead{Summary: r.Summary, Warm: r.Warm, Count: r.Count})
	}
	return ps.PutProv(wrec)
}

// persistStore writes the run's summaries back to the store. The store
// deduplicates by canonical wire key, so re-persisting loaded summaries
// is a no-op and PersistedSummaries counts only genuinely new facts.
func (e *Engine) persistStore(db *summary.DB, res *Result) {
	if e.opts.Store == nil || e.opts.DisableSumDB {
		return
	}
	var firstErr error
	for _, s := range db.All() {
		added, err := e.opts.Store.Put(s)
		if err != nil {
			firstErr = err
			break
		}
		if added {
			res.PersistedSummaries++
		}
	}
	if err := e.opts.Store.Flush(); err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil && res.StoreErr == nil {
		res.StoreErr = firstErr
	}
}

// makespan computes the greedy list-scheduling completion time of the
// given task costs on n identical machines (tasks assigned in order to
// the least-loaded machine). The machine loads live in a binary min-heap,
// so each assignment is O(log n) instead of the former O(n) scan; since
// the machines are identical, which min-loaded machine receives a task
// does not change the resulting load multiset, so the value is unchanged.
func makespan(costs []int64, n int) int64 {
	if n <= 0 {
		n = 1
	}
	if n > len(costs) {
		n = len(costs)
	}
	if n == 0 {
		return 0
	}
	load := make([]int64, n) // min-heap (all zeros is a valid heap)
	var out int64
	for _, c := range costs {
		l := load[0] + c
		load[0] = l
		siftDown(load, 0)
		if l > out {
			out = l
		}
	}
	return out
}

// siftDown restores the min-heap property of h after h[i] increased.
func siftDown(h []int64, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && h[l] < h[min] {
			min = l
		}
		if r < len(h) && h[r] < h[min] {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

func (e *Engine) sample(res *Result, iter int, vtime, stageCost int64, ready, processed, live int, done int64, newQ int) {
	s := IterSample{
		Iter:       iter,
		VTime:      vtime - stageCost,
		StageCost:  stageCost,
		Ready:      ready,
		Processed:  processed,
		Live:       live,
		DoneSoFar:  done,
		NewQueries: newQ,
	}
	res.Trace = append(res.Trace, s)
	if e.opts.OnIteration != nil {
		e.opts.OnIteration(s)
	}
}
