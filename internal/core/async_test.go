package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/parser"
	"repro/internal/punch/maymust"
)

func runAsyncSrc(t *testing.T, src string, threads int) Result {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(prog, Options{
		Punch:         maymust.New(),
		MaxThreads:    threads,
		MaxIterations: 3000,
		CheckContract: true,
		Async:         true,
	})
	return eng.Run(AssertionQuestion(prog))
}

func TestAsyncEngineBasics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want Verdict
	}{
		{"safe-straight", `proc main { locals x; x = 1; assert(x > 0); }`, Safe},
		{"buggy-straight", `proc main { locals x; x = 1; assert(x > 5); }`, ErrorReachable},
		{"safe-calls", `globals g;
			proc main { g = 5; bump(); assert(g >= 6); }
			proc bump { g = g + 1; }`, Safe},
		{"buggy-calls", `globals g;
			proc main { g = 5; bump(); assert(g >= 7); }
			proc bump { g = g + 1; }`, ErrorReachable},
		{"safe-diamond", `globals g, c;
			proc main { havoc c; g = 0; if (c > 0) { left(); } else { right(); } assert(g <= 3); }
			proc left { shared(); }
			proc right { shared(); g = g + 1; }
			proc shared { g = g + 2; }`, Safe},
		{"safe-nested", `globals a, b;
			proc main { a = 0; b = 0; level1(); assert(a + b <= 4); }
			proc level1 { a = a + 1; level2(); a = a + 1; }
			proc level2 { b = b + 1; level3(); }
			proc level3 { b = b + 1; }`, Safe},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, threads := range []int{1, 2, 8} {
				res := runAsyncSrc(t, c.src, threads)
				if res.Verdict != c.want {
					t.Errorf("threads=%d: verdict %v, want %v (%+v)", threads, res.Verdict, c.want, res)
				}
			}
		})
	}
}

// TestAsyncToyProgram runs the §2.1 toy under the streaming engine across
// thread counts.
func TestAsyncToyProgram(t *testing.T) {
	for _, threads := range []int{1, 4, 16} {
		res := runAsyncSrc(t, toySource(), threads)
		if res.Verdict != Safe {
			t.Fatalf("threads=%d: verdict = %v", threads, res.Verdict)
		}
	}
}

// TestCorpusAllEnginesConfluence asserts that the barrier engine, the
// streaming engine, the LIFO and speculative barrier variants, and the
// distributed simulation all return the expected verdict on every corpus
// program — the confluence obligation of §3.3 extended to every engine
// this repository ships.
func TestCorpusAllEnginesConfluence(t *testing.T) {
	files, err := filepath.Glob("../../testdata/corpus/*.bolt")
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus missing: %v (%d files)", err, len(files))
	}
	for _, f := range files {
		name := filepath.Base(f)
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := parser.Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			want := Unknown
			switch {
			case strings.HasPrefix(name, "safe_"):
				want = Safe
			case strings.HasPrefix(name, "bug_"):
				want = ErrorReachable
			default:
				t.Fatalf("corpus file %s has no verdict prefix", name)
			}
			configs := map[string]Options{
				"barrier":     {MaxThreads: 8},
				"async":       {MaxThreads: 8, Async: true},
				"lifo":        {MaxThreads: 8, Select: LIFO},
				"speculative": {MaxThreads: 8, Speculate: true},
			}
			for cname, o := range configs {
				o.Punch = maymust.New()
				o.MaxIterations = 60000
				o.CheckContract = true
				res := New(prog, o).Run(AssertionQuestion(prog))
				if res.Verdict != want {
					t.Errorf("%s: verdict %v, want %v", cname, res.Verdict, want)
				}
			}
			dres := NewDistributed(prog, DistOptions{
				Punch:          maymust.New(),
				Nodes:          3,
				ThreadsPerNode: 4,
				MaxRounds:      1 << 18,
			}).Run(AssertionQuestion(prog))
			if dres.Verdict != want {
				t.Errorf("distributed: verdict %v, want %v", dres.Verdict, want)
			}
		})
	}
}

// TestAsyncInstrumentation: the streaming engine must provide the same
// Result/IterSample instrumentation contract as the barrier engine —
// OnIteration observes exactly the trace, one sample per completion
// event, with a monotone done count and an advancing virtual clock.
func TestAsyncInstrumentation(t *testing.T) {
	prog := parser.MustParse(`globals g;
proc main { g = 0; inc(); assert(g <= 1); }
proc inc { g = g + 1; }`)
	var seen []IterSample
	res := New(prog, Options{
		Punch:         maymust.New(),
		MaxThreads:    4,
		MaxIterations: 2000,
		Async:         true,
		OnIteration:   func(s IterSample) { seen = append(seen, s) },
	}).Run(AssertionQuestion(prog))
	if res.Verdict != Safe {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace samples")
	}
	if len(seen) != len(res.Trace) {
		t.Fatalf("hook saw %d samples, trace has %d", len(seen), len(res.Trace))
	}
	for i := range seen {
		if seen[i] != res.Trace[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
	var lastDone int64 = -1
	for i, s := range res.Trace {
		if s.Processed != 1 {
			t.Errorf("sample %d: Processed = %d, want 1 per completion event", i, s.Processed)
		}
		if s.DoneSoFar < lastDone {
			t.Errorf("sample %d: DoneSoFar regressed %d -> %d", i, lastDone, s.DoneSoFar)
		}
		lastDone = s.DoneSoFar
	}
	if res.VirtualTicks <= 0 {
		t.Fatal("virtual clock did not advance")
	}
	if res.Iterations != len(res.Trace) {
		t.Fatalf("Iterations = %d, trace = %d", res.Iterations, len(res.Trace))
	}
	if res.PeakLive < 2 {
		t.Fatalf("PeakLive = %d, want >= 2 (root + child)", res.PeakLive)
	}
}

// TestAsyncTickBudget: exhausting the virtual-tick budget must yield
// Unknown + TimedOut, never a guessed verdict.
func TestAsyncTickBudget(t *testing.T) {
	prog := parser.MustParse(relationalToySource())
	res := New(prog, Options{
		Punch:           maymust.New(),
		MaxThreads:      4,
		MaxIterations:   1 << 19,
		MaxVirtualTicks: 50,
		Async:           true,
	}).Run(AssertionQuestion(prog))
	if res.Verdict == ErrorReachable {
		t.Fatalf("wrong verdict on budget exhaustion: %v", res.Verdict)
	}
	if res.Verdict == Unknown && !res.TimedOut {
		t.Fatalf("Unknown without TimedOut: %+v", res.Verdict)
	}
}

// TestAsyncEventBudget: the event budget (MaxIterations × MaxThreads)
// bounds the run like the barrier engine's iteration budget.
func TestAsyncEventBudget(t *testing.T) {
	prog := parser.MustParse(relationalToySource())
	res := New(prog, Options{
		Punch:         maymust.New(),
		MaxThreads:    2,
		MaxIterations: 3,
		Async:         true,
	}).Run(AssertionQuestion(prog))
	if res.Verdict == ErrorReachable {
		t.Fatalf("unsound verdict under tiny budget: %v", res.Verdict)
	}
	if res.Iterations > 3*2+2 {
		t.Fatalf("event budget not enforced: %d events", res.Iterations)
	}
}

// TestCoreClock validates the event-driven virtual clock against the
// batch makespan arithmetic it replaces: feeding the same costs one by
// one must yield the greedy list-scheduling makespan.
func TestCoreClock(t *testing.T) {
	cases := []struct {
		costs []int64
		cores int
		want  int64
	}{
		{[]int64{5, 3, 2}, 1, 10},
		{[]int64{4, 4, 4, 4}, 2, 8},
		{[]int64{9, 1, 1, 1}, 2, 9},
		{[]int64{1, 2, 3, 4, 5}, 3, 7}, // greedy list scheduling, not OPT
	}
	for _, c := range cases {
		clk := newCoreClock(c.cores)
		var got int64
		for _, cost := range c.costs {
			got = clk.assign(cost)
		}
		if got != c.want {
			t.Errorf("coreClock(%v, %d cores) = %d, want %d", c.costs, c.cores, got, c.want)
		}
		if got != makespan(c.costs, c.cores) {
			t.Errorf("coreClock disagrees with makespan on %v/%d", c.costs, c.cores)
		}
	}
}
