// Distributed BOLT (§7 "Future Work"): the paper observes that BOLT's
// MapReduce architecture permits a distributed implementation, and that
// the limiting factor for scaling is memory, not time — each PUNCH run
// only needs the procedure under analysis, so the query tree and summary
// database can be sharded across machines.
//
// This file implements that design as a deterministic simulation: a
// cluster of nodes, each with its own worker pool and its own summary
// database shard. Queries are routed to nodes by their procedure (so a
// procedure's summaries are owned by one node), and nodes gossip freshly
// added summaries with a configurable synchronization period, modelling
// network staleness. Virtual time advances by the per-round maximum over
// node-local makespans plus the sync latency. The simulation preserves
// BOLT's verdict semantics while exposing the quantities of interest for
// a distributed deployment: per-node live-query and summary-count peaks
// (the memory story) and the wall-clock effect of sync latency.
package core

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/cfg"
	"repro/internal/punch"
	"repro/internal/query"
	"repro/internal/smt"
	"repro/internal/summary"
)

// DistOptions configure a simulated cluster run.
type DistOptions struct {
	// Punch is the intraprocedural analysis (required).
	Punch punch.Punch
	// Nodes is the cluster size. Default 2.
	Nodes int
	// ThreadsPerNode is each node's MAP-stage throttle. Default 4.
	ThreadsPerNode int
	// CoresPerNode is each node's simulated core count. Default equals
	// ThreadsPerNode.
	CoresPerNode int
	// SyncEvery is how many rounds pass between summary gossip exchanges
	// (1 = every round). Larger values model higher network latency /
	// batching. Default 1.
	SyncEvery int
	// SyncCost is the virtual-time cost charged per gossip exchange.
	SyncCost int64
	// MaxRounds bounds the simulation. Default 1 << 18.
	MaxRounds int
	// RealTimeout bounds wall-clock time (0 = none).
	RealTimeout time.Duration
}

// DistResult reports a cluster run.
type DistResult struct {
	Verdict      Verdict
	Rounds       int
	TotalQueries int64
	VirtualTicks int64
	WallTime     time.Duration
	TimedOut     bool
	// PerNodePeakLive is each node's peak number of live queries — the
	// memory-sharding payoff the paper's discussion predicts.
	PerNodePeakLive []int
	// PerNodeSummaries is each node's final owned-summary count.
	PerNodeSummaries []int
	// SyncExchanges counts gossip rounds performed.
	SyncExchanges int
}

// distNode is one simulated machine.
type distNode struct {
	id    int
	db    *summary.DB
	tree  *query.Tree
	known map[string]bool // summary keys already received via gossip
}

// DistEngine runs BOLT sharded across simulated nodes.
type DistEngine struct {
	prog *cfg.Program
	opts DistOptions
}

// NewDistributed returns a distributed engine.
func NewDistributed(prog *cfg.Program, opts DistOptions) *DistEngine {
	if opts.Punch == nil {
		panic("core: DistOptions.Punch is required")
	}
	if opts.Nodes <= 0 {
		opts.Nodes = 2
	}
	if opts.ThreadsPerNode <= 0 {
		opts.ThreadsPerNode = 4
	}
	if opts.CoresPerNode <= 0 {
		opts.CoresPerNode = opts.ThreadsPerNode
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 1
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 1 << 18
	}
	return &DistEngine{prog: prog, opts: opts}
}

// nodeOf routes a procedure to its owning node.
func (e *DistEngine) nodeOf(proc string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(proc))
	return int(h.Sum32()) % e.opts.Nodes
}

// Run answers q0 on the simulated cluster.
func (e *DistEngine) Run(q0 summary.Question) DistResult {
	start := time.Now()
	solver := smt.New()
	alloc := &query.Allocator{}
	modref := e.prog.ModRef()

	nodes := make([]*distNode, e.opts.Nodes)
	for i := range nodes {
		nodes[i] = &distNode{
			id:    i,
			db:    summary.New(solver),
			tree:  query.NewTree(),
			known: map[string]bool{},
		}
	}
	root := alloc.New(query.NoParent, q0)
	rootNode := e.nodeOf(q0.Proc)
	nodes[rootNode].tree.Add(root)

	res := DistResult{
		Verdict:          Unknown,
		PerNodePeakLive:  make([]int, e.opts.Nodes),
		PerNodeSummaries: make([]int, e.opts.Nodes),
	}
	var vtime int64

	for round := 0; round < e.opts.MaxRounds; round++ {
		if e.opts.RealTimeout > 0 && time.Since(start) > e.opts.RealTimeout {
			res.TimedOut = true
			break
		}
		// Each node runs one MAP stage on its own shard, in parallel.
		type nodeOutcome struct {
			results []punch.Result
			sel     []*query.Query
			cost    int64
		}
		outcomes := make([]nodeOutcome, len(nodes))
		var wg sync.WaitGroup
		anyWork := false
		for ni, n := range nodes {
			ready := n.tree.InState(query.Ready)
			if len(ready) == 0 {
				continue
			}
			anyWork = true
			sel := ready
			if len(sel) > e.opts.ThreadsPerNode {
				sel = sel[:e.opts.ThreadsPerNode]
			}
			outcomes[ni].sel = sel
			outcomes[ni].results = make([]punch.Result, len(sel))
			ctx := &punch.Context{Prog: e.prog, DB: n.db, Alloc: alloc, ModRef: modref}
			for i := range sel {
				wg.Add(1)
				go func(ni, i int) {
					defer wg.Done()
					outcomes[ni].results[i] = e.opts.Punch.Step(ctx, outcomes[ni].sel[i])
				}(ni, i)
			}
		}
		wg.Wait()
		if !anyWork {
			// All nodes are blocked: answers may be stranded in remote
			// shards, so force a gossip exchange and wake blocked queries
			// to re-examine their databases. If nothing new flowed, the
			// cluster is genuinely deadlocked.
			res.SyncExchanges++
			vtime += e.opts.SyncCost
			if e.gossip(nodes) == 0 {
				break
			}
			for _, n := range nodes {
				for _, q := range n.tree.InState(query.Blocked) {
					n.tree.SetState(q.ID, query.Ready)
				}
			}
			res.Rounds = round + 1
			continue
		}

		// Per-node makespans; the round's virtual time is their maximum
		// (nodes genuinely run in parallel).
		var roundCost int64
		for ni := range outcomes {
			if outcomes[ni].sel == nil {
				continue
			}
			costs := make([]int64, len(outcomes[ni].results))
			for i, r := range outcomes[ni].results {
				costs[i] = r.Cost
			}
			c := makespan(costs, e.opts.CoresPerNode)
			if c > roundCost {
				roundCost = c
			}
		}
		vtime += roundCost

		// Merge results: children are routed to their owning node (a
		// remote dispatch in a real deployment).
		for ni, n := range nodes {
			if outcomes[ni].sel == nil {
				continue
			}
			for _, r := range outcomes[ni].results {
				n.tree.Replace(r.Self)
				for _, c := range r.Children {
					target := nodes[e.nodeOf(c.Q.Proc)]
					target.tree.Add(c)
				}
			}
		}

		// REDUCE per node: wake parents (which may live on another node)
		// and garbage-collect Done subtrees locally. A child's parent
		// lives where the parent's procedure is owned; scan all nodes.
		for ni, n := range nodes {
			if outcomes[ni].sel == nil {
				continue
			}
			for _, r := range outcomes[ni].results {
				self := r.Self
				if self.State != query.Done {
					continue
				}
				if self.Parent != query.NoParent {
					for _, other := range nodes {
						if p := other.tree.Get(self.Parent); p != nil {
							if p.State == query.Blocked {
								other.tree.SetState(p.ID, query.Ready)
							}
							break
						}
					}
				}
				n.tree.RemoveSubtree(self.ID)
			}
		}

		// Root check.
		if rootQ := nodes[rootNode].tree.Get(root.ID); rootQ != nil && rootQ.State == query.Done {
			switch rootQ.Outcome {
			case query.Reachable:
				res.Verdict = ErrorReachable
			case query.Unreachable:
				res.Verdict = Safe
			}
			res.Rounds = round + 1
			break
		}
		// Also catch the case where REDUCE removed the Done root already.
		if nodes[rootNode].tree.Get(root.ID) == nil {
			if _, verdict := nodes[rootNode].db.Answer(q0); verdict != 0 {
				if verdict > 0 {
					res.Verdict = ErrorReachable
				} else {
					res.Verdict = Safe
				}
				res.Rounds = round + 1
				break
			}
		}

		// Gossip: every SyncEvery rounds nodes exchange new summaries.
		if (round+1)%e.opts.SyncEvery == 0 {
			res.SyncExchanges++
			vtime += e.opts.SyncCost
			e.gossip(nodes)
		}

		for ni, n := range nodes {
			if l := n.tree.Len(); l > res.PerNodePeakLive[ni] {
				res.PerNodePeakLive[ni] = l
			}
		}
		res.Rounds = round + 1
	}

	for ni, n := range nodes {
		res.PerNodeSummaries[ni] = n.db.Count()
	}
	res.TotalQueries = alloc.Count()
	res.VirtualTicks = vtime
	res.WallTime = time.Since(start)
	return res
}

// gossip copies summaries between all node pairs (full exchange),
// returning how many summary deliveries occurred. Real deployments would
// batch deltas; the simulation keys on summary structure to avoid
// rebroadcast.
func (e *DistEngine) gossip(nodes []*distNode) int {
	moved := 0
	for _, from := range nodes {
		for _, s := range from.db.All() {
			key := fmt.Sprintf("%d|%s|%s|%s", s.Kind, s.Proc, s.Pre, s.Post)
			for _, to := range nodes {
				if to.id == from.id || to.known[key] {
					continue
				}
				to.known[key] = true
				to.db.Add(s)
				moved++
			}
		}
	}
	return moved
}
