// Distributed BOLT (§7 "Future Work"): the paper observes that BOLT's
// MapReduce architecture permits a distributed implementation, and that
// the limiting factor for scaling is memory, not time — each PUNCH run
// only needs the procedure under analysis, so the query tree and summary
// database can be sharded across machines.
//
// This file implements that design as a deterministic simulation: a
// cluster of nodes, each with its own worker pool and its own summary
// database shard. Queries are routed to nodes by their procedure (so a
// procedure's summaries are owned by one node), and nodes gossip freshly
// added summaries with a configurable synchronization period, modelling
// network staleness. Virtual time advances by the per-round maximum over
// node-local makespans plus the sync latency. The simulation preserves
// BOLT's verdict semantics while exposing the quantities of interest for
// a distributed deployment: per-node live-query and summary-count peaks
// (the memory story) and the wall-clock effect of sync latency.
//
// The simulation also executes an injected fault plan (DistOptions.Faults)
// — the straggler/partial-failure concerns a real deployment would face:
// a node can be killed at the start of a chosen round, and gossip
// deliveries can be dropped (deferred) with seeded randomness. Failover
// re-routes the dead node's live queries to the surviving owners and
// re-gossips its summaries (modelling a replicated summary log), so
// verdicts are preserved under faults; the confluence tests assert this.
package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/cfg"
	"repro/internal/obs"
	"repro/internal/prov"
	"repro/internal/punch"
	"repro/internal/query"
	"repro/internal/smt"
	"repro/internal/store"
	"repro/internal/summary"
)

// DistOptions configure a simulated cluster run.
type DistOptions struct {
	// Punch is the intraprocedural analysis (required).
	Punch punch.Punch
	// Nodes is the cluster size. Default 2.
	Nodes int
	// ThreadsPerNode is each node's MAP-stage throttle. Default 4.
	ThreadsPerNode int
	// CoresPerNode is each node's simulated core count. Default equals
	// ThreadsPerNode.
	CoresPerNode int
	// SyncEvery is how many rounds pass between summary gossip exchanges
	// (1 = every round). Larger values model higher network latency /
	// batching. Default 1.
	SyncEvery int
	// SyncCost is the virtual-time cost charged per gossip exchange.
	SyncCost int64
	// MaxRounds bounds the simulation. Default 1 << 18.
	MaxRounds int
	// RealTimeout bounds wall-clock time (0 = none).
	RealTimeout time.Duration
	// Faults is the injected fault plan (nil = fault-free run).
	Faults *Faults
	// DisableCoalesce turns off in-flight query coalescing (ablation);
	// see Options.DisableCoalesce.
	DisableCoalesce bool
	// DisableEntailmentCache turns off the solver's entailment memo
	// (ablation); see Options.DisableEntailmentCache.
	DisableEntailmentCache bool
	// Store, when non-nil, warm-starts the cluster: each stored summary
	// is loaded into its owning node's database before round 0 (gossip
	// spreads it from there), and the union of all node databases is
	// persisted back at run end. See Options.Store.
	Store store.Store
	// Tracer receives the run's query-lifecycle event stream (nil = off).
	Tracer obs.Tracer
	// Metrics is the registry the run updates (nil = off).
	Metrics *obs.Metrics
	// CollectProvenance records the verdict's summary read/write sets
	// and procedure dependency graph into DistResult.Provenance; see
	// Options.CollectProvenance.
	CollectProvenance bool
	// Incremental turns the warm start into an incremental re-check; see
	// Options.Incremental. Invalidation is routed to owning nodes:
	// DistResult.PerNodeInvalidated reports how many summaries each node
	// lost. Implies CollectProvenance.
	Incremental bool
	// PprofLabels wraps each PUNCH invocation in runtime/pprof labels.
	PprofLabels bool
	// Probe, when non-nil, receives a live-state snapshot function for
	// the run's duration (per-node occupancy, skew and gossip backlog on
	// top of the shared worker/forest gauges); see Options.Probe.
	Probe *obs.Probe
}

// DistResult reports a cluster run.
type DistResult struct {
	Verdict Verdict
	// StopReason records why the run terminated; TimedOut and Deadlocked
	// are derived from it.
	StopReason   StopReason
	Rounds       int
	TotalQueries int64
	VirtualTicks int64
	WallTime     time.Duration
	TimedOut     bool
	// Deadlocked: the cluster went all-blocked and a forced gossip
	// exchange moved nothing, so no stranded answer could unblock it.
	Deadlocked bool
	// PerNodePeakLive is each node's peak number of live queries — the
	// memory-sharding payoff the paper's discussion predicts.
	PerNodePeakLive []int
	// PerNodeSummaries is each node's final owned-summary count.
	PerNodeSummaries []int
	// SyncExchanges counts gossip rounds performed.
	SyncExchanges int
	// KilledNodes lists the nodes removed by fault injection, in order.
	KilledNodes []int
	// ReroutedQueries counts live queries moved off dead nodes by
	// failover.
	ReroutedQueries int
	// RecoveredSummaries counts summary deliveries performed by the
	// failover re-gossip of dead nodes' databases.
	RecoveredSummaries int
	// DroppedDeliveries counts gossip deliveries deferred by injected
	// loss (each is retried at a later exchange).
	DroppedDeliveries int
	// CoalesceHits counts spawned children answered by a live in-flight
	// twin instead of growing a duplicate subtree (cluster-wide).
	CoalesceHits int64
	// Metrics is the run's metrics snapshot (nil when DistOptions.Metrics
	// was nil), with summary-database traffic aggregated across nodes.
	Metrics *obs.Snapshot
	// Provenance is the verdict's dependency record (nil unless
	// DistOptions.CollectProvenance). Procedure routing does not affect
	// the recorded dependency graph, so the cone matches the shared-
	// memory engines'.
	Provenance *prov.Provenance
	// WarmSummaries is the number of summaries loaded from
	// DistOptions.Store before round 0; PersistedSummaries the number of
	// new summaries written back; StoreErr the first store failure
	// (non-fatal: the run degrades to a cold start).
	WarmSummaries      int
	PersistedSummaries int
	StoreErr           error
	// EditedProcs, InvalidatedSummaries, SurvivingSummaries and
	// ReusedVerdict report an incremental re-check; see Result.
	// PerNodeInvalidated routes the invalidation counts to the nodes
	// that owned the discarded summaries.
	EditedProcs          []string
	InvalidatedSummaries int
	SurvivingSummaries   int
	ReusedVerdict        bool
	PerNodeInvalidated   []int
}

// setStop records the termination reason exactly once and keeps the
// legacy flag fields consistent with it.
func (r *DistResult) setStop(reason StopReason) {
	if r.StopReason != StopNone {
		return
	}
	r.StopReason = reason
	r.TimedOut = reason.Exhausted()
	r.Deadlocked = reason == StopDeadlocked
}

// distNode is one simulated machine.
type distNode struct {
	id    int
	db    *summary.DB
	tree  *query.Tree
	known map[string]bool // summary keys already received via gossip
	dead  bool            // killed by fault injection
}

// DistEngine runs BOLT sharded across simulated nodes.
type DistEngine struct {
	prog *cfg.Program
	opts DistOptions
}

// NewDistributed returns a distributed engine.
func NewDistributed(prog *cfg.Program, opts DistOptions) *DistEngine {
	if opts.Punch == nil {
		panic("core: DistOptions.Punch is required")
	}
	if opts.Nodes <= 0 {
		opts.Nodes = 2
	}
	if opts.ThreadsPerNode <= 0 {
		opts.ThreadsPerNode = 4
	}
	if opts.CoresPerNode <= 0 {
		opts.CoresPerNode = opts.ThreadsPerNode
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 1
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 1 << 18
	}
	if opts.Incremental {
		// A re-check must persist its dependency graph for the next one.
		opts.CollectProvenance = true
	}
	return &DistEngine{prog: prog, opts: opts}
}

// nodeOf routes a procedure to its home node. The modulo is taken in
// uint32 space like summary.shardIndex: int(h.Sum32()) is negative for
// hashes above MaxInt32 on 32-bit platforms, and a signed modulo would
// then yield a negative index.
func (e *DistEngine) nodeOf(proc string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(proc))
	return int(h.Sum32() % uint32(e.opts.Nodes))
}

// owner resolves proc's serving node: its hash home when alive, else the
// next live node in ring order (failover re-routing). Returns nil when
// every node is dead.
func (e *DistEngine) owner(nodes []*distNode, proc string) *distNode {
	home := e.nodeOf(proc)
	for off := 0; off < len(nodes); off++ {
		if n := nodes[(home+off)%len(nodes)]; !n.dead {
			return n
		}
	}
	return nil
}

// Run answers q0 on the simulated cluster with no external cancellation;
// see RunContext.
func (e *DistEngine) Run(q0 summary.Question) DistResult {
	return e.RunContext(context.Background(), q0)
}

// RunContext answers q0 on the simulated cluster. Cancelling ctx stops
// the run at the next round boundary with StopReason StopCancelled.
func (e *DistEngine) RunContext(ctx0 context.Context, q0 summary.Question) DistResult {
	start := time.Now()
	solver := smt.New()
	if !e.opts.DisableEntailmentCache {
		solver.EnableEntailmentCache()
	}
	alloc := &query.Allocator{}
	modref := e.prog.ModRef()

	coalesce := !e.opts.DisableCoalesce
	nodes := make([]*distNode, e.opts.Nodes)
	forest := make([]*query.Tree, e.opts.Nodes)
	for i := range nodes {
		nodes[i] = &distNode{
			id:    i,
			db:    summary.New(solver),
			tree:  query.NewTree(),
			known: map[string]bool{},
		}
		if coalesce {
			nodes[i].tree.TrackInflight()
		}
		forest[i] = nodes[i].tree
	}
	root := alloc.New(query.NoParent, q0)
	nodes[e.nodeOf(q0.Proc)].tree.Add(root)

	res := DistResult{
		Verdict:          Unknown,
		PerNodePeakLive:  make([]int, e.opts.Nodes),
		PerNodeSummaries: make([]int, e.opts.Nodes),
	}
	var rec *prov.Recorder
	if e.opts.CollectProvenance {
		rec = prov.NewRecorder(e.opts.Metrics)
	}
	rec.Root(root.ID, q0.Proc)
	var prep incrPrep
	if e.opts.Incremental && e.opts.Store != nil {
		prep = prepareIncr(e.prog, e.opts.Store, q0)
		res.EditedProcs = prep.edited
		res.InvalidatedSummaries = prep.invalidated
		if prep.surviving >= 0 {
			res.SurvivingSummaries = prep.surviving
		}
		if prep.err != nil && res.StoreErr == nil {
			res.StoreErr = prep.err
		}
		res.PerNodeInvalidated = make([]int, e.opts.Nodes)
		for proc, n := range prep.perProc {
			res.PerNodeInvalidated[e.nodeOf(proc)] += n
		}
		if prep.reuse {
			res.Verdict = prep.verdict
			res.ReusedVerdict = true
			res.setStop(StopVerdictReused)
			res.WallTime = time.Since(start)
			return res
		}
	}
	// Warm start: each stored summary hydrates its owning node (the
	// node procedure routing would send its questions to) and is marked
	// known there, so the first gossip exchange spreads it cluster-wide
	// without re-delivering to the owner.
	if e.opts.Store != nil {
		if sums, err := e.opts.Store.Load(); err != nil {
			res.StoreErr = err
		} else {
			for _, s := range sums {
				if prep.skipAll || prep.skipLoad[s.Proc] {
					// Deleter-less store: invalidation filtered at
					// hydration, attributed to the owning node.
					res.InvalidatedSummaries++
					if res.PerNodeInvalidated != nil {
						res.PerNodeInvalidated[e.nodeOf(s.Proc)]++
					}
					continue
				}
				owner := nodes[e.nodeOf(s.Proc)]
				owner.db.Add(s)
				owner.known[summaryKey(s)] = true
				rec.MarkWarm(s)
				res.WarmSummaries++
			}
			if e.opts.Incremental {
				res.SurvivingSummaries = res.WarmSummaries
			}
		}
	}
	var vtime int64
	// Worker slot w of node n gets the global metrics index
	// n*ThreadsPerNode + w.
	in := newInstr(e.opts.Tracer, e.opts.Metrics, e.opts.Nodes*e.opts.ThreadsPerNode, start, e.opts.PprofLabels)
	var ls *obs.LiveState
	var doneCount int64
	if e.opts.Probe != nil {
		ls = obs.NewLiveState("dist", e.opts.Nodes*e.opts.ThreadsPerNode, e.opts.Nodes, start)
		attachDistProbe(e.opts.Probe, ls, nodes, solver)
		defer e.opts.Probe.Detach()
		publishDist(ls, nodes, alloc, 0, 0, 0, 0)
	}
	var depth map[query.ID]int
	if in.labels || ls != nil {
		depth = map[query.ID]int{root.ID: 0}
	}
	in.m.Inc(obs.QueriesSpawned)
	if in.tr != nil {
		in.emit(obs.Event{Type: obs.EvSpawn, Query: root.ID, Parent: query.NoParent, Proc: root.Q.Proc, Node: e.nodeOf(q0.Proc)})
	}
	faults := e.opts.Faults
	var rng *rand.Rand
	if faults != nil {
		rng = rand.New(rand.NewSource(faults.Seed))
	}

	for round := 0; round < e.opts.MaxRounds; round++ {
		if ctx0.Err() != nil {
			res.setStop(StopCancelled)
			break
		}
		if e.opts.RealTimeout > 0 && time.Since(start) > e.opts.RealTimeout {
			res.setStop(StopWallTimeout)
			break
		}
		// Fault injection: the victim dies at the start of its round,
		// before MAP, so no in-flight work complicates recovery.
		if faults != nil && faults.KillNode >= 0 && round == faults.KillRound {
			e.failNode(nodes, faults.KillNode, &res, &in, ls, vtime)
		}
		rootOwner := e.owner(nodes, q0.Proc)
		if rootOwner == nil {
			res.setStop(StopNodeFailure)
			break
		}
		res.Rounds = round + 1

		// Each live node runs one MAP stage on its own shard, in parallel.
		type nodeOutcome struct {
			results []punch.Result
			sel     []*query.Query
			walls   []time.Duration
		}
		outcomes := make([]nodeOutcome, len(nodes))
		var wg sync.WaitGroup
		anyWork := false
		for ni, n := range nodes {
			if n.dead {
				continue
			}
			ready := n.tree.InState(query.Ready)
			if len(ready) == 0 {
				continue
			}
			anyWork = true
			sel := ready
			if len(sel) > e.opts.ThreadsPerNode {
				sel = sel[:e.opts.ThreadsPerNode]
			}
			outcomes[ni].sel = sel
			outcomes[ni].results = make([]punch.Result, len(sel))
			outcomes[ni].walls = make([]time.Duration, len(sel))
			ctx := &punch.Context{Prog: e.prog, DB: n.db, Alloc: alloc, ModRef: modref}
			// Punch spans are emitted from the round loop (start here, end
			// at merge below), so the trace stream stays single-writer and
			// each (node, worker) track holds at most one open span.
			if in.tr != nil {
				for i := range sel {
					in.emit(obs.Event{Type: obs.EvPunchStart, Query: sel[i].ID, Proc: sel[i].Q.Proc, Node: ni, Worker: i, VTime: vtime})
				}
			}
			for i := range sel {
				wg.Add(1)
				go func(ni, i int) {
					defer wg.Done()
					o := &outcomes[ni]
					slot := ni*e.opts.ThreadsPerNode + i
					ls.WorkerRunning(slot, o.sel[i].Q.Proc, int64(o.sel[i].ID))
					defer ls.WorkerFinished(slot)
					pctx := ctx
					if rec != nil {
						ic := *ctx
						ic.DB = rec.Frame(ctx.DB, o.sel[i].ID, o.sel[i].Q.Proc)
						pctx = &ic
					}
					var t0 time.Time
					if in.m != nil {
						t0 = time.Now()
					}
					if in.labels {
						obs.DoPunch(ctx0, "dist", o.sel[i].Q.Proc, depth[o.sel[i].ID], func() {
							o.results[i] = e.opts.Punch.Step(pctx, o.sel[i])
						})
					} else {
						o.results[i] = e.opts.Punch.Step(pctx, o.sel[i])
					}
					if in.m != nil {
						o.walls[i] = time.Since(t0)
					}
				}(ni, i)
			}
		}
		wg.Wait()
		if !anyWork {
			// All nodes are blocked: answers may be stranded in remote
			// shards, so force a gossip exchange and wake blocked queries
			// to re-examine their databases. The forced exchange is exempt
			// from injected loss (a reliable anti-entropy repair): drops
			// may delay the cluster but must never wedge it. If nothing
			// new flowed, the cluster is genuinely deadlocked.
			res.SyncExchanges++
			vtime += e.opts.SyncCost
			if e.gossip(nodes, nil, &res, &in, ls, vtime) == 0 {
				publishDist(ls, nodes, alloc, vtime, int64(round+1), doneCount, res.CoalesceHits)
				res.setStop(StopDeadlocked)
				break
			}
			wakeBlocked(nodes, &in, vtime)
			publishDist(ls, nodes, alloc, vtime, int64(round+1), doneCount, res.CoalesceHits)
			continue
		}

		// Per-node makespans; the round's virtual time is their maximum
		// (nodes genuinely run in parallel).
		var roundCost int64
		for ni := range outcomes {
			if outcomes[ni].sel == nil {
				continue
			}
			costs := make([]int64, len(outcomes[ni].results))
			for i, r := range outcomes[ni].results {
				costs[i] = r.Cost
			}
			c := makespan(costs, e.opts.CoresPerNode)
			ls.NodeAddBusy(ni, c)
			if c > roundCost {
				roundCost = c
			}
		}
		vtime += roundCost

		// Merge results: children are routed to their owning node (a
		// remote dispatch in a real deployment).
		for ni, n := range nodes {
			if outcomes[ni].sel == nil {
				continue
			}
			for i, r := range outcomes[ni].results {
				if in.m != nil {
					in.m.ObservePunch(ni*e.opts.ThreadsPerNode+i, r.Cost, outcomes[ni].walls[i])
				}
				if in.tr != nil {
					in.emit(obs.Event{Type: obs.EvPunchEnd, Query: r.Self.ID, Proc: r.Self.Q.Proc, Node: ni, Worker: i, VTime: vtime, Cost: r.Cost})
				}
				n.tree.Replace(r.Self)
				for _, c := range r.Children {
					dst := e.owner(nodes, c.Q.Proc)
					// In-flight coalescing: procedure routing is
					// deterministic, so a live twin asking the same question
					// must live in dst's tree. Done twin ⟹ its summary is in
					// dst's database (PUNCH contract), so the parent can wake
					// immediately and find the answer via gossip; a live twin
					// adopts the parent as an extra waiter unless that would
					// close a waits-for cycle.
					if coalesce {
						if twinID, ok := dst.tree.Inflight(c.Q.Key()); ok {
							if twin := dst.tree.Get(twinID); twin != nil {
								if twin.State == query.Done {
									res.CoalesceHits++
									in.m.Inc(obs.CoalesceHits)
									rec.Coalesce(r.Self.ID, r.Self.Q.Proc, c.Q.Proc)
									if in.tr != nil {
										in.emit(obs.Event{Type: obs.EvCoalesce, Query: c.ID, Parent: r.Self.ID, Proc: c.Q.Proc, Node: dst.id, Worker: i, VTime: vtime, N: int64(twinID)})
									}
									if r.Self.State == query.Blocked {
										n.tree.SetState(r.Self.ID, query.Ready)
									}
									continue
								}
								if !query.WouldCycle(forest, twinID, r.Self.ID) {
									dst.tree.AddWaiter(twinID, r.Self.ID)
									res.CoalesceHits++
									in.m.Inc(obs.CoalesceHits)
									rec.Coalesce(r.Self.ID, r.Self.Q.Proc, c.Q.Proc)
									if in.tr != nil {
										in.emit(obs.Event{Type: obs.EvCoalesce, Query: c.ID, Parent: r.Self.ID, Proc: c.Q.Proc, Node: dst.id, Worker: i, VTime: vtime, N: int64(twinID)})
									}
									continue
								}
							}
						}
					}
					dst.tree.Add(c)
					in.m.Inc(obs.QueriesSpawned)
					rec.Spawn(r.Self.ID, r.Self.Q.Proc, c.ID, c.Q.Proc)
					if depth != nil {
						depth[c.ID] = depth[r.Self.ID] + 1
						ls.ObserveDepth(depth[c.ID])
					}
					if in.tr != nil {
						in.emit(obs.Event{Type: obs.EvSpawn, Query: c.ID, Parent: r.Self.ID, Proc: c.Q.Proc, Node: dst.id, Worker: i, VTime: vtime})
					}
				}
			}
		}

		// The true live peak is reached before REDUCE garbage-collects
		// Done subtrees; record it here and again after GC, so the final
		// round's peak is not lost to the root-answered break below.
		e.recordPeaks(nodes, &res)

		// REDUCE per node: wake parents (which may live on another node)
		// and garbage-collect Done subtrees locally. A child's parent
		// lives where the parent's procedure is owned; scan all nodes.
		for ni, n := range nodes {
			if outcomes[ni].sel == nil {
				continue
			}
			for i, r := range outcomes[ni].results {
				self := r.Self
				if self.State == query.Blocked {
					in.m.Inc(obs.QueriesBlocked)
					if in.tr != nil {
						in.emit(obs.Event{Type: obs.EvBlock, Query: self.ID, Proc: self.Q.Proc, Node: ni, Worker: i, VTime: vtime})
					}
				}
				if self.State != query.Done {
					continue
				}
				doneCount++
				in.m.Inc(obs.QueriesDone)
				if in.tr != nil {
					in.emit(obs.Event{Type: obs.EvDone, Query: self.ID, Proc: self.Q.Proc, Node: ni, Worker: i, VTime: vtime})
				}
				if self.Parent != query.NoParent {
					for _, other := range nodes {
						if p := other.tree.Get(self.Parent); p != nil {
							if p.State == query.Blocked {
								other.tree.SetState(p.ID, query.Ready)
								in.m.Inc(obs.Wakes)
								if in.tr != nil {
									in.emit(obs.Event{Type: obs.EvWake, Query: p.ID, Proc: p.Q.Proc, Node: other.id, VTime: vtime})
								}
							}
							break
						}
					}
				}
				// One summary answers every coalesced waiter: fan the wake
				// out to all registered waiters (which may live on other
				// nodes) before collecting the subtree.
				for _, w := range n.tree.Waiters(self.ID) {
					for _, other := range nodes {
						if p := other.tree.Get(w); p != nil {
							if p.State == query.Blocked {
								other.tree.SetState(p.ID, query.Ready)
								in.m.Inc(obs.Wakes)
								if in.tr != nil {
									in.emit(obs.Event{Type: obs.EvWake, Query: p.ID, Proc: p.Q.Proc, Node: other.id, VTime: vtime})
								}
							}
							break
						}
					}
				}
				n.tree.ClearWaiters(self.ID)
				removed := n.tree.RemoveSubtree(self.ID)
				in.m.Add(obs.QueriesGCd, int64(removed))
				if in.tr != nil {
					in.emit(obs.Event{Type: obs.EvGC, Query: self.ID, Proc: self.Q.Proc, Node: ni, Worker: i, VTime: vtime, N: int64(removed)})
				}
			}
		}
		e.recordPeaks(nodes, &res)
		publishDist(ls, nodes, alloc, vtime, int64(round+1), doneCount, res.CoalesceHits)

		// Root check.
		if rootQ := rootOwner.tree.Get(root.ID); rootQ != nil && rootQ.State == query.Done {
			switch rootQ.Outcome {
			case query.Reachable:
				res.Verdict = ErrorReachable
			case query.Unreachable:
				res.Verdict = Safe
			}
			res.setStop(StopRootAnswered)
			break
		}
		// Also catch the case where REDUCE removed the Done root already.
		if rootOwner.tree.Get(root.ID) == nil {
			if _, verdict := rootOwner.db.Answer(q0); verdict != 0 {
				if verdict > 0 {
					res.Verdict = ErrorReachable
				} else {
					res.Verdict = Safe
				}
				res.setStop(StopRootAnswered)
				break
			}
		}

		// Gossip: every SyncEvery rounds nodes exchange new summaries,
		// subject to the injected loss plan.
		if (round+1)%e.opts.SyncEvery == 0 {
			res.SyncExchanges++
			vtime += e.opts.SyncCost
			// A summary arrival is a wake event: queries that blocked before
			// the delivery must re-examine their databases, or the deadlock
			// detector below would declare a fully-replicated-but-sleeping
			// cluster dead. (The barrier engine gets this ordering for free
			// from its shared database.)
			if e.gossip(nodes, rng, &res, &in, ls, vtime) > 0 {
				wakeBlocked(nodes, &in, vtime)
			}
		}
	}

	// Falling out of the loop without a recorded reason means the round
	// budget ran dry.
	res.setStop(StopEventBudget)
	for ni, n := range nodes {
		res.PerNodeSummaries[ni] = n.db.Count()
	}
	// Persist the union of every node's database; the store dedups by
	// canonical wire key, so gossip replication costs nothing here.
	if e.opts.Store != nil {
		var firstErr error
	persist:
		for _, n := range nodes {
			for _, s := range n.db.All() {
				added, err := e.opts.Store.Put(s)
				if err != nil {
					firstErr = err
					break persist
				}
				if added {
					res.PersistedSummaries++
				}
			}
		}
		if err := e.opts.Store.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
		if firstErr != nil && res.StoreErr == nil {
			res.StoreErr = firstErr
		}
	}
	res.TotalQueries = alloc.Count()
	res.VirtualTicks = vtime
	res.WallTime = time.Since(start)
	if rec != nil {
		p := rec.Finish(res.Verdict.String())
		res.Provenance = p
		observeCones(e.opts.Metrics, p)
		if e.opts.Store != nil {
			if err := persistProv(e.opts.Store, p, "dist", q0); err != nil && res.StoreErr == nil {
				res.StoreErr = err
			}
		}
	}
	res.Metrics = in.finish(vtime, aggregateStats(nodes), solver.StatsSnapshot())
	return res
}

// aggregateStats sums the per-node summary-database traffic into one
// Stats view, merging the per-stripe breakdown by shard index (every
// node stripes its shard the same way).
func aggregateStats(nodes []*distNode) summary.Stats {
	var agg summary.Stats
	byShard := map[int]*summary.ShardTraffic{}
	for _, n := range nodes {
		st := n.db.StatsSnapshot()
		agg.Added += st.Added
		agg.YesHits += st.YesHits
		agg.NoHits += st.NoHits
		agg.Misses += st.Misses
		agg.DupesSkip += st.DupesSkip
		agg.MemoHits += st.MemoHits
		for _, sh := range st.PerShard {
			t := byShard[sh.Shard]
			if t == nil {
				t = &summary.ShardTraffic{Shard: sh.Shard}
				byShard[t.Shard] = t
			}
			t.Procs += sh.Procs
			t.Summaries += sh.Summaries
			t.YesHits += sh.YesHits
			t.NoHits += sh.NoHits
			t.Misses += sh.Misses
			t.MemoHits += sh.MemoHits
		}
	}
	shards := make([]int, 0, len(byShard))
	for s := range byShard {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	for _, s := range shards {
		agg.PerShard = append(agg.PerShard, *byShard[s])
	}
	return agg
}

// wakeBlocked moves every Blocked query on a live node back to Ready so
// its next PUNCH slice re-examines the (just updated) local database.
func wakeBlocked(nodes []*distNode, in *instr, vtime int64) {
	for _, n := range nodes {
		if n.dead {
			continue
		}
		for _, q := range n.tree.InState(query.Blocked) {
			n.tree.SetState(q.ID, query.Ready)
			in.m.Inc(obs.Wakes)
			if in.tr != nil {
				in.emit(obs.Event{Type: obs.EvWake, Query: q.ID, Proc: q.Q.Proc, Node: n.id, VTime: vtime})
			}
		}
	}
}

// recordPeaks folds each live node's current tree size into the per-node
// peak gauges.
func (e *DistEngine) recordPeaks(nodes []*distNode, res *DistResult) {
	for ni, n := range nodes {
		if l := n.tree.Len(); l > res.PerNodePeakLive[ni] {
			res.PerNodePeakLive[ni] = l
		}
	}
}

// failNode executes the kill clause of the fault plan: victim's summaries
// are re-gossiped to the survivors (modelling a replicated summary log —
// this recovery path is reliable, unlike periodic gossip), and its live
// queries are re-routed to their new owners, with Blocked survivors woken
// so they re-examine the recovered databases. No-op when the victim is
// out of range or already dead.
func (e *DistEngine) failNode(nodes []*distNode, victim int, res *DistResult, in *instr, ls *obs.LiveState, vtime int64) {
	if victim < 0 || victim >= len(nodes) || nodes[victim].dead {
		return
	}
	dead := nodes[victim]
	dead.dead = true
	ls.NodeDead(victim)
	res.KilledNodes = append(res.KilledNodes, victim)
	in.m.Inc(obs.NodeKills)
	if in.tr != nil {
		in.emit(obs.Event{Type: obs.EvNodeKill, Node: victim, VTime: vtime})
	}

	for _, s := range dead.db.All() {
		key := summaryKey(s)
		for _, to := range nodes {
			if to.dead || to.known[key] {
				continue
			}
			to.known[key] = true
			to.db.Add(s)
			res.RecoveredSummaries++
			in.deliver(victim, to.id, s.Proc, len(key), vtime)
		}
	}
	for _, q := range dead.tree.All() {
		dst := e.owner(nodes, q.Q.Proc)
		if dst == nil {
			return // cluster is gone; the caller stops with StopNodeFailure
		}
		dead.tree.MoveTo(dst.tree, q.ID)
		if q.State == query.Blocked {
			// The answer it waited for may have died with this node's
			// in-flight state; re-examining the DB is always sound.
			dst.tree.SetState(q.ID, query.Ready)
		}
		res.ReroutedQueries++
	}
	// Recovery deliveries are wake events like any other gossip: survivors
	// blocked on the victim's summaries must re-examine their databases.
	if res.RecoveredSummaries > 0 {
		wakeBlocked(nodes, in, vtime)
	}
}

func summaryKey(s summary.Summary) string {
	return fmt.Sprintf("%d|%s|%s|%s", s.Kind, s.Proc, s.Pre, s.Post)
}

// gossip copies summaries between all live node pairs (full exchange),
// returning how many summary deliveries occurred. Real deployments would
// batch deltas; the simulation keys on summary structure to avoid
// rebroadcast. With a non-nil rng, each delivery is dropped with the
// fault plan's probability; a dropped delivery stays unacknowledged and
// is retried at the next exchange (drop-as-delay). Each receiver's
// deferred-delivery count for this exchange is published as its live
// gossip backlog.
func (e *DistEngine) gossip(nodes []*distNode, rng *rand.Rand, res *DistResult, in *instr, ls *obs.LiveState, vtime int64) int {
	in.m.Inc(obs.GossipRounds)
	drop := 0.0
	if rng != nil && e.opts.Faults != nil {
		drop = e.opts.Faults.GossipDrop
	}
	moved := 0
	deferred := make([]int64, len(nodes))
	for _, from := range nodes {
		if from.dead {
			continue
		}
		for _, s := range from.db.All() {
			key := summaryKey(s)
			for _, to := range nodes {
				if to.dead || to.id == from.id || to.known[key] {
					continue
				}
				if drop > 0 && rng.Float64() < drop {
					res.DroppedDeliveries++
					deferred[to.id]++
					continue
				}
				to.known[key] = true
				to.db.Add(s)
				moved++
				in.deliver(from.id, to.id, s.Proc, len(key), vtime)
			}
		}
	}
	if ls != nil {
		for i, d := range deferred {
			ls.NodeSetBacklog(i, d)
		}
	}
	return moved
}
