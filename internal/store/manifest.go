// The disk store's manifest sidecar: the per-procedure content
// fingerprints of the program the stored summaries were computed from,
// persisted beside the segment in manifest.seg. Unlike the segment and
// the provenance sidecar the manifest is not append-only — it is a
// snapshot, replaced wholesale after every invalidation via tmp+rename
// (the index's atomicity discipline), so a crash leaves either the old
// manifest or the new one, never a torn mix. A missing manifest loads
// as nil: the caller must then treat every stored summary as
// potentially stale (full invalidation), which is the sound default.

package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

const (
	manMagic   = "BOLTMAN1"
	manVersion = 1
	// ManName is the manifest sidecar's file name inside a store
	// directory.
	ManName = "manifest.seg"
)

var manHeaderSize = len(manMagic) + 1 + len(Fingerprint{})

// PutManifest atomically replaces the stored manifest.
func (d *Disk) PutManifest(m map[string]Fingerprint) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("store: put on closed store")
	}
	procs := make([]string, 0, len(m))
	for p := range m {
		procs = append(procs, p)
	}
	sort.Strings(procs)
	payload := binary.AppendUvarint(nil, uint64(len(procs)))
	for _, p := range procs {
		payload = binary.AppendUvarint(payload, uint64(len(p)))
		payload = append(payload, p...)
		fp := m[p]
		payload = append(payload, fp[:]...)
	}
	buf := make([]byte, 0, manHeaderSize+len(payload)+16)
	buf = append(buf, manMagic...)
	buf = append(buf, manVersion)
	buf = append(buf, d.fp[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	path := filepath.Join(d.dir, ManName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// LoadManifest returns the stored manifest, or nil when none was ever
// written. A manifest written under a different store fingerprint is
// rejected like a mismatched segment; a torn or corrupt manifest is an
// error (the tmp+rename write makes that a filesystem fault, not a
// crash artifact).
func (d *Disk) LoadManifest() (map[string]Fingerprint, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, fmt.Errorf("store: load on closed store")
	}
	path := filepath.Join(d.dir, ManName)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if len(data) < manHeaderSize || string(data[:len(manMagic)]) != manMagic {
		return nil, fmt.Errorf("store: %s is not a manifest sidecar", path)
	}
	if v := data[len(manMagic)]; v != manVersion {
		return nil, fmt.Errorf("store: %s has manifest version %d, this build reads version %d", path, v, manVersion)
	}
	var fp Fingerprint
	copy(fp[:], data[len(manMagic)+1:manHeaderSize])
	if fp != d.fp {
		return nil, &MismatchError{Path: path, Want: d.fp, Got: fp}
	}
	payload, _, err := parseRecord(data, int64(manHeaderSize))
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	r := bytes.NewReader(payload)
	n, err := binary.ReadUvarint(r)
	if err != nil || n > maxRecordLen {
		return nil, fmt.Errorf("store: %s: corrupt manifest", path)
	}
	out := make(map[string]Fingerprint, n)
	for i := uint64(0); i < n; i++ {
		nameLen, err := binary.ReadUvarint(r)
		if err != nil || nameLen > maxRecordLen {
			return nil, fmt.Errorf("store: %s: corrupt manifest", path)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, fmt.Errorf("store: %s: truncated manifest", path)
		}
		var pfp Fingerprint
		if _, err := io.ReadFull(r, pfp[:]); err != nil {
			return nil, fmt.Errorf("store: %s: truncated manifest", path)
		}
		out[string(name)] = pfp
	}
	return out, nil
}
