package store_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/store"
	"repro/internal/summary"
)

// fillStore puts 2 summaries each for procs a, b, c.
func fillStore(t *testing.T, st store.Store) []summary.Summary {
	t.Helper()
	var put []summary.Summary
	for i, proc := range []string{"a", "a", "b", "b", "c", "c"} {
		s := sum(proc, int64(i))
		put = append(put, s)
		if added, err := st.Put(s); err != nil || !added {
			t.Fatalf("Put %s#%d: added=%v err=%v", proc, i, added, err)
		}
	}
	return put
}

func survivors(sums []summary.Summary, dead map[string]bool) []summary.Summary {
	var out []summary.Summary
	for _, s := range sums {
		if !dead[s.Proc] {
			out = append(out, s)
		}
	}
	return out
}

// TestDeleteProcsParity runs the same invalidation sequence against
// both backends: the Deleter contract must behave identically.
func TestDeleteProcsParity(t *testing.T) {
	open := map[string]func(t *testing.T) store.Store{
		"mem": func(t *testing.T) store.Store { return store.NewMem() },
		"disk": func(t *testing.T) store.Store {
			d, err := store.OpenDisk(t.TempDir(), store.NewFingerprint("del-parity"), false)
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
	}
	for name, mk := range open {
		t.Run(name, func(t *testing.T) {
			st := mk(t)
			defer st.Close()
			put := fillStore(t, st)
			removed, err := st.(store.Deleter).DeleteProcs([]string{"a", "c", "ghost"})
			if err != nil {
				t.Fatal(err)
			}
			if removed["a"] != 2 || removed["c"] != 2 || removed["ghost"] != 0 || len(removed) != 2 {
				t.Fatalf("removed = %v, want a:2 c:2", removed)
			}
			got, err := st.Load()
			if err != nil {
				t.Fatal(err)
			}
			sameSet(t, got, survivors(put, map[string]bool{"a": true, "c": true}))
			// Re-putting a deleted summary makes it live again.
			if added, err := st.Put(put[0]); err != nil || !added {
				t.Fatalf("re-Put after delete: added=%v err=%v", added, err)
			}
			// Delete-all (nil) empties the store.
			removed, err = st.(store.Deleter).DeleteProcs(nil)
			if err != nil {
				t.Fatal(err)
			}
			if removed["a"] != 1 || removed["b"] != 2 {
				t.Fatalf("delete-all removed %v, want a:1 b:2", removed)
			}
			got, err = st.Load()
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 0 {
				t.Fatalf("%d summaries survive delete-all", len(got))
			}
		})
	}
}

// TestDiskTombstoneReopenAndCompaction checks the on-disk lifecycle:
// tombstones persist the deletion across a reopen, the reopen compacts
// the segment (dead records and tombstones rewritten away), and the
// compacted store still round-trips.
func TestDiskTombstoneReopenAndCompaction(t *testing.T) {
	dir := t.TempDir()
	fp := store.NewFingerprint("tomb")
	d, err := store.OpenDisk(dir, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	put := fillStore(t, d)
	if _, err := d.DeleteProcs([]string{"b"}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(dir, store.SegName)
	before, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}

	d, err = store.OpenDisk(dir, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Load()
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, survivors(put, map[string]bool{"b": true}))
	if d.Count() != 4 {
		t.Fatalf("Count = %d after reopen, want 4", d.Count())
	}
	after, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("segment did not shrink on compaction: %d -> %d bytes", before.Size(), after.Size())
	}
	// The compacted store keeps working: put, flush, reopen again.
	s := sum("b", 99)
	if added, err := d.Put(s); err != nil || !added {
		t.Fatalf("Put after compaction: added=%v err=%v", added, err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d, err = store.OpenDisk(dir, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	got, err = d.Load()
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, append(survivors(put, map[string]bool{"b": true}), s))
}

// TestDiskTombstoneThenRePutSameRun: a tombstone only kills records
// appended before it — a summary re-put after the delete survives the
// next scan.
func TestDiskTombstoneThenRePut(t *testing.T) {
	dir := t.TempDir()
	fp := store.NewFingerprint("tomb-reput")
	d, err := store.OpenDisk(dir, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	put := fillStore(t, d)
	if _, err := d.DeleteProcs([]string{"a"}); err != nil {
		t.Fatal(err)
	}
	if added, err := d.Put(put[1]); err != nil || !added {
		t.Fatalf("re-Put: added=%v err=%v", added, err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d, err = store.OpenDisk(dir, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	got, err := d.Load()
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, append(survivors(put, map[string]bool{"a": true}), put[1]))
}

// TestManifestParity round-trips a manifest through both backends and
// checks the missing-manifest and cross-fingerprint cases.
func TestManifestParity(t *testing.T) {
	man := map[string]store.Fingerprint{
		"main": store.NewFingerprint("m1"),
		"aux":  store.NewFingerprint("m2"),
	}
	t.Run("mem", func(t *testing.T) {
		m := store.NewMem()
		got, err := m.LoadManifest()
		if err != nil || got != nil {
			t.Fatalf("fresh store manifest = %v, %v; want nil, nil", got, err)
		}
		if err := m.PutManifest(man); err != nil {
			t.Fatal(err)
		}
		got, err = m.LoadManifest()
		if err != nil || len(got) != 2 || got["main"] != man["main"] || got["aux"] != man["aux"] {
			t.Fatalf("manifest round trip = %v, %v", got, err)
		}
	})
	t.Run("disk", func(t *testing.T) {
		dir := t.TempDir()
		fp := store.NewFingerprint("man")
		d, err := store.OpenDisk(dir, fp, false)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.LoadManifest()
		if err != nil || got != nil {
			t.Fatalf("fresh store manifest = %v, %v; want nil, nil", got, err)
		}
		if err := d.PutManifest(man); err != nil {
			t.Fatal(err)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		d, err = store.OpenDisk(dir, fp, false)
		if err != nil {
			t.Fatal(err)
		}
		got, err = d.LoadManifest()
		if err != nil || len(got) != 2 || got["main"] != man["main"] || got["aux"] != man["aux"] {
			t.Fatalf("manifest round trip = %v, %v", got, err)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		// A reset segment discards the manifest with the summaries.
		d, err = store.OpenDisk(dir, store.NewFingerprint("other"), true)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		got, err = d.LoadManifest()
		if err != nil || got != nil {
			t.Fatalf("manifest survived a store reset: %v, %v", got, err)
		}
	})
}
