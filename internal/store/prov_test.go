package store_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/store"
	"repro/internal/wire"
)

func provRec(root, engine string, n int) wire.ProvRecord {
	rec := wire.ProvRecord{Root: root, Verdict: "Program is Safe", Engine: engine}
	for i := 0; i < n; i++ {
		rec.Reads = append(rec.Reads, wire.ProvRead{
			Summary: sum(root, int64(i)), Warm: i%2 == 0, Count: int64(i + 1),
		})
	}
	return rec
}

func TestDiskProvSidecarRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fp := store.NewFingerprint("test", "prog-a")
	d, err := store.OpenDisk(dir, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	// Missing sidecar reads as empty, not as an error.
	if recs, err := d.LoadProv(); err != nil || len(recs) != 0 {
		t.Fatalf("fresh store LoadProv = %v, %v", recs, err)
	}
	if err := d.PutProv(provRec("main", "barrier", 2)); err != nil {
		t.Fatal(err)
	}
	if err := d.PutProv(provRec("main", "async", 1)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Records survive the process boundary, oldest first.
	d2, err := store.OpenDisk(dir, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	recs, err := d2.LoadProv()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Engine != "barrier" || recs[1].Engine != "async" {
		t.Fatalf("LoadProv = %+v", recs)
	}
	if len(recs[0].Reads) != 2 || !recs[0].Reads[0].Warm || recs[0].Reads[0].Count != 1 {
		t.Fatalf("read set lost: %+v", recs[0].Reads)
	}
}

func TestDiskProvRejectsForeignFingerprint(t *testing.T) {
	dir := t.TempDir()
	d, err := store.OpenDisk(dir, store.NewFingerprint("test", "prog-a"), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PutProv(provRec("main", "barrier", 1)); err != nil {
		t.Fatal(err)
	}
	d.Close()

	// The summary segment mismatch is caught at open; force a prov-only
	// mismatch by opening with reset (which rewrites the segment and
	// removes the sidecar) — then plant a sidecar from another program.
	other := t.TempDir()
	od, err := store.OpenDisk(other, store.NewFingerprint("test", "prog-b"), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := od.PutProv(provRec("main", "barrier", 1)); err != nil {
		t.Fatal(err)
	}
	od.Close()
	d2, err := store.OpenDisk(dir, store.NewFingerprint("test", "prog-a"), false)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	foreign, err := os.ReadFile(filepath.Join(other, store.ProvName))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, store.ProvName), foreign, 0o644); err != nil {
		t.Fatal(err)
	}
	var mm *store.MismatchError
	if _, err := d2.LoadProv(); !errors.As(err, &mm) {
		t.Fatalf("foreign sidecar: got %v, want MismatchError", err)
	}
}

func TestDiskProvTrimsTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	fp := store.NewFingerprint("test", "prog-a")
	d, err := store.OpenDisk(dir, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PutProv(provRec("main", "barrier", 1)); err != nil {
		t.Fatal(err)
	}
	if err := d.PutProv(provRec("main", "async", 1)); err != nil {
		t.Fatal(err)
	}
	d.Close()

	// Chop bytes off the final record as a crash would.
	path := filepath.Join(dir, store.ProvName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := store.OpenDisk(dir, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	recs, err := d2.LoadProv()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Engine != "barrier" {
		t.Fatalf("truncated tail: got %+v, want the intact first record", recs)
	}
}

func TestResetRemovesProvSidecar(t *testing.T) {
	dir := t.TempDir()
	fp := store.NewFingerprint("test", "prog-a")
	d, err := store.OpenDisk(dir, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PutProv(provRec("main", "barrier", 1)); err != nil {
		t.Fatal(err)
	}
	d.Close()
	// Re-open under a different program with reset: the old store is
	// discarded, and its provenance (which refers to summaries that no
	// longer exist) must go with it.
	d2, err := store.OpenDisk(dir, store.NewFingerprint("test", "prog-b"), true)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if _, err := os.Stat(filepath.Join(dir, store.ProvName)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("reset must remove the sidecar, stat err = %v", err)
	}
	if recs, err := d2.LoadProv(); err != nil || len(recs) != 0 {
		t.Fatalf("after reset LoadProv = %v, %v", recs, err)
	}
}

func TestMemProvMatchesDisk(t *testing.T) {
	m := store.NewMem()
	if recs, err := m.LoadProv(); err != nil || len(recs) != 0 {
		t.Fatalf("fresh Mem LoadProv = %v, %v", recs, err)
	}
	if err := m.PutProv(provRec("main", "dist", 2)); err != nil {
		t.Fatal(err)
	}
	recs, err := m.LoadProv()
	if err != nil || len(recs) != 1 {
		t.Fatalf("LoadProv = %v, %v", recs, err)
	}
	if recs[0].Engine != "dist" || len(recs[0].Reads) != 2 {
		t.Fatalf("record changed: %+v", recs[0])
	}
	// Mem applies the same durability guard as Disk.
	bad := provRec("main", "dist", 1)
	bad.Reads[0].Summary.Pre = nil
	if err := m.PutProv(bad); err == nil {
		t.Fatal("Mem must reject undurable records")
	}
}
