// Disk is the disk-backed store: an append-only segment file of
// wire-encoded, crc-guarded summary records plus a sidecar index
// mapping procedures to record offsets. The segment header carries the
// store fingerprint; opening a segment whose fingerprint does not match
// the corpus being checked fails with *MismatchError instead of
// silently warm-starting from a stale (or foreign) store.
//
// Crash tolerance is the append-only kind: a run killed mid-append
// leaves a truncated final record, which Open detects and trims; a
// stale or missing index is rebuilt from the segment, never trusted
// over it.
//
// Deletion (incremental invalidation) stays append-only at run time: a
// tombstone record marks every earlier summary of a procedure dead, and
// the next reopen compacts the segment — rewrites it without the dead
// records or the tombstones via tmp+rename, the same atomicity
// discipline as the index. A crash at any point leaves either the old
// segment (tombstones intact, still honored on scan) or the compacted
// one; no intermediate state is visible.
package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/summary"
	"repro/internal/wire"
)

const (
	segMagic   = "BOLTSEG1"
	idxMagic   = "BOLTIDX1"
	segVersion = 1
	// SegName and IdxName are the file names inside a store directory.
	SegName = "summaries.seg"
	IdxName = "summaries.idx"

	segHeaderSize = len(segMagic) + 1 + len(Fingerprint{})
	maxRecordLen  = 1 << 24
)

// Disk is the disk-backed Store. All methods are safe for concurrent
// use.
type Disk struct {
	mu     sync.Mutex
	dir    string
	fp     Fingerprint
	f      *os.File
	size   int64 // current segment length (all complete records)
	count  int
	keys   map[string]string  // canonical payload -> procedure
	byProc map[string][]int64 // record offsets per procedure
	dirty  bool               // index out of date on disk
	closed bool
	// needCompact is set when the scan saw tombstones: the segment holds
	// dead records and gets rewritten before the store is handed out.
	needCompact bool
}

// OpenDisk opens (or creates) the summary store in dir for the given
// fingerprint. A store written under a different fingerprint is
// rejected with *MismatchError unless reset is true, in which case it
// is explicitly discarded and recreated empty — stale contents are
// never silently reused either way.
func OpenDisk(dir string, fp Fingerprint, reset bool) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	d := &Disk{
		dir:    dir,
		fp:     fp,
		keys:   map[string]string{},
		byProc: map[string][]int64{},
	}
	segPath := filepath.Join(dir, SegName)
	data, err := os.ReadFile(segPath)
	switch {
	case errors.Is(err, os.ErrNotExist):
		if err := d.createSegment(segPath); err != nil {
			return nil, err
		}
	case err != nil:
		return nil, fmt.Errorf("store: %w", err)
	default:
		got, err := parseSegHeader(segPath, data)
		if err != nil {
			return nil, err
		}
		if got != fp {
			if !reset {
				return nil, &MismatchError{Path: segPath, Want: fp, Got: got}
			}
			if err := d.createSegment(segPath); err != nil {
				return nil, err
			}
			break
		}
		if err := d.scanSegment(segPath, data); err != nil {
			return nil, err
		}
		if d.needCompact {
			if err := d.compactSegment(segPath, data); err != nil {
				return nil, err
			}
		}
	}
	if d.f == nil {
		f, err := os.OpenFile(segPath, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		d.f = f
	}
	d.checkIndex()
	return d, nil
}

// Fingerprint returns the fingerprint the store was opened with.
func (d *Disk) Fingerprint() Fingerprint { return d.fp }

// Count returns the number of stored summaries.
func (d *Disk) Count() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.count
}

func (d *Disk) createSegment(segPath string) error {
	f, err := os.Create(segPath)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	hdr := make([]byte, 0, segHeaderSize)
	hdr = append(hdr, segMagic...)
	hdr = append(hdr, segVersion)
	hdr = append(hdr, d.fp[:]...)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	d.f = f
	d.size = int64(segHeaderSize)
	d.dirty = true
	// Drop any index, provenance, or manifest sidecar left over from a
	// discarded store (they refer to summaries that no longer exist).
	_ = os.Remove(filepath.Join(d.dir, IdxName))
	_ = os.Remove(filepath.Join(d.dir, ProvName))
	_ = os.Remove(filepath.Join(d.dir, ManName))
	return nil
}

func parseSegHeader(path string, data []byte) (Fingerprint, error) {
	var fp Fingerprint
	if len(data) < segHeaderSize || string(data[:len(segMagic)]) != segMagic {
		return fp, fmt.Errorf("store: %s is not a summary store segment", path)
	}
	if v := data[len(segMagic)]; v != segVersion {
		return fp, fmt.Errorf("store: %s has segment version %d, this build reads version %d", path, v, segVersion)
	}
	copy(fp[:], data[len(segMagic)+1:segHeaderSize])
	return fp, nil
}

// scanSegment walks every record, building the dedup set and the
// per-procedure offset index. A truncated final record (a crashed
// append) is trimmed off; a corrupt record in the middle of the file is
// an error — the store's contents can no longer be trusted. A tombstone
// drops every summary of its procedure appended before it (later
// re-Puts of the same procedure are live again) and flags the segment
// for compaction.
func (d *Disk) scanSegment(segPath string, data []byte) error {
	pos := int64(segHeaderSize)
	for pos < int64(len(data)) {
		payload, next, err := parseRecord(data, pos)
		if err != nil {
			var tr *truncatedError
			if errors.As(err, &tr) {
				// Crash-truncated tail: trim to the last full record.
				if terr := os.Truncate(segPath, pos); terr != nil {
					return fmt.Errorf("store: trimming truncated record at offset %d: %w", pos, terr)
				}
				break
			}
			return fmt.Errorf("store: %s: %w", segPath, err)
		}
		if wire.IsTombstone(payload) {
			proc, _, err := wire.DecodeTombstone(payload)
			if err != nil {
				return fmt.Errorf("store: %s: record at offset %d: %w", segPath, pos, err)
			}
			d.count -= len(d.byProc[proc])
			delete(d.byProc, proc)
			for key, p := range d.keys {
				if p == proc {
					delete(d.keys, key)
				}
			}
			d.needCompact = true
			pos = next
			continue
		}
		s, _, err := wire.DecodeSummary(payload)
		if err != nil {
			return fmt.Errorf("store: %s: record at offset %d: %w", segPath, pos, err)
		}
		if _, dup := d.keys[string(payload)]; !dup {
			d.keys[string(payload)] = s.Proc
			d.byProc[s.Proc] = append(d.byProc[s.Proc], pos)
			d.count++
		}
		pos = next
	}
	d.size = pos
	return nil
}

// compactSegment rewrites the segment without dead records or
// tombstones. The new segment is assembled in memory from the live
// offsets the scan produced and swapped in with tmp+rename; the
// in-memory index is rebuilt against the new offsets, and the sidecar
// index (now stale by size) is rewritten on the next flush.
func (d *Disk) compactSegment(segPath string, data []byte) error {
	live := make([]int64, 0, d.count)
	for _, offs := range d.byProc {
		live = append(live, offs...)
	}
	sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })
	buf := make([]byte, 0, segHeaderSize)
	buf = append(buf, segMagic...)
	buf = append(buf, segVersion)
	buf = append(buf, d.fp[:]...)
	byProc := map[string][]int64{}
	keys := map[string]string{}
	for _, off := range live {
		payload, next, err := parseRecord(data, off)
		if err != nil {
			return fmt.Errorf("store: compacting: %w", err)
		}
		s, _, err := wire.DecodeSummary(payload)
		if err != nil {
			return fmt.Errorf("store: compacting record at offset %d: %w", off, err)
		}
		byProc[s.Proc] = append(byProc[s.Proc], int64(len(buf)))
		keys[string(payload)] = s.Proc
		buf = append(buf, data[off:next]...)
	}
	tmp := segPath + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("store: compacting: %w", err)
	}
	if err := os.Rename(tmp, segPath); err != nil {
		return fmt.Errorf("store: compacting: %w", err)
	}
	d.byProc = byProc
	d.keys = keys
	d.size = int64(len(buf))
	d.needCompact = false
	d.dirty = true
	return nil
}

// DeleteProcs discards every summary of the given procedures (all
// stored procedures when procs is nil or empty) by appending one
// tombstone record per affected procedure. The segment is compacted on
// the next reopen; until then reads honor the tombstones through the
// in-memory index updated here. Returns summaries removed per
// procedure.
func (d *Disk) DeleteProcs(procs []string) (map[string]int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, fmt.Errorf("store: delete on closed store")
	}
	if len(procs) == 0 {
		procs = make([]string, 0, len(d.byProc))
		for p := range d.byProc {
			procs = append(procs, p)
		}
	}
	sort.Strings(procs)
	removed := map[string]int{}
	for _, proc := range procs {
		n := len(d.byProc[proc])
		if n == 0 {
			continue
		}
		payload, err := wire.AppendTombstone(nil, proc)
		if err != nil {
			return removed, fmt.Errorf("store: %w", err)
		}
		rec := binary.AppendUvarint(nil, uint64(len(payload)))
		rec = append(rec, payload...)
		rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))
		if _, err := d.f.Write(rec); err != nil {
			return removed, fmt.Errorf("store: %w", err)
		}
		removed[proc] = n
		d.count -= n
		delete(d.byProc, proc)
		for key, p := range d.keys {
			if p == proc {
				delete(d.keys, key)
			}
		}
		d.size += int64(len(rec))
		d.dirty = true
	}
	return removed, nil
}

type truncatedError struct{ off int64 }

func (e *truncatedError) Error() string {
	return fmt.Sprintf("truncated record at offset %d", e.off)
}

// parseRecord reads the record at pos: uvarint payload length, payload,
// crc32(payload). It returns the payload and the offset of the next
// record.
func parseRecord(data []byte, pos int64) (payload []byte, next int64, err error) {
	plen, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return nil, 0, &truncatedError{pos}
	}
	if plen > maxRecordLen {
		return nil, 0, fmt.Errorf("record at offset %d: length %d exceeds %d", pos, plen, maxRecordLen)
	}
	body := pos + int64(n)
	end := body + int64(plen) + 4
	if end > int64(len(data)) {
		return nil, 0, &truncatedError{pos}
	}
	payload = data[body : body+int64(plen)]
	want := binary.LittleEndian.Uint32(data[body+int64(plen) : end])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, 0, fmt.Errorf("record at offset %d: checksum mismatch (corrupt store)", pos)
	}
	return payload, end, nil
}

// Load returns every stored summary by scanning the segment.
func (d *Disk) Load() ([]summary.Summary, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, fmt.Errorf("store: load on closed store")
	}
	procs := make([]string, 0, len(d.byProc))
	for p := range d.byProc {
		procs = append(procs, p)
	}
	sort.Strings(procs)
	var out []summary.Summary
	for _, p := range procs {
		sums, err := d.readOffsets(d.byProc[p])
		if err != nil {
			return nil, err
		}
		out = append(out, sums...)
	}
	return out, nil
}

// LoadProc returns only proc's summaries, reading just that
// procedure's records via the offset index — the selective-load path a
// sharded multi-process deployment uses to hydrate one node.
func (d *Disk) LoadProc(proc string) ([]summary.Summary, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, fmt.Errorf("store: load on closed store")
	}
	return d.readOffsets(d.byProc[proc])
}

func (d *Disk) readOffsets(offsets []int64) ([]summary.Summary, error) {
	if len(offsets) == 0 {
		return nil, nil
	}
	data, err := os.ReadFile(filepath.Join(d.dir, SegName))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	out := make([]summary.Summary, 0, len(offsets))
	for _, off := range offsets {
		payload, _, err := parseRecord(data, off)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		s, _, err := wire.DecodeSummary(payload)
		if err != nil {
			return nil, fmt.Errorf("store: record at offset %d: %w", off, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// Put appends one summary record, deduplicated by canonical wire key.
// The wire encoder is the durability guard: a summary whose fields
// carry a process-local "#id"/"!" key is refused before any byte
// reaches disk.
func (d *Disk) Put(s summary.Summary) (bool, error) {
	payload, err := wire.AppendSummary(nil, s)
	if err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false, fmt.Errorf("store: put on closed store")
	}
	if _, dup := d.keys[string(payload)]; dup {
		return false, nil
	}
	rec := binary.AppendUvarint(nil, uint64(len(payload)))
	rec = append(rec, payload...)
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))
	if _, err := d.f.Write(rec); err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	d.keys[string(payload)] = s.Proc
	d.byProc[s.Proc] = append(d.byProc[s.Proc], d.size)
	d.size += int64(len(rec))
	d.count++
	d.dirty = true
	return true, nil
}

// Flush fsyncs the segment and rewrites the index.
func (d *Disk) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.flushLocked()
}

func (d *Disk) flushLocked() error {
	if d.closed {
		return nil
	}
	if err := d.f.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if !d.dirty {
		return nil
	}
	if err := d.writeIndex(); err != nil {
		return err
	}
	d.dirty = false
	return nil
}

// Close flushes and releases the store.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	err := d.flushLocked()
	d.closed = true
	if cerr := d.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeIndex renders the per-procedure offset index:
// magic, fingerprint, segment size, record count, then per procedure
// its name and sorted record offsets. The (fingerprint, segment size)
// pair is the validity stamp: an index that does not match the segment
// byte-for-byte in both is stale and gets rebuilt from the segment.
func (d *Disk) writeIndex() error {
	buf := make([]byte, 0, 256)
	buf = append(buf, idxMagic...)
	buf = append(buf, d.fp[:]...)
	buf = binary.AppendUvarint(buf, uint64(d.size))
	buf = binary.AppendUvarint(buf, uint64(d.count))
	procs := make([]string, 0, len(d.byProc))
	for p := range d.byProc {
		procs = append(procs, p)
	}
	sort.Strings(procs)
	buf = binary.AppendUvarint(buf, uint64(len(procs)))
	for _, p := range procs {
		buf = binary.AppendUvarint(buf, uint64(len(p)))
		buf = append(buf, p...)
		offs := d.byProc[p]
		buf = binary.AppendUvarint(buf, uint64(len(offs)))
		for _, off := range offs {
			buf = binary.AppendUvarint(buf, uint64(off))
		}
	}
	tmp := filepath.Join(d.dir, IdxName+".tmp")
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, IdxName)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// checkIndex compares the on-disk index against the scan-derived truth
// and schedules a rewrite when the index is missing, stale, or does not
// match the segment. The segment is always authoritative.
func (d *Disk) checkIndex() {
	idx, err := readIndex(filepath.Join(d.dir, IdxName))
	if err != nil || idx.fp != d.fp || idx.segSize != d.size || idx.count != d.count {
		d.dirty = true
		return
	}
	for p, offs := range d.byProc {
		got := idx.byProc[p]
		if len(got) != len(offs) {
			d.dirty = true
			return
		}
		for i := range offs {
			if got[i] != offs[i] {
				d.dirty = true
				return
			}
		}
	}
}

type diskIndex struct {
	fp      Fingerprint
	segSize int64
	count   int
	byProc  map[string][]int64
}

func readIndex(path string) (*diskIndex, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := bytes.NewReader(data)
	magic := make([]byte, len(idxMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != idxMagic {
		return nil, fmt.Errorf("store: %s is not a summary store index", path)
	}
	idx := &diskIndex{byProc: map[string][]int64{}}
	if _, err := io.ReadFull(r, idx.fp[:]); err != nil {
		return nil, fmt.Errorf("store: %s: truncated index", path)
	}
	segSize, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("store: %s: truncated index", path)
	}
	idx.segSize = int64(segSize)
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("store: %s: truncated index", path)
	}
	idx.count = int(count)
	nprocs, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("store: %s: truncated index", path)
	}
	for i := uint64(0); i < nprocs; i++ {
		nameLen, err := binary.ReadUvarint(r)
		if err != nil || nameLen > maxRecordLen {
			return nil, fmt.Errorf("store: %s: corrupt index", path)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, fmt.Errorf("store: %s: truncated index", path)
		}
		noffs, err := binary.ReadUvarint(r)
		if err != nil || noffs > maxRecordLen {
			return nil, fmt.Errorf("store: %s: corrupt index", path)
		}
		offs := make([]int64, noffs)
		for j := range offs {
			off, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, fmt.Errorf("store: %s: truncated index", path)
			}
			offs[j] = int64(off)
		}
		idx.byProc[string(name)] = offs
	}
	return idx, nil
}
