// The disk store's provenance sidecar: verdict read sets persisted
// beside the summary segment in prov.seg, with the same framing
// (uvarint length + payload + crc32) and the same fingerprint binding.
// Provenance is written once per run and read back rarely (boltbench
// -warm attribution), so the sidecar is opened per operation instead of
// held like the segment; crash tolerance is the segment's append-only
// kind — a truncated final record is trimmed on load.

package store

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"encoding/binary"

	"repro/internal/wire"
)

const (
	provMagic   = "BOLTPRV1"
	provVersion = 1
	// ProvName is the provenance sidecar's file name inside a store
	// directory.
	ProvName = "prov.seg"
)

var provHeaderSize = len(provMagic) + 1 + len(Fingerprint{})

// PutProv appends one provenance record to the sidecar, creating it
// (stamped with the store's fingerprint) on first use. The wire encoder
// is the durability guard, exactly as for summaries.
func (d *Disk) PutProv(rec wire.ProvRecord) error {
	payload, err := wire.AppendProv(nil, rec)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("store: put on closed store")
	}
	path := filepath.Join(d.dir, ProvName)
	if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
		hdr := make([]byte, 0, provHeaderSize)
		hdr = append(hdr, provMagic...)
		hdr = append(hdr, provVersion)
		hdr = append(hdr, d.fp[:]...)
		if err := os.WriteFile(path, hdr, 0o644); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	} else if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	framed := binary.AppendUvarint(nil, uint64(len(payload)))
	framed = append(framed, payload...)
	framed = binary.LittleEndian.AppendUint32(framed, crc32.ChecksumIEEE(payload))
	if _, err := f.Write(framed); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// LoadProv returns every persisted provenance record, oldest first. A
// missing sidecar is an empty result, not an error; a sidecar written
// under a different fingerprint is rejected like a mismatched segment.
func (d *Disk) LoadProv() ([]wire.ProvRecord, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, fmt.Errorf("store: load on closed store")
	}
	path := filepath.Join(d.dir, ProvName)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if len(data) < provHeaderSize || string(data[:len(provMagic)]) != provMagic {
		return nil, fmt.Errorf("store: %s is not a provenance sidecar", path)
	}
	if v := data[len(provMagic)]; v != provVersion {
		return nil, fmt.Errorf("store: %s has sidecar version %d, this build reads version %d", path, v, provVersion)
	}
	var fp Fingerprint
	copy(fp[:], data[len(provMagic)+1:provHeaderSize])
	if fp != d.fp {
		return nil, &MismatchError{Path: path, Want: d.fp, Got: fp}
	}
	var out []wire.ProvRecord
	pos := int64(provHeaderSize)
	for pos < int64(len(data)) {
		payload, next, err := parseRecord(data, pos)
		if err != nil {
			var tr *truncatedError
			if errors.As(err, &tr) {
				// Crash-truncated tail: return the complete prefix.
				break
			}
			return nil, fmt.Errorf("store: %s: %w", path, err)
		}
		rec, _, err := wire.DecodeProv(payload)
		if err != nil {
			return nil, fmt.Errorf("store: %s: record at offset %d: %w", path, pos, err)
		}
		out = append(out, rec)
		pos = next
	}
	return out, nil
}
