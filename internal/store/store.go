// Package store implements the persistent summary store behind the
// engines' warm-start path: a SummaryStore interface with the existing
// 32-way striped in-memory SUMDB as one backend (Mem) and an
// append-only, fingerprinted disk segment as another (Disk).
//
// Everything a store holds went through internal/wire, so its contents
// are canonical cross-process bytes — never the process-local
// "#<intern-id>" keys the in-memory hot path uses. A disk store is
// bound to a fingerprint of the corpus/driver it was built from; a
// store whose fingerprint does not match is rejected with a
// *MismatchError, never silently reused.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/summary"
	"repro/internal/wire"
)

// Store is a persistent (or shareable) summary collection. All methods
// are safe for concurrent use.
type Store interface {
	// Load returns every stored summary. The engines feed the result
	// into a fresh SUMDB before the first MAP stage (warm start).
	Load() ([]summary.Summary, error)
	// Put persists one summary, deduplicated by canonical wire key;
	// added reports whether the summary was new to the store.
	Put(s summary.Summary) (added bool, err error)
	// Flush makes every Put durable (fsync + index rewrite for the
	// disk backend; a no-op for the in-memory backend).
	Flush() error
	// Close flushes and releases the store.
	Close() error
}

// ProvStore is the optional provenance capability: stores that persist
// verdict read sets beside the summaries implement it (both backends in
// this package do). Callers type-assert, so a minimal external Store
// implementation keeps working without provenance.
type ProvStore interface {
	// PutProv persists one verdict's provenance record.
	PutProv(rec wire.ProvRecord) error
	// LoadProv returns every stored provenance record, oldest first.
	LoadProv() ([]wire.ProvRecord, error)
}

// Deleter is the optional invalidation capability incremental
// re-analysis needs: discard every summary belonging to the given
// procedures. A nil or empty slice means "delete everything" — the
// full-invalidation path a re-check takes when it has no manifest to
// diff against. Returns the number of summaries removed per procedure
// (the distributed engine routes these counts to the owning nodes).
// The disk backend deletes by appending tombstone records and compacts
// the segment on the next reopen; the in-memory backend deletes
// eagerly. Both implement it.
type Deleter interface {
	DeleteProcs(procs []string) (map[string]int, error)
}

// ManifestStore is the optional edit-detection capability: a manifest
// maps every procedure of the analyzed program to its content
// fingerprint, persisted beside the summaries so the next run can diff
// the program it sees against the program the summaries were computed
// from. A missing manifest loads as nil — the caller must then treat
// every stored summary as potentially stale. Both backends implement
// it.
type ManifestStore interface {
	// PutManifest atomically replaces the stored manifest.
	PutManifest(m map[string]Fingerprint) error
	// LoadManifest returns the stored manifest, or nil when none was
	// ever written.
	LoadManifest() (map[string]Fingerprint, error)
}

// Fingerprint identifies the corpus/driver + analysis + wire version a
// store's contents are valid for.
type Fingerprint [sha256.Size]byte

// NewFingerprint hashes the given parts (length-prefixed, so part
// boundaries are unambiguous) into a store fingerprint. Callers include
// the wire version, the analysis name, and the full program text, so
// any change to what the summaries mean invalidates the store.
func NewFingerprint(parts ...string) Fingerprint {
	h := sha256.New()
	var lenBuf [binary.MaxVarintLen64]byte
	for _, p := range parts {
		n := binary.PutUvarint(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:n])
		h.Write([]byte(p))
	}
	var fp Fingerprint
	copy(fp[:], h.Sum(nil))
	return fp
}

func (fp Fingerprint) String() string { return hex.EncodeToString(fp[:8]) }

// Mem is the in-memory backend: the same 32-way striped summary
// database the engines share in-process, fronted by a canonical-key
// dedup set. It is the natural store for a long-lived server sharing
// warm summaries across requests without touching disk.
type Mem struct {
	mu       sync.Mutex
	keys     map[string]string // canonical wire key -> procedure
	db       *summary.DB
	prov     []wire.ProvRecord
	manifest map[string]Fingerprint
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{keys: map[string]string{}, db: summary.New(nil)}
}

// Load returns the stored summaries.
func (m *Mem) Load() ([]summary.Summary, error) { return m.db.All(), nil }

// Put stores s, deduplicated by canonical wire key.
func (m *Mem) Put(s summary.Summary) (bool, error) {
	key, err := wire.SummaryKey(s)
	if err != nil {
		return false, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.keys[key]; dup {
		return false, nil
	}
	m.keys[key] = s.Proc
	m.db.Add(s)
	return true, nil
}

// DeleteProcs removes every summary of the given procedures (all of
// them when procs is nil or empty) and reports how many were removed
// per procedure. The backing SUMDB has no removal operation, so the
// surviving summaries are rebuilt into a fresh database under the lock.
func (m *Mem) DeleteProcs(procs []string) (map[string]int, error) {
	all := len(procs) == 0
	doomed := make(map[string]bool, len(procs))
	for _, p := range procs {
		doomed[p] = true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	removed := map[string]int{}
	keep := map[string]string{}
	for key, proc := range m.keys {
		if all || doomed[proc] {
			removed[proc]++
		} else {
			keep[key] = proc
		}
	}
	if len(removed) == 0 {
		return removed, nil
	}
	db := summary.New(nil)
	for _, s := range m.db.All() {
		if !(all || doomed[s.Proc]) {
			db.Add(s)
		}
	}
	m.keys = keep
	m.db = db
	return removed, nil
}

// PutManifest replaces the stored manifest with a copy of m2.
func (m *Mem) PutManifest(m2 map[string]Fingerprint) error {
	cp := make(map[string]Fingerprint, len(m2))
	for k, v := range m2 {
		cp[k] = v
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.manifest = cp
	return nil
}

// LoadManifest returns a copy of the stored manifest, or nil when none
// was ever written.
func (m *Mem) LoadManifest() (map[string]Fingerprint, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.manifest == nil {
		return nil, nil
	}
	cp := make(map[string]Fingerprint, len(m.manifest))
	for k, v := range m.manifest {
		cp[k] = v
	}
	return cp, nil
}

// PutProv stores one provenance record. The record is validated by a
// round trip through its wire encoding, so the in-memory backend
// rejects exactly what the disk backend would.
func (m *Mem) PutProv(rec wire.ProvRecord) error {
	if _, err := wire.AppendProv(nil, rec); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.prov = append(m.prov, rec)
	return nil
}

// LoadProv returns the stored provenance records, oldest first.
func (m *Mem) LoadProv() ([]wire.ProvRecord, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]wire.ProvRecord(nil), m.prov...), nil
}

// Flush is a no-op for the in-memory backend.
func (m *Mem) Flush() error { return nil }

// Close is a no-op for the in-memory backend.
func (m *Mem) Close() error { return nil }

// Count returns the number of stored summaries.
func (m *Mem) Count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.keys)
}

// MismatchError reports a store whose fingerprint does not match the
// corpus/driver being checked. The store is rejected: warm-starting
// from summaries of a different program (or a different wire version)
// would be unsound, so the caller must either point at the right store
// or explicitly recreate this one.
type MismatchError struct {
	Path string
	Want Fingerprint
	Got  Fingerprint
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf(
		"store: %s holds summaries for a different corpus/driver (store fingerprint %s, expected %s); refusing to reuse a stale store — point at the matching store or recreate this one explicitly",
		e.Path, e.Got, e.Want)
}
