package store_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/logic"
	"repro/internal/store"
	"repro/internal/summary"
	"repro/internal/wire"
)

func sum(proc string, k int64) summary.Summary {
	x := logic.LinVar("x")
	return summary.Summary{
		Kind: summary.NotMay,
		Proc: proc,
		Pre:  logic.LE(x.AddConst(-k)),
		Post: logic.EQ(x.AddConst(k)),
	}
}

func keysOf(t *testing.T, sums []summary.Summary) []string {
	t.Helper()
	var keys []string
	for _, s := range sums {
		k, err := wire.SummaryKey(s)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, fmt.Sprintf("%x", k))
	}
	sort.Strings(keys)
	return keys
}

func sameSet(t *testing.T, got, want []summary.Summary) {
	t.Helper()
	g, w := keysOf(t, got), keysOf(t, want)
	if len(g) != len(w) {
		t.Fatalf("got %d summaries, want %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("summary sets differ at %d:\n %s\n %s", i, g[i], w[i])
		}
	}
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fp := store.NewFingerprint("test", "prog-a")
	d, err := store.OpenDisk(dir, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	var put []summary.Summary
	for i := 0; i < 5; i++ {
		s := sum(fmt.Sprintf("proc%d", i%3), int64(i))
		put = append(put, s)
		added, err := d.Put(s)
		if err != nil {
			t.Fatal(err)
		}
		if !added {
			t.Fatalf("Put #%d reported duplicate", i)
		}
	}
	// Duplicate put is a no-op.
	if added, err := d.Put(put[0]); err != nil || added {
		t.Fatalf("duplicate Put: added=%v err=%v", added, err)
	}
	if d.Count() != 5 {
		t.Fatalf("Count = %d, want 5", d.Count())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything persisted survives the process boundary.
	d2, err := store.OpenDisk(dir, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got, err := d2.Load()
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, put)

	// Selective load through the index.
	p0, err := d2.LoadProc("proc0")
	if err != nil {
		t.Fatal(err)
	}
	if len(p0) != 2 { // i = 0, 3
		t.Fatalf("LoadProc(proc0) = %d summaries, want 2", len(p0))
	}
	if none, err := d2.LoadProc("absent"); err != nil || len(none) != 0 {
		t.Fatalf("LoadProc(absent) = %v, %v", none, err)
	}
}

func TestDiskRejectsStaleFingerprint(t *testing.T) {
	dir := t.TempDir()
	d, err := store.OpenDisk(dir, store.NewFingerprint("test", "prog-a"), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Put(sum("p", 1)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	_, err = store.OpenDisk(dir, store.NewFingerprint("test", "prog-b"), false)
	var mm *store.MismatchError
	if !errors.As(err, &mm) {
		t.Fatalf("opening with a different fingerprint: %v, want *MismatchError", err)
	}

	// reset=true is the explicit escape hatch: recreate empty.
	d2, err := store.OpenDisk(dir, store.NewFingerprint("test", "prog-b"), true)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Count() != 0 {
		t.Fatalf("reset store has %d summaries, want 0", d2.Count())
	}
	got, err := d2.Load()
	if err != nil || len(got) != 0 {
		t.Fatalf("reset store Load = %v, %v", got, err)
	}
}

func TestDiskTrimsCrashTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	fp := store.NewFingerprint("test", "prog")
	d, err := store.OpenDisk(dir, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := d.Put(sum("p", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: half a record at the tail.
	seg := filepath.Join(dir, store.SegName)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x53, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d2, err := store.OpenDisk(dir, fp, false)
	if err != nil {
		t.Fatalf("reopen after truncated tail: %v", err)
	}
	defer d2.Close()
	if d2.Count() != 3 {
		t.Fatalf("Count = %d after tail trim, want 3", d2.Count())
	}
	// The trim is physical: a third reopen sees a clean segment.
	got, err := d2.Load()
	if err != nil || len(got) != 3 {
		t.Fatalf("Load after trim = %d summaries, %v", len(got), err)
	}
}

func TestDiskRejectsMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	fp := store.NewFingerprint("test", "prog")
	d, err := store.OpenDisk(dir, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := d.Put(sum("p", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	seg := filepath.Join(dir, store.SegName)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the first record (just past the 41-byte
	// header and the record's 1-byte length prefix): the crc must catch
	// it.
	data[43] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.OpenDisk(dir, fp, false); err == nil {
		t.Fatal("opened a store with a corrupt interior record")
	}
}

func TestDiskRebuildsStaleIndex(t *testing.T) {
	dir := t.TempDir()
	fp := store.NewFingerprint("test", "prog")
	d, err := store.OpenDisk(dir, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	want := []summary.Summary{sum("a", 1), sum("b", 2)}
	for _, s := range want {
		if _, err := d.Put(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	for name, corrupt := range map[string]func(string) error{
		"missing": os.Remove,
		"garbage": func(p string) error { return os.WriteFile(p, []byte("not an index"), 0o644) },
	} {
		t.Run(name, func(t *testing.T) {
			if err := corrupt(filepath.Join(dir, store.IdxName)); err != nil {
				t.Fatal(err)
			}
			d2, err := store.OpenDisk(dir, fp, false)
			if err != nil {
				t.Fatal(err)
			}
			got, err := d2.Load()
			if err != nil {
				t.Fatal(err)
			}
			sameSet(t, got, want)
			if err := d2.Close(); err != nil {
				t.Fatal(err)
			}
			// Close rewrote the index; it must exist and be valid again.
			if _, err := os.Stat(filepath.Join(dir, store.IdxName)); err != nil {
				t.Fatalf("index not rewritten: %v", err)
			}
		})
	}
}

// TestDiskRefusesVolatileKeys: the disk encoder is a durability choke
// point — a summary carrying a process-local logic.Key in its proc field
// is refused before any byte reaches the segment.
func TestDiskRefusesVolatileKeys(t *testing.T) {
	dir := t.TempDir()
	d, err := store.OpenDisk(dir, store.NewFingerprint("test"), false)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s := sum("p", 1)
	s.Proc = logic.Key(s.Pre) // "#<intern-id>"
	if _, err := d.Put(s); !errors.Is(err, wire.ErrVolatileKey) {
		t.Fatalf("Put with volatile proc key: %v, want ErrVolatileKey", err)
	}
	if d.Count() != 0 {
		t.Fatalf("refused Put still counted: %d", d.Count())
	}
}

// TestMemMatchesDisk: the in-memory backend implements the same
// contract — dedup by canonical key, Load returns everything Put.
func TestMemMatchesDisk(t *testing.T) {
	m := store.NewMem()
	dir := t.TempDir()
	d, err := store.OpenDisk(dir, store.NewFingerprint("test"), false)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var put []summary.Summary
	for i := 0; i < 4; i++ {
		s := sum(fmt.Sprintf("p%d", i%2), int64(i))
		put = append(put, s)
		for _, st := range []store.Store{m, d} {
			added, err := st.Put(s)
			if err != nil || !added {
				t.Fatalf("Put: added=%v err=%v", added, err)
			}
			if added, _ := st.Put(s); added {
				t.Fatal("duplicate Put reported added")
			}
		}
	}
	if m.Count() != d.Count() {
		t.Fatalf("Mem count %d != Disk count %d", m.Count(), d.Count())
	}
	ml, err := m.Load()
	if err != nil {
		t.Fatal(err)
	}
	dl, err := d.Load()
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, ml, put)
	sameSet(t, dl, put)
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	s := put[0]
	s.Proc = "!volatile"
	if _, err := m.Put(s); !errors.Is(err, wire.ErrVolatileKey) {
		t.Fatalf("Mem accepted a volatile key: %v", err)
	}
}
