package drivers

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/punch/maymust"
)

func TestAllDriversParse(t *testing.T) {
	for _, check := range SuiteChecks() {
		src := Source(check.Config)
		if _, err := parser.Parse(src); err != nil {
			t.Fatalf("%s does not parse: %v\n%s", check.ID(), err, src)
		}
	}
}

func TestGenerationDeterministic(t *testing.T) {
	c := NamedCheck("toastmon", "PnpIrpCompletion", false).Config
	if Source(c) != Source(c) {
		t.Fatal("generation is not deterministic")
	}
}

func TestSafeDriversNeverFailConcretely(t *testing.T) {
	// Concrete oracle: random executions of safe drivers must never raise
	// the error flag. This validates the monitors' safe-op discipline.
	for _, d := range []string{"toastmon", "parport", "daytona"} {
		for _, p := range PropertyNames() {
			prog := Generate(NamedCheck(d, p, false).Config)
			for seed := int64(0); seed < 10; seed++ {
				res := interp.Run(prog, interp.Options{Rand: rand.New(rand.NewSource(seed)), MaxSteps: 50000})
				if !res.Completed {
					t.Fatalf("%s/%s seed %d: execution incomplete (%+v)", d, p, seed, res)
				}
				if res.Final[parser.ErrVar] != 0 {
					t.Fatalf("%s/%s seed %d: safe driver raised the error flag", d, p, seed)
				}
			}
		}
	}
}

func TestBuggyDriversFailConcretely(t *testing.T) {
	// Each buggy variant must exhibit at least one failing execution.
	for _, p := range PropertyNames() {
		prog := Generate(NamedCheck("parport", p, true).Config)
		failed := false
		for seed := int64(0); seed < 200 && !failed; seed++ {
			res := interp.Run(prog, interp.Options{Rand: rand.New(rand.NewSource(seed)), MaxSteps: 50000})
			failed = res.Completed && res.Final[parser.ErrVar] != 0
		}
		if !failed {
			t.Errorf("parport/%s buggy variant never failed in 200 random runs", p)
		}
	}
}

func TestVerifierProvesSmallSafeChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("verification of generated drivers is not short")
	}
	check := NamedCheck("parport", "PnpIrpCompletion", false)
	prog := Generate(check.Config)
	eng := core.New(prog, core.Options{Punch: maymust.New(), MaxThreads: 4, MaxIterations: 4000, CheckContract: true})
	res := eng.Run(core.AssertionQuestion(prog))
	if res.Verdict != core.Safe {
		t.Fatalf("%s: verdict %v (%d queries, %d iters)", check.ID(), res.Verdict, res.TotalQueries, res.Iterations)
	}
}

func TestVerifierFindsInjectedBug(t *testing.T) {
	if testing.Short() {
		t.Skip("verification of generated drivers is not short")
	}
	check := NamedCheck("parport", "NsRemoveLockMnRemove", true)
	prog := Generate(check.Config)
	eng := core.New(prog, core.Options{Punch: maymust.New(), MaxThreads: 4, MaxIterations: 4000, CheckContract: true})
	res := eng.Run(core.AssertionQuestion(prog))
	if res.Verdict != core.ErrorReachable {
		t.Fatalf("%s: verdict %v, want ErrorReachable", check.ID(), res.Verdict)
	}
}

func TestSuiteShape(t *testing.T) {
	named := Named()
	if len(named) != 45 {
		t.Fatalf("roster has %d drivers, want 45 (the paper's suite size)", len(named))
	}
	for _, want := range []string{"toastmon", "parport", "daytona", "mouser", "featured1", "incomplete2", "selsusp"} {
		found := false
		for _, d := range named {
			if d.Name == want {
				found = true
			}
		}
		if !found {
			t.Errorf("named driver %s missing", want)
		}
	}
	checks := SuiteChecks()
	if len(checks) != 45*len(PropertyNames()) {
		t.Fatalf("check matrix = %d, want %d", len(checks), 45*len(PropertyNames()))
	}
	seen := map[string]bool{}
	for _, c := range checks {
		if seen[c.ID()] {
			t.Fatalf("duplicate check %s", c.ID())
		}
		seen[c.ID()] = true
	}
}

func TestPropertyCatalogueComplete(t *testing.T) {
	for _, name := range PropertyNames() {
		p := Properties[name]
		if p.Init == "" || p.Assert == "" || p.BugOp == "" || p.SafeOp == nil {
			t.Errorf("property %s is missing pieces", name)
		}
		if len(p.Globals) == 0 {
			t.Errorf("property %s declares no globals", name)
		}
	}
}
