// Package drivers generates the synthetic device-driver benchmark suite
// that stands in for the paper's 45 Microsoft Windows drivers and 150 SDV
// safety properties (which are proprietary). Drivers are produced as
// source text in the reproduction's input language and exercise the same
// analysis behaviours the paper's evaluation depends on: a dispatch
// routine fanning out to many subroutines (the parallelism of Fig. 3),
// shared helpers (summary reuse), branching and loops (refinement cost),
// and SDV-style safety monitors over dedicated globals (lock discipline,
// IRQL rules, power-state protocols) compiled to assertions.
//
// Generation is deterministic: the same configuration always yields the
// same program.
package drivers

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/cfg"
	"repro/internal/parser"
)

// Config parameterizes one generated driver.
type Config struct {
	// Name of the driver (used to seed generation).
	Name string
	// Fanout is the number of subroutines the dispatch routine calls.
	Fanout int
	// Depth is the call-chain depth below the dispatch routine.
	Depth int
	// Shared is the number of shared helper procedures reachable from
	// every chain (exercises SUMDB reuse).
	Shared int
	// Work scales the arithmetic/loop filler per procedure (the analysis
	// cost dial).
	Work int
	// Property is the safety property to weave in (a key of Properties).
	Property string
	// Buggy injects a property violation in one subroutine.
	Buggy bool
}

// Property is an SDV-style safety monitor: globals it owns, statements
// initializing it at dispatch entry, safe (or violating) operation
// snippets woven into subroutines, and a final assertion.
type Property struct {
	Name    string
	Globals []string
	Init    string
	// SafeOp and BugOp emit one monitor operation; lvl is the call depth.
	SafeOp func(r *rand.Rand, lvl int) string
	BugOp  string
	Assert string
}

// Properties is the catalogue of safety properties, keyed by the SDV-style
// names the paper's tables use.
var Properties = map[string]Property{
	"PendedCompletedRequest": {
		// SLIC-style monitor automaton over one state variable:
		// 0 = idle, 1 = pended, 2 = completed, 3 = violation
		// (a request both pended and completed).
		Name:    "PendedCompletedRequest",
		Globals: []string{"pcstate"},
		Init:    "pcstate = 0;",
		SafeOp: func(r *rand.Rand, lvl int) string {
			if r.Intn(2) == 0 {
				return "if (pcstate == 0) { pcstate = 1; }"
			}
			return "if (pcstate == 0) { pcstate = 2; }"
		},
		BugOp:  "pcstate = 3;",
		Assert: "assert(pcstate <= 2);",
	},
	"PnpIrpCompletion": {
		Name:    "PnpIrpCompletion",
		Globals: []string{"irpdone"},
		Init:    "irpdone = 0;",
		SafeOp: func(r *rand.Rand, lvl int) string {
			return "if (irpdone == 0) { irpdone = 1; } else { skip; }"
		},
		BugOp:  "irpdone = 2;",
		Assert: "assert(irpdone <= 1);",
	},
	"MarkPowerDown": {
		Name:    "MarkPowerDown",
		Globals: []string{"powstate"},
		Init:    "powstate = 0;",
		SafeOp: func(r *rand.Rand, lvl int) string {
			if r.Intn(2) == 0 {
				return "if (powstate == 0) { powstate = 1; }"
			}
			return "if (powstate == 1) { powstate = 0; }"
		},
		BugOp:  "powstate = 2;",
		Assert: "assert(powstate >= 0 && powstate <= 1);",
	},
	"PowerDownFail": {
		Name:    "PowerDownFail",
		Globals: []string{"powdown", "failed"},
		Init:    "powdown = 0; failed = 0;",
		SafeOp: func(r *rand.Rand, lvl int) string {
			if r.Intn(2) == 0 {
				return "if (failed == 0) { powdown = 1; }"
			}
			return "if (powdown == 1 && failed == 0) { powdown = 0; }"
		},
		BugOp:  "failed = 1; powdown = 1;",
		Assert: "assert(failed == 0 || powdown == 0);",
	},
	"PowerUpFail": {
		Name:    "PowerUpFail",
		Globals: []string{"powup"},
		Init:    "powup = 0;",
		SafeOp: func(r *rand.Rand, lvl int) string {
			return "if (powup == 0) { powup = 1; } else { if (powup == 1) { powup = 0; } }"
		},
		BugOp:  "powup = 3;",
		Assert: "assert(powup <= 1);",
	},
	"RemoveLockMnSurpriseRemove": {
		Name:    "RemoveLockMnSurpriseRemove",
		Globals: []string{"rlock"},
		Init:    "rlock = 0;",
		SafeOp: func(r *rand.Rand, lvl int) string {
			if r.Intn(2) == 0 {
				return "if (rlock == 0) { rlock = 1; } else { skip; }"
			}
			return "if (rlock == 1) { rlock = 0; } else { skip; }"
		},
		BugOp:  "rlock = rlock - 1;",
		Assert: "assert(rlock >= 0);",
	},
	"IoAllocateFree": {
		Name:    "IoAllocateFree",
		Globals: []string{"allocs"},
		Init:    "allocs = 0;",
		SafeOp: func(r *rand.Rand, lvl int) string {
			if r.Intn(2) == 0 {
				return "allocs = allocs + 1; allocs = allocs - 1;"
			}
			return "if (allocs > 0) { allocs = allocs - 1; allocs = allocs + 1; }"
		},
		BugOp:  "allocs = allocs - 1;",
		Assert: "assert(allocs >= 0);",
	},
	"NsRemoveLockMnRemove": {
		Name:    "NsRemoveLockMnRemove",
		Globals: []string{"nslock"},
		Init:    "nslock = 0;",
		SafeOp: func(r *rand.Rand, lvl int) string {
			return "if (nslock == 0) { nslock = 1; nslock = 0; }"
		},
		BugOp:  "nslock = 1;",
		Assert: "assert(nslock == 0);",
	},
	"ForwardedAtBadIrql": {
		Name:    "ForwardedAtBadIrql",
		Globals: []string{"irql"},
		Init:    "irql = 0;",
		SafeOp: func(r *rand.Rand, lvl int) string {
			if r.Intn(2) == 0 {
				return "if (irql < 2) { irql = irql + 1; irql = irql - 1; }"
			}
			return "skip;"
		},
		BugOp:  "irql = irql + 3;",
		Assert: "assert(irql <= 2);",
	},
	"IrqlExAllocatePool": {
		Name:    "IrqlExAllocatePool",
		Globals: []string{"irqlp"},
		Init:    "irqlp = 0;",
		SafeOp: func(r *rand.Rand, lvl int) string {
			return "if (irqlp == 0) { irqlp = 1; irqlp = 0; } else { skip; }"
		},
		BugOp:  "irqlp = 2;",
		Assert: "assert(irqlp <= 1);",
	},
	"RemoveLockForwardDeviceControl": {
		Name:    "RemoveLockForwardDeviceControl",
		Globals: []string{"fwdlock"},
		Init:    "fwdlock = 0;",
		SafeOp: func(r *rand.Rand, lvl int) string {
			if r.Intn(2) == 0 {
				return "if (fwdlock >= 0) { fwdlock = fwdlock + 1; fwdlock = fwdlock - 1; }"
			}
			return "skip;"
		},
		BugOp:  "fwdlock = 0 - 1;",
		Assert: "assert(fwdlock >= 0);",
	},
}

// PropertyNames returns the catalogue keys in sorted order.
func PropertyNames() []string {
	out := make([]string, 0, len(Properties))
	for k := range Properties {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// seedOf derives a deterministic seed from the configuration.
func seedOf(c Config) int64 {
	h := int64(1469598103934665603)
	for _, b := range []byte(c.Name + "|" + c.Property) {
		h ^= int64(b)
		h *= 1099511628211
	}
	if c.Buggy {
		h ^= 0x5bd1e995
	}
	return h
}

// Source generates the driver program text for the configuration.
func Source(c Config) string {
	prop, ok := Properties[c.Property]
	if !ok {
		panic(fmt.Sprintf("drivers: unknown property %q", c.Property))
	}
	if c.Fanout <= 0 {
		c.Fanout = 4
	}
	if c.Depth <= 0 {
		c.Depth = 2
	}
	if c.Shared < 0 {
		c.Shared = 0
	}
	if c.Work <= 0 {
		c.Work = 3
	}
	r := rand.New(rand.NewSource(seedOf(c)))

	var b strings.Builder
	fmt.Fprintf(&b, "program %s;\n", sanitize(c.Name))
	fmt.Fprintf(&b, "globals %s;\n\n", strings.Join(prop.Globals, ", "))

	// Choose where the bug goes, if any.
	bugChain, bugLevel := -1, -1
	if c.Buggy {
		bugChain = r.Intn(c.Fanout)
		bugLevel = 1 + r.Intn(c.Depth)
	}

	// Dispatch routine.
	fmt.Fprintf(&b, "proc main {\n")
	fmt.Fprintf(&b, "  %s\n", prop.Init)
	for i := 0; i < c.Fanout; i++ {
		fmt.Fprintf(&b, "  sub_%d_1();\n", i)
	}
	fmt.Fprintf(&b, "  %s\n", prop.Assert)
	fmt.Fprintf(&b, "}\n\n")

	// Call chains.
	for i := 0; i < c.Fanout; i++ {
		for lvl := 1; lvl <= c.Depth; lvl++ {
			fmt.Fprintf(&b, "proc sub_%d_%d {\n", i, lvl)
			fmt.Fprintf(&b, "  locals t, w;\n")
			emitWork(&b, r, c.Work)
			op := prop.SafeOp(r, lvl)
			if i == bugChain && lvl == bugLevel {
				op = prop.BugOp
			}
			fmt.Fprintf(&b, "  havoc t;\n")
			if lvl < c.Depth {
				// Branch to the next level and possibly a shared helper.
				next := fmt.Sprintf("sub_%d_%d();", i, lvl+1)
				alt := next
				if c.Shared > 0 {
					alt = fmt.Sprintf("shared_%d();", r.Intn(c.Shared))
				}
				fmt.Fprintf(&b, "  if (t > 0) {\n    %s\n    %s\n  } else {\n    %s\n  }\n", op, next, alt)
			} else {
				fmt.Fprintf(&b, "  if (t > 0) {\n    %s\n  } else {\n    skip;\n  }\n", op)
			}
			fmt.Fprintf(&b, "}\n\n")
		}
	}

	// Shared helpers (summary reuse between chains).
	for s := 0; s < c.Shared; s++ {
		fmt.Fprintf(&b, "proc shared_%d {\n", s)
		fmt.Fprintf(&b, "  locals w;\n")
		emitWork(&b, r, c.Work)
		fmt.Fprintf(&b, "  %s\n", Properties[c.Property].SafeOp(r, 0))
		fmt.Fprintf(&b, "}\n\n")
	}
	return b.String()
}

// emitWork writes arithmetic/loop filler that costs the analysis real
// refinement effort without affecting the monitors.
func emitWork(b *strings.Builder, r *rand.Rand, work int) {
	n := 1 + r.Intn(work)
	fmt.Fprintf(b, "  w = 0;\n")
	fmt.Fprintf(b, "  while (w < %d) { w = w + 1; }\n", n)
}

// Generate parses the generated source into a validated program.
func Generate(c Config) *cfg.Program {
	return parser.MustParse(Source(c))
}

func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_' {
			out = append(out, r)
		} else {
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "driver"
	}
	return string(out)
}

// NamedDriver describes one of the suite's drivers.
type NamedDriver struct {
	Name   string
	Fanout int
	Depth  int
	Shared int
	Work   int
}

// Named is the roster of drivers modelled on the names in the paper's
// tables plus generated fillers, 45 in total (the paper's suite size).
func Named() []NamedDriver {
	out := []NamedDriver{
		// The paper's named drivers, scaled by their reported KLOC.
		{Name: "toastmon", Fanout: 8, Depth: 3, Shared: 3, Work: 4},
		{Name: "parport", Fanout: 4, Depth: 2, Shared: 2, Work: 3},
		{Name: "daytona", Fanout: 7, Depth: 3, Shared: 2, Work: 4},
		{Name: "mouser", Fanout: 5, Depth: 3, Shared: 2, Work: 4},
		{Name: "featured1", Fanout: 8, Depth: 2, Shared: 3, Work: 5},
		{Name: "incomplete2", Fanout: 6, Depth: 3, Shared: 2, Work: 3},
		{Name: "selsusp", Fanout: 6, Depth: 2, Shared: 2, Work: 5},
	}
	for i := len(out); i < 45; i++ {
		out = append(out, NamedDriver{
			Name:   fmt.Sprintf("drv%02d", i),
			Fanout: 3 + i%6,
			Depth:  2 + i%2,
			Shared: i % 4,
			Work:   2 + i%4,
		})
	}
	return out
}

// Check identifies one driver-property verification task.
type Check struct {
	Driver   string
	Property string
	Config   Config
}

// ID renders the check's identity as used in the tables.
func (c Check) ID() string { return c.Driver + "/" + c.Property }

// SuiteChecks enumerates the full check matrix (every driver against
// every property), all safe — the paper's reported hard checks were all
// proofs.
func SuiteChecks() []Check {
	var out []Check
	props := PropertyNames()
	for _, d := range Named() {
		for _, p := range props {
			out = append(out, Check{
				Driver:   d.Name,
				Property: p,
				Config: Config{
					Name:     d.Name,
					Fanout:   d.Fanout,
					Depth:    d.Depth,
					Shared:   d.Shared,
					Work:     d.Work,
					Property: p,
				},
			})
		}
	}
	return out
}

// NamedCheck builds the check for a specific driver/property pair.
func NamedCheck(driver, property string, buggy bool) Check {
	for _, d := range Named() {
		if d.Name == driver {
			return Check{
				Driver:   driver,
				Property: property,
				Config: Config{
					Name:     driver,
					Fanout:   d.Fanout,
					Depth:    d.Depth,
					Shared:   d.Shared,
					Work:     d.Work,
					Property: property,
					Buggy:    buggy,
				},
			}
		}
	}
	panic(fmt.Sprintf("drivers: unknown driver %q", driver))
}
