package witness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/drivers"
	"repro/internal/parser"
)

func TestFindWitnessSimple(t *testing.T) {
	prog := parser.MustParse(`
proc main {
  locals x;
  havoc x;
  if (x > 7) { assert(x <= 7); }
}`)
	tr, ok := Find(prog, Options{})
	if !ok {
		t.Fatal("no witness found")
	}
	if len(tr.Havocs) == 0 || tr.Havocs[0] <= 7 {
		t.Fatalf("witness inputs %v do not trigger the bug", tr.Havocs)
	}
	if !tr.Replay(prog) {
		t.Fatal("witness does not replay")
	}
	out := tr.Format()
	for _, want := range []string{"counterexample", "inputs:", "trace:", "error state:", "__err=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted trace missing %q:\n%s", want, out)
		}
	}
}

func TestFindWitnessThroughCalls(t *testing.T) {
	prog := parser.MustParse(`
globals g;
proc main {
  g = 0;
  child();
  assert(g <= 0);
}
proc child {
  locals v;
  havoc v;
  if (v == 3) { g = 1; }
}`)
	tr, ok := Find(prog, Options{})
	if !ok {
		t.Fatal("no witness found")
	}
	out := tr.Format()
	if !strings.Contains(out, "call child") {
		t.Errorf("trace missing the call:\n%s", out)
	}
	if !strings.Contains(out, "g = 1") {
		t.Errorf("trace missing the mutation:\n%s", out)
	}
}

func TestFindWitnessOnSafeProgramFails(t *testing.T) {
	prog := parser.MustParse(`proc main { locals x; x = 1; assert(x > 0); }`)
	if _, ok := Find(prog, Options{MaxSeeds: 200}); ok {
		t.Fatal("found a witness in a safe program")
	}
}

func TestFindWitnessOnBuggyDriver(t *testing.T) {
	prog := drivers.Generate(drivers.NamedCheck("parport", "IoAllocateFree", true).Config)
	tr, ok := Find(prog, Options{})
	if !ok {
		t.Fatal("no witness for the injected driver bug")
	}
	if !strings.Contains(tr.Format(), "allocs") {
		t.Error("trace does not mention the monitor variable")
	}
}

func TestWitnessReplayOnCorpus(t *testing.T) {
	files, err := filepath.Glob("../../testdata/corpus/bug_*.bolt")
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus missing: %v", err)
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		prog := parser.MustParse(string(src))
		tr, ok := Find(prog, Options{})
		if !ok {
			t.Errorf("%s: no witness found", filepath.Base(f))
			continue
		}
		if !tr.Replay(prog) {
			t.Errorf("%s: witness does not replay", filepath.Base(f))
		}
		if len(tr.Steps) == 0 {
			t.Errorf("%s: empty trace", filepath.Base(f))
		}
	}
}
