// Package witness turns an ErrorReachable verdict into a concrete
// counterexample: a sequence of nondeterministic input values and the
// execution trace they induce, found by randomized directed search with
// the concrete interpreter (the role DART-style test generation plays in
// the Yogi toolchain the paper builds on).
package witness

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/cfg"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/parser"
)

// Trace is a concrete failing execution.
type Trace struct {
	// Havocs are the input values, in draw order; replaying them with a
	// fixed scheduler reproduces the failure.
	Havocs []int64
	// Seed is the scheduler seed that reproduces the run.
	Seed int64
	// Steps is the executed edge sequence.
	Steps []interp.TraceStep
	// Final is the error state at main's exit.
	Final interp.State

	rangeUsed int64
}

// Options bound the search.
type Options struct {
	// MaxSeeds bounds the number of randomized runs tried (default 4000).
	MaxSeeds int
	// MaxSteps bounds each run (default 100000).
	MaxSteps int
	// HavocRange bounds input magnitudes (default 16).
	HavocRange int64
}

// Find searches for a concrete execution of prog that reaches main's exit
// with the error flag raised. ok=false when no witness was found within
// the budget (which does not refute reachability — the witness may need
// inputs outside the searched range).
func Find(prog *cfg.Program, opts Options) (*Trace, bool) {
	if opts.MaxSeeds == 0 {
		opts.MaxSeeds = 4000
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 100000
	}
	if opts.HavocRange == 0 {
		opts.HavocRange = 16
	}
	pool := constantPool(prog)
	for seed := int64(0); seed < int64(opts.MaxSeeds); seed++ {
		// Widen the input range geometrically across the seed budget:
		// 1×, 4×, 16×, 64× for each successive quarter.
		r := opts.HavocRange
		for q := int64(opts.MaxSeeds) / 4; q > 0 && seed >= q; q += int64(opts.MaxSeeds) / 4 {
			r *= 4
		}
		res := interp.Run(prog, interp.Options{
			Rand:        rand.New(rand.NewSource(seed)),
			MaxSteps:    opts.MaxSteps,
			HavocRange:  r,
			RecordTrace: true,
			HavocPool:   pool,
		})
		if res.Completed && res.Final[parser.ErrVar] != 0 {
			return &Trace{
				Havocs:    res.Havocs,
				Seed:      seed,
				Steps:     res.Trace,
				Final:     res.Final,
				rangeUsed: r,
			}, true
		}
	}
	return nil, false
}

// Replay re-executes the witness deterministically and reports whether it
// still fails (a self-check for reproducibility).
func (tr *Trace) Replay(prog *cfg.Program) bool {
	res := interp.Run(prog, interp.Options{
		Rand:       rand.New(rand.NewSource(tr.Seed)),
		HavocRange: tr.rangeUsed,
		HavocPool:  constantPool(prog),
	})
	return res.Completed && res.Final[parser.ErrVar] != 0
}

// constantPool collects the integer literals appearing in the program and
// their neighbours, the values most likely to flip guards.
func constantPool(prog *cfg.Program) []int64 {
	set := map[int64]bool{0: true, 1: true, -1: true}
	var addInt func(e lang.IntExpr)
	addInt = func(e lang.IntExpr) {
		switch e := e.(type) {
		case lang.Const:
			for _, v := range []int64{e.Val, e.Val - 1, e.Val + 1, -e.Val} {
				set[v] = true
			}
		case lang.Add:
			addInt(e.X)
			addInt(e.Y)
		case lang.Sub:
			addInt(e.X)
			addInt(e.Y)
		case lang.Neg:
			addInt(e.X)
		case lang.Mul:
			addInt(e.X)
		}
	}
	var addBool func(b lang.BoolExpr)
	addBool = func(b lang.BoolExpr) {
		switch b := b.(type) {
		case lang.Cmp:
			addInt(b.X)
			addInt(b.Y)
		case lang.And:
			addBool(b.X)
			addBool(b.Y)
		case lang.Or:
			addBool(b.X)
			addBool(b.Y)
		case lang.Not:
			addBool(b.X)
		}
	}
	for _, proc := range prog.Procs {
		for _, e := range proc.Edges {
			switch s := e.Stmt.(type) {
			case lang.Assign:
				addInt(s.Rhs)
			case lang.Assume:
				addBool(s.Cond)
			}
		}
	}
	out := make([]int64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Format renders the trace for humans: the inputs, then the statement
// path with call/return structure, eliding bookkeeping edges.
func (tr *Trace) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "counterexample (seed %d)\n", tr.Seed)
	if len(tr.Havocs) > 0 {
		fmt.Fprintf(&b, "inputs: %v\n", tr.Havocs)
	}
	fmt.Fprintf(&b, "trace:\n")
	var stack []string
	for _, s := range tr.Steps {
		if len(stack) == 0 {
			stack = []string{s.Proc}
		}
		// Returning: unwind to the frame this step belongs to.
		for len(stack) > 1 && stack[len(stack)-1] != s.Proc {
			stack = stack[:len(stack)-1]
		}
		depth := len(stack) - 1
		switch stmt := s.Stmt.(type) {
		case lang.Skip:
			continue
		case lang.Call:
			fmt.Fprintf(&b, "  %s%s: call %s\n", strings.Repeat("  ", depth), s.Proc, stmt.Proc)
			stack = append(stack, stmt.Proc)
			continue
		}
		fmt.Fprintf(&b, "  %s%s: %s\n", strings.Repeat("  ", depth), s.Proc, s.Stmt)
	}
	var finals []string
	for _, g := range sortedVars(tr.Final) {
		if strings.HasPrefix(string(g), "$") {
			continue
		}
		finals = append(finals, fmt.Sprintf("%s=%d", g, tr.Final[g]))
	}
	fmt.Fprintf(&b, "error state: %s\n", strings.Join(finals, " "))
	return b.String()
}

func sortedVars(s interp.State) []lang.Var {
	out := make([]lang.Var, 0, len(s))
	for v := range s {
		out = append(out, v)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
