// Package cfg represents programs as the paper's §3.1 model: a program is
// a set of procedures, each a control-flow graph whose edges are labelled
// with simple statements or parameterless calls; procedures communicate
// through shared global variables.
package cfg

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lang"
)

// NodeID identifies a control location within a procedure.
type NodeID int

// Edge is a labelled control-flow edge.
type Edge struct {
	From, To NodeID
	Stmt     lang.Stmt
}

// Proc is a procedure: a CFG with entry and exit locations. The exit
// location has no outgoing edges (enforced by Validate).
type Proc struct {
	Name   string
	Locals []lang.Var
	NNodes int
	Entry  NodeID
	Exit   NodeID
	Edges  []Edge
	// Out[n] and In[n] list indices into Edges.
	Out [][]int
	In  [][]int
}

// Program is a set of procedures with shared globals and a designated main
// procedure.
type Program struct {
	Name    string
	Globals []lang.Var
	Procs   map[string]*Proc
	Main    string
}

// Proc returns the named procedure or nil.
func (p *Program) Proc(name string) *Proc {
	return p.Procs[name]
}

// MainProc returns the entry procedure.
func (p *Program) MainProc() *Proc { return p.Procs[p.Main] }

// ProcNames returns the procedure names in sorted order.
func (p *Program) ProcNames() []string {
	out := make([]string, 0, len(p.Procs))
	for n := range p.Procs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// IsGlobal reports whether v is a global of the program.
func (p *Program) IsGlobal(v lang.Var) bool {
	for _, g := range p.Globals {
		if g == v {
			return true
		}
	}
	return false
}

// Vars returns all variables visible in proc (globals plus its locals).
func (p *Program) Vars(proc *Proc) []lang.Var {
	out := make([]lang.Var, 0, len(p.Globals)+len(proc.Locals))
	out = append(out, p.Globals...)
	out = append(out, proc.Locals...)
	return out
}

// CallGraph returns, for every procedure, the sorted set of procedures it
// calls.
func (p *Program) CallGraph() map[string][]string {
	out := make(map[string][]string, len(p.Procs))
	for name, proc := range p.Procs {
		set := map[string]bool{}
		for _, e := range proc.Edges {
			if c, ok := e.Stmt.(lang.Call); ok {
				set[c.Proc] = true
			}
		}
		callees := make([]string, 0, len(set))
		for c := range set {
			callees = append(callees, c)
		}
		sort.Strings(callees)
		out[name] = callees
	}
	return out
}

// Validate checks the structural invariants of the §3.1 program model.
func (p *Program) Validate() error {
	if p.Main == "" {
		return fmt.Errorf("cfg: program %q has no main procedure", p.Name)
	}
	if p.Procs[p.Main] == nil {
		return fmt.Errorf("cfg: main procedure %q not defined", p.Main)
	}
	declared := map[lang.Var]bool{}
	for _, g := range p.Globals {
		if declared[g] {
			return fmt.Errorf("cfg: duplicate global %q", g)
		}
		declared[g] = true
	}
	for _, name := range p.ProcNames() {
		proc := p.Procs[name]
		if proc.Name != name {
			return fmt.Errorf("cfg: procedure map key %q does not match name %q", name, proc.Name)
		}
		scope := map[lang.Var]bool{}
		for g := range declared {
			scope[g] = true
		}
		for _, l := range proc.Locals {
			if scope[l] {
				return fmt.Errorf("cfg: %s: variable %q shadows a global or duplicates a local", name, l)
			}
			scope[l] = true
		}
		if proc.Entry < 0 || int(proc.Entry) >= proc.NNodes {
			return fmt.Errorf("cfg: %s: entry node %d out of range", name, proc.Entry)
		}
		if proc.Exit < 0 || int(proc.Exit) >= proc.NNodes {
			return fmt.Errorf("cfg: %s: exit node %d out of range", name, proc.Exit)
		}
		for i, e := range proc.Edges {
			if e.From < 0 || int(e.From) >= proc.NNodes || e.To < 0 || int(e.To) >= proc.NNodes {
				return fmt.Errorf("cfg: %s: edge %d endpoints out of range", name, i)
			}
			if e.From == proc.Exit {
				return fmt.Errorf("cfg: %s: edge %d leaves the exit node", name, i)
			}
			for _, v := range lang.VarsOfStmt(e.Stmt, nil) {
				if !scope[v] {
					return fmt.Errorf("cfg: %s: edge %d uses undeclared variable %q", name, i, v)
				}
			}
			if c, ok := e.Stmt.(lang.Call); ok {
				if p.Procs[c.Proc] == nil {
					return fmt.Errorf("cfg: %s: edge %d calls undefined procedure %q", name, i, c.Proc)
				}
			}
		}
		if len(proc.Out) != proc.NNodes || len(proc.In) != proc.NNodes {
			return fmt.Errorf("cfg: %s: adjacency not built (call Finish)", name)
		}
	}
	return nil
}

// String renders the program in a readable edge-list form.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\nglobals %s\n", p.Name, lang.FormatVars(p.Globals))
	for _, name := range p.ProcNames() {
		proc := p.Procs[name]
		fmt.Fprintf(&b, "proc %s (entry n%d, exit n%d", name, proc.Entry, proc.Exit)
		if len(proc.Locals) > 0 {
			fmt.Fprintf(&b, ", locals %s", lang.FormatVars(proc.Locals))
		}
		fmt.Fprintf(&b, ")\n")
		for _, e := range proc.Edges {
			fmt.Fprintf(&b, "  n%d -> n%d : %s\n", e.From, e.To, e.Stmt)
		}
	}
	return b.String()
}

// Builder incrementally constructs a procedure.
type Builder struct {
	proc *Proc
}

// NewProc starts building a procedure. The entry node is created
// immediately; the exit node is fixed by Finish.
func NewProc(name string, locals ...lang.Var) *Builder {
	b := &Builder{proc: &Proc{Name: name, Locals: locals}}
	b.proc.Entry = b.NewNode()
	return b
}

// NewNode allocates a fresh control location.
func (b *Builder) NewNode() NodeID {
	id := NodeID(b.proc.NNodes)
	b.proc.NNodes++
	return id
}

// AddEdge adds an edge labelled with stmt.
func (b *Builder) AddEdge(from, to NodeID, stmt lang.Stmt) {
	b.proc.Edges = append(b.proc.Edges, Edge{From: from, To: to, Stmt: stmt})
}

// Entry returns the entry node.
func (b *Builder) Entry() NodeID { return b.proc.Entry }

// Finish declares exit as the exit node, builds adjacency lists, and
// returns the procedure.
func (b *Builder) Finish(exit NodeID) *Proc {
	p := b.proc
	p.Exit = exit
	p.Out = make([][]int, p.NNodes)
	p.In = make([][]int, p.NNodes)
	for i, e := range p.Edges {
		p.Out[e.From] = append(p.Out[e.From], i)
		p.In[e.To] = append(p.In[e.To], i)
	}
	return p
}

// NewProgram assembles procedures into a validated program.
func NewProgram(name string, globals []lang.Var, main string, procs ...*Proc) (*Program, error) {
	prog := &Program{Name: name, Globals: globals, Main: main, Procs: map[string]*Proc{}}
	for _, p := range procs {
		if prog.Procs[p.Name] != nil {
			return nil, fmt.Errorf("cfg: duplicate procedure %q", p.Name)
		}
		prog.Procs[p.Name] = p
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustProgram is NewProgram that panics on error, for tests and
// generators with known-good structure.
func MustProgram(name string, globals []lang.Var, main string, procs ...*Proc) *Program {
	prog, err := NewProgram(name, globals, main, procs...)
	if err != nil {
		panic(err)
	}
	return prog
}
