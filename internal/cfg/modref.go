package cfg

import (
	"repro/internal/lang"
)

// ModRef records which globals a procedure may write (Mod) and read (Ref),
// including transitively through its callees. Frame reasoning built on it
// lets summaries omit globals a callee cannot touch — the "whole program
// information such as alias analysis" the paper stores alongside SUMDB.
type ModRef struct {
	Mod map[lang.Var]bool
	Ref map[lang.Var]bool
}

// Touched reports whether the procedure may read or write g.
func (mr *ModRef) Touched(g lang.Var) bool { return mr.Mod[g] || mr.Ref[g] }

// ModRef computes the transitive mod/ref sets over globals for every
// procedure by a fixpoint over the call graph.
func (p *Program) ModRef() map[string]*ModRef {
	out := make(map[string]*ModRef, len(p.Procs))
	isGlobal := make(map[lang.Var]bool, len(p.Globals))
	for _, g := range p.Globals {
		isGlobal[g] = true
	}
	for name := range p.Procs {
		out[name] = &ModRef{Mod: map[lang.Var]bool{}, Ref: map[lang.Var]bool{}}
	}
	// Direct effects.
	for name, proc := range p.Procs {
		mr := out[name]
		for _, e := range proc.Edges {
			switch s := e.Stmt.(type) {
			case lang.Assign:
				if isGlobal[s.Lhs] {
					mr.Mod[s.Lhs] = true
				}
				for _, v := range lang.VarsOfInt(s.Rhs, nil) {
					if isGlobal[v] {
						mr.Ref[v] = true
					}
				}
			case lang.Assume:
				for _, v := range lang.VarsOfBool(s.Cond, nil) {
					if isGlobal[v] {
						mr.Ref[v] = true
					}
				}
			case lang.Havoc:
				if isGlobal[s.V] {
					mr.Mod[s.V] = true
				}
			}
		}
	}
	// Transitive closure over calls.
	for changed := true; changed; {
		changed = false
		for name, proc := range p.Procs {
			mr := out[name]
			for _, e := range proc.Edges {
				c, ok := e.Stmt.(lang.Call)
				if !ok {
					continue
				}
				callee := out[c.Proc]
				for g := range callee.Mod {
					if !mr.Mod[g] {
						mr.Mod[g] = true
						changed = true
					}
				}
				for g := range callee.Ref {
					if !mr.Ref[g] {
						mr.Ref[g] = true
						changed = true
					}
				}
			}
		}
	}
	return out
}
