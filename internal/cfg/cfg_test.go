package cfg

import (
	"strings"
	"testing"

	"repro/internal/lang"
)

func leafProc(name string) *Proc {
	b := NewProc(name)
	exit := b.NewNode()
	b.AddEdge(b.Entry(), exit, lang.Skip{})
	return b.Finish(exit)
}

func callerProc(name string, callees ...string) *Proc {
	b := NewProc(name)
	cur := b.Entry()
	for _, c := range callees {
		next := b.NewNode()
		b.AddEdge(cur, next, lang.Call{Proc: c})
		cur = next
	}
	return b.Finish(cur)
}

func TestBuilderAndValidate(t *testing.T) {
	prog, err := NewProgram("t", []lang.Var{"g"}, "main",
		callerProc("main", "leaf"), leafProc("leaf"))
	if err != nil {
		t.Fatal(err)
	}
	if prog.MainProc() == nil || prog.Proc("leaf") == nil {
		t.Fatal("procs missing")
	}
	cg := prog.CallGraph()
	if len(cg["main"]) != 1 || cg["main"][0] != "leaf" {
		t.Fatalf("call graph: %v", cg)
	}
	if !strings.Contains(prog.String(), "call leaf") {
		t.Fatal("String missing edges")
	}
}

func TestValidateErrors(t *testing.T) {
	// Undefined callee.
	if _, err := NewProgram("t", nil, "main", callerProc("main", "ghost")); err == nil {
		t.Fatal("undefined callee accepted")
	}
	// Missing main.
	if _, err := NewProgram("t", nil, "main", leafProc("other")); err == nil {
		t.Fatal("missing main accepted")
	}
	// Undeclared variable.
	b := NewProc("main")
	exit := b.NewNode()
	b.AddEdge(b.Entry(), exit, lang.Assign{Lhs: "x", Rhs: lang.C(1)})
	if _, err := NewProgram("t", nil, "main", b.Finish(exit)); err == nil {
		t.Fatal("undeclared variable accepted")
	}
	// Edge leaving exit.
	b2 := NewProc("main")
	exit2 := b2.NewNode()
	b2.AddEdge(b2.Entry(), exit2, lang.Skip{})
	b2.AddEdge(exit2, b2.Entry(), lang.Skip{})
	if _, err := NewProgram("t", nil, "main", b2.Finish(exit2)); err == nil {
		t.Fatal("edge from exit accepted")
	}
	// Duplicate procedure.
	if _, err := NewProgram("t", nil, "main", leafProc("main"), leafProc("main")); err == nil {
		t.Fatal("duplicate proc accepted")
	}
	// Local shadowing a global.
	b3 := NewProc("main", "g")
	exit3 := b3.NewNode()
	b3.AddEdge(b3.Entry(), exit3, lang.Skip{})
	if _, err := NewProgram("t", []lang.Var{"g"}, "main", b3.Finish(exit3)); err == nil {
		t.Fatal("shadowing accepted")
	}
}

func buildModRefProg(t *testing.T) *Program {
	t.Helper()
	// main calls a; a writes g1 and calls b; b reads g2, writes g3.
	mk := func(name string, stmts []lang.Stmt) *Proc {
		b := NewProc(name)
		cur := b.Entry()
		for _, s := range stmts {
			next := b.NewNode()
			b.AddEdge(cur, next, s)
			cur = next
		}
		return b.Finish(cur)
	}
	prog, err := NewProgram("t", []lang.Var{"g1", "g2", "g3"}, "main",
		mk("main", []lang.Stmt{lang.Call{Proc: "a"}}),
		mk("a", []lang.Stmt{lang.Assign{Lhs: "g1", Rhs: lang.C(1)}, lang.Call{Proc: "b"}}),
		mk("b", []lang.Stmt{lang.Assume{Cond: lang.CmpE(lang.V("g2"), lang.Gt, lang.C(0))}, lang.Havoc{V: "g3"}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestModRefTransitive(t *testing.T) {
	prog := buildModRefProg(t)
	mr := prog.ModRef()

	if !mr["b"].Ref["g2"] || !mr["b"].Mod["g3"] || mr["b"].Mod["g1"] {
		t.Fatalf("b: %+v", mr["b"])
	}
	// a inherits b's effects plus its own write of g1.
	if !mr["a"].Mod["g1"] || !mr["a"].Mod["g3"] || !mr["a"].Ref["g2"] {
		t.Fatalf("a: %+v", mr["a"])
	}
	// main inherits everything transitively.
	if !mr["main"].Mod["g1"] || !mr["main"].Mod["g3"] || !mr["main"].Ref["g2"] {
		t.Fatalf("main: %+v", mr["main"])
	}
	if mr["main"].Mod["g2"] {
		t.Fatal("g2 is never written")
	}
	if !mr["main"].Touched("g2") || mr["b"].Touched("g1") {
		t.Fatal("Touched wrong")
	}
}

func TestModRefLocalsExcluded(t *testing.T) {
	b := NewProc("main", "x")
	exit := b.NewNode()
	b.AddEdge(b.Entry(), exit, lang.Assign{Lhs: "x", Rhs: lang.C(1)})
	prog, err := NewProgram("t", []lang.Var{"g"}, "main", b.Finish(exit))
	if err != nil {
		t.Fatal(err)
	}
	mr := prog.ModRef()
	if len(mr["main"].Mod) != 0 || len(mr["main"].Ref) != 0 {
		t.Fatalf("locals leaked into mod/ref: %+v", mr["main"])
	}
}

func TestDotExport(t *testing.T) {
	prog, err := NewProgram("t", []lang.Var{"g"}, "main",
		callerProc("main", "leaf"), leafProc("leaf"))
	if err != nil {
		t.Fatal(err)
	}
	dot := prog.Dot()
	for _, want := range []string{"digraph", "cluster_0", "call leaf", "style=dashed", "doublecircle"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}
