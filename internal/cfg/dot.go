package cfg

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lang"
)

// Dot renders the program's control-flow graphs in Graphviz DOT format,
// one cluster per procedure with call edges drawn across clusters.
func (p *Program) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", p.Name)
	fmt.Fprintf(&b, "  rankdir=TB;\n  node [shape=circle, fontsize=10];\n")
	names := p.ProcNames()
	type callEdge struct{ from, to string }
	var calls []callEdge
	for ci, name := range names {
		proc := p.Procs[name]
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n", ci)
		fmt.Fprintf(&b, "    label=%q;\n", name)
		fmt.Fprintf(&b, "    %s_n%d [style=bold, xlabel=\"entry\"];\n", name, proc.Entry)
		fmt.Fprintf(&b, "    %s_n%d [shape=doublecircle, xlabel=\"exit\"];\n", name, proc.Exit)
		for _, e := range proc.Edges {
			fmt.Fprintf(&b, "    %s_n%d -> %s_n%d [label=%q, fontsize=9];\n",
				name, e.From, name, e.To, e.Stmt.String())
		}
		fmt.Fprintf(&b, "  }\n")
		for _, e := range proc.Edges {
			if callee, ok := calleeOf(e); ok {
				calls = append(calls, callEdge{
					from: fmt.Sprintf("%s_n%d", name, e.From),
					to:   fmt.Sprintf("%s_n%d", callee, p.Procs[callee].Entry),
				})
			}
		}
	}
	sort.Slice(calls, func(i, j int) bool {
		if calls[i].from != calls[j].from {
			return calls[i].from < calls[j].from
		}
		return calls[i].to < calls[j].to
	})
	for _, c := range calls {
		fmt.Fprintf(&b, "  %s -> %s [style=dashed, color=gray, constraint=false];\n", c.from, c.to)
	}
	fmt.Fprintf(&b, "}\n")
	return b.String()
}

func calleeOf(e Edge) (string, bool) {
	if c, ok := e.Stmt.(lang.Call); ok {
		return c.Proc, true
	}
	return "", false
}
