package logic_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/smt"
)

// genLin builds a random canonical linear term.
func genLin(r *rand.Rand) logic.Lin {
	l := logic.LinConst(int64(r.Intn(21) - 10))
	for _, v := range []lang.Var{"x", "y", "z", "w"} {
		if r.Intn(2) == 0 {
			if c := int64(r.Intn(9) - 4); c != 0 {
				l = l.Add(logic.LinVar(v).Scale(c))
			}
		}
	}
	return l
}

func genFormula(r *rand.Rand, depth int) logic.Formula {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(4) {
		case 0:
			return logic.True
		case 1:
			return logic.False
		case 2:
			return logic.LE(genLin(r))
		default:
			return logic.EQ(genLin(r))
		}
	}
	n := 2 + r.Intn(3)
	fs := make([]logic.Formula, n)
	for i := range fs {
		fs[i] = genFormula(r, depth-1)
	}
	if r.Intn(2) == 0 {
		return logic.Conj(fs...)
	}
	return logic.Disj(fs...)
}

// TestWireRoundTrip: encode→decode preserves canonical identity, and the
// encoding is idempotent — re-encoding the decoded formula reproduces the
// wire bytes exactly.
func TestWireRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		f := genFormula(r, 4)
		b := logic.WireBytes(f)
		g, err := logic.DecodeWireAll(b)
		if err != nil {
			t.Fatalf("#%d: decode(%x): %v (formula %v)", i, b, err, f)
		}
		if logic.CanonicalKey(g) != logic.CanonicalKey(f) {
			t.Fatalf("#%d: canonical key changed across round trip:\n %v\n %v", i, f, g)
		}
		if b2 := logic.WireBytes(g); !bytes.Equal(b, b2) {
			t.Fatalf("#%d: encoding not idempotent:\n %x\n %x", i, b, b2)
		}
	}
}

// TestWireRoundTripPreservesVerdict: the decoded formula is
// equisatisfiable with (indeed, semantically identical to) the original,
// so re-solving a persisted formula gives the same answer.
func TestWireRoundTripPreservesVerdict(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	s := smt.New()
	for i := 0; i < 200; i++ {
		f := genFormula(r, 3)
		g, err := logic.DecodeWireAll(logic.WireBytes(f))
		if err != nil {
			t.Fatalf("#%d: %v", i, err)
		}
		got, want := s.Sat(g), s.Sat(f)
		if got.Sat != want.Sat || got.Known != want.Known {
			t.Fatalf("#%d: sat verdict changed across round trip: %+v -> %+v\n %v\n %v",
				i, want, got, f, g)
		}
	}
}

// TestWireOrderIndependence: the canonical encoding ignores the order
// (and multiplicity) in which And/Or children were supplied.
func TestWireOrderIndependence(t *testing.T) {
	a := logic.LE(logic.LinVar("x").AddConst(-3))
	b := logic.EQ(logic.LinVar("y").AddConst(1))
	c := logic.LE(logic.LinVar("z").Scale(2).AddConst(7))
	pairs := [][2]logic.Formula{
		{logic.Conj(a, b), logic.Conj(b, a)},
		{logic.Disj(a, b, c), logic.Disj(c, b, a)},
		{logic.Conj(a, b, a), logic.Conj(b, a)},
		{logic.Conj(logic.Disj(a, b), c), logic.Conj(c, logic.Disj(b, a))},
		{logic.Disj(logic.Conj(a, b), logic.Conj(b, a)), logic.Conj(b, a)},
		{logic.Conj(a, logic.Conj(b, c)), logic.Conj(logic.Conj(c, a), b)},
	}
	for i, p := range pairs {
		if k0, k1 := logic.CanonicalKey(p[0]), logic.CanonicalKey(p[1]); k0 != k1 {
			t.Errorf("pair %d: canonical keys differ:\n %v -> %x\n %v -> %x",
				i, p[0], k0, p[1], k1)
		}
	}
	// Random deep shuffles.
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		f := genFormula(r, 4)
		g := reverseChildren(f)
		if logic.CanonicalKey(f) != logic.CanonicalKey(g) {
			t.Fatalf("#%d: canonical key depends on child order:\n %v\n %v", i, f, g)
		}
	}
}

// reverseChildren rebuilds f with every And/Or child list reversed.
func reverseChildren(f logic.Formula) logic.Formula {
	switch f := f.(type) {
	case logic.And:
		return logic.Conj(reversed(f.Fs)...)
	case logic.Or:
		return logic.Disj(reversed(f.Fs)...)
	default:
		return f
	}
}

func reversed(fs []logic.Formula) []logic.Formula {
	out := make([]logic.Formula, len(fs))
	for i, g := range fs {
		out[len(fs)-1-i] = reverseChildren(g)
	}
	return out
}

// TestWireDecodeRobustness: truncations and random mutations of valid
// encodings must fail cleanly (error, never panic) or decode to some
// formula whose re-encoding is itself canonical.
func TestWireDecodeRobustness(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		b := logic.WireBytes(genFormula(r, 4))
		for k := 0; k < len(b); k++ {
			if f, _, err := logic.DecodeWire(b[:k]); err == nil && f != nil {
				// A prefix may decode to a shorter valid formula; it must
				// still round-trip.
				if _, err := logic.DecodeWireAll(logic.WireBytes(f)); err != nil {
					t.Fatalf("prefix decode produced unencodable formula: %v", err)
				}
			}
		}
		for j := 0; j < 20; j++ {
			m := append([]byte(nil), b...)
			m[r.Intn(len(m))] ^= byte(1 << r.Intn(8))
			if f, err := logic.DecodeWireAll(m); err == nil {
				if _, err := logic.DecodeWireAll(logic.WireBytes(f)); err != nil {
					t.Fatalf("mutated decode produced unencodable formula: %v", err)
				}
			}
		}
	}
	if _, _, err := logic.DecodeWire(nil); err == nil {
		t.Error("decoding empty input succeeded")
	}
	if _, _, err := logic.DecodeWire([]byte{0xff}); err == nil {
		t.Error("decoding unknown tag succeeded")
	}
}

// stabilityFixture is the formula set whose canonical keys the
// cross-process test compares. Every formula mentions shared subterms so
// interning order genuinely shifts the process-local ids.
func stabilityFixture() []logic.Formula {
	x, y, z := logic.LinVar("x"), logic.LinVar("y"), logic.LinVar("z")
	a := logic.LE(x.Sub(y).AddConst(5))
	b := logic.EQ(y.Scale(3).Add(z).AddConst(-2))
	c := logic.LE(z.Scale(-1))
	return []logic.Formula{
		a, b, c,
		logic.Conj(a, b),
		logic.Disj(a, b, c),
		logic.Conj(logic.Disj(a, b), logic.Disj(b, c)),
		logic.Disj(logic.Conj(a, c), logic.Conj(c, b), logic.True),
		logic.Conj(logic.Disj(a, logic.Conj(b, c)), c),
	}
}

// TestWireCrossProcessStability re-executes the test binary with an
// environment flag that makes the child intern a pile of unrelated
// formulas first and then build the fixture in reverse order — so its
// process-local intern ids (logic.Key) disagree with the parent's — and
// verifies both processes produce byte-identical canonical keys.
func TestWireCrossProcessStability(t *testing.T) {
	if os.Getenv("WIRE_STABILITY_CHILD") == "1" {
		// Skew the intern table: allocate ids the parent never did.
		r := rand.New(rand.NewSource(99))
		for i := 0; i < 200; i++ {
			logic.WireBytes(genFormula(r, 3))
		}
		fix := stabilityFixture()
		for i := len(fix) - 1; i >= 0; i-- {
			logic.WireBytes(fix[i]) // intern in reverse order
		}
		for _, f := range fix {
			fmt.Printf("canon %x | %s\n", logic.WireBytes(f), logic.Key(f))
		}
		return
	}
	fix := stabilityFixture()
	cmd := exec.Command(os.Args[0], "-test.run=^TestWireCrossProcessStability$", "-test.v")
	cmd.Env = append(os.Environ(), "WIRE_STABILITY_CHILD=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("re-exec failed: %v\n%s", err, out)
	}
	var childCanon, childKeys []string
	for _, line := range strings.Split(string(out), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "canon "); ok {
			canon, key, _ := strings.Cut(rest, " | ")
			childCanon = append(childCanon, canon)
			childKeys = append(childKeys, key)
		}
	}
	if len(childCanon) != len(fix) {
		t.Fatalf("child reported %d keys, want %d\n%s", len(childCanon), len(fix), out)
	}
	keysDiffer := false
	for i, f := range fix {
		want := fmt.Sprintf("%x", logic.WireBytes(f))
		if childCanon[i] != want {
			t.Errorf("fixture %d: canonical key differs across processes:\n parent %s\n child  %s",
				i, want, childCanon[i])
		}
		if childKeys[i] != logic.Key(f) {
			keysDiffer = true
		}
	}
	// The experiment is only meaningful if the child's interning order
	// actually diverged: the process-local keys should not all coincide.
	if !keysDiffer {
		t.Log("note: child intern ids coincided with parent's; canonical equality still verified")
	}
}

// FuzzWireRoundTrip: any bytes that decode must re-encode canonically
// and round-trip to the same canonical key; bytes that don't decode must
// error rather than panic.
func FuzzWireRoundTrip(f *testing.F) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 32; i++ {
		f.Add(logic.WireBytes(genFormula(r, 4)))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, _, err := logic.DecodeWire(data)
		if err != nil {
			return
		}
		b := logic.WireBytes(g)
		h, err := logic.DecodeWireAll(b)
		if err != nil {
			t.Fatalf("canonical re-encoding does not decode: %v (%x)", err, b)
		}
		if !bytes.Equal(logic.WireBytes(h), b) {
			t.Fatalf("encoding not idempotent: %x vs %x", logic.WireBytes(h), b)
		}
	})
}
