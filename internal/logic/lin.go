// Package logic implements the formula layer used by all analyses:
// linear integer terms, quantifier-free formulas in negation normal form,
// substitution, disjunctive normal form, integer preimages of statements,
// and existential projection by Fourier–Motzkin elimination with real
// (over-approximate) and dark (under-approximate) shadows.
//
// In the paper this role is split between the program representation and
// the Z3 SMT solver; here it is a self-contained substrate that
// internal/smt builds its decision procedure on.
package logic

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lang"
)

// Lin is a linear integer term  k + Σ coefs[i]·vars[i]  in canonical form:
// vars sorted and distinct, all coefficients non-zero.
type Lin struct {
	K     int64
	Vars  []lang.Var
	Coefs []int64
}

// LinConst returns the constant term k.
func LinConst(k int64) Lin { return Lin{K: k} }

// LinVar returns the term 1·v.
func LinVar(v lang.Var) Lin {
	return Lin{Vars: []lang.Var{v}, Coefs: []int64{1}}
}

// linFromMap builds a canonical Lin from a coefficient map.
func linFromMap(k int64, m map[lang.Var]int64) Lin {
	vars := make([]lang.Var, 0, len(m))
	for v, c := range m {
		if c != 0 {
			vars = append(vars, v)
		}
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	coefs := make([]int64, len(vars))
	for i, v := range vars {
		coefs[i] = m[v]
	}
	return Lin{K: k, Vars: vars, Coefs: coefs}
}

func (l Lin) toMap() map[lang.Var]int64 {
	m := make(map[lang.Var]int64, len(l.Vars))
	for i, v := range l.Vars {
		m[v] = l.Coefs[i]
	}
	return m
}

// IsConst reports whether l has no variables.
func (l Lin) IsConst() bool { return len(l.Vars) == 0 }

// Coef returns the coefficient of v in l (0 if absent).
func (l Lin) Coef(v lang.Var) int64 {
	i := sort.Search(len(l.Vars), func(i int) bool { return l.Vars[i] >= v })
	if i < len(l.Vars) && l.Vars[i] == v {
		return l.Coefs[i]
	}
	return 0
}

// Add returns l + r.
func (l Lin) Add(r Lin) Lin {
	m := l.toMap()
	for i, v := range r.Vars {
		m[v] += r.Coefs[i]
	}
	return linFromMap(l.K+r.K, m)
}

// Sub returns l - r.
func (l Lin) Sub(r Lin) Lin { return l.Add(r.Scale(-1)) }

// Scale returns k·l.
func (l Lin) Scale(k int64) Lin {
	if k == 0 {
		return Lin{}
	}
	out := Lin{K: l.K * k, Vars: append([]lang.Var(nil), l.Vars...), Coefs: make([]int64, len(l.Coefs))}
	for i, c := range l.Coefs {
		out.Coefs[i] = c * k
	}
	return out
}

// AddConst returns l + k.
func (l Lin) AddConst(k int64) Lin {
	out := l
	out.K += k
	return out
}

// Subst returns l with every occurrence of v replaced by r.
func (l Lin) Subst(v lang.Var, r Lin) Lin {
	c := l.Coef(v)
	if c == 0 {
		return l
	}
	m := l.toMap()
	delete(m, v)
	base := linFromMap(l.K, m)
	return base.Add(r.Scale(c))
}

// Rename returns l with variables renamed by ren (identity for missing
// keys).
func (l Lin) Rename(ren map[lang.Var]lang.Var) Lin {
	m := make(map[lang.Var]int64, len(l.Vars))
	for i, v := range l.Vars {
		nv := v
		if r, ok := ren[v]; ok {
			nv = r
		}
		m[nv] += l.Coefs[i]
	}
	return linFromMap(l.K, m)
}

// Eval evaluates l under the model. Missing variables evaluate to 0.
func (l Lin) Eval(model map[lang.Var]int64) int64 {
	out := l.K
	for i, v := range l.Vars {
		out += l.Coefs[i] * model[v]
	}
	return out
}

// Equal reports structural equality of canonical terms.
func (l Lin) Equal(r Lin) bool {
	if l.K != r.K || len(l.Vars) != len(r.Vars) {
		return false
	}
	for i := range l.Vars {
		if l.Vars[i] != r.Vars[i] || l.Coefs[i] != r.Coefs[i] {
			return false
		}
	}
	return true
}

// normalize divides l by the gcd of its coefficients and constant when that
// keeps integrality (used to keep atom keys canonical).
func (l Lin) normalizeLE() Lin {
	if len(l.Vars) == 0 {
		return l
	}
	g := int64(0)
	for _, c := range l.Coefs {
		g = gcd64(g, abs64(c))
	}
	if g <= 1 {
		return l
	}
	// For an atom l ≤ 0 with all variable coefficients divisible by g:
	// k + g·t ≤ 0  ⇔  t ≤ ⌊-k/g⌋  ⇔  t - ⌊-k/g⌋ ≤ 0 over the integers.
	out := Lin{K: -floorDiv(-l.K, g), Vars: append([]lang.Var(nil), l.Vars...), Coefs: make([]int64, len(l.Coefs))}
	for i, c := range l.Coefs {
		out.Coefs[i] = c / g
	}
	return out
}

func (l Lin) String() string {
	if len(l.Vars) == 0 {
		return fmt.Sprintf("%d", l.K)
	}
	var b strings.Builder
	first := true
	for i, v := range l.Vars {
		c := l.Coefs[i]
		switch {
		case first && c == 1:
			fmt.Fprintf(&b, "%s", v)
		case first && c == -1:
			fmt.Fprintf(&b, "-%s", v)
		case first:
			fmt.Fprintf(&b, "%d·%s", c, v)
		case c == 1:
			fmt.Fprintf(&b, " + %s", v)
		case c == -1:
			fmt.Fprintf(&b, " - %s", v)
		case c > 0:
			fmt.Fprintf(&b, " + %d·%s", c, v)
		default:
			fmt.Fprintf(&b, " - %d·%s", -c, v)
		}
		first = false
	}
	if l.K > 0 {
		fmt.Fprintf(&b, " + %d", l.K)
	} else if l.K < 0 {
		fmt.Fprintf(&b, " - %d", -l.K)
	}
	return b.String()
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// floorDiv returns ⌊a/b⌋ for b > 0.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// ceilDiv returns ⌈a/b⌉ for b > 0.
func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		q++
	}
	return q
}

// FromInt converts a lang integer expression to a linear term. Expressions
// in the language are linear by construction.
func FromInt(e lang.IntExpr) Lin {
	switch e := e.(type) {
	case lang.Const:
		return LinConst(e.Val)
	case lang.Ref:
		return LinVar(e.V)
	case lang.Add:
		return FromInt(e.X).Add(FromInt(e.Y))
	case lang.Sub:
		return FromInt(e.X).Sub(FromInt(e.Y))
	case lang.Neg:
		return FromInt(e.X).Scale(-1)
	case lang.Mul:
		return FromInt(e.X).Scale(e.K)
	default:
		panic(fmt.Sprintf("logic: unknown IntExpr %T", e))
	}
}
