package logic

import (
	"fmt"

	"repro/internal/lang"
)

// Shadow selects the Fourier–Motzkin shadow used when eliminating an
// integer variable whose bound coefficients are not unit. The real shadow
// over-approximates the integer projection; the dark shadow
// under-approximates it. When every combined bound pair has a unit
// coefficient the two coincide and the projection is exact.
type Shadow int

// Shadow modes.
const (
	Over  Shadow = iota // real shadow: ∃x.φ ⊆ result
	Under               // dark shadow: result ⊆ ∃x.φ
)

// Cube is a conjunction of ≤-atoms (equalities are split before cube
// processing).
type Cube []Atom

// Formula returns the cube as a conjunction.
func (c Cube) Formula() Formula {
	fs := make([]Formula, 0, len(c))
	for _, a := range c {
		fs = append(fs, LE(a.L))
	}
	return Conj(fs...)
}

// MaxCubes caps DNF expansion; beyond it Exists falls back to the trivial
// sound answer for the requested shadow.
const MaxCubes = 512

// maxCombinations caps the lower×upper bound pairing during one
// Fourier–Motzkin variable elimination.
const maxCombinations = 4096

// Cubes converts f to disjunctive normal form as a list of cubes. The
// second result is false if the expansion exceeded max cubes (the returned
// prefix is then meaningless and must not be used).
func Cubes(f Formula, max int) ([]Cube, bool) {
	cubes, ok := cubesOf(f, max)
	if !ok {
		return nil, false
	}
	out := cubes[:0]
	for _, c := range cubes {
		if c, ok := simplifyCube(c); ok {
			out = append(out, c)
		}
	}
	return out, true
}

func cubesOf(f Formula, max int) ([]Cube, bool) {
	switch f := f.(type) {
	case Bool:
		if bool(f) {
			return []Cube{{}}, true
		}
		return nil, true
	case Atom:
		if f.Eq {
			// L = 0  ⇔  L ≤ 0 ∧ -L ≤ 0.
			return []Cube{{Atom{L: f.L}, Atom{L: f.L.Scale(-1)}}}, true
		}
		return []Cube{{f}}, true
	case Or:
		var out []Cube
		for _, g := range f.Fs {
			cs, ok := cubesOf(g, max)
			if !ok {
				return nil, false
			}
			out = append(out, cs...)
			if len(out) > max {
				return nil, false
			}
		}
		return out, true
	case And:
		out := []Cube{{}}
		for _, g := range f.Fs {
			cs, ok := cubesOf(g, max)
			if !ok {
				return nil, false
			}
			var next []Cube
			for _, base := range out {
				for _, c := range cs {
					merged := make(Cube, 0, len(base)+len(c))
					merged = append(merged, base...)
					merged = append(merged, c...)
					next = append(next, merged)
					if len(next) > max {
						return nil, false
					}
				}
			}
			out = next
		}
		return out, true
	default:
		panic(fmt.Sprintf("logic: unknown Formula %T", f))
	}
}

// simplifyCube drops trivially-true atoms and detects trivially-false
// cubes; the bool result is false when the cube is contradictory by
// constant folding alone.
func simplifyCube(c Cube) (Cube, bool) {
	out := make(Cube, 0, len(c))
	seen := map[ID]bool{}
	var seenStr map[string]bool // fallback for intern-table overflow
	for _, a := range c {
		l := a.L.normalizeLE()
		if l.IsConst() {
			if l.K > 0 {
				return nil, false
			}
			continue
		}
		if id := LinID(l); id != 0 {
			if seen[id] {
				continue
			}
			seen[id] = true
		} else {
			if seenStr == nil {
				seenStr = map[string]bool{}
			}
			k := l.String()
			if seenStr[k] {
				continue
			}
			seenStr[k] = true
		}
		out = append(out, Atom{L: l})
	}
	return out, true
}

// eliminateVar removes v from the cube by Fourier–Motzkin combination.
// The exact result reports whether the projection is exact over the
// integers (every combined pair had a unit coefficient).
func eliminateVar(c Cube, v lang.Var, mode Shadow) (out Cube, exact bool, sat bool) {
	var lowers, uppers []struct {
		coef int64 // positive
		rest Lin   // term without v
	}
	exact = true
	for _, a := range c {
		coef := a.L.Coef(v)
		if coef == 0 {
			out = append(out, a)
			continue
		}
		rest := a.L.Subst(v, LinConst(0))
		if coef > 0 {
			// coef·v + rest ≤ 0 : upper bound coef·v ≤ -rest.
			uppers = append(uppers, struct {
				coef int64
				rest Lin
			}{coef, rest})
		} else {
			// coef·v + rest ≤ 0 with coef<0 : lower bound (-coef)·v ≥ rest.
			lowers = append(lowers, struct {
				coef int64
				rest Lin
			}{-coef, rest})
		}
	}
	if len(lowers) == 0 || len(uppers) == 0 {
		// v is unbounded on one side: any value works, projection exact.
		return out, true, true
	}
	if len(lowers)*len(uppers) > maxCombinations {
		// Blow-up guard. For the over-approximating real shadow, dropping
		// the combined constraints is sound (a larger set); for the
		// under-approximating dark shadow the sound fallback is the empty
		// set, reported as a contradictory cube.
		if mode == Over {
			return out, false, true
		}
		return nil, false, false
	}
	for _, lo := range lowers {
		for _, up := range uppers {
			// lo.rest ≤ a·v and c·v ≤ -up.rest with a=lo.coef, c=up.coef:
			// real shadow c·lo.rest + a·up.rest ≤ 0.
			comb := lo.rest.Scale(up.coef).Add(up.rest.Scale(lo.coef))
			if lo.coef != 1 && up.coef != 1 {
				exact = false
				if mode == Under {
					// dark shadow: guarantee an integer point between the
					// rational bounds.
					comb = comb.AddConst((lo.coef - 1) * (up.coef - 1))
				}
			}
			comb = comb.normalizeLE()
			if comb.IsConst() {
				if comb.K > 0 {
					return nil, exact, false
				}
				continue
			}
			out = append(out, Atom{L: comb})
		}
	}
	out, ok := simplifyCube(out)
	return out, exact, ok
}

// ProjectCube eliminates all variables in elim from the cube. sat=false
// means the projected cube is contradictory (by constant folding during
// elimination).
func ProjectCube(c Cube, elim map[lang.Var]bool, mode Shadow) (out Cube, exact bool, sat bool) {
	out, ok := simplifyCube(c)
	if !ok {
		return nil, true, false
	}
	exact = true
	for _, v := range sortedVars(elim) {
		var ex bool
		out, ex, sat = eliminateVar(out, v, mode)
		exact = exact && ex
		if !sat {
			return nil, exact, false
		}
	}
	return out, exact, true
}

func sortedVars(set map[lang.Var]bool) []lang.Var {
	out := make([]lang.Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Exists existentially quantifies the variables in elim out of f using the
// requested shadow. The exact result reports whether the answer is the
// precise integer projection; when DNF expansion overflows, the trivial
// sound answer for the mode is returned (true for Over, false for Under).
func Exists(f Formula, elim []lang.Var, mode Shadow) (Formula, bool) {
	set := make(map[lang.Var]bool, len(elim))
	for _, v := range elim {
		set[v] = true
	}
	if !Mentions(f, set) {
		return f, true
	}
	cubes, ok := Cubes(f, MaxCubes)
	if !ok {
		if mode == Over {
			return True, false
		}
		return False, false
	}
	exact := true
	var out []Formula
	for _, c := range cubes {
		p, ex, sat := ProjectCube(c, set, mode)
		exact = exact && ex
		if !sat {
			continue
		}
		out = append(out, p.Formula())
	}
	return Disj(out...), exact
}

// BoundsOn computes the integer interval for v implied by the cube under a
// model assigning all other variables. Atoms not mentioning v are ignored.
func BoundsOn(c Cube, v lang.Var, model map[lang.Var]int64) (lo, hi int64, hasLo, hasHi bool) {
	for _, a := range c {
		coef := a.L.Coef(v)
		if coef == 0 {
			continue
		}
		rest := a.L.Subst(v, LinConst(0)).Eval(model)
		if coef > 0 {
			// coef·v ≤ -rest → v ≤ ⌊-rest/coef⌋.
			b := floorDiv(-rest, coef)
			if !hasHi || b < hi {
				hi = b
				hasHi = true
			}
		} else {
			// (-coef)·v ≥ rest → v ≥ ⌈rest/(-coef)⌉.
			b := ceilDiv(rest, -coef)
			if !hasLo || b > lo {
				lo = b
				hasLo = true
			}
		}
	}
	return lo, hi, hasLo, hasHi
}

// Pre computes the preimage of formula f across statement s: the set of
// states from which executing s can lead into f. The shadow mode governs
// havoc elimination. Call edges are the analyses' business, not Pre's.
func Pre(s lang.Stmt, f Formula, mode Shadow) Formula {
	switch s := s.(type) {
	case lang.Assign:
		return Subst(f, s.Lhs, FromInt(s.Rhs))
	case lang.Assume:
		return Conj(FromBool(s.Cond), f)
	case lang.Havoc:
		out, _ := Exists(f, []lang.Var{s.V}, mode)
		return out
	case lang.Skip:
		return f
	case lang.Call:
		panic("logic: Pre of a call statement; handle calls in the analysis")
	default:
		panic(fmt.Sprintf("logic: unknown Stmt %T", s))
	}
}
