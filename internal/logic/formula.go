package logic

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lang"
)

// Formula is a quantifier-free formula over linear integer atoms, kept in
// negation normal form by construction: there is no negation node; Not is a
// function that pushes negations into atoms (which negate exactly over the
// integers).
type Formula interface {
	isFormula()
	String() string
}

// Bool is the constant formula true or false.
type Bool bool

// Atom is the inequality L ≤ 0, or the equality L = 0 when Eq is set.
// The unexported id is the hash-consed identity assigned by the package
// constructors (0 for literal-built atoms, which are interned lazily by
// KeyID).
type Atom struct {
	L  Lin
	Eq bool
	id ID
}

// And is the conjunction of Fs (true when empty).
type And struct {
	Fs []Formula
	id ID
}

// Or is the disjunction of Fs (false when empty).
type Or struct {
	Fs []Formula
	id ID
}

func (Bool) isFormula() {}
func (Atom) isFormula() {}
func (And) isFormula()  {}
func (Or) isFormula()   {}

func (b Bool) String() string {
	if bool(b) {
		return "true"
	}
	return "false"
}

func (a Atom) String() string {
	if a.Eq {
		return fmt.Sprintf("%s = 0", a.L)
	}
	return fmt.Sprintf("%s ≤ 0", a.L)
}

func (a And) String() string { return joinFormulas(a.Fs, " ∧ ", "true") }
func (o Or) String() string  { return joinFormulas(o.Fs, " ∨ ", "false") }

func joinFormulas(fs []Formula, sep, empty string) string {
	if len(fs) == 0 {
		return empty
	}
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = "(" + f.String() + ")"
	}
	return strings.Join(parts, sep)
}

// True and False are the constant formulas.
const (
	True  = Bool(true)
	False = Bool(false)
)

// LE returns the atom l ≤ 0 with constant folding.
func LE(l Lin) Formula {
	l = l.normalizeLE()
	if l.IsConst() {
		return Bool(l.K <= 0)
	}
	return Atom{L: l, id: internAtom(l, false)}
}

// EQ returns the atom l = 0 with constant folding.
func EQ(l Lin) Formula {
	if l.IsConst() {
		return Bool(l.K == 0)
	}
	return Atom{L: l, Eq: true, id: internAtom(l, true)}
}

// LEq returns the formula x ≤ y.
func LEq(x, y Lin) Formula { return LE(x.Sub(y)) }

// Lt returns the formula x < y (over the integers: x - y + 1 ≤ 0).
func Lt(x, y Lin) Formula { return LE(x.Sub(y).AddConst(1)) }

// Eq returns the formula x = y.
func Eq(x, y Lin) Formula { return EQ(x.Sub(y)) }

// nodeBuilder accumulates the flattened, deduplicated children of a
// Conj/Disj. Dedup is by interned id; the string map only exists when
// some child overflowed the intern table.
type nodeBuilder struct {
	out     []Formula
	ids     []ID
	seen    map[ID]bool
	seenStr map[string]bool
	allIn   bool // every child has a non-zero id
}

func newNodeBuilder(n int) nodeBuilder {
	return nodeBuilder{
		out:   make([]Formula, 0, n),
		ids:   make([]ID, 0, n),
		seen:  make(map[ID]bool, n),
		allIn: true,
	}
}

func (b *nodeBuilder) add(g Formula) {
	if id := KeyID(g); id != 0 {
		if !b.seen[id] {
			b.seen[id] = true
			b.out = append(b.out, g)
			b.ids = append(b.ids, id)
		}
		return
	}
	b.allIn = false
	if b.seenStr == nil {
		b.seenStr = map[string]bool{}
	}
	k := g.String()
	if !b.seenStr[k] {
		b.seenStr[k] = true
		b.out = append(b.out, g)
		b.ids = append(b.ids, 0)
	}
}

// Conj returns the conjunction of fs, flattened, deduplicated and
// constant-folded.
func Conj(fs ...Formula) Formula {
	b := newNodeBuilder(len(fs))
	add := func(g Formula) bool {
		if c, ok := g.(Bool); ok {
			return bool(c) // false aborts
		}
		b.add(g)
		return true
	}
	for _, f := range fs {
		if a, ok := f.(And); ok {
			for _, g := range a.Fs {
				if !add(g) {
					return False
				}
			}
			continue
		}
		if !add(f) {
			return False
		}
	}
	if len(b.out) == 0 {
		return True
	}
	if len(b.out) == 1 {
		return b.out[0]
	}
	node := And{Fs: b.out}
	if b.allIn {
		node.id = internNode(tagAnd, b.ids)
	}
	return node
}

// Disj returns the disjunction of fs, flattened, deduplicated and
// constant-folded.
func Disj(fs ...Formula) Formula {
	b := newNodeBuilder(len(fs))
	add := func(g Formula) bool {
		if c, ok := g.(Bool); ok {
			return !bool(c) // true aborts
		}
		b.add(g)
		return true
	}
	for _, f := range fs {
		if o, ok := f.(Or); ok {
			for _, g := range o.Fs {
				if !add(g) {
					return True
				}
			}
			continue
		}
		if !add(f) {
			return True
		}
	}
	if len(b.out) == 0 {
		return False
	}
	if len(b.out) == 1 {
		return b.out[0]
	}
	node := Or{Fs: b.out}
	if b.allIn {
		node.id = internNode(tagOr, b.ids)
	}
	return node
}

// Not returns the negation of f, pushed down to the atoms. Over the
// integers atoms negate exactly: ¬(L ≤ 0) = (-L+1 ≤ 0) and
// ¬(L = 0) = (L+1 ≤ 0) ∨ (-L+1 ≤ 0).
func Not(f Formula) Formula {
	switch f := f.(type) {
	case Bool:
		return Bool(!bool(f))
	case Atom:
		if f.Eq {
			return Disj(LE(f.L.AddConst(1)), LE(f.L.Scale(-1).AddConst(1)))
		}
		return LE(f.L.Scale(-1).AddConst(1))
	case And:
		neg := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			neg[i] = Not(g)
		}
		return Disj(neg...)
	case Or:
		neg := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			neg[i] = Not(g)
		}
		return Conj(neg...)
	default:
		panic(fmt.Sprintf("logic: unknown Formula %T", f))
	}
}

// FromBool converts a lang boolean expression to a Formula.
func FromBool(b lang.BoolExpr) Formula {
	switch b := b.(type) {
	case lang.BoolConst:
		return Bool(b.Val)
	case lang.Cmp:
		x, y := FromInt(b.X), FromInt(b.Y)
		switch b.Op {
		case lang.Lt:
			return Lt(x, y)
		case lang.Le:
			return LEq(x, y)
		case lang.Gt:
			return Lt(y, x)
		case lang.Ge:
			return LEq(y, x)
		case lang.Eq:
			return Eq(x, y)
		case lang.Ne:
			return Not(Eq(x, y))
		}
		panic(fmt.Sprintf("logic: invalid CmpOp %v", b.Op))
	case lang.And:
		return Conj(FromBool(b.X), FromBool(b.Y))
	case lang.Or:
		return Disj(FromBool(b.X), FromBool(b.Y))
	case lang.Not:
		return Not(FromBool(b.X))
	default:
		panic(fmt.Sprintf("logic: unknown BoolExpr %T", b))
	}
}

// Subst returns f with v replaced by the term r.
func Subst(f Formula, v lang.Var, r Lin) Formula {
	switch f := f.(type) {
	case Bool:
		return f
	case Atom:
		l := f.L.Subst(v, r)
		if f.Eq {
			return EQ(l)
		}
		return LE(l)
	case And:
		out := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = Subst(g, v, r)
		}
		return Conj(out...)
	case Or:
		out := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = Subst(g, v, r)
		}
		return Disj(out...)
	default:
		panic(fmt.Sprintf("logic: unknown Formula %T", f))
	}
}

// SubstMap applies all substitutions in sub simultaneously.
func SubstMap(f Formula, sub map[lang.Var]Lin) Formula {
	switch f := f.(type) {
	case Bool:
		return f
	case Atom:
		l := LinConst(f.L.K)
		for i, v := range f.L.Vars {
			if r, ok := sub[v]; ok {
				l = l.Add(r.Scale(f.L.Coefs[i]))
			} else {
				l = l.Add(LinVar(v).Scale(f.L.Coefs[i]))
			}
		}
		if f.Eq {
			return EQ(l)
		}
		return LE(l)
	case And:
		out := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = SubstMap(g, sub)
		}
		return Conj(out...)
	case Or:
		out := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = SubstMap(g, sub)
		}
		return Disj(out...)
	default:
		panic(fmt.Sprintf("logic: unknown Formula %T", f))
	}
}

// Rename returns f with variables renamed by ren.
func Rename(f Formula, ren map[lang.Var]lang.Var) Formula {
	switch f := f.(type) {
	case Bool:
		return f
	case Atom:
		out := f
		out.L = f.L.Rename(ren)
		out.id = internAtom(out.L, out.Eq)
		return out
	case And:
		out := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = Rename(g, ren)
		}
		return Conj(out...)
	case Or:
		out := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = Rename(g, ren)
		}
		return Disj(out...)
	default:
		panic(fmt.Sprintf("logic: unknown Formula %T", f))
	}
}

// Eval evaluates f under a model (missing variables read as 0).
func Eval(f Formula, model map[lang.Var]int64) bool {
	switch f := f.(type) {
	case Bool:
		return bool(f)
	case Atom:
		v := f.L.Eval(model)
		if f.Eq {
			return v == 0
		}
		return v <= 0
	case And:
		for _, g := range f.Fs {
			if !Eval(g, model) {
				return false
			}
		}
		return true
	case Or:
		for _, g := range f.Fs {
			if Eval(g, model) {
				return true
			}
		}
		return false
	default:
		panic(fmt.Sprintf("logic: unknown Formula %T", f))
	}
}

// FreeVars returns the sorted set of variables occurring in f.
func FreeVars(f Formula) []lang.Var {
	set := map[lang.Var]bool{}
	collectVars(f, set)
	out := make([]lang.Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func collectVars(f Formula, set map[lang.Var]bool) {
	switch f := f.(type) {
	case Bool:
	case Atom:
		for _, v := range f.L.Vars {
			set[v] = true
		}
	case And:
		for _, g := range f.Fs {
			collectVars(g, set)
		}
	case Or:
		for _, g := range f.Fs {
			collectVars(g, set)
		}
	default:
		panic(fmt.Sprintf("logic: unknown Formula %T", f))
	}
}

// Mentions reports whether f mentions any variable in vs.
func Mentions(f Formula, vs map[lang.Var]bool) bool {
	switch f := f.(type) {
	case Bool:
		return false
	case Atom:
		for _, v := range f.L.Vars {
			if vs[v] {
				return true
			}
		}
		return false
	case And:
		for _, g := range f.Fs {
			if Mentions(g, vs) {
				return true
			}
		}
		return false
	case Or:
		for _, g := range f.Fs {
			if Mentions(g, vs) {
				return true
			}
		}
		return false
	default:
		panic(fmt.Sprintf("logic: unknown Formula %T", f))
	}
}

// Size returns the number of nodes in f, used for budget accounting.
func Size(f Formula) int {
	switch f := f.(type) {
	case Bool, Atom:
		return 1
	case And:
		n := 1
		for _, g := range f.Fs {
			n += Size(g)
		}
		return n
	case Or:
		n := 1
		for _, g := range f.Fs {
			n += Size(g)
		}
		return n
	default:
		panic(fmt.Sprintf("logic: unknown Formula %T", f))
	}
}
