package logic

import (
	"sync"
	"testing"

	"repro/internal/lang"
)

func internVar(name string) Lin { return LinVar(lang.Var(name)) }

// buildNested constructs a moderately deep formula parameterized by seed
// so concurrent builders overlap on shared subterms.
func buildNested(seed int64) Formula {
	x, y := internVar("x"), internVar("y")
	var fs []Formula
	for i := int64(0); i < 4; i++ {
		fs = append(fs, Disj(
			LEq(x, LinConst(seed+i)),
			Conj(LEq(LinConst(-seed-i), y), LEq(y.Add(x.Scale(2)), LinConst(i))),
		))
	}
	return Conj(fs...)
}

// Structural equality must collapse to key equality: the same formula
// built twice — separate allocations, same shape — interns to the same
// id, and the second build is served from the table (hits advance).
func TestInternSameStructureSameKey(t *testing.T) {
	h0, _ := InternStats()
	a := buildNested(7)
	b := buildNested(7)
	if Key(a) != Key(b) {
		t.Fatalf("same structure, different keys: %q vs %q", Key(a), Key(b))
	}
	if id := KeyID(a); id == 0 {
		t.Fatal("nested formula fell off the intern table")
	}
	if KeyID(a) != KeyID(b) {
		t.Fatalf("same structure, different ids: %d vs %d", KeyID(a), KeyID(b))
	}
	if h1, _ := InternStats(); h1 <= h0 {
		t.Fatal("second build did not hit the intern table")
	}
}

// Distinct formulas must get distinct keys — including Bool constants
// versus composite nodes (reserved ids) and atoms differing only in the
// Eq flag or a constant.
func TestInternDistinctFormulasDistinctKeys(t *testing.T) {
	x := internVar("x")
	fs := []Formula{
		Bool(true), Bool(false),
		LE(x.Sub(LinConst(3))), EQ(x.Sub(LinConst(3))),
		LE(x.Sub(LinConst(4))),
		Conj(LE(x.Sub(LinConst(3))), LE(LinConst(1).Sub(x))),
		Disj(LE(x.Sub(LinConst(3))), LE(LinConst(1).Sub(x))),
		buildNested(7), buildNested(8),
	}
	seen := map[string]Formula{}
	for _, f := range fs {
		k := Key(f)
		if prev, dup := seen[k]; dup {
			t.Fatalf("key collision %q between %v and %v", k, prev, f)
		}
		seen[k] = f
	}
}

// Renaming an atom's variable must re-intern: the renamed atom's key has
// to match a freshly built atom over the new variable, never the
// original's.
func TestInternRenameReinterns(t *testing.T) {
	a := LE(internVar("x").Sub(LinConst(5)))
	r := Rename(a, map[lang.Var]lang.Var{"x": "y"})
	want := LE(internVar("y").Sub(LinConst(5)))
	if Key(r) != Key(want) {
		t.Fatalf("renamed key %q, want %q", Key(r), Key(want))
	}
	if Key(r) == Key(a) {
		t.Fatal("renamed atom kept the original key")
	}
}

// Concurrent construction of overlapping formulas must agree on ids —
// this is the -race coverage for the sharded intern table under
// concurrent PUNCH instances.
func TestInternConcurrent(t *testing.T) {
	const workers = 8
	keys := make([][]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				keys[w] = append(keys[w], Key(buildNested(int64(i%10))))
			}
		}()
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range keys[w] {
			if keys[w][i] != keys[0][i] {
				t.Fatalf("worker %d key[%d] = %q, worker 0 = %q", w, i, keys[w][i], keys[0][i])
			}
		}
	}
}

// BenchmarkHashConsKey: key construction on an interned formula (an id
// format) versus the structural string render it replaced.
func BenchmarkHashConsKey(b *testing.B) {
	f := buildNested(7)
	b.Run("Key", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = Key(f)
		}
	})
	b.Run("String", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = f.String()
		}
	})
}

// BenchmarkInternConstruct: formula construction cost with the intern
// table on the path (every LE/Conj/Disj pays a table probe).
func BenchmarkInternConstruct(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = buildNested(int64(i % 16))
	}
}
