package logic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lang"
)

func lin(k int64, terms ...any) Lin {
	l := LinConst(k)
	for i := 0; i < len(terms); i += 2 {
		l = l.Add(LinVar(lang.Var(terms[i+1].(string))).Scale(terms[i].(int64)))
	}
	return l
}

func TestLinCanonical(t *testing.T) {
	a := lin(3, int64(2), "x", int64(-1), "y")
	b := lin(0, int64(-1), "y").Add(lin(3, int64(2), "x"))
	if !a.Equal(b) {
		t.Fatalf("canonical forms differ: %v vs %v", a, b)
	}
	if got := a.Coef("x"); got != 2 {
		t.Fatalf("Coef(x) = %d, want 2", got)
	}
	if got := a.Coef("z"); got != 0 {
		t.Fatalf("Coef(z) = %d, want 0", got)
	}
}

func TestLinSubst(t *testing.T) {
	// (2x - y + 3)[x := y + 1] = 2y + 2 - y + 3 = y + 5.
	a := lin(3, int64(2), "x", int64(-1), "y")
	got := a.Subst("x", lin(1, int64(1), "y"))
	want := lin(5, int64(1), "y")
	if !got.Equal(want) {
		t.Fatalf("Subst = %v, want %v", got, want)
	}
}

func TestLinEval(t *testing.T) {
	a := lin(3, int64(2), "x", int64(-1), "y")
	m := map[lang.Var]int64{"x": 4, "y": 10}
	if got := a.Eval(m); got != 1 {
		t.Fatalf("Eval = %d, want 1", got)
	}
}

func TestFloorCeilDiv(t *testing.T) {
	cases := []struct{ a, b, fl, ce int64 }{
		{7, 2, 3, 4},
		{-7, 2, -4, -3},
		{6, 3, 2, 2},
		{-6, 3, -2, -2},
		{0, 5, 0, 0},
		{1, 7, 0, 1},
		{-1, 7, -1, 0},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.fl {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.fl)
		}
		if got := ceilDiv(c.a, c.b); got != c.ce {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.ce)
		}
	}
}

func TestFromBoolAndEval(t *testing.T) {
	// (x < y && !(x == 0)) || y >= 10
	b := lang.OrE(
		lang.AndE(
			lang.CmpE(lang.V("x"), lang.Lt, lang.V("y")),
			lang.NotE(lang.CmpE(lang.V("x"), lang.Eq, lang.C(0))),
		),
		lang.CmpE(lang.V("y"), lang.Ge, lang.C(10)),
	)
	f := FromBool(b)
	cases := []struct {
		x, y int64
		want bool
	}{
		{1, 2, true},
		{0, 2, false},
		{0, 10, true},
		{5, 3, false},
		{-1, 0, true},
	}
	for _, c := range cases {
		m := map[lang.Var]int64{"x": c.x, "y": c.y}
		if got := Eval(f, m); got != c.want {
			t.Errorf("Eval(f, x=%d y=%d) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

// randBool generates a random small boolean expression over x, y, z.
func randBool(r *rand.Rand, depth int) lang.BoolExpr {
	if depth <= 0 || r.Intn(3) == 0 {
		ops := []lang.CmpOp{lang.Lt, lang.Le, lang.Gt, lang.Ge, lang.Eq, lang.Ne}
		return lang.CmpE(randInt(r, 2), ops[r.Intn(len(ops))], randInt(r, 2))
	}
	switch r.Intn(3) {
	case 0:
		return lang.And{X: randBool(r, depth-1), Y: randBool(r, depth-1)}
	case 1:
		return lang.Or{X: randBool(r, depth-1), Y: randBool(r, depth-1)}
	default:
		return lang.Not{X: randBool(r, depth-1)}
	}
}

func randInt(r *rand.Rand, depth int) lang.IntExpr {
	if depth <= 0 || r.Intn(2) == 0 {
		if r.Intn(2) == 0 {
			return lang.C(int64(r.Intn(7) - 3))
		}
		vars := []string{"x", "y", "z"}
		return lang.V(vars[r.Intn(len(vars))])
	}
	switch r.Intn(3) {
	case 0:
		return lang.Add{X: randInt(r, depth-1), Y: randInt(r, depth-1)}
	case 1:
		return lang.Sub{X: randInt(r, depth-1), Y: randInt(r, depth-1)}
	default:
		return lang.Mul{K: int64(r.Intn(5) - 2), X: randInt(r, depth-1)}
	}
}

func evalIntExpr(e lang.IntExpr, m map[lang.Var]int64) int64 {
	switch e := e.(type) {
	case lang.Const:
		return e.Val
	case lang.Ref:
		return m[e.V]
	case lang.Add:
		return evalIntExpr(e.X, m) + evalIntExpr(e.Y, m)
	case lang.Sub:
		return evalIntExpr(e.X, m) - evalIntExpr(e.Y, m)
	case lang.Neg:
		return -evalIntExpr(e.X, m)
	case lang.Mul:
		return e.K * evalIntExpr(e.X, m)
	}
	panic("unreachable")
}

func evalBoolExpr(b lang.BoolExpr, m map[lang.Var]int64) bool {
	switch b := b.(type) {
	case lang.BoolConst:
		return b.Val
	case lang.Cmp:
		x, y := evalIntExpr(b.X, m), evalIntExpr(b.Y, m)
		switch b.Op {
		case lang.Lt:
			return x < y
		case lang.Le:
			return x <= y
		case lang.Gt:
			return x > y
		case lang.Ge:
			return x >= y
		case lang.Eq:
			return x == y
		case lang.Ne:
			return x != y
		}
	case lang.And:
		return evalBoolExpr(b.X, m) && evalBoolExpr(b.Y, m)
	case lang.Or:
		return evalBoolExpr(b.X, m) || evalBoolExpr(b.Y, m)
	case lang.Not:
		return !evalBoolExpr(b.X, m)
	}
	panic("unreachable")
}

// Property: FromBool preserves semantics on random expressions and models.
func TestFromBoolAgreesWithDirectEvaluation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		b := randBool(r, 3)
		f := FromBool(b)
		m := map[lang.Var]int64{
			"x": int64(r.Intn(11) - 5),
			"y": int64(r.Intn(11) - 5),
			"z": int64(r.Intn(11) - 5),
		}
		if Eval(f, m) != evalBoolExpr(b, m) {
			t.Fatalf("semantics diverge for %v under %v:\n  formula %v", b, m, f)
		}
	}
}

// Property: Not is a semantic complement.
func TestNotIsComplement(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		f := FromBool(randBool(r, 3))
		g := Not(f)
		m := map[lang.Var]int64{
			"x": int64(r.Intn(11) - 5),
			"y": int64(r.Intn(11) - 5),
			"z": int64(r.Intn(11) - 5),
		}
		if Eval(f, m) == Eval(g, m) {
			t.Fatalf("Not failed: f and ¬f agree under %v\n f=%v\n g=%v", m, f, g)
		}
	}
}

// Property: DNF preserves semantics.
func TestCubesPreserveSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		f := FromBool(randBool(r, 3))
		cubes, ok := Cubes(f, MaxCubes)
		if !ok {
			continue
		}
		fs := make([]Formula, len(cubes))
		for j, c := range cubes {
			fs[j] = c.Formula()
		}
		g := Disj(fs...)
		m := map[lang.Var]int64{
			"x": int64(r.Intn(11) - 5),
			"y": int64(r.Intn(11) - 5),
			"z": int64(r.Intn(11) - 5),
		}
		if Eval(f, m) != Eval(g, m) {
			t.Fatalf("DNF changed semantics under %v:\n f=%v\n g=%v", m, f, g)
		}
	}
}

// Property (soundness of shadows): for random f and witness w with
// f(w) true, the over-projection of x must hold at w restricted to the
// kept variables; and any point satisfying the under-projection must have
// an integer completion satisfying f (checked by search over a window).
func TestExistsShadows(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		f := FromBool(randBool(r, 2))
		m := map[lang.Var]int64{
			"x": int64(r.Intn(9) - 4),
			"y": int64(r.Intn(9) - 4),
			"z": int64(r.Intn(9) - 4),
		}
		over, _ := Exists(f, []lang.Var{"x"}, Over)
		under, _ := Exists(f, []lang.Var{"x"}, Under)
		if Eval(f, m) && !Eval(over, m) {
			t.Fatalf("over-projection excluded a witness:\n f=%v\n over=%v\n m=%v", f, over, m)
		}
		if Eval(under, m) {
			found := false
			for x := int64(-60); x <= 60 && !found; x++ {
				m2 := map[lang.Var]int64{"x": x, "y": m["y"], "z": m["z"]}
				found = Eval(f, m2)
			}
			if !found {
				t.Fatalf("under-projection admitted a non-witness:\n f=%v\n under=%v\n m=%v", f, under, m)
			}
		}
	}
}

// Property: preimage of simple statements is exact for assign/assume.
func TestPreAssignAssume(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		f := FromBool(randBool(r, 2))
		m := map[lang.Var]int64{
			"x": int64(r.Intn(9) - 4),
			"y": int64(r.Intn(9) - 4),
			"z": int64(r.Intn(9) - 4),
		}
		e := randInt(r, 2)
		asg := lang.Assign{Lhs: "x", Rhs: e}
		pre := Pre(asg, f, Over)
		m2 := map[lang.Var]int64{"x": evalIntExpr(e, m), "y": m["y"], "z": m["z"]}
		if Eval(pre, m) != Eval(f, m2) {
			t.Fatalf("pre(assign) wrong:\n f=%v\n pre=%v\n m=%v", f, pre, m)
		}
		cond := randBool(r, 1)
		asm := lang.Assume{Cond: cond}
		preA := Pre(asm, f, Over)
		want := evalBoolExpr(cond, m) && Eval(f, m)
		if Eval(preA, m) != want {
			t.Fatalf("pre(assume) wrong:\n f=%v\n pre=%v\n m=%v", f, preA, m)
		}
	}
}

func TestBoundsOn(t *testing.T) {
	// 2x ≤ 7 ∧ x ≥ -1  →  x ∈ [-1, 3].
	c := Cube{
		{L: lin(-7, int64(2), "x")},
		{L: lin(-1, int64(-1), "x")},
	}
	lo, hi, hasLo, hasHi := BoundsOn(c, "x", map[lang.Var]int64{})
	if !hasLo || !hasHi || lo != -1 || hi != 3 {
		t.Fatalf("BoundsOn = [%d,%d] (%v,%v), want [-1,3]", lo, hi, hasLo, hasHi)
	}
}

func TestSubstMapSimultaneous(t *testing.T) {
	// (x - y ≤ 0)[x↦y, y↦x] must swap, not chain.
	f := LEq(LinVar("x"), LinVar("y"))
	g := SubstMap(f, map[lang.Var]Lin{"x": LinVar("y"), "y": LinVar("x")})
	m := map[lang.Var]int64{"x": 1, "y": 5}
	if Eval(g, m) {
		t.Fatalf("simultaneous substitution failed: %v should be false under %v", g, m)
	}
	m2 := map[lang.Var]int64{"x": 5, "y": 1}
	if !Eval(g, m2) {
		t.Fatalf("simultaneous substitution failed: %v should be true under %v", g, m2)
	}
}

func TestFreeVars(t *testing.T) {
	f := Conj(LEq(LinVar("b"), LinVar("a")), Disj(EQ(LinVar("c")), LEq(LinVar("a"), LinConst(0))))
	got := FreeVars(f)
	want := []lang.Var{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("FreeVars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FreeVars = %v, want %v", got, want)
		}
	}
}

func TestConjDisjFolding(t *testing.T) {
	if Conj(True, True) != True {
		t.Error("Conj(true,true) != true")
	}
	if Conj(True, False) != False {
		t.Error("Conj(true,false) != false")
	}
	if Disj(False, False) != False {
		t.Error("Disj(false,false) != false")
	}
	if Disj(False, True) != True {
		t.Error("Disj(false,true) != true")
	}
	a := LEq(LinVar("x"), LinConst(1))
	if got := Conj(a, True); got.String() != a.String() {
		t.Errorf("Conj(a,true) = %v, want %v", got, a)
	}
}

// quick-based property: Lin.Add is commutative and Scale distributes over
// evaluation.
func TestLinArithmeticProperties(t *testing.T) {
	type vec struct{ A, B, C, K int8 }
	err := quick.Check(func(p vec, x, y int8) bool {
		l := lin(int64(p.A), int64(p.B), "x", int64(p.C), "y")
		r := lin(int64(p.K), int64(p.A), "y")
		m := map[lang.Var]int64{"x": int64(x), "y": int64(y)}
		if l.Add(r).Eval(m) != l.Eval(m)+r.Eval(m) {
			return false
		}
		if !l.Add(r).Equal(r.Add(l)) {
			return false
		}
		if l.Scale(3).Eval(m) != 3*l.Eval(m) {
			return false
		}
		return l.Sub(r).Eval(m) == l.Eval(m)-r.Eval(m)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMentionsAndSize(t *testing.T) {
	f := Conj(LEq(LinVar("a"), LinConst(1)), Disj(EQ(LinVar("b")), LEq(LinVar("c"), LinConst(0))))
	if !Mentions(f, map[lang.Var]bool{"b": true}) {
		t.Error("Mentions missed b")
	}
	if Mentions(f, map[lang.Var]bool{"z": true}) {
		t.Error("Mentions invented z")
	}
	if Size(f) < 4 {
		t.Errorf("Size = %d", Size(f))
	}
	if Size(True) != 1 {
		t.Errorf("Size(true) = %d", Size(True))
	}
}

func TestKeyDistinguishesStructure(t *testing.T) {
	a := LEq(LinVar("x"), LinConst(1))
	b := LEq(LinVar("x"), LinConst(2))
	if Key(a) == Key(b) {
		t.Error("distinct atoms share a key")
	}
	if Key(Conj(a, b)) == Key(Disj(a, b)) {
		t.Error("and/or share a key")
	}
	// Key is stable across construction order for deduplicated Conj.
	if Key(Conj(a, b, a)) != Key(Conj(a, b)) {
		t.Error("duplicate conjunct changed the key")
	}
}

func TestLtAndEqBuilders(t *testing.T) {
	m := map[lang.Var]int64{"x": 4, "y": 5}
	if !Eval(Lt(LinVar("x"), LinVar("y")), m) {
		t.Error("4 < 5 failed")
	}
	if Eval(Lt(LinVar("y"), LinVar("x")), m) {
		t.Error("5 < 4 held")
	}
	if !Eval(Eq(LinVar("x"), LinConst(4)), m) {
		t.Error("x = 4 failed")
	}
}
