// Canonical wire format for formulas: a deterministic byte encoding
// that is stable across processes, unlike the process-local intern ids
// behind logic.Key.
//
// The two key spaces serve different jobs and must never be mixed:
//
//   - Key / KeyID (intern.go) are the in-memory hot path. They depend
//     on per-process first-intern order and are meaningless to any
//     other process or any later run.
//   - WireBytes / CanonicalKey (this file) are the durable identity.
//     They are computed purely from structure — variable names,
//     coefficients, node kinds — with And/Or children sorted by their
//     own encodings and deduplicated, so structurally equal formulas
//     (up to child order) encode to identical bytes in every process.
//
// The encoding is injective on canonicalized structure and idempotent:
// decoding and re-encoding any wire image yields the same bytes. Only
// CanonicalKey/WireBytes may cross a process boundary or be written to
// a persisted artifact; internal/wire enforces that invariant for the
// summary store.
package logic

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/lang"
)

// Wire tags, one per formula node kind. The zero byte is reserved as
// the "nil formula" marker used by internal/wire for optional fields.
const (
	WireNil   = 0x00
	wireFalse = 0x01
	wireTrue  = 0x02
	wireLE    = 0x03
	wireEQ    = 0x04
	wireAnd   = 0x05
	wireOr    = 0x06
)

// Decoder hardening bounds: decoding untrusted bytes must terminate
// with an error, never a panic or a pathological allocation.
const (
	maxWireDepth    = 64
	maxWireChildren = 1 << 16
	maxWireVars     = 1 << 12
	maxWireName     = 1 << 12
)

// wireKeyMemo caches canonical encodings by interned id. The id→bytes
// mapping is immutable (an id permanently identifies one structure),
// so the memo needs no invalidation; it is bounded and reset when full,
// like the SUMDB answer memo.
var wireKeyMemo struct {
	sync.RWMutex
	m map[ID]string
}

const wireKeyMemoBound = 1 << 16

// WireBytes returns the canonical wire encoding of f.
func WireBytes(f Formula) []byte {
	return AppendWire(nil, f)
}

// CanonicalKey returns the canonical wire encoding of f as a string:
// the durable, cross-process analogue of Key. It is injective on
// canonicalized structure (And/Or children sorted and deduplicated)
// and identical in every process, regardless of interning order.
func CanonicalKey(f Formula) string {
	id := KeyID(f)
	if id != 0 {
		wireKeyMemo.RLock()
		k, ok := wireKeyMemo.m[id]
		wireKeyMemo.RUnlock()
		if ok {
			return k
		}
	}
	k := string(WireBytes(f))
	if id != 0 {
		wireKeyMemo.Lock()
		if wireKeyMemo.m == nil || len(wireKeyMemo.m) >= wireKeyMemoBound {
			wireKeyMemo.m = make(map[ID]string)
		}
		wireKeyMemo.m[id] = k
		wireKeyMemo.Unlock()
	}
	return k
}

// AppendWire appends the canonical wire encoding of f to dst.
func AppendWire(dst []byte, f Formula) []byte {
	switch f := f.(type) {
	case Bool:
		if bool(f) {
			return append(dst, wireTrue)
		}
		return append(dst, wireFalse)
	case Atom:
		tag := byte(wireLE)
		if f.Eq {
			tag = wireEQ
		}
		dst = append(dst, tag)
		return appendWireLin(dst, f.L)
	case And:
		return appendWireNode(dst, wireAnd, f.Fs)
	case Or:
		return appendWireNode(dst, wireOr, f.Fs)
	default:
		panic(fmt.Sprintf("logic: unknown Formula %T", f))
	}
}

// appendWireNode encodes an And/Or node canonically: children are
// flattened (same-kind nests), constant-folded, encoded individually,
// sorted by their encodings and deduplicated. A node that folds to a
// single child (or to a constant) emits that child's encoding directly,
// mirroring what the Conj/Disj constructors would build — this is what
// makes the encoding idempotent under decode→encode.
func appendWireNode(dst []byte, tag byte, fs []Formula) []byte {
	kids := make([][]byte, 0, len(fs))
	kids, short := gatherWire(kids, tag, fs)
	if short {
		// Absorbing constant: false in a conjunction, true in a
		// disjunction.
		if tag == wireAnd {
			return append(dst, wireFalse)
		}
		return append(dst, wireTrue)
	}
	sort.Slice(kids, func(i, j int) bool { return bytes.Compare(kids[i], kids[j]) < 0 })
	uniq := kids[:0]
	for i, k := range kids {
		if i > 0 && bytes.Equal(k, kids[i-1]) {
			continue
		}
		uniq = append(uniq, k)
	}
	switch len(uniq) {
	case 0:
		// Empty conjunction is true, empty disjunction is false.
		if tag == wireAnd {
			return append(dst, wireTrue)
		}
		return append(dst, wireFalse)
	case 1:
		return append(dst, uniq[0]...)
	}
	dst = append(dst, tag)
	dst = binary.AppendUvarint(dst, uint64(len(uniq)))
	for _, k := range uniq {
		dst = append(dst, k...)
	}
	return dst
}

// gatherWire collects the canonical encodings of an And/Or node's
// children, flattening same-kind children and dropping neutral
// constants. It reports short=true when an absorbing constant makes
// the whole node constant.
func gatherWire(kids [][]byte, tag byte, fs []Formula) (_ [][]byte, short bool) {
	for _, g := range fs {
		switch g := g.(type) {
		case Bool:
			if bool(g) == (tag == wireAnd) {
				continue // neutral element: drop
			}
			return kids, true // absorbing element
		case And:
			if tag == wireAnd {
				var s bool
				kids, s = gatherWire(kids, tag, g.Fs)
				if s {
					return kids, true
				}
				continue
			}
		case Or:
			if tag == wireOr {
				var s bool
				kids, s = gatherWire(kids, tag, g.Fs)
				if s {
					return kids, true
				}
				continue
			}
		}
		kids = append(kids, AppendWire(nil, g))
	}
	return kids, false
}

// appendWireLin encodes a canonical linear term: zigzag-varint constant,
// then the (name, coefficient) pairs in the term's canonical sorted
// variable order.
func appendWireLin(dst []byte, l Lin) []byte {
	dst = binary.AppendVarint(dst, l.K)
	dst = binary.AppendUvarint(dst, uint64(len(l.Vars)))
	for i, v := range l.Vars {
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		dst = append(dst, v...)
		dst = binary.AppendVarint(dst, l.Coefs[i])
	}
	return dst
}

// DecodeWire decodes one formula from buf and returns it together with
// the number of bytes consumed. The formula is rebuilt through the
// package constructors, so the result is interned and canonical in this
// process; malformed input returns an error, never a panic.
func DecodeWire(buf []byte) (Formula, int, error) {
	return decodeWire(buf, 0)
}

// DecodeWireAll is DecodeWire requiring the whole buffer to be one
// formula with no trailing bytes.
func DecodeWireAll(buf []byte) (Formula, error) {
	f, n, err := DecodeWire(buf)
	if err != nil {
		return nil, err
	}
	if n != len(buf) {
		return nil, fmt.Errorf("logic: wire: %d trailing bytes after formula", len(buf)-n)
	}
	return f, nil
}

func decodeWire(buf []byte, depth int) (Formula, int, error) {
	if depth > maxWireDepth {
		return nil, 0, fmt.Errorf("logic: wire: formula nesting exceeds %d", maxWireDepth)
	}
	if len(buf) == 0 {
		return nil, 0, fmt.Errorf("logic: wire: truncated formula (empty input)")
	}
	tag := buf[0]
	pos := 1
	switch tag {
	case wireFalse:
		return False, pos, nil
	case wireTrue:
		return True, pos, nil
	case wireLE, wireEQ:
		l, n, err := decodeWireLin(buf[pos:])
		if err != nil {
			return nil, 0, err
		}
		pos += n
		if tag == wireEQ {
			return EQ(l), pos, nil
		}
		return LE(l), pos, nil
	case wireAnd, wireOr:
		count, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("logic: wire: bad child count")
		}
		pos += n
		if count > maxWireChildren {
			return nil, 0, fmt.Errorf("logic: wire: %d children exceeds %d", count, maxWireChildren)
		}
		fs := make([]Formula, 0, count)
		for i := uint64(0); i < count; i++ {
			f, n, err := decodeWire(buf[pos:], depth+1)
			if err != nil {
				return nil, 0, err
			}
			pos += n
			fs = append(fs, f)
		}
		if tag == wireAnd {
			return Conj(fs...), pos, nil
		}
		return Disj(fs...), pos, nil
	default:
		return nil, 0, fmt.Errorf("logic: wire: unknown formula tag 0x%02x", tag)
	}
}

func decodeWireLin(buf []byte) (Lin, int, error) {
	k, pos := binary.Varint(buf)
	if pos <= 0 {
		return Lin{}, 0, fmt.Errorf("logic: wire: bad term constant")
	}
	nvars, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return Lin{}, 0, fmt.Errorf("logic: wire: bad variable count")
	}
	pos += n
	if nvars > maxWireVars {
		return Lin{}, 0, fmt.Errorf("logic: wire: %d variables exceeds %d", nvars, maxWireVars)
	}
	l := LinConst(k)
	for i := uint64(0); i < nvars; i++ {
		nameLen, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return Lin{}, 0, fmt.Errorf("logic: wire: bad variable name length")
		}
		pos += n
		if nameLen > maxWireName || uint64(len(buf)-pos) < nameLen {
			return Lin{}, 0, fmt.Errorf("logic: wire: variable name length %d out of range", nameLen)
		}
		name := lang.Var(buf[pos : pos+int(nameLen)])
		pos += int(nameLen)
		coef, n := binary.Varint(buf[pos:])
		if n <= 0 {
			return Lin{}, 0, fmt.Errorf("logic: wire: bad coefficient")
		}
		pos += n
		if coef != 0 {
			// Add canonicalizes: duplicate names merge, zero
			// coefficients drop, variables sort. Decoding therefore
			// accepts any byte-level spelling but always yields the
			// canonical term.
			l = l.Add(LinVar(name).Scale(coef))
		}
	}
	return l, pos, nil
}
