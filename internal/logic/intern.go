// Hash-consing: a process-global, sharded intern table assigning small
// integer ids to linear terms and formula nodes. Structurally equal
// values always receive the same id, so the id doubles as a canonical
// map key — logic.Key, the entailment cache, the SUMDB answer memo and
// the DPLL skeleton's atom interning all become integer operations
// instead of recursive string builds.
//
// Invariant: interned values are immutable. Every Lin operation returns
// a fresh term and every Formula constructor returns a fresh node, so an
// id, once assigned, remains valid for the process lifetime. Ids are
// assigned in first-intern order: they are stable within a process but
// carry no meaning across processes, which is fine because every
// consumer uses them only as identity.
package logic

import (
	"strconv"
	"sync"
	"sync/atomic"
)

// ID identifies an interned term or formula node. The zero ID means
// "not interned" (the table cap was reached); callers must fall back to
// string keys for such values.
type ID uint64

// Reserved ids for the constant formulas.
const (
	idFalse ID = 1
	idTrue  ID = 2
)

const (
	// internShards stripes the table so concurrent PUNCH instances
	// rarely contend on the same lock.
	internShards = 64
	// maxInternedIDs caps the table. Past the cap new structures get
	// ID 0 and key construction falls back to strings; already-interned
	// structures keep resolving. The cap only guards pathological runs —
	// the corpus peaks at a few tens of thousands of distinct nodes.
	maxInternedIDs = 1 << 21
	// Node tags distinguishing the interned kinds in one namespace.
	tagLin  = byte('l')
	tagAtom = byte('a')
	tagEq   = byte('e')
	tagAnd  = byte('A')
	tagOr   = byte('O')
)

type linEntry struct {
	l  Lin
	id ID
}

type nodeEntry struct {
	tag  byte
	kids []ID
	id   ID
}

type internShard struct {
	mu    sync.RWMutex
	lins  map[uint64][]linEntry
	nodes map[uint64][]nodeEntry
}

var internTab [internShards]internShard

var (
	internNext   uint64 // atomic; allocated ids are internNext+2
	internHits   int64  // atomic
	internMisses int64  // atomic
)

func init() {
	for i := range internTab {
		internTab[i].lins = map[uint64][]linEntry{}
		internTab[i].nodes = map[uint64][]nodeEntry{}
	}
}

// InternStats reports the global table's cumulative hit/miss counters: a
// hit is an intern request answered by an existing entry, a miss is a
// fresh insertion. Engines snapshot the pair at run start and fold the
// delta into the run's metrics as hashcons_hits.
func InternStats() (hits, misses int64) {
	return atomic.LoadInt64(&internHits), atomic.LoadInt64(&internMisses)
}

func allocID() ID {
	n := atomic.AddUint64(&internNext, 1)
	if n > maxInternedIDs-2 {
		return 0
	}
	return ID(n + 2) // 1 and 2 are reserved for False/True
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func mix(h, x uint64) uint64 {
	h ^= x
	h *= fnvPrime
	return h
}

func mixString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = mix(h, uint64(s[i]))
	}
	return mix(h, 0xff) // terminator so "ab","c" ≠ "a","bc"
}

func hashLin(l Lin) uint64 {
	h := mix(uint64(fnvOffset), uint64(l.K))
	for i, v := range l.Vars {
		h = mixString(h, string(v))
		h = mix(h, uint64(l.Coefs[i]))
	}
	return h
}

// LinID interns the canonical linear term l and returns its id (0 when
// the table is full).
func LinID(l Lin) ID {
	h := hashLin(l)
	sh := &internTab[h%internShards]
	sh.mu.RLock()
	for _, e := range sh.lins[h] {
		if e.l.Equal(l) {
			sh.mu.RUnlock()
			atomic.AddInt64(&internHits, 1)
			return e.id
		}
	}
	sh.mu.RUnlock()
	sh.mu.Lock()
	for _, e := range sh.lins[h] {
		if e.l.Equal(l) {
			sh.mu.Unlock()
			atomic.AddInt64(&internHits, 1)
			return e.id
		}
	}
	id := allocID()
	if id != 0 {
		sh.lins[h] = append(sh.lins[h], linEntry{l: l, id: id})
	}
	sh.mu.Unlock()
	atomic.AddInt64(&internMisses, 1)
	return id
}

func hashNode(tag byte, kids []ID) uint64 {
	h := mix(uint64(fnvOffset), uint64(tag))
	for _, k := range kids {
		h = mix(h, uint64(k))
	}
	return mix(h, uint64(len(kids)))
}

func nodeEq(e nodeEntry, tag byte, kids []ID) bool {
	if e.tag != tag || len(e.kids) != len(kids) {
		return false
	}
	for i, k := range kids {
		if e.kids[i] != k {
			return false
		}
	}
	return true
}

// internNode interns a formula node identified by its tag and ordered
// child ids. The kids slice is retained: callers pass ownership.
func internNode(tag byte, kids []ID) ID {
	h := hashNode(tag, kids)
	sh := &internTab[h%internShards]
	sh.mu.RLock()
	for _, e := range sh.nodes[h] {
		if nodeEq(e, tag, kids) {
			sh.mu.RUnlock()
			atomic.AddInt64(&internHits, 1)
			return e.id
		}
	}
	sh.mu.RUnlock()
	sh.mu.Lock()
	for _, e := range sh.nodes[h] {
		if nodeEq(e, tag, kids) {
			sh.mu.Unlock()
			atomic.AddInt64(&internHits, 1)
			return e.id
		}
	}
	id := allocID()
	if id != 0 {
		sh.nodes[h] = append(sh.nodes[h], nodeEntry{tag: tag, kids: kids, id: id})
	}
	sh.mu.Unlock()
	atomic.AddInt64(&internMisses, 1)
	return id
}

// internAtom interns the atom (l ≤ 0) or (l = 0) without allocating on
// the lookup path.
func internAtom(l Lin, eq bool) ID {
	lid := LinID(l)
	if lid == 0 {
		return 0
	}
	tag := tagAtom
	if eq {
		tag = tagEq
	}
	h := hashNode(tag, []ID{lid}) // inlined by escape analysis; does not allocate
	sh := &internTab[h%internShards]
	sh.mu.RLock()
	for _, e := range sh.nodes[h] {
		if e.tag == tag && len(e.kids) == 1 && e.kids[0] == lid {
			sh.mu.RUnlock()
			atomic.AddInt64(&internHits, 1)
			return e.id
		}
	}
	sh.mu.RUnlock()
	return internNode(tag, []ID{lid})
}

// KeyID returns the structural identity of f as an interned id, or 0
// when f (or a subterm) overflowed the intern table. Nodes built by the
// package constructors carry their id; literal-built nodes are interned
// lazily here.
func KeyID(f Formula) ID {
	switch f := f.(type) {
	case Bool:
		if bool(f) {
			return idTrue
		}
		return idFalse
	case Atom:
		if f.id != 0 {
			return f.id
		}
		return internAtom(f.L, f.Eq)
	case And:
		if f.id != 0 {
			return f.id
		}
		return internNodeOf(tagAnd, f.Fs)
	case Or:
		if f.id != 0 {
			return f.id
		}
		return internNodeOf(tagOr, f.Fs)
	default:
		return 0
	}
}

func internNodeOf(tag byte, fs []Formula) ID {
	kids := make([]ID, len(fs))
	for i, g := range fs {
		id := KeyID(g)
		if id == 0 {
			return 0
		}
		kids[i] = id
	}
	return internNode(tag, kids)
}

// Key returns a canonical string for f, usable as a map key for
// deduplication. Logically equal formulas may have different keys; the
// key is only required to be injective on structure. Interned formulas
// key as "#<id>"; overflow falls back to the structural print with a
// distinguishing prefix.
func Key(f Formula) string {
	if id := KeyID(f); id != 0 {
		return "#" + strconv.FormatUint(uint64(id), 10)
	}
	return "!" + f.String()
}
