package parser

import (
	"fmt"

	"repro/internal/lang"
)

// Statement-level AST produced by the parser, lowered to a CFG afterwards.

type stmtNode interface{ isStmtNode() }

type assignNode struct {
	v lang.Var
	e lang.IntExpr
}
type havocNode struct{ v lang.Var }
type callNode struct {
	proc string
	args []lang.IntExpr
}
type callAssignNode struct {
	lhs  lang.Var
	proc string
	args []lang.IntExpr
}
type returnNode struct{ e lang.IntExpr }
type skipNode struct{}
type assumeNode struct{ b lang.BoolExpr }
type assertNode struct{ b lang.BoolExpr }
type abortNode struct{}
type ifNode struct {
	cond      lang.BoolExpr
	then, els []stmtNode
}
type whileNode struct {
	cond lang.BoolExpr
	body []stmtNode
}

func (assignNode) isStmtNode()     {}
func (havocNode) isStmtNode()      {}
func (callNode) isStmtNode()       {}
func (callAssignNode) isStmtNode() {}
func (returnNode) isStmtNode()     {}
func (skipNode) isStmtNode()       {}
func (assumeNode) isStmtNode()     {}
func (assertNode) isStmtNode()     {}
func (abortNode) isStmtNode()      {}
func (ifNode) isStmtNode()         {}
func (whileNode) isStmtNode()      {}

type procAST struct {
	name   string
	params []lang.Var
	locals []lang.Var
	body   []stmtNode
}

type programAST struct {
	name    string
	globals []lang.Var
	procs   []procAST
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && t.text == text
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.cur()
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(kind tokenKind, text string) error {
	if !p.at(kind, text) {
		return p.errorf("expected %q, found %s", text, p.cur())
	}
	p.advance()
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errorf("expected identifier, found %s", t)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) parseProgram() (*programAST, error) {
	prog := &programAST{name: "program"}
	if p.at(tokKeyword, "program") {
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		prog.name = name
		if err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
	}
	if p.at(tokKeyword, "globals") {
		p.advance()
		vars, err := p.parseIdentList()
		if err != nil {
			return nil, err
		}
		prog.globals = vars
		if err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
	}
	for !p.at(tokEOF, "") && p.cur().kind != tokEOF {
		proc, err := p.parseProc()
		if err != nil {
			return nil, err
		}
		prog.procs = append(prog.procs, *proc)
	}
	if len(prog.procs) == 0 {
		return nil, p.errorf("program has no procedures")
	}
	return prog, nil
}

func (p *parser) parseIdentList() ([]lang.Var, error) {
	var out []lang.Var
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	out = append(out, lang.Var(name))
	for p.at(tokPunct, ",") {
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		out = append(out, lang.Var(name))
	}
	return out, nil
}

func (p *parser) parseProc() (*procAST, error) {
	if err := p.expect(tokKeyword, "proc"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	proc := &procAST{name: name}
	if p.at(tokPunct, "(") {
		p.advance()
		if !p.at(tokPunct, ")") {
			params, err := p.parseIdentList()
			if err != nil {
				return nil, err
			}
			proc.params = params
		}
		if err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
	}
	if err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	if p.at(tokKeyword, "locals") {
		p.advance()
		vars, err := p.parseIdentList()
		if err != nil {
			return nil, err
		}
		proc.locals = vars
		if err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
	}
	body, err := p.parseStmtsUntilBrace()
	if err != nil {
		return nil, err
	}
	proc.body = body
	return proc, nil
}

func (p *parser) parseStmtsUntilBrace() ([]stmtNode, error) {
	var out []stmtNode
	for !p.at(tokPunct, "}") {
		if p.cur().kind == tokEOF {
			return nil, p.errorf("unexpected end of input, expected \"}\"")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	p.advance() // consume "}"
	return out, nil
}

func (p *parser) parseBlock() ([]stmtNode, error) {
	if err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	return p.parseStmtsUntilBrace()
}

func (p *parser) parseStmt() (stmtNode, error) {
	t := p.cur()
	switch {
	case t.kind == tokKeyword:
		switch t.text {
		case "skip":
			p.advance()
			return skipNode{}, p.expect(tokPunct, ";")
		case "abort":
			p.advance()
			return abortNode{}, p.expect(tokPunct, ";")
		case "return":
			p.advance()
			if p.at(tokPunct, ";") {
				p.advance()
				return returnNode{}, nil
			}
			e, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			return returnNode{e: e}, p.expect(tokPunct, ";")
		case "havoc":
			p.advance()
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return havocNode{v: lang.Var(name)}, p.expect(tokPunct, ";")
		case "assume", "assert":
			p.advance()
			if err := p.expect(tokPunct, "("); err != nil {
				return nil, err
			}
			b, err := p.parseBool()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			if err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
			if t.text == "assume" {
				return assumeNode{b: b}, nil
			}
			return assertNode{b: b}, nil
		case "if":
			p.advance()
			if err := p.expect(tokPunct, "("); err != nil {
				return nil, err
			}
			cond, err := p.parseBool()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			then, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			var els []stmtNode
			if p.at(tokKeyword, "else") {
				p.advance()
				els, err = p.parseBlock()
				if err != nil {
					return nil, err
				}
			}
			return ifNode{cond: cond, then: then, els: els}, nil
		case "while":
			p.advance()
			if err := p.expect(tokPunct, "("); err != nil {
				return nil, err
			}
			cond, err := p.parseBool()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			body, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			return whileNode{cond: cond, body: body}, nil
		}
		return nil, p.errorf("unexpected keyword %q", t.text)
	case t.kind == tokIdent:
		name := t.text
		p.advance()
		if p.at(tokPunct, "(") {
			args, err := p.parseCallArgs()
			if err != nil {
				return nil, err
			}
			return callNode{proc: name, args: args}, p.expect(tokPunct, ";")
		}
		if err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		// `x = f(...)` assigns the callee's return value.
		if p.cur().kind == tokIdent && p.pos+1 < len(p.toks) &&
			p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "(" {
			callee := p.cur().text
			p.advance()
			args, err := p.parseCallArgs()
			if err != nil {
				return nil, err
			}
			return callAssignNode{lhs: lang.Var(name), proc: callee, args: args}, p.expect(tokPunct, ";")
		}
		e, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		return assignNode{v: lang.Var(name), e: e}, p.expect(tokPunct, ";")
	default:
		return nil, p.errorf("unexpected token %s at start of statement", t)
	}
}

// parseCallArgs parses "( e1, e2, ... )" after a callee name.
func (p *parser) parseCallArgs() ([]lang.IntExpr, error) {
	if err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var args []lang.IntExpr
	if !p.at(tokPunct, ")") {
		for {
			e, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			args = append(args, e)
			if !p.at(tokPunct, ",") {
				break
			}
			p.advance()
		}
	}
	return args, p.expect(tokPunct, ")")
}

// parseBool: disjunction of conjunctions of (possibly negated) relations.
func (p *parser) parseBool() (lang.BoolExpr, error) {
	left, err := p.parseBoolAnd()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp, "||") {
		p.advance()
		right, err := p.parseBoolAnd()
		if err != nil {
			return nil, err
		}
		left = lang.Or{X: left, Y: right}
	}
	return left, nil
}

func (p *parser) parseBoolAnd() (lang.BoolExpr, error) {
	left, err := p.parseBoolUnary()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp, "&&") {
		p.advance()
		right, err := p.parseBoolUnary()
		if err != nil {
			return nil, err
		}
		left = lang.And{X: left, Y: right}
	}
	return left, nil
}

func (p *parser) parseBoolUnary() (lang.BoolExpr, error) {
	if p.at(tokOp, "!") {
		p.advance()
		inner, err := p.parseBoolUnary()
		if err != nil {
			return nil, err
		}
		return lang.Not{X: inner}, nil
	}
	if p.at(tokKeyword, "true") {
		p.advance()
		return lang.BoolConst{Val: true}, nil
	}
	if p.at(tokKeyword, "false") {
		p.advance()
		return lang.BoolConst{Val: false}, nil
	}
	if p.at(tokPunct, "(") {
		// Could be a parenthesised boolean or an integer expression in a
		// relation; try boolean first by lookahead for a relation operator
		// after the matching paren is hard, so parse a full boolean and
		// fall back.
		save := p.pos
		p.advance()
		b, err := p.parseBool()
		if err == nil && p.at(tokPunct, ")") {
			p.advance()
			if !p.atRelationalOp() && !p.atArithOp() {
				return b, nil
			}
		}
		p.pos = save
	}
	return p.parseRelation()
}

func (p *parser) atRelationalOp() bool {
	t := p.cur()
	if t.kind != tokOp {
		return false
	}
	switch t.text {
	case "<", "<=", ">", ">=", "==", "!=":
		return true
	}
	return false
}

func (p *parser) atArithOp() bool {
	t := p.cur()
	if t.kind != tokOp {
		return false
	}
	switch t.text {
	case "+", "-", "*":
		return true
	}
	return false
}

func (p *parser) parseRelation() (lang.BoolExpr, error) {
	left, err := p.parseInt()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if !p.atRelationalOp() {
		return nil, p.errorf("expected comparison operator, found %s", t)
	}
	p.advance()
	right, err := p.parseInt()
	if err != nil {
		return nil, err
	}
	var op lang.CmpOp
	switch t.text {
	case "<":
		op = lang.Lt
	case "<=":
		op = lang.Le
	case ">":
		op = lang.Gt
	case ">=":
		op = lang.Ge
	case "==":
		op = lang.Eq
	case "!=":
		op = lang.Ne
	}
	return lang.Cmp{Op: op, X: left, Y: right}, nil
}

// parseInt: additive over multiplicative over unary over primary.
func (p *parser) parseInt() (lang.IntExpr, error) {
	left, err := p.parseIntMul()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp, "+") || p.at(tokOp, "-") {
		op := p.cur().text
		p.advance()
		right, err := p.parseIntMul()
		if err != nil {
			return nil, err
		}
		if op == "+" {
			left = lang.Add{X: left, Y: right}
		} else {
			left = lang.Sub{X: left, Y: right}
		}
	}
	return left, nil
}

func (p *parser) parseIntMul() (lang.IntExpr, error) {
	left, err := p.parseIntUnary()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp, "*") {
		opTok := p.cur()
		p.advance()
		right, err := p.parseIntUnary()
		if err != nil {
			return nil, err
		}
		// Keep the language linear: one side must be constant.
		if k, ok := constValue(left); ok {
			left = lang.Mul{K: k, X: right}
		} else if k, ok := constValue(right); ok {
			left = lang.Mul{K: k, X: left}
		} else {
			return nil, &Error{Line: opTok.line, Col: opTok.col,
				Msg: "nonlinear multiplication: one operand of * must be a constant"}
		}
	}
	return left, nil
}

func constValue(e lang.IntExpr) (int64, bool) {
	switch e := e.(type) {
	case lang.Const:
		return e.Val, true
	case lang.Neg:
		if k, ok := constValue(e.X); ok {
			return -k, true
		}
	case lang.Mul:
		if k, ok := constValue(e.X); ok {
			return e.K * k, true
		}
	}
	return 0, false
}

func (p *parser) parseIntUnary() (lang.IntExpr, error) {
	if p.at(tokOp, "-") {
		p.advance()
		inner, err := p.parseIntUnary()
		if err != nil {
			return nil, err
		}
		return lang.Neg{X: inner}, nil
	}
	return p.parseIntPrimary()
}

func (p *parser) parseIntPrimary() (lang.IntExpr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		var v int64
		fmt.Sscanf(t.text, "%d", &v)
		return lang.Const{Val: v}, nil
	case tokIdent:
		p.advance()
		return lang.Ref{V: lang.Var(t.text)}, nil
	case tokPunct:
		if t.text == "(" {
			p.advance()
			e, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			return e, p.expect(tokPunct, ")")
		}
	}
	return nil, p.errorf("expected integer expression, found %s", t)
}
