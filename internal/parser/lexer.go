// Package parser parses the small imperative language of this
// reproduction into cfg.Program values.
//
// Grammar sketch:
//
//	program  := ["program" ident ";"] ["globals" identlist ";"] proc+
//	proc     := "proc" ident ["(" identlist ")"]
//	            "{" ["locals" identlist ";"] stmt* "}"
//	stmt     := ident "=" iexpr ";" | ident "=" ident "(" args ")" ";"
//	          | ident "(" args ")" ";" | "havoc" ident ";"
//	          | "assume" "(" bexpr ")" ";" | "assert" "(" bexpr ")" ";"
//	          | "return" [iexpr] ";" | "abort" ";" | "skip" ";"
//	          | "if" "(" bexpr ")" block ["else" block]
//	          | "while" "(" bexpr ")" block
//	block    := "{" stmt* "}"
//
// Procedure parameters and returns are syntactic sugar lowered onto
// dedicated globals (the §3.1 model communicates through globals);
// recursion through sugared procedures is rejected.
//
// Assertions are compiled to the standard software-model-checking
// encoding: a failing assert sets the implicit global error flag and jumps
// to the procedure exit; after every call an error check propagates the
// flag to the caller's exit (the SDV harness behaviour).
package parser

import (
	"fmt"
	"strconv"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokPunct   // ( ) { } ; ,
	tokOp      // + - * = == != < <= > >= && || !
	tokKeyword // program globals proc locals if else while assume assert havoc skip abort true false
)

var keywords = map[string]bool{
	"program": true, "globals": true, "proc": true, "locals": true,
	"if": true, "else": true, "while": true, "assume": true,
	"assert": true, "havoc": true, "skip": true, "abort": true,
	"true": true, "false": true, "return": true,
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// Error is a parse error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (lx *lexer) errorf(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) peekRune() rune {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) nextRune() rune {
	r := lx.peekRune()
	lx.pos++
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

func (lx *lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		r := lx.peekRune()
		switch {
		case unicode.IsSpace(r):
			lx.nextRune()
		case r == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.peekRune() != '\n' {
				lx.nextRune()
			}
		case r == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			line, col := lx.line, lx.col
			lx.nextRune()
			lx.nextRune()
			for {
				if lx.pos >= len(lx.src) {
					return lx.errorf(line, col, "unterminated block comment")
				}
				if lx.peekRune() == '*' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/' {
					lx.nextRune()
					lx.nextRune()
					break
				}
				lx.nextRune()
			}
		default:
			return nil
		}
	}
	return nil
}

func (lx *lexer) next() (token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	line, col := lx.line, lx.col
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	r := lx.peekRune()
	switch {
	case unicode.IsLetter(r) || r == '_':
		start := lx.pos
		for lx.pos < len(lx.src) {
			r := lx.peekRune()
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
				break
			}
			lx.nextRune()
		}
		text := string(lx.src[start:lx.pos])
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: line, col: col}, nil
	case unicode.IsDigit(r):
		start := lx.pos
		for lx.pos < len(lx.src) && unicode.IsDigit(lx.peekRune()) {
			lx.nextRune()
		}
		text := string(lx.src[start:lx.pos])
		if _, err := strconv.ParseInt(text, 10, 64); err != nil {
			return token{}, lx.errorf(line, col, "number %s out of range", text)
		}
		return token{kind: tokNumber, text: text, line: line, col: col}, nil
	case r == '(' || r == ')' || r == '{' || r == '}' || r == ';' || r == ',':
		lx.nextRune()
		return token{kind: tokPunct, text: string(r), line: line, col: col}, nil
	default:
		two := ""
		if lx.pos+1 < len(lx.src) {
			two = string(lx.src[lx.pos : lx.pos+2])
		}
		switch two {
		case "==", "!=", "<=", ">=", "&&", "||":
			lx.nextRune()
			lx.nextRune()
			return token{kind: tokOp, text: two, line: line, col: col}, nil
		}
		switch r {
		case '+', '-', '*', '=', '<', '>', '!':
			lx.nextRune()
			return token{kind: tokOp, text: string(r), line: line, col: col}, nil
		}
		return token{}, lx.errorf(line, col, "unexpected character %q", r)
	}
}

// tokenize scans the whole input.
func tokenize(src string) ([]token, error) {
	lx := newLexer(src)
	var out []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
