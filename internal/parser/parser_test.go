package parser

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/lang"
)

const sample = `
program demo;
globals g, h;

proc main {
  locals x, y;
  x = 3;
  havoc y;
  assume(y > 0);
  if (x + y <= 10) {
    foo();
  } else {
    y = y - 1;
  }
  while (y > 0) {
    y = y - 1;
  }
  assert(y >= 0);
}

proc foo {
  g = g + 1;
}
`

func TestParseSample(t *testing.T) {
	prog, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "demo" {
		t.Errorf("Name = %q, want demo", prog.Name)
	}
	if prog.Main != "main" {
		t.Errorf("Main = %q", prog.Main)
	}
	if len(prog.Procs) != 2 {
		t.Fatalf("got %d procs", len(prog.Procs))
	}
	// __err must be added because of the assert.
	if !prog.IsGlobal(ErrVar) {
		t.Error("__err not added to globals")
	}
	if !prog.IsGlobal("g") || !prog.IsGlobal("h") {
		t.Error("declared globals missing")
	}
	cg := prog.CallGraph()
	if len(cg["main"]) != 1 || cg["main"][0] != "foo" {
		t.Errorf("call graph main -> %v", cg["main"])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"proc main { x = ; }", "expected integer expression"},
		{"proc main { if x > 0 { skip; } }", `expected "("`},
		{"proc main { x = y * z; }", "nonlinear"},
		{"proc main { foo(); }", "calls undefined procedure"},
		{"globals g; proc main { locals g; skip; }", "shadows"},
		{"proc main { assume(x >); }", "expected integer expression"},
		{"", "no procedures"},
		{"proc main { x = 99999999999999999999; }", "out of range"},
		{"proc main { /* unterminated }", "unterminated block comment"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error = %v, want substring %q", c.src, err, c.want)
		}
	}
}

func TestMainFallback(t *testing.T) {
	prog, err := Parse("proc top { skip; }")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Main != "top" {
		t.Errorf("Main = %q, want top", prog.Main)
	}
	if _, err := ParseWithOptions("proc top { skip; }", Options{Main: "absent"}); err == nil {
		t.Error("expected error for absent main")
	}
}

func TestAssertCompilation(t *testing.T) {
	// A violated assertion must reach exit with __err == 1.
	prog := MustParse(`proc main { locals x; x = 1; assert(x <= 0); x = 5; }`)
	res := interp.Run(prog, interp.Options{})
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	if res.Final[ErrVar] != 1 {
		t.Fatalf("__err = %d, want 1", res.Final[ErrVar])
	}
	// A satisfied assertion leaves __err at 0.
	prog2 := MustParse(`proc main { locals x; x = 1; assert(x >= 0); }`)
	res2 := interp.Run(prog2, interp.Options{})
	if !res2.Completed || res2.Final[ErrVar] != 0 {
		t.Fatalf("got completed=%v __err=%d", res2.Completed, res2.Final[ErrVar])
	}
}

func TestCalleeErrorPropagates(t *testing.T) {
	prog := MustParse(`
proc main {
  locals x;
  bad();
  x = 7;
}
proc bad {
  abort;
}
`)
	res := interp.Run(prog, interp.Options{})
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	if res.Final[ErrVar] != 1 {
		t.Fatalf("__err = %d, want 1", res.Final[ErrVar])
	}
	// With error checks the assignment after the call must be skipped:
	// main's local x is scoped away at exit, so check via a global.
	prog2 := MustParse(`
globals g;
proc main {
  bad();
  g = 7;
}
proc bad {
  abort;
}
`)
	res2 := interp.Run(prog2, interp.Options{})
	if res2.Final["g"] == 7 {
		t.Error("error check after call did not short-circuit")
	}
}

func TestWhileLoop(t *testing.T) {
	prog := MustParse(`
globals sum;
proc main {
  locals i;
  i = 5;
  sum = 0;
  while (i > 0) {
    sum = sum + i;
    i = i - 1;
  }
}
`)
	res := interp.Run(prog, interp.Options{})
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	if res.Final["sum"] != 15 {
		t.Fatalf("sum = %d, want 15", res.Final["sum"])
	}
}

func TestHavocDirected(t *testing.T) {
	prog := MustParse(`
globals out;
proc main {
  locals x;
  havoc x;
  out = 2*x + 1;
}
`)
	res := interp.Run(prog, interp.Options{HavocValues: []int64{21}})
	if res.Final["out"] != 43 {
		t.Fatalf("out = %d, want 43", res.Final["out"])
	}
}

func TestStuckOnFalseAssume(t *testing.T) {
	prog := MustParse(`proc main { assume(false); }`)
	res := interp.Run(prog, interp.Options{})
	if res.Completed || !res.Stuck {
		t.Fatalf("got %+v, want stuck", res)
	}
}

func TestNestedControlFlow(t *testing.T) {
	prog := MustParse(`
globals r;
proc main {
  locals a, b;
  havoc a;
  havoc b;
  if (a > 0) {
    if (b > 0) { r = 1; } else { r = 2; }
  } else {
    while (b > 0) { b = b - 1; }
    r = 3;
  }
}
`)
	cases := []struct {
		a, b, want int64
	}{
		{1, 1, 1},
		{1, -1, 2},
		{-1, 3, 3},
	}
	for _, c := range cases {
		res := interp.Run(prog, interp.Options{HavocValues: []int64{c.a, c.b}})
		if !res.Completed || res.Final["r"] != c.want {
			t.Errorf("a=%d b=%d: r=%d completed=%v, want r=%d", c.a, c.b, res.Final["r"], res.Completed, c.want)
		}
	}
}

func TestBooleanOperatorPrecedence(t *testing.T) {
	prog := MustParse(`
globals r;
proc main {
  locals a, b, c;
  havoc a; havoc b; havoc c;
  r = 0;
  if (a > 0 && b > 0 || c > 0) { r = 1; }
}
`)
	cases := []struct {
		a, b, c, want int64
	}{
		{1, 1, -1, 1},
		{1, -1, -1, 0},
		{-1, -1, 1, 1},
	}
	for _, cse := range cases {
		res := interp.Run(prog, interp.Options{HavocValues: []int64{cse.a, cse.b, cse.c}})
		if res.Final["r"] != cse.want {
			t.Errorf("a=%d b=%d c=%d: r=%d, want %d", cse.a, cse.b, cse.c, res.Final["r"], cse.want)
		}
	}
}

func TestParenthesizedBool(t *testing.T) {
	prog := MustParse(`
globals r;
proc main {
  locals a, b;
  havoc a; havoc b;
  r = 0;
  if ((a > 0 || b > 0) && !(a == b)) { r = 1; }
}
`)
	cases := []struct {
		a, b, want int64
	}{
		{1, 0, 1},
		{1, 1, 0},
		{0, 0, 0},
		{-1, 2, 1},
	}
	for _, c := range cases {
		res := interp.Run(prog, interp.Options{HavocValues: []int64{c.a, c.b}})
		if res.Final["r"] != c.want {
			t.Errorf("a=%d b=%d: r=%d, want %d", c.a, c.b, res.Final["r"], c.want)
		}
	}
}

func TestLocalScoping(t *testing.T) {
	// Callee locals must not leak into nor clobber caller locals of the
	// same name.
	prog := MustParse(`
globals r;
proc main {
  locals x;
  x = 10;
  sub();
  r = x;
}
proc sub {
  locals x;
  x = 99;
}
`)
	res := interp.Run(prog, interp.Options{})
	if res.Final["r"] != 10 {
		t.Fatalf("r = %d, want 10 (callee local leaked)", res.Final["r"])
	}
}

func TestRandomizedRunsTerminate(t *testing.T) {
	prog := MustParse(sample)
	for seed := int64(0); seed < 20; seed++ {
		res := interp.Run(prog, interp.Options{Rand: rand.New(rand.NewSource(seed)), MaxSteps: 10000})
		if !res.Completed && !res.Stuck {
			t.Fatalf("seed %d: budget exhausted on a terminating program", seed)
		}
		if res.Completed && res.Final[lang.Var("__err")] != 0 {
			t.Fatalf("seed %d: assertion violated in a safe program", seed)
		}
	}
}

func TestParamsAndReturns(t *testing.T) {
	prog := MustParse(`
globals r;
proc main {
  locals x;
  x = add(3, 4);
  r = x;
}
proc add(a, b) {
  return a + b;
}`)
	res := interp.Run(prog, interp.Options{})
	if !res.Completed || res.Final["r"] != 7 {
		t.Fatalf("r = %d (completed=%v), want 7", res.Final["r"], res.Completed)
	}
}

func TestParamsIgnoredReturn(t *testing.T) {
	prog := MustParse(`
globals g;
proc main {
  bump(5);
}
proc bump(n) {
  g = g + n;
}`)
	res := interp.Run(prog, interp.Options{})
	if res.Final["g"] != 5 {
		t.Fatalf("g = %d", res.Final["g"])
	}
}

func TestEarlyReturnSkipsRest(t *testing.T) {
	prog := MustParse(`
globals r;
proc main {
  locals v;
  v = pick(1);
  r = v;
}
proc pick(c) {
  if (c > 0) {
    return 10;
  }
  return 20;
}`)
	res := interp.Run(prog, interp.Options{})
	if res.Final["r"] != 10 {
		t.Fatalf("r = %d, want 10", res.Final["r"])
	}
}

func TestBareReturn(t *testing.T) {
	prog := MustParse(`
globals g;
proc main {
  quit();
  g = 1;
}
proc quit {
  return;
  g = 99;
}`)
	res := interp.Run(prog, interp.Options{})
	if res.Final["g"] != 1 {
		t.Fatalf("g = %d (the callee's dead code ran?)", res.Final["g"])
	}
}

func TestArityMismatch(t *testing.T) {
	_, err := Parse(`
proc main { f(1); }
proc f(a, b) { skip; }`)
	if err == nil || !strings.Contains(err.Error(), "arguments") {
		t.Fatalf("err = %v", err)
	}
}

func TestSugaredRecursionRejected(t *testing.T) {
	_, err := Parse(`
proc main { locals x; x = f(3); }
proc f(n) {
  if (n > 0) {
    f(n - 1);
  }
  return n;
}`)
	if err == nil || !strings.Contains(err.Error(), "recursion") {
		t.Fatalf("err = %v", err)
	}
}

func TestPlainRecursionStillAllowed(t *testing.T) {
	// Recursion without parameters/returns stays legal (the formal model
	// permits it; summaries handle it demand-driven).
	if _, err := Parse(`
globals n;
proc main { n = 3; down(); }
proc down {
  if (n > 0) {
    n = n - 1;
    down();
  }
}`); err != nil {
		t.Fatalf("plain recursion rejected: %v", err)
	}
}
