package parser

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/lang"
)

// ErrVar is the implicit global error flag used by the assert/abort
// encoding. It is added to the program's globals when any procedure
// asserts or aborts, set to 0 at the entry of main, set to 1 on a failing
// assertion, and checked after every call so errors propagate to the
// caller's exit immediately (the SDV harness behaviour).
const ErrVar = lang.Var("__err")

// Options configure parsing and lowering.
type Options struct {
	// Main is the entry procedure name; defaults to "main", falling back
	// to the first procedure in the file.
	Main string
	// NoErrChecks disables the error-propagation check inserted after
	// every call edge. With checks disabled an error set by a callee still
	// reaches main's exit as long as execution terminates; the checks only
	// make propagation immediate.
	NoErrChecks bool
}

// Parse parses src with default options.
func Parse(src string) (*cfg.Program, error) {
	return ParseWithOptions(src, Options{})
}

// MustParse is Parse that panics on error, for tests and generators.
func MustParse(src string) *cfg.Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// ParseWithOptions parses src into a validated program.
func ParseWithOptions(src string, opts Options) (*cfg.Program, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	ast, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	return lowerProgram(ast, opts)
}

// sig records a procedure's calling-convention needs.
type sig struct {
	params   []lang.Var
	needsRet bool
}

// argVar and retVar name the auto-declared globals implementing the
// parameter/return sugar for procedure proc. The "__" names cannot clash
// with user identifiers that also survive cycle validation.
func argVar(proc string, i int) lang.Var { return lang.Var(fmt.Sprintf("%s__arg%d", proc, i)) }
func retVar(proc string) lang.Var        { return lang.Var(proc + "__ret") }

func lowerProgram(ast *programAST, opts Options) (*cfg.Program, error) {
	usesErr := false
	for _, proc := range ast.procs {
		if stmtsUseErr(proc.body) {
			usesErr = true
			break
		}
	}
	globals := ast.globals
	if usesErr {
		globals = append(append([]lang.Var{}, globals...), ErrVar)
	}

	// Collect calling-convention signatures: parameters from definitions,
	// return needs from `return e;` bodies and `x = f(...)` call sites.
	sigs := map[string]*sig{}
	for _, proc := range ast.procs {
		sigs[proc.name] = &sig{params: proc.params}
	}
	var scanRet func(stmts []stmtNode, self string)
	scanRet = func(stmts []stmtNode, self string) {
		for _, st := range stmts {
			switch st := st.(type) {
			case returnNode:
				if st.e != nil {
					sigs[self].needsRet = true
				}
			case callAssignNode:
				if sg, ok := sigs[st.proc]; ok {
					sg.needsRet = true
				}
			case ifNode:
				scanRet(st.then, self)
				scanRet(st.els, self)
			case whileNode:
				scanRet(st.body, self)
			}
		}
	}
	for _, proc := range ast.procs {
		scanRet(proc.body, proc.name)
	}
	// Declare the convention globals and check arities plus the
	// no-recursion restriction for sugared procedures (their argument
	// globals are not reentrant).
	sugared := map[string]bool{}
	for _, proc := range ast.procs {
		sg := sigs[proc.name]
		if len(sg.params) > 0 || sg.needsRet {
			sugared[proc.name] = true
		}
		for i := range sg.params {
			globals = append(globals, argVar(proc.name, i))
		}
		if sg.needsRet {
			globals = append(globals, retVar(proc.name))
		}
	}
	if err := checkCallArities(ast, sigs); err != nil {
		return nil, err
	}
	if len(sugared) > 0 {
		if cyc := findCycleWith(ast, sugared); cyc != "" {
			return nil, fmt.Errorf("parser: procedure %q with parameters/return participates in recursion, which the calling-convention sugar cannot support", cyc)
		}
	}

	main := opts.Main
	if main == "" {
		main = "main"
	}
	haveMain := false
	for _, proc := range ast.procs {
		if proc.name == main {
			haveMain = true
		}
	}
	if !haveMain {
		if opts.Main != "" {
			return nil, fmt.Errorf("parser: main procedure %q not defined", opts.Main)
		}
		main = ast.procs[0].name
	}

	var procs []*cfg.Proc
	for _, procAst := range ast.procs {
		locals := append(append([]lang.Var{}, procAst.params...), procAst.locals...)
		lw := &lowerer{
			b:         cfg.NewProc(procAst.name, locals...),
			errChecks: usesErr && !opts.NoErrChecks,
			usesErr:   usesErr,
			self:      procAst.name,
			sigs:      sigs,
		}
		lw.exit = lw.b.NewNode()
		cur := lw.b.Entry()
		if procAst.name == main && usesErr {
			next := lw.b.NewNode()
			lw.b.AddEdge(cur, next, lang.Assign{Lhs: ErrVar, Rhs: lang.C(0)})
			cur = next
		}
		// Parameter prologue: copy argument globals into the parameters.
		for i, param := range procAst.params {
			next := lw.b.NewNode()
			lw.b.AddEdge(cur, next, lang.Assign{Lhs: param, Rhs: lang.Ref{V: argVar(procAst.name, i)}})
			cur = next
		}
		end := lw.lowerStmts(cur, procAst.body)
		lw.b.AddEdge(end, lw.exit, lang.Skip{})
		procs = append(procs, lw.b.Finish(lw.exit))
	}
	return cfg.NewProgram(ast.name, globals, main, procs...)
}

// checkCallArities validates every call site against its definition.
func checkCallArities(ast *programAST, sigs map[string]*sig) error {
	var walk func(stmts []stmtNode) error
	walk = func(stmts []stmtNode) error {
		for _, st := range stmts {
			switch st := st.(type) {
			case callNode:
				if sg, ok := sigs[st.proc]; ok && len(st.args) != len(sg.params) {
					return fmt.Errorf("parser: call to %s with %d arguments, want %d", st.proc, len(st.args), len(sg.params))
				}
			case callAssignNode:
				if sg, ok := sigs[st.proc]; ok && len(st.args) != len(sg.params) {
					return fmt.Errorf("parser: call to %s with %d arguments, want %d", st.proc, len(st.args), len(sg.params))
				}
			case ifNode:
				if err := walk(st.then); err != nil {
					return err
				}
				if err := walk(st.els); err != nil {
					return err
				}
			case whileNode:
				if err := walk(st.body); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, proc := range ast.procs {
		if err := walk(proc.body); err != nil {
			return err
		}
	}
	return nil
}

// findCycleWith returns the name of a sugared procedure on a call-graph
// cycle, or "" when none exists.
func findCycleWith(ast *programAST, sugared map[string]bool) string {
	edges := map[string][]string{}
	var collect func(self string, stmts []stmtNode)
	collect = func(self string, stmts []stmtNode) {
		for _, st := range stmts {
			switch st := st.(type) {
			case callNode:
				edges[self] = append(edges[self], st.proc)
			case callAssignNode:
				edges[self] = append(edges[self], st.proc)
			case ifNode:
				collect(self, st.then)
				collect(self, st.els)
			case whileNode:
				collect(self, st.body)
			}
		}
	}
	for _, proc := range ast.procs {
		collect(proc.name, proc.body)
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var offender string
	var dfs func(n string, onStack []string) bool
	dfs = func(n string, onStack []string) bool {
		color[n] = gray
		for _, m := range edges[n] {
			switch color[m] {
			case gray:
				// Cycle m → … → n → m; report a sugared member.
				cycle := append(onStack, n, m)
				for _, c := range cycle {
					if sugared[c] {
						offender = c
						return true
					}
				}
			case white:
				if dfs(m, append(onStack, n)) {
					return true
				}
			}
		}
		color[n] = black
		return false
	}
	for _, proc := range ast.procs {
		if color[proc.name] == white && dfs(proc.name, nil) {
			return offender
		}
	}
	return ""
}

func stmtsUseErr(stmts []stmtNode) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case assertNode, abortNode:
			return true
		case ifNode:
			if stmtsUseErr(s.then) || stmtsUseErr(s.els) {
				return true
			}
		case whileNode:
			if stmtsUseErr(s.body) {
				return true
			}
		}
	}
	return false
}

type lowerer struct {
	b         *cfg.Builder
	exit      cfg.NodeID
	errChecks bool
	usesErr   bool
	self      string
	sigs      map[string]*sig
}

func (lw *lowerer) lowerStmts(cur cfg.NodeID, stmts []stmtNode) cfg.NodeID {
	for _, s := range stmts {
		cur = lw.lowerStmt(cur, s)
	}
	return cur
}

func (lw *lowerer) lowerStmt(cur cfg.NodeID, s stmtNode) cfg.NodeID {
	b := lw.b
	switch s := s.(type) {
	case assignNode:
		next := b.NewNode()
		b.AddEdge(cur, next, lang.Assign{Lhs: s.v, Rhs: s.e})
		return next
	case havocNode:
		next := b.NewNode()
		b.AddEdge(cur, next, lang.Havoc{V: s.v})
		return next
	case skipNode:
		return cur
	case assumeNode:
		next := b.NewNode()
		b.AddEdge(cur, next, lang.Assume{Cond: s.b})
		return next
	case callNode:
		return lw.lowerCall(cur, s.proc, s.args, nil)
	case callAssignNode:
		lhs := s.lhs
		return lw.lowerCall(cur, s.proc, s.args, &lhs)
	case returnNode:
		if s.e != nil {
			mid := b.NewNode()
			b.AddEdge(cur, mid, lang.Assign{Lhs: retVar(lw.self), Rhs: s.e})
			cur = mid
		}
		b.AddEdge(cur, lw.exit, lang.Skip{})
		// Continuation is unreachable.
		return b.NewNode()
	case assertNode:
		fail := b.NewNode()
		next := b.NewNode()
		b.AddEdge(cur, fail, lang.Assume{Cond: lang.NotE(s.b)})
		b.AddEdge(fail, lw.exit, lang.Assign{Lhs: ErrVar, Rhs: lang.C(1)})
		b.AddEdge(cur, next, lang.Assume{Cond: s.b})
		return next
	case abortNode:
		b.AddEdge(cur, lw.exit, lang.Assign{Lhs: ErrVar, Rhs: lang.C(1)})
		// Continuation is unreachable; give it a fresh node so following
		// statements lower without connecting back.
		return b.NewNode()
	case ifNode:
		thenStart := b.NewNode()
		b.AddEdge(cur, thenStart, lang.Assume{Cond: s.cond})
		thenEnd := lw.lowerStmts(thenStart, s.then)
		join := b.NewNode()
		b.AddEdge(thenEnd, join, lang.Skip{})
		if len(s.els) == 0 {
			b.AddEdge(cur, join, lang.Assume{Cond: lang.NotE(s.cond)})
		} else {
			elseStart := b.NewNode()
			b.AddEdge(cur, elseStart, lang.Assume{Cond: lang.NotE(s.cond)})
			elseEnd := lw.lowerStmts(elseStart, s.els)
			b.AddEdge(elseEnd, join, lang.Skip{})
		}
		return join
	case whileNode:
		head := b.NewNode()
		b.AddEdge(cur, head, lang.Skip{})
		bodyStart := b.NewNode()
		b.AddEdge(head, bodyStart, lang.Assume{Cond: s.cond})
		bodyEnd := lw.lowerStmts(bodyStart, s.body)
		b.AddEdge(bodyEnd, head, lang.Skip{})
		after := b.NewNode()
		b.AddEdge(head, after, lang.Assume{Cond: lang.NotE(s.cond)})
		return after
	default:
		panic(fmt.Sprintf("parser: unknown stmtNode %T", s))
	}
}

// lowerCall emits argument marshalling, the call edge, the error check,
// and the optional return-value read.
func (lw *lowerer) lowerCall(cur cfg.NodeID, proc string, args []lang.IntExpr, assignTo *lang.Var) cfg.NodeID {
	b := lw.b
	for i, a := range args {
		next := b.NewNode()
		b.AddEdge(cur, next, lang.Assign{Lhs: argVar(proc, i), Rhs: a})
		cur = next
	}
	after := b.NewNode()
	b.AddEdge(cur, after, lang.Call{Proc: proc})
	cur = after
	if lw.errChecks {
		next := b.NewNode()
		b.AddEdge(cur, lw.exit, lang.Assume{Cond: lang.CmpE(lang.V(string(ErrVar)), lang.Ge, lang.C(1))})
		b.AddEdge(cur, next, lang.Assume{Cond: lang.CmpE(lang.V(string(ErrVar)), lang.Le, lang.C(0))})
		cur = next
	}
	if assignTo != nil {
		next := b.NewNode()
		b.AddEdge(cur, next, lang.Assign{Lhs: *assignTo, Rhs: lang.Ref{V: retVar(proc)}})
		cur = next
	}
	return cur
}

// ParseBoolExpr parses a standalone boolean expression (for building
// reachability questions programmatically).
func ParseBoolExpr(src string) (lang.BoolExpr, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	b, err := p.parseBool()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errorf("unexpected trailing input %s", p.cur())
	}
	return b, nil
}
