package summary

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/smt"
)

func v(name string) logic.Lin { return logic.LinVar(lang.Var(name)) }
func k(x int64) logic.Lin     { return logic.LinConst(x) }

func eqv(name string, x int64) logic.Formula { return logic.Eq(v(name), k(x)) }

func TestAnswerYesRule(t *testing.T) {
	db := New(smt.New())
	// must summary: from g=5, every exit state with g ≥ 6 is reachable.
	db.Add(Summary{Kind: Must, Proc: "p", Pre: eqv("g", 5), Post: logic.LEq(k(6), v("g"))})

	// Query whose Pre contains g=5 and whose Post intersects g≥6: yes.
	q := Question{Proc: "p", Pre: logic.LEq(k(0), v("g")), Post: logic.LEq(k(10), v("g"))}
	if _, ok := db.AnswerYes(q); !ok {
		t.Fatal("expected a yes answer")
	}
	// Pre not containing ψ1 (g ≤ 3 excludes g=5): no answer.
	q2 := Question{Proc: "p", Pre: logic.LEq(v("g"), k(3)), Post: logic.LEq(k(10), v("g"))}
	if _, ok := db.AnswerYes(q2); ok {
		t.Fatal("yes answer with uncovered precondition")
	}
	// Post disjoint from ψ2 (g ≤ 2): no answer.
	q3 := Question{Proc: "p", Pre: logic.LEq(k(0), v("g")), Post: logic.LEq(v("g"), k(2))}
	if _, ok := db.AnswerYes(q3); ok {
		t.Fatal("yes answer with disjoint postcondition")
	}
}

func TestAnswerNoRule(t *testing.T) {
	db := New(smt.New())
	// not-may: from g ≥ 0, no exit state with g ≤ -1 is reachable.
	db.Add(Summary{Kind: NotMay, Proc: "p", Pre: logic.LEq(k(0), v("g")), Post: logic.LEq(v("g"), k(-1))})

	// Query Pre ⊆ ψ1 and Post ⊆ ψ2: no (unreachable).
	q := Question{Proc: "p", Pre: eqv("g", 7), Post: logic.LEq(v("g"), k(-5))}
	if _, ok := db.AnswerNo(q); !ok {
		t.Fatal("expected a no answer")
	}
	// Pre outside ψ1: not answered.
	q2 := Question{Proc: "p", Pre: logic.LEq(v("g"), k(-2)), Post: logic.LEq(v("g"), k(-5))}
	if _, ok := db.AnswerNo(q2); ok {
		t.Fatal("no answer with uncovered precondition")
	}
	// Post outside ψ2: not answered.
	q3 := Question{Proc: "p", Pre: eqv("g", 7), Post: logic.LEq(v("g"), k(0))}
	if _, ok := db.AnswerNo(q3); ok {
		t.Fatal("no answer with uncovered postcondition")
	}
}

func TestAnswerCombined(t *testing.T) {
	db := New(smt.New())
	db.Add(Summary{Kind: Must, Proc: "p", Pre: eqv("g", 1), Post: eqv("g", 2)})
	db.Add(Summary{Kind: NotMay, Proc: "p", Pre: logic.True, Post: logic.LEq(k(100), v("g"))})

	if _, verdict := db.Answer(Question{Proc: "p", Pre: logic.True, Post: eqv("g", 2)}); verdict != 1 {
		t.Fatalf("verdict = %d, want +1", verdict)
	}
	if _, verdict := db.Answer(Question{Proc: "p", Pre: logic.True, Post: logic.LEq(k(200), v("g"))}); verdict != -1 {
		t.Fatalf("verdict = %d, want -1", verdict)
	}
	if _, verdict := db.Answer(Question{Proc: "p", Pre: eqv("g", 9), Post: eqv("g", 50)}); verdict != 0 {
		t.Fatalf("verdict = %d, want 0", verdict)
	}
}

func TestProcIsolation(t *testing.T) {
	db := New(smt.New())
	db.Add(Summary{Kind: NotMay, Proc: "p", Pre: logic.True, Post: logic.False})
	if _, ok := db.AnswerNo(Question{Proc: "other", Pre: logic.True, Post: logic.False}); ok {
		t.Fatal("summary leaked across procedures")
	}
	if len(db.ForProc("p")) != 1 || len(db.ForProc("other")) != 0 {
		t.Fatal("ForProc wrong")
	}
}

func TestDeduplication(t *testing.T) {
	db := New(smt.New())
	s := Summary{Kind: Must, Proc: "p", Pre: eqv("g", 1), Post: eqv("g", 2)}
	db.Add(s)
	db.Add(s)
	if db.Count() != 1 {
		t.Fatalf("Count = %d, want 1", db.Count())
	}
	if db.StatsSnapshot().DupesSkip != 1 {
		t.Fatal("duplicate not counted")
	}
}

func TestDisabledDB(t *testing.T) {
	db := NewDisabled(smt.New())
	db.Add(Summary{Kind: Must, Proc: "p", Pre: logic.True, Post: logic.True})
	if db.Count() != 0 {
		t.Fatal("disabled DB stored a summary")
	}
	if _, ok := db.AnswerYes(Question{Proc: "p", Pre: logic.True, Post: logic.True}); ok {
		t.Fatal("disabled DB answered")
	}
}

func TestConcurrentUse(t *testing.T) {
	db := New(smt.New())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				db.Add(Summary{Kind: Must, Proc: "p", Pre: eqv("g", int64(i*100+j)), Post: eqv("g", 0)})
				db.Answer(Question{Proc: "p", Pre: logic.True, Post: eqv("g", 0)})
				db.ForProc("p")
			}
		}(i)
	}
	wg.Wait()
	if db.Count() != 400 {
		t.Fatalf("Count = %d, want 400", db.Count())
	}
	st := db.StatsSnapshot()
	if st.Added != 400 {
		t.Fatalf("Added = %d", st.Added)
	}
}

// TestShardedDBHammer drives the sharded DB from 32 goroutines mixing
// adds, answers and scans across many procedures — run under -race this
// exercises the striped locks, the append-only summary slices and the
// per-procedure memo. Final counts must be exact.
func TestShardedDBHammer(t *testing.T) {
	db := New(smt.New())
	const goroutines = 32
	const perG = 40
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			proc := fmt.Sprintf("p%d", i%7) // collide on procedures and shards
			for j := 0; j < perG; j++ {
				db.Add(Summary{Kind: Must, Proc: proc, Pre: eqv("g", int64(i*1000+j)), Post: eqv("g", 0)})
				db.Add(Summary{Kind: Must, Proc: proc, Pre: eqv("g", int64(i*1000+j)), Post: eqv("g", 0)}) // dupe
				db.AnswerYes(Question{Proc: proc, Pre: logic.True, Post: eqv("g", 0)})
				db.AnswerNo(Question{Proc: proc, Pre: eqv("g", -1), Post: eqv("g", 99)})
				db.ForProc(proc)
				db.Count()
			}
		}(i)
	}
	wg.Wait()
	want := int64(goroutines * perG)
	if got := int64(db.Count()); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	st := db.StatsSnapshot()
	if st.Added != want {
		t.Fatalf("Added = %d, want %d", st.Added, want)
	}
	if st.DupesSkip != want {
		t.Fatalf("DupesSkip = %d, want %d", st.DupesSkip, want)
	}
	if got := len(db.All()); got != int(want) {
		t.Fatalf("All() = %d summaries, want %d", got, want)
	}
}

// TestMemoInvalidation: a memoized miss must be forgotten when Add lands
// a summary that can answer the question, and repeated identical
// questions must be served from the memo.
func TestMemoInvalidation(t *testing.T) {
	db := New(smt.New())
	q := Question{Proc: "p", Pre: eqv("g", 5), Post: logic.LEq(k(6), v("g"))}

	if _, ok := db.AnswerYes(q); ok {
		t.Fatal("answered before any summary")
	}
	// Re-ask: the negative result is memoized, still a miss.
	if _, ok := db.AnswerYes(q); ok {
		t.Fatal("answered before any summary (memoized)")
	}

	// Adding a summary must invalidate the memoized miss.
	db.Add(Summary{Kind: Must, Proc: "p", Pre: eqv("g", 5), Post: logic.LEq(k(6), v("g"))})
	if _, ok := db.AnswerYes(q); !ok {
		t.Fatal("stale memoized miss survived an Add")
	}

	// Positive answers are memoized; repeats must bump MemoHits (summaries
	// are never removed, so a hit can be replayed forever).
	before := db.StatsSnapshot().MemoHits
	for i := 0; i < 5; i++ {
		if _, ok := db.AnswerYes(q); !ok {
			t.Fatal("memoized hit lost")
		}
	}
	if after := db.StatsSnapshot().MemoHits; after < before+5 {
		t.Fatalf("MemoHits %d -> %d, want +5", before, after)
	}
}

// TestMemoAnswerNo: the memo also covers the not-may side.
func TestMemoAnswerNo(t *testing.T) {
	db := New(smt.New())
	q := Question{Proc: "p", Pre: eqv("g", 7), Post: logic.LEq(v("g"), k(-5))}
	if _, ok := db.AnswerNo(q); ok {
		t.Fatal("answered before any summary")
	}
	db.Add(Summary{Kind: NotMay, Proc: "p", Pre: logic.LEq(k(0), v("g")), Post: logic.LEq(v("g"), k(-1))})
	if _, ok := db.AnswerNo(q); !ok {
		t.Fatal("stale memoized miss survived an Add")
	}
	before := db.StatsSnapshot().MemoHits
	if _, ok := db.AnswerNo(q); !ok {
		t.Fatal("memoized hit lost")
	}
	if db.StatsSnapshot().MemoHits != before+1 {
		t.Fatal("repeat AnswerNo not served from memo")
	}
}

func TestStringFormats(t *testing.T) {
	s := Summary{Kind: Must, Proc: "p", Pre: logic.True, Post: logic.False}
	if got := fmt.Sprint(s); got == "" {
		t.Fatal("empty summary string")
	}
	if Must.String() != "must" || NotMay.String() != "not-may" {
		t.Fatal("kind strings wrong")
	}
}

// TestPerShardTraffic: the stats snapshot breaks answering traffic down
// by lock stripe, and the per-shard rows sum to the global counters.
func TestPerShardTraffic(t *testing.T) {
	db := New(smt.New())
	procs := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, p := range procs {
		db.Add(Summary{Kind: Must, Proc: p, Pre: eqv("g", 5), Post: logic.LEq(k(6), v("g"))})
	}
	for _, p := range procs {
		q := Question{Proc: p, Pre: logic.LEq(k(0), v("g")), Post: logic.LEq(k(10), v("g"))}
		if _, ok := db.AnswerYes(q); !ok {
			t.Fatalf("proc %s: expected a yes answer", p)
		}
		// A query for an unknown procedure is a miss on that stripe.
		miss := Question{Proc: p + "_unknown", Pre: eqv("g", 1), Post: eqv("g", 2)}
		if _, ok := db.AnswerYes(miss); ok {
			t.Fatalf("proc %s_unknown: unexpected answer", p)
		}
	}
	st := db.StatsSnapshot()
	if len(st.PerShard) == 0 {
		t.Fatal("no per-shard rows")
	}
	var yes, no, misses, memo int64
	var summaries int
	for _, sh := range st.PerShard {
		if sh.Shard < 0 || sh.Shard >= numShards {
			t.Fatalf("shard index %d out of range", sh.Shard)
		}
		yes += sh.YesHits
		no += sh.NoHits
		misses += sh.Misses
		memo += sh.MemoHits
		summaries += sh.Summaries
	}
	if yes != st.YesHits || no != st.NoHits || misses != st.Misses || memo != st.MemoHits {
		t.Errorf("per-shard traffic (yes %d no %d miss %d memo %d) does not sum to globals (%d %d %d %d)",
			yes, no, misses, memo, st.YesHits, st.NoHits, st.Misses, st.MemoHits)
	}
	if summaries != db.Count() {
		t.Errorf("per-shard summaries %d, want %d", summaries, db.Count())
	}
	if st.Misses == 0 {
		t.Error("expected at least one miss")
	}
}
