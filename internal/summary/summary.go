// Package summary implements the two summary kinds of §3.1 — must
// summaries and not-may summaries — and SUMDB, the concurrent summary
// database that is the only state shared between parallel PUNCH instances
// (Fig. 1 of the paper).
package summary

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/logic"
	"repro/internal/smt"
)

// Kind distinguishes the two summary flavours.
type Kind int

// Summary kinds.
const (
	// Must: every exit state in Post is reachable from some entry state in
	// Pre. Witnesses reachability ("yes" answers / bugs).
	Must Kind = iota
	// NotMay: no entry state in Pre can reach any exit state in Post.
	// Witnesses unreachability ("no" answers / proofs).
	NotMay
)

func (k Kind) String() string {
	switch k {
	case Must:
		return "must"
	case NotMay:
		return "not-may"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Summary is a procedure summary over the program's global variables.
type Summary struct {
	Kind Kind
	Proc string
	Pre  logic.Formula
	Post logic.Formula
}

func (s Summary) String() string {
	arrow := "=>must"
	if s.Kind == NotMay {
		arrow = "=>notmay"
	}
	return fmt.Sprintf("(%s %s_%s %s)", s.Pre, arrow, s.Proc, s.Post)
}

// Question is a reachability question (φ1 ⇒?_P φ2) over globals: can P,
// started in a state satisfying Pre, reach an exit state satisfying Post?
type Question struct {
	Proc string
	Pre  logic.Formula
	Post logic.Formula
}

func (q Question) String() string {
	return fmt.Sprintf("(%s =?>_%s %s)", q.Pre, q.Proc, q.Post)
}

// Key is the canonical identity of a question: two questions with equal
// keys ask the same thing and are answered by the same summaries. It is
// the index key for the engines' in-flight query coalescing.
func (q Question) Key() string {
	return q.Proc + "|" + formulaKey(q.Pre) + "|" + formulaKey(q.Post)
}

// formulaKey is logic.Key made safe for the nil formulas scripted test
// punches leave in their questions.
func formulaKey(f logic.Formula) string {
	if f == nil {
		return ""
	}
	return logic.Key(f)
}

// Stats counts database traffic.
type Stats struct {
	Added     int64
	YesHits   int64
	NoHits    int64
	Misses    int64
	DupesSkip int64
	// MemoHits counts answers served from the bounded question memo
	// without re-running any solver check.
	MemoHits int64
	// PerShard breaks the answering traffic down by lock stripe (only
	// shards with any traffic or content appear) — the load-balance
	// view the striping exists for.
	PerShard []ShardTraffic
}

// ShardTraffic is one lock stripe's answering traffic and content.
type ShardTraffic struct {
	Shard     int
	Procs     int
	Summaries int
	YesHits   int64
	NoHits    int64
	Misses    int64
	MemoHits  int64
}

// numShards stripes the procedure map so concurrent PUNCH instances
// working on different procedures never contend on one lock.
const numShards = 32

// memoBound caps the per-procedure question memo; when exceeded the memo
// is reset rather than evicted entry by entry (resets are rare and the
// memo is purely a cache).
const memoBound = 4096

// memoEntry records a previously computed answer for one question under
// one rule. Positive answers stay valid forever (summaries are never
// removed); negative answers are valid only while the procedure's
// summary set is unchanged (version matches).
type memoEntry struct {
	sum     Summary
	ok      bool
	version uint64 // procShard.version at computation time (misses only)
}

// procShard holds one procedure's summaries: an append-only slice (the
// hot read path iterates a stable prefix without copying), the dedup key
// set, and a bounded memo of answered questions.
type procShard struct {
	mu      sync.RWMutex
	keys    map[string]struct{}
	sums    []Summary // append-only; elements are never mutated in place
	version uint64    // bumped on every successful Add
	added   int64     // guarded by mu
	dupes   int64     // guarded by mu

	memoMu sync.Mutex
	memo   map[string]memoEntry
}

// view returns the current stable prefix of the append-only summary
// slice. The returned header may be iterated without holding any lock:
// appends may reallocate the backing array, but never mutate elements
// already visible through this header.
func (ps *procShard) view() []Summary {
	ps.mu.RLock()
	v := ps.sums
	ps.mu.RUnlock()
	return v
}

func (ps *procShard) currentVersion() uint64 {
	ps.mu.RLock()
	v := ps.version
	ps.mu.RUnlock()
	return v
}

// memoGet looks up a memoized answer. A hit is returned only when still
// valid: positive entries always, negative entries only at the recorded
// summary-set version.
func (ps *procShard) memoGet(key string, version uint64) (memoEntry, bool) {
	ps.memoMu.Lock()
	defer ps.memoMu.Unlock()
	e, ok := ps.memo[key]
	if !ok {
		return memoEntry{}, false
	}
	if !e.ok && e.version != version {
		delete(ps.memo, key) // stale miss: a summary arrived since
		return memoEntry{}, false
	}
	return e, true
}

func (ps *procShard) memoPut(key string, e memoEntry) {
	ps.memoMu.Lock()
	defer ps.memoMu.Unlock()
	if ps.memo == nil || len(ps.memo) >= memoBound {
		ps.memo = make(map[string]memoEntry)
	}
	ps.memo[key] = e
}

// shard is one stripe of the procedure map.
type shard struct {
	mu    sync.RWMutex
	procs map[string]*procShard
}

// shardCounters are one stripe's read-path counters (atomics: the
// answer paths hold no exclusive lock).
type shardCounters struct {
	yes, no, miss, memo int64
}

// DB is the concurrent summary database SUMDB, sharded by procedure. All
// methods are safe for concurrent use; per the paper it is the only
// resource shared by the parallel instances of PUNCH.
type DB struct {
	shards  [numShards]shard
	solver  *smt.Solver
	enabled bool
	// Global read-path counters (atomics: the read paths hold no
	// exclusive lock). Added/DupesSkip live per procShard under its
	// write lock and are summed by StatsSnapshot. traffic carries the
	// same read-path counts broken down by lock stripe.
	yesHits  int64
	noHits   int64
	misses   int64
	memoHits int64
	traffic  [numShards]shardCounters
}

// New returns an empty database using solver for the answering checks.
func New(solver *smt.Solver) *DB {
	db := &DB{solver: solver, enabled: true}
	for i := range db.shards {
		db.shards[i].procs = map[string]*procShard{}
	}
	return db
}

// NewDisabled returns a database that stores nothing and answers nothing;
// used by the no-SUMDB ablation.
func NewDisabled(solver *smt.Solver) *DB {
	db := New(solver)
	db.enabled = false
	return db
}

func shardIndex(proc string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(proc))
	return int(h.Sum32() % numShards)
}

// lookup returns proc's shard entry, or nil when the procedure has no
// summaries yet.
func (db *DB) lookup(proc string) *procShard {
	return db.lookupAt(shardIndex(proc), proc)
}

// lookupAt is lookup with the stripe index already computed (the answer
// paths reuse it for the per-shard traffic counters).
func (db *DB) lookupAt(si int, proc string) *procShard {
	sh := &db.shards[si]
	sh.mu.RLock()
	ps := sh.procs[proc]
	sh.mu.RUnlock()
	return ps
}

// countMiss, countMemo, countYes and countNo bump a global read-path
// counter together with its stripe-local twin.
func (db *DB) countMiss(si int) {
	atomic.AddInt64(&db.misses, 1)
	atomic.AddInt64(&db.traffic[si].miss, 1)
}

func (db *DB) countMemo(si int) {
	atomic.AddInt64(&db.memoHits, 1)
	atomic.AddInt64(&db.traffic[si].memo, 1)
}

func (db *DB) countYes(si int) {
	atomic.AddInt64(&db.yesHits, 1)
	atomic.AddInt64(&db.traffic[si].yes, 1)
}

func (db *DB) countNo(si int) {
	atomic.AddInt64(&db.noHits, 1)
	atomic.AddInt64(&db.traffic[si].no, 1)
}

// entry returns proc's shard entry, creating it on first use.
func (db *DB) entry(proc string) *procShard {
	if ps := db.lookup(proc); ps != nil {
		return ps
	}
	sh := &db.shards[shardIndex(proc)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ps := sh.procs[proc]
	if ps == nil {
		ps = &procShard{keys: map[string]struct{}{}}
		sh.procs[proc] = ps
	}
	return ps
}

// Add stores a summary (deduplicated structurally). Adding bumps the
// procedure's version, which invalidates memoized "no answer" results
// for that procedure.
func (db *DB) Add(s Summary) {
	if !db.enabled {
		return
	}
	// Cheap concat over interned keys — this runs per summary insertion
	// and used to pay a fmt.Sprintf over two full structural renders.
	key := strconv.Itoa(int(s.Kind)) + "|" + logic.Key(s.Pre) + "|" + logic.Key(s.Post)
	ps := db.entry(s.Proc)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if _, dup := ps.keys[key]; dup {
		ps.dupes++
		return
	}
	ps.keys[key] = struct{}{}
	ps.sums = append(ps.sums, s)
	ps.version++
	ps.added++
}

// questionKey builds the memo key for q under the given answering rule.
func questionKey(rule byte, q Question) string {
	return string(rule) + "|" + logic.Key(q.Pre) + "|" + logic.Key(q.Post)
}

// AnswerYes looks for a must summary (ψ1 ⇒must ψ2) answering q with "yes":
// ψ1 ⊆ q.Pre and q.Post ∩ ψ2 ≠ ∅ (§3.1). When found it returns the
// summary and a verified model of q.Post ∩ ψ2 (an exit state proven
// reachable).
func (db *DB) AnswerYes(q Question) (Summary, bool) {
	if !db.enabled {
		return Summary{}, false
	}
	si := shardIndex(q.Proc)
	ps := db.lookupAt(si, q.Proc)
	if ps == nil {
		db.countMiss(si)
		return Summary{}, false
	}
	version := ps.currentVersion()
	key := questionKey('Y', q)
	if e, hit := ps.memoGet(key, version); hit {
		db.countMemo(si)
		if e.ok {
			db.countYes(si)
			return e.sum, true
		}
		db.countMiss(si)
		return Summary{}, false
	}
	for _, s := range ps.view() {
		if s.Kind != Must {
			continue
		}
		if !db.solver.Implies(s.Pre, q.Pre) {
			continue
		}
		inter := db.solver.Sat(logic.Conj(q.Post, s.Post))
		if inter.Known && inter.Sat {
			db.countYes(si)
			ps.memoPut(key, memoEntry{sum: s, ok: true})
			return s, true
		}
	}
	db.countMiss(si)
	ps.memoPut(key, memoEntry{version: version})
	return Summary{}, false
}

// AnswerNo looks for a not-may summary (ψ1 ⇒¬may ψ2) answering q with
// "no": q.Pre ⊆ ψ1 and q.Post ⊆ ψ2 (§3.1).
func (db *DB) AnswerNo(q Question) (Summary, bool) {
	if !db.enabled {
		return Summary{}, false
	}
	si := shardIndex(q.Proc)
	ps := db.lookupAt(si, q.Proc)
	if ps == nil {
		db.countMiss(si)
		return Summary{}, false
	}
	version := ps.currentVersion()
	key := questionKey('N', q)
	if e, hit := ps.memoGet(key, version); hit {
		db.countMemo(si)
		if e.ok {
			db.countNo(si)
			return e.sum, true
		}
		db.countMiss(si)
		return Summary{}, false
	}
	for _, s := range ps.view() {
		if s.Kind != NotMay {
			continue
		}
		if db.solver.Implies(q.Pre, s.Pre) && db.solver.Implies(q.Post, s.Post) {
			db.countNo(si)
			ps.memoPut(key, memoEntry{sum: s, ok: true})
			return s, true
		}
	}
	db.countMiss(si)
	ps.memoPut(key, memoEntry{version: version})
	return Summary{}, false
}

// Answer tries both answering rules; verdict is +1 for yes, -1 for no,
// 0 for no answer.
func (db *DB) Answer(q Question) (Summary, int) {
	if s, ok := db.AnswerYes(q); ok {
		return s, +1
	}
	if s, ok := db.AnswerNo(q); ok {
		return s, -1
	}
	return Summary{}, 0
}

// ForProc returns the summaries stored for proc as a stable read-only
// view: callers may iterate it freely but must not mutate elements.
func (db *DB) ForProc(proc string) []Summary {
	if !db.enabled {
		return nil
	}
	ps := db.lookup(proc)
	if ps == nil {
		return nil
	}
	return ps.view()
}

// Count returns the number of stored summaries.
func (db *DB) Count() int {
	n := 0
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for _, ps := range sh.procs {
			n += len(ps.view())
		}
		sh.mu.RUnlock()
	}
	return n
}

// All returns every stored summary, sorted by procedure then insertion
// order, for reporting and testing.
func (db *DB) All() []Summary {
	byProc := map[string][]Summary{}
	procs := []string{}
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for p, ps := range sh.procs {
			if v := ps.view(); len(v) > 0 {
				byProc[p] = v
				procs = append(procs, p)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Strings(procs)
	var out []Summary
	for _, p := range procs {
		out = append(out, byProc[p]...)
	}
	return out
}

// StatsSnapshot returns a consistent copy of the traffic counters:
// read-path counters from their atomics, write-path counters summed
// across the procedure shards.
func (db *DB) StatsSnapshot() Stats {
	st := Stats{
		YesHits:  atomic.LoadInt64(&db.yesHits),
		NoHits:   atomic.LoadInt64(&db.noHits),
		Misses:   atomic.LoadInt64(&db.misses),
		MemoHits: atomic.LoadInt64(&db.memoHits),
	}
	for i := range db.shards {
		sh := &db.shards[i]
		tr := ShardTraffic{
			Shard:    i,
			YesHits:  atomic.LoadInt64(&db.traffic[i].yes),
			NoHits:   atomic.LoadInt64(&db.traffic[i].no),
			Misses:   atomic.LoadInt64(&db.traffic[i].miss),
			MemoHits: atomic.LoadInt64(&db.traffic[i].memo),
		}
		sh.mu.RLock()
		for _, ps := range sh.procs {
			ps.mu.RLock()
			st.Added += ps.added
			st.DupesSkip += ps.dupes
			tr.Procs++
			tr.Summaries += len(ps.sums)
			ps.mu.RUnlock()
		}
		sh.mu.RUnlock()
		if tr.Procs > 0 || tr.YesHits+tr.NoHits+tr.Misses+tr.MemoHits > 0 {
			st.PerShard = append(st.PerShard, tr)
		}
	}
	return st
}

// Solver exposes the database's solver so analyses share one instance (and
// its tick counter) per engine run.
func (db *DB) Solver() *smt.Solver { return db.solver }
