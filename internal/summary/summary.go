// Package summary implements the two summary kinds of §3.1 — must
// summaries and not-may summaries — and SUMDB, the concurrent summary
// database that is the only state shared between parallel PUNCH instances
// (Fig. 1 of the paper).
package summary

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/logic"
	"repro/internal/smt"
)

// Kind distinguishes the two summary flavours.
type Kind int

// Summary kinds.
const (
	// Must: every exit state in Post is reachable from some entry state in
	// Pre. Witnesses reachability ("yes" answers / bugs).
	Must Kind = iota
	// NotMay: no entry state in Pre can reach any exit state in Post.
	// Witnesses unreachability ("no" answers / proofs).
	NotMay
)

func (k Kind) String() string {
	switch k {
	case Must:
		return "must"
	case NotMay:
		return "not-may"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Summary is a procedure summary over the program's global variables.
type Summary struct {
	Kind Kind
	Proc string
	Pre  logic.Formula
	Post logic.Formula
}

func (s Summary) String() string {
	arrow := "=>must"
	if s.Kind == NotMay {
		arrow = "=>notmay"
	}
	return fmt.Sprintf("(%s %s_%s %s)", s.Pre, arrow, s.Proc, s.Post)
}

// Question is a reachability question (φ1 ⇒?_P φ2) over globals: can P,
// started in a state satisfying Pre, reach an exit state satisfying Post?
type Question struct {
	Proc string
	Pre  logic.Formula
	Post logic.Formula
}

func (q Question) String() string {
	return fmt.Sprintf("(%s =?>_%s %s)", q.Pre, q.Proc, q.Post)
}

// Stats counts database traffic.
type Stats struct {
	Added     int64
	YesHits   int64
	NoHits    int64
	Misses    int64
	DupesSkip int64
}

// DB is the concurrent summary database SUMDB. All methods are safe for
// concurrent use; per the paper it is the only resource shared by the
// parallel instances of PUNCH.
type DB struct {
	mu      sync.RWMutex
	byProc  map[string][]Summary
	keys    map[string]bool
	solver  *smt.Solver
	stats   Stats
	enabled bool
}

// New returns an empty database using solver for the answering checks.
func New(solver *smt.Solver) *DB {
	return &DB{
		byProc:  map[string][]Summary{},
		keys:    map[string]bool{},
		solver:  solver,
		enabled: true,
	}
}

// NewDisabled returns a database that stores nothing and answers nothing;
// used by the no-SUMDB ablation.
func NewDisabled(solver *smt.Solver) *DB {
	db := New(solver)
	db.enabled = false
	return db
}

// Add stores a summary (deduplicated structurally).
func (db *DB) Add(s Summary) {
	if !db.enabled {
		return
	}
	key := fmt.Sprintf("%d|%s|%s|%s", s.Kind, s.Proc, logic.Key(s.Pre), logic.Key(s.Post))
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.keys[key] {
		atomic.AddInt64(&db.stats.DupesSkip, 1)
		return
	}
	db.keys[key] = true
	db.byProc[s.Proc] = append(db.byProc[s.Proc], s)
	atomic.AddInt64(&db.stats.Added, 1)
}

// snapshot returns the current summaries for proc.
func (db *DB) snapshot(proc string) []Summary {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ss := db.byProc[proc]
	out := make([]Summary, len(ss))
	copy(out, ss)
	return out
}

// AnswerYes looks for a must summary (ψ1 ⇒must ψ2) answering q with "yes":
// ψ1 ⊆ q.Pre and q.Post ∩ ψ2 ≠ ∅ (§3.1). When found it returns the
// summary and a verified model of q.Post ∩ ψ2 (an exit state proven
// reachable).
func (db *DB) AnswerYes(q Question) (Summary, bool) {
	if !db.enabled {
		return Summary{}, false
	}
	for _, s := range db.snapshot(q.Proc) {
		if s.Kind != Must {
			continue
		}
		if !db.solver.Implies(s.Pre, q.Pre) {
			continue
		}
		inter := db.solver.Sat(logic.Conj(q.Post, s.Post))
		if inter.Known && inter.Sat {
			atomic.AddInt64(&db.stats.YesHits, 1)
			return s, true
		}
	}
	atomic.AddInt64(&db.stats.Misses, 1)
	return Summary{}, false
}

// AnswerNo looks for a not-may summary (ψ1 ⇒¬may ψ2) answering q with
// "no": q.Pre ⊆ ψ1 and q.Post ⊆ ψ2 (§3.1).
func (db *DB) AnswerNo(q Question) (Summary, bool) {
	if !db.enabled {
		return Summary{}, false
	}
	for _, s := range db.snapshot(q.Proc) {
		if s.Kind != NotMay {
			continue
		}
		if db.solver.Implies(q.Pre, s.Pre) && db.solver.Implies(q.Post, s.Post) {
			atomic.AddInt64(&db.stats.NoHits, 1)
			return s, true
		}
	}
	atomic.AddInt64(&db.stats.Misses, 1)
	return Summary{}, false
}

// Answer tries both answering rules; verdict is +1 for yes, -1 for no,
// 0 for no answer.
func (db *DB) Answer(q Question) (Summary, int) {
	if s, ok := db.AnswerYes(q); ok {
		return s, +1
	}
	if s, ok := db.AnswerNo(q); ok {
		return s, -1
	}
	return Summary{}, 0
}

// ForProc returns a snapshot of the summaries stored for proc.
func (db *DB) ForProc(proc string) []Summary {
	if !db.enabled {
		return nil
	}
	return db.snapshot(proc)
}

// Count returns the number of stored summaries.
func (db *DB) Count() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, ss := range db.byProc {
		n += len(ss)
	}
	return n
}

// All returns every stored summary, sorted by procedure then insertion
// order, for reporting and testing.
func (db *DB) All() []Summary {
	db.mu.RLock()
	defer db.mu.RUnlock()
	procs := make([]string, 0, len(db.byProc))
	for p := range db.byProc {
		procs = append(procs, p)
	}
	sort.Strings(procs)
	var out []Summary
	for _, p := range procs {
		out = append(out, db.byProc[p]...)
	}
	return out
}

// StatsSnapshot returns a copy of the traffic counters.
func (db *DB) StatsSnapshot() Stats {
	return Stats{
		Added:     atomic.LoadInt64(&db.stats.Added),
		YesHits:   atomic.LoadInt64(&db.stats.YesHits),
		NoHits:    atomic.LoadInt64(&db.stats.NoHits),
		Misses:    atomic.LoadInt64(&db.stats.Misses),
		DupesSkip: atomic.LoadInt64(&db.stats.DupesSkip),
	}
}

// Solver exposes the database's solver so analyses share one instance (and
// its tick counter) per engine run.
func (db *DB) Solver() *smt.Solver { return db.solver }
