// Package incr implements incremental re-analysis planning: detecting
// which procedures of a program changed since the summaries in a store
// were computed, and deciding which summaries that edit invalidates.
//
// Edit detection is content-based. Snapshot renders every procedure's
// CFG into a canonical text (name, entry/exit, locals, every edge with
// its statement — the same render cfg.Program.String uses) and hashes
// it, together with the program's global declarations and the wire
// version, into a store.Fingerprint. The resulting Manifest is
// persisted beside the summaries (store.ManifestStore); Diff of the
// stored manifest against the current program's yields the edited set —
// procedures whose bodies changed, plus additions and removals.
//
// Invalidation is cone-based, at procedure granularity. A summary for
// procedure p may encode facts about everything p transitively calls,
// so an edit to q invalidates the summaries of every procedure that can
// reach q — the reverse closure of the edited set. PlanInvalidation
// computes that closure over the union of (a) the edited program's
// static call graph and (b) the dependency adjacencies persisted in
// provenance records (which include edges satisfied by stored summaries
// that the static graph of a *previous* program version may have had
// but the current one lacks). The union is conservative: extra edges
// only enlarge the stale set. Soundness of using the *new* program's
// call graph for reachability: if p reached an edited procedure in the
// old program, then on that old path the prefix up to the first edited
// procedure m runs entirely through unedited procedures, whose edges
// are identical in the new program — so p reaches m in the new graph
// too, and p is staled by the closure.
package incr

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/cfg"
	"repro/internal/lang"
	"repro/internal/store"
	"repro/internal/wire"
)

// Manifest maps each procedure of a program to its content fingerprint.
type Manifest = map[string]store.Fingerprint

// ProcFingerprint hashes one procedure's canonical CFG render, the
// program's globals (a procedure's semantics can depend on the global
// environment), and the wire version into a content fingerprint.
func ProcFingerprint(prog *cfg.Program, p *cfg.Proc) store.Fingerprint {
	return store.NewFingerprint(
		"bolt/proc-fp",
		strconv.Itoa(wire.Version),
		lang.FormatVars(prog.Globals),
		canonicalProc(p),
	)
}

// canonicalProc renders a procedure deterministically: header, locals,
// then every edge in declaration order with its statement. Any change
// to the procedure's control flow or statements changes the render.
func canonicalProc(p *cfg.Proc) string {
	var b []byte
	b = append(b, fmt.Sprintf("proc %s entry n%d exit n%d nodes %d\n", p.Name, p.Entry, p.Exit, p.NNodes)...)
	if len(p.Locals) > 0 {
		b = append(b, fmt.Sprintf("locals %s\n", lang.FormatVars(p.Locals))...)
	}
	for _, e := range p.Edges {
		b = append(b, fmt.Sprintf("n%d -> n%d : %s\n", e.From, e.To, e.Stmt)...)
	}
	return string(b)
}

// Snapshot fingerprints every procedure of prog.
func Snapshot(prog *cfg.Program) Manifest {
	m := make(Manifest, len(prog.Procs))
	for name, p := range prog.Procs {
		m[name] = ProcFingerprint(prog, p)
	}
	return m
}

// Diff returns the edited procedure set between two manifests, sorted:
// procedures whose fingerprints differ, procedures only in old
// (removed), and procedures only in new (added).
func Diff(old, new Manifest) []string {
	var out []string
	for p, fp := range new {
		if ofp, ok := old[p]; !ok || ofp != fp {
			out = append(out, p)
		}
	}
	for p := range old {
		if _, ok := new[p]; !ok {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Plan is the result of invalidation planning for one edit.
type Plan struct {
	// Edited is the procedures whose content changed (input, sorted).
	Edited []string
	// Stale is the procedures whose summaries must be discarded: the
	// edited set plus every procedure that can reach it in the
	// dependency graph (sorted).
	Stale []string
	// RootAffected reports whether the root procedure is stale — when
	// false, the persisted verdict for the root question is still valid
	// and a re-check may reuse it outright.
	RootAffected bool
}

// PlanInvalidation computes the stale cone of an edit: the reverse
// closure of edited over deps (proc -> procedures it depends on).
// Callers union every dependency source they have — the program's
// static call graph and any persisted provenance adjacencies — before
// calling; see the package comment for why that is sound.
func PlanInvalidation(edited []string, deps map[string][]string, root string) Plan {
	plan := Plan{Edited: append([]string(nil), edited...)}
	sort.Strings(plan.Edited)
	// Reverse adjacency: dep -> procedures that depend on it.
	rev := map[string][]string{}
	for p, ds := range deps {
		for _, d := range ds {
			rev[d] = append(rev[d], p)
		}
	}
	stale := map[string]bool{}
	queue := append([]string(nil), plan.Edited...)
	for _, p := range queue {
		stale[p] = true
	}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, caller := range rev[p] {
			if !stale[caller] {
				stale[caller] = true
				queue = append(queue, caller)
			}
		}
	}
	plan.Stale = make([]string, 0, len(stale))
	for p := range stale {
		plan.Stale = append(plan.Stale, p)
	}
	sort.Strings(plan.Stale)
	plan.RootAffected = stale[root]
	return plan
}

// MergeDeps unions extra's adjacency into dst (both proc -> deps),
// returning dst. Duplicate edges are dropped; callee lists stay sorted.
func MergeDeps(dst map[string][]string, extra map[string][]string) map[string][]string {
	if dst == nil {
		dst = map[string][]string{}
	}
	for p, ds := range extra {
		if len(ds) == 0 {
			continue
		}
		set := map[string]bool{}
		for _, d := range dst[p] {
			set[d] = true
		}
		for _, d := range ds {
			set[d] = true
		}
		merged := make([]string, 0, len(set))
		for d := range set {
			merged = append(merged, d)
		}
		sort.Strings(merged)
		dst[p] = merged
	}
	return dst
}
