// MutateSource is the edit-workload generator behind `boltgen -mutate`
// and the harness edit sessions: a deterministic, single-procedure,
// semantics-preserving source edit. The mutation inserts dead control
// flow (skip statements, possibly under a vacuous branch) at the top of
// the procedure body, after any locals declaration — it changes the
// procedure's CFG shape (and therefore its content fingerprint) without
// changing what the program computes, so every re-check verdict must
// match the from-scratch verdict. Determinism is by construction: the
// inserted text is a pure function of the seed.

package incr

import (
	"fmt"
	"strings"

	"repro/internal/parser"
)

// MutateSource returns src with a deterministic semantics-preserving
// mutation applied to the named procedure. The same (src, proc, seed)
// always yields the same output; different seeds pick different
// insertion shapes. The mutated source is validated through the parser
// before being returned.
func MutateSource(src, proc string, seed int64) (string, error) {
	body, err := procBodyStart(src, proc)
	if err != nil {
		return "", err
	}
	// Skip past a locals declaration: it must stay the first item in the
	// procedure body.
	insert := body
	rest := strings.TrimLeft(src[body:], " \t\n")
	if strings.HasPrefix(rest, "locals") {
		semi := strings.Index(src[body:], ";")
		if semi < 0 {
			return "", fmt.Errorf("incr: proc %s: unterminated locals declaration", proc)
		}
		insert = body + semi + 1
	}
	if seed < 0 {
		seed = -seed
	}
	// Each shape lowers to real CFG edges (a bare `skip;` statement is a
	// lowering no-op and would leave the fingerprint unchanged): a
	// vacuous branch, a trivially true assume, a never-entered loop.
	var snippet string
	switch seed % 3 {
	case 0:
		snippet = " if (1 > 0) { skip; } else { skip; }"
	case 1:
		snippet = " assume(1 > 0);"
	default:
		snippet = " while (0 > 1) { skip; }"
	}
	out := src[:insert] + snippet + src[insert:]
	if _, err := parser.Parse(out); err != nil {
		return "", fmt.Errorf("incr: mutation of %s broke the program: %w", proc, err)
	}
	return out, nil
}

// procBodyStart returns the index just past the opening brace of the
// named procedure's body.
func procBodyStart(src, proc string) (int, error) {
	for pos := 0; ; {
		i := strings.Index(src[pos:], "proc")
		if i < 0 {
			return 0, fmt.Errorf("incr: no procedure %q in source", proc)
		}
		i += pos
		pos = i + len("proc")
		// "proc" must be a standalone keyword followed by the name.
		if i > 0 && !isSpace(src[i-1]) {
			continue
		}
		rest := strings.TrimLeft(src[pos:], " \t\n")
		if !strings.HasPrefix(rest, proc) {
			continue
		}
		after := rest[len(proc):]
		// The name must end here — "proc double" must not match a
		// procedure named doubler.
		if len(after) > 0 && isIdent(after[0]) {
			continue
		}
		after = strings.TrimLeft(after, " \t\n")
		// Skip an optional parameter list (it contains no braces).
		if strings.HasPrefix(after, "(") {
			close := strings.Index(after, ")")
			if close < 0 {
				continue
			}
			after = strings.TrimLeft(after[close+1:], " \t\n")
		}
		if !strings.HasPrefix(after, "{") {
			continue
		}
		brace := strings.Index(src[pos:], "{")
		return pos + brace + 1, nil
	}
}

func isIdent(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}
