package incr

import (
	"strings"
	"testing"

	"repro/internal/parser"
)

const testProg = `program t;
globals g;
proc main { locals c; havoc c; if (c > 0) { a(); } else { b(); } assert(g <= 1); }
proc a { g = 0; c(); }
proc b { g = 1; }
proc c { skip; }
`

func TestSnapshotDiff(t *testing.T) {
	prog, err := parser.Parse(testProg)
	if err != nil {
		t.Fatal(err)
	}
	m1 := Snapshot(prog)
	if len(m1) != 4 {
		t.Fatalf("snapshot has %d procs, want 4", len(m1))
	}
	m2 := Snapshot(prog)
	if d := Diff(m1, m2); len(d) != 0 {
		t.Fatalf("identical programs diff as %v", d)
	}

	mut, err := MutateSource(testProg, "b", 7)
	if err != nil {
		t.Fatal(err)
	}
	prog2, err := parser.Parse(mut)
	if err != nil {
		t.Fatal(err)
	}
	d := Diff(m1, Snapshot(prog2))
	if len(d) != 1 || d[0] != "b" {
		t.Fatalf("diff after mutating b = %v, want [b]", d)
	}
}

func TestDiffAddRemove(t *testing.T) {
	prog, err := parser.Parse(testProg)
	if err != nil {
		t.Fatal(err)
	}
	m := Snapshot(prog)
	// Remove c and retarget a's call (the parser rejects dangling
	// calls): the diff must report both the removed and the changed
	// procedure.
	src := strings.Replace(testProg, "proc c { skip; }", "", 1)
	src = strings.Replace(src, "g = 0; c();", "g = 0;", 1)
	dropped := parser.MustParse(src)
	d := Diff(m, Snapshot(dropped))
	if len(d) != 2 || d[0] != "a" || d[1] != "c" {
		t.Fatalf("diff after removing c = %v, want [a c]", d)
	}
}

func TestGlobalsChangeInvalidatesAll(t *testing.T) {
	prog, err := parser.Parse(testProg)
	if err != nil {
		t.Fatal(err)
	}
	prog2, err := parser.Parse(strings.Replace(testProg, "globals g;", "globals g, h;", 1))
	if err != nil {
		t.Fatal(err)
	}
	d := Diff(Snapshot(prog), Snapshot(prog2))
	if len(d) != 4 {
		t.Fatalf("globals change staled %v, want every procedure", d)
	}
}

func TestPlanInvalidation(t *testing.T) {
	deps := map[string][]string{
		"main": {"a", "b"},
		"a":    {"c"},
	}
	plan := PlanInvalidation([]string{"c"}, deps, "main")
	want := []string{"a", "c", "main"}
	if len(plan.Stale) != len(want) {
		t.Fatalf("stale = %v, want %v", plan.Stale, want)
	}
	for i := range want {
		if plan.Stale[i] != want[i] {
			t.Fatalf("stale = %v, want %v", plan.Stale, want)
		}
	}
	if !plan.RootAffected {
		t.Fatal("root depends on c transitively, must be affected")
	}

	plan = PlanInvalidation([]string{"b"}, deps, "a")
	if plan.RootAffected {
		t.Fatal("a does not reach b, root must survive")
	}
	if len(plan.Stale) != 2 { // b and main
		t.Fatalf("stale = %v, want [b main]", plan.Stale)
	}
}

func TestMergeDeps(t *testing.T) {
	dst := map[string][]string{"a": {"b"}}
	dst = MergeDeps(dst, map[string][]string{"a": {"c", "b"}, "d": {"e"}})
	if got := strings.Join(dst["a"], ","); got != "b,c" {
		t.Fatalf("a deps = %q, want b,c", got)
	}
	if got := strings.Join(dst["d"], ","); got != "e" {
		t.Fatalf("d deps = %q, want e", got)
	}
}

func TestMutateDeterministicAndLocalized(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		m1, err := MutateSource(testProg, "main", seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m2, err := MutateSource(testProg, "main", seed)
		if err != nil {
			t.Fatal(err)
		}
		if m1 != m2 {
			t.Fatalf("seed %d: mutation is not deterministic", seed)
		}
		if m1 == testProg {
			t.Fatalf("seed %d: mutation is a no-op", seed)
		}
		prog, err := parser.Parse(testProg)
		if err != nil {
			t.Fatal(err)
		}
		prog2, err := parser.Parse(m1)
		if err != nil {
			t.Fatalf("seed %d: mutated program does not parse: %v", seed, err)
		}
		d := Diff(Snapshot(prog), Snapshot(prog2))
		if len(d) != 1 || d[0] != "main" {
			t.Fatalf("seed %d: mutation touched %v, want only main", seed, d)
		}
	}
	if _, err := MutateSource(testProg, "nosuch", 1); err == nil {
		t.Fatal("mutating a missing procedure must fail")
	}
}
