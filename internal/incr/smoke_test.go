// The incr-smoke gate (`make incr-smoke`): on every corpus program and
// every engine, mutate each procedure once in an edit session and
// re-check incrementally; every step's verdict must be confluent with a
// from-scratch run on the edited program. This is the end-to-end
// soundness check for cone-based invalidation — an unsound cone would
// leave a stale summary alive and flip a verdict.
package incr_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/harness"
	"repro/internal/parser"
)

func TestIncrSmoke(t *testing.T) {
	files, err := filepath.Glob("../../testdata/corpus/*.bolt")
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus missing: %v (%d files)", err, len(files))
	}
	for _, f := range files {
		name := filepath.Base(f)
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		src := string(raw)
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		steps := len(prog.ProcNames())
		for _, engine := range []string{"barrier", "async", "dist"} {
			t.Run(name+"/"+engine, func(t *testing.T) {
				sess, err := harness.RunEditSession(name, src, steps, 41, 8, engine, harness.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if len(sess.Steps) != steps {
					t.Fatalf("ran %d steps, want %d", len(sess.Steps), steps)
				}
				invalidations := 0
				for i, s := range sess.Steps {
					if s.Err != nil {
						t.Fatalf("step %d (%s): %v", i, s.Proc, s.Err)
					}
					if !s.Confluent {
						t.Fatalf("step %d (%s): re-check %v, from-scratch %v",
							i, s.Proc, s.RecheckVerdict, s.ColdVerdict)
					}
					invalidations += s.Invalidated
				}
				if invalidations == 0 {
					t.Fatal("no step invalidated any summary — the cone machinery never fired")
				}
			})
		}
	}
}
