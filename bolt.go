// Package bolt is the public API of this reproduction of "Parallelizing
// Top-Down Interprocedural Analyses" (Albarghouthi, Kumar, Nori, Rajamani;
// PLDI 2012). It parses programs in a small imperative language and
// verifies reachability/safety questions with BOLT: a MapReduce-style
// parallel engine over demand-driven interprocedural queries,
// parameterized by an intraprocedural analysis (PUNCH) — a may-must
// (DASH-style) analysis by default, with pure may (SLAM/BLAST-style) and
// pure must (DART-style) instantiations available.
//
// Quickstart:
//
//	prog, err := bolt.Parse(src)
//	res := prog.Check(bolt.Options{Threads: 8})
//	fmt.Println(res.Verdict)
package bolt

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/prov"
	"repro/internal/punch"
	"repro/internal/punch/may"
	"repro/internal/punch/maymust"
	"repro/internal/punch/must"
	"repro/internal/store"
	"repro/internal/summary"
	"repro/internal/wire"
	"repro/internal/witness"
)

// Program is a parsed, validated program.
type Program struct {
	prog *cfg.Program
}

// Parse parses a program in the input language. Assertions and aborts are
// compiled to the standard error-flag encoding checked by Check.
func Parse(src string) (*Program, error) {
	p, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Program{prog: p}, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// String renders the program's control-flow graphs.
func (p *Program) String() string { return p.prog.String() }

// Dot renders the control-flow graphs in Graphviz DOT format.
func (p *Program) Dot() string { return p.prog.Dot() }

// Procedures returns the procedure names.
func (p *Program) Procedures() []string { return p.prog.ProcNames() }

// Main returns the entry procedure name.
func (p *Program) Main() string { return p.prog.Main }

// Analysis selects the PUNCH instantiation.
type Analysis int

// Available intraprocedural analyses.
const (
	// MayMust is the DASH/SYNERGY-style combination used in the paper's
	// evaluation (the default).
	MayMust Analysis = iota
	// May is the SLAM/BLAST-style abstraction-refinement analysis.
	May
	// Must is the DART/CUTE-style directed-testing analysis (finds bugs;
	// proves safety only for exhaustively explorable procedures).
	Must
)

func (a Analysis) String() string {
	switch a {
	case MayMust:
		return "may-must"
	case May:
		return "may"
	case Must:
		return "must"
	}
	return fmt.Sprintf("Analysis(%d)", int(a))
}

// Verdict is the outcome of a verification run.
type Verdict int

// Verdicts.
const (
	// Unknown: resources exhausted before an answer was found.
	Unknown Verdict = iota
	// Safe: the error states are proven unreachable.
	Safe
	// ErrorReachable: some execution reaches the error states.
	ErrorReachable
)

func (v Verdict) String() string {
	switch v {
	case Safe:
		return "Program is Safe"
	case ErrorReachable:
		return "Error Reachable"
	}
	return "Unknown (resources exhausted)"
}

// StopReason explains why a run terminated. Every Result carries exactly
// one; an Unknown verdict always comes with the reason the engine gave
// up (budget, deadlock, cancellation, or — for the distributed
// simulation — total node failure).
type StopReason int

// Stop reasons. The values mirror internal/core.StopReason one to one.
const (
	// StopNone: the run did not record a reason (zero value).
	StopNone StopReason = iota
	// StopRootAnswered: the verification question was answered.
	StopRootAnswered
	// StopWallTimeout: the wall-clock budget expired.
	StopWallTimeout
	// StopTickBudget: the virtual-time budget expired.
	StopTickBudget
	// StopEventBudget: the iteration/event/round budget was exhausted.
	StopEventBudget
	// StopDeadlocked: every live query was Blocked with no way to make
	// progress.
	StopDeadlocked
	// StopCancelled: the caller's context was cancelled.
	StopCancelled
	// StopNodeFailure: injected faults killed the whole simulated
	// cluster.
	StopNodeFailure
	// StopVerdictReused: an incremental re-check answered the question
	// from the persisted verdict without running — the edit's
	// invalidation cone did not reach the question's procedure.
	StopVerdictReused
)

func (r StopReason) String() string { return core.StopReason(r).String() }

// Options configure a verification run.
type Options struct {
	// Analysis selects the PUNCH instantiation (default MayMust).
	Analysis Analysis
	// Threads is the paper's throttle: Ready queries processed per MAP
	// stage and concurrent PUNCH instances. 1 = sequential. Default 1.
	Threads int
	// VirtualCores for the deterministic virtual clock (default: Threads).
	VirtualCores int
	// MaxVirtualTicks bounds virtual time (0 = unbounded).
	MaxVirtualTicks int64
	// Timeout bounds wall-clock time (0 = unbounded).
	Timeout time.Duration
	// Speculate enables the §7 speculative extension.
	Speculate bool
	// Async selects the streaming work-stealing engine: persistent
	// workers, incremental REDUCE per completed query, and root-done
	// cancellation instead of bulk-synchronous MAP/REDUCE batches. Same
	// verdicts, lower wall-clock on straggler-heavy workloads.
	Async bool
	// DisableGC and DisableSumDB are the ablation switches.
	DisableGC    bool
	DisableSumDB bool
	// DisableCoalesce turns off in-flight query coalescing: every spawned
	// child grows its own subtree even when an identical question is
	// already live. On by default because coalescing only drops provably
	// duplicate work; disabling it reproduces the pre-coalescing engine
	// byte for byte (the zero-overhead-when-disabled contract).
	DisableCoalesce bool
	// DisableEntailmentCache turns off the solver's sharded entailment
	// memo (Implies/Valid results shared across concurrent PUNCH
	// instances). Disabled runs never touch the cache.
	DisableEntailmentCache bool
	// StorePath, when set, names a directory holding the persistent
	// summary store (created on first use). The run warm-starts from its
	// contents and persists new summaries back, so a re-run of the same
	// program re-checks from yesterday's facts instead of from scratch.
	// The store is fingerprinted by program text, analysis, and wire
	// version; a store built for anything else is rejected (never
	// silently reused) — the run is aborted with Result.StoreErr set and
	// verdict Unknown.
	StorePath string
	// StoreReset explicitly discards and recreates a store whose
	// fingerprint does not match (the only sanctioned way to repurpose a
	// store directory).
	StoreReset bool
	// FindWitness, on an ErrorReachable verdict from Check, searches for a
	// concrete counterexample (inputs + trace) and attaches it to the
	// result.
	FindWitness bool
	// TraceTo, when set, records the run's query-lifecycle events and
	// writes them here as Chrome trace-event JSON when the run ends: one
	// track per worker, one span per PUNCH invocation, loadable at
	// ui.perfetto.dev or chrome://tracing. Result.TraceSpans and
	// Result.TraceErr report the outcome.
	TraceTo io.Writer
	// TraceJSONLTo, when set, streams the same events here as JSON Lines
	// (one event object per line) while the run executes — the format
	// internal/obs/analyze and cmd/boltprof consume. Both trace sinks may
	// be set at once. Result.TraceEvents counts the lines written;
	// flush errors surface in Result.TraceErr.
	TraceJSONLTo io.Writer
	// MetricsInto, when non-nil, is the live registry the run accumulates
	// into (implying CollectMetrics): the CLIs pass the same registry to
	// obs.StartPprofServer so /metrics scrapes observe the run in flight.
	// Nil means a private registry is used when CollectMetrics is set.
	MetricsInto *obs.Metrics
	// CollectMetrics enables the engine metrics registry; the snapshot is
	// attached to Result.Metrics and Result.WorkerMetrics. Off by default:
	// disabled instrumentation costs one branch per would-be observation.
	CollectMetrics bool
	// CollectProvenance records, per run, which summaries each PUNCH
	// invocation consumed and produced, and assembles them into the
	// verdict's dependency record (Result.Provenance): the procedure
	// cone the answer rests on, warm-vs-fresh read attribution, and the
	// invalidation cone of every procedure. Off by default; when off the
	// engines pay one nil check per PUNCH invocation. With StorePath set,
	// the verdict's read set is also persisted beside the summaries.
	CollectProvenance bool
	// Incremental turns a store-backed run into an edit-aware re-check
	// (implies CollectProvenance; no effect without StorePath). The store
	// is opened under an edit-stable fingerprint (analysis + wire version,
	// no program text) and carries a manifest of per-procedure content
	// fingerprints. On each run the manifest diff yields the edited
	// procedures, their reverse dependency cone is invalidated
	// (tombstoned) in the store, and the rest of the summaries warm-start
	// the re-check. When the cone does not reach the question's procedure
	// the persisted verdict is reused outright (StopVerdictReused,
	// Result.ReusedVerdict).
	Incremental bool
	// PprofLabels wraps each PUNCH invocation in runtime/pprof labels
	// (engine, proc, query-depth), so CPU profiles break analysis time
	// down by procedure and tree depth.
	PprofLabels bool
	// Inspect, when non-nil, attaches the run to the inspector's live
	// probe: /debug/bolt/state (and the stall watchdog) can then sample
	// per-worker state, forest occupancy, coalescer, SUMDB shard and
	// solver gauges while the check is in flight. Nil costs one branch
	// per publish site.
	Inspect *Inspector
	// FlightRecorder, when non-nil, is teed into the run's event stream:
	// a bounded ring of the most recent lifecycle events, dumpable via
	// /debug/bolt/flight or boltcheck -flight-dump. Unlike TraceTo it is
	// cheap enough to leave on for whole runs.
	FlightRecorder *obs.FlightRecorder
}

// Result reports a verification run.
type Result struct {
	Verdict Verdict
	// StopReason records why the run ended; TimedOut and Deadlocked are
	// views derived from it.
	StopReason   StopReason
	TotalQueries int64
	PeakReady    int
	Iterations   int
	VirtualTicks int64
	WallTime     time.Duration
	TimedOut     bool
	Deadlocked   bool
	// CoalesceHits counts spawned children answered by an in-flight twin
	// query instead of growing a duplicate subtree (0 when
	// Options.DisableCoalesce is set).
	CoalesceHits int64
	// Witness is a concrete counterexample (present only when the verdict
	// is ErrorReachable and Options.FindWitness was set, and the directed
	// search succeeded).
	Witness *Witness
	// Metrics is the flattened engine metrics snapshot (nil unless
	// Options.CollectMetrics): lifecycle counters, summary-database
	// traffic under sumdb_* keys, punch-histogram aggregates, and
	// makespan_ticks.
	Metrics map[string]int64
	// WorkerMetrics is the per-worker accounting behind Metrics;
	// utilization is BusyTicks / Metrics["makespan_ticks"].
	WorkerMetrics []WorkerMetric
	// TraceSpans is the number of completed PUNCH spans recorded when
	// Options.TraceTo was set; TraceEvents the JSONL lines written when
	// Options.TraceJSONLTo was set; TraceErr reports the first failed
	// trace write, if any.
	TraceSpans  int
	TraceEvents int64
	TraceErr    error
	// Solver is the run's QF_LIA solver accounting — always populated,
	// independent of Options.CollectMetrics.
	Solver SolverStats
	// WarmSummaries is the number of summaries loaded from the persistent
	// store before the run started (0 without Options.StorePath);
	// PersistedSummaries the number of new summaries written back when it
	// ended. StoreErr reports the first store failure: an open-time
	// fingerprint mismatch aborts the run (verdict Unknown), while
	// load/persist failures degrade to a cold run with the error recorded.
	WarmSummaries      int
	PersistedSummaries int
	StoreErr           error
	// Provenance is the verdict's dependency record (nil unless
	// Options.CollectProvenance): read/write summary sets, the procedure
	// dependency graph, and per-procedure invalidation cones. The
	// procedure cone is schedule-invariant — identical across the
	// barrier, async, and distributed engines for the same question.
	Provenance *prov.Provenance
	// Incremental re-check accounting (populated only with
	// Options.Incremental + StorePath): the procedures whose content
	// fingerprints changed since the store's manifest, the stale
	// summaries tombstoned from the store, the warm summaries that
	// survived invalidation, and whether the persisted verdict was
	// reused without running.
	EditedProcs          []string
	InvalidatedSummaries int
	SurvivingSummaries   int
	ReusedVerdict        bool
}

// SolverStats surfaces the solver's hot-path counters: overall call
// volume, the learning-DPLL loop (propositional conflicts, learned
// clauses, watched-literal propagations), full theory checks, the
// entailment memo, and hash-consing hits on formula construction.
type SolverStats struct {
	SatCalls          int64
	TheoryChecks      int64
	DPLLConflicts     int64
	LearnedClauses    int64
	Propagations      int64
	EntailCacheHits   int64
	EntailCacheMisses int64
	HashConsHits      int64
}

// WorkerMetric is one worker's accounting for a run with
// Options.CollectMetrics set.
type WorkerMetric struct {
	Worker     int
	Punches    int64
	BusyTicks  int64
	BusyWallNs int64
	Steals     int64
}

// Witness is a concrete failing execution.
type Witness struct {
	// Inputs are the nondeterministic values, in draw order.
	Inputs []int64
	// Text is the human-readable trace.
	Text string
}

func newPunch(a Analysis) punch.Punch {
	switch a {
	case May:
		return may.New()
	case Must:
		return must.New()
	default:
		return maymust.New()
	}
}

func (o Options) engine(prog *cfg.Program, tr obs.Tracer, m *obs.Metrics, st store.Store) *core.Engine {
	return core.New(prog, core.Options{
		Punch:                  newPunch(o.Analysis),
		MaxThreads:             max(1, o.Threads),
		VirtualCores:           o.VirtualCores,
		MaxVirtualTicks:        o.MaxVirtualTicks,
		RealTimeout:            o.Timeout,
		Speculate:              o.Speculate,
		Async:                  o.Async,
		DisableGC:              o.DisableGC,
		DisableSumDB:           o.DisableSumDB,
		DisableCoalesce:        o.DisableCoalesce,
		DisableEntailmentCache: o.DisableEntailmentCache,
		Store:                  st,
		Tracer:                 tr,
		Metrics:                m,
		CollectProvenance:      o.CollectProvenance,
		Incremental:            o.Incremental,
		PprofLabels:            o.PprofLabels,
		Probe:                  o.Inspect.Probe(),
	})
}

// storeFingerprint identifies the (program, analysis, wire version)
// combination a persistent store was built for. Any change to the
// program text, the PUNCH instantiation, or the wire format produces a
// different fingerprint, and OpenDisk refuses to reuse the store.
func (p *Program) storeFingerprint(a Analysis) store.Fingerprint {
	return store.NewFingerprint(
		"bolt/summary-store",
		strconv.Itoa(wire.Version),
		a.String(),
		p.prog.String(),
	)
}

// incrFingerprint identifies an incremental store. Deliberately free of
// program text: the whole point of an incremental store is surviving
// program edits, so validity is enforced by the per-procedure manifest
// diff (stale cones are tombstoned) rather than by a whole-text
// fingerprint that would reject the store after every edit.
func incrFingerprint(a Analysis) store.Fingerprint {
	return store.NewFingerprint(
		"bolt/incr-store",
		strconv.Itoa(wire.Version),
		a.String(),
	)
}

// openStore opens the persistent summary store named by dir, or returns
// (nil, nil) when dir is empty (no store configured). Incremental runs
// use the edit-stable fingerprint.
func (p *Program) openStore(dir string, a Analysis, reset, incremental bool) (store.Store, error) {
	if dir == "" {
		return nil, nil
	}
	fp := p.storeFingerprint(a)
	if incremental {
		fp = incrFingerprint(a)
	}
	return store.OpenDisk(dir, fp, reset)
}

// closeStore folds the store's Close error into the result's StoreErr
// (first error wins — an earlier load/persist failure is more
// informative than a failed close).
func closeStore(st store.Store, errp *error) {
	if st == nil {
		return
	}
	if err := st.Close(); err != nil && *errp == nil {
		*errp = err
	}
}

// hooks builds the run's tracers and registry from the options. The
// Tracer return is a nil interface (not a typed nil) when tracing is
// off, so the engines' single `!= nil` guard stays correct.
func (o Options) hooks() (*obs.ChromeTracer, *obs.JSONLTracer, obs.Tracer, *obs.Metrics) {
	var ct *obs.ChromeTracer
	var tr obs.Tracer
	if o.TraceTo != nil {
		ct = obs.NewChromeTracer()
		tr = ct
	}
	var jt *obs.JSONLTracer
	if o.TraceJSONLTo != nil {
		jt = obs.NewJSONLTracer(o.TraceJSONLTo)
		tr = obs.Tee(tr, jt)
	}
	// The guard matters: teeing a typed-nil *FlightRecorder would yield
	// a non-nil Tracer interface and defeat the engines' nil check.
	if o.FlightRecorder != nil {
		tr = obs.Tee(tr, o.FlightRecorder)
	}
	m := o.MetricsInto
	if m == nil && o.CollectMetrics {
		m = obs.NewMetrics()
	}
	return ct, jt, tr, m
}

// attachObs folds the run's observability outputs into the public result:
// the flattened metrics snapshot and the serialized traces.
func attachObs(res *Result, snap *obs.Snapshot, ct *obs.ChromeTracer, jt *obs.JSONLTracer, w io.Writer) {
	res.Metrics = snap.Flatten()
	if snap != nil {
		for _, ws := range snap.Workers {
			res.WorkerMetrics = append(res.WorkerMetrics, WorkerMetric{
				Worker:     ws.Worker,
				Punches:    ws.Punches,
				BusyTicks:  ws.BusyTicks,
				BusyWallNs: ws.BusyWallNs,
				Steals:     ws.Steals,
			})
		}
	}
	if ct != nil {
		res.TraceSpans = ct.Spans()
		res.TraceErr = ct.Export(w)
	}
	if jt != nil {
		if err := jt.Flush(); err != nil && res.TraceErr == nil {
			res.TraceErr = err
		}
		res.TraceEvents = jt.Events()
	}
}

func toResult(r core.Result) Result {
	out := Result{
		StopReason:   StopReason(r.StopReason),
		TotalQueries: r.TotalQueries,
		PeakReady:    r.PeakReady,
		Iterations:   r.Iterations,
		VirtualTicks: r.VirtualTicks,
		WallTime:     r.WallTime,
		TimedOut:     r.TimedOut,
		Deadlocked:   r.Deadlocked,
		CoalesceHits: r.CoalesceHits,

		WarmSummaries:      r.WarmSummaries,
		PersistedSummaries: r.PersistedSummaries,
		StoreErr:           r.StoreErr,
		Provenance:         r.Provenance,

		EditedProcs:          r.EditedProcs,
		InvalidatedSummaries: r.InvalidatedSummaries,
		SurvivingSummaries:   r.SurvivingSummaries,
		ReusedVerdict:        r.ReusedVerdict,
		Solver: SolverStats{
			SatCalls:          r.Solver.SatCalls,
			TheoryChecks:      r.Solver.TheoryChecks,
			DPLLConflicts:     r.Solver.DPLLConflicts,
			LearnedClauses:    r.Solver.LearnedClauses,
			Propagations:      r.Solver.Propagations,
			EntailCacheHits:   r.Solver.EntailCacheHits,
			EntailCacheMisses: r.Solver.EntailCacheMisses,
			HashConsHits:      r.Solver.HashConsHits,
		},
	}
	switch r.Verdict {
	case core.Safe:
		out.Verdict = Safe
	case core.ErrorReachable:
		out.Verdict = ErrorReachable
	}
	return out
}

// Check verifies the program's assertions: can main reach its exit with
// the error flag raised?
func (p *Program) Check(opts Options) Result {
	return p.CheckContext(context.Background(), opts)
}

// CheckContext is Check with external cancellation: cancelling ctx stops
// the run at the next scheduling boundary with StopReason StopCancelled
// and all workers joined.
func (p *Program) CheckContext(ctx context.Context, opts Options) Result {
	st, err := p.openStore(opts.StorePath, opts.Analysis, opts.StoreReset, opts.Incremental)
	if err != nil {
		return Result{Verdict: Unknown, StoreErr: err}
	}
	ct, jt, tr, m := opts.hooks()
	r := opts.engine(p.prog, tr, m, st).RunContext(ctx, core.AssertionQuestion(p.prog))
	res := toResult(r)
	closeStore(st, &res.StoreErr)
	attachObs(&res, r.Metrics, ct, jt, opts.TraceTo)
	if res.Verdict == ErrorReachable && opts.FindWitness {
		if tr, ok := witness.Find(p.prog, witness.Options{}); ok {
			res.Witness = &Witness{Inputs: tr.Havocs, Text: tr.Format()}
		}
	}
	return res
}

// CheckReach answers a general reachability question: can procedure proc,
// started in a state satisfying pre (a boolean expression over globals),
// reach its exit in a state satisfying post? A Safe verdict means post is
// unreachable; ErrorReachable means some execution reaches it.
func (p *Program) CheckReach(proc, pre, post string, opts Options) (Result, error) {
	return p.CheckReachContext(context.Background(), proc, pre, post, opts)
}

// CheckReachContext is CheckReach with external cancellation.
func (p *Program) CheckReachContext(ctx context.Context, proc, pre, post string, opts Options) (Result, error) {
	if p.prog.Proc(proc) == nil {
		return Result{}, fmt.Errorf("bolt: no procedure %q", proc)
	}
	preB, err := parser.ParseBoolExpr(pre)
	if err != nil {
		return Result{}, fmt.Errorf("bolt: precondition: %w", err)
	}
	postB, err := parser.ParseBoolExpr(post)
	if err != nil {
		return Result{}, fmt.Errorf("bolt: postcondition: %w", err)
	}
	q := summary.Question{Proc: proc, Pre: logic.FromBool(preB), Post: logic.FromBool(postB)}
	st, err := p.openStore(opts.StorePath, opts.Analysis, opts.StoreReset, opts.Incremental)
	if err != nil {
		return Result{}, fmt.Errorf("bolt: summary store: %w", err)
	}
	ct, jt, tr, m := opts.hooks()
	r := opts.engine(p.prog, tr, m, st).RunContext(ctx, q)
	res := toResult(r)
	closeStore(st, &res.StoreErr)
	attachObs(&res, r.Metrics, ct, jt, opts.TraceTo)
	return res, nil
}

// DistOptions configure a simulated-cluster verification run (the §7
// distributed design).
type DistOptions struct {
	// Analysis selects the PUNCH instantiation (default MayMust).
	Analysis Analysis
	// Nodes is the cluster size (default 2).
	Nodes int
	// ThreadsPerNode is each node's MAP-stage throttle (default 4).
	ThreadsPerNode int
	// SyncEvery is the gossip period in rounds (default 1).
	SyncEvery int
	// SyncCost is the virtual-time cost per gossip exchange.
	SyncCost int64
	// MaxRounds bounds the simulation (0 = default).
	MaxRounds int
	// Timeout bounds wall-clock time (0 = unbounded).
	Timeout time.Duration
	// Faults is a fault-injection spec "kill=N@R,drop=P,seed=S"; every
	// clause is optional and an empty spec injects nothing. See
	// core.ParseFaults for the grammar.
	Faults string
	// DisableCoalesce and DisableEntailmentCache are the redundancy-
	// elimination ablation switches; see Options.
	DisableCoalesce        bool
	DisableEntailmentCache bool
	// StorePath and StoreReset mirror Options: a persistent summary store
	// the cluster warm-starts from (summaries routed to their owning
	// nodes) and persists its union of node databases back into.
	StorePath  string
	StoreReset bool
	// Incremental mirrors Options.Incremental: edit-aware re-checks over
	// an edit-stable store, with stale-cone invalidation routed to each
	// summary's owning node (DistResult.PerNodeInvalidated).
	Incremental bool
	// TraceTo, TraceJSONLTo, CollectMetrics, MetricsInto and PprofLabels
	// mirror Options: Chrome trace-event output (one process per node,
	// one track per node-local worker slot), the streaming JSONL event
	// sink, the metrics registry, and pprof labels around PUNCH.
	TraceTo        io.Writer
	TraceJSONLTo   io.Writer
	CollectMetrics bool
	MetricsInto    *obs.Metrics
	PprofLabels    bool
	// CollectProvenance mirrors Options.CollectProvenance: the verdict's
	// dependency record lands in DistResult.Provenance.
	CollectProvenance bool
	// Inspect and FlightRecorder mirror Options: the live-introspection
	// probe (per-node occupancy, skew and gossip backlog on top of the
	// shared gauges) and the bounded ring of recent lifecycle events.
	Inspect        *Inspector
	FlightRecorder *obs.FlightRecorder
}

// DistResult reports a simulated-cluster run.
type DistResult struct {
	Verdict      Verdict
	StopReason   StopReason
	Rounds       int
	TotalQueries int64
	VirtualTicks int64
	WallTime     time.Duration
	// PerNodePeakLive is each node's peak live-query count (the memory
	// sharding payoff); PerNodeSummaries each node's final summary count.
	PerNodePeakLive  []int
	PerNodeSummaries []int
	SyncExchanges    int
	// Fault-injection accounting: nodes killed, queries re-routed off
	// dead nodes, summaries recovered by failover re-gossip, and gossip
	// deliveries deferred by injected loss.
	KilledNodes        []int
	ReroutedQueries    int
	RecoveredSummaries int
	DroppedDeliveries  int
	// CoalesceHits counts spawned children coalesced onto an in-flight
	// twin, cluster-wide.
	CoalesceHits int64
	// Metrics, WorkerMetrics, TraceSpans, TraceEvents and TraceErr mirror
	// Result; worker slot w of node n appears as worker n*ThreadsPerNode+w.
	Metrics       map[string]int64
	WorkerMetrics []WorkerMetric
	TraceSpans    int
	TraceEvents   int64
	TraceErr      error
	// WarmSummaries, PersistedSummaries and StoreErr mirror Result.
	WarmSummaries      int
	PersistedSummaries int
	StoreErr           error
	// Provenance mirrors Result.Provenance (nil unless
	// DistOptions.CollectProvenance).
	Provenance *prov.Provenance
	// Incremental re-check accounting, mirroring Result; additionally
	// PerNodeInvalidated routes the tombstoned summaries to their owning
	// nodes (index = node, sum = InvalidatedSummaries).
	EditedProcs          []string
	InvalidatedSummaries int
	SurvivingSummaries   int
	ReusedVerdict        bool
	PerNodeInvalidated   []int
}

// CheckDistributed verifies the program's assertions on the simulated
// cluster, optionally under an injected fault plan. Verdicts match Check;
// the distributed result additionally reports per-node memory peaks and
// fault-recovery accounting.
func (p *Program) CheckDistributed(ctx context.Context, opts DistOptions) (DistResult, error) {
	faults, err := core.ParseFaults(opts.Faults)
	if err != nil {
		return DistResult{}, fmt.Errorf("bolt: %w", err)
	}
	st, err := p.openStore(opts.StorePath, opts.Analysis, opts.StoreReset, opts.Incremental)
	if err != nil {
		return DistResult{}, fmt.Errorf("bolt: summary store: %w", err)
	}
	hooks := Options{
		TraceTo:        opts.TraceTo,
		TraceJSONLTo:   opts.TraceJSONLTo,
		CollectMetrics: opts.CollectMetrics,
		MetricsInto:    opts.MetricsInto,
		FlightRecorder: opts.FlightRecorder,
	}
	ct, jt, tr, m := hooks.hooks()
	eng := core.NewDistributed(p.prog, core.DistOptions{
		Punch:             newPunch(opts.Analysis),
		Nodes:             opts.Nodes,
		ThreadsPerNode:    opts.ThreadsPerNode,
		SyncEvery:         opts.SyncEvery,
		SyncCost:          opts.SyncCost,
		MaxRounds:         opts.MaxRounds,
		RealTimeout:       opts.Timeout,
		Faults:            faults,
		Store:             st,
		Tracer:            tr,
		Metrics:           m,
		CollectProvenance: opts.CollectProvenance,
		Incremental:       opts.Incremental,
		PprofLabels:       opts.PprofLabels,
		Probe:             opts.Inspect.Probe(),

		DisableCoalesce:        opts.DisableCoalesce,
		DisableEntailmentCache: opts.DisableEntailmentCache,
	})
	r := eng.RunContext(ctx, core.AssertionQuestion(p.prog))
	out := DistResult{
		StopReason:         StopReason(r.StopReason),
		Rounds:             r.Rounds,
		TotalQueries:       r.TotalQueries,
		VirtualTicks:       r.VirtualTicks,
		WallTime:           r.WallTime,
		PerNodePeakLive:    r.PerNodePeakLive,
		PerNodeSummaries:   r.PerNodeSummaries,
		SyncExchanges:      r.SyncExchanges,
		KilledNodes:        r.KilledNodes,
		ReroutedQueries:    r.ReroutedQueries,
		RecoveredSummaries: r.RecoveredSummaries,
		DroppedDeliveries:  r.DroppedDeliveries,
		CoalesceHits:       r.CoalesceHits,

		WarmSummaries:      r.WarmSummaries,
		PersistedSummaries: r.PersistedSummaries,
		StoreErr:           r.StoreErr,
		Provenance:         r.Provenance,

		EditedProcs:          r.EditedProcs,
		InvalidatedSummaries: r.InvalidatedSummaries,
		SurvivingSummaries:   r.SurvivingSummaries,
		ReusedVerdict:        r.ReusedVerdict,
		PerNodeInvalidated:   r.PerNodeInvalidated,
	}
	closeStore(st, &out.StoreErr)
	out.Metrics = r.Metrics.Flatten()
	if r.Metrics != nil {
		for _, ws := range r.Metrics.Workers {
			out.WorkerMetrics = append(out.WorkerMetrics, WorkerMetric{
				Worker:     ws.Worker,
				Punches:    ws.Punches,
				BusyTicks:  ws.BusyTicks,
				BusyWallNs: ws.BusyWallNs,
				Steals:     ws.Steals,
			})
		}
	}
	if ct != nil {
		out.TraceSpans = ct.Spans()
		out.TraceErr = ct.Export(opts.TraceTo)
	}
	if jt != nil {
		if err := jt.Flush(); err != nil && out.TraceErr == nil {
			out.TraceErr = err
		}
		out.TraceEvents = jt.Events()
	}
	switch r.Verdict {
	case core.Safe:
		out.Verdict = Safe
	case core.ErrorReachable:
		out.Verdict = ErrorReachable
	}
	return out, nil
}
