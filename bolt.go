// Package bolt is the public API of this reproduction of "Parallelizing
// Top-Down Interprocedural Analyses" (Albarghouthi, Kumar, Nori, Rajamani;
// PLDI 2012). It parses programs in a small imperative language and
// verifies reachability/safety questions with BOLT: a MapReduce-style
// parallel engine over demand-driven interprocedural queries,
// parameterized by an intraprocedural analysis (PUNCH) — a may-must
// (DASH-style) analysis by default, with pure may (SLAM/BLAST-style) and
// pure must (DART-style) instantiations available.
//
// Quickstart:
//
//	prog, err := bolt.Parse(src)
//	res := prog.Check(bolt.Options{Threads: 8})
//	fmt.Println(res.Verdict)
package bolt

import (
	"fmt"
	"time"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/punch"
	"repro/internal/punch/may"
	"repro/internal/punch/maymust"
	"repro/internal/punch/must"
	"repro/internal/summary"
	"repro/internal/witness"
)

// Program is a parsed, validated program.
type Program struct {
	prog *cfg.Program
}

// Parse parses a program in the input language. Assertions and aborts are
// compiled to the standard error-flag encoding checked by Check.
func Parse(src string) (*Program, error) {
	p, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Program{prog: p}, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// String renders the program's control-flow graphs.
func (p *Program) String() string { return p.prog.String() }

// Dot renders the control-flow graphs in Graphviz DOT format.
func (p *Program) Dot() string { return p.prog.Dot() }

// Procedures returns the procedure names.
func (p *Program) Procedures() []string { return p.prog.ProcNames() }

// Main returns the entry procedure name.
func (p *Program) Main() string { return p.prog.Main }

// Analysis selects the PUNCH instantiation.
type Analysis int

// Available intraprocedural analyses.
const (
	// MayMust is the DASH/SYNERGY-style combination used in the paper's
	// evaluation (the default).
	MayMust Analysis = iota
	// May is the SLAM/BLAST-style abstraction-refinement analysis.
	May
	// Must is the DART/CUTE-style directed-testing analysis (finds bugs;
	// proves safety only for exhaustively explorable procedures).
	Must
)

func (a Analysis) String() string {
	switch a {
	case MayMust:
		return "may-must"
	case May:
		return "may"
	case Must:
		return "must"
	}
	return fmt.Sprintf("Analysis(%d)", int(a))
}

// Verdict is the outcome of a verification run.
type Verdict int

// Verdicts.
const (
	// Unknown: resources exhausted before an answer was found.
	Unknown Verdict = iota
	// Safe: the error states are proven unreachable.
	Safe
	// ErrorReachable: some execution reaches the error states.
	ErrorReachable
)

func (v Verdict) String() string {
	switch v {
	case Safe:
		return "Program is Safe"
	case ErrorReachable:
		return "Error Reachable"
	}
	return "Unknown (resources exhausted)"
}

// Options configure a verification run.
type Options struct {
	// Analysis selects the PUNCH instantiation (default MayMust).
	Analysis Analysis
	// Threads is the paper's throttle: Ready queries processed per MAP
	// stage and concurrent PUNCH instances. 1 = sequential. Default 1.
	Threads int
	// VirtualCores for the deterministic virtual clock (default: Threads).
	VirtualCores int
	// MaxVirtualTicks bounds virtual time (0 = unbounded).
	MaxVirtualTicks int64
	// Timeout bounds wall-clock time (0 = unbounded).
	Timeout time.Duration
	// Speculate enables the §7 speculative extension.
	Speculate bool
	// Async selects the streaming work-stealing engine: persistent
	// workers, incremental REDUCE per completed query, and root-done
	// cancellation instead of bulk-synchronous MAP/REDUCE batches. Same
	// verdicts, lower wall-clock on straggler-heavy workloads.
	Async bool
	// DisableGC and DisableSumDB are the ablation switches.
	DisableGC    bool
	DisableSumDB bool
	// FindWitness, on an ErrorReachable verdict from Check, searches for a
	// concrete counterexample (inputs + trace) and attaches it to the
	// result.
	FindWitness bool
}

// Result reports a verification run.
type Result struct {
	Verdict      Verdict
	TotalQueries int64
	PeakReady    int
	Iterations   int
	VirtualTicks int64
	WallTime     time.Duration
	TimedOut     bool
	// Witness is a concrete counterexample (present only when the verdict
	// is ErrorReachable and Options.FindWitness was set, and the directed
	// search succeeded).
	Witness *Witness
}

// Witness is a concrete failing execution.
type Witness struct {
	// Inputs are the nondeterministic values, in draw order.
	Inputs []int64
	// Text is the human-readable trace.
	Text string
}

func newPunch(a Analysis) punch.Punch {
	switch a {
	case May:
		return may.New()
	case Must:
		return must.New()
	default:
		return maymust.New()
	}
}

func (o Options) engine(prog *cfg.Program) *core.Engine {
	return core.New(prog, core.Options{
		Punch:           newPunch(o.Analysis),
		MaxThreads:      max(1, o.Threads),
		VirtualCores:    o.VirtualCores,
		MaxVirtualTicks: o.MaxVirtualTicks,
		RealTimeout:     o.Timeout,
		Speculate:       o.Speculate,
		Async:           o.Async,
		DisableGC:       o.DisableGC,
		DisableSumDB:    o.DisableSumDB,
	})
}

func toResult(r core.Result) Result {
	out := Result{
		TotalQueries: r.TotalQueries,
		PeakReady:    r.PeakReady,
		Iterations:   r.Iterations,
		VirtualTicks: r.VirtualTicks,
		WallTime:     r.WallTime,
		TimedOut:     r.TimedOut,
	}
	switch r.Verdict {
	case core.Safe:
		out.Verdict = Safe
	case core.ErrorReachable:
		out.Verdict = ErrorReachable
	}
	return out
}

// Check verifies the program's assertions: can main reach its exit with
// the error flag raised?
func (p *Program) Check(opts Options) Result {
	res := toResult(opts.engine(p.prog).Run(core.AssertionQuestion(p.prog)))
	if res.Verdict == ErrorReachable && opts.FindWitness {
		if tr, ok := witness.Find(p.prog, witness.Options{}); ok {
			res.Witness = &Witness{Inputs: tr.Havocs, Text: tr.Format()}
		}
	}
	return res
}

// CheckReach answers a general reachability question: can procedure proc,
// started in a state satisfying pre (a boolean expression over globals),
// reach its exit in a state satisfying post? A Safe verdict means post is
// unreachable; ErrorReachable means some execution reaches it.
func (p *Program) CheckReach(proc, pre, post string, opts Options) (Result, error) {
	if p.prog.Proc(proc) == nil {
		return Result{}, fmt.Errorf("bolt: no procedure %q", proc)
	}
	preB, err := parser.ParseBoolExpr(pre)
	if err != nil {
		return Result{}, fmt.Errorf("bolt: precondition: %w", err)
	}
	postB, err := parser.ParseBoolExpr(post)
	if err != nil {
		return Result{}, fmt.Errorf("bolt: postcondition: %w", err)
	}
	q := summary.Question{Proc: proc, Pre: logic.FromBool(preB), Post: logic.FromBool(postB)}
	return toResult(opts.engine(p.prog).Run(q)), nil
}
